#include "src/mpx/mpx.h"

namespace memsentry::mpx {

std::optional<machine::Fault> CheckUpper(const machine::BoundRegister& bnd, VirtAddr pointer) {
  if (pointer > bnd.upper) {
    return machine::Fault{machine::FaultType::kBoundRange, pointer, machine::AccessType::kRead};
  }
  return std::nullopt;
}

std::optional<machine::Fault> CheckLower(const machine::BoundRegister& bnd, VirtAddr pointer) {
  if (pointer < bnd.lower) {
    return machine::Fault{machine::FaultType::kBoundRange, pointer, machine::AccessType::kRead};
  }
  return std::nullopt;
}

machine::BoundRegister MakeBounds(VirtAddr base, uint64_t size) {
  return machine::BoundRegister{.lower = base, .upper = base + size - 1};
}

bool OnLegacyBranch(machine::RegisterFile& regs) {
  if (regs.bnd_preserve) {
    return false;
  }
  for (auto& bnd : regs.bnd) {
    bnd = machine::BoundRegister{};  // INIT: [0, ~0]
  }
  return true;
}

void BoundTable::Store(VirtAddr pointer_slot, const machine::BoundRegister& bounds) {
  entries_[pointer_slot] = bounds;
}

std::optional<machine::BoundRegister> BoundTable::Load(VirtAddr pointer_slot) const {
  auto it = entries_.find(pointer_slot);
  if (it == entries_.end()) {
    return std::nullopt;
  }
  return it->second;
}

}  // namespace memsentry::mpx

// Intel MPX semantics: bndcu/bndcl checks against the bound registers, bndmk,
// and the two-level bound directory/table used when more than four bounds are
// live (the spill path whose cost makes GCC-style full bounds checking slow —
// paper Section 3.2/5.4). MemSentry itself needs only bnd0 = [0, 64 TiB).
#ifndef MEMSENTRY_SRC_MPX_MPX_H_
#define MEMSENTRY_SRC_MPX_MPX_H_

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "src/base/status.h"
#include "src/base/types.h"
#include "src/machine/fault.h"
#include "src/machine/registers.h"

namespace memsentry::mpx {

// Checks `pointer <= bnd.upper` — the bndcu instruction. Returns a #BR fault
// on violation. (Real bndcu compares against the one's complement; the
// semantics are identical.)
std::optional<machine::Fault> CheckUpper(const machine::BoundRegister& bnd, VirtAddr pointer);

// Checks `pointer >= bnd.lower` — the bndcl instruction.
std::optional<machine::Fault> CheckLower(const machine::BoundRegister& bnd, VirtAddr pointer);

// bndmk: creates a bound register value [base, base+size-1].
machine::BoundRegister MakeBounds(VirtAddr base, uint64_t size);

// Legacy-branch behaviour: without BNDPRESERVE, any branch not prefixed with
// BND resets all bound registers to INIT (permit-everything) and subsequent
// checks must reload bounds from the bound table. Returns true if bounds were
// reset (the caller charges the reload cost).
bool OnLegacyBranch(machine::RegisterFile& regs);

// The in-memory bound directory/table pair (BNDLDX/BNDSTX paths). Keyed by
// the pointer's address as on real hardware. Used to model the spill cost of
// many live bounds (Table 3: "infinite when also using memory").
class BoundTable {
 public:
  void Store(VirtAddr pointer_slot, const machine::BoundRegister& bounds);
  std::optional<machine::BoundRegister> Load(VirtAddr pointer_slot) const;
  size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<VirtAddr, machine::BoundRegister> entries_;
};

}  // namespace memsentry::mpx

#endif  // MEMSENTRY_SRC_MPX_MPX_H_

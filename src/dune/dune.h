// Dune-style process-level virtualization (Belay et al., OSDI'12), as used by
// MemSentry for VMFUNC isolation (paper Section 5.1): a single process runs
// inside a small VM. The "hypervisor" here manages guest-physical memory and
// multiple EPT copies; MemSentry's added hypercall marks mappings private to
// one EPT so secret pages exist only in the sensitive EPT. All guest syscalls
// become hypercalls (the major source of Dune's residual overhead).
#ifndef MEMSENTRY_SRC_DUNE_DUNE_H_
#define MEMSENTRY_SRC_DUNE_DUNE_H_

#include <functional>
#include <unordered_map>

#include "src/base/status.h"
#include "src/base/types.h"
#include "src/machine/phys_mem.h"
#include "src/vmx/ept.h"

namespace memsentry::dune {

// Hypercall numbers (the MemSentry-modified Dune ABI).
inline constexpr uint64_t kHcMarkPrivate = 1;  // a0 = gpa, a1 = pages, a2 = ept index
inline constexpr uint64_t kHcSyscall = 2;      // a0 = syscall nr, a1/a2 = args

using GuestSyscallHandler = std::function<uint64_t(uint64_t nr, uint64_t a0, uint64_t a1)>;

class DuneVm {
 public:
  explicit DuneVm(machine::PhysicalMemory* pmem);

  DuneVm(const DuneVm&) = delete;
  DuneVm& operator=(const DuneVm&) = delete;

  vmx::VmxContext& vmx() { return vmx_; }

  // Allocates one guest-physical frame backed by a fresh host frame and maps
  // it into every EPT (Dune fills EPTs on demand; we map eagerly — the guest
  // observes the same thing without modeling EPT-fault replay).
  StatusOr<GuestPhysAddr> AllocGuestFrame();

  // Creates an additional EPT pre-populated with all current *shared*
  // mappings. Returns its EPTP index.
  StatusOr<int> CreateEpt();

  // The MemSentry hypercall: restrict [gpa, gpa + pages) to `ept_index` only.
  // Frames are unmapped from every other EPT; future EPTs won't see them.
  Status MarkPrivate(GuestPhysAddr gpa, uint64_t pages, int ept_index);

  // Host-physical frame backing a guest frame (for the simulated kernel).
  StatusOr<PhysAddr> HostFrame(GuestPhysAddr gpa) const;

  void SetSyscallHandler(GuestSyscallHandler handler) { syscall_ = std::move(handler); }

  uint64_t hypercall_count() const { return hypercall_count_; }

  // Crash-safe snapshots: the guest-frame table, allocation cursor,
  // hypercall count and EPT roots. The syscall handler is reinstalled by
  // deterministic setup, not serialized.
  void SaveState(machine::SnapshotWriter& w) const;
  Status LoadState(machine::SnapshotReader& r);

 private:
  uint64_t HandleHypercall(uint64_t nr, uint64_t a0, uint64_t a1, uint64_t a2);

  struct GuestFrame {
    PhysAddr host = 0;
    int private_to = -1;  // -1 == shared across all EPTs
  };

  machine::PhysicalMemory* pmem_;
  vmx::VmxContext vmx_;
  std::unordered_map<uint64_t, GuestFrame> frames_;  // keyed by guest page number
  GuestPhysAddr next_gpa_ = kPageSize;               // guest-phys 0 stays unmapped
  GuestSyscallHandler syscall_;
  uint64_t hypercall_count_ = 0;
};

}  // namespace memsentry::dune

#endif  // MEMSENTRY_SRC_DUNE_DUNE_H_

#include "src/dune/dune.h"

namespace memsentry::dune {

DuneVm::DuneVm(machine::PhysicalMemory* pmem) : pmem_(pmem), vmx_(pmem) {
  // EPT 0 always exists: the default (nonsensitive) domain.
  auto ept0 = vmx_.CreateEpt();
  (void)ept0;
  vmx_.SetHypercallHandler([this](uint64_t nr, uint64_t a0, uint64_t a1, uint64_t a2) {
    return HandleHypercall(nr, a0, a1, a2);
  });
}

StatusOr<GuestPhysAddr> DuneVm::AllocGuestFrame() {
  MEMSENTRY_ASSIGN_OR_RETURN(PhysAddr host, pmem_->AllocFrame());
  const GuestPhysAddr gpa = next_gpa_;
  next_gpa_ += kPageSize;
  frames_[PageNumber(gpa)] = GuestFrame{.host = host, .private_to = -1};
  for (int i = 0; i < vmx_.ept_count(); ++i) {
    MEMSENTRY_RETURN_IF_ERROR(vmx_.ept(i).Map(gpa, host));
  }
  return gpa;
}

StatusOr<int> DuneVm::CreateEpt() {
  MEMSENTRY_ASSIGN_OR_RETURN(int index, vmx_.CreateEpt());
  for (const auto& [gpn, frame] : frames_) {
    if (frame.private_to == -1 || frame.private_to == index) {
      MEMSENTRY_RETURN_IF_ERROR(vmx_.ept(index).Map(gpn << kPageShift, frame.host));
    }
  }
  return index;
}

Status DuneVm::MarkPrivate(GuestPhysAddr gpa, uint64_t pages, int ept_index) {
  if (ept_index < 0 || ept_index >= vmx_.ept_count()) {
    return InvalidArgument("no such EPT");
  }
  for (uint64_t p = 0; p < pages; ++p) {
    const uint64_t gpn = PageNumber(gpa) + p;
    auto it = frames_.find(gpn);
    if (it == frames_.end()) {
      return NotFound("guest frame not allocated");
    }
    it->second.private_to = ept_index;
    for (int i = 0; i < vmx_.ept_count(); ++i) {
      if (i == ept_index) {
        continue;
      }
      // Unmap from the other EPTs; ignore "wasn't mapped" for idempotence.
      (void)vmx_.ept(i).Unmap(gpn << kPageShift);
    }
  }
  return OkStatus();
}

StatusOr<PhysAddr> DuneVm::HostFrame(GuestPhysAddr gpa) const {
  auto it = frames_.find(PageNumber(gpa));
  if (it == frames_.end()) {
    return NotFound("guest frame not allocated");
  }
  return it->second.host | PageOffset(gpa);
}

uint64_t DuneVm::HandleHypercall(uint64_t nr, uint64_t a0, uint64_t a1, uint64_t a2) {
  ++hypercall_count_;
  switch (nr) {
    case kHcMarkPrivate: {
      const Status status = MarkPrivate(a0, a1, static_cast<int>(a2));
      return status.ok() ? 0 : static_cast<uint64_t>(-1);
    }
    case kHcSyscall:
      if (syscall_) {
        return syscall_(a0, a1, a2);
      }
      return static_cast<uint64_t>(-1);
    default:
      return static_cast<uint64_t>(-1);
  }
}

}  // namespace memsentry::dune

#include "src/dune/dune.h"

#include <algorithm>
#include <vector>

#include "src/machine/snapshot.h"

namespace memsentry::dune {

namespace {
constexpr uint32_t kTagDune = 0x44554E45;  // "DUNE"
}  // namespace

DuneVm::DuneVm(machine::PhysicalMemory* pmem) : pmem_(pmem), vmx_(pmem) {
  // EPT 0 always exists: the default (nonsensitive) domain.
  auto ept0 = vmx_.CreateEpt();
  (void)ept0;
  vmx_.SetHypercallHandler([this](uint64_t nr, uint64_t a0, uint64_t a1, uint64_t a2) {
    return HandleHypercall(nr, a0, a1, a2);
  });
}

StatusOr<GuestPhysAddr> DuneVm::AllocGuestFrame() {
  MEMSENTRY_ASSIGN_OR_RETURN(PhysAddr host, pmem_->AllocFrame());
  const GuestPhysAddr gpa = next_gpa_;
  next_gpa_ += kPageSize;
  frames_[PageNumber(gpa)] = GuestFrame{.host = host, .private_to = -1};
  for (int i = 0; i < vmx_.ept_count(); ++i) {
    MEMSENTRY_RETURN_IF_ERROR(vmx_.ept(i).Map(gpa, host));
  }
  return gpa;
}

StatusOr<int> DuneVm::CreateEpt() {
  MEMSENTRY_ASSIGN_OR_RETURN(int index, vmx_.CreateEpt());
  for (const auto& [gpn, frame] : frames_) {
    if (frame.private_to == -1 || frame.private_to == index) {
      MEMSENTRY_RETURN_IF_ERROR(vmx_.ept(index).Map(gpn << kPageShift, frame.host));
    }
  }
  return index;
}

Status DuneVm::MarkPrivate(GuestPhysAddr gpa, uint64_t pages, int ept_index) {
  if (ept_index < 0 || ept_index >= vmx_.ept_count()) {
    return InvalidArgument("no such EPT");
  }
  for (uint64_t p = 0; p < pages; ++p) {
    const uint64_t gpn = PageNumber(gpa) + p;
    auto it = frames_.find(gpn);
    if (it == frames_.end()) {
      return NotFound("guest frame not allocated");
    }
    it->second.private_to = ept_index;
    for (int i = 0; i < vmx_.ept_count(); ++i) {
      if (i == ept_index) {
        continue;
      }
      // Unmap from the other EPTs; ignore "wasn't mapped" for idempotence.
      (void)vmx_.ept(i).Unmap(gpn << kPageShift);
    }
  }
  return OkStatus();
}

StatusOr<PhysAddr> DuneVm::HostFrame(GuestPhysAddr gpa) const {
  auto it = frames_.find(PageNumber(gpa));
  if (it == frames_.end()) {
    return NotFound("guest frame not allocated");
  }
  return it->second.host | PageOffset(gpa);
}

uint64_t DuneVm::HandleHypercall(uint64_t nr, uint64_t a0, uint64_t a1, uint64_t a2) {
  ++hypercall_count_;
  switch (nr) {
    case kHcMarkPrivate: {
      const Status status = MarkPrivate(a0, a1, static_cast<int>(a2));
      return status.ok() ? 0 : static_cast<uint64_t>(-1);
    }
    case kHcSyscall:
      if (syscall_) {
        return syscall_(a0, a1, a2);
      }
      return static_cast<uint64_t>(-1);
    default:
      return static_cast<uint64_t>(-1);
  }
}

void DuneVm::SaveState(machine::SnapshotWriter& w) const {
  w.PutTag(kTagDune);
  w.PutU64(next_gpa_);
  w.PutU64(hypercall_count_);
  // Sorted guest page numbers so the blob is independent of hash-map order.
  std::vector<uint64_t> gpns;
  gpns.reserve(frames_.size());
  for (const auto& [gpn, frame] : frames_) {
    gpns.push_back(gpn);
  }
  std::sort(gpns.begin(), gpns.end());
  w.PutU64(gpns.size());
  for (const uint64_t gpn : gpns) {
    const GuestFrame& frame = frames_.at(gpn);
    w.PutU64(gpn);
    w.PutU64(frame.host);
    w.PutI32(frame.private_to);
  }
  vmx_.SaveState(w);
}

Status DuneVm::LoadState(machine::SnapshotReader& r) {
  if (!r.ExpectTag(kTagDune, "dune")) {
    return r.status();
  }
  const uint64_t next = r.U64();
  const uint64_t hypercalls = r.U64();
  const uint64_t count = r.U64();
  if (!r.FitCount(count, 20)) {
    return r.status();
  }
  std::unordered_map<uint64_t, GuestFrame> frames;
  frames.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t gpn = r.U64();
    GuestFrame frame;
    frame.host = r.U64();
    frame.private_to = r.I32();
    frames[gpn] = frame;
  }
  MEMSENTRY_RETURN_IF_ERROR(r.status());
  MEMSENTRY_RETURN_IF_ERROR(vmx_.LoadState(r));
  next_gpa_ = next;
  hypercall_count_ = hypercalls;
  frames_ = std::move(frames);
  return OkStatus();
}

}  // namespace memsentry::dune

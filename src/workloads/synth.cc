#include "src/workloads/synth.h"

#include <algorithm>
#include <cassert>

#include "src/base/rng.h"
#include "src/ir/builder.h"

namespace memsentry::workloads {
namespace {

inline constexpr uint64_t kStride = 64;  // one cache line per pointer advance
inline constexpr int kBodyKis = 20;      // body models 20k instructions so
                                         // sub-1/ki event rates materialize

enum class Token { kLoad, kStore, kCall, kVec, kSyscall, kSafeData, kFiller };

void EmitCallee(ir::Builder& builder, const SpecProfile& profile, int flavor) {
  // Small leaf: a few ALU/vector ops and a return. The body mix already
  // counts these instructions via the call token's cost.
  builder.AluRR(kRegScratch, kRegValue, /*alu_op=*/0);
  if (profile.vec_frac > 0.25 && flavor % 2 == 0) {
    builder.VecOp(profile.vec_pressure);
  } else {
    builder.AddImm(kRegScratch, flavor + 1);
  }
  builder.AluRR(kRegScratch, kRegValue, /*alu_op=*/2);
  builder.Ret();
}

}  // namespace

ir::Module SynthesizeSpecProgram(const SpecProfile& profile, const SynthOptions& options) {
  ir::Module module;
  ir::Builder builder(&module);
  Rng rng(options.seed);

  // Entry must be function 0; callees follow.
  const int entry = builder.CreateFunction("main");
  module.entry = entry;
  std::vector<int> callees;
  for (int i = 0; i < options.num_callees; ++i) {
    const int f = builder.CreateFunction("leaf" + std::to_string(i));
    EmitCallee(builder, profile, i);
    callees.push_back(f);
  }

  // Token multiset for one body (kBodyKis kilo-instructions).
  const auto count = [](double per_ki) {
    return static_cast<uint64_t>(per_ki * kBodyKis + 0.5);
  };
  const uint64_t loads = count(profile.loads_per_ki);
  const uint64_t stores = count(profile.stores_per_ki);
  const uint64_t calls = count(profile.calls_per_ki);
  const uint64_t vecs = count(profile.vec_frac * 1000.0);
  const uint64_t syscalls = count(profile.syscalls_per_ki);
  const uint64_t safe_accesses = count(options.safe_accesses_per_ki);
  const double call_cost = 5.0 + profile.indirect_frac;
  const double used = 2.0 * static_cast<double>(loads + stores) +
                      call_cost * static_cast<double>(calls) + static_cast<double>(vecs) +
                      static_cast<double>(syscalls) + 3.0 * static_cast<double>(safe_accesses);
  const uint64_t budget = 1000 * kBodyKis;
  const uint64_t fillers =
      used >= static_cast<double>(budget) ? 0 : static_cast<uint64_t>(budget - used);

  std::vector<Token> tokens;
  tokens.reserve(loads + stores + calls + vecs + syscalls + fillers);
  tokens.insert(tokens.end(), loads, Token::kLoad);
  tokens.insert(tokens.end(), stores, Token::kStore);
  tokens.insert(tokens.end(), calls, Token::kCall);
  tokens.insert(tokens.end(), vecs, Token::kVec);
  tokens.insert(tokens.end(), syscalls, Token::kSyscall);
  tokens.insert(tokens.end(), safe_accesses, Token::kSafeData);
  tokens.insert(tokens.end(), fillers, Token::kFiller);
  // Fisher-Yates shuffle for a deterministic interleaving.
  for (size_t i = tokens.size(); i > 1; --i) {
    std::swap(tokens[i - 1], tokens[rng.Below(i)]);
  }

  // Working-set wrap masks: base is a single high bit far above ws, so
  // (ptr + stride) & (base | (ws - 1)) keeps a pointer inside its window.
  // Hot accesses stay in an L1-resident window; cold accesses stream over
  // the full working set and essentially never revisit a line.
  const uint64_t ws_bytes = profile.ws_kb * 1024;
  assert((ws_bytes & (ws_bytes - 1)) == 0 && "working set must be a power of two");
  const uint64_t hot_bytes = std::min<uint64_t>(ws_bytes, 16 * 1024);
  const uint64_t hot_mask = sim::kWorkingSetBase | (hot_bytes - 1);
  const uint64_t cold_mask = sim::kWorkingSetBase | (ws_bytes - 1);

  // --- entry block 0: setup ---
  builder.SetInsertPoint(entry, 0);
  builder.MovImm(kRegWsBase, sim::kWorkingSetBase);
  builder.MovImm(kRegPtr, sim::kWorkingSetBase);
  builder.MovImm(kRegColdPtr, sim::kWorkingSetBase);
  builder.MovImm(kRegValue, 0x123456789abcdef0ULL);
  builder.MovImm(kRegScratch, 1);
  builder.MovImm(kRegConst8, 8);
  if (safe_accesses > 0) {
    // Park a pointer to the safe region in a table slot; half of the
    // kSafeData accesses reload it from memory, defeating static provenance
    // tracking exactly as heap-carried pointers defeat DSA.
    builder.MovImm(kRegDefScratch, options.safe_region_base);
    builder.MovImm(kRegICallTarget, sim::kTableBase);
    builder.Store(kRegICallTarget, kRegDefScratch);
  }

  // --- body ---
  const int body_block = builder.NewBlock();
  const int exit_block = builder.NewBlock();
  builder.SetInsertPoint(entry, body_block);
  bool advance = false;
  uint32_t callsite = 0;
  uint64_t body_instrs = 0;
  // Returns the register holding the access address for this token.
  auto emit_access_addr = [&]() -> machine::Gpr {
    if (rng.NextDouble() < profile.cold_frac) {
      // Cold stream: always advances one line, wraps over the full set.
      builder.AddImm(kRegColdPtr, static_cast<int64_t>(kStride));
      builder.AndImm(kRegColdPtr, cold_mask);
      body_instrs += 2;
      return kRegColdPtr;
    }
    advance = !advance;
    if (advance) {
      builder.AddImm(kRegPtr, static_cast<int64_t>(kStride));
      builder.AndImm(kRegPtr, hot_mask);
      body_instrs += 2;
    }
    return kRegPtr;
  };
  for (Token token : tokens) {
    switch (token) {
      case Token::kLoad:
        builder.Load(kRegValue, emit_access_addr());
        body_instrs += 1;
        break;
      case Token::kStore:
        builder.Store(emit_access_addr(), kRegValue);
        body_instrs += 1;
        break;
      case Token::kCall: {
        const int callee = callees[rng.Below(callees.size())];
        if (rng.NextDouble() < profile.indirect_frac) {
          builder.MovImm(kRegICallTarget, static_cast<uint64_t>(callee));
          builder.IndirectCall(kRegICallTarget, callsite++);
          body_instrs += 2;
        } else {
          builder.Call(callee);
          body_instrs += 1;
        }
        body_instrs += 4;  // callee body executes too
        break;
      }
      case Token::kVec:
        builder.VecOp(profile.vec_pressure);
        body_instrs += 1;
        break;
      case Token::kSyscall:
        builder.Syscall(0);
        body_instrs += 1;
        break;
      case Token::kSafeData: {
        const uint64_t offset =
            (rng.Below(options.safe_region_size / 8)) * 8;  // 8-byte aligned
        if (rng.Chance(0.5)) {
          // Constant pointer: static analysis can prove the target.
          builder.MovImm(kRegDefScratch, options.safe_region_base + offset);
          body_instrs += 1;
        } else {
          // Pointer reloaded from memory: unknown provenance for DSA.
          builder.MovImm(kRegDefScratch, sim::kTableBase);
          builder.Load(kRegDefScratch, kRegDefScratch);
          builder.Lea(kRegDefScratch, kRegDefScratch, static_cast<int64_t>(offset));
          body_instrs += 3;
        }
        if (rng.Chance(0.5)) {
          builder.Load(kRegValue, kRegDefScratch);
        } else {
          builder.Store(kRegDefScratch, kRegValue);
        }
        body_instrs += 1;
        break;
      }
      case Token::kFiller:
        if (rng.Chance(0.5)) {
          builder.AluRR(kRegScratch, kRegValue, /*alu_op=*/0);
        } else {
          builder.AddImm(kRegScratch, 3);
        }
        body_instrs += 1;
        break;
    }
  }
  builder.AddImm(kRegCounter, -1);
  builder.CondBr(body_block);
  body_instrs += 2;

  builder.SetInsertPoint(entry, exit_block);
  builder.Halt();

  // Now that the true body size is known, set the iteration count in setup.
  const uint64_t iterations =
      std::max<uint64_t>(1, (options.target_instructions + body_instrs / 2) / body_instrs);
  builder.SetInsertPoint(entry, 0);
  builder.MovImm(kRegCounter, iterations);
  builder.Jmp(body_block);

  return module;
}

Status PrepareWorkloadProcess(sim::Process& process, const SpecProfile& profile) {
  process.machine().cost.load_latency_exposure = profile.mem_exposure;
  MEMSENTRY_RETURN_IF_ERROR(process.SetupStack());
  // One table page for dispatch/pointer slots used by defenses and the
  // program-data scenario.
  MEMSENTRY_RETURN_IF_ERROR(process.MapRange(sim::kTableBase, 1, machine::PageFlags::Data()));
  const uint64_t ws_pages = (profile.ws_kb * 1024) >> kPageShift;
  return process.MapRange(sim::kWorkingSetBase, ws_pages, machine::PageFlags::Data());
}

ir::Module BuildLoop(const std::vector<ir::Instr>& body, uint64_t iters) {
  ir::Module module;
  ir::Builder builder(&module);
  const int f = builder.CreateFunction("microloop");
  module.entry = f;
  builder.MovImm(kRegCounter, iters);
  builder.MovImm(kRegWsBase, sim::kWorkingSetBase);
  builder.MovImm(kRegPtr, sim::kWorkingSetBase);
  const int loop = builder.NewBlock();
  const int exit = builder.NewBlock();
  builder.SetInsertPoint(f, 0);
  builder.Jmp(loop);
  builder.SetInsertPoint(f, loop);
  for (const ir::Instr& instr : body) {
    builder.Emit(instr);
  }
  builder.AddImm(kRegCounter, -1);
  builder.CondBr(loop);
  builder.SetInsertPoint(f, exit);
  builder.Halt();
  return module;
}

}  // namespace memsentry::workloads

// Request-driven multi-tenant server workload: N tenants (1 → 10,000), each
// with its own safe region, ASID and protection technique, multiplexed on one
// simulated CPU by sim::Scheduler. This is the paper's deployment story — a
// long-lived server guarding per-client session secrets (ERIM's
// nginx/OpenSSL scenario) — turned into a measured workload: a seeded
// open-loop generator issues requests whose mix models connection setup, a
// crypto handshake that touches the tenant's safe region (real AES-128 via
// src/aes), syscall-heavy I/O through sim::Kernel, and teardown.
//
// Determinism contract: a run is a pure function of ServerConfig. Arrivals
// are drawn from seeded per-tenant streams over a technique-independent
// horizon (so latency differences between techniques are technique-induced,
// never load-induced), the scheduler is deterministic, and every modeled
// cycle flows through the same MMU/CostModel paths as the rest of the
// simulator — bit-identical across `--jobs` values and fastpath modes.
#ifndef MEMSENTRY_SRC_WORKLOADS_SERVER_H_
#define MEMSENTRY_SRC_WORKLOADS_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/ir/module.h"
#include "src/machine/registers.h"
#include "src/sim/decoded.h"
#include "src/sim/kernel.h"
#include "src/sim/process.h"
#include "src/sim/scheduler.h"

namespace memsentry::workloads {

// The protection techniques the server can deploy per tenant. VMFUNC is
// deliberately absent: one EPT per tenant caps out at the 512-entry EPTP
// list (Table 3), far short of 10k tenants — the sweep documents that limit
// by construction instead of modeling around it.
enum class ServerTechnique {
  kInfoHide,   // hidden-address baseline: plain accesses, secrecy only
  kMpk,        // per-tenant pkey, multiplexed over the 15 usable keys
  kCrypt,      // per-tenant AES key schedule, region encrypted at rest
  kSfi,        // address-masking cost on every safe access
  kMprotect,   // PROT_NONE at rest, mprotect open/close per handshake
};

const char* ServerTechniqueName(ServerTechnique technique);
// All five, in sweep order.
std::vector<ServerTechnique> AllServerTechniques();

struct ServerConfig {
  int tenants = 100;
  ServerTechnique technique = ServerTechnique::kMpk;
  uint64_t seed = 0x5e9f3a1cULL;
  int requests_per_tenant = 8;
  uint64_t safe_region_bytes = 64;   // per-tenant session secret
  int io_syscalls_per_request = 6;
  // Offered load as a fraction of nominal single-tenant capacity; the
  // arrival horizon scales with total requests so the generator stays
  // open-loop (arrivals never wait for completions).
  double offered_load = 0.8;
  sim::SchedulerConfig sched;
};

struct ServerResult {
  uint64_t requests = 0;
  uint64_t faults = 0;            // must be 0: a fault mid-request is a bug
  Cycles total_cycles = 0;        // scheduler clock when the last request completed
  double requests_per_sec = 0.0;  // at the calibrated 4 GHz nominal clock
  Cycles p50_latency = 0;         // arrival -> completion, includes queueing
  Cycles p99_latency = 0;
  Cycles p999_latency = 0;
  double tlb_hit_rate = 0.0;
  double grant_hit_rate = 0.0;
  uint64_t context_switches = 0;
  uint64_t preemptions = 0;
  uint64_t syscalls = 0;
  int resident_vpids = 0;         // distinct ASIDs in the TLB at end of run
  // FNV-1a over per-tenant busy cycles, completions and syscall counts plus
  // the full latency vector — the bit-identity probe the determinism tests
  // and the --check-determinism runner mode compare.
  uint64_t digest = 0;
};

// The engine behind RunServerWorkload, exposed so tests can set up the
// tenant population and probe isolation without running the full schedule.
class ServerEngine {
 public:
  explicit ServerEngine(const ServerConfig& config);

  // Maps every tenant's scratch page and safe region, fills the secrets,
  // applies the technique's at-rest protection, installs the kernel.
  Status Setup();

  // Runs the open-loop request schedule to completion. Requires Setup().
  ServerResult Run();

  sim::Process& process() { return process_; }
  sim::Kernel& kernel() { return kernel_; }
  int tenants() const { return config_.tenants; }

  // ASID 0 is the kernel/idle context; tenants are 1-based.
  uint16_t TenantAsid(int tenant) const { return static_cast<uint16_t>(tenant + 1); }
  VirtAddr TenantSecretBase(int tenant) const;
  VirtAddr TenantScratchBase(int tenant) const;
  // MPK: the (multiplexed) protection key guarding this tenant's region.
  // With more than 15 tenants, keys repeat — the documented hardware limit.
  uint8_t TenantKey(int tenant) const;

  // The PKRU a tenant's steady state runs under (MPK: every multiplexed key
  // closed) and the PKRU its handshake opens (only its own key enabled).
  machine::Pkru AtRestPkru() const;
  machine::Pkru OpenPkru(int tenant) const;

  // Isolation probe for tests: attempts an MMU read of `victim`'s secret
  // from `attacker`'s steady state (at-rest PKRU, attacker's ASID).
  machine::FaultOr<uint64_t> ProbeCrossTenantRead(int attacker, int victim);

  // The technique's request-path µop stream, shared across every tenant
  // (and across engines of the same technique) through the process-wide
  // sim::DecodeCache. Built and validated during Setup().
  const ir::Module& request_module() const { return request_module_; }
  const std::shared_ptr<const sim::DecodedModule>& decoded_request() const {
    return decoded_request_;
  }

 private:
  Cycles RunPhase(uint16_t tenant, uint64_t seq, int phase, bool* done);
  Cycles OpenRegion(int tenant);   // technique-specific open, returns cycles
  Cycles CloseRegion(int tenant);  // technique-specific close
  // One priced MMU access; faults are counted, not fatal.
  Cycles TouchRead(VirtAddr va);
  Cycles TouchWrite(VirtAddr va, uint64_t value);
  // Builds request_module_, has every tenant draw the decoded stream from
  // the shared cache (one lowering per technique suite-wide), and proves
  // the lowering executes by running it on a scratch machine. Digest-
  // neutral: the engine's own machine state is never touched.
  Status BuildSharedRequestStream();

  ServerConfig config_;
  sim::Machine machine_;
  sim::Process process_;
  sim::Kernel kernel_;
  bool setup_done_ = false;
  uint64_t faults_ = 0;
  std::vector<uint8_t> tenant_keys_;            // MPK multiplexed key per tenant
  std::vector<aes::KeySchedule> tenant_keys_aes_;  // crypt: per-tenant schedule
  std::vector<uint64_t> tenant_nonces_;
  ir::Module request_module_;
  std::shared_ptr<const sim::DecodedModule> decoded_request_;
};

ServerResult RunServerWorkload(const ServerConfig& config);

// One cell of the scalability sweep.
struct ServerSweepCell {
  int tenants = 0;
  ServerTechnique technique = ServerTechnique::kInfoHide;
  ServerResult result;
};

// Runs |tenant_counts| x |techniques| cells via ParallelMap. Every cell
// builds its own Machine/Process/Kernel from the deterministic config, so
// results are positionally identical for any `jobs` value.
std::vector<ServerSweepCell> RunServerSweep(const std::vector<int>& tenant_counts,
                                            const std::vector<ServerTechnique>& techniques,
                                            const ServerConfig& base, int jobs);

}  // namespace memsentry::workloads

#endif  // MEMSENTRY_SRC_WORKLOADS_SERVER_H_

// Program synthesis: turns a SpecProfile into an executable IR program whose
// instruction mix matches the profile, plus helpers for building microbench
// loops (Table 4) and preparing a process to run a workload.
#ifndef MEMSENTRY_SRC_WORKLOADS_SYNTH_H_
#define MEMSENTRY_SRC_WORKLOADS_SYNTH_H_

#include <cstdint>
#include <vector>

#include "src/base/status.h"
#include "src/ir/module.h"
#include "src/sim/process.h"
#include "src/workloads/spec_profiles.h"

namespace memsentry::workloads {

// Register conventions for synthesized programs (see src/sim/executor.cc for
// the executor-imposed ones: rsp = stack, r11 = link register):
//   r8  working-set base          r9   roving data pointer
//   r10 indirect-call target      rbx  load/store value register
//   r13 outer loop counter        rsi  filler scratch
//   rbp defense scratch           r14  defense table base
//   r15 shadow-stack pointer      rdi  constant 8 (defense index scaling)
//   rcx cold-stream pointer       rax/rdx reserved for instrumentation
inline constexpr machine::Gpr kRegWsBase = machine::Gpr::kR8;
inline constexpr machine::Gpr kRegPtr = machine::Gpr::kR9;
inline constexpr machine::Gpr kRegICallTarget = machine::Gpr::kR10;
inline constexpr machine::Gpr kRegValue = machine::Gpr::kRbx;
inline constexpr machine::Gpr kRegCounter = machine::Gpr::kR13;
inline constexpr machine::Gpr kRegScratch = machine::Gpr::kRsi;
inline constexpr machine::Gpr kRegDefScratch = machine::Gpr::kRbp;
inline constexpr machine::Gpr kRegDefTable = machine::Gpr::kR14;
inline constexpr machine::Gpr kRegShadowPtr = machine::Gpr::kR15;
inline constexpr machine::Gpr kRegConst8 = machine::Gpr::kRdi;
// Cold-stream pointer. rcx is architecturally clobber-listed by wrpkru-style
// instrumentation, but our cost model charges that clobber in cycles rather
// than by rewriting the register, so the workload may carry state here.
inline constexpr machine::Gpr kRegColdPtr = machine::Gpr::kRcx;

struct SynthOptions {
  uint64_t target_instructions = 400'000;  // approximate dynamic length
  uint64_t seed = 0xbe7cd06eULL;
  int num_callees = 6;  // leaf functions reachable by (indirect) calls

  // Program-data protection scenario (Table 2, last row): emit this many
  // *un-annotated* accesses per ki to the safe region at safe_region_base.
  // Half go through a constant pointer (statically provable), half through a
  // pointer loaded from memory (exactly the provenance DSA cannot track):
  // points-to analysis — static or dynamic profiling — must find them.
  double safe_accesses_per_ki = 0;
  VirtAddr safe_region_base = 0;
  uint64_t safe_region_size = 4096;
};

// Builds a program for `profile`. The program walks a ws_kb working set,
// calls leaf functions directly and indirectly, performs vector work and
// syscalls, all at the profile's per-ki rates.
ir::Module SynthesizeSpecProgram(const SpecProfile& profile, const SynthOptions& options = {});

// Maps the working set and stack for the program and points the cost model's
// load-latency exposure at the profile's value. Call once per fresh process.
Status PrepareWorkloadProcess(sim::Process& process, const SpecProfile& profile);

// Builds `iters` iterations of a loop whose body is `body` — the Table 4
// microbenchmark harness ("timing a tight loop of many iterations").
ir::Module BuildLoop(const std::vector<ir::Instr>& body, uint64_t iters);

}  // namespace memsentry::workloads

#endif  // MEMSENTRY_SRC_WORKLOADS_SYNTH_H_

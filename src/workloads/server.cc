#include "src/workloads/server.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "src/base/rng.h"
#include "src/base/thread_pool.h"
#include "src/ir/builder.h"
#include "src/mpk/mpk.h"
#include "src/sim/decode_cache.h"
#include "src/sim/executor.h"

namespace memsentry::workloads {
namespace {

using sim::Kernel;
using sim::Sysno;

// Nominal modeled cost of one request, used only to scale the arrival
// horizon. Deliberately technique-independent: every technique faces the
// same arrival schedule, so latency differences are purely technique-induced.
inline constexpr double kNominalRequestCycles = 3000.0;
// The cost model is calibrated against a 4 GHz part (Table 4); requests/sec
// reports modeled throughput at that nominal clock.
inline constexpr double kNominalHz = 4e9;

// Request phases, in order. Phases are the scheduler's atomic unit.
inline constexpr int kPhaseSetup = 0;
inline constexpr int kPhaseHandshake = 1;
inline constexpr int kPhaseIo = 2;
inline constexpr int kPhaseTeardown = 3;

uint64_t SplitMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Stateless per-(tenant, request) nonce so phase execution never consumes a
// shared RNG stream — interleaving order can't perturb anything.
uint64_t RequestNonce(uint64_t seed, uint16_t tenant, uint64_t seq) {
  return SplitMix(seed ^ SplitMix(tenant + 1) ^ SplitMix(seq ^ 0xd6e8feb866cc9c21ULL));
}

struct Fnv {
  uint64_t h = 0xcbf29ce484222325ULL;
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
  void MixCycles(Cycles c) { Mix(std::bit_cast<uint64_t>(static_cast<double>(c))); }
};

Cycles NearestRank(const std::vector<Cycles>& sorted, double p) {
  if (sorted.empty()) {
    return 0;
  }
  size_t rank = static_cast<size_t>(std::ceil(p * static_cast<double>(sorted.size())));
  rank = std::max<size_t>(1, std::min(rank, sorted.size()));
  return sorted[rank - 1];
}

}  // namespace

const char* ServerTechniqueName(ServerTechnique technique) {
  switch (technique) {
    case ServerTechnique::kInfoHide: return "info-hide";
    case ServerTechnique::kMpk: return "mpk";
    case ServerTechnique::kCrypt: return "crypt";
    case ServerTechnique::kSfi: return "sfi";
    case ServerTechnique::kMprotect: return "mprotect";
  }
  return "?";
}

std::vector<ServerTechnique> AllServerTechniques() {
  return {ServerTechnique::kInfoHide, ServerTechnique::kMpk, ServerTechnique::kCrypt,
          ServerTechnique::kSfi, ServerTechnique::kMprotect};
}

ServerEngine::ServerEngine(const ServerConfig& config)
    : config_(config), process_(&machine_), kernel_(&process_) {}

VirtAddr ServerEngine::TenantSecretBase(int tenant) const {
  return sim::kSafeRegionBase + static_cast<uint64_t>(tenant) * kPageSize;
}

VirtAddr ServerEngine::TenantScratchBase(int tenant) const {
  return sim::kWorkingSetBase + static_cast<uint64_t>(tenant) * kPageSize;
}

uint8_t ServerEngine::TenantKey(int tenant) const {
  return tenant < static_cast<int>(tenant_keys_.size()) ? tenant_keys_[tenant] : 0;
}

machine::Pkru ServerEngine::AtRestPkru() const {
  machine::Pkru pkru{};
  if (config_.technique == ServerTechnique::kMpk) {
    // Every usable key closed: the server's steady state can reach no
    // tenant's secret. With >15 tenants keys are multiplexed, so "closed"
    // necessarily means closed for whole key-sharing cohorts at once.
    for (uint8_t key = 1; key < mpk::kNumKeys; ++key) {
      pkru.SetAccessDisable(key, true);
      pkru.SetWriteDisable(key, true);
    }
  }
  return pkru;
}

machine::Pkru ServerEngine::OpenPkru(int tenant) const {
  machine::Pkru pkru = AtRestPkru();
  if (config_.technique == ServerTechnique::kMpk) {
    pkru.SetAccessDisable(TenantKey(tenant), false);
    pkru.SetWriteDisable(TenantKey(tenant), false);
  }
  return pkru;
}

Status ServerEngine::Setup() {
  const int n = config_.tenants;
  if (n <= 0 || n > 60000) {  // ASIDs are uint16_t; 0 is reserved
    return InvalidArgument("tenant count out of range");
  }
  if (config_.safe_region_bytes == 0 || config_.safe_region_bytes > kPageSize) {
    return InvalidArgument("safe_region_bytes must be in (0, page]");
  }
  MEMSENTRY_RETURN_IF_ERROR(process_.SetupStack());
  kernel_.Install();

  tenant_keys_.assign(static_cast<size_t>(n), 0);
  std::vector<uint8_t> key_pool;
  if (config_.technique == ServerTechnique::kMpk) {
    // Allocate the 15 usable keys once through the real pkey_alloc surface;
    // tenants beyond 15 share keys round-robin (the libmpk-style
    // virtualization story: hardware has 16 keys, deployments have more
    // domains).
    for (int i = 1; i < mpk::kNumKeys; ++i) {
      const uint64_t rv = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kPkeyAlloc), 0, 0);
      if (sim::IsSysError(rv)) {
        return InternalError("pkey_alloc failed during setup");
      }
      key_pool.push_back(static_cast<uint8_t>(rv));
    }
  }
  if (config_.technique == ServerTechnique::kCrypt) {
    tenant_keys_aes_.resize(static_cast<size_t>(n));
    tenant_nonces_.resize(static_cast<size_t>(n));
  }

  Rng secrets(config_.seed ^ 0xa11ce5c0ff3eULL);
  for (int t = 0; t < n; ++t) {
    const VirtAddr scratch = TenantScratchBase(t);
    const VirtAddr base = TenantSecretBase(t);
    MEMSENTRY_RETURN_IF_ERROR(process_.MapRange(scratch, 1, machine::PageFlags::Data()));
    MEMSENTRY_RETURN_IF_ERROR(process_.MapRange(base, 1, machine::PageFlags::Data()));
    sim::SafeRegion& region =
        process_.AddSafeRegion("tenant" + std::to_string(t), base, config_.safe_region_bytes);
    for (uint64_t off = 0; off + 8 <= config_.safe_region_bytes; off += 8) {
      MEMSENTRY_RETURN_IF_ERROR(process_.Poke64(base + off, secrets.Next()));
    }
    switch (config_.technique) {
      case ServerTechnique::kMpk: {
        const uint8_t key = key_pool[static_cast<size_t>(t) % key_pool.size()];
        tenant_keys_[static_cast<size_t>(t)] = key;
        const uint64_t packed = (uint64_t{1} << 8) | key;
        const uint64_t rv =
            kernel_.Dispatch(static_cast<uint64_t>(Sysno::kPkeyMprotect), base, packed);
        if (sim::IsSysError(rv)) {
          return InternalError("pkey_mprotect failed during setup");
        }
        region.pkey = key;
        break;
      }
      case ServerTechnique::kCrypt: {
        aes::Block key_block{};
        for (int i = 0; i < 2; ++i) {
          const uint64_t word = secrets.Next();
          std::memcpy(key_block.data() + 8 * i, &word, 8);
        }
        tenant_keys_aes_[static_cast<size_t>(t)] = aes::ExpandKey(key_block);
        tenant_nonces_[static_cast<size_t>(t)] = secrets.Next();
        std::vector<uint8_t> buf(config_.safe_region_bytes);
        MEMSENTRY_RETURN_IF_ERROR(process_.PeekBytes(base, buf.data(), buf.size()));
        aes::CryptRegion(buf, tenant_keys_aes_[static_cast<size_t>(t)],
                         tenant_nonces_[static_cast<size_t>(t)]);
        MEMSENTRY_RETURN_IF_ERROR(process_.PokeBytes(base, buf.data(), buf.size()));
        region.crypt = true;
        region.encrypted_now = true;
        region.nonce = tenant_nonces_[static_cast<size_t>(t)];
        region.enc_keys = tenant_keys_aes_[static_cast<size_t>(t)];
        break;
      }
      case ServerTechnique::kMprotect: {
        const uint64_t rv =
            kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMprotect), base, sim::kProtNone);
        if (sim::IsSysError(rv)) {
          return InternalError("mprotect failed during setup");
        }
        region.mprotected = true;
        break;
      }
      case ServerTechnique::kSfi:
      case ServerTechnique::kInfoHide:
        break;
    }
  }
  process_.regs().pkru = AtRestPkru();
  MEMSENTRY_RETURN_IF_ERROR(BuildSharedRequestStream());
  setup_done_ = true;
  return OkStatus();
}

namespace {

// One connection's request path (setup / handshake / io / teardown) as a
// straight-line IR stream, with the technique's per-access story inlined:
// SFI masks every pointer, MPK brackets the handshake in wrpkru, mprotect
// opens and closes the safe regions, crypt pays AES vector rounds. Content
// depends only on the technique, so every engine of one technique keys the
// same DecodeCache entry no matter its tenant count.
ir::Module BuildRequestModule(ServerTechnique technique) {
  using machine::Gpr;
  ir::Module m;
  ir::Builder b(&m);
  b.CreateFunction("request");
  const VirtAddr scratch = sim::kWorkingSetBase;  // tenant-0 scratch page

  auto mask = [&](Gpr reg) {
    if (technique == ServerTechnique::kSfi) {
      b.AndImm(reg, ~uint64_t{0}).flags |= ir::kFlagInstrumentation;
    }
  };

  // Setup: parse the connection, stash session state, one accept syscall.
  // The scratch base lives in r12 — syscalls overwrite rax with their
  // return value.
  b.MovImm(Gpr::kR12, scratch);
  b.MovImm(Gpr::kRbx, 0x5e9f);
  mask(Gpr::kR12);
  b.Store(Gpr::kR12, Gpr::kRbx);
  b.Load(Gpr::kRcx, Gpr::kR12);
  b.Syscall(static_cast<uint64_t>(Sysno::kNop));

  // Handshake: open the safe region, touch the secret, do the AES work.
  ir::Instr open;
  ir::Instr close;
  switch (technique) {
    case ServerTechnique::kMpk:
      open.op = ir::Opcode::kWrpkru;
      open.imm = 0;  // all keys open
      close.op = ir::Opcode::kWrpkru;
      close.imm = 0xfffffffc;  // every key but 0 closed, as at rest
      break;
    case ServerTechnique::kMprotect:
      open.op = ir::Opcode::kMprotect;
      open.imm = 1;
      close.op = ir::Opcode::kMprotect;
      close.imm = 0;
      break;
    default:
      open.op = ir::Opcode::kNop;
      close.op = ir::Opcode::kNop;
      break;
  }
  b.Emit(open);
  b.Lea(Gpr::kRdx, Gpr::kR12, 16);
  mask(Gpr::kRdx);
  b.Load(Gpr::kRsi, Gpr::kRdx);
  const int aes_rounds = technique == ServerTechnique::kCrypt ? 22 : 11;
  for (int i = 0; i < aes_rounds; ++i) {
    b.VecOp(i & 3);
  }
  b.AluRR(Gpr::kRsi, Gpr::kRcx, /*xor*/ 2);
  b.Store(Gpr::kRdx, Gpr::kRsi);
  b.Emit(close);

  // IO: two write()-heavy rounds, then teardown and halt.
  for (int i = 0; i < 2; ++i) {
    b.Load(Gpr::kRdi, Gpr::kR12);
    b.AddImm(Gpr::kRdi, 1);
    b.Syscall(static_cast<uint64_t>(Sysno::kWrite));
  }
  b.MovImm(Gpr::kRbx, 0);
  b.Store(Gpr::kR12, Gpr::kRbx);
  b.Syscall(static_cast<uint64_t>(Sysno::kNop));
  b.Halt();
  return m;
}

}  // namespace

Status ServerEngine::BuildSharedRequestStream() {
  request_module_ = BuildRequestModule(config_.technique);
  // Every tenant draws its decoded stream from the shared cache: the first
  // draw anywhere in the suite lowers, every other tenant (and every other
  // engine of this technique) hits.
  for (int t = 0; t < config_.tenants; ++t) {
    decoded_request_ = sim::DecodeCache::Global().Get(request_module_, process_);
  }
  // One bounded run on a scratch machine proves the shared lowering
  // actually executes the request path; the engine's own machine state (and
  // therefore every modeled digest) is untouched.
  sim::Machine scratch_machine;
  sim::Process scratch(&scratch_machine);
  MEMSENTRY_RETURN_IF_ERROR(scratch.SetupStack());
  sim::Kernel scratch_kernel(&scratch);
  scratch_kernel.Install();
  MEMSENTRY_RETURN_IF_ERROR(
      scratch.MapRange(sim::kWorkingSetBase, 1, machine::PageFlags::Data()));
  // Deliberately no SetDecoded: the executor draws from the cache itself
  // (one more deterministic hit), keeping the suite-wide hit count
  // independent of cell scheduling.
  sim::Executor executor(&scratch, &request_module_);
  sim::RunConfig run_config;
  run_config.max_instructions = 4096;
  const sim::RunResult r = executor.Run(run_config);
  if (r.fault.has_value() || !r.halted) {
    char detail[96] = {0};
    if (r.fault.has_value()) {
      std::snprintf(detail, sizeof(detail), "faulted: %s @ 0x%llx after %llu instrs",
                    machine::FaultTypeName(r.fault->type),
                    static_cast<unsigned long long>(r.fault->address),
                    static_cast<unsigned long long>(r.instructions));
    }
    std::string why = r.fault.has_value() ? std::string(detail) : std::string("did not halt");
    return InternalError("shared request stream failed its validation run (" + why + ")");
  }
  return OkStatus();
}

Cycles ServerEngine::TouchRead(VirtAddr va) {
  Cycles cycles = machine_.cost.load_slot;
  auto read = process_.mmu().Read64(va, process_.regs().pkru, &cycles);
  if (!read.ok()) {
    ++faults_;
  }
  return cycles;
}

Cycles ServerEngine::TouchWrite(VirtAddr va, uint64_t value) {
  Cycles cycles = machine_.cost.store_slot;
  auto write = process_.mmu().Write64(va, value, process_.regs().pkru, &cycles);
  if (!write.ok()) {
    ++faults_;
  }
  return cycles;
}

Cycles ServerEngine::OpenRegion(int tenant) {
  const machine::CostModel& cost = machine_.cost;
  switch (config_.technique) {
    case ServerTechnique::kInfoHide:
    case ServerTechnique::kSfi:
      return 0;  // SFI pays per access, info-hide pays nothing
    case ServerTechnique::kMpk:
      process_.regs().pkru = OpenPkru(tenant);
      return cost.wrpkru;
    case ServerTechnique::kMprotect: {
      (void)kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMprotect), TenantSecretBase(tenant),
                             sim::kProtRw);
      return cost.mprotect_call;
    }
    case ServerTechnique::kCrypt: {
      // Genuinely decrypt in place (keys conceptually live in ymm uppers);
      // one CTR pass is ~11 AES rounds per block plus the key extraction.
      sim::SafeRegion& region = process_.safe_regions()[static_cast<size_t>(tenant)];
      std::vector<uint8_t> buf(config_.safe_region_bytes);
      (void)process_.PeekBytes(region.base, buf.data(), buf.size());
      aes::CryptRegion(buf, region.enc_keys, region.nonce);
      (void)process_.PokeBytes(region.base, buf.data(), buf.size());
      region.encrypted_now = false;
      const double blocks =
          std::ceil(static_cast<double>(config_.safe_region_bytes) / aes::kBlockSize);
      return blocks * cost.aes_round * 11.0 + cost.ymm_to_xmm_all_keys;
    }
  }
  return 0;
}

Cycles ServerEngine::CloseRegion(int tenant) {
  const machine::CostModel& cost = machine_.cost;
  switch (config_.technique) {
    case ServerTechnique::kInfoHide:
    case ServerTechnique::kSfi:
      return 0;
    case ServerTechnique::kMpk:
      process_.regs().pkru = AtRestPkru();
      return cost.wrpkru + cost.mpk_clobber_spills;
    case ServerTechnique::kMprotect: {
      (void)kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMprotect), TenantSecretBase(tenant),
                             sim::kProtNone);
      return cost.mprotect_call;
    }
    case ServerTechnique::kCrypt: {
      sim::SafeRegion& region = process_.safe_regions()[static_cast<size_t>(tenant)];
      std::vector<uint8_t> buf(config_.safe_region_bytes);
      (void)process_.PeekBytes(region.base, buf.data(), buf.size());
      aes::CryptRegion(buf, region.enc_keys, region.nonce);
      (void)process_.PokeBytes(region.base, buf.data(), buf.size());
      region.encrypted_now = true;
      const double blocks =
          std::ceil(static_cast<double>(config_.safe_region_bytes) / aes::kBlockSize);
      return blocks * cost.aes_round * 11.0 + cost.ymm_to_xmm_all_keys;
    }
  }
  return 0;
}

Cycles ServerEngine::RunPhase(uint16_t tenant, uint64_t seq, int phase, bool* done) {
  const machine::CostModel& cost = machine_.cost;
  const VirtAddr scratch = TenantScratchBase(tenant);
  const uint64_t nonce = RequestNonce(config_.seed, tenant, seq);
  Cycles cycles = 0;
  switch (phase) {
    case kPhaseSetup: {
      // Accept the connection: parse, allocate session state, one syscall.
      cycles += 16 * cost.alu_slot;
      cycles += TouchWrite(scratch, nonce);
      cycles += TouchWrite(scratch + 8, seq);
      cycles += TouchRead(scratch);
      (void)kernel_.Dispatch(static_cast<uint64_t>(Sysno::kNop), 0, 0);
      cycles += cost.syscall;
      break;
    }
    case kPhaseHandshake: {
      // Open the safe region, derive a session key from the tenant secret,
      // encrypt the client challenge with real AES-128, close the region.
      cycles += OpenRegion(tenant);
      const VirtAddr secret = TenantSecretBase(tenant);
      uint64_t s0 = 0;
      uint64_t s1 = 0;
      {
        Cycles access = 0;
        auto r0 = process_.mmu().Read64(secret, process_.regs().pkru, &access);
        auto r1 = process_.mmu().Read64(secret + 8, process_.regs().pkru, &access);
        cycles += access + 2 * cost.load_slot;
        if (r0.ok()) {
          s0 = r0.value();
        } else {
          ++faults_;
        }
        if (r1.ok()) {
          s1 = r1.value();
        } else {
          ++faults_;
        }
      }
      if (config_.technique == ServerTechnique::kSfi) {
        // Address-masked loads: the mask `and` feeds the load address.
        cycles += 2 * (cost.sfi_and_slot + cost.sfi_and_dep_latency);
      }
      aes::Block session_key{};
      std::memcpy(session_key.data(), &s0, 8);
      std::memcpy(session_key.data() + 8, &s1, 8);
      const aes::KeySchedule schedule = aes::ExpandKey(session_key);
      aes::Block challenge{};
      std::memcpy(challenge.data(), &nonce, 8);
      const uint64_t nonce2 = SplitMix(nonce);
      std::memcpy(challenge.data() + 8, &nonce2, 8);
      const aes::Block response = aes::EncryptBlock(challenge, schedule);
      cycles += cost.aes_keygen10 + cost.aes_round * 11.0;
      uint64_t out0 = 0;
      uint64_t out1 = 0;
      std::memcpy(&out0, response.data(), 8);
      std::memcpy(&out1, response.data() + 8, 8);
      cycles += TouchWrite(scratch + 16, out0);
      cycles += TouchWrite(scratch + 24, out1);
      cycles += CloseRegion(tenant);
      break;
    }
    case kPhaseIo: {
      // Serve the response: write()-heavy I/O through the kernel.
      for (int i = 0; i < config_.io_syscalls_per_request; ++i) {
        cycles += TouchRead(scratch + 16);
        cycles += 8 * cost.alu_slot;
        (void)kernel_.Dispatch(static_cast<uint64_t>(Sysno::kWrite),
                               nonce ^ static_cast<uint64_t>(i), 0);
        cycles += cost.syscall;
      }
      break;
    }
    case kPhaseTeardown:
    default: {
      // Tear the connection down and release session state.
      cycles += 8 * cost.alu_slot;
      cycles += TouchWrite(scratch, 0);
      (void)kernel_.Dispatch(static_cast<uint64_t>(Sysno::kNop), 0, 0);
      cycles += cost.syscall;
      *done = true;
      break;
    }
  }
  return cycles;
}

ServerResult ServerEngine::Run() {
  MEMSENTRY_CONTRACT_CHECK(setup_done_, "ServerEngine::Run before Setup");
  const int n = config_.tenants;
  sim::Scheduler scheduler(config_.sched, static_cast<uint16_t>(n));
  const uint64_t total_requests =
      static_cast<uint64_t>(n) * static_cast<uint64_t>(config_.requests_per_tenant);
  const double horizon =
      static_cast<double>(total_requests) * kNominalRequestCycles / config_.offered_load;

  // Open-loop arrivals: per-tenant seeded uniform draws over the shared
  // horizon, submitted in arrival order per tenant (the scheduler's per-ASID
  // queues are FIFO).
  for (int t = 0; t < n; ++t) {
    Rng arrivals(config_.seed ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(t + 1)));
    std::vector<Cycles> when;
    when.reserve(static_cast<size_t>(config_.requests_per_tenant));
    for (int r = 0; r < config_.requests_per_tenant; ++r) {
      when.push_back(arrivals.NextDouble() * horizon);
    }
    std::sort(when.begin(), when.end());
    for (int r = 0; r < config_.requests_per_tenant; ++r) {
      scheduler.Submit(static_cast<uint16_t>(t), static_cast<uint64_t>(r),
                       when[static_cast<size_t>(r)]);
    }
  }

  // The context switch retargets the MMU's address space (no flush: PR 4's
  // ASID-tagged TLB and grant cache carry each tenant's warm state) and the
  // kernel's syscall attribution.
  scheduler.SetSwitchHook([this](uint16_t tenant) {
    process_.mmu().SetVpid(TenantAsid(tenant));
    kernel_.SetCurrentAsid(TenantAsid(tenant));
  });

  auto completed = scheduler.Run([this](uint16_t tenant, uint64_t seq, int phase, bool* done) {
    return RunPhase(tenant, seq, phase, done);
  });

  ServerResult result;
  result.requests = completed.size();
  result.faults = faults_;
  result.total_cycles = scheduler.clock();
  result.requests_per_sec =
      result.total_cycles > 0
          ? static_cast<double>(result.requests) / (result.total_cycles / kNominalHz)
          : 0.0;
  std::vector<Cycles> latencies;
  latencies.reserve(completed.size());
  for (const sim::CompletedRequest& request : completed) {
    latencies.push_back(request.completion - request.arrival);
  }
  std::sort(latencies.begin(), latencies.end());
  result.p50_latency = NearestRank(latencies, 0.50);
  result.p99_latency = NearestRank(latencies, 0.99);
  result.p999_latency = NearestRank(latencies, 0.999);
  result.tlb_hit_rate = process_.mmu().tlb().stats().HitRate();
  result.grant_hit_rate = process_.mmu().grant_stats().HitRate();
  result.context_switches = scheduler.stats().context_switches;
  result.preemptions = scheduler.stats().preemptions;
  result.syscalls = kernel_.total_syscalls();
  result.resident_vpids = process_.mmu().tlb().CountResidentVpids();

  Fnv digest;
  for (int t = 0; t < n; ++t) {
    digest.MixCycles(scheduler.tenant_busy_cycles(static_cast<uint16_t>(t)));
    digest.Mix(scheduler.tenant_completed(static_cast<uint16_t>(t)));
    digest.Mix(kernel_.asid_syscalls(TenantAsid(t)));
  }
  for (Cycles latency : latencies) {
    digest.MixCycles(latency);
  }
  // Grant-cache hit/miss counters are deliberately absent: with the fast
  // path off the cache is never consulted, so its counters differ across
  // modes by design (they are observability-only and never feed cycles).
  digest.Mix(process_.mmu().tlb().stats().hits);
  digest.Mix(process_.mmu().tlb().stats().misses);
  digest.Mix(result.faults);
  result.digest = digest.h;
  return result;
}

machine::FaultOr<uint64_t> ServerEngine::ProbeCrossTenantRead(int attacker, int victim) {
  process_.mmu().SetVpid(TenantAsid(attacker));
  Cycles cycles = 0;
  return process_.mmu().Read64(TenantSecretBase(victim), AtRestPkru(), &cycles);
}

ServerResult RunServerWorkload(const ServerConfig& config) {
  ServerEngine engine(config);
  const Status setup = engine.Setup();
  if (!setup.ok()) {
    std::fprintf(stderr, "server workload setup: %s\n", setup.message().c_str());
  }
  MEMSENTRY_CONTRACT_CHECK(setup.ok(), "server workload setup failed");
  return engine.Run();
}

std::vector<ServerSweepCell> RunServerSweep(const std::vector<int>& tenant_counts,
                                            const std::vector<ServerTechnique>& techniques,
                                            const ServerConfig& base, int jobs) {
  std::vector<ServerSweepCell> cells;
  for (int tenants : tenant_counts) {
    for (ServerTechnique technique : techniques) {
      ServerSweepCell cell;
      cell.tenants = tenants;
      cell.technique = technique;
      cells.push_back(cell);
    }
  }
  auto results = ParallelMap(jobs, cells.size(), [&](size_t i) {
    ServerConfig config = base;
    config.tenants = cells[i].tenants;
    config.technique = cells[i].technique;
    return RunServerWorkload(config);
  });
  for (size_t i = 0; i < cells.size(); ++i) {
    cells[i].result = results[i];
  }
  return cells;
}

}  // namespace memsentry::workloads

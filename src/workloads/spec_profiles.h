// Synthetic stand-ins for the 19 SPEC CPU2006 C/C++ benchmarks the paper
// evaluates. Each profile is an instruction-mix description (loads, stores,
// call density, indirect-branch fraction, syscall rate, vector pressure,
// working-set size, memory-latency exposure). The synthesizer
// (src/workloads/synth.h) turns a profile into an executable IR program, so
// Figures 3-6 emerge from executing instrumented code rather than from
// closed-form arithmetic. Mixes are drawn from published SPEC
// characterization studies, quantized coarsely — the goal is each benchmark's
// *position* on the paper's figures (call-dense C++ vs FP-vector vs
// memory-bound), not microarchitectural exactness.
#ifndef MEMSENTRY_SRC_WORKLOADS_SPEC_PROFILES_H_
#define MEMSENTRY_SRC_WORKLOADS_SPEC_PROFILES_H_

#include <cstdint>
#include <span>
#include <string>

namespace memsentry::workloads {

struct SpecProfile {
  std::string name;
  bool is_cpp = false;
  // Events per 1000 executed instructions.
  double loads_per_ki = 250;
  double stores_per_ki = 80;
  double calls_per_ki = 8;        // call events; each implies a matching ret
  double indirect_frac = 0.1;     // fraction of calls through function pointers
  double syscalls_per_ki = 0.05;  // incl. allocator-entry events
  // Vector/FP character.
  double vec_frac = 0.0;   // fraction of instructions that are xmm/ymm ops
  int vec_pressure = 0;    // 0..3: live-register pressure class of those ops
  // Memory behaviour. Accesses split between a hot, L1-resident window and
  // a cold stream over the full working set (never revisited -> DRAM).
  uint64_t ws_kb = 1024;        // cold-stream working-set size
  double cold_frac = 0.05;      // fraction of accesses going to the cold stream
  double mem_exposure = 0.25;   // fraction of load latency OoO fails to hide
};

// All 19 C/C++ SPEC CPU2006 benchmarks, in suite order (as on the figures'
// x axes).
std::span<const SpecProfile> SpecCpu2006();

const SpecProfile* FindProfile(const std::string& name);

}  // namespace memsentry::workloads

#endif  // MEMSENTRY_SRC_WORKLOADS_SPEC_PROFILES_H_

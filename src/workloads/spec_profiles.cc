#include "src/workloads/spec_profiles.h"

#include <array>

namespace memsentry::workloads {
namespace {

// Field order: name, cpp, loads, stores, calls, ind_frac, syscalls,
//              vec_frac, vec_pressure, ws_kb, cold_frac, mem_exposure.
const std::array<SpecProfile, 19> kProfiles = {{
    // Interpreter: call-dense, branchy, moderate working set.
    {"400.perlbench", false, 270, 120, 18, 0.40, 0.30, 0.00, 0, 512, 0.03, 0.25},
    // Compression: tight loops, few calls.
    {"401.bzip2", false, 260, 95, 4, 0.05, 0.09, 0.00, 0, 4096, 0.04, 0.20},
    // Compiler: call-dense, large code/data footprint.
    {"403.gcc", false, 260, 110, 14, 0.20, 0.30, 0.00, 0, 8192, 0.05, 0.22},
    // Pointer chasing over a huge graph: memory-bound, instrumentation hides.
    {"429.mcf", false, 320, 55, 3, 0.00, 0.06, 0.00, 0, 65536, 0.60, 0.05},
    // Lattice QCD: vector-heavy FP, streaming working set.
    {"433.milc", false, 230, 90, 2, 0.00, 0.06, 0.35, 3, 32768, 0.30, 0.04},
    // Molecular dynamics: FP-dense but cache-resident.
    {"444.namd", true, 240, 60, 3, 0.05, 0.06, 0.35, 2, 1024, 0.02, 0.22},
    // Go engine: branchy integer code, moderate calls.
    {"445.gobmk", false, 230, 80, 12, 0.10, 0.09, 0.00, 0, 512, 0.03, 0.25},
    // Finite elements (C++): virtual-call heavy, some FP.
    {"447.dealII", true, 290, 95, 16, 0.35, 0.15, 0.20, 2, 4096, 0.05, 0.20},
    // LP solver (C++): FP + pointer-heavy sparse algebra.
    {"450.soplex", true, 300, 65, 8, 0.25, 0.12, 0.25, 2, 16384, 0.15, 0.12},
    // Ray tracer (C++): extremely call-dense, cache-hot.
    {"453.povray", true, 260, 110, 32, 0.45, 0.12, 0.20, 1, 256, 0.01, 0.28},
    // HMM search: load-dense inner loop, nearly no calls.
    {"456.hmmer", false, 340, 140, 2, 0.00, 0.06, 0.00, 0, 256, 0.01, 0.30},
    // Chess engine: branchy, moderate calls.
    {"458.sjeng", false, 220, 80, 14, 0.20, 0.06, 0.00, 0, 512, 0.02, 0.28},
    // Quantum simulation: streaming, vectorizable.
    {"462.libquantum", false, 250, 80, 2, 0.00, 0.06, 0.10, 1, 32768, 0.40, 0.05},
    // Video encoder: load/store dense, some vector work.
    {"464.h264ref", false, 270, 110, 8, 0.15, 0.09, 0.25, 2, 4096, 0.04, 0.20},
    // Lattice Boltzmann: pure streaming FP stencil, almost no calls.
    {"470.lbm", false, 200, 110, 1, 0.00, 0.03, 0.25, 3, 65536, 0.35, 0.04},
    // Discrete-event simulator (C++): indirect-call heavy, allocation heavy.
    {"471.omnetpp", true, 280, 120, 20, 0.55, 0.45, 0.00, 0, 8192, 0.12, 0.15},
    // Pathfinding (C++): pointer-heavy, moderate calls.
    {"473.astar", true, 290, 80, 8, 0.20, 0.09, 0.00, 0, 16384, 0.15, 0.12},
    // Speech recognition: FP + large tables.
    {"482.sphinx3", false, 270, 70, 6, 0.15, 0.09, 0.30, 2, 8192, 0.10, 0.15},
    // XSLT processor (C++): the most call/virtual-dispatch dense benchmark.
    {"483.xalancbmk", true, 280, 90, 42, 0.75, 0.24, 0.00, 0, 2048, 0.03, 0.25},
}};

}  // namespace

std::span<const SpecProfile> SpecCpu2006() { return kProfiles; }

const SpecProfile* FindProfile(const std::string& name) {
  for (const auto& p : kProfiles) {
    if (p.name == name) {
      return &p;
    }
  }
  return nullptr;
}

}  // namespace memsentry::workloads

#include "src/vmx/ept.h"

#include "src/machine/snapshot.h"

namespace memsentry::vmx {

namespace {
constexpr uint32_t kTagVmx = 0x564D5821;  // "VMX!"
}  // namespace

Status Ept::Map(GuestPhysAddr gpa, PhysAddr hpa, EptPerms perms) {
  machine::PageFlags flags;
  flags.writable = perms.write;
  flags.executable = perms.execute;
  flags.user = true;
  return table_.Map(gpa, hpa, flags);
}

Status Ept::Unmap(GuestPhysAddr gpa) { return table_.Unmap(gpa); }

machine::FaultOr<PhysAddr> Ept::Translate(GuestPhysAddr gpa, machine::AccessType access) const {
  auto walk = table_.Walk(gpa);
  if (!walk.ok()) {
    return machine::Fault{machine::FaultType::kEptViolation, gpa, access};
  }
  const uint64_t pte = walk.value().pte;
  if (access == machine::AccessType::kWrite && !machine::PageTable::PteWritable(pte)) {
    return machine::Fault{machine::FaultType::kEptViolation, gpa, access};
  }
  if (access == machine::AccessType::kExecute && machine::PageTable::PteNx(pte)) {
    return machine::Fault{machine::FaultType::kEptViolation, gpa, access};
  }
  return walk.value().phys;
}

StatusOr<int> VmxContext::CreateEpt() {
  if (static_cast<int>(epts_.size()) >= kMaxEptpEntries) {
    return ResourceExhausted("EPTP list full (512 entries)");
  }
  epts_.push_back(std::make_unique<Ept>(pmem_));
  return static_cast<int>(epts_.size()) - 1;
}

machine::FaultOr<bool> VmxContext::VmFunc(uint64_t leaf, uint64_t index) {
  // Only leaf 0 (EPTP switching) exists (paper Section 3.1).
  if (leaf != 0) {
    return machine::Fault{machine::FaultType::kVmExit, leaf, machine::AccessType::kExecute};
  }
  if (index >= epts_.size()) {
    return machine::Fault{machine::FaultType::kVmExit, index, machine::AccessType::kExecute};
  }
  active_ = static_cast<int>(index);
  SetAsidTag(static_cast<uint16_t>(active_ + 1));
  return true;
}

machine::FaultOr<uint64_t> VmxContext::VmCall(uint64_t nr, uint64_t a0, uint64_t a1,
                                              uint64_t a2) {
  if (!hypercall_) {
    return machine::Fault{machine::FaultType::kVmExit, nr, machine::AccessType::kExecute};
  }
  return hypercall_(nr, a0, a1, a2);
}

machine::FaultOr<PhysAddr> VmxContext::TranslateGuestPhys(GuestPhysAddr gpa,
                                                          machine::AccessType access) {
  if (epts_.empty()) {
    return machine::Fault{machine::FaultType::kEptViolation, gpa, access};
  }
  return epts_[static_cast<size_t>(active_)]->Translate(gpa, access);
}

void Ept::SaveState(machine::SnapshotWriter& w) const { table_.SaveState(w); }

Status Ept::LoadState(machine::SnapshotReader& r) { return table_.LoadState(r); }

void VmxContext::SaveState(machine::SnapshotWriter& w) const {
  w.PutTag(kTagVmx);
  w.PutI32(static_cast<int32_t>(epts_.size()));
  w.PutI32(active_);
  for (const auto& ept : epts_) {
    ept->SaveState(w);
  }
}

Status VmxContext::LoadState(machine::SnapshotReader& r) {
  if (!r.ExpectTag(kTagVmx, "vmx")) {
    return r.status();
  }
  const int32_t count = r.I32();
  const int32_t active = r.I32();
  MEMSENTRY_RETURN_IF_ERROR(r.status());
  if (count != static_cast<int32_t>(epts_.size())) {
    return FailedPrecondition("snapshot EPT count does not match the live EPTP list");
  }
  if (active < 0 || active >= count) {
    return InvalidArgument("snapshot active EPT index out of range");
  }
  for (auto& ept : epts_) {
    MEMSENTRY_RETURN_IF_ERROR(ept->LoadState(r));
  }
  active_ = active;
  SetAsidTag(static_cast<uint16_t>(active_ + 1));
  return OkStatus();
}

}  // namespace memsentry::vmx

// VT-x extended page tables. An EPT is a second radix translation —
// guest-physical to host-physical — built in simulated physical memory using
// the same 4-level structure as guest page tables. The VMFUNC isolation
// technique maintains two EPTs that differ only in whether the safe region's
// frames are mapped (paper Section 3.1/5.1).
#ifndef MEMSENTRY_SRC_VMX_EPT_H_
#define MEMSENTRY_SRC_VMX_EPT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/base/status.h"
#include "src/base/types.h"
#include "src/machine/fault.h"
#include "src/machine/mmu.h"
#include "src/machine/page_table.h"
#include "src/machine/phys_mem.h"

namespace memsentry::vmx {

// Read/write/execute permissions of an EPT mapping.
struct EptPerms {
  bool read = true;
  bool write = true;
  bool execute = true;
};

class Ept {
 public:
  explicit Ept(machine::PhysicalMemory* pmem) : table_(pmem) {}

  Status Map(GuestPhysAddr gpa, PhysAddr hpa, EptPerms perms = {});
  Status Unmap(GuestPhysAddr gpa);
  bool IsMapped(GuestPhysAddr gpa) const { return table_.IsMapped(gpa); }

  machine::FaultOr<PhysAddr> Translate(GuestPhysAddr gpa, machine::AccessType access) const;

  // Crash-safe snapshots: the radix root (the structure itself lives in the
  // snapshotted physical memory).
  void SaveState(machine::SnapshotWriter& w) const;
  Status LoadState(machine::SnapshotReader& r);

 private:
  // Reuses the page-table radix machinery; EPT entries have the same
  // frame/permission geometry (we encode X as !NX).
  machine::PageTable table_;
};

// The EPTP list programmed by the hypervisor: VMFUNC leaf 0 lets the guest
// switch among up to 512 entries without a VM exit.
inline constexpr int kMaxEptpEntries = 512;

// Hypercall (vmcall) handler: the "hypervisor" side. Returns a value in rax.
using HypercallHandler =
    std::function<uint64_t(uint64_t nr, uint64_t a0, uint64_t a1, uint64_t a2)>;

// The per-VCPU virtualization context. Implements the MMU's second-level
// translation hook, owns the EPTP list and dispatches VM functions.
class VmxContext : public machine::SecondLevelTranslation {
 public:
  explicit VmxContext(machine::PhysicalMemory* pmem) : pmem_(pmem) { SetAsidTag(1); }

  // Hypervisor-side: creates a new EPT, returns its EPTP-list index.
  StatusOr<int> CreateEpt();
  Ept& ept(int index) { return *epts_[static_cast<size_t>(index)]; }
  int ept_count() const { return static_cast<int>(epts_.size()); }
  int active_index() const { return active_; }

  // Guest-side vmfunc(leaf=0, index): switch the active EPT. Invalid leaves
  // or out-of-range indices cause a VM exit (fault), as on hardware.
  machine::FaultOr<bool> VmFunc(uint64_t leaf, uint64_t index);

  // Guest-side vmcall: exits to the registered hypervisor handler.
  machine::FaultOr<uint64_t> VmCall(uint64_t nr, uint64_t a0, uint64_t a1, uint64_t a2);
  void SetHypercallHandler(HypercallHandler handler) { hypercall_ = std::move(handler); }

  // machine::SecondLevelTranslation:
  machine::FaultOr<PhysAddr> TranslateGuestPhys(GuestPhysAddr gpa,
                                                machine::AccessType access) override;
  int ExtraWalkLevels() const override { return 4; }

  // Crash-safe snapshots: the active index and every EPT root. The live EPT
  // count must equal the snapshot's (restores rebuild the same number of
  // EPTs through deterministic setup before loading).
  void SaveState(machine::SnapshotWriter& w) const;
  Status LoadState(machine::SnapshotReader& r);

 private:
  machine::PhysicalMemory* pmem_;
  std::vector<std::unique_ptr<Ept>> epts_;
  int active_ = 0;
  HypercallHandler hypercall_;
};

}  // namespace memsentry::vmx

#endif  // MEMSENTRY_SRC_VMX_EPT_H_

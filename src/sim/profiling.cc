#include "src/sim/profiling.h"

namespace memsentry::sim {

StatusOr<DynamicPointsToResult> DynamicPointsTo(Process& process, ir::Module& module,
                                                uint64_t max_instructions) {
  RunConfig config;
  config.max_instructions = max_instructions;
  config.record_safe_accesses = true;
  Executor executor(&process, &module);
  const RunResult result = executor.Run(config);
  if (result.fault.has_value()) {
    return FailedPrecondition("profiling run faulted: " + result.fault->ToString() +
                              " (profile before Technique::Prepare)");
  }
  DynamicPointsToResult out;
  out.profile_instructions = result.instructions;
  // Sorted view: annotation is order-independent (flag |=), but a stable
  // iteration order keeps any future diagnostics deterministic.
  for (uint64_t ref : result.SortedSafeAccessRefs()) {
    const int func = static_cast<int>(ref >> 40);
    const int block = static_cast<int>((ref >> 20) & 0xfffff);
    const int index = static_cast<int>(ref & 0xfffff);
    if (func >= static_cast<int>(module.functions.size())) {
      continue;
    }
    auto& blocks = module.functions[static_cast<size_t>(func)].blocks;
    if (block >= static_cast<int>(blocks.size()) ||
        index >= static_cast<int>(blocks[static_cast<size_t>(block)].instrs.size())) {
      continue;
    }
    blocks[static_cast<size_t>(block)].instrs[static_cast<size_t>(index)].flags |=
        ir::kFlagSafeAccess;
    ++out.annotated;
  }
  return out;
}

}  // namespace memsentry::sim

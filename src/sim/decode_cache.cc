#include "src/sim/decode_cache.h"

#include <chrono>
#include <cstring>

#include "src/sim/process.h"

namespace memsentry::sim {
namespace {

inline constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

inline void Mix(uint64_t* h, uint64_t v) {
  // FNV-1a over the value's 8 bytes, avoiding per-byte loop overhead where
  // a whole word is available.
  for (int i = 0; i < 8; ++i) {
    *h = (*h ^ (v & 0xff)) * kFnvPrime;
    v >>= 8;
  }
}

}  // namespace

uint64_t ModuleContentDigest(const ir::Module& module) {
  // The digest is O(instructions); the memo keeps repeated cache lookups of
  // an unmodified module (one per Executor construction in the bench
  // harnesses) at O(1). Touch() invalidates by bumping `version`.
  uint64_t memo = 0;
  if (module.CachedDigest(&memo) == module.version) {
    return memo;
  }
  // Two independent FNV lanes — every fixed-width field packed into one
  // word on lane 0, the immediate on lane 1 — so the xor-multiply chains
  // run in parallel instead of serializing three multiplies per
  // instruction. Benches digest a fresh ~20k-instruction module per run,
  // which put the old chain at ~14% of bench wall time.
  uint64_t h0 = kFnvOffset;
  uint64_t h1 = kFnvOffset ^ 0x9e3779b97f4a7c15ull;
  Mix(&h0, static_cast<uint64_t>(module.entry));
  Mix(&h0, module.functions.size());
  for (const ir::Function& f : module.functions) {
    Mix(&h0, f.blocks.size());
    for (const ir::BasicBlock& b : f.blocks) {
      Mix(&h1, b.instrs.size());
      for (const ir::Instr& instr : b.instrs) {
        h0 = (h0 ^ ((static_cast<uint64_t>(instr.op) << 56) |
                    (static_cast<uint64_t>(static_cast<uint8_t>(instr.dst)) << 48) |
                    (static_cast<uint64_t>(static_cast<uint8_t>(instr.src)) << 40) |
                    (static_cast<uint64_t>(instr.flags) << 32) |
                    static_cast<uint64_t>(static_cast<uint32_t>(instr.target)))) *
             kFnvPrime;
        h1 = (h1 ^ instr.imm) * kFnvPrime;
      }
    }
  }
  uint64_t h = h0;
  Mix(&h, h1);
  module.StoreDigest(h);
  return h;
}

uint64_t CostModelDigest(const machine::CostModel& cost) {
  // Digest the same byte image DecodedModule::CostMatches memcmps, so two
  // processes compare equal iff they digest equal.
  uint8_t bytes[sizeof(machine::CostModel)];
  std::memcpy(bytes, &cost, sizeof(bytes));
  uint64_t h = kFnvOffset;
  for (uint8_t byte : bytes) {
    h = (h ^ byte) * kFnvPrime;
  }
  return h;
}

DecodeCache& DecodeCache::Global() {
  static DecodeCache* cache = new DecodeCache();  // leaked: outlives all executors
  return *cache;
}

std::shared_ptr<const DecodedModule> DecodeCache::Get(const ir::Module& module,
                                                      const Process& process, bool* was_hit) {
  Key key;
  key.content = ModuleContentDigest(module);
  key.cost = CostModelDigest(process.machine().cost);
  key.instr_count = module.InstrCount();
  key.ymm_reserved = process.ymm_reserved();

  std::shared_future<std::shared_ptr<const DecodedModule>> future;
  std::promise<std::shared_ptr<const DecodedModule>> promise;
  bool build_here = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      ++stats_.hits;
      if (was_hit != nullptr) {
        *was_hit = true;
      }
      lru_.splice(lru_.begin(), lru_, it->second);  // bump to most recent
      future = it->second->decoded;
    } else {
      ++stats_.misses;
      if (was_hit != nullptr) {
        *was_hit = false;
      }
      future = promise.get_future().share();
      lru_.push_front(Entry{key, future});
      index_[key] = lru_.begin();
      build_here = true;
      EvictOverCapacityLocked();
    }
  }
  if (build_here) {
    // Built outside the lock: a slow decode must not serialize unrelated
    // keys. Racing callers for this key block on the shared_future.
    try {
      promise.set_value(DecodedModule::Build(module, process));
    } catch (...) {
      promise.set_exception(std::current_exception());  // unblock waiters
      throw;
    }
  }
  return future.get();
}

void DecodeCache::EvictOverCapacityLocked() {
  // Walk from least- to most-recently-used, dropping ready entries until
  // back under capacity. In-flight builds are never evicted: dropping one
  // would let a racing Get start a second lowering for the same key.
  auto it = lru_.end();
  while (lru_.size() > capacity_ && it != lru_.begin()) {
    --it;
    if (it->decoded.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      continue;
    }
    index_.erase(it->key);
    it = lru_.erase(it);
    ++stats_.evictions;
  }
}

DecodeCacheStats DecodeCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void DecodeCache::ResetStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = DecodeCacheStats{};
}

void DecodeCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

size_t DecodeCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

void DecodeCache::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity == 0 ? 1 : capacity;
  EvictOverCapacityLocked();
}

}  // namespace memsentry::sim

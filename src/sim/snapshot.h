// Whole-simulation snapshots: one blob capturing a Process (machine state,
// translation structures, registers, safe regions), an optional in-flight
// RunResult (accumulators + resume cursor), and the optional Kernel and
// FaultInjector state driving it. The golden guarantee is bit-identity:
// run(N+M) == run(N); SaveSnapshot; LoadSnapshot; Resume(M), under every
// MEMSENTRY_FASTPATH mode — snapshots carry architectural state only, so a
// blob saved under one mode restores under any other.
//
// Restores do not conjure structure: the caller rebuilds the process with
// the same deterministic setup that produced the snapshot (technique
// Prepare, Kernel::Install, EnableDune/CreateEpt...) and LoadSnapshot then
// overwrites its state. Structural mismatches (Dune/enclave presence, EPT
// count, physical-memory geometry, cost-model calibration) fail with
// kFailedPrecondition; corrupt or truncated blobs fail with typed errors
// from machine::SnapshotReader rather than crashing.
#ifndef MEMSENTRY_SRC_SIM_SNAPSHOT_H_
#define MEMSENTRY_SRC_SIM_SNAPSHOT_H_

#include <string>
#include <string_view>

#include "src/base/status.h"
#include "src/sim/executor.h"
#include "src/sim/fault_injector.h"
#include "src/sim/kernel.h"
#include "src/sim/process.h"

namespace memsentry::sim {

// What a blob claims to contain, readable without a live process (crash
// bundles show this in their manifests).
struct SnapshotInfo {
  std::string label;
  bool has_partial = false;
  bool has_kernel = false;
  bool has_injector = false;
};

// Serializes the process plus whichever optional components are non-null.
// `label` names the producing cell ("figure2/mpk/..."), recorded verbatim.
std::string SaveSnapshot(const Process& process, const RunResult* partial,
                         const Kernel* kernel, const FaultInjector* injector,
                         const std::string& label);

// Restores into `process` (required) and the optional components. Strict
// presence matching: a blob with kernel state needs a non-null `kernel` and
// vice versa — silently dropping state would break bit-identity downstream.
Status LoadSnapshot(std::string_view blob, Process* process, RunResult* partial,
                    Kernel* kernel, FaultInjector* injector, SnapshotInfo* info = nullptr);

// Header-only peek for manifests and tooling.
Status PeekSnapshot(std::string_view blob, SnapshotInfo* info);

// Crash-safe file IO: write-to-temp + rename so a crash mid-write can never
// leave a half-written blob at `path`.
Status WriteSnapshotFile(const std::string& path, const std::string& blob);
StatusOr<std::string> ReadSnapshotFile(const std::string& path);

// RunResult (de)serialization, exposed for tests that checkpoint executor
// state without a full process snapshot.
void SaveRunResult(const RunResult& result, machine::SnapshotWriter& w);
Status LoadRunResult(RunResult* result, machine::SnapshotReader& r);

}  // namespace memsentry::sim

#endif  // MEMSENTRY_SRC_SIM_SNAPSHOT_H_

// A simulated process: guest page table, MMU state, register file, memory
// layout, optional Dune virtualization, optional SGX enclave, and the
// registry of safe regions that the isolation techniques configure.
#ifndef MEMSENTRY_SRC_SIM_PROCESS_H_
#define MEMSENTRY_SRC_SIM_PROCESS_H_

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/aes/aes128.h"
#include "src/base/status.h"
#include "src/base/types.h"
#include "src/dune/dune.h"
#include "src/machine/mmu.h"
#include "src/machine/page_table.h"
#include "src/machine/registers.h"
#include "src/sgx/enclave.h"
#include "src/sim/machine.h"

namespace memsentry::sim {

// Canonical layout for simulated programs. Everything the program touches in
// normal operation sits below the 64 TiB partition split; safe regions for
// address-based techniques sit above it (paper Section 5.4).
inline constexpr VirtAddr kWorkingSetBase = 0x100000000000ULL;   // 16 TiB
inline constexpr VirtAddr kHeapBase = 0x200000000000ULL;         // 32 TiB
inline constexpr VirtAddr kStackTop = 0x300000000000ULL;         // 48 TiB (grows down)
inline constexpr VirtAddr kTableBase = 0x280000000000ULL;        // 40 TiB (dispatch tables)
inline constexpr VirtAddr kSafeRegionBase = 0x480000000000ULL;   // 72 TiB (sensitive side)

// A registered safe region plus per-technique state.
struct SafeRegion {
  std::string name;
  VirtAddr base = 0;
  uint64_t size = 0;

  uint8_t pkey = 0;       // MPK: protection key tagging the region's pages
  int ept_index = -1;     // VMFUNC: EPT that privately maps the region
  bool crypt = false;     // crypt: encrypted at rest
  bool encrypted_now = false;
  uint64_t nonce = 0;
  aes::KeySchedule enc_keys{};  // conceptually parked in ymm8..15 upper halves
  uint64_t enc_key_digest = 0;  // FNV of enc_keys+nonce at Prepare; audits compare
  bool mprotected = false;      // mprotect baseline: currently inaccessible

  bool Contains(VirtAddr a) const { return a >= base && a < base + size; }
};

class Process {
 public:
  explicit Process(Machine* machine);

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  // Switches the process into a Dune VM. Must be called before any mapping;
  // all subsequent mappings go through guest-physical memory and the EPTs.
  Status EnableDune();
  bool dune_enabled() const { return dune_ != nullptr; }
  dune::DuneVm* dune() { return dune_.get(); }

  // Maps `pages` fresh zeroed pages at `base`.
  Status MapRange(VirtAddr base, uint64_t pages, machine::PageFlags flags);
  Status Unmap(VirtAddr base, uint64_t pages);
  bool IsMapped(VirtAddr va) const { return page_table_.IsMapped(PageAlignDown(va)); }

  // Mapped-range bookkeeping (what the kernel's VMA list would know). The
  // allocation-oracle attack exercises mmap-style placement against this.
  struct Mapping {
    VirtAddr base = 0;
    uint64_t pages = 0;
  };
  const std::vector<Mapping>& mappings() const { return mappings_; }
  // Lowest free run of `pages` pages within [lo, hi), mmap-bottom-up style.
  std::optional<VirtAddr> FindFreeRun(VirtAddr lo, VirtAddr hi, uint64_t pages) const;
  // mmap-style reservation: inserts a VMA without populating page tables
  // (as real mmap does; our simulated programs never demand-fault it). The
  // allocation-oracle attack uses this for its huge probe fills.
  Status ReserveRange(VirtAddr base, uint64_t pages);
  Status ReleaseRange(VirtAddr base, uint64_t pages);

  // Sets up the default stack and maps it.
  Status SetupStack(uint64_t pages = 64);

  // --- Safe regions ---
  // Stored in a deque so the SafeRegion*/SafeRegion& handles we give out
  // (AddSafeRegion, FindSafeRegion, SafeRegionAllocator::Alloc) stay valid
  // when later regions are added.
  //
  // Lookup is on the interpreter's hottest path (every recorded load/store
  // consults InSafeRegion), so it goes through a base-sorted index with a
  // one-entry last-hit cache instead of a linear scan. Regions must be
  // disjoint (SafeRegionAllocator carves non-overlapping ranges); bases are
  // fixed at AddSafeRegion time, while sizes may grow afterwards (the crypt
  // size sweep does) — the index only orders by base and reads sizes live,
  // so size mutation stays safe.
  SafeRegion& AddSafeRegion(const std::string& name, VirtAddr base, uint64_t size);
  std::deque<SafeRegion>& safe_regions() { return safe_regions_; }
  const std::deque<SafeRegion>& safe_regions() const { return safe_regions_; }
  SafeRegion* FindSafeRegion(VirtAddr base);
  bool InSafeRegion(VirtAddr va) const { return LookupSafeRegion(va) != nullptr; }

  // --- Raw (setup/debug) access, bypassing every protection ---
  StatusOr<PhysAddr> TranslateRaw(VirtAddr va) const;
  StatusOr<uint64_t> Peek64(VirtAddr va) const;
  Status Poke64(VirtAddr va, uint64_t value);
  Status PokeBytes(VirtAddr va, const void* data, uint64_t size);
  Status PeekBytes(VirtAddr va, void* out, uint64_t size) const;

  // --- Accessors ---
  Machine& machine() { return *machine_; }
  const Machine& machine() const { return *machine_; }
  machine::Mmu& mmu() { return mmu_; }
  machine::PageTable& page_table() { return page_table_; }
  machine::RegisterFile& regs() { return regs_; }
  const machine::RegisterFile& regs() const { return regs_; }

  void SetEnclave(std::unique_ptr<sgx::Enclave> enclave) { enclave_ = std::move(enclave); }
  sgx::Enclave* enclave() { return enclave_.get(); }

  // crypt technique: reserving ymm upper halves slows vector-heavy code.
  void SetYmmReserved(bool reserved) { ymm_reserved_ = reserved; }
  bool ymm_reserved() const { return ymm_reserved_; }

  // MPX: the in-memory bound-table value bndN reloads from after a legacy
  // branch reset bound registers (BNDPRESERVE off). Set by MpxTechnique.
  void SetBndReload(int reg, const machine::BoundRegister& bounds) {
    bnd_reload_[reg] = bounds;
  }
  const std::optional<machine::BoundRegister>& bnd_reload(int reg) const {
    return bnd_reload_[reg];
  }

  using SyscallHandler = std::function<uint64_t(uint64_t nr, uint64_t a0, uint64_t a1)>;
  void SetSyscallHandler(SyscallHandler handler) { syscall_ = std::move(handler); }
  uint64_t DispatchSyscall(uint64_t nr, uint64_t a0, uint64_t a1);

  // Crash-safe snapshots: everything architecturally observable — physical
  // memory, page table root, MMU/TLB/cache state, registers, layout
  // bookkeeping, Dune/EPT and enclave state, and the safe-region registry.
  // The syscall handler is NOT serialized; restores must run the same
  // deterministic setup (technique Prepare + Kernel::Install) on a fresh
  // Process before LoadState overwrites its state. Presence of Dune / an
  // enclave and the EPT count must match the snapshot (kFailedPrecondition
  // otherwise). Safe regions are overwritten in place so handed-out
  // SafeRegion* handles stay valid.
  void SaveState(machine::SnapshotWriter& w) const;
  Status LoadState(machine::SnapshotReader& r);

 private:
  // Binary search over the base-sorted index (last-hit cache first); exact
  // under the disjoint-regions invariant documented at AddSafeRegion.
  SafeRegion* LookupSafeRegion(VirtAddr va) const;

  Machine* machine_;
  machine::PageTable page_table_;
  machine::Mmu mmu_;
  machine::RegisterFile regs_;
  std::unique_ptr<dune::DuneVm> dune_;
  std::unique_ptr<sgx::Enclave> enclave_;
  std::deque<SafeRegion> safe_regions_;
  // Pointers into safe_regions_ (deque ⇒ stable), ordered by base.
  std::vector<SafeRegion*> region_index_;
  mutable SafeRegion* last_region_hit_ = nullptr;
  bool ymm_reserved_ = false;
  std::array<std::optional<machine::BoundRegister>, machine::kNumBnds> bnd_reload_{};
  SyscallHandler syscall_;
  std::vector<Mapping> mappings_;
};

}  // namespace memsentry::sim

#endif  // MEMSENTRY_SRC_SIM_PROCESS_H_

// The simulated machine: physical memory plus the cost model. Processes
// (src/sim/process.h) each own their MMU/TLB state; the machine is what they
// share.
#ifndef MEMSENTRY_SRC_SIM_MACHINE_H_
#define MEMSENTRY_SRC_SIM_MACHINE_H_

#include "src/machine/cost_model.h"
#include "src/machine/phys_mem.h"

namespace memsentry::sim {

struct Machine {
  machine::PhysicalMemory pmem;
  machine::CostModel cost;
};

}  // namespace memsentry::sim

#endif  // MEMSENTRY_SRC_SIM_MACHINE_H_

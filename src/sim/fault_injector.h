// Deterministic fault-injection campaigns. The injector corrupts protection
// state at named sites — PTE bits, TLB entries, bound registers and tables,
// PKRU, EPT mappings, AES round keys, and kernel syscall results — choosing
// pages/bits/keys through the shared deterministic Rng, so a campaign with a
// fixed seed replays bit-for-bit. The containment verifier (src/eval) runs
// every technique under every applicable site and classifies the outcome.
#ifndef MEMSENTRY_SRC_SIM_FAULT_INJECTOR_H_
#define MEMSENTRY_SRC_SIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/base/types.h"
#include "src/sim/kernel.h"
#include "src/sim/process.h"

namespace memsentry::sim {

// Where a fault lands. Memory-state sites corrupt a deterministic page of a
// deterministic safe region; register sites corrupt thread state; syscall
// sites arm the kernel to fail the next dispatch of a call.
enum class FaultSite {
  kPtePresentClear = 0,    // leaf P bit cleared (lost mapping)
  kPteWritableClear,       // leaf W bit cleared (spurious write protection)
  kPtePkeyFlip,            // leaf pkey field flipped to another key
  kTlbStaleEntry,          // permissive pre-revocation translation re-inserted
  kBndRegisterClobber,     // bnd0 reset to INIT (permit everything)
  kBndTableCorrupt,        // in-memory bound-table entry widened
  kPkruDesync,             // PKRU forced all-open between gate and access
  kEptMappingDrop,         // secret frame unmapped from its private EPT
  kAesRoundKeyClobber,     // one byte of an expanded round key flipped
  kSyscallMmapEnomem,      // next mmap fails -ENOMEM
  kSyscallPkeyAllocExhausted,  // pkey_alloc fails -ENOSPC from now on
  kSyscallMprotectEacces,  // next mprotect fails -EACCES
};

inline constexpr int kNumFaultSites = 12;

const char* FaultSiteName(FaultSite site);

// Record of one performed injection, sufficient to audit or undo it.
struct Injection {
  FaultSite site;
  VirtAddr address = 0;  // page address for memory sites; 0 for others
  uint64_t before = 0;   // site-specific prior value (PTE, PKRU, bnd upper...)
  uint64_t after = 0;    // value written
  std::string detail;
};

class FaultInjector {
 public:
  FaultInjector(Process* process, uint64_t seed)
      : process_(process), rng_(seed), seed_(seed) {}

  // Kernel hookup is only needed for the kSyscall* sites.
  void SetKernel(Kernel* kernel) { kernel_ = kernel; }

  // Performs one injection. Fails with kFailedPrecondition when the site
  // does not apply to the process's current protection state (no crypt
  // region for kAesRoundKeyClobber, no Dune EPT for kEptMappingDrop, no
  // kernel for syscall sites, no safe region at all).
  StatusOr<Injection> Inject(FaultSite site);

  const std::vector<Injection>& injections() const { return injections_; }
  uint64_t seed() const { return seed_; }

  // Crash-safe snapshots: seed, raw RNG stream position and the injection
  // log, so a restored campaign picks the same victims an uninterrupted one
  // would.
  void SaveState(machine::SnapshotWriter& w) const;
  Status LoadState(machine::SnapshotReader& r);

 private:
  // Deterministic choice of victim region/page. Region picks are uniform
  // over the registry; page picks uniform over the region's pages.
  SafeRegion* PickRegion();
  VirtAddr PickPage(const SafeRegion& region);

  StatusOr<Injection> CorruptPte(FaultSite site);
  StatusOr<Injection> InsertStaleTlbEntry();
  StatusOr<Injection> ClobberBounds(FaultSite site);
  StatusOr<Injection> DesyncPkru();
  StatusOr<Injection> DropEptMapping();
  StatusOr<Injection> ClobberAesRoundKey();
  StatusOr<Injection> ArmSyscallFailure(FaultSite site);

  Process* process_;
  Kernel* kernel_ = nullptr;
  Rng rng_;
  uint64_t seed_;
  std::vector<Injection> injections_;
};

}  // namespace memsentry::sim

#endif  // MEMSENTRY_SRC_SIM_FAULT_INJECTOR_H_

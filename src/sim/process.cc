#include "src/sim/process.h"

#include <algorithm>

#include "src/machine/snapshot.h"

namespace memsentry::sim {

namespace {
constexpr uint32_t kTagProcess = 0x50524F43;  // "PROC"
}  // namespace

Process::Process(Machine* machine)
    : machine_(machine), page_table_(&machine->pmem), mmu_(&machine->pmem, &machine->cost) {
  mmu_.SetPageTable(&page_table_);
  regs_[machine::Gpr::kRsp] = kStackTop;
}

Status Process::EnableDune() {
  if (dune_ != nullptr) {
    return FailedPrecondition("Dune already enabled");
  }
  dune_ = std::make_unique<dune::DuneVm>(&machine_->pmem);
  dune_->SetSyscallHandler(
      [this](uint64_t nr, uint64_t a0, uint64_t a1) { return DispatchSyscall(nr, a0, a1); });
  mmu_.SetSecondLevel(&dune_->vmx());
  return OkStatus();
}

Status Process::MapRange(VirtAddr base, uint64_t pages, machine::PageFlags flags) {
  if (PageOffset(base) != 0) {
    return InvalidArgument("MapRange requires a page-aligned base");
  }
  for (uint64_t p = 0; p < pages; ++p) {
    const VirtAddr va = base + p * kPageSize;
    if (dune_ != nullptr) {
      MEMSENTRY_ASSIGN_OR_RETURN(GuestPhysAddr gpa, dune_->AllocGuestFrame());
      MEMSENTRY_RETURN_IF_ERROR(page_table_.Map(va, gpa, flags));
    } else {
      MEMSENTRY_RETURN_IF_ERROR(page_table_.MapNew(va, flags).status());
    }
  }
  mappings_.push_back(Mapping{base, pages});
  return OkStatus();
}

Status Process::Unmap(VirtAddr base, uint64_t pages) {
  for (uint64_t p = 0; p < pages; ++p) {
    MEMSENTRY_RETURN_IF_ERROR(page_table_.Unmap(base + p * kPageSize));
    mmu_.InvalidatePage(base + p * kPageSize);
  }
  for (auto it = mappings_.begin(); it != mappings_.end(); ++it) {
    if (it->base == base && it->pages == pages) {
      mappings_.erase(it);
      break;
    }
  }
  return OkStatus();
}

std::optional<VirtAddr> Process::FindFreeRun(VirtAddr lo, VirtAddr hi, uint64_t pages) const {
  // Collect mapped ranges overlapping [lo, hi), sorted by base.
  std::vector<Mapping> sorted;
  for (const Mapping& m : mappings_) {
    const VirtAddr end = m.base + m.pages * kPageSize;
    if (end > lo && m.base < hi) {
      sorted.push_back(m);
    }
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const Mapping& a, const Mapping& b) { return a.base < b.base; });
  VirtAddr cursor = lo;
  const uint64_t need = pages * kPageSize;
  for (const Mapping& m : sorted) {
    if (m.base > cursor && m.base - cursor >= need) {
      return cursor;
    }
    cursor = std::max(cursor, m.base + m.pages * kPageSize);
  }
  if (hi > cursor && hi - cursor >= need) {
    return cursor;
  }
  return std::nullopt;
}

Status Process::ReserveRange(VirtAddr base, uint64_t pages) {
  if (PageOffset(base) != 0) {
    return InvalidArgument("ReserveRange requires a page-aligned base");
  }
  mappings_.push_back(Mapping{base, pages});
  return OkStatus();
}

Status Process::ReleaseRange(VirtAddr base, uint64_t pages) {
  for (auto it = mappings_.begin(); it != mappings_.end(); ++it) {
    if (it->base == base && it->pages == pages) {
      mappings_.erase(it);
      return OkStatus();
    }
  }
  return NotFound("no such reservation");
}

Status Process::SetupStack(uint64_t pages) {
  return MapRange(kStackTop - pages * kPageSize, pages, machine::PageFlags::Data());
}

SafeRegion& Process::AddSafeRegion(const std::string& name, VirtAddr base, uint64_t size) {
  SafeRegion region;
  region.name = name;
  region.base = base;
  region.size = size;
  safe_regions_.push_back(std::move(region));
  SafeRegion* added = &safe_regions_.back();
  region_index_.insert(
      std::upper_bound(region_index_.begin(), region_index_.end(), added,
                       [](const SafeRegion* a, const SafeRegion* b) { return a->base < b->base; }),
      added);
  return *added;
}

SafeRegion* Process::LookupSafeRegion(VirtAddr va) const {
  // Accesses cluster (per-region instrumentation, AES sweeps over one
  // region), so the last hit answers most containing lookups without a
  // search.
  if (last_region_hit_ != nullptr && last_region_hit_->Contains(va)) {
    return last_region_hit_;
  }
  // The candidate is the region with the greatest base <= va; regions are
  // disjoint, so no other region can contain va.
  auto it = std::upper_bound(
      region_index_.begin(), region_index_.end(), va,
      [](VirtAddr addr, const SafeRegion* r) { return addr < r->base; });
  if (it == region_index_.begin()) {
    return nullptr;
  }
  SafeRegion* candidate = *std::prev(it);
  if (candidate->Contains(va)) {
    last_region_hit_ = candidate;
    return candidate;
  }
  return nullptr;
}

SafeRegion* Process::FindSafeRegion(VirtAddr base) { return LookupSafeRegion(base); }

StatusOr<PhysAddr> Process::TranslateRaw(VirtAddr va) const {
  auto walk = page_table_.Walk(va);
  if (!walk.ok()) {
    return walk.status();
  }
  PhysAddr addr = walk.value().phys;
  if (dune_ != nullptr) {
    // Under Dune the guest page table produces guest-physical addresses.
    MEMSENTRY_ASSIGN_OR_RETURN(addr, dune_->HostFrame(addr));
  }
  return addr;
}

StatusOr<uint64_t> Process::Peek64(VirtAddr va) const {
  MEMSENTRY_ASSIGN_OR_RETURN(PhysAddr phys, TranslateRaw(va));
  return machine_->pmem.Read64(phys);
}

Status Process::Poke64(VirtAddr va, uint64_t value) {
  MEMSENTRY_ASSIGN_OR_RETURN(PhysAddr phys, TranslateRaw(va));
  machine_->pmem.Write64(phys, value);
  return OkStatus();
}

Status Process::PokeBytes(VirtAddr va, const void* data, uint64_t size) {
  const uint8_t* src = static_cast<const uint8_t*>(data);
  while (size > 0) {
    const uint64_t chunk = std::min<uint64_t>(size, kPageSize - PageOffset(va));
    MEMSENTRY_ASSIGN_OR_RETURN(PhysAddr phys, TranslateRaw(va));
    machine_->pmem.WriteBytes(phys, src, chunk);
    va += chunk;
    src += chunk;
    size -= chunk;
  }
  return OkStatus();
}

Status Process::PeekBytes(VirtAddr va, void* out, uint64_t size) const {
  uint8_t* dst = static_cast<uint8_t*>(out);
  while (size > 0) {
    const uint64_t chunk = std::min<uint64_t>(size, kPageSize - PageOffset(va));
    MEMSENTRY_ASSIGN_OR_RETURN(PhysAddr phys, TranslateRaw(va));
    machine_->pmem.ReadBytes(phys, dst, chunk);
    va += chunk;
    dst += chunk;
    size -= chunk;
  }
  return OkStatus();
}

uint64_t Process::DispatchSyscall(uint64_t nr, uint64_t a0, uint64_t a1) {
  if (syscall_) {
    return syscall_(nr, a0, a1);
  }
  return 0;
}

void Process::SaveState(machine::SnapshotWriter& w) const {
  w.PutTag(kTagProcess);
  // Digest of the cost model (all doubles, no padding): a snapshot priced
  // under one calibration must not silently continue under another.
  w.PutU64(machine::SnapshotDigest(&machine_->cost, sizeof(machine_->cost)));
  machine_->pmem.SaveState(w);
  page_table_.SaveState(w);
  mmu_.SaveState(w);
  machine::SaveRegisterFile(regs_, w);
  w.PutBool(ymm_reserved_);
  for (const auto& reload : bnd_reload_) {
    w.PutBool(reload.has_value());
    w.PutU64(reload.has_value() ? reload->lower : 0);
    w.PutU64(reload.has_value() ? reload->upper : 0);
  }
  w.PutU64(mappings_.size());
  for (const Mapping& m : mappings_) {
    w.PutU64(m.base);
    w.PutU64(m.pages);
  }
  w.PutBool(dune_ != nullptr);
  if (dune_ != nullptr) {
    dune_->SaveState(w);
  }
  w.PutBool(enclave_ != nullptr);
  if (enclave_ != nullptr) {
    enclave_->SaveState(w);
  }
  w.PutU64(safe_regions_.size());
  for (const SafeRegion& region : safe_regions_) {
    w.PutString(region.name);
    w.PutU64(region.base);
    w.PutU64(region.size);
    w.PutU8(region.pkey);
    w.PutI32(region.ept_index);
    w.PutBool(region.crypt);
    w.PutBool(region.encrypted_now);
    w.PutU64(region.nonce);
    w.PutBytes(region.enc_keys.data(), sizeof(aes::KeySchedule));
    w.PutU64(region.enc_key_digest);
    w.PutBool(region.mprotected);
  }
}

Status Process::LoadState(machine::SnapshotReader& r) {
  if (!r.ExpectTag(kTagProcess, "process")) {
    return r.status();
  }
  const uint64_t cost_digest = r.U64();
  MEMSENTRY_RETURN_IF_ERROR(r.status());
  if (cost_digest != machine::SnapshotDigest(&machine_->cost, sizeof(machine_->cost))) {
    return FailedPrecondition("snapshot was taken under a different cost model");
  }
  MEMSENTRY_RETURN_IF_ERROR(machine_->pmem.LoadState(r));
  MEMSENTRY_RETURN_IF_ERROR(page_table_.LoadState(r));
  MEMSENTRY_RETURN_IF_ERROR(mmu_.LoadState(r));
  MEMSENTRY_RETURN_IF_ERROR(machine::LoadRegisterFile(&regs_, r));
  ymm_reserved_ = r.Bool();
  for (auto& reload : bnd_reload_) {
    const bool has = r.Bool();
    machine::BoundRegister bounds;
    bounds.lower = r.U64();
    bounds.upper = r.U64();
    reload = has ? std::optional<machine::BoundRegister>(bounds) : std::nullopt;
  }
  const uint64_t mapping_count = r.U64();
  if (!r.FitCount(mapping_count, 16)) {
    return r.status();
  }
  std::vector<Mapping> mappings;
  mappings.reserve(mapping_count);
  for (uint64_t i = 0; i < mapping_count; ++i) {
    Mapping m;
    m.base = r.U64();
    m.pages = r.U64();
    mappings.push_back(m);
  }
  MEMSENTRY_RETURN_IF_ERROR(r.status());
  // Dune and the enclave hold structure (EPT radix trees, entry points) that
  // deterministic setup must have rebuilt before the restore; their presence
  // is a precondition, not something LoadState can conjure.
  const bool has_dune = r.Bool();
  MEMSENTRY_RETURN_IF_ERROR(r.status());
  if (has_dune != (dune_ != nullptr)) {
    return FailedPrecondition("snapshot Dune presence does not match the live process");
  }
  if (dune_ != nullptr) {
    MEMSENTRY_RETURN_IF_ERROR(dune_->LoadState(r));
  }
  const bool has_enclave = r.Bool();
  MEMSENTRY_RETURN_IF_ERROR(r.status());
  if (has_enclave != (enclave_ != nullptr)) {
    return FailedPrecondition("snapshot enclave presence does not match the live process");
  }
  if (enclave_ != nullptr) {
    MEMSENTRY_RETURN_IF_ERROR(enclave_->LoadState(r));
  }
  const uint64_t region_count = r.U64();
  if (!r.FitCount(region_count, 64)) {
    return r.status();
  }
  if (region_count < safe_regions_.size()) {
    return FailedPrecondition("snapshot has fewer safe regions than the live process");
  }
  // Overwrite live regions in place (handed-out SafeRegion* stay valid) and
  // append any the snapshot added after the live setup registered its own.
  for (uint64_t i = 0; i < region_count; ++i) {
    SafeRegion scratch;
    SafeRegion& region =
        i < safe_regions_.size() ? safe_regions_[i] : scratch;
    region.name = r.String();
    region.base = r.U64();
    region.size = r.U64();
    region.pkey = r.U8();
    region.ept_index = r.I32();
    region.crypt = r.Bool();
    region.encrypted_now = r.Bool();
    region.nonce = r.U64();
    r.Bytes(region.enc_keys.data(), sizeof(aes::KeySchedule));
    region.enc_key_digest = r.U64();
    region.mprotected = r.Bool();
    if (&region == &scratch) {
      AddSafeRegion(scratch.name, scratch.base, scratch.size) = scratch;
    }
  }
  MEMSENTRY_RETURN_IF_ERROR(r.status());
  mappings_ = std::move(mappings);
  // Rebuild the lookup index: bases may have moved with the restored state.
  region_index_.clear();
  for (SafeRegion& region : safe_regions_) {
    region_index_.push_back(&region);
  }
  std::sort(region_index_.begin(), region_index_.end(),
            [](const SafeRegion* a, const SafeRegion* b) { return a->base < b->base; });
  last_region_hit_ = nullptr;
  return OkStatus();
}

}  // namespace memsentry::sim

#include "src/sim/process.h"

#include <algorithm>

namespace memsentry::sim {

Process::Process(Machine* machine)
    : machine_(machine), page_table_(&machine->pmem), mmu_(&machine->pmem, &machine->cost) {
  mmu_.SetPageTable(&page_table_);
  regs_[machine::Gpr::kRsp] = kStackTop;
}

Status Process::EnableDune() {
  if (dune_ != nullptr) {
    return FailedPrecondition("Dune already enabled");
  }
  dune_ = std::make_unique<dune::DuneVm>(&machine_->pmem);
  dune_->SetSyscallHandler(
      [this](uint64_t nr, uint64_t a0, uint64_t a1) { return DispatchSyscall(nr, a0, a1); });
  mmu_.SetSecondLevel(&dune_->vmx());
  return OkStatus();
}

Status Process::MapRange(VirtAddr base, uint64_t pages, machine::PageFlags flags) {
  if (PageOffset(base) != 0) {
    return InvalidArgument("MapRange requires a page-aligned base");
  }
  for (uint64_t p = 0; p < pages; ++p) {
    const VirtAddr va = base + p * kPageSize;
    if (dune_ != nullptr) {
      MEMSENTRY_ASSIGN_OR_RETURN(GuestPhysAddr gpa, dune_->AllocGuestFrame());
      MEMSENTRY_RETURN_IF_ERROR(page_table_.Map(va, gpa, flags));
    } else {
      MEMSENTRY_RETURN_IF_ERROR(page_table_.MapNew(va, flags).status());
    }
  }
  mappings_.push_back(Mapping{base, pages});
  return OkStatus();
}

Status Process::Unmap(VirtAddr base, uint64_t pages) {
  for (uint64_t p = 0; p < pages; ++p) {
    MEMSENTRY_RETURN_IF_ERROR(page_table_.Unmap(base + p * kPageSize));
    mmu_.InvalidatePage(base + p * kPageSize);
  }
  for (auto it = mappings_.begin(); it != mappings_.end(); ++it) {
    if (it->base == base && it->pages == pages) {
      mappings_.erase(it);
      break;
    }
  }
  return OkStatus();
}

std::optional<VirtAddr> Process::FindFreeRun(VirtAddr lo, VirtAddr hi, uint64_t pages) const {
  // Collect mapped ranges overlapping [lo, hi), sorted by base.
  std::vector<Mapping> sorted;
  for (const Mapping& m : mappings_) {
    const VirtAddr end = m.base + m.pages * kPageSize;
    if (end > lo && m.base < hi) {
      sorted.push_back(m);
    }
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const Mapping& a, const Mapping& b) { return a.base < b.base; });
  VirtAddr cursor = lo;
  const uint64_t need = pages * kPageSize;
  for (const Mapping& m : sorted) {
    if (m.base > cursor && m.base - cursor >= need) {
      return cursor;
    }
    cursor = std::max(cursor, m.base + m.pages * kPageSize);
  }
  if (hi > cursor && hi - cursor >= need) {
    return cursor;
  }
  return std::nullopt;
}

Status Process::ReserveRange(VirtAddr base, uint64_t pages) {
  if (PageOffset(base) != 0) {
    return InvalidArgument("ReserveRange requires a page-aligned base");
  }
  mappings_.push_back(Mapping{base, pages});
  return OkStatus();
}

Status Process::ReleaseRange(VirtAddr base, uint64_t pages) {
  for (auto it = mappings_.begin(); it != mappings_.end(); ++it) {
    if (it->base == base && it->pages == pages) {
      mappings_.erase(it);
      return OkStatus();
    }
  }
  return NotFound("no such reservation");
}

Status Process::SetupStack(uint64_t pages) {
  return MapRange(kStackTop - pages * kPageSize, pages, machine::PageFlags::Data());
}

SafeRegion& Process::AddSafeRegion(const std::string& name, VirtAddr base, uint64_t size) {
  SafeRegion region;
  region.name = name;
  region.base = base;
  region.size = size;
  safe_regions_.push_back(std::move(region));
  SafeRegion* added = &safe_regions_.back();
  region_index_.insert(
      std::upper_bound(region_index_.begin(), region_index_.end(), added,
                       [](const SafeRegion* a, const SafeRegion* b) { return a->base < b->base; }),
      added);
  return *added;
}

SafeRegion* Process::LookupSafeRegion(VirtAddr va) const {
  // Accesses cluster (per-region instrumentation, AES sweeps over one
  // region), so the last hit answers most containing lookups without a
  // search.
  if (last_region_hit_ != nullptr && last_region_hit_->Contains(va)) {
    return last_region_hit_;
  }
  // The candidate is the region with the greatest base <= va; regions are
  // disjoint, so no other region can contain va.
  auto it = std::upper_bound(
      region_index_.begin(), region_index_.end(), va,
      [](VirtAddr addr, const SafeRegion* r) { return addr < r->base; });
  if (it == region_index_.begin()) {
    return nullptr;
  }
  SafeRegion* candidate = *std::prev(it);
  if (candidate->Contains(va)) {
    last_region_hit_ = candidate;
    return candidate;
  }
  return nullptr;
}

SafeRegion* Process::FindSafeRegion(VirtAddr base) { return LookupSafeRegion(base); }

StatusOr<PhysAddr> Process::TranslateRaw(VirtAddr va) const {
  auto walk = page_table_.Walk(va);
  if (!walk.ok()) {
    return walk.status();
  }
  PhysAddr addr = walk.value().phys;
  if (dune_ != nullptr) {
    // Under Dune the guest page table produces guest-physical addresses.
    MEMSENTRY_ASSIGN_OR_RETURN(addr, dune_->HostFrame(addr));
  }
  return addr;
}

StatusOr<uint64_t> Process::Peek64(VirtAddr va) const {
  MEMSENTRY_ASSIGN_OR_RETURN(PhysAddr phys, TranslateRaw(va));
  return machine_->pmem.Read64(phys);
}

Status Process::Poke64(VirtAddr va, uint64_t value) {
  MEMSENTRY_ASSIGN_OR_RETURN(PhysAddr phys, TranslateRaw(va));
  machine_->pmem.Write64(phys, value);
  return OkStatus();
}

Status Process::PokeBytes(VirtAddr va, const void* data, uint64_t size) {
  const uint8_t* src = static_cast<const uint8_t*>(data);
  while (size > 0) {
    const uint64_t chunk = std::min<uint64_t>(size, kPageSize - PageOffset(va));
    MEMSENTRY_ASSIGN_OR_RETURN(PhysAddr phys, TranslateRaw(va));
    machine_->pmem.WriteBytes(phys, src, chunk);
    va += chunk;
    src += chunk;
    size -= chunk;
  }
  return OkStatus();
}

Status Process::PeekBytes(VirtAddr va, void* out, uint64_t size) const {
  uint8_t* dst = static_cast<uint8_t*>(out);
  while (size > 0) {
    const uint64_t chunk = std::min<uint64_t>(size, kPageSize - PageOffset(va));
    MEMSENTRY_ASSIGN_OR_RETURN(PhysAddr phys, TranslateRaw(va));
    machine_->pmem.ReadBytes(phys, dst, chunk);
    va += chunk;
    dst += chunk;
    size -= chunk;
  }
  return OkStatus();
}

uint64_t Process::DispatchSyscall(uint64_t nr, uint64_t a0, uint64_t a1) {
  if (syscall_) {
    return syscall_(nr, a0, a1);
  }
  return 0;
}

}  // namespace memsentry::sim

#include "src/sim/decoded.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/sim/process.h"

namespace memsentry::sim {
namespace {

// Instructions with statically known cycle contributions whose execution
// never redirects control flow on success; a maximal run of these becomes
// one fused µop (a superblock). kLoad/kStore joined the set in PR 7: their
// slot cost is static, their MMU access replays inline, and the executor
// bails out of the run on a grant miss or TLB-version tick (and on fault,
// with exact per-op bookkeeping).
bool Fusible(ir::Opcode op) {
  switch (op) {
    case ir::Opcode::kNop:
    case ir::Opcode::kMovImm:
    case ir::Opcode::kAddImm:
    case ir::Opcode::kAndImm:
    case ir::Opcode::kAluRR:
    case ir::Opcode::kLea:
    case ir::Opcode::kVecOp:
    case ir::Opcode::kLoad:
    case ir::Opcode::kStore:
      return true;
    default:
      return false;
  }
}

// Dispatch handler index for a singleton (non-fused) µop.
uint8_t HandlerFor(ir::Opcode op) {
  switch (op) {
    case ir::Opcode::kLoad:
      return kHLoad;
    case ir::Opcode::kStore:
      return kHStore;
    case ir::Opcode::kJmp:
      return kHJmp;
    case ir::Opcode::kCondBr:
      return kHCondBr;
    case ir::Opcode::kCall:
      return kHCall;
    case ir::Opcode::kIndirectCall:
      return kHIndirectCall;
    case ir::Opcode::kRet:
      return kHRet;
    case ir::Opcode::kHalt:
      return kHHalt;
    case ir::Opcode::kSyscall:
      return kHSyscall;
    case ir::Opcode::kMprotect:
      return kHMprotect;
    case ir::Opcode::kBndcu:
      return kHBndcu;
    case ir::Opcode::kBndcl:
      return kHBndcl;
    case ir::Opcode::kWrpkru:
      return kHWrpkru;
    case ir::Opcode::kRdpkru:
      return kHRdpkru;
    case ir::Opcode::kVmFunc:
      return kHVmFunc;
    case ir::Opcode::kVmCall:
      return kHVmCall;
    case ir::Opcode::kMFence:
      return kHMFence;
    case ir::Opcode::kAesCryptRegion:
      return kHAesCryptRegion;
    case ir::Opcode::kEnclaveEnter:
      return kHEnclaveEnter;
    case ir::Opcode::kEnclaveExit:
      return kHEnclaveExit;
    case ir::Opcode::kTrap:
      return kHTrap;
    case ir::Opcode::kTrapIf:
      return kHTrapIf;
    default:
      // Fusible opcodes never decode to singleton µops; treat an impossible
      // one as a guard so a decode bug faults instead of executing.
      return kHGuard;
  }
}

struct ResolvedCost {
  double cost = 0;
  double extra = 0;
  bool has_extra = false;
};

// The static cycle additions an instruction performs, in reference order:
// `cost` is always charged first; `extra` is a *second, separate* addition
// charged when `has_extra` (critical-path latency, ymm-reserve penalty,
// instrumentation clobber spills). Opcodes whose cost depends on runtime
// state (kSyscall's dune check, kAesCryptRegion's region size) resolve to
// zero here and are charged dynamically by the interpreter.
ResolvedCost StaticCost(const ir::Instr& instr, const machine::CostModel& cost,
                        bool ymm_reserved) {
  switch (instr.op) {
    case ir::Opcode::kNop:
    case ir::Opcode::kHalt:
      return {cost.nop_slot, 0, false};
    case ir::Opcode::kMovImm:
      return {instr.IsInstrumentation() ? cost.sfi_movabs_slot : cost.mov_imm_slot, 0, false};
    case ir::Opcode::kAddImm:
    case ir::Opcode::kAluRR:
      return {cost.alu_slot, 0, false};
    case ir::Opcode::kAndImm:
      return {cost.sfi_and_slot, cost.sfi_and_dep_latency, instr.IsCritical()};
    case ir::Opcode::kLea:
      return {cost.lea_slot, 0, false};
    case ir::Opcode::kVecOp:
      return {cost.vector_slot, static_cast<double>(instr.imm) * cost.ymm_reserve_vec_penalty,
              ymm_reserved};
    case ir::Opcode::kLoad:
      return {cost.load_slot, 0, false};
    case ir::Opcode::kStore:
      return {cost.store_slot, 0, false};
    case ir::Opcode::kJmp:
    case ir::Opcode::kCondBr:
    case ir::Opcode::kTrapIf:
      return {cost.branch_slot, 0, false};
    case ir::Opcode::kCall:
    case ir::Opcode::kIndirectCall:
      return {cost.call_slot, 0, false};
    case ir::Opcode::kRet:
      return {cost.ret_slot, 0, false};
    case ir::Opcode::kSyscall:
      return {0, 0, false};  // dynamic: hypercall vs native syscall
    case ir::Opcode::kMprotect:
      return {cost.mprotect_call, 0, false};
    case ir::Opcode::kBndcu:
      return {cost.bndcu_slot, cost.bndcu_latency, instr.IsCritical()};
    case ir::Opcode::kBndcl:
      return {cost.bndcu_slot, cost.bndcl_pair_extra_latency, instr.IsCritical()};
    case ir::Opcode::kWrpkru:
      return {cost.wrpkru, cost.mpk_clobber_spills / 2.0, instr.IsInstrumentation()};
    case ir::Opcode::kRdpkru:
      return {cost.rdpkru, 0, false};
    case ir::Opcode::kVmFunc:
      return {cost.vmfunc, 0, false};
    case ir::Opcode::kVmCall:
      return {cost.vmcall, 0, false};
    case ir::Opcode::kMFence:
      return {20.0, 0, false};
    case ir::Opcode::kAesCryptRegion:
      return {0, 0, false};  // dynamic: region size and live-xmm count
    case ir::Opcode::kEnclaveEnter:
    case ir::Opcode::kEnclaveExit:
      return {cost.sgx_ecall_roundtrip / 2.0, 0, false};
    case ir::Opcode::kTrap:
      return {0, 0, false};
  }
  return {0, 0, false};
}

[[noreturn]] void DecodeDivergence(const char* what, int func, int32_t block, int32_t index) {
  std::fprintf(stderr, "memsentry: decode fast-path divergence: %s (f%d b%d i%d)\n", what, func,
               block, index);
  std::abort();
}

}  // namespace

std::shared_ptr<const DecodedModule> DecodedModule::Build(const ir::Module& module,
                                                          const Process& process) {
  auto dec = std::make_shared<DecodedModule>();
  dec->source = &module;
  dec->module_version = module.version;
  dec->instr_count = module.InstrCount();
  dec->cost = process.machine().cost;
  dec->ymm_reserved = process.ymm_reserved();
  const machine::CostModel& cost = dec->cost;

  dec->functions.reserve(module.functions.size());
  for (const ir::Function& function : module.functions) {
    DecodedFunction df;
    const size_t num_blocks = function.blocks.size();
    // Upper bounds: every instruction its own µop plus one guard per block.
    const size_t instr_count = function.InstrCount();
    df.uops.reserve(instr_count + num_blocks);
    df.regops.reserve(instr_count);
    df.block_head.resize(num_blocks);
    df.instr_base.resize(num_blocks);
    df.instr_slots.resize(instr_count);
    uint32_t slot_base = 0;
    for (size_t b = 0; b < num_blocks; ++b) {
      const auto& instrs = function.blocks[b].instrs;
      df.block_head[b] = static_cast<int32_t>(df.uops.size());
      df.instr_base[b] = slot_base;
      DecodedFunction::InstrSlot* slots = df.instr_slots.data() + slot_base;
      slot_base += static_cast<uint32_t>(instrs.size());
      size_t i = 0;
      while (i < instrs.size()) {
        if (Fusible(instrs[i].op)) {
          const int32_t uop_index = static_cast<int32_t>(df.uops.size());
          Uop u;
          u.fused = true;
          u.handler = kHFused;
          u.block = static_cast<int32_t>(b);
          u.index = static_cast<int32_t>(i);
          u.fuse_start = static_cast<uint32_t>(df.regops.size());
          uint32_t count = 0;
          while (i < instrs.size() && Fusible(instrs[i].op)) {
            const ir::Instr& instr = instrs[i];
            slots[i] = {uop_index, count};
            RegOp op;
            op.op = instr.op;
            op.dst = static_cast<uint8_t>(instr.dst);
            op.src = static_cast<uint8_t>(instr.src);
            op.alu_kind = static_cast<uint8_t>(instr.imm & 3);
            op.instrumentation = instr.IsInstrumentation();
            op.is_memory = instr.op == ir::Opcode::kLoad || instr.op == ir::Opcode::kStore;
            const ResolvedCost rc = StaticCost(instr, cost, dec->ymm_reserved);
            op.cost = rc.cost;
            op.extra = rc.extra;
            op.has_extra = rc.has_extra;
            op.imm = instr.imm;
            op.block = static_cast<int32_t>(b);
            op.index = static_cast<int32_t>(i);
            df.regops.push_back(op);
            ++count;
            ++i;
          }
          u.fuse_count = count;
          df.uops.push_back(u);
        } else {
          const ir::Instr& instr = instrs[i];
          slots[i] = {static_cast<int32_t>(df.uops.size()), 0};
          Uop u;
          u.op = instr.op;
          u.handler = HandlerFor(instr.op);
          u.instrumentation = instr.IsInstrumentation();
          u.critical = instr.IsCritical();
          u.dst = static_cast<uint8_t>(instr.dst);
          u.src = static_cast<uint8_t>(instr.src);
          u.flags = instr.flags;
          u.imm = instr.imm;
          u.target = instr.target;  // flat-index fixup for branches below
          u.block = static_cast<int32_t>(b);
          u.index = static_cast<int32_t>(i);
          const ResolvedCost rc = StaticCost(instr, cost, dec->ymm_reserved);
          u.cost = rc.cost;
          u.extra = rc.extra;
          u.has_extra = rc.has_extra;
          df.uops.push_back(u);
          ++i;
        }
      }
      // Where the reference interpreter would fetch past a block's last
      // instruction (unterminated blocks in unverified modules), plant a
      // guard µop that reproduces its #GP.
      const bool terminated =
          !instrs.empty() && (instrs.back().IsTerminator() || instrs.back().op == ir::Opcode::kTrap);
      if (!terminated) {
        Uop guard;  // non-fused kNop == guard by convention
        guard.block = static_cast<int32_t>(b);
        guard.index = static_cast<int32_t>(instrs.size());
        df.uops.push_back(guard);
      }
    }
    // Resolve branch targets to flat µop indices. Out-of-range targets —
    // undefined behaviour in the reference interpreter — decode to -1 and
    // fault #GP if ever taken.
    for (Uop& u : df.uops) {
      if (u.fused) {
        continue;
      }
      if (u.op == ir::Opcode::kJmp || u.op == ir::Opcode::kCondBr) {
        const int32_t target_block = u.target;
        u.target = (target_block >= 0 && target_block < static_cast<int32_t>(num_blocks))
                       ? df.block_head[static_cast<size_t>(target_block)]
                       : -1;
        if (u.op == ir::Opcode::kCondBr) {
          const int32_t fall = u.block + 1;
          u.fallthrough =
              fall < static_cast<int32_t>(num_blocks) ? df.block_head[static_cast<size_t>(fall)] : -1;
        }
      }
    }
    dec->functions.push_back(std::move(df));
  }
  return dec;
}

bool DecodedModule::Matches(const ir::Module& module, const Process& process) const {
  return source == &module && module_version == module.version &&
         instr_count == module.InstrCount() && CostMatches(process);
}

bool DecodedModule::CostMatches(const Process& process) const {
  return ymm_reserved == process.ymm_reserved() &&
         std::memcmp(&cost, &process.machine().cost, sizeof(cost)) == 0;
}

void CheckUop(const ir::Module& module, int func, const Uop& uop,
              const machine::CostModel& cost) {
  const auto& blocks = module.functions[static_cast<size_t>(func)].blocks;
  if (uop.block < 0 || uop.block >= static_cast<int32_t>(blocks.size())) {
    DecodeDivergence("µop block out of range", func, uop.block, uop.index);
  }
  const auto& instrs = blocks[static_cast<size_t>(uop.block)].instrs;
  if (!uop.fused && uop.op == ir::Opcode::kNop) {
    // Synthetic block-end guard: must sit exactly one past the last
    // instruction of an unterminated block.
    if (uop.index != static_cast<int32_t>(instrs.size())) {
      DecodeDivergence("guard µop not at block end", func, uop.block, uop.index);
    }
    if (uop.handler != kHGuard) {
      DecodeDivergence("guard µop with non-guard handler", func, uop.block, uop.index);
    }
    return;
  }
  if (uop.index < 0 || uop.index >= static_cast<int32_t>(instrs.size())) {
    DecodeDivergence("µop index out of range", func, uop.block, uop.index);
  }
  const ir::Instr& instr = instrs[static_cast<size_t>(uop.index)];
  if (uop.fused) {
    if (!Fusible(instr.op)) {
      DecodeDivergence("fused run starts at a non-fusible instruction", func, uop.block, uop.index);
    }
    if (uop.handler != kHFused) {
      DecodeDivergence("fused µop with non-fused handler", func, uop.block, uop.index);
    }
    return;  // the RegOps inside are checked individually
  }
  if (instr.op != uop.op || static_cast<uint8_t>(instr.dst) != uop.dst ||
      static_cast<uint8_t>(instr.src) != uop.src || instr.imm != uop.imm ||
      instr.flags != uop.flags) {
    DecodeDivergence("µop fields differ from source instruction", func, uop.block, uop.index);
  }
  if (uop.handler != HandlerFor(instr.op)) {
    DecodeDivergence("µop handler differs from opcode's", func, uop.block, uop.index);
  }
  const ResolvedCost rc = StaticCost(instr, cost, /*ymm_reserved=*/false);
  if (rc.cost != uop.cost || rc.has_extra != uop.has_extra ||
      (rc.has_extra && rc.extra != uop.extra)) {
    DecodeDivergence("µop pre-resolved cost differs from cost model", func, uop.block, uop.index);
  }
}

void CheckRegOp(const ir::Module& module, int func, const RegOp& op,
                const machine::CostModel& cost, bool ymm_reserved) {
  const auto& blocks = module.functions[static_cast<size_t>(func)].blocks;
  if (op.block < 0 || op.block >= static_cast<int32_t>(blocks.size())) {
    DecodeDivergence("RegOp block out of range", func, op.block, op.index);
  }
  const auto& instrs = blocks[static_cast<size_t>(op.block)].instrs;
  if (op.index < 0 || op.index >= static_cast<int32_t>(instrs.size())) {
    DecodeDivergence("RegOp index out of range", func, op.block, op.index);
  }
  const ir::Instr& instr = instrs[static_cast<size_t>(op.index)];
  if (instr.op != op.op || static_cast<uint8_t>(instr.dst) != op.dst ||
      static_cast<uint8_t>(instr.src) != op.src || instr.imm != op.imm ||
      static_cast<uint8_t>(instr.imm & 3) != op.alu_kind ||
      instr.IsInstrumentation() != op.instrumentation ||
      (instr.op == ir::Opcode::kLoad || instr.op == ir::Opcode::kStore) != op.is_memory) {
    DecodeDivergence("RegOp fields differ from source instruction", func, op.block, op.index);
  }
  const ResolvedCost rc = StaticCost(instr, cost, ymm_reserved);
  if (rc.cost != op.cost || rc.has_extra != op.has_extra ||
      (rc.has_extra && rc.extra != op.extra)) {
    DecodeDivergence("RegOp pre-resolved cost differs from cost model", func, op.block, op.index);
  }
}

}  // namespace memsentry::sim

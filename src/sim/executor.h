// The executor: interprets MemSentry IR against a Process, enforcing every
// isolation mechanism architecturally (page permissions, protection keys,
// EPT presence, MPX bounds, enclave membership, encryption state) and
// accruing cycles through the cost model. Architectural faults terminate the
// run and are reported in the result — they are the observable evidence that
// deterministic isolation held.
#ifndef MEMSENTRY_SRC_SIM_EXECUTOR_H_
#define MEMSENTRY_SRC_SIM_EXECUTOR_H_

#include <algorithm>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "src/base/arena.h"
#include "src/base/types.h"
#include "src/ir/module.h"
#include "src/machine/fault.h"
#include "src/sim/decoded.h"
#include "src/sim/process.h"

namespace memsentry::sim {

struct RunConfig {
  uint64_t max_instructions = 500'000'000;
  // Dynamic (PIN-style) points-to profiling: record which instructions
  // touched a safe region (paper Section 5.5).
  bool record_safe_accesses = false;
};

// Packs an instruction position for the profiling set.
constexpr uint64_t PackRef(int func, int block, int index) {
  return (static_cast<uint64_t>(func) << 40) | (static_cast<uint64_t>(block) << 20) |
         static_cast<uint64_t>(index);
}

// Where a budget-limited run stopped: the next instruction to execute plus
// the live call depth. Mode-portable by construction — the decoded
// interpreter maps mid-fused-run µop offsets back to their source
// (block, index), so a cursor saved under any MEMSENTRY_FASTPATH mode
// resumes under any other.
struct RunCursor {
  bool valid = false;
  int func = 0;
  int block = 0;
  int index = 0;
  int call_depth = 0;
};

struct RunResult {
  uint64_t instructions = 0;
  Cycles cycles = 0;
  bool halted = false;                   // reached kHalt (or returned from entry)
  bool trapped = false;                  // a defense's kTrap fired
  bool hit_instruction_limit = false;
  std::optional<machine::Fault> fault;   // architectural fault stopped the run

  // Breakdown.
  uint64_t loads = 0;
  uint64_t stores = 0;
  uint64_t calls = 0;
  uint64_t rets = 0;
  uint64_t indirect_calls = 0;
  uint64_t syscalls = 0;
  uint64_t domain_switches = 0;          // wrpkru/vmfunc/crypt/ecall/mprotect events
  uint64_t instrumentation_instrs = 0;
  Cycles instrumentation_cycles = 0;

  // Populated whenever the run exits with hit_instruction_limit; feeds
  // Executor::Resume and the snapshot layer.
  RunCursor cursor;

  // Populated when profiling. An unordered set keeps the hot-path insert
  // O(1); consumers that need a stable order (annotation passes, reports)
  // take the sorted view below instead of iterating the raw set.
  std::unordered_set<uint64_t> safe_access_refs;

  std::vector<uint64_t> SortedSafeAccessRefs() const {
    std::vector<uint64_t> refs(safe_access_refs.begin(), safe_access_refs.end());
    std::sort(refs.begin(), refs.end());
    return refs;
  }

  double Cpi() const {
    return instructions == 0 ? 0.0 : cycles / static_cast<double>(instructions);
  }
};

class Executor {
 public:
  Executor(Process* process, const ir::Module* module)
      : process_(process), module_(module), cost_(&process->machine().cost) {}

  // Interprets the module until halt/trap/fault/instruction limit. Under
  // base::FastPathMode::kOn (the default) this runs the pre-decoded µop
  // stream — bit-identical to the reference interpreter by construction;
  // kOff runs the reference loop; kCheck runs the µop stream with every
  // dispatched µop re-derived from its source instruction (aborting on any
  // divergence).
  RunResult Run(const RunConfig& config = {});

  // Continues a run that previously stopped at its instruction budget.
  // `partial` must carry hit_instruction_limit and a valid cursor, and the
  // process must hold the machine state from that exact moment (typically
  // restored via sim/snapshot). config.max_instructions is the TOTAL budget
  // including instructions already executed; the continuation performs the
  // same sequence of state updates and cycle additions as an uninterrupted
  // run, so run(N+M) == run(N); save; load; resume(M) bit for bit. A
  // `partial` that already finished (or whose cursor no longer names a valid
  // instruction of this module) is returned unchanged — the latter with a
  // #GP fault recorded.
  RunResult Resume(const RunConfig& config, const RunResult& partial);

  // Hands this executor a pre-built decoded form, so harnesses constructing
  // a fresh Executor per run don't re-decode each time. Validated against
  // the live (module, cost model, ymm) state before use; refetched from the
  // shared DecodeCache if stale.
  void SetDecoded(std::shared_ptr<const DecodedModule> decoded) { decoded_ = std::move(decoded); }
  const std::shared_ptr<const DecodedModule>& decoded() const { return decoded_; }

 private:
  RunResult RunReference(const RunConfig& config, const RunResult* resume);
  RunResult RunDecoded(const RunConfig& config, bool check, const RunResult* resume);

  // Makes decoded_ valid for the live (module, cost model, ymm) state,
  // consulting the shared DecodeCache (content-keyed, so concurrent cells
  // lowering the same module share one decode). Cache-fetched decodes are
  // revalidated cheaply by (module pointer, version) without re-digesting.
  void EnsureDecoded();

  Process* process_;
  const ir::Module* module_;
  const machine::CostModel* cost_;
  std::shared_ptr<const DecodedModule> decoded_;
  // Which (module instance, version) decoded_ was last validated for; lets
  // a cache-shared decode (whose `source` is some other content-identical
  // module instance) skip the content digest on every Run.
  const ir::Module* decoded_for_ = nullptr;
  uint64_t decoded_for_version_ = 0;
  // Transient per-event scratch (AES crypt staging); bump-allocated so the
  // hot loop stops hitting the general heap once the first chunk warms up.
  base::Arena arena_;
};

}  // namespace memsentry::sim

#endif  // MEMSENTRY_SRC_SIM_EXECUTOR_H_

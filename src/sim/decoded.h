// Pre-decoded µop streams for the executor's hot loop. A DecodedModule
// lowers every function into a dense, flat µop array: branch targets are
// pre-resolved to flat indices, register numbers are pre-bound, and the
// static per-instruction cycle costs (including the instrumentation/critical
// flag outcomes) are pre-computed against the active CostModel. Maximal runs
// of straight-line instructions — pure-register ops and, since PR 7,
// kLoad/kStore — fuse into a single superblock µop whose RegOps the
// interpreter replays back-to-back without touching the dispatch loop;
// fused memory ops ride the MMU grant cache and bail out of the run on a
// verdict miss or TLB-version tick.
//
// Bit-identity by construction: fused execution performs the *same sequence
// of floating-point additions* to the cycle accumulator as the reference
// interpreter — per-op, in order, never pre-summed (the cost model's
// non-dyadic values make (a+b)+c != a+(b+c) in general, and the
// instrumentation-cycle delta depends on the live accumulator). Decoding
// changes how the adds are driven, never their operands or order.
#ifndef MEMSENTRY_SRC_SIM_DECODED_H_
#define MEMSENTRY_SRC_SIM_DECODED_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/ir/module.h"
#include "src/machine/cost_model.h"

namespace memsentry::sim {

class Process;

// Dispatch handler index, pre-resolved at decode so the interpreter's
// dispatch (computed-goto table or portable switch) is a single indexed
// jump with no opcode re-classification. kHFused covers every fused run;
// kHGuard is the synthetic block-end guard; the rest map 1:1 onto the
// non-fusible opcodes.
enum UopHandler : uint8_t {
  kHFused = 0,
  kHGuard,
  kHLoad,
  kHStore,
  kHJmp,
  kHCondBr,
  kHCall,
  kHIndirectCall,
  kHRet,
  kHHalt,
  kHSyscall,
  kHMprotect,
  kHBndcu,
  kHBndcl,
  kHWrpkru,
  kHRdpkru,
  kHVmFunc,
  kHVmCall,
  kHMFence,
  kHAesCryptRegion,
  kHEnclaveEnter,
  kHEnclaveExit,
  kHTrap,
  kHTrapIf,
  kNumUopHandlers,
};

// One pre-resolved operation inside a fused run. `cost` and (when
// `has_extra`) `extra` are charged as two separate additions, exactly
// as the reference interpreter charges slot + critical-latency (kAndImm) or
// slot + ymm-reserve penalty (kVecOp). Since PR 7, fused runs extend across
// kLoad/kStore (`is_memory`): a fused memory op replays the full MMU access
// (grant probe, pricing, safe-access profiling) inline, and the run bails
// back to the dispatch loop the moment the op's grant verdict misses or the
// TLB version ticks — see Executor::RunDecoded.
struct RegOp {
  ir::Opcode op = ir::Opcode::kNop;
  uint8_t dst = 0;
  uint8_t src = 0;
  uint8_t alu_kind = 0;  // kAluRR: imm & 3
  bool instrumentation = false;
  bool has_extra = false;
  bool is_memory = false;  // kLoad/kStore: grant-stability bailout applies
  double cost = 0;
  double extra = 0;
  uint64_t imm = 0;
  // Source position (block, index) for kCheck re-derivation.
  int32_t block = 0;
  int32_t index = 0;
};

// One µop. Either a fused run of RegOps (fused == true) or a single
// non-fusible instruction carrying its original opcode. A non-fused µop
// with op == kNop is a synthetic block-end guard replicating the reference
// interpreter's fetch-past-terminator #GP for unverified modules.
struct Uop {
  ir::Opcode op = ir::Opcode::kNop;
  uint8_t handler = kHGuard;  // pre-resolved dispatch index (UopHandler)
  bool fused = false;
  bool instrumentation = false;
  bool critical = false;
  bool has_extra = false;
  uint8_t dst = 0;
  uint8_t src = 0;
  uint8_t flags = 0;
  uint64_t imm = 0;
  // kJmp/kCondBr: flat µop index of the taken target's block head.
  // kCall: callee function index. kIndirectCall and the rest: the original
  // instruction's target field.
  int32_t target = 0;
  // kCondBr only: flat µop index of the fall-through block head.
  int32_t fallthrough = 0;
  // Source position, for return-address encoding, safe-access profiling
  // refs and kCheck re-derivation.
  int32_t block = 0;
  int32_t index = 0;
  double cost = 0;   // pre-resolved first cycle addition
  double extra = 0;  // pre-resolved second addition (critical latency etc.)
  uint32_t fuse_start = 0;  // fused: first RegOp in DecodedFunction::regops
  uint32_t fuse_count = 0;  // fused: number of RegOps
};

struct DecodedFunction {
  std::vector<Uop> uops;
  std::vector<RegOp> regops;
  // block index -> flat µop index of the block's first µop.
  std::vector<int32_t> block_head;
  // (block, instruction index) -> µop position. Forged-but-valid return
  // addresses may land mid-fused-run, so every instruction position maps to
  // its µop plus the number of RegOps to skip inside it. Stored flat (one
  // array per function, per-block offsets) so decode does one allocation
  // instead of one per block.
  struct InstrSlot {
    int32_t uop = 0;
    uint32_t skip = 0;
  };
  std::vector<InstrSlot> instr_slots;
  std::vector<uint32_t> instr_base;  // block index -> offset into instr_slots

  // `block`/`index` must be bounds-checked against the source module first.
  InstrSlot Slot(int32_t block, int32_t index) const {
    return instr_slots[instr_base[static_cast<size_t>(block)] + static_cast<uint32_t>(index)];
  }
};

// The decoded form of a whole module, tied to the (module version, cost
// model, ymm reservation) it was built against. Shareable across executors:
// bench harnesses that construct a fresh Executor per run can build one
// DecodedModule up front and hand it to each.
struct DecodedModule {
  std::vector<DecodedFunction> functions;
  const ir::Module* source = nullptr;
  uint64_t module_version = 0;
  uint64_t instr_count = 0;          // belt-and-suspenders vs missed Touch()
  machine::CostModel cost;           // snapshot; memcmp-validated
  bool ymm_reserved = false;

  static std::shared_ptr<const DecodedModule> Build(const ir::Module& module,
                                                    const Process& process);

  // True when this decode is still valid for (module, process): same module
  // identity and version, same instruction count, identical cost model and
  // ymm reservation.
  bool Matches(const ir::Module& module, const Process& process) const;

  // The cost-model half of Matches: identical cost snapshot and ymm
  // reservation. Used by Executor for decodes obtained from the shared
  // DecodeCache, whose `source` points at whichever module instance first
  // populated the entry (content-identical, not pointer-identical).
  bool CostMatches(const Process& process) const;
};

// kCheck helpers: re-derive a µop/RegOp from its source instruction and the
// live cost model, aborting the process with a diagnostic on any mismatch.
// This is the decode-layer half of the differential oracle (the MMU grant
// check is the other half); tests additionally compare full fast-vs-
// reference RunResults bitwise.
void CheckUop(const ir::Module& module, int func, const Uop& uop,
              const machine::CostModel& cost);
void CheckRegOp(const ir::Module& module, int func, const RegOp& op,
                const machine::CostModel& cost, bool ymm_reserved);

}  // namespace memsentry::sim

#endif  // MEMSENTRY_SRC_SIM_DECODED_H_

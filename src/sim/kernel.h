// A tiny kernel for simulated processes: the syscall surface the isolation
// techniques and defenses interact with — mmap/munmap/mprotect (the slow
// baseline's toggle path), pkey_alloc/pkey_free/pkey_mprotect (the Linux MPK
// API), brk-style heap growth, and a write-like sink. Installed as the
// process's syscall handler; under Dune the same calls arrive as hypercalls,
// exactly as the paper's modified Dune forwards them.
#ifndef MEMSENTRY_SRC_SIM_KERNEL_H_
#define MEMSENTRY_SRC_SIM_KERNEL_H_

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/mpk/mpk.h"
#include "src/sim/process.h"

namespace memsentry::sim {

// Syscall numbers (stable ABI for simulated programs).
enum class Sysno : uint64_t {
  kNop = 0,
  kWrite = 1,         // a0 = value to "write"; returns bytes (8)
  kMmap = 9,          // a0 = hint (0 = kernel chooses), a1 = length; returns base
  kMprotect = 10,     // a0 = page-aligned addr, a1 = prot (kProtNone/kProtRw)
  kMunmap = 11,       // a0 = addr, a1 = length
  kBrk = 12,          // a0 = new break (0 = query); returns break
  kPkeyMprotect = 329,  // a0 = addr, a1 = packed(len_pages << 8 | pkey)
  kPkeyAlloc = 330,   // returns key or -errno
  kPkeyFree = 331,    // a0 = key
};

inline constexpr uint64_t kProtNone = 0;
inline constexpr uint64_t kProtRw = 3;
// Executable protections (prot bit 2, as in PROT_EXEC). The mmap-policy
// defense (src/defenses/mmap_policy.h) exists to police transitions into
// these states; the kernel itself applies them verbatim.
inline constexpr uint64_t kProtExec = 4;
inline constexpr uint64_t kProtRx = 5;
inline constexpr uint64_t kProtRwx = 7;

// Base of the kernel-chosen mmap area (between heap and stack). Exposed so
// mmap-policy layers can randomize placements within the same area.
inline constexpr VirtAddr kMmapAreaBase = 0x240000000000ULL;  // 36 TiB

// Raw-syscall error convention: failures return -errno as an unsigned 64-bit
// value, exactly like the Linux syscall ABI before libc's errno translation.
// Anything in the top 4096 values of the space is an error.
enum class Errno : uint64_t {
  kEPERM = 1,
  kENOMEM = 12,
  kEACCES = 13,
  kEBUSY = 16,
  kEEXIST = 17,
  kEINVAL = 22,
  kENOSPC = 28,
  kENOSYS = 38,
};

const char* ErrnoName(Errno err);

// An installed mmap-policy layer (e.g. defenses::MmapPolicy). Consulted by
// the kernel on the memory-management syscalls. Like the syscall handler, it
// is session state: never owned by the kernel and never serialized — setup
// re-attaches it after LoadState.
class MmapPolicyHook {
 public:
  virtual ~MmapPolicyHook() = default;

  // Runs before kMmap/kMprotect/kMunmap execute. Returning an errno refuses
  // the call without mutating anything; nullopt lets it proceed.
  virtual std::optional<Errno> FilterSyscall(Sysno nr, uint64_t a0, uint64_t a1) = 0;

  // Placement override for hint==0 mmaps (ASLR entropy enforcement).
  // nullopt falls back to the kernel's linear cursor.
  virtual std::optional<VirtAddr> ChoosePlacement(uint64_t pages) = 0;

  // Runs after kMmap successfully maps [base, base + pages) — the
  // poison-on-alloc hook.
  virtual void OnMapped(VirtAddr base, uint64_t pages) = 0;
};

inline constexpr uint64_t SysErr(Errno err) {
  return static_cast<uint64_t>(-static_cast<int64_t>(static_cast<uint64_t>(err)));
}
inline constexpr bool IsSysError(uint64_t rv) { return rv > ~uint64_t{4095}; }
// Only meaningful when IsSysError(rv).
inline constexpr Errno SysErrnoOf(uint64_t rv) { return static_cast<Errno>(~rv + 1); }

class Kernel {
 public:
  explicit Kernel(Process* process);

  // Installs the syscall handler on the process.
  void Install();

  uint64_t Dispatch(uint64_t nr, uint64_t a0, uint64_t a1);

  // Attaches/detaches the mmap-policy layer (nullptr detaches). Session
  // state, like the syscall handler: not owned, not serialized.
  void SetMmapPolicy(MmapPolicyHook* policy) { policy_ = policy; }
  MmapPolicyHook* mmap_policy() const { return policy_; }

  // Fault injection: arms the next `count` calls of syscall `nr` to fail
  // with -err before executing (the campaign engine's ENOMEM/ENOSPC/EACCES
  // sites). Deterministic: fires on dispatch order, never on wall clock.
  void InjectSyscallFailure(Sysno nr, Errno err, int count = 1);
  uint64_t injected_failures() const { return injected_failures_; }

  // Scheduler integration: the scheduler announces which tenant (ASID) is on
  // the CPU before running its timeslice, so syscall accounting can be
  // attributed per tenant. ASID 0 is "kernel/no tenant" and is the default.
  void SetCurrentAsid(uint16_t asid) { current_asid_ = asid; }
  uint16_t current_asid() const { return current_asid_; }
  // Syscalls dispatched while `asid` was current (0 for never-seen ASIDs).
  uint64_t asid_syscalls(uint16_t asid) const {
    return asid < asid_syscalls_.size() ? asid_syscalls_[asid] : 0;
  }
  uint64_t total_syscalls() const { return total_syscalls_; }

  // Bookkeeping the tests inspect.
  uint64_t mmap_calls() const { return mmap_calls_; }
  uint64_t mprotect_calls() const { return mprotect_calls_; }
  uint64_t write_sink() const { return write_sink_; }
  VirtAddr current_brk() const { return brk_; }
  mpk::KeyAllocator& key_allocator() { return keys_; }
  // Pages currently tagged with `key` via pkey_mprotect (pkey_free of a key
  // with a nonzero count is refused with EBUSY — stricter than Linux, which
  // silently leaves stale tags behind; the simulator treats that as a bug).
  uint64_t tagged_pages(uint8_t key) const {
    return key < mpk::kNumKeys ? tag_counts_[key] : 0;
  }

  // Crash-safe snapshots: key allocator bitmap, placement cursors, counters
  // and armed injected failures. Install() is re-run by setup, not saved.
  // The per-ASID attribution is scheduler-session state, not ABI state: it is
  // NOT serialized (the on-disk format is pinned by a golden blob) and
  // LoadState resets it along with current_asid.
  void SaveState(machine::SnapshotWriter& w) const;
  Status LoadState(machine::SnapshotReader& r);

 private:
  uint64_t DoMmap(VirtAddr hint, uint64_t length);
  uint64_t DoMprotect(VirtAddr addr, uint64_t prot);
  uint64_t DoMunmap(VirtAddr addr, uint64_t length);
  uint64_t DoBrk(VirtAddr new_brk);
  uint64_t DoPkeyMprotect(VirtAddr addr, uint64_t packed);
  uint64_t DoPkeyFree(uint8_t key);

  // Returns true (and the armed errno) when an injected failure consumes
  // this dispatch of `nr`.
  bool ConsumeInjected(uint64_t nr, Errno* err);

  struct ArmedFailure {
    uint64_t nr = 0;
    Errno err = Errno::kEINVAL;
    int remaining = 0;
  };

  Process* process_;
  MmapPolicyHook* policy_ = nullptr;
  mpk::KeyAllocator keys_;
  VirtAddr mmap_cursor_;  // kernel-chosen placements grow up from here
  VirtAddr brk_;
  uint64_t mmap_calls_ = 0;
  uint64_t mprotect_calls_ = 0;
  uint64_t write_sink_ = 0;
  uint64_t injected_failures_ = 0;
  std::array<uint64_t, mpk::kNumKeys> tag_counts_{};
  std::vector<ArmedFailure> armed_;
  uint16_t current_asid_ = 0;
  uint64_t total_syscalls_ = 0;
  std::vector<uint64_t> asid_syscalls_;  // grown on demand, indexed by ASID
};

}  // namespace memsentry::sim

#endif  // MEMSENTRY_SRC_SIM_KERNEL_H_

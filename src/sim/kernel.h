// A tiny kernel for simulated processes: the syscall surface the isolation
// techniques and defenses interact with — mmap/munmap/mprotect (the slow
// baseline's toggle path), pkey_alloc/pkey_free/pkey_mprotect (the Linux MPK
// API), brk-style heap growth, and a write-like sink. Installed as the
// process's syscall handler; under Dune the same calls arrive as hypercalls,
// exactly as the paper's modified Dune forwards them.
#ifndef MEMSENTRY_SRC_SIM_KERNEL_H_
#define MEMSENTRY_SRC_SIM_KERNEL_H_

#include <cstdint>

#include "src/mpk/mpk.h"
#include "src/sim/process.h"

namespace memsentry::sim {

// Syscall numbers (stable ABI for simulated programs).
enum class Sysno : uint64_t {
  kNop = 0,
  kWrite = 1,         // a0 = value to "write"; returns bytes (8)
  kMmap = 9,          // a0 = hint (0 = kernel chooses), a1 = length; returns base
  kMprotect = 10,     // a0 = page-aligned addr, a1 = prot (kProtNone/kProtRw)
  kMunmap = 11,       // a0 = addr, a1 = length
  kBrk = 12,          // a0 = new break (0 = query); returns break
  kPkeyMprotect = 329,  // a0 = addr, a1 = packed(len_pages << 8 | pkey)
  kPkeyAlloc = 330,   // returns key or -1
  kPkeyFree = 331,    // a0 = key
};

inline constexpr uint64_t kProtNone = 0;
inline constexpr uint64_t kProtRw = 3;
inline constexpr uint64_t kSysError = ~uint64_t{0};

class Kernel {
 public:
  explicit Kernel(Process* process);

  // Installs the syscall handler on the process.
  void Install();

  uint64_t Dispatch(uint64_t nr, uint64_t a0, uint64_t a1);

  // Bookkeeping the tests inspect.
  uint64_t mmap_calls() const { return mmap_calls_; }
  uint64_t mprotect_calls() const { return mprotect_calls_; }
  uint64_t write_sink() const { return write_sink_; }
  VirtAddr current_brk() const { return brk_; }
  mpk::KeyAllocator& key_allocator() { return keys_; }

 private:
  uint64_t DoMmap(VirtAddr hint, uint64_t length);
  uint64_t DoMprotect(VirtAddr addr, uint64_t prot);
  uint64_t DoMunmap(VirtAddr addr, uint64_t length);
  uint64_t DoBrk(VirtAddr new_brk);
  uint64_t DoPkeyMprotect(VirtAddr addr, uint64_t packed);

  Process* process_;
  mpk::KeyAllocator keys_;
  VirtAddr mmap_cursor_;  // kernel-chosen placements grow up from here
  VirtAddr brk_;
  uint64_t mmap_calls_ = 0;
  uint64_t mprotect_calls_ = 0;
  uint64_t write_sink_ = 0;
};

}  // namespace memsentry::sim

#endif  // MEMSENTRY_SRC_SIM_KERNEL_H_

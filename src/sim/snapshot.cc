#include "src/sim/snapshot.h"

#include <cstdio>
#include <fstream>
#include <vector>

#include "src/machine/snapshot.h"

namespace memsentry::sim {
namespace {

constexpr uint32_t kTagSim = 0x53494D21;   // "SIM!"
constexpr uint32_t kTagRun = 0x52554E21;   // "RUN!"

// Reads the sim-level preamble (tag, label, presence flags). Shared by
// LoadSnapshot and PeekSnapshot so the two can never disagree.
Status ReadPreamble(machine::SnapshotReader& r, SnapshotInfo* info) {
  if (!r.ExpectTag(kTagSim, "sim-snapshot")) {
    return r.status();
  }
  info->label = r.String();
  info->has_partial = r.Bool();
  info->has_kernel = r.Bool();
  info->has_injector = r.Bool();
  return r.status();
}

}  // namespace

void SaveRunResult(const RunResult& result, machine::SnapshotWriter& w) {
  w.PutTag(kTagRun);
  w.PutU64(result.instructions);
  // Cycles accumulate as a specific sequence of FP additions; the raw bit
  // pattern must survive so a resumed accumulator continues identically.
  w.PutDouble(result.cycles);
  w.PutBool(result.halted);
  w.PutBool(result.trapped);
  w.PutBool(result.hit_instruction_limit);
  w.PutBool(result.fault.has_value());
  if (result.fault.has_value()) {
    w.PutI32(static_cast<int32_t>(result.fault->type));
    w.PutU64(result.fault->address);
    w.PutI32(static_cast<int32_t>(result.fault->access));
  }
  w.PutU64(result.loads);
  w.PutU64(result.stores);
  w.PutU64(result.calls);
  w.PutU64(result.rets);
  w.PutU64(result.indirect_calls);
  w.PutU64(result.syscalls);
  w.PutU64(result.domain_switches);
  w.PutU64(result.instrumentation_instrs);
  w.PutDouble(result.instrumentation_cycles);
  w.PutBool(result.cursor.valid);
  w.PutI32(result.cursor.func);
  w.PutI32(result.cursor.block);
  w.PutI32(result.cursor.index);
  w.PutI32(result.cursor.call_depth);
  const std::vector<uint64_t> refs = result.SortedSafeAccessRefs();
  w.PutU64(refs.size());
  for (const uint64_t ref : refs) {
    w.PutU64(ref);
  }
}

Status LoadRunResult(RunResult* result, machine::SnapshotReader& r) {
  if (!r.ExpectTag(kTagRun, "run-result")) {
    return r.status();
  }
  RunResult out;
  out.instructions = r.U64();
  out.cycles = r.Double();
  out.halted = r.Bool();
  out.trapped = r.Bool();
  out.hit_instruction_limit = r.Bool();
  if (r.Bool()) {
    machine::Fault fault;
    fault.type = static_cast<machine::FaultType>(r.I32());
    fault.address = r.U64();
    fault.access = static_cast<machine::AccessType>(r.I32());
    out.fault = fault;
  }
  out.loads = r.U64();
  out.stores = r.U64();
  out.calls = r.U64();
  out.rets = r.U64();
  out.indirect_calls = r.U64();
  out.syscalls = r.U64();
  out.domain_switches = r.U64();
  out.instrumentation_instrs = r.U64();
  out.instrumentation_cycles = r.Double();
  out.cursor.valid = r.Bool();
  out.cursor.func = r.I32();
  out.cursor.block = r.I32();
  out.cursor.index = r.I32();
  out.cursor.call_depth = r.I32();
  const uint64_t ref_count = r.U64();
  if (!r.FitCount(ref_count, 8)) {
    return r.status();
  }
  out.safe_access_refs.reserve(ref_count);
  for (uint64_t i = 0; i < ref_count; ++i) {
    out.safe_access_refs.insert(r.U64());
  }
  MEMSENTRY_RETURN_IF_ERROR(r.status());
  *result = std::move(out);
  return OkStatus();
}

std::string SaveSnapshot(const Process& process, const RunResult* partial,
                         const Kernel* kernel, const FaultInjector* injector,
                         const std::string& label) {
  machine::SnapshotWriter w;
  w.PutTag(kTagSim);
  w.PutString(label);
  w.PutBool(partial != nullptr);
  w.PutBool(kernel != nullptr);
  w.PutBool(injector != nullptr);
  process.SaveState(w);
  if (partial != nullptr) {
    SaveRunResult(*partial, w);
  }
  if (kernel != nullptr) {
    kernel->SaveState(w);
  }
  if (injector != nullptr) {
    injector->SaveState(w);
  }
  return w.Finalize();
}

Status LoadSnapshot(std::string_view blob, Process* process, RunResult* partial,
                    Kernel* kernel, FaultInjector* injector, SnapshotInfo* info) {
  MEMSENTRY_ASSIGN_OR_RETURN(machine::SnapshotReader r, machine::SnapshotReader::Open(blob));
  SnapshotInfo local;
  MEMSENTRY_RETURN_IF_ERROR(ReadPreamble(r, &local));
  if (process == nullptr) {
    return InvalidArgument("LoadSnapshot requires a process");
  }
  if (local.has_partial != (partial != nullptr)) {
    return FailedPrecondition(local.has_partial
                                  ? "snapshot carries a partial run but no RunResult was given"
                                  : "RunResult given but the snapshot has no partial run");
  }
  if (local.has_kernel != (kernel != nullptr)) {
    return FailedPrecondition(local.has_kernel
                                  ? "snapshot carries kernel state but no Kernel was given"
                                  : "Kernel given but the snapshot has no kernel state");
  }
  if (local.has_injector != (injector != nullptr)) {
    return FailedPrecondition(
        local.has_injector ? "snapshot carries injector state but no FaultInjector was given"
                           : "FaultInjector given but the snapshot has no injector state");
  }
  MEMSENTRY_RETURN_IF_ERROR(process->LoadState(r));
  if (partial != nullptr) {
    MEMSENTRY_RETURN_IF_ERROR(LoadRunResult(partial, r));
  }
  if (kernel != nullptr) {
    MEMSENTRY_RETURN_IF_ERROR(kernel->LoadState(r));
  }
  if (injector != nullptr) {
    MEMSENTRY_RETURN_IF_ERROR(injector->LoadState(r));
  }
  MEMSENTRY_RETURN_IF_ERROR(r.Finish());
  if (info != nullptr) {
    *info = std::move(local);
  }
  return OkStatus();
}

Status PeekSnapshot(std::string_view blob, SnapshotInfo* info) {
  MEMSENTRY_ASSIGN_OR_RETURN(machine::SnapshotReader r, machine::SnapshotReader::Open(blob));
  return ReadPreamble(r, info);
}

Status WriteSnapshotFile(const std::string& path, const std::string& blob) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return InternalError("cannot open " + tmp + " for writing");
    }
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return InternalError("short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return InternalError("cannot rename " + tmp + " into place");
  }
  return OkStatus();
}

StatusOr<std::string> ReadSnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFound("no snapshot at " + path);
  }
  std::string blob((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) {
    return InternalError("read error on " + path);
  }
  return blob;
}

}  // namespace memsentry::sim

// A shared, reference-counted cache of DecodedModules, keyed by module
// *content* (an FNV-1a digest over every instruction field plus the entry
// index) × cost-model digest × ymm reservation. Experiment cells and
// server-workload tenants lower the same handful of ir::Modules thousands
// of times; the cache makes each unique (content, cost model) pair decode
// exactly once, even when ParallelMap workers race to populate it — the
// first caller builds, everyone else blocks on a shared_future for that
// key. Entries are shared_ptrs: eviction (LRU past `capacity`) only drops
// the cache's reference, so executors holding a decode keep it alive.
//
// Content keying (not pointer + version keying) is deliberate: a global
// cache outlives the modules it decodes, and the heap reuses addresses —
// `DecodedModule::Matches`-style identity checks would alias. The digest
// also makes content-identical module instances (every cell of a figure
// sweep builds its own baseline module) share one decode.
#ifndef MEMSENTRY_SRC_SIM_DECODE_CACHE_H_
#define MEMSENTRY_SRC_SIM_DECODE_CACHE_H_

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "src/ir/module.h"
#include "src/machine/cost_model.h"
#include "src/sim/decoded.h"

namespace memsentry::sim {

class Process;

struct DecodeCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;  // each miss is exactly one lowering
  uint64_t evictions = 0;
  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

// FNV-1a digest of a module's executable content: entry index, function and
// block structure, and every instruction field the interpreter reads.
// Function names are excluded (they never execute).
uint64_t ModuleContentDigest(const ir::Module& module);

// FNV-1a digest of the cost model's byte image (the same bytes
// DecodedModule::CostMatches memcmps).
uint64_t CostModelDigest(const machine::CostModel& cost);

class DecodeCache {
 public:
  static constexpr size_t kDefaultCapacity = 64;

  explicit DecodeCache(size_t capacity = kDefaultCapacity) : capacity_(capacity) {}

  // The process-wide cache every Executor consults.
  static DecodeCache& Global();

  // Returns the decoded form of (module, process's cost model), building it
  // on first use. Thread-safe; concurrent callers with the same key get the
  // same shared_ptr and only one of them runs DecodedModule::Build. When
  // `was_hit` is non-null it reports whether this call found a ready (or
  // in-flight) entry.
  std::shared_ptr<const DecodedModule> Get(const ir::Module& module, const Process& process,
                                           bool* was_hit = nullptr);

  DecodeCacheStats stats() const;
  void ResetStats();

  // Drops every cached entry (executors holding shared_ptrs are unaffected).
  void Clear();
  size_t size() const;

  size_t capacity() const { return capacity_; }
  void SetCapacity(size_t capacity);

 private:
  struct Key {
    uint64_t content = 0;
    uint64_t cost = 0;
    uint64_t instr_count = 0;
    bool ymm_reserved = false;

    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = k.content * 0x9E3779B97F4A7C15ULL;
      h ^= k.cost + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
      h ^= k.instr_count + (h << 6) + (h >> 2);
      return static_cast<size_t>(h ^ (k.ymm_reserved ? 0x5bd1e995 : 0));
    }
  };
  struct Entry {
    Key key;
    std::shared_future<std::shared_ptr<const DecodedModule>> decoded;
  };

  void EvictOverCapacityLocked();

  mutable std::mutex mutex_;
  size_t capacity_;
  // Front = most recently used. The map indexes into the list.
  std::list<Entry> lru_;
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  DecodeCacheStats stats_;
};

}  // namespace memsentry::sim

#endif  // MEMSENTRY_SRC_SIM_DECODE_CACHE_H_

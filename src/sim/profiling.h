// Dynamic points-to analysis (the paper's PIN pass, Section 5.5): run the
// program once while recording which instructions touch a safe region, then
// annotate exactly those with saferegion_access(). Precise for the profiled
// input but prone to *under*-approximation — unprofiled paths fault at run
// time — whereas the static DSA-style analysis (src/ir/pointsto.h) is
// conservative and over-approximates. The profiling run must happen before
// Technique::Prepare (the region must still be plainly accessible), and it
// mutates process memory/registers: profile on a scratch process.
#ifndef MEMSENTRY_SRC_SIM_PROFILING_H_
#define MEMSENTRY_SRC_SIM_PROFILING_H_

#include "src/base/status.h"
#include "src/ir/module.h"
#include "src/sim/executor.h"
#include "src/sim/process.h"

namespace memsentry::sim {

struct DynamicPointsToResult {
  uint64_t annotated = 0;             // instructions flagged kFlagSafeAccess
  uint64_t profile_instructions = 0;  // dynamic length of the profiling run
};

StatusOr<DynamicPointsToResult> DynamicPointsTo(Process& process, ir::Module& module,
                                                uint64_t max_instructions = 10'000'000);

}  // namespace memsentry::sim

#endif  // MEMSENTRY_SRC_SIM_PROFILING_H_

// A deterministic preemptive scheduler for multi-tenant simulations: per-ASID
// run queues, a round-robin ready list, preemption quanta and modeled
// context-switch costs. The paper's deployment story is a long-lived server
// multiplexing many protected tenants; this is the piece of `sim` that turns
// per-transition costs (wrpkru/vmfunc/mprotect) into end-to-end request
// latency under contention, and that exercises the per-ASID TLB/grant-cache
// coherence added in PR 4 (SetVpid on switch, no flush).
//
// Everything is in modeled cycles and driven purely by submitted arrivals —
// no wall clock, no host randomness — so a run is bit-identical for a given
// submission set regardless of host load or `--jobs`.
#ifndef MEMSENTRY_SRC_SIM_SCHEDULER_H_
#define MEMSENTRY_SRC_SIM_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/base/types.h"

namespace memsentry::sim {

struct SchedulerConfig {
  // Preemption quantum in modeled cycles. Phases are the atomic unit of
  // execution: a phase that overruns the quantum finishes, then the tenant is
  // preempted (the simulator's analogue of returning to the kernel at the
  // next safe point).
  Cycles quantum = 50'000;
  // Direct cost of a context switch (register save/restore, kernel entry and
  // exit, scheduler bookkeeping) charged whenever the CPU changes tenant.
  // Lives here rather than in machine::CostModel on purpose: the snapshot
  // format digests sizeof(CostModel), and the committed golden blob pins it.
  // The *indirect* cost (cold TLB/grant-cache for the incoming ASID) is not a
  // constant at all — it emerges from the ASID-tagged MMU state.
  Cycles context_switch_cycles = 3'000;
};

struct SchedulerStats {
  uint64_t context_switches = 0;  // tenant-to-tenant CPU handoffs
  uint64_t preemptions = 0;       // quantum expiries with runnable work left
  uint64_t idle_jumps = 0;        // clock fast-forwards to the next arrival
  Cycles switch_cycles = 0;       // total direct switch cost
  Cycles busy_cycles = 0;         // total cycles spent running phases
};

struct CompletedRequest {
  uint16_t tenant = 0;
  uint64_t seq = 0;       // submitter's request id, opaque to the scheduler
  Cycles arrival = 0;
  Cycles completion = 0;  // latency = completion - arrival (includes queueing)
};

class Scheduler {
 public:
  // Runs one phase of tenant `tenant`'s request `seq`. Returns the modeled
  // cycles the phase consumed; sets *done to true when the request has no
  // further phases. Phase indices count up from 0 per request.
  using PhaseRunner =
      std::function<Cycles(uint16_t tenant, uint64_t seq, int phase, bool* done)>;
  // Invoked on every context switch with the incoming tenant, before its
  // timeslice runs. The owner uses this to retarget the MMU's ASID
  // (mmu().SetVpid) and the kernel's syscall attribution.
  using SwitchHook = std::function<void(uint16_t tenant)>;

  Scheduler(const SchedulerConfig& config, uint16_t num_tenants);

  // Registers a request arriving at `arrival` modeled cycles for `tenant`.
  // All submissions must precede Run. Ties are served in submission order.
  void Submit(uint16_t tenant, uint64_t seq, Cycles arrival);

  void SetSwitchHook(SwitchHook hook) { switch_hook_ = std::move(hook); }

  // Runs every submitted request to completion and returns them in
  // completion order. Deterministic: round-robin over a FIFO ready list,
  // arrivals admitted in (arrival, submission-order) order.
  std::vector<CompletedRequest> Run(const PhaseRunner& runner);

  const SchedulerStats& stats() const { return stats_; }
  Cycles clock() const { return clock_; }
  // Per-tenant cycles spent running phases (the fairness ledger).
  Cycles tenant_busy_cycles(uint16_t tenant) const {
    return tenant < tenants_.size() ? tenants_[tenant].busy_cycles : 0;
  }
  uint64_t tenant_completed(uint16_t tenant) const {
    return tenant < tenants_.size() ? tenants_[tenant].completed : 0;
  }

 private:
  struct Pending {
    Cycles arrival = 0;
    uint16_t tenant = 0;
    uint64_t seq = 0;
  };
  struct Active {
    uint64_t seq = 0;
    Cycles arrival = 0;
    int phase = 0;
  };
  struct Tenant {
    std::deque<Active> run_queue;  // this ASID's runnable requests, FIFO
    bool in_ready = false;
    Cycles busy_cycles = 0;
    uint64_t completed = 0;
  };

  // Moves every pending arrival with arrival <= clock_ onto its tenant's run
  // queue and readies the tenant.
  void AdmitUpTo(Cycles now);
  void MakeReady(uint16_t tenant);

  SchedulerConfig config_;
  std::vector<Tenant> tenants_;
  std::vector<Pending> pending_;   // sorted stably by arrival before running
  size_t admit_cursor_ = 0;
  std::deque<uint16_t> ready_;     // round-robin order; each tenant at most once
  SwitchHook switch_hook_;
  SchedulerStats stats_;
  Cycles clock_ = 0;
  // Sentinel: no tenant has run yet (first dispatch is still a switch).
  static constexpr uint32_t kNoTenant = ~uint32_t{0};
  uint32_t current_ = kNoTenant;
};

}  // namespace memsentry::sim

#endif  // MEMSENTRY_SRC_SIM_SCHEDULER_H_

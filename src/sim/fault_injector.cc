#include "src/sim/fault_injector.h"

#include "src/machine/page_table.h"
#include "src/machine/snapshot.h"

namespace memsentry::sim {

namespace {
constexpr uint32_t kTagInjector = 0x46494E4A;  // "FINJ"
}  // namespace

void FaultInjector::SaveState(machine::SnapshotWriter& w) const {
  w.PutTag(kTagInjector);
  w.PutU64(seed_);
  for (const uint64_t word : rng_.state()) {
    w.PutU64(word);
  }
  w.PutU64(injections_.size());
  for (const Injection& injection : injections_) {
    w.PutI32(static_cast<int32_t>(injection.site));
    w.PutU64(injection.address);
    w.PutU64(injection.before);
    w.PutU64(injection.after);
    w.PutString(injection.detail);
  }
}

Status FaultInjector::LoadState(machine::SnapshotReader& r) {
  if (!r.ExpectTag(kTagInjector, "fault-injector")) {
    return r.status();
  }
  const uint64_t seed = r.U64();
  std::array<uint64_t, 4> state;
  for (uint64_t& word : state) {
    word = r.U64();
  }
  const uint64_t count = r.U64();
  if (!r.FitCount(count, 36)) {
    return r.status();
  }
  std::vector<Injection> injections;
  injections.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    const int32_t site = r.I32();
    if (site < 0 || site >= kNumFaultSites) {
      r.Fail(InvalidArgument("snapshot fault site out of range"));
      return r.status();
    }
    Injection injection;
    injection.site = static_cast<FaultSite>(site);
    injection.address = r.U64();
    injection.before = r.U64();
    injection.after = r.U64();
    injection.detail = r.String();
    injections.push_back(std::move(injection));
  }
  MEMSENTRY_RETURN_IF_ERROR(r.status());
  seed_ = seed;
  rng_.set_state(state);
  injections_ = std::move(injections);
  return OkStatus();
}

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kPtePresentClear:
      return "pte-present-clear";
    case FaultSite::kPteWritableClear:
      return "pte-writable-clear";
    case FaultSite::kPtePkeyFlip:
      return "pte-pkey-flip";
    case FaultSite::kTlbStaleEntry:
      return "tlb-stale-entry";
    case FaultSite::kBndRegisterClobber:
      return "bnd-register-clobber";
    case FaultSite::kBndTableCorrupt:
      return "bnd-table-corrupt";
    case FaultSite::kPkruDesync:
      return "pkru-desync";
    case FaultSite::kEptMappingDrop:
      return "ept-mapping-drop";
    case FaultSite::kAesRoundKeyClobber:
      return "aes-round-key-clobber";
    case FaultSite::kSyscallMmapEnomem:
      return "syscall-mmap-enomem";
    case FaultSite::kSyscallPkeyAllocExhausted:
      return "syscall-pkey-alloc-exhausted";
    case FaultSite::kSyscallMprotectEacces:
      return "syscall-mprotect-eacces";
  }
  return "?";
}

SafeRegion* FaultInjector::PickRegion() {
  auto& regions = process_->safe_regions();
  if (regions.empty()) {
    return nullptr;
  }
  return &regions[rng_.Below(regions.size())];
}

VirtAddr FaultInjector::PickPage(const SafeRegion& region) {
  const uint64_t pages = PageAlignUp(region.size) >> kPageShift;
  return region.base + rng_.Below(pages == 0 ? 1 : pages) * kPageSize;
}

StatusOr<Injection> FaultInjector::Inject(FaultSite site) {
  StatusOr<Injection> result = [&]() -> StatusOr<Injection> {
    switch (site) {
      case FaultSite::kPtePresentClear:
      case FaultSite::kPteWritableClear:
      case FaultSite::kPtePkeyFlip:
        return CorruptPte(site);
      case FaultSite::kTlbStaleEntry:
        return InsertStaleTlbEntry();
      case FaultSite::kBndRegisterClobber:
      case FaultSite::kBndTableCorrupt:
        return ClobberBounds(site);
      case FaultSite::kPkruDesync:
        return DesyncPkru();
      case FaultSite::kEptMappingDrop:
        return DropEptMapping();
      case FaultSite::kAesRoundKeyClobber:
        return ClobberAesRoundKey();
      case FaultSite::kSyscallMmapEnomem:
      case FaultSite::kSyscallPkeyAllocExhausted:
      case FaultSite::kSyscallMprotectEacces:
        return ArmSyscallFailure(site);
    }
    return InvalidArgument("unknown fault site");
  }();
  if (result.ok()) {
    injections_.push_back(result.value());
  }
  return result;
}

StatusOr<Injection> FaultInjector::CorruptPte(FaultSite site) {
  SafeRegion* region = PickRegion();
  if (region == nullptr) {
    return FailedPrecondition("no safe region to corrupt");
  }
  const VirtAddr va = PickPage(*region);
  MEMSENTRY_ASSIGN_OR_RETURN(uint64_t pte, process_->page_table().ReadPte(va));
  uint64_t corrupted = pte;
  std::string detail;
  switch (site) {
    case FaultSite::kPtePresentClear:
      corrupted &= ~machine::kPtePresent;
      detail = "cleared P bit";
      break;
    case FaultSite::kPteWritableClear:
      corrupted &= ~machine::kPteWritable;
      detail = "cleared W bit";
      break;
    case FaultSite::kPtePkeyFlip: {
      const uint8_t old_key = machine::PageTable::PtePkey(pte);
      // A different key, uniform over the 15 others: flipping to an unused
      // key is the dangerous case (unused keys are open under closed PKRU).
      uint8_t new_key = static_cast<uint8_t>(rng_.Below(15));
      if (new_key >= old_key) {
        ++new_key;
      }
      corrupted = (pte & ~machine::kPtePkeyMask) |
                  ((uint64_t{new_key} << machine::kPtePkeyShift) & machine::kPtePkeyMask);
      detail = "pkey " + std::to_string(old_key) + " -> " + std::to_string(new_key);
      break;
    }
    default:
      return InvalidArgument("not a PTE site");
  }
  MEMSENTRY_RETURN_IF_ERROR(process_->page_table().WritePteRaw(va, corrupted));
  // The corruption is architecturally visible at once: stale-TLB masking is
  // its own site (kTlbStaleEntry), so keep the two failure modes separate.
  process_->mmu().InvalidatePage(va);
  return Injection{.site = site,
                   .address = va,
                   .before = pte,
                   .after = corrupted,
                   .detail = region->name + ": " + detail};
}

StatusOr<Injection> FaultInjector::InsertStaleTlbEntry() {
  SafeRegion* region = PickRegion();
  if (region == nullptr) {
    return FailedPrecondition("no safe region to corrupt");
  }
  const VirtAddr va = PickPage(*region);
  // The worst-case desync: a cached translation from before the technique
  // revoked access — host frame already resolved, user-reachable, writable,
  // default key. Inserted under the tag current translations use, so the
  // next access hits it without a walk (and without second-level checks).
  MEMSENTRY_ASSIGN_OR_RETURN(PhysAddr host, process_->TranslateRaw(va));
  const uint64_t stale = (host & machine::kPteFrameMask) | machine::kPtePresent |
                         machine::kPteWritable | machine::kPteUser;
  const uint16_t asid = process_->mmu().EffectiveAsid();
  process_->mmu().tlb().Insert(va, asid, stale);
  return Injection{.site = FaultSite::kTlbStaleEntry,
                   .address = va,
                   .before = 0,
                   .after = stale,
                   .detail = region->name + ": permissive entry under asid " +
                             std::to_string(asid)};
}

StatusOr<Injection> FaultInjector::ClobberBounds(FaultSite site) {
  machine::RegisterFile& regs = process_->regs();
  if (site == FaultSite::kBndRegisterClobber) {
    const uint64_t before = regs.bnd[0].upper;
    regs.bnd[0] = machine::BoundRegister{};  // INIT: [0, ~0], permit everything
    return Injection{.site = site,
                     .before = before,
                     .after = regs.bnd[0].upper,
                     .detail = "bnd0 reset to INIT"};
  }
  const auto& reload = process_->bnd_reload(0);
  const uint64_t before = reload.has_value() ? reload->upper : 0;
  process_->SetBndReload(0, machine::BoundRegister{});
  return Injection{.site = site,
                   .before = before,
                   .after = ~uint64_t{0},
                   .detail = "bound-table entry for bnd0 widened"};
}

StatusOr<Injection> FaultInjector::DesyncPkru() {
  const uint32_t before = process_->regs().pkru.value;
  process_->regs().pkru.value = 0;  // all keys open
  return Injection{.site = FaultSite::kPkruDesync,
                   .before = before,
                   .after = 0,
                   .detail = "PKRU forced all-open"};
}

StatusOr<Injection> FaultInjector::DropEptMapping() {
  if (!process_->dune_enabled()) {
    return FailedPrecondition("EPT drop needs a Dune process");
  }
  // Deterministic pick among regions actually private to a secondary EPT.
  std::vector<SafeRegion*> candidates;
  for (auto& region : process_->safe_regions()) {
    if (region.ept_index > 0) {
      candidates.push_back(&region);
    }
  }
  if (candidates.empty()) {
    return FailedPrecondition("no region is private to a secondary EPT");
  }
  SafeRegion* region = candidates[rng_.Below(candidates.size())];
  const VirtAddr va = PickPage(*region);
  auto walk = process_->page_table().Walk(va);
  if (!walk.ok()) {
    return FailedPrecondition("victim page not mapped");
  }
  const GuestPhysAddr gpa = walk.value().phys & ~kPageMask;
  MEMSENTRY_RETURN_IF_ERROR(process_->dune()->vmx().ept(region->ept_index).Unmap(gpa));
  process_->mmu().InvalidatePage(va);
  return Injection{.site = FaultSite::kEptMappingDrop,
                   .address = va,
                   .before = gpa,
                   .after = 0,
                   .detail = region->name + ": gpa dropped from EPT " +
                             std::to_string(region->ept_index)};
}

StatusOr<Injection> FaultInjector::ClobberAesRoundKey() {
  std::vector<SafeRegion*> candidates;
  for (auto& region : process_->safe_regions()) {
    if (region.crypt) {
      candidates.push_back(&region);
    }
  }
  if (candidates.empty()) {
    return FailedPrecondition("no encrypted region");
  }
  SafeRegion* region = candidates[rng_.Below(candidates.size())];
  const uint64_t round = rng_.Below(region->enc_keys.size());
  const uint64_t byte = rng_.Below(aes::kBlockSize);
  const uint8_t flip = static_cast<uint8_t>(1 + rng_.Below(255));  // never a no-op
  const uint8_t before = region->enc_keys[round][byte];
  region->enc_keys[round][byte] = static_cast<uint8_t>(before ^ flip);
  return Injection{.site = FaultSite::kAesRoundKeyClobber,
                   .address = region->base,
                   .before = before,
                   .after = region->enc_keys[round][byte],
                   .detail = region->name + ": round " + std::to_string(round) +
                             " byte " + std::to_string(byte)};
}

StatusOr<Injection> FaultInjector::ArmSyscallFailure(FaultSite site) {
  if (kernel_ == nullptr) {
    return FailedPrecondition("syscall sites need SetKernel()");
  }
  Sysno nr = Sysno::kMmap;
  Errno err = Errno::kENOMEM;
  int count = 1;
  std::string detail;
  switch (site) {
    case FaultSite::kSyscallMmapEnomem:
      nr = Sysno::kMmap;
      err = Errno::kENOMEM;
      detail = "next mmap fails ENOMEM";
      break;
    case FaultSite::kSyscallPkeyAllocExhausted:
      nr = Sysno::kPkeyAlloc;
      err = Errno::kENOSPC;
      count = 1 << 20;  // effectively permanent exhaustion
      detail = "pkey_alloc exhausted (ENOSPC)";
      break;
    case FaultSite::kSyscallMprotectEacces:
      nr = Sysno::kMprotect;
      err = Errno::kEACCES;
      detail = "next mprotect fails EACCES";
      break;
    default:
      return InvalidArgument("not a syscall site");
  }
  kernel_->InjectSyscallFailure(nr, err, count);
  return Injection{.site = site,
                   .address = static_cast<uint64_t>(nr),
                   .before = 0,
                   .after = static_cast<uint64_t>(err),
                   .detail = detail};
}

}  // namespace memsentry::sim

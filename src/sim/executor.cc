#include "src/sim/executor.h"

#include <cassert>
#include <cstdlib>
#include <span>
#include <vector>

#include "src/base/fastpath.h"
#include "src/mpk/mpk.h"
#include "src/mpx/mpx.h"
#include "src/sim/decode_cache.h"

// Computed-goto threaded dispatch (the "label as value" extension) is the
// default on GCC/Clang; -DMEMSENTRY_THREADED_DISPATCH=0 (or a compiler
// without the extension) falls back to the portable switch dispatcher.
// Both drive the exact same handler bodies through the OP()/DISPATCH()
// macros below, so the choice affects only branch layout, never results.
#ifndef MEMSENTRY_THREADED_DISPATCH
#define MEMSENTRY_THREADED_DISPATCH 1
#endif
#if MEMSENTRY_THREADED_DISPATCH && (defined(__GNUC__) || defined(__clang__))
#define MEMSENTRY_USE_THREADED_DISPATCH 1
#else
#define MEMSENTRY_USE_THREADED_DISPATCH 0
#endif

// Forces the per-access helper lambdas into their call sites; they sit on
// the hottest path (once per modeled load/store).
#if defined(__GNUC__) || defined(__clang__)
#define MEMSENTRY_HOT_INLINE __attribute__((always_inline))
#else
#define MEMSENTRY_HOT_INLINE
#endif

namespace memsentry::sim {
namespace {

// Return addresses pushed on the simulated stack encode an instruction
// position behind a tag; corrupting one either produces an invalid decode
// (#GP on ret) or — if the attacker forges a valid encoding — a control-flow
// hijack, both observable by tests.
inline constexpr uint64_t kRaTag = 0xCA11ULL << 48;
inline constexpr uint64_t kRaTagMask = 0xFFFFULL << 48;

uint64_t EncodeRa(int func, int block, int index) {
  return kRaTag | (static_cast<uint64_t>(func & 0xfff) << 36) |
         (static_cast<uint64_t>(block & 0x3ffff) << 18) | static_cast<uint64_t>(index & 0x3ffff);
}

bool DecodeRa(uint64_t value, int* func, int* block, int* index) {
  if ((value & kRaTagMask) != kRaTag) {
    return false;
  }
  *func = static_cast<int>((value >> 36) & 0xfff);
  *block = static_cast<int>((value >> 18) & 0x3ffff);
  *index = static_cast<int>(value & 0x3ffff);
  return true;
}

struct Position {
  int func = 0;
  int block = 0;
  int index = 0;
};

// A resume cursor must name a live instruction of this module before either
// interpreter dereferences it — snapshots pass checksum validation, but a
// cursor saved against a different module would index out of bounds.
bool CursorNamesInstruction(const ir::Module& module, const RunCursor& cursor) {
  if (cursor.func < 0 || cursor.func >= static_cast<int>(module.functions.size())) {
    return false;
  }
  const auto& func = module.functions[static_cast<size_t>(cursor.func)];
  if (cursor.block < 0 || cursor.block >= static_cast<int>(func.blocks.size())) {
    return false;
  }
  const auto& block = func.blocks[static_cast<size_t>(cursor.block)];
  return cursor.index >= 0 && cursor.index < static_cast<int>(block.instrs.size()) &&
         cursor.call_depth >= 0;
}

}  // namespace

RunResult Executor::Run(const RunConfig& config) {
  const base::FastPathMode mode = base::GetFastPathMode();
  if (mode == base::FastPathMode::kOff) {
    return RunReference(config, nullptr);
  }
  EnsureDecoded();
  return RunDecoded(config, /*check=*/mode == base::FastPathMode::kCheck, nullptr);
}

void Executor::EnsureDecoded() {
  if (decoded_ != nullptr) {
    if (decoded_for_ == module_ && decoded_for_version_ == module_->version &&
        decoded_->instr_count == module_->InstrCount() && decoded_->CostMatches(*process_)) {
      return;  // revalidated without re-digesting the module
    }
    if (decoded_->Matches(*module_, *process_)) {
      // A decode handed in via SetDecoded whose `source` is this very
      // module instance; pin the cheap revalidation to it.
      decoded_for_ = module_;
      decoded_for_version_ = module_->version;
      return;
    }
  }
  decoded_ = DecodeCache::Global().Get(*module_, *process_);
  decoded_for_ = module_;
  decoded_for_version_ = module_->version;
}

RunResult Executor::Resume(const RunConfig& config, const RunResult& partial) {
  if (!partial.hit_instruction_limit || !partial.cursor.valid) {
    return partial;  // already finished; nothing to continue
  }
  if (!CursorNamesInstruction(*module_, partial.cursor)) {
    RunResult result = partial;
    result.fault =
        machine::Fault{machine::FaultType::kGeneralProtection, 0, machine::AccessType::kExecute};
    return result;
  }
  const base::FastPathMode mode = base::GetFastPathMode();
  if (mode == base::FastPathMode::kOff) {
    return RunReference(config, &partial);
  }
  EnsureDecoded();
  return RunDecoded(config, /*check=*/mode == base::FastPathMode::kCheck, &partial);
}

RunResult Executor::RunReference(const RunConfig& config, const RunResult* resume) {
  RunResult result;
  auto& regs = process_->regs();
  auto& mmu = process_->mmu();
  auto& functions = module_->functions;

  Position pos{module_->entry, 0, 0};
  int call_depth = 0;
  if (resume != nullptr) {
    result = *resume;
    result.hit_instruction_limit = false;
    pos = Position{resume->cursor.func, resume->cursor.block, resume->cursor.index};
    call_depth = resume->cursor.call_depth;
    result.cursor = RunCursor{};
  }

  auto fault_out = [&](const machine::Fault& fault) {
    result.fault = fault;
    return result;
  };

  // Profiling flag hoisted out of the per-access path: data_access runs for
  // every load/store, and reading a loop-invariant local lets the compiler
  // keep it in a register instead of reloading config each access.
  const bool record_safe_accesses = config.record_safe_accesses;

  // Validates + prices + performs one data access; returns false on fault.
  auto data_access = [&](VirtAddr va, machine::AccessType access, uint64_t* value,
                         machine::Fault* fault) -> bool {
    // SGX rule: enclave pages are untouchable from outside the enclave.
    if (process_->enclave() != nullptr && !process_->enclave()->AccessAllowed(va)) {
      *fault = machine::Fault{machine::FaultType::kEnclaveAccess, va, access};
      return false;
    }
    if (access == machine::AccessType::kRead) {
      auto r = mmu.Read64(va, regs.pkru, &result.cycles);
      if (!r.ok()) {
        *fault = r.fault();
        return false;
      }
      *value = r.value();
    } else {
      auto w = mmu.Write64(va, *value, regs.pkru, &result.cycles);
      if (!w.ok()) {
        *fault = w.fault();
        return false;
      }
    }
    if (record_safe_accesses && process_->InSafeRegion(va)) {
      result.safe_access_refs.insert(PackRef(pos.func, pos.block, pos.index));
    }
    return true;
  };

  while (result.instructions < config.max_instructions) {
    const auto& func = functions[static_cast<size_t>(pos.func)];
    const auto& block = func.blocks[static_cast<size_t>(pos.block)];
    if (pos.index >= static_cast<int>(block.instrs.size())) {
      // Structurally impossible after verification; guard anyway.
      return fault_out({machine::FaultType::kGeneralProtection, 0, machine::AccessType::kExecute});
    }
    const ir::Instr& instr = block.instrs[static_cast<size_t>(pos.index)];
    ++result.instructions;
    const Cycles cycles_before = result.cycles;
    bool advance = true;

    switch (instr.op) {
      case ir::Opcode::kNop:
        result.cycles += cost_->nop_slot;
        break;
      case ir::Opcode::kMovImm:
        regs[instr.dst] = instr.imm;
        result.cycles += instr.IsInstrumentation() ? cost_->sfi_movabs_slot : cost_->mov_imm_slot;
        break;
      case ir::Opcode::kAddImm:
        regs[instr.dst] += static_cast<int64_t>(instr.imm);
        regs.zero_flag = regs[instr.dst] == 0;
        result.cycles += cost_->alu_slot;
        break;
      case ir::Opcode::kAndImm:
        regs[instr.dst] &= instr.imm;
        result.cycles += cost_->sfi_and_slot;
        if (instr.IsCritical()) {
          result.cycles += cost_->sfi_and_dep_latency;
        }
        break;
      case ir::Opcode::kAluRR: {
        uint64_t& dst = regs[instr.dst];
        const uint64_t src = regs[instr.src];
        switch (instr.imm & 3) {
          case 0:
            dst += src;
            break;
          case 1:
            dst -= src;
            break;
          case 2:
            dst ^= src;
            break;
          case 3:
            dst *= src;
            break;
        }
        regs.zero_flag = dst == 0;
        result.cycles += cost_->alu_slot;
        break;
      }
      case ir::Opcode::kLea:
        regs[instr.dst] = regs[instr.src] + static_cast<int64_t>(instr.imm);
        result.cycles += cost_->lea_slot;
        break;
      case ir::Opcode::kVecOp:
        result.cycles += cost_->vector_slot;
        if (process_->ymm_reserved()) {
          result.cycles += static_cast<double>(instr.imm) * cost_->ymm_reserve_vec_penalty;
        }
        break;
      case ir::Opcode::kLoad: {
        ++result.loads;
        result.cycles += cost_->load_slot;
        uint64_t value = 0;
        machine::Fault fault;
        if (!data_access(regs[instr.src], machine::AccessType::kRead, &value, &fault)) {
          return fault_out(fault);
        }
        regs[instr.dst] = value;
        break;
      }
      case ir::Opcode::kStore: {
        ++result.stores;
        result.cycles += cost_->store_slot;
        uint64_t value = regs[instr.src];
        machine::Fault fault;
        if (!data_access(regs[instr.dst], machine::AccessType::kWrite, &value, &fault)) {
          return fault_out(fault);
        }
        break;
      }
      case ir::Opcode::kJmp:
        result.cycles += cost_->branch_slot;
        mpx::OnLegacyBranch(regs);  // no-op when BNDPRESERVE is set
        pos.block = instr.target;
        pos.index = 0;
        advance = false;
        break;
      case ir::Opcode::kCondBr:
        result.cycles += cost_->branch_slot;
        mpx::OnLegacyBranch(regs);
        if (!regs.zero_flag) {
          pos.block = instr.target;
        } else {
          pos.block = pos.block + 1;
        }
        pos.index = 0;
        advance = false;
        break;
      case ir::Opcode::kCall:
      case ir::Opcode::kIndirectCall: {
        int callee = instr.target;
        if (instr.op == ir::Opcode::kIndirectCall) {
          ++result.indirect_calls;
          callee = static_cast<int>(regs[instr.src]);
          if (callee < 0 || callee >= static_cast<int>(functions.size())) {
            return fault_out({machine::FaultType::kGeneralProtection, regs[instr.src],
                              machine::AccessType::kExecute});
          }
        }
        ++result.calls;
        result.cycles += cost_->call_slot;
        mpx::OnLegacyBranch(regs);
        if (call_depth >= 4096) {
          return fault_out({machine::FaultType::kGeneralProtection, regs[machine::Gpr::kRsp],
                            machine::AccessType::kWrite});
        }
        const uint64_t ra = EncodeRa(pos.func, pos.block, pos.index + 1);
        regs[machine::Gpr::kRsp] -= 8;
        uint64_t value = ra;
        machine::Fault fault;
        if (!data_access(regs[machine::Gpr::kRsp], machine::AccessType::kWrite, &value, &fault)) {
          return fault_out(fault);
        }
        // The call also exposes the return address in r11, the "link
        // register" convention that shadow-stack instrumentation consumes.
        regs[machine::Gpr::kR11] = ra;
        ++call_depth;
        pos = Position{callee, 0, 0};
        advance = false;
        break;
      }
      case ir::Opcode::kRet: {
        ++result.rets;
        result.cycles += cost_->ret_slot;
        mpx::OnLegacyBranch(regs);
        if (call_depth == 0) {
          // Returning from the entry function ends the program (there is no
          // caller frame to pop).
          result.halted = true;
          return result;
        }
        uint64_t ra = 0;
        machine::Fault fault;
        if (!data_access(regs[machine::Gpr::kRsp], machine::AccessType::kRead, &ra, &fault)) {
          return fault_out(fault);
        }
        regs[machine::Gpr::kRsp] += 8;
        int f = 0, b = 0, i = 0;
        if (!DecodeRa(ra, &f, &b, &i) || f >= static_cast<int>(functions.size())) {
          return fault_out({machine::FaultType::kGeneralProtection, ra,
                            machine::AccessType::kExecute});
        }
        const auto& rf = functions[static_cast<size_t>(f)];
        if (b >= static_cast<int>(rf.blocks.size()) ||
            i >= static_cast<int>(rf.blocks[static_cast<size_t>(b)].instrs.size())) {
          return fault_out({machine::FaultType::kGeneralProtection, ra,
                            machine::AccessType::kExecute});
        }
        --call_depth;
        pos = Position{f, b, i};
        advance = false;
        break;
      }
      case ir::Opcode::kHalt:
        result.cycles += cost_->nop_slot;
        result.halted = true;
        return result;
      case ir::Opcode::kSyscall: {
        ++result.syscalls;
        if (process_->dune_enabled()) {
          // Dune's libOS converts every syscall into a hypercall.
          result.cycles += cost_->vmcall;
          auto r = process_->dune()->vmx().VmCall(dune::kHcSyscall, instr.imm,
                                                  regs[machine::Gpr::kRdi],
                                                  regs[machine::Gpr::kRsi]);
          if (!r.ok()) {
            return fault_out(r.fault());
          }
          regs[machine::Gpr::kRax] = r.value();
        } else {
          result.cycles += cost_->syscall;
          regs[machine::Gpr::kRax] = process_->DispatchSyscall(
              instr.imm, regs[machine::Gpr::kRdi], regs[machine::Gpr::kRsi]);
        }
        break;
      }
      case ir::Opcode::kMprotect: {
        ++result.domain_switches;
        result.cycles += cost_->mprotect_call;
        const bool open = instr.imm != 0;
        for (auto& region : process_->safe_regions()) {
          machine::PageFlags flags = machine::PageFlags::Data();
          flags.user = open;
          flags.pkey = region.pkey;
          const uint64_t pages = PageAlignUp(region.size) >> kPageShift;
          for (uint64_t p = 0; p < pages; ++p) {
            (void)process_->page_table().Protect(region.base + p * kPageSize, flags);
            process_->mmu().InvalidatePage(region.base + p * kPageSize);
          }
          region.mprotected = !open;
        }
        break;
      }
      case ir::Opcode::kBndcu: {
        result.cycles += cost_->bndcu_slot;
        if (instr.IsCritical()) {
          result.cycles += cost_->bndcu_latency;
        }
        // A legacy-branch reset left this register in INIT state: reload it
        // from the bound table (the BNDPRESERVE=0 cost the paper avoids).
        auto& bnd = regs.bnd[instr.imm];
        if (bnd.upper == ~uint64_t{0} && process_->bnd_reload(static_cast<int>(instr.imm))) {
          bnd = *process_->bnd_reload(static_cast<int>(instr.imm));
          result.cycles += cost_->bnd_table_load;
        }
        auto fault = mpx::CheckUpper(bnd, regs[instr.src]);
        if (fault.has_value()) {
          return fault_out(*fault);
        }
        break;
      }
      case ir::Opcode::kBndcl: {
        result.cycles += cost_->bndcu_slot;
        if (instr.IsCritical()) {
          result.cycles += cost_->bndcl_pair_extra_latency;
        }
        auto& bnd = regs.bnd[instr.imm];
        if (bnd.upper == ~uint64_t{0} && process_->bnd_reload(static_cast<int>(instr.imm))) {
          bnd = *process_->bnd_reload(static_cast<int>(instr.imm));
          result.cycles += cost_->bnd_table_load;
        }
        auto fault = mpx::CheckLower(bnd, regs[instr.src]);
        if (fault.has_value()) {
          return fault_out(*fault);
        }
        break;
      }
      case ir::Opcode::kWrpkru: {
        ++result.domain_switches;
        result.cycles += cost_->wrpkru;
        if (instr.IsInstrumentation()) {
          // rax/rcx/rdx clobbers force spills around dense call sites.
          result.cycles += cost_->mpk_clobber_spills / 2.0;
        }
        mpk::WritePkru(regs, static_cast<uint32_t>(instr.imm));
        break;
      }
      case ir::Opcode::kRdpkru:
        result.cycles += cost_->rdpkru;
        regs[instr.dst] = mpk::ReadPkru(regs);
        break;
      case ir::Opcode::kVmFunc: {
        ++result.domain_switches;
        result.cycles += cost_->vmfunc;
        if (!process_->dune_enabled()) {
          return fault_out({machine::FaultType::kGeneralProtection, instr.imm,
                            machine::AccessType::kExecute});
        }
        auto r = process_->dune()->vmx().VmFunc(0, instr.imm);
        if (!r.ok()) {
          return fault_out(r.fault());
        }
        break;
      }
      case ir::Opcode::kVmCall: {
        result.cycles += cost_->vmcall;
        if (!process_->dune_enabled()) {
          return fault_out({machine::FaultType::kGeneralProtection, instr.imm,
                            machine::AccessType::kExecute});
        }
        auto r = process_->dune()->vmx().VmCall(instr.imm, regs[machine::Gpr::kRdi],
                                                regs[machine::Gpr::kRsi], 0);
        if (!r.ok()) {
          return fault_out(r.fault());
        }
        regs[machine::Gpr::kRax] = r.value();
        break;
      }
      case ir::Opcode::kMFence:
        result.cycles += 20.0;
        break;
      case ir::Opcode::kAesCryptRegion: {
        ++result.domain_switches;
        SafeRegion* region = process_->FindSafeRegion(regs[instr.src]);
        if (region == nullptr || !region->crypt) {
          return fault_out({machine::FaultType::kGeneralProtection, regs[instr.src],
                            machine::AccessType::kRead});
        }
        const uint64_t size = instr.imm == 0 ? region->size : instr.imm;
        const uint64_t blocks = (size + aes::kBlockSize - 1) / aes::kBlockSize;
        result.cycles += cost_->ymm_to_xmm_all_keys +
                         static_cast<double>(blocks) * (cost_->aes_encdec_block / 2.0) +
                         static_cast<double>(instr.target) * cost_->xmm_spill;
        // CTR keystream XOR: the same operation encrypts and decrypts. The
        // staging buffer comes from the executor's arena — one bump after
        // the first chunk warms up, instead of a heap round-trip per event.
        arena_.Reset();
        uint8_t* bytes = arena_.AllocateArray<uint8_t>(size);
        if (!process_->PeekBytes(region->base, bytes, size).ok()) {
          return fault_out({machine::FaultType::kPageNotPresent, region->base,
                            machine::AccessType::kRead});
        }
        aes::CryptRegion(std::span<uint8_t>(bytes, size), region->enc_keys, region->nonce);
        (void)process_->PokeBytes(region->base, bytes, size);
        region->encrypted_now = !region->encrypted_now;
        break;
      }
      case ir::Opcode::kEnclaveEnter: {
        ++result.domain_switches;
        result.cycles += cost_->sgx_ecall_roundtrip / 2.0;
        if (process_->enclave() == nullptr) {
          return fault_out({machine::FaultType::kEnclaveExit, 0, machine::AccessType::kExecute});
        }
        auto r = process_->enclave()->Enter(static_cast<uint32_t>(instr.imm));
        if (!r.ok()) {
          return fault_out(r.fault());
        }
        break;
      }
      case ir::Opcode::kEnclaveExit: {
        result.cycles += cost_->sgx_ecall_roundtrip / 2.0;
        if (process_->enclave() == nullptr) {
          return fault_out({machine::FaultType::kEnclaveExit, 0, machine::AccessType::kExecute});
        }
        auto r = process_->enclave()->Exit();
        if (!r.ok()) {
          return fault_out(r.fault());
        }
        break;
      }
      case ir::Opcode::kTrap:
        result.trapped = true;
        return result;
      case ir::Opcode::kTrapIf:
        result.cycles += cost_->branch_slot;
        if (!regs.zero_flag) {
          result.trapped = true;
          return result;
        }
        break;
    }

    if (instr.IsInstrumentation()) {
      ++result.instrumentation_instrs;
      result.instrumentation_cycles += result.cycles - cycles_before;
    }
    if (advance) {
      ++pos.index;
      // Fall off the end of a block only after kCall-style non-terminators;
      // the verifier guarantees blocks end in terminators, so this index is
      // always valid.
    }
  }

  result.hit_instruction_limit = true;
  result.cursor = RunCursor{true, pos.func, pos.block, pos.index, call_depth};
  return result;
}

// The µop-stream interpreter. Mirrors RunReference case by case: every cycle
// addition happens with the same operands in the same order (pre-resolved
// static costs are charged as the same cost-then-extra pair of adds), every
// counter bumps at the same architectural points, and every fault carries
// the same payload — so all modeled results are bit-identical. Only dispatch
// changes: flat µop indices replace (block, index) walking, fused runs of
// straight-line ops — pure-register ops plus grant-stable loads/stores —
// execute back-to-back without re-entering the dispatch loop, and every µop
// carries a pre-resolved handler index that drives either the computed-goto
// table or the portable switch.
//
// The OP()/DISPATCH() macros select the dispatch flavour at compile time:
//   threaded: OP(X) is a label, DISPATCH() is `goto *kDispatch[handler]`
//   portable: OP(X) is a switch case, DISPATCH() loops back to the switch
// Every handler body ends in a `return` or a DISPATCH(), so the bodies are
// flavour-independent and execute identically under both dispatchers.
#if MEMSENTRY_USE_THREADED_DISPATCH
#define OP(name) h_##name:
#define DISPATCH()                                        \
  do {                                                    \
    if (result.instructions >= config.max_instructions) { \
      goto limit_exit;                                    \
    }                                                     \
    u = &df->uops[static_cast<size_t>(ui)];               \
    goto* kDispatch[u->handler];                          \
  } while (0)
#else
#define OP(name) case kH##name:
#define DISPATCH() goto dispatch
#endif

// Prologue/epilogue shared by every non-guard handler, replicating the
// reference loop's per-instruction frame: count the instruction, snapshot
// the cycle accumulator for instrumentation attribution, execute, then
// attribute. Handlers that redirect control set `ui` themselves and end
// with END_UOP_JMP(); straight-line handlers end with END_UOP_ADV().
#define BEGIN_UOP()                       \
  if (check) {                            \
    CheckUop(*module_, func, *u, cost);   \
  }                                       \
  ++result.instructions;                  \
  const Cycles cycles_before = result.cycles; \
  (void)cycles_before

#define END_UOP_COMMON()                                            \
  if (u->instrumentation) {                                         \
    ++result.instrumentation_instrs;                                \
    result.instrumentation_cycles += result.cycles - cycles_before; \
  }

#define END_UOP_ADV() \
  END_UOP_COMMON();   \
  ++ui;               \
  DISPATCH()

#define END_UOP_JMP() \
  END_UOP_COMMON();   \
  DISPATCH()

RunResult Executor::RunDecoded(const RunConfig& config, bool check, const RunResult* resume) {
  RunResult result;
  auto& regs = process_->regs();
  auto& mmu = process_->mmu();
  const auto& functions = module_->functions;
  const DecodedModule& dec = *decoded_;
  const machine::CostModel& cost = *cost_;

  int func = module_->entry;
  const DecodedFunction* df = &dec.functions[static_cast<size_t>(func)];
  int32_t ui = 0;       // flat µop index within *df
  uint32_t skip = 0;    // RegOps to skip when resuming mid-fused-run (after ret)
  int call_depth = 0;
  if (resume != nullptr) {
    result = *resume;
    result.hit_instruction_limit = false;
    result.cursor = RunCursor{};
    func = resume->cursor.func;
    df = &dec.functions[static_cast<size_t>(func)];
    // Cursors are source positions; Slot maps them onto the µop stream,
    // landing mid-fused-run when the budget cut one short.
    const DecodedFunction::InstrSlot slot = df->Slot(resume->cursor.block, resume->cursor.index);
    ui = slot.uop;
    skip = slot.skip;
    call_depth = resume->cursor.call_depth;
  }

  auto fault_out = [&](const machine::Fault& fault) {
    result.fault = fault;
    return result;
  };

  const bool record_safe_accesses = config.record_safe_accesses;
  // Hoisted out of the loop: the mode can't change mid-run, and the MMU's
  // explicit-mode overloads skip the per-access atomic load.
  const base::FastPathMode mode =
      check ? base::FastPathMode::kCheck : base::FastPathMode::kOn;

  // Identical to RunReference's data_access, with the instruction position
  // passed in (the µop carries its source block/index for PackRef).
  // always_inline: GCC's size heuristic otherwise leaves this as an
  // out-of-line call on every modeled load/store.
  auto data_access = [&](VirtAddr va, machine::AccessType access, uint64_t* value,
                         machine::Fault* fault, int32_t block,
                         int32_t index) MEMSENTRY_HOT_INLINE -> bool {
    if (process_->enclave() != nullptr && !process_->enclave()->AccessAllowed(va)) {
      *fault = machine::Fault{machine::FaultType::kEnclaveAccess, va, access};
      return false;
    }
    if (access == machine::AccessType::kRead) {
      auto r = mmu.Read64(va, regs.pkru, &result.cycles, mode);
      if (!r.ok()) {
        *fault = r.fault();
        return false;
      }
      *value = r.value();
    } else {
      auto w = mmu.Write64(va, *value, regs.pkru, &result.cycles, mode);
      if (!w.ok()) {
        *fault = w.fault();
        return false;
      }
    }
    if (record_safe_accesses && process_->InSafeRegion(va)) {
      result.safe_access_refs.insert(PackRef(func, block, index));
    }
    return true;
  };

  const Uop* u = nullptr;
#if MEMSENTRY_USE_THREADED_DISPATCH
  // Label-address dispatch table, indexed by UopHandler (same order as the
  // enum). Static: label addresses are link-time constants under the GCC
  // extension, and the table is shared by every invocation.
  static const void* const kDispatch[kNumUopHandlers] = {
      &&h_Fused,        &&h_Guard,       &&h_Load,   &&h_Store,
      &&h_Jmp,          &&h_CondBr,      &&h_Call,   &&h_IndirectCall,
      &&h_Ret,          &&h_Halt,        &&h_Syscall, &&h_Mprotect,
      &&h_Bndcu,        &&h_Bndcl,       &&h_Wrpkru, &&h_Rdpkru,
      &&h_VmFunc,       &&h_VmCall,      &&h_MFence, &&h_AesCryptRegion,
      &&h_EnclaveEnter, &&h_EnclaveExit, &&h_Trap,   &&h_TrapIf,
  };
#endif

  DISPATCH();

#if !MEMSENTRY_USE_THREADED_DISPATCH
dispatch:
  if (result.instructions >= config.max_instructions) {
    goto limit_exit;
  }
  u = &df->uops[static_cast<size_t>(ui)];
  switch (static_cast<UopHandler>(u->handler)) {
#endif

  OP(Fused) {
    // Replay the pre-resolved straight-line run. `skip` is nonzero only
    // when a ret/resume landed mid-run; the budget clamp makes the
    // instruction limit hit at exactly the same op as the reference loop.
    if (check) {
      CheckUop(*module_, func, *u, cost);
    }
    const uint64_t want = u->fuse_count - skip;
    const uint64_t budget = config.max_instructions - result.instructions;
    const uint64_t run = want < budget ? want : budget;
    const RegOp* ops = df->regops.data() + u->fuse_start + skip;
    const uint32_t entered_skip = skip;
    skip = 0;
    // Grant-stability admission: fused memory ops ride the MMU grant cache.
    // Each op is admitted under the (VPN, access, PKRU, TLB-version, ASID)
    // verdict its probe validates; the moment a verdict misses or the TLB
    // version ticks, the run bails back to the dispatch loop — the op that
    // broke stability has already completed through the full slow path with
    // reference bookkeeping, and dispatch re-admits the remainder as a
    // fresh run against the updated translation state.
    const uint64_t tlb_version_at_entry = mmu.tlb().version();
    const uint64_t grant_misses_at_entry = mmu.grant_stats().misses;
    bool bailed = false;
    uint64_t n = 0;
    for (; n < run; ++n) {
      const RegOp& r = ops[n];
      if (check) {
        CheckRegOp(*module_, func, r, cost, dec.ymm_reserved);
      }
      const Cycles cycles_before = result.cycles;
      // Static cost first (slot, then extra): the same additions the
      // reference interpreter performs, in the same order. Memory ops then
      // append their MMU pricing inside data_access, also reference-order.
      result.cycles += r.cost;
      if (r.has_extra) {
        result.cycles += r.extra;
      }
      switch (r.op) {
        case ir::Opcode::kNop:
        case ir::Opcode::kVecOp:
          break;
        case ir::Opcode::kMovImm:
          regs[static_cast<machine::Gpr>(r.dst)] = r.imm;
          break;
        case ir::Opcode::kAddImm: {
          uint64_t& dst = regs[static_cast<machine::Gpr>(r.dst)];
          dst += static_cast<int64_t>(r.imm);
          regs.zero_flag = dst == 0;
          break;
        }
        case ir::Opcode::kAndImm:
          regs[static_cast<machine::Gpr>(r.dst)] &= r.imm;
          break;
        case ir::Opcode::kAluRR: {
          uint64_t& dst = regs[static_cast<machine::Gpr>(r.dst)];
          const uint64_t src = regs[static_cast<machine::Gpr>(r.src)];
          switch (r.alu_kind) {
            case 0:
              dst += src;
              break;
            case 1:
              dst -= src;
              break;
            case 2:
              dst ^= src;
              break;
            case 3:
              dst *= src;
              break;
          }
          regs.zero_flag = dst == 0;
          break;
        }
        case ir::Opcode::kLea:
          regs[static_cast<machine::Gpr>(r.dst)] =
              regs[static_cast<machine::Gpr>(r.src)] + static_cast<int64_t>(r.imm);
          break;
        case ir::Opcode::kLoad: {
          ++result.loads;
          uint64_t value = 0;
          machine::Fault fault;
          if (!data_access(regs[static_cast<machine::Gpr>(r.src)], machine::AccessType::kRead,
                           &value, &fault, r.block, r.index)) {
            result.instructions += n + 1;  // the faulting op counts, as in the reference
            return fault_out(fault);
          }
          regs[static_cast<machine::Gpr>(r.dst)] = value;
          break;
        }
        case ir::Opcode::kStore: {
          ++result.stores;
          uint64_t value = regs[static_cast<machine::Gpr>(r.src)];
          machine::Fault fault;
          if (!data_access(regs[static_cast<machine::Gpr>(r.dst)], machine::AccessType::kWrite,
                           &value, &fault, r.block, r.index)) {
            result.instructions += n + 1;
            return fault_out(fault);
          }
          break;
        }
        default:
          assert(false && "non-fusible op inside a fused run");
          std::abort();
      }
      if (r.instrumentation) {
        ++result.instrumentation_instrs;
        result.instrumentation_cycles += result.cycles - cycles_before;
      }
      if (r.is_memory && n + 1 < run &&
          (mmu.grant_stats().misses != grant_misses_at_entry ||
           mmu.tlb().version() != tlb_version_at_entry)) {
        ++n;  // this op completed (via the slow path); count it and bail
        bailed = true;
        break;
      }
    }
    result.instructions += n;
    if (bailed) {
      // Re-enter this µop at the next unexecuted op without advancing `ui`;
      // the re-admission probe sees the refilled grant / new TLB version.
      skip = entered_skip + static_cast<uint32_t>(n);
      DISPATCH();
    }
    if (run < want) {
      // Instruction budget exhausted mid-run: leave `skip` naming the next
      // unexecuted RegOp so the exit cursor below reads its source
      // position — the same (block, index) the reference loop stops at.
      skip = entered_skip + static_cast<uint32_t>(run);
      goto limit_exit;
    }
    ++ui;
    DISPATCH();
  }

  OP(Guard) {
    // Synthetic block-end guard: the reference loop faults here when it
    // fetches past an unterminated block, before counting an instruction.
    if (check) {
      CheckUop(*module_, func, *u, cost);
    }
    return fault_out({machine::FaultType::kGeneralProtection, 0, machine::AccessType::kExecute});
  }

  OP(Load) {
    // Loads/stores normally fuse; these singleton handlers stay for decode
    // robustness and the portable dispatcher's exhaustiveness.
    BEGIN_UOP();
    ++result.loads;
    result.cycles += u->cost;
    uint64_t value = 0;
    machine::Fault fault;
    if (!data_access(regs[static_cast<machine::Gpr>(u->src)], machine::AccessType::kRead,
                     &value, &fault, u->block, u->index)) {
      return fault_out(fault);
    }
    regs[static_cast<machine::Gpr>(u->dst)] = value;
    END_UOP_ADV();
  }

  OP(Store) {
    BEGIN_UOP();
    ++result.stores;
    result.cycles += u->cost;
    uint64_t value = regs[static_cast<machine::Gpr>(u->src)];
    machine::Fault fault;
    if (!data_access(regs[static_cast<machine::Gpr>(u->dst)], machine::AccessType::kWrite,
                     &value, &fault, u->block, u->index)) {
      return fault_out(fault);
    }
    END_UOP_ADV();
  }

  OP(Jmp) {
    BEGIN_UOP();
    result.cycles += u->cost;
    mpx::OnLegacyBranch(regs);  // no-op when BNDPRESERVE is set
    if (u->target < 0) {
      // Out-of-range block target (undefined behaviour in the reference
      // interpreter; decode resolves it to a #GP instead of crashing).
      return fault_out(
          {machine::FaultType::kGeneralProtection, 0, machine::AccessType::kExecute});
    }
    ui = u->target;
    END_UOP_JMP();
  }

  OP(CondBr) {
    BEGIN_UOP();
    result.cycles += u->cost;
    mpx::OnLegacyBranch(regs);
    const int32_t next = !regs.zero_flag ? u->target : u->fallthrough;
    if (next < 0) {
      return fault_out(
          {machine::FaultType::kGeneralProtection, 0, machine::AccessType::kExecute});
    }
    ui = next;
    END_UOP_JMP();
  }

  OP(Call)
  OP(IndirectCall) {
    BEGIN_UOP();
    int callee = u->target;
    if (u->op == ir::Opcode::kIndirectCall) {
      ++result.indirect_calls;
      callee = static_cast<int>(regs[static_cast<machine::Gpr>(u->src)]);
      if (callee < 0 || callee >= static_cast<int>(functions.size())) {
        return fault_out({machine::FaultType::kGeneralProtection,
                          regs[static_cast<machine::Gpr>(u->src)],
                          machine::AccessType::kExecute});
      }
    }
    ++result.calls;
    result.cycles += u->cost;
    mpx::OnLegacyBranch(regs);
    if (call_depth >= 4096) {
      return fault_out({machine::FaultType::kGeneralProtection, regs[machine::Gpr::kRsp],
                        machine::AccessType::kWrite});
    }
    const uint64_t ra = EncodeRa(func, u->block, u->index + 1);
    regs[machine::Gpr::kRsp] -= 8;
    uint64_t value = ra;
    machine::Fault fault;
    if (!data_access(regs[machine::Gpr::kRsp], machine::AccessType::kWrite, &value, &fault,
                     u->block, u->index)) {
      return fault_out(fault);
    }
    // The call also exposes the return address in r11, the "link register"
    // convention that shadow-stack instrumentation consumes.
    regs[machine::Gpr::kR11] = ra;
    ++call_depth;
    if (callee >= static_cast<int>(dec.functions.size()) ||
        dec.functions[static_cast<size_t>(callee)].uops.empty()) {
      // Direct call to a bad function index (undefined behaviour in the
      // reference; #GP here instead of crashing).
      return fault_out(
          {machine::FaultType::kGeneralProtection, 0, machine::AccessType::kExecute});
    }
    func = callee;
    df = &dec.functions[static_cast<size_t>(callee)];
    ui = 0;  // block_head[0] is always the function's first µop
    END_UOP_JMP();
  }

  OP(Ret) {
    BEGIN_UOP();
    ++result.rets;
    result.cycles += u->cost;
    mpx::OnLegacyBranch(regs);
    if (call_depth == 0) {
      // Returning from the entry function ends the program (there is no
      // caller frame to pop).
      result.halted = true;
      return result;
    }
    uint64_t ra = 0;
    machine::Fault fault;
    if (!data_access(regs[machine::Gpr::kRsp], machine::AccessType::kRead, &ra, &fault,
                     u->block, u->index)) {
      return fault_out(fault);
    }
    regs[machine::Gpr::kRsp] += 8;
    int f = 0, b = 0, i = 0;
    if (!DecodeRa(ra, &f, &b, &i) || f >= static_cast<int>(functions.size())) {
      return fault_out({machine::FaultType::kGeneralProtection, ra,
                        machine::AccessType::kExecute});
    }
    const auto& rf = functions[static_cast<size_t>(f)];
    if (b >= static_cast<int>(rf.blocks.size()) ||
        i >= static_cast<int>(rf.blocks[static_cast<size_t>(b)].instrs.size())) {
      return fault_out({machine::FaultType::kGeneralProtection, ra,
                        machine::AccessType::kExecute});
    }
    --call_depth;
    func = f;
    df = &dec.functions[static_cast<size_t>(f)];
    const DecodedFunction::InstrSlot slot = df->Slot(b, i);
    ui = slot.uop;
    skip = slot.skip;  // forged-but-valid RAs may land mid-fused-run
    END_UOP_JMP();
  }

  OP(Halt) {
    BEGIN_UOP();
    result.cycles += u->cost;
    result.halted = true;
    return result;
  }

  OP(Syscall) {
    BEGIN_UOP();
    ++result.syscalls;
    if (process_->dune_enabled()) {
      // Dune's libOS converts every syscall into a hypercall.
      result.cycles += cost.vmcall;
      auto r = process_->dune()->vmx().VmCall(dune::kHcSyscall, u->imm,
                                              regs[machine::Gpr::kRdi],
                                              regs[machine::Gpr::kRsi]);
      if (!r.ok()) {
        return fault_out(r.fault());
      }
      regs[machine::Gpr::kRax] = r.value();
    } else {
      result.cycles += cost.syscall;
      regs[machine::Gpr::kRax] = process_->DispatchSyscall(
          u->imm, regs[machine::Gpr::kRdi], regs[machine::Gpr::kRsi]);
    }
    END_UOP_ADV();
  }

  OP(Mprotect) {
    BEGIN_UOP();
    ++result.domain_switches;
    result.cycles += u->cost;
    const bool open = u->imm != 0;
    for (auto& region : process_->safe_regions()) {
      machine::PageFlags flags = machine::PageFlags::Data();
      flags.user = open;
      flags.pkey = region.pkey;
      const uint64_t pages = PageAlignUp(region.size) >> kPageShift;
      for (uint64_t p = 0; p < pages; ++p) {
        (void)process_->page_table().Protect(region.base + p * kPageSize, flags);
        process_->mmu().InvalidatePage(region.base + p * kPageSize);
      }
      region.mprotected = !open;
    }
    END_UOP_ADV();
  }

  OP(Bndcu) {
    BEGIN_UOP();
    result.cycles += u->cost;
    if (u->has_extra) {
      result.cycles += u->extra;
    }
    // A legacy-branch reset left this register in INIT state: reload it
    // from the bound table (the BNDPRESERVE=0 cost the paper avoids).
    auto& bnd = regs.bnd[u->imm];
    if (bnd.upper == ~uint64_t{0} && process_->bnd_reload(static_cast<int>(u->imm))) {
      bnd = *process_->bnd_reload(static_cast<int>(u->imm));
      result.cycles += cost.bnd_table_load;
    }
    auto fault = mpx::CheckUpper(bnd, regs[static_cast<machine::Gpr>(u->src)]);
    if (fault.has_value()) {
      return fault_out(*fault);
    }
    END_UOP_ADV();
  }

  OP(Bndcl) {
    BEGIN_UOP();
    result.cycles += u->cost;
    if (u->has_extra) {
      result.cycles += u->extra;
    }
    auto& bnd = regs.bnd[u->imm];
    if (bnd.upper == ~uint64_t{0} && process_->bnd_reload(static_cast<int>(u->imm))) {
      bnd = *process_->bnd_reload(static_cast<int>(u->imm));
      result.cycles += cost.bnd_table_load;
    }
    auto fault = mpx::CheckLower(bnd, regs[static_cast<machine::Gpr>(u->src)]);
    if (fault.has_value()) {
      return fault_out(*fault);
    }
    END_UOP_ADV();
  }

  OP(Wrpkru) {
    BEGIN_UOP();
    ++result.domain_switches;
    result.cycles += u->cost;
    if (u->has_extra) {
      // rax/rcx/rdx clobbers force spills around dense call sites.
      result.cycles += u->extra;
    }
    mpk::WritePkru(regs, static_cast<uint32_t>(u->imm));
    END_UOP_ADV();
  }

  OP(Rdpkru) {
    BEGIN_UOP();
    result.cycles += u->cost;
    regs[static_cast<machine::Gpr>(u->dst)] = mpk::ReadPkru(regs);
    END_UOP_ADV();
  }

  OP(VmFunc) {
    BEGIN_UOP();
    ++result.domain_switches;
    result.cycles += u->cost;
    if (!process_->dune_enabled()) {
      return fault_out({machine::FaultType::kGeneralProtection, u->imm,
                        machine::AccessType::kExecute});
    }
    auto r = process_->dune()->vmx().VmFunc(0, u->imm);
    if (!r.ok()) {
      return fault_out(r.fault());
    }
    END_UOP_ADV();
  }

  OP(VmCall) {
    BEGIN_UOP();
    result.cycles += u->cost;
    if (!process_->dune_enabled()) {
      return fault_out({machine::FaultType::kGeneralProtection, u->imm,
                        machine::AccessType::kExecute});
    }
    auto r = process_->dune()->vmx().VmCall(u->imm, regs[machine::Gpr::kRdi],
                                            regs[machine::Gpr::kRsi], 0);
    if (!r.ok()) {
      return fault_out(r.fault());
    }
    regs[machine::Gpr::kRax] = r.value();
    END_UOP_ADV();
  }

  OP(MFence) {
    BEGIN_UOP();
    result.cycles += u->cost;
    END_UOP_ADV();
  }

  OP(AesCryptRegion) {
    BEGIN_UOP();
    ++result.domain_switches;
    SafeRegion* region = process_->FindSafeRegion(regs[static_cast<machine::Gpr>(u->src)]);
    if (region == nullptr || !region->crypt) {
      return fault_out({machine::FaultType::kGeneralProtection,
                        regs[static_cast<machine::Gpr>(u->src)],
                        machine::AccessType::kRead});
    }
    const uint64_t size = u->imm == 0 ? region->size : u->imm;
    const uint64_t blocks = (size + aes::kBlockSize - 1) / aes::kBlockSize;
    result.cycles += cost.ymm_to_xmm_all_keys +
                     static_cast<double>(blocks) * (cost.aes_encdec_block / 2.0) +
                     static_cast<double>(u->target) * cost.xmm_spill;
    // CTR keystream staging from the executor's arena: a pointer bump per
    // crypt event instead of a heap allocation (crypt cells fire this on
    // every domain switch).
    arena_.Reset();
    uint8_t* bytes = arena_.AllocateArray<uint8_t>(size);
    if (!process_->PeekBytes(region->base, bytes, size).ok()) {
      return fault_out({machine::FaultType::kPageNotPresent, region->base,
                        machine::AccessType::kRead});
    }
    aes::CryptRegion(std::span<uint8_t>(bytes, size), region->enc_keys, region->nonce);
    (void)process_->PokeBytes(region->base, bytes, size);
    region->encrypted_now = !region->encrypted_now;
    END_UOP_ADV();
  }

  OP(EnclaveEnter) {
    BEGIN_UOP();
    ++result.domain_switches;
    result.cycles += u->cost;
    if (process_->enclave() == nullptr) {
      return fault_out({machine::FaultType::kEnclaveExit, 0, machine::AccessType::kExecute});
    }
    auto r = process_->enclave()->Enter(static_cast<uint32_t>(u->imm));
    if (!r.ok()) {
      return fault_out(r.fault());
    }
    END_UOP_ADV();
  }

  OP(EnclaveExit) {
    BEGIN_UOP();
    result.cycles += u->cost;
    if (process_->enclave() == nullptr) {
      return fault_out({machine::FaultType::kEnclaveExit, 0, machine::AccessType::kExecute});
    }
    auto r = process_->enclave()->Exit();
    if (!r.ok()) {
      return fault_out(r.fault());
    }
    END_UOP_ADV();
  }

  OP(Trap) {
    BEGIN_UOP();
    result.trapped = true;
    return result;
  }

  OP(TrapIf) {
    BEGIN_UOP();
    result.cycles += u->cost;
    if (!regs.zero_flag) {
      result.trapped = true;
      return result;
    }
    END_UOP_ADV();
  }

#if !MEMSENTRY_USE_THREADED_DISPATCH
    default:
      assert(false && "µop with out-of-range handler index");
      std::abort();
  }
  std::abort();  // unreachable: every case returns or DISPATCH()es
#endif

limit_exit:
  result.hit_instruction_limit = true;
  {
    // Map the µop position back to its source instruction. A fused µop's
    // next unexecuted RegOp carries its own (block, index); a singleton µop
    // is its source instruction.
    const Uop& stop = df->uops[static_cast<size_t>(ui)];
    int32_t block = stop.block;
    int32_t index = stop.index;
    if (stop.fused) {
      const RegOp& r = df->regops[stop.fuse_start + skip];
      block = r.block;
      index = r.index;
    }
    result.cursor = RunCursor{true, func, block, index, call_depth};
  }
  return result;
}

#undef OP
#undef DISPATCH
#undef BEGIN_UOP
#undef END_UOP_COMMON
#undef END_UOP_ADV
#undef END_UOP_JMP

}  // namespace memsentry::sim

#include "src/sim/kernel.h"

namespace memsentry::sim {
namespace {

// The kernel's mmap area sits between the heap and the stack.
inline constexpr VirtAddr kMmapBase = 0x240000000000ULL;  // 36 TiB

}  // namespace

Kernel::Kernel(Process* process)
    : process_(process), mmap_cursor_(kMmapBase), brk_(kHeapBase) {}

void Kernel::Install() {
  process_->SetSyscallHandler(
      [this](uint64_t nr, uint64_t a0, uint64_t a1) { return Dispatch(nr, a0, a1); });
}

uint64_t Kernel::Dispatch(uint64_t nr, uint64_t a0, uint64_t a1) {
  switch (static_cast<Sysno>(nr)) {
    case Sysno::kNop:
      return 0;
    case Sysno::kWrite:
      write_sink_ += a0;
      return 8;
    case Sysno::kMmap:
      return DoMmap(a0, a1);
    case Sysno::kMprotect:
      return DoMprotect(a0, a1);
    case Sysno::kMunmap:
      return DoMunmap(a0, a1);
    case Sysno::kBrk:
      return DoBrk(a0);
    case Sysno::kPkeyMprotect:
      return DoPkeyMprotect(a0, a1);
    case Sysno::kPkeyAlloc: {
      auto key = keys_.Alloc();
      return key.ok() ? key.value() : kSysError;
    }
    case Sysno::kPkeyFree:
      return keys_.Free(static_cast<uint8_t>(a0)).ok() ? 0 : kSysError;
  }
  return kSysError;  // ENOSYS
}

uint64_t Kernel::DoMmap(VirtAddr hint, uint64_t length) {
  ++mmap_calls_;
  if (length == 0) {
    return kSysError;
  }
  const uint64_t pages = PageAlignUp(length) >> kPageShift;
  VirtAddr base;
  if (hint != 0) {
    if (PageOffset(hint) != 0) {
      return kSysError;
    }
    base = hint;
  } else {
    auto run = process_->FindFreeRun(mmap_cursor_, kStackTop, pages);
    if (!run.has_value()) {
      return kSysError;
    }
    base = *run;
  }
  if (!process_->MapRange(base, pages, machine::PageFlags::Data()).ok()) {
    return kSysError;
  }
  return base;
}

uint64_t Kernel::DoMprotect(VirtAddr addr, uint64_t prot) {
  ++mprotect_calls_;
  if (PageOffset(addr) != 0) {
    return kSysError;
  }
  machine::PageFlags flags = machine::PageFlags::Data();
  flags.user = prot != kProtNone;
  flags.writable = (prot & 2) != 0;
  // Keep the page's protection key (mprotect must not strip MPK tags).
  auto walk = process_->page_table().Walk(addr);
  if (!walk.ok()) {
    return kSysError;
  }
  flags.pkey = machine::PageTable::PtePkey(walk.value().pte);
  if (!process_->page_table().Protect(addr, flags).ok()) {
    return kSysError;
  }
  process_->mmu().InvalidatePage(addr);  // the kernel's TLB shootdown
  return 0;
}

uint64_t Kernel::DoMunmap(VirtAddr addr, uint64_t length) {
  const uint64_t pages = PageAlignUp(length) >> kPageShift;
  return process_->Unmap(addr, pages).ok() ? 0 : kSysError;
}

uint64_t Kernel::DoBrk(VirtAddr new_brk) {
  if (new_brk == 0) {
    return brk_;
  }
  if (new_brk < brk_ || new_brk > kHeapBase + (uint64_t{1} << 32)) {
    return brk_;  // shrinking/unreasonable: report current break, like Linux
  }
  const VirtAddr old_end = PageAlignUp(brk_);
  const VirtAddr new_end = PageAlignUp(new_brk);
  if (new_end > old_end) {
    if (!process_->MapRange(old_end, (new_end - old_end) >> kPageShift,
                            machine::PageFlags::Data())
             .ok()) {
      return brk_;
    }
  }
  brk_ = new_brk;
  return brk_;
}

uint64_t Kernel::DoPkeyMprotect(VirtAddr addr, uint64_t packed) {
  const uint8_t key = static_cast<uint8_t>(packed & 0xff);
  const uint64_t pages = packed >> 8;
  if (!keys_.InUse(key)) {
    return kSysError;  // EINVAL: unallocated key
  }
  if (!mpk::TagRange(process_->page_table(), addr, pages, key).ok()) {
    return kSysError;
  }
  for (uint64_t p = 0; p < pages; ++p) {
    process_->mmu().InvalidatePage(addr + p * kPageSize);
  }
  return 0;
}

}  // namespace memsentry::sim

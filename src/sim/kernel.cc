#include "src/sim/kernel.h"

#include "src/machine/snapshot.h"

namespace memsentry::sim {
namespace {

// The kernel's mmap area sits between the heap and the stack.
inline constexpr VirtAddr kMmapBase = kMmapAreaBase;

constexpr uint32_t kTagKernel = 0x4B45524E;  // "KERN"

}  // namespace

const char* ErrnoName(Errno err) {
  switch (err) {
    case Errno::kEPERM: return "EPERM";
    case Errno::kENOMEM: return "ENOMEM";
    case Errno::kEACCES: return "EACCES";
    case Errno::kEBUSY: return "EBUSY";
    case Errno::kEEXIST: return "EEXIST";
    case Errno::kEINVAL: return "EINVAL";
    case Errno::kENOSPC: return "ENOSPC";
    case Errno::kENOSYS: return "ENOSYS";
  }
  return "E?";
}

Kernel::Kernel(Process* process)
    : process_(process), mmap_cursor_(kMmapBase), brk_(kHeapBase) {}

void Kernel::Install() {
  process_->SetSyscallHandler(
      [this](uint64_t nr, uint64_t a0, uint64_t a1) { return Dispatch(nr, a0, a1); });
}

void Kernel::InjectSyscallFailure(Sysno nr, Errno err, int count) {
  if (count <= 0) {
    return;
  }
  armed_.push_back(ArmedFailure{static_cast<uint64_t>(nr), err, count});
}

bool Kernel::ConsumeInjected(uint64_t nr, Errno* err) {
  for (ArmedFailure& armed : armed_) {
    if (armed.nr == nr && armed.remaining > 0) {
      --armed.remaining;
      ++injected_failures_;
      *err = armed.err;
      return true;
    }
  }
  return false;
}

uint64_t Kernel::Dispatch(uint64_t nr, uint64_t a0, uint64_t a1) {
  ++total_syscalls_;
  if (current_asid_ >= asid_syscalls_.size()) {
    asid_syscalls_.resize(current_asid_ + 1, 0);
  }
  ++asid_syscalls_[current_asid_];
  Errno injected;
  if (ConsumeInjected(nr, &injected)) {
    return SysErr(injected);
  }
  // The mmap-policy layer vets memory-management calls before they mutate
  // anything; a refusal is indistinguishable from a kernel errno to the
  // caller (exactly how MapGuard's LD_PRELOAD interposition presents).
  if (policy_ != nullptr) {
    const Sysno sysno = static_cast<Sysno>(nr);
    if (sysno == Sysno::kMmap || sysno == Sysno::kMprotect || sysno == Sysno::kMunmap) {
      if (auto refused = policy_->FilterSyscall(sysno, a0, a1); refused.has_value()) {
        return SysErr(*refused);
      }
    }
  }
  switch (static_cast<Sysno>(nr)) {
    case Sysno::kNop:
      return 0;
    case Sysno::kWrite:
      write_sink_ += a0;
      return 8;
    case Sysno::kMmap:
      return DoMmap(a0, a1);
    case Sysno::kMprotect:
      return DoMprotect(a0, a1);
    case Sysno::kMunmap:
      return DoMunmap(a0, a1);
    case Sysno::kBrk:
      return DoBrk(a0);
    case Sysno::kPkeyMprotect:
      return DoPkeyMprotect(a0, a1);
    case Sysno::kPkeyAlloc: {
      auto key = keys_.Alloc();
      // Linux reports pkey exhaustion as ENOSPC (pkey_alloc(2)).
      return key.ok() ? key.value() : SysErr(Errno::kENOSPC);
    }
    case Sysno::kPkeyFree:
      return DoPkeyFree(static_cast<uint8_t>(a0));
  }
  return SysErr(Errno::kENOSYS);
}

uint64_t Kernel::DoMmap(VirtAddr hint, uint64_t length) {
  ++mmap_calls_;
  if (length == 0) {
    return SysErr(Errno::kEINVAL);
  }
  // Overflow / address-space guard before PageAlignUp can wrap: nothing
  // larger than the whole mmap area can ever succeed.
  if (length > kStackTop - kMmapBase) {
    return SysErr(Errno::kENOMEM);
  }
  const uint64_t pages = PageAlignUp(length) >> kPageShift;
  VirtAddr base;
  if (hint != 0) {
    if (PageOffset(hint) != 0) {
      return SysErr(Errno::kEINVAL);
    }
    base = hint;
  } else {
    // Policy-chosen randomized placement first (ASLR entropy enforcement);
    // the linear cursor is the no-policy fallback.
    std::optional<VirtAddr> run;
    if (policy_ != nullptr) {
      run = policy_->ChoosePlacement(pages);
    }
    if (!run.has_value()) {
      run = process_->FindFreeRun(mmap_cursor_, kStackTop, pages);
    }
    if (!run.has_value()) {
      return SysErr(Errno::kENOMEM);
    }
    base = *run;
  }
  const Status mapped = process_->MapRange(base, pages, machine::PageFlags::Data());
  if (!mapped.ok()) {
    return SysErr(mapped.code() == StatusCode::kAlreadyExists ? Errno::kEEXIST
                                                              : Errno::kENOMEM);
  }
  if (policy_ != nullptr) {
    policy_->OnMapped(base, pages);
  }
  return base;
}

uint64_t Kernel::DoMprotect(VirtAddr addr, uint64_t prot) {
  ++mprotect_calls_;
  if (PageOffset(addr) != 0) {
    return SysErr(Errno::kEINVAL);
  }
  machine::PageFlags flags = machine::PageFlags::Data();
  flags.user = prot != kProtNone;
  flags.writable = (prot & 2) != 0;
  flags.executable = (prot & kProtExec) != 0;
  // Keep the page's protection key (mprotect must not strip MPK tags).
  auto walk = process_->page_table().Walk(addr);
  if (!walk.ok()) {
    return SysErr(Errno::kENOMEM);  // unmapped range, as Linux reports it
  }
  flags.pkey = machine::PageTable::PtePkey(walk.value().pte);
  if (!process_->page_table().Protect(addr, flags).ok()) {
    return SysErr(Errno::kENOMEM);
  }
  process_->mmu().InvalidatePage(addr);  // the kernel's TLB shootdown
  return 0;
}

uint64_t Kernel::DoMunmap(VirtAddr addr, uint64_t length) {
  if (length == 0 || PageOffset(addr) != 0) {
    return SysErr(Errno::kEINVAL);
  }
  const uint64_t pages = PageAlignUp(length) >> kPageShift;
  // Validate first so a bad range (including a double-unmap, which Linux
  // tolerates but the simulator treats as a program bug) mutates nothing,
  // and account tagged pages back before their PTEs disappear.
  for (uint64_t p = 0; p < pages; ++p) {
    if (!process_->page_table().IsMapped(addr + p * kPageSize)) {
      return SysErr(Errno::kEINVAL);
    }
  }
  for (uint64_t p = 0; p < pages; ++p) {
    auto walk = process_->page_table().Walk(addr + p * kPageSize);
    if (walk.ok()) {
      const uint8_t key = machine::PageTable::PtePkey(walk.value().pte);
      if (tag_counts_[key] > 0) {
        --tag_counts_[key];
      }
    }
  }
  return process_->Unmap(addr, pages).ok() ? 0 : SysErr(Errno::kEINVAL);
}

uint64_t Kernel::DoBrk(VirtAddr new_brk) {
  if (new_brk == 0) {
    return brk_;
  }
  if (new_brk < brk_ || new_brk > kHeapBase + (uint64_t{1} << 32)) {
    return brk_;  // shrinking/unreasonable: report current break, like Linux
  }
  const VirtAddr old_end = PageAlignUp(brk_);
  const VirtAddr new_end = PageAlignUp(new_brk);
  if (new_end > old_end) {
    if (!process_->MapRange(old_end, (new_end - old_end) >> kPageShift,
                            machine::PageFlags::Data())
             .ok()) {
      return brk_;
    }
  }
  brk_ = new_brk;
  return brk_;
}

uint64_t Kernel::DoPkeyMprotect(VirtAddr addr, uint64_t packed) {
  const uint8_t key = static_cast<uint8_t>(packed & 0xff);
  const uint64_t pages = packed >> 8;
  if (PageOffset(addr) != 0 || key >= mpk::kNumKeys) {
    return SysErr(Errno::kEINVAL);
  }
  if (!keys_.InUse(key)) {
    return SysErr(Errno::kEINVAL);  // unallocated key
  }
  // Validate the whole range before tagging anything so a failure can't
  // leave a half-tagged region.
  for (uint64_t p = 0; p < pages; ++p) {
    if (!process_->page_table().IsMapped(addr + p * kPageSize)) {
      return SysErr(Errno::kENOMEM);
    }
  }
  // Move the per-key tag accounting from each page's old key to `key`.
  for (uint64_t p = 0; p < pages; ++p) {
    auto walk = process_->page_table().Walk(addr + p * kPageSize);
    if (walk.ok()) {
      const uint8_t old_key = machine::PageTable::PtePkey(walk.value().pte);
      if (old_key != key && tag_counts_[old_key] > 0) {
        --tag_counts_[old_key];
      }
      if (old_key != key) {
        ++tag_counts_[key];
      }
    }
  }
  if (!mpk::TagRange(process_->page_table(), addr, pages, key).ok()) {
    return SysErr(Errno::kENOMEM);
  }
  for (uint64_t p = 0; p < pages; ++p) {
    process_->mmu().InvalidatePage(addr + p * kPageSize);
  }
  return 0;
}

uint64_t Kernel::DoPkeyFree(uint8_t key) {
  if (!keys_.InUse(key) || key == 0) {
    return SysErr(Errno::kEINVAL);
  }
  if (tag_counts_[key] > 0) {
    // Freeing a key while pages still carry its tag would let a later
    // pkey_alloc silently inherit access to those pages.
    return SysErr(Errno::kEBUSY);
  }
  return keys_.Free(key).ok() ? 0 : SysErr(Errno::kEINVAL);
}

void Kernel::SaveState(machine::SnapshotWriter& w) const {
  w.PutTag(kTagKernel);
  w.PutU16(keys_.bits());
  w.PutU64(mmap_cursor_);
  w.PutU64(brk_);
  w.PutU64(mmap_calls_);
  w.PutU64(mprotect_calls_);
  w.PutU64(write_sink_);
  w.PutU64(injected_failures_);
  for (const uint64_t count : tag_counts_) {
    w.PutU64(count);
  }
  w.PutU64(armed_.size());
  for (const ArmedFailure& armed : armed_) {
    w.PutU64(armed.nr);
    w.PutU64(static_cast<uint64_t>(armed.err));
    w.PutI32(armed.remaining);
  }
}

Status Kernel::LoadState(machine::SnapshotReader& r) {
  if (!r.ExpectTag(kTagKernel, "kernel")) {
    return r.status();
  }
  const uint16_t key_bits = r.U16();
  const uint64_t mmap_cursor = r.U64();
  const uint64_t brk = r.U64();
  const uint64_t mmap_calls = r.U64();
  const uint64_t mprotect_calls = r.U64();
  const uint64_t write_sink = r.U64();
  const uint64_t injected = r.U64();
  std::array<uint64_t, mpk::kNumKeys> tag_counts{};
  for (uint64_t& count : tag_counts) {
    count = r.U64();
  }
  const uint64_t armed_count = r.U64();
  if (!r.FitCount(armed_count, 20)) {
    return r.status();
  }
  std::vector<ArmedFailure> armed;
  armed.reserve(armed_count);
  for (uint64_t i = 0; i < armed_count; ++i) {
    ArmedFailure failure;
    failure.nr = r.U64();
    failure.err = static_cast<Errno>(r.U64());
    failure.remaining = r.I32();
    armed.push_back(failure);
  }
  MEMSENTRY_RETURN_IF_ERROR(r.status());
  keys_.set_bits(key_bits);
  mmap_cursor_ = mmap_cursor;
  brk_ = brk;
  mmap_calls_ = mmap_calls;
  mprotect_calls_ = mprotect_calls;
  write_sink_ = write_sink;
  injected_failures_ = injected;
  tag_counts_ = tag_counts;
  armed_ = std::move(armed);
  // Per-ASID attribution is scheduler-session state and is not part of the
  // pinned snapshot format; a restored kernel starts with a clean ledger.
  current_asid_ = 0;
  total_syscalls_ = 0;
  asid_syscalls_.clear();
  return OkStatus();
}

}  // namespace memsentry::sim

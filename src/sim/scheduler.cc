#include "src/sim/scheduler.h"

#include <algorithm>
#include <cassert>

namespace memsentry::sim {

Scheduler::Scheduler(const SchedulerConfig& config, uint16_t num_tenants)
    : config_(config), tenants_(num_tenants) {}

void Scheduler::Submit(uint16_t tenant, uint64_t seq, Cycles arrival) {
  assert(tenant < tenants_.size());
  pending_.push_back(Pending{arrival, tenant, seq});
}

void Scheduler::MakeReady(uint16_t tenant) {
  Tenant& t = tenants_[tenant];
  if (!t.in_ready && !t.run_queue.empty()) {
    t.in_ready = true;
    ready_.push_back(tenant);
  }
}

void Scheduler::AdmitUpTo(Cycles now) {
  while (admit_cursor_ < pending_.size() && pending_[admit_cursor_].arrival <= now) {
    const Pending& p = pending_[admit_cursor_];
    tenants_[p.tenant].run_queue.push_back(Active{p.seq, p.arrival, 0});
    MakeReady(p.tenant);
    ++admit_cursor_;
  }
}

std::vector<CompletedRequest> Scheduler::Run(const PhaseRunner& runner) {
  // Stable sort: simultaneous arrivals are served in submission order, which
  // keeps the whole run a pure function of the submission sequence.
  std::stable_sort(pending_.begin(), pending_.end(),
                   [](const Pending& a, const Pending& b) { return a.arrival < b.arrival; });
  std::vector<CompletedRequest> completed;
  completed.reserve(pending_.size());

  AdmitUpTo(clock_);
  while (completed.size() < pending_.size()) {
    if (ready_.empty()) {
      // Nothing runnable: fast-forward to the next arrival. There must be
      // one, or the completion count above would have terminated the loop.
      assert(admit_cursor_ < pending_.size());
      clock_ = std::max(clock_, pending_[admit_cursor_].arrival);
      ++stats_.idle_jumps;
      AdmitUpTo(clock_);
      continue;
    }
    const uint16_t tenant = ready_.front();
    ready_.pop_front();
    Tenant& t = tenants_[tenant];
    t.in_ready = false;

    if (current_ != tenant) {
      // The first dispatch is charged too: the CPU comes from the kernel's
      // idle context, not from a tenant with warm state.
      ++stats_.context_switches;
      stats_.switch_cycles += config_.context_switch_cycles;
      clock_ += config_.context_switch_cycles;
      current_ = tenant;
      if (switch_hook_) {
        switch_hook_(tenant);
      }
    }

    const Cycles quantum_end = clock_ + config_.quantum;
    while (!t.run_queue.empty() && clock_ < quantum_end) {
      Active& req = t.run_queue.front();
      bool done = false;
      const Cycles used = runner(tenant, req.seq, req.phase, &done);
      clock_ += used;
      t.busy_cycles += used;
      stats_.busy_cycles += used;
      if (done) {
        completed.push_back(CompletedRequest{tenant, req.seq, req.arrival, clock_});
        ++t.completed;
        t.run_queue.pop_front();
      } else {
        ++req.phase;
      }
    }
    // Arrivals that landed during the slice become runnable before the next
    // dispatch decision — including for the tenant that just ran.
    AdmitUpTo(clock_);
    if (!t.run_queue.empty()) {
      ++stats_.preemptions;
      MakeReady(tenant);
    }
  }
  return completed;
}

}  // namespace memsentry::sim

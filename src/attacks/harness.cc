#include "src/attacks/harness.h"

#include <cstring>
#include <vector>

#include "src/attacks/primitives.h"
#include "src/attacks/strategies.h"
#include "src/core/memsentry.h"

namespace memsentry::attacks {
namespace {

inline constexpr uint64_t kSecret = 0x5ec4e7c0de5ec4e7ULL;

Outcome ClassifyReadFault(const machine::Fault& fault) {
  switch (fault.type) {
    case machine::FaultType::kBoundRange:
    case machine::FaultType::kPkeyAccessDisabled:
    case machine::FaultType::kPkeyWriteDisabled:
    case machine::FaultType::kEptViolation:
    case machine::FaultType::kEnclaveAccess:
    case machine::FaultType::kUserSupervisor:
    case machine::FaultType::kWriteProtection:
      return Outcome::kDetected;
    default:
      // e.g. #PF at a masked (aliased) address: SFI prevented the access but
      // cannot attribute it (Section 3.2).
      return Outcome::kPrevented;
  }
}

}  // namespace

const char* OutcomeName(Outcome outcome) {
  switch (outcome) {
    case Outcome::kLeaked:
      return "LEAKED";
    case Outcome::kCorrupted:
      return "CORRUPTED";
    case Outcome::kPrevented:
      return "prevented";
    case Outcome::kDetected:
      return "detected";
    case Outcome::kNotFound:
      return "not-located";
    case Outcome::kTimedOut:
      return "timed-out";
  }
  return "?";
}

AttackReport RunAttackScenario(core::TechniqueKind kind, uint64_t region_bytes) {
  ScenarioOptions options;
  options.region_bytes = region_bytes;
  return RunAttackScenario(kind, options);
}

AttackReport RunAttackScenario(core::TechniqueKind kind, const ScenarioOptions& options) {
  const uint64_t region_bytes = options.region_bytes;
  AttackReport report;
  report.technique = kind;

  sim::Machine machine;
  sim::Process process(&machine);
  if (kind == core::TechniqueKind::kVmfunc) {
    Status dune = process.EnableDune();
    (void)dune;
  }
  (void)process.SetupStack();
  (void)process.MapRange(sim::kWorkingSetBase, 16, machine::PageFlags::Data());

  core::MemSentryConfig config;
  config.technique = kind;
  core::MemSentry memsentry(&process, config);
  auto region = memsentry.allocator().Alloc("secret", region_bytes);
  if (!region.ok()) {
    // Conservative default, mirroring eval::fault_campaign: a scenario that
    // cannot produce a defense signal is scored as if the attack succeeded,
    // never silently as "prevented".
    report.read_outcome = Outcome::kLeaked;
    report.write_outcome = Outcome::kCorrupted;
    report.detail = "setup failed (scored as escape): " + region.status().ToString();
    return report;
  }
  const VirtAddr base = region.value()->base;
  const uint64_t pages = PageAlignUp(region.value()->size) >> kPageShift;
  (void)process.Poke64(base, kSecret);
  Status prepared = memsentry.PrepareRuntime();
  if (!prepared.ok()) {
    report.read_outcome = Outcome::kLeaked;
    report.write_outcome = Outcome::kCorrupted;
    report.detail = "prepare failed (scored as escape): " + prepared.ToString();
    return report;
  }

  // Phase 1 — locate. Deterministic isolation does not hide the region: the
  // attacker gets the address for free. Information hiding forces a search.
  VirtAddr target = base;
  if (kind == core::TechniqueKind::kInfoHide) {
    LocateResult located = AllocationOracleAttack(process, pages);
    report.locate_probes = located.probes;
    if (options.probe_budget != 0 && located.probes > options.probe_budget) {
      report.read_outcome = Outcome::kTimedOut;
      report.write_outcome = Outcome::kTimedOut;
      report.detail = "locate phase exceeded probe budget";
      return report;
    }
    if (!located.found) {
      report.read_outcome = Outcome::kNotFound;
      report.write_outcome = Outcome::kNotFound;
      report.detail = "allocation oracle failed";
      return report;
    }
    target = located.base;
  }
  report.region_located = true;

  // Phase 2 — the arbitrary read primitive.
  ArbitraryRw rw(&process, &memsentry.technique());
  auto read = rw.Read(target);
  if (!read.ok()) {
    report.read_outcome = ClassifyReadFault(read.fault());
    report.detail = read.fault().ToString();
  } else if (read.value() == kSecret) {
    report.read_outcome = Outcome::kLeaked;
  } else {
    report.read_outcome = Outcome::kPrevented;  // aliased read or ciphertext
  }

  // Phase 3 — the arbitrary write primitive. Ground truth via raw memory.
  auto write = rw.Write(target, 0xdeadULL);
  if (!write.ok()) {
    report.write_outcome = ClassifyReadFault(write.fault());
  } else if (kind == core::TechniqueKind::kCrypt) {
    // The write lands on ciphertext. A *controlled* corruption requires the
    // decrypted region to contain the attacker's value; without the
    // keystream it only garbles (weak integrity, strong confidentiality).
    sim::SafeRegion* r = process.FindSafeRegion(base);
    std::vector<uint8_t> bytes(r->size);
    (void)process.PeekBytes(base, bytes.data(), r->size);
    aes::CryptRegion(bytes, r->enc_keys, r->nonce);
    uint64_t decrypted = 0;
    std::memcpy(&decrypted, bytes.data(), sizeof(decrypted));
    report.write_outcome =
        decrypted == 0xdeadULL ? Outcome::kCorrupted : Outcome::kPrevented;
    report.detail += " (write garbles ciphertext; value not attacker-controlled)";
  } else {
    auto now = process.Peek64(base);
    report.write_outcome =
        (now.ok() && now.value() != kSecret) ? Outcome::kCorrupted : Outcome::kPrevented;
  }
  return report;
}

std::vector<AttackReport> RunAttackMatrix(uint64_t region_bytes) {
  std::vector<AttackReport> reports;
  for (int k = 0; k < core::kNumTechniques; ++k) {
    reports.push_back(RunAttackScenario(static_cast<core::TechniqueKind>(k), region_bytes));
  }
  return reports;
}

}  // namespace memsentry::attacks

#include "src/attacks/strategies.h"

#include "src/core/safe_region.h"

namespace memsentry::attacks {
namespace {

// The space the hidden region was randomized into lies above the program's
// conventional mappings (stack top) — their bases are standard knowledge.
inline constexpr VirtAddr kSearchLo = sim::kStackTop;
inline constexpr VirtAddr kSearchHi = kAddressSpaceEnd;

}  // namespace

LocateResult AllocationOracleAttack(sim::Process& process, uint64_t region_pages) {
  LocateResult result;
  const uint64_t total_pages = (kSearchHi - kSearchLo) >> kPageShift;

  // Oracle: "would an allocation of S pages succeed in the upper space?" —
  // in the real attack this is an mmap whose success/failure the attacker
  // observes without crashing.
  auto can_allocate = [&](uint64_t pages) {
    ++result.probes;
    return process.FindFreeRun(kSearchLo, kSearchHi, pages).has_value();
  };
  auto largest_hole = [&]() -> uint64_t {
    uint64_t lo = 0;
    uint64_t hi = total_pages + 1;  // exclusive upper bound
    while (hi - lo > 1) {
      const uint64_t mid = lo + (hi - lo) / 2;
      if (can_allocate(mid)) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return lo;
  };

  // The hidden region splits the upper space into two holes. Binary-search
  // the larger, fill it (a real allocation), binary-search the remaining one.
  const uint64_t hole_a = largest_hole();
  if (hole_a == 0 || hole_a >= total_pages) {
    return result;  // no region hides up here
  }
  auto placement = process.FindFreeRun(kSearchLo, kSearchHi, hole_a);
  if (!placement.has_value()) {
    return result;
  }
  const VirtAddr filled_at = *placement;
  if (!process.ReserveRange(filled_at, hole_a).ok()) {
    return result;
  }
  const uint64_t hole_b = largest_hole();

  // Lower hole size: the fill landed in the lowest hole that fits; if it
  // landed at the very bottom of the space, the lower hole was the larger.
  const uint64_t lower_hole = filled_at == kSearchLo ? hole_a : hole_b;
  result.base = kSearchLo + lower_hole * kPageSize;
  result.found = true;
  // Sanity: derived size must equal the actual region.
  const uint64_t derived_pages = total_pages - hole_a - hole_b;
  if (region_pages != 0 && derived_pages != region_pages) {
    result.found = false;
  }
  (void)process.ReleaseRange(filled_at, hole_a);
  return result;
}

LocateResult CrashResistantScan(ArbitraryRw& rw, VirtAddr lo, VirtAddr hi, uint64_t stride,
                                uint64_t probe_budget) {
  LocateResult result;
  for (VirtAddr va = lo; va < hi && result.probes < probe_budget; va += stride) {
    ++result.probes;
    rw.CountProbe();
    if (rw.Probe(va).mapped_and_accessible) {
      result.found = true;
      result.base = PageAlignDown(va);
      return result;
    }
  }
  return result;
}

LocateResult ThreadSprayingAttack(sim::Process& process, ArbitraryRw& rw,
                                  core::SafeRegionAllocator& allocator, uint64_t region_bytes,
                                  int spray_count, uint64_t probe_budget) {
  LocateResult result;
  // Phase 1: force the victim to create many copies of the hidden region
  // (one per sprayed thread, e.g. thread stacks carrying safe areas).
  for (int i = 0; i < spray_count; ++i) {
    auto region = allocator.Alloc("sprayed-" + std::to_string(i), region_bytes);
    if (!region.ok()) {
      return result;
    }
  }
  // Phase 2: random probing; density spray_count * region_bytes / |space|
  // makes the expected probe count tractable.
  Rng rng(0xdeadbea7ULL);
  while (result.probes < probe_budget) {
    ++result.probes;
    rw.CountProbe();
    const VirtAddr va =
        kSearchLo + PageAlignDown(rng.Below(kSearchHi - kSearchLo - kPageSize));
    if (rw.Probe(va).mapped_and_accessible && process.InSafeRegion(va)) {
      result.found = true;
      result.base = PageAlignDown(va);
      return result;
    }
  }
  return result;
}

}  // namespace memsentry::attacks

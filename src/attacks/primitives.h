// The paper's threat model (Section 2.3): the attacker holds an arbitrary
// read and write primitive inside the vulnerable (instrumented) process.
// Technique::AttackerRead/Write give those primitives their architectural
// semantics — an SFI'd process masks the attacker's pointer, MPX bound-checks
// it, a closed MPK/EPT/enclave domain faults, crypt yields ciphertext.
#ifndef MEMSENTRY_SRC_ATTACKS_PRIMITIVES_H_
#define MEMSENTRY_SRC_ATTACKS_PRIMITIVES_H_

#include "src/core/technique.h"
#include "src/sim/process.h"

namespace memsentry::attacks {

class ArbitraryRw {
 public:
  ArbitraryRw(sim::Process* process, core::Technique* technique)
      : process_(process), technique_(technique) {}

  machine::FaultOr<uint64_t> Read(VirtAddr va) { return technique_->AttackerRead(*process_, va); }
  machine::FaultOr<bool> Write(VirtAddr va, uint64_t value) {
    return technique_->AttackerWrite(*process_, va, value);
  }

  // Crash-resistant probe (Gawlik et al.): reads survive faults — the
  // attacker learns whether the access succeeded without terminating.
  struct ProbeResult {
    bool mapped_and_accessible = false;
    uint64_t value = 0;
  };
  ProbeResult Probe(VirtAddr va) {
    auto r = Read(va);
    if (r.ok()) {
      return ProbeResult{true, r.value()};
    }
    return ProbeResult{};
  }

  uint64_t probes_used() const { return probes_; }
  void CountProbe() { ++probes_; }

 private:
  sim::Process* process_;
  core::Technique* technique_;
  uint64_t probes_ = 0;
};

}  // namespace memsentry::attacks

#endif  // MEMSENTRY_SRC_ATTACKS_PRIMITIVES_H_

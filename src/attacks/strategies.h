// Disclosure strategies against information hiding (paper Section 1/2.3):
//   * allocation oracle (Oikonomopoulos et al.): probe allocation sizes to
//     measure the address-space holes around the hidden region and pinpoint
//     its boundaries in O(log |address space|) probes;
//   * crash-resistant scanning (Gawlik et al.): sweep the address space with
//     faulting-but-surviving reads;
//   * thread spraying (Göktaş et al.): force the program to create many
//     copies of the hidden region first, then scan — density makes scanning
//     tractable.
#ifndef MEMSENTRY_SRC_ATTACKS_STRATEGIES_H_
#define MEMSENTRY_SRC_ATTACKS_STRATEGIES_H_

#include <optional>

#include "src/attacks/primitives.h"
#include "src/core/safe_region.h"

namespace memsentry::attacks {

struct LocateResult {
  bool found = false;
  VirtAddr base = 0;       // discovered page inside the hidden region
  uint64_t probes = 0;     // primitive invocations spent
};

// Allocation oracle: binary-searches the largest mappable block above and
// below to triangulate the hidden region. `probe_budget` bounds the search.
LocateResult AllocationOracleAttack(sim::Process& process, uint64_t region_pages);

// Crash-resistant scan with the given stride. Only tractable when the region
// (or the sprayed copies) are large relative to the stride.
LocateResult CrashResistantScan(ArbitraryRw& rw, VirtAddr lo, VirtAddr hi, uint64_t stride,
                                uint64_t probe_budget);

// Thread spraying: the victim is made to allocate `spray_count` additional
// region copies (one per sprayed thread stack); the attacker then scans.
LocateResult ThreadSprayingAttack(sim::Process& process, ArbitraryRw& rw,
                                  core::SafeRegionAllocator& allocator, uint64_t region_bytes,
                                  int spray_count, uint64_t probe_budget);

}  // namespace memsentry::attacks

#endif  // MEMSENTRY_SRC_ATTACKS_STRATEGIES_H_

// Seeded generative attack campaigns: instead of the fixed strategy list in
// strategies.h, a grammar of composable attack steps (probe sweeps,
// allocation-oracle runs, gate-window races against the containment audit,
// fault-then-probe via sim::FaultInjector, scheduler-preemption
// interleavings, mmap-policy abuse) is sampled into thousands of randomized
// multi-step campaigns per run.
//
// Determinism contract: a campaign is a pure function of (seed, technique,
// grammar). ALL randomness is drawn at generation time into the step
// parameters; RunCampaign consumes parameters only, so any outcome replays
// bit-for-bit from the serialized spec — standalone, under any --jobs value,
// and after shrinking.
//
// Classification mirrors eval::fault_campaign:
//   kDetected  — every probe was refused with a fault, a clean errno, a
//                policy refusal, or a diverted/ciphertext read — or the
//                attacker cashed out blind against a region it never located.
//   kDegraded  — the containment audit repaired/quarantined state or the
//                technique downgraded; protection held at a logged cost.
//   kEscaped   — secret plaintext read, controlled write landed, attacker
//                gained writable-then-executable memory, or the campaign
//                finished without any observable containment signal
//                (conservative default).
//   kTimedOut  — the per-campaign step budget ran out before a verdict.
#ifndef MEMSENTRY_SRC_ATTACKS_CAMPAIGN_GEN_H_
#define MEMSENTRY_SRC_ATTACKS_CAMPAIGN_GEN_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/base/json.h"
#include "src/base/status.h"
#include "src/core/technique.h"

namespace memsentry::attacks {

// The campaign grammar's step vocabulary. Parameters a/b/c are drawn at
// generation time; their meaning is per-kind (documented in campaign_gen.cc
// next to each runner).
enum class StepKind {
  kProbeSweep = 0,    // crash-resistant read sweep near the sensitive half
  kAllocOracle,       // allocation-oracle locate run (information hiding)
  kGateRace,          // open the domain legitimately, probe inside the window
  kFaultThenProbe,    // inject a fault-injector site, then probe
  kPreemptRace,       // scheduler interleaving: probe from a preempting tenant
  kMmapFixed,         // attacker-chosen fixed mmap near the region
  kMmapSpray,         // kernel-placed mmap spray (layout grooming)
  kWxTransition,      // map, write payload, re-protect to executable
  kAdjacentOverflow,  // fixed map below the region + linear overflow across
  kGuardTouch,        // touch the pages immediately around the region
  kStaleRead,         // read a fresh mapping before initializing it
  kCashOut,           // final read+write at the best-known target address
};

inline constexpr int kNumStepKinds = 12;

const char* StepKindName(StepKind kind);
std::optional<StepKind> StepKindFromName(const std::string& name);

struct CampaignStep {
  StepKind kind = StepKind::kCashOut;
  // Pre-drawn parameters; semantics per kind. Serialized as hex strings
  // (JSON numbers are doubles and cannot carry 64-bit values exactly).
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;

  bool operator==(const CampaignStep&) const = default;
};

struct CampaignSpec {
  core::TechniqueKind technique = core::TechniqueKind::kSfi;
  uint64_t seed = 0;   // the campaign's own derived seed
  uint64_t index = 0;  // position within the generated suite (labeling only)
  std::vector<CampaignStep> steps;

  bool operator==(const CampaignSpec&) const = default;
};

// Victim/defense configuration a campaign runs against. The weakening knobs
// (mmap_policy=false, runtime_audit=false) are the deliberately broken
// configurations the tests and CI use to prove escapes are caught, bundled
// and replayable.
struct CampaignConfig {
  uint64_t region_bytes = 4096;
  bool mmap_policy = true;    // attach defenses::MmapPolicy (Strict) + guards
  bool runtime_audit = true;  // run the containment audit at checkpoints
  uint64_t step_budget = 96;  // primitive-step budget; exhaustion => timeout
};

enum class CampaignOutcome {
  kDetected = 0,
  kDegraded = 1,
  kEscaped = 2,
  kTimedOut = 3,
};

const char* CampaignOutcomeName(CampaignOutcome outcome);
std::optional<CampaignOutcome> CampaignOutcomeFromName(const std::string& name);

struct CampaignResult {
  CampaignOutcome outcome = CampaignOutcome::kEscaped;
  uint64_t steps_run = 0;  // grammar steps executed (≤ spec.steps.size())
  uint64_t budget_used = 0;
  uint64_t probes = 0;  // attacker primitive invocations
  int repairs = 0;
  int quarantines = 0;
  int downgrades = 0;
  // The escape signature: which concrete signal (if any) drove a kEscaped
  // verdict. The shrinker matches these too, so a shrink can never trade a
  // real leak for the conservative no-signal default.
  bool leaked = false;
  bool corrupted = false;
  bool exec_hijack = false;
  std::string note;
};

// Per-campaign seed: suite seed mixed with an FNV-1a hash of
// "<TechniqueKindName>/campaign-<index>" — order-independent, exactly like
// eval::fault_campaign's CellSeed.
uint64_t CampaignSeed(uint64_t suite_seed, core::TechniqueKind kind, uint64_t index);

// Samples one campaign from the grammar. Pure function of (kind, seed);
// `index` is carried through for labeling.
CampaignSpec GenerateCampaign(core::TechniqueKind kind, uint64_t seed, uint64_t index);

// Runs one campaign against a fresh victim. Pure function of (spec, config).
CampaignResult RunCampaign(const CampaignSpec& spec, const CampaignConfig& config);

// Shrinks `spec` to a minimal step list that still reproduces its outcome
// under `config`: bisection over halves first, then greedy single-step
// removal to 1-minimality. Deterministic.
CampaignSpec ShrinkCampaign(const CampaignSpec& spec, const CampaignConfig& config);

// --- Replay serialization (the crash-bundle "replay" payload) ---

json::Value CampaignToJson(const CampaignSpec& spec, const CampaignConfig& config,
                           CampaignOutcome expected);

struct ParsedCampaign {
  CampaignSpec spec;
  CampaignConfig config;
  CampaignOutcome expected = CampaignOutcome::kEscaped;
};

StatusOr<ParsedCampaign> CampaignFromJson(const json::Value& value);

// --- Suite driver ---

struct CampaignTally {
  uint64_t detected = 0;
  uint64_t degraded = 0;
  uint64_t escaped = 0;
  uint64_t timed_out = 0;
  uint64_t steps_run = 0;
  uint64_t probes = 0;
};

// One escaped or timed-out campaign, with its minimal reproducer.
struct CampaignAnomaly {
  CampaignSpec spec;
  CampaignSpec shrunk;
  CampaignResult result;
};

struct CampaignSuiteOptions {
  uint64_t seed = 0xca3a16e5ULL;
  uint64_t campaigns_per_technique = 125;  // x8 techniques = 1000 campaigns
  int jobs = 1;
  CampaignConfig config;
  bool shrink_anomalies = true;
};

struct CampaignSuiteResult {
  std::array<CampaignTally, core::kNumTechniques> per_technique{};
  // Escaped/timed-out campaigns in suite (technique, index) order —
  // positionally identical for every --jobs value.
  std::vector<CampaignAnomaly> anomalies;
  uint64_t total_escaped = 0;
  uint64_t total_timed_out = 0;
};

CampaignSuiteResult RunCampaignSuite(const CampaignSuiteOptions& options);

}  // namespace memsentry::attacks

#endif  // MEMSENTRY_SRC_ATTACKS_CAMPAIGN_GEN_H_

// End-to-end attack harness: builds a victim process with a secret in a safe
// region, applies an isolation technique, and runs the attacker's read and
// write primitives against the region. For deterministic techniques the
// attacker is handed the region's true address — the paper's titular point:
// there is no need to hide a region the attacker cannot touch. For the
// information-hiding baseline the attacker must first locate the region,
// which the allocation oracle does in a few dozen probes.
#ifndef MEMSENTRY_SRC_ATTACKS_HARNESS_H_
#define MEMSENTRY_SRC_ATTACKS_HARNESS_H_

#include <string>
#include <vector>

#include "src/core/technique.h"

namespace memsentry::attacks {

enum class Outcome {
  kLeaked,     // attacker read the secret plaintext
  kCorrupted,  // attacker modified the safe region
  kPrevented,  // access silently diverted / yielded ciphertext; region intact
  kDetected,   // architectural fault: the attempt was caught
  kNotFound,   // attacker could not even locate the region
  // Appended (fidelity metrics persist these as ints; earlier values must
  // not shift): the scenario's step/probe budget ran out before a verdict.
  kTimedOut,
};

const char* OutcomeName(Outcome outcome);

// A per-campaign step budget: long generated campaigns consume one unit per
// primitive step; once the budget is exhausted further Consume() calls fail
// and the campaign classifies as a clean timeout instead of running open
// ended. Counts the overrun attempt too, so used() > limit ⇔ exhausted().
class StepBudget {
 public:
  explicit StepBudget(uint64_t limit) : limit_(limit) {}

  // Consumes `n` units. Returns false once the budget is exceeded.
  bool Consume(uint64_t n = 1) {
    used_ += n;
    return used_ <= limit_;
  }
  bool exhausted() const { return used_ > limit_; }
  uint64_t used() const { return used_; }
  uint64_t limit() const { return limit_; }

 private:
  uint64_t limit_;
  uint64_t used_ = 0;
};

struct AttackReport {
  core::TechniqueKind technique;
  bool region_located = false;
  uint64_t locate_probes = 0;
  Outcome read_outcome = Outcome::kPrevented;
  Outcome write_outcome = Outcome::kPrevented;
  std::string detail;
};

struct ScenarioOptions {
  uint64_t region_bytes = 4096;
  // Bounds the locate phase (information hiding's oracle search). 0 means
  // unlimited; a positive budget that runs out yields Outcome::kTimedOut
  // rather than an open-ended search.
  uint64_t probe_budget = 0;
};

// Runs the full scenario for one technique.
AttackReport RunAttackScenario(core::TechniqueKind kind, uint64_t region_bytes = 4096);
AttackReport RunAttackScenario(core::TechniqueKind kind, const ScenarioOptions& options);

// All eight techniques.
std::vector<AttackReport> RunAttackMatrix(uint64_t region_bytes = 4096);

}  // namespace memsentry::attacks

#endif  // MEMSENTRY_SRC_ATTACKS_HARNESS_H_

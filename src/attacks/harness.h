// End-to-end attack harness: builds a victim process with a secret in a safe
// region, applies an isolation technique, and runs the attacker's read and
// write primitives against the region. For deterministic techniques the
// attacker is handed the region's true address — the paper's titular point:
// there is no need to hide a region the attacker cannot touch. For the
// information-hiding baseline the attacker must first locate the region,
// which the allocation oracle does in a few dozen probes.
#ifndef MEMSENTRY_SRC_ATTACKS_HARNESS_H_
#define MEMSENTRY_SRC_ATTACKS_HARNESS_H_

#include <string>
#include <vector>

#include "src/core/technique.h"

namespace memsentry::attacks {

enum class Outcome {
  kLeaked,     // attacker read the secret plaintext
  kCorrupted,  // attacker modified the safe region
  kPrevented,  // access silently diverted / yielded ciphertext; region intact
  kDetected,   // architectural fault: the attempt was caught
  kNotFound,   // attacker could not even locate the region
};

const char* OutcomeName(Outcome outcome);

struct AttackReport {
  core::TechniqueKind technique;
  bool region_located = false;
  uint64_t locate_probes = 0;
  Outcome read_outcome = Outcome::kPrevented;
  Outcome write_outcome = Outcome::kPrevented;
  std::string detail;
};

// Runs the full scenario for one technique.
AttackReport RunAttackScenario(core::TechniqueKind kind, uint64_t region_bytes = 4096);

// All eight techniques.
std::vector<AttackReport> RunAttackMatrix(uint64_t region_bytes = 4096);

}  // namespace memsentry::attacks

#endif  // MEMSENTRY_SRC_ATTACKS_HARNESS_H_

#include "src/attacks/campaign_gen.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <utility>

#include "src/aes/aes128.h"
#include "src/attacks/harness.h"
#include "src/attacks/primitives.h"
#include "src/attacks/strategies.h"
#include "src/base/rng.h"
#include "src/base/thread_pool.h"
#include "src/core/memsentry.h"
#include "src/defenses/mmap_policy.h"
#include "src/eval/fault_campaign.h"
#include "src/mpk/mpk.h"
#include "src/sim/fault_injector.h"
#include "src/sim/kernel.h"
#include "src/sim/scheduler.h"

namespace memsentry::attacks {
namespace {

// Same secret as the harness and the fault campaign: recognizable in leaks.
inline constexpr uint64_t kSecret = 0x5ec4e7c0de5ec4e7ULL;
// Marker for controlled-write ground truth.
inline constexpr uint64_t kWriteMarker = 0x600dca11600dca11ULL;

const char* const kStepNames[kNumStepKinds] = {
    "probe-sweep",      "alloc-oracle",  "gate-race",   "fault-then-probe",
    "preempt-race",     "mmap-fixed",    "mmap-spray",  "wx-transition",
    "adjacent-overflow", "guard-touch",  "stale-read",  "cash-out",
};

const char* const kOutcomeNames[4] = {"detected", "degraded", "ESCAPED", "timed-out"};

uint64_t Fnv1a(uint64_t h, const char* s) {
  for (; *s != '\0'; ++s) {
    h ^= static_cast<uint8_t>(*s);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string Hex64(uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, v);
  return buf;
}

StatusOr<uint64_t> ParseHex64(const std::string& s) {
  if (s.empty()) {
    return InvalidArgument("empty hex literal");
  }
  errno = 0;
  char* end = nullptr;
  const uint64_t v = std::strtoull(s.c_str(), &end, 16);
  if (errno != 0 || end == s.c_str() || *end != '\0') {
    return InvalidArgument("bad hex literal: " + s);
  }
  return v;
}

std::optional<core::TechniqueKind> TechniqueFromName(const std::string& name) {
  for (int k = 0; k < core::kNumTechniques; ++k) {
    const auto kind = static_cast<core::TechniqueKind>(k);
    if (name == core::TechniqueKindName(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

// What the campaign's probes observed; accumulated across every step.
struct Signals {
  bool leaked = false;
  bool corrupted = false;
  bool exec_hijack = false;    // gained writable-then-executable memory
  bool fault_observed = false;
  bool policy_refused = false;  // mmap-policy refusal or guard-page trip
  bool diverted = false;        // access landed but yielded non-secret data
  bool stayed_hidden = false;   // cash-out fired blind; region never located
  std::string note;
};

void Note(Signals& s, const std::string& msg) {
  if (!s.note.empty()) {
    s.note += "; ";
  }
  s.note += msg;
}

// The victim environment one campaign runs against. Mirrors
// eval::RunFaultCell's setup so outcomes compare like-for-like.
struct Env {
  explicit Env(core::TechniqueKind kind) : process(&machine) {
    if (kind == core::TechniqueKind::kVmfunc) {
      (void)process.EnableDune();
    }
    (void)process.SetupStack();
    (void)process.MapRange(sim::kWorkingSetBase, 16, machine::PageFlags::Data());
    kernel = std::make_unique<sim::Kernel>(&process);
    kernel->Install();
  }

  sim::Machine machine;
  sim::Process process;
  std::unique_ptr<sim::Kernel> kernel;
  std::unique_ptr<core::MemSentry> memsentry;
  std::unique_ptr<defenses::MmapPolicy> policy;
  sim::SafeRegion* region = nullptr;
  VirtAddr target = 0;   // best-known target address
  bool located = false;  // target is the region's true address
};

// Runs the containment audit and tallies its findings.
void RunAudit(Env& env, CampaignResult& result) {
  for (const auto& issue : env.memsentry->technique().AuditProtection(env.process)) {
    if (issue.repaired) {
      ++result.repairs;
    } else {
      ++result.quarantines;
    }
  }
}

// One attacker read at `va`, with full outcome attribution.
void AttackerReadAt(Env& env, Signals& s, CampaignResult& result, VirtAddr va) {
  ++result.probes;
  auto read = env.memsentry->technique().AttackerRead(env.process, va);
  if (!read.ok()) {
    if (env.policy->IsGuardPage(va)) {
      s.policy_refused = true;
      Note(s, "guard page tripped at " + Hex64(va));
    } else if (env.process.InSafeRegion(va)) {
      s.fault_observed = true;
      Note(s, "attacker read faulted: " + read.fault().ToString());
    }
    // Faults elsewhere are crash-resistant probing noise, not a signal.
  } else if (read.value() == kSecret) {
    s.leaked = true;
    env.located = true;
    env.target = va;
    Note(s, "attacker read the secret plaintext at " + Hex64(va));
  } else if (env.process.InSafeRegion(va)) {
    s.diverted = true;  // aliased/masked read or ciphertext: access diverted
  }
}

// One attacker write at the best-known target, with raw-memory ground truth.
void AttackerWriteAt(Env& env, Signals& s, CampaignResult& result, VirtAddr va) {
  ++result.probes;
  auto write = env.memsentry->technique().AttackerWrite(env.process, va, kWriteMarker);
  if (!write.ok()) {
    if (env.policy->IsGuardPage(va)) {
      s.policy_refused = true;
      Note(s, "guard page tripped by write at " + Hex64(va));
    } else if (env.process.InSafeRegion(va)) {
      s.fault_observed = true;
      Note(s, "attacker write faulted: " + write.fault().ToString());
    }
    return;
  }
  if (!env.process.InSafeRegion(va)) {
    return;  // landed in attacker-reachable memory; no victim damage
  }
  sim::SafeRegion* region = env.region;
  if (env.memsentry->active_technique() == core::TechniqueKind::kCrypt &&
      region != nullptr && region->Contains(va)) {
    // A write onto ciphertext only counts as controlled corruption when the
    // decrypted region carries the attacker's value.
    std::vector<uint8_t> bytes(region->size);
    if (env.process.PeekBytes(region->base, bytes.data(), region->size).ok()) {
      aes::CryptRegion(bytes, region->enc_keys, region->nonce);
      uint64_t decrypted = 0;
      std::memcpy(&decrypted, bytes.data() + (va - region->base), sizeof(decrypted));
      if (decrypted == kWriteMarker) {
        s.corrupted = true;
        Note(s, "attacker write decrypted to the attacker's value");
      } else {
        s.diverted = true;  // garbling write: confidentiality held
      }
    }
    return;
  }
  auto now = env.process.Peek64(va);
  if (now.ok() && now.value() == kWriteMarker) {
    s.corrupted = true;
    Note(s, "attacker write landed in the safe region at " + Hex64(va));
  }
}

// Domain gate open/close for the gate-race and preempt-race steps. Returns
// false when the technique has no in-process gate to race.
struct GateState {
  uint32_t saved_pkru = 0;
  bool open = false;
};

bool OpenGate(Env& env, GateState& gate) {
  sim::SafeRegion* region = env.region;
  switch (env.memsentry->active_technique()) {
    case core::TechniqueKind::kMpk:
      gate.saved_pkru = env.process.regs().pkru.value;
      env.process.regs().pkru.value = mpk::kOpenPkru;
      gate.open = true;
      return true;
    case core::TechniqueKind::kMprotect: {
      const uint64_t rv =
          env.kernel->Dispatch(static_cast<uint64_t>(sim::Sysno::kMprotect),
                               region->base, sim::kProtRw);
      gate.open = !sim::IsSysError(rv);
      return gate.open;
    }
    case core::TechniqueKind::kCrypt: {
      if (!region->crypt || !region->encrypted_now) {
        return false;
      }
      std::vector<uint8_t> bytes(region->size);
      if (!env.process.PeekBytes(region->base, bytes.data(), region->size).ok()) {
        return false;
      }
      aes::CryptRegion(bytes, region->enc_keys, region->nonce);
      (void)env.process.PokeBytes(region->base, bytes.data(), region->size);
      region->encrypted_now = false;
      gate.open = true;
      return true;
    }
    default:
      return false;
  }
}

void CloseGate(Env& env, GateState& gate) {
  if (!gate.open) {
    return;
  }
  sim::SafeRegion* region = env.region;
  switch (env.memsentry->active_technique()) {
    case core::TechniqueKind::kMpk:
      env.process.regs().pkru.value = gate.saved_pkru;
      break;
    case core::TechniqueKind::kMprotect:
      (void)env.kernel->Dispatch(static_cast<uint64_t>(sim::Sysno::kMprotect),
                                 region->base, sim::kProtNone);
      break;
    case core::TechniqueKind::kCrypt:
      if (!region->encrypted_now) {  // the audit may have re-encrypted already
        std::vector<uint8_t> bytes(region->size);
        if (env.process.PeekBytes(region->base, bytes.data(), region->size).ok()) {
          aes::CryptRegion(bytes, region->enc_keys, region->nonce);
          (void)env.process.PokeBytes(region->base, bytes.data(), region->size);
          region->encrypted_now = true;
        }
      }
      break;
    default:
      break;
  }
  gate.open = false;
}

// Fault-injector sites applicable to this technique, in FaultMatrixCells
// order. The pkey-exhaustion site is the fallback-chain scenario and needs
// its own 16-region setup, so the generator excludes it.
std::vector<sim::FaultSite> ApplicableSites(core::TechniqueKind kind) {
  std::vector<sim::FaultSite> sites;
  for (const auto& [cell_kind, site] : eval::FaultMatrixCells()) {
    if (cell_kind == kind && site != sim::FaultSite::kSyscallPkeyAllocExhausted) {
      sites.push_back(site);
    }
  }
  return sites;
}

// --- Step runners. Each consumes budget units and appends to the signals;
// all parameters were drawn at generation time. ---

void StepProbeSweep(Env& env, const CampaignStep& step, Signals& s,
                    CampaignResult& result, StepBudget& budget) {
  // a selects the window, b the stride in pages, c the probe count.
  VirtAddr start = 0;
  switch (step.a % 4) {
    case 0:
      start = PageAlignDown(env.target) - 8 * kPageSize;
      break;
    case 1:
      start = sim::kWorkingSetBase;
      break;
    case 2:
      start = sim::kHeapBase;
      break;
    default:
      start = sim::kSafeRegionBase + ((step.a >> 8) % 1024) * kPageSize;
      break;
  }
  const uint64_t stride = (step.b == 0 ? 1 : step.b) * kPageSize;
  for (uint64_t i = 0; i < step.c; ++i) {
    if (!budget.Consume()) {
      return;
    }
    AttackerReadAt(env, s, result, start + i * stride);
    if (s.leaked) {
      return;
    }
  }
}

void StepAllocOracle(Env& env, Signals& s, CampaignResult& result,
                     StepBudget& budget) {
  const uint64_t pages = PageAlignUp(env.region->size) >> kPageShift;
  LocateResult located = AllocationOracleAttack(env.process, pages);
  result.probes += located.probes;
  if (!budget.Consume(located.probes == 0 ? 1 : located.probes)) {
    return;
  }
  if (located.found) {
    env.located = true;
    env.target = located.base;
    Note(s, "allocation oracle located the region at " + Hex64(located.base));
  } else {
    Note(s, "allocation oracle failed (" + std::to_string(located.probes) + " probes)");
  }
}

void StepGateRace(Env& env, const CampaignConfig& config, Signals& s,
                  CampaignResult& result, StepBudget& budget) {
  if (!budget.Consume(2)) {
    return;
  }
  GateState gate;
  if (!OpenGate(env, gate)) {
    Note(s, "gate race: no racable gate for this technique");
    return;
  }
  // The ERIM-style audit runs at what it believes is a closed-domain
  // checkpoint — catching (and closing) the racing window.
  if (config.runtime_audit) {
    RunAudit(env, result);
  }
  AttackerReadAt(env, s, result, env.target);
  CloseGate(env, gate);
}

void StepFaultThenProbe(Env& env, const CampaignSpec& spec,
                        const CampaignConfig& config, const CampaignStep& step,
                        Signals& s, CampaignResult& result, StepBudget& budget) {
  if (!budget.Consume(2)) {
    return;
  }
  const std::vector<sim::FaultSite> sites = ApplicableSites(spec.technique);
  if (sites.empty()) {
    Note(s, "fault-then-probe: no applicable fault sites");
    return;
  }
  const sim::FaultSite site = sites[step.a % sites.size()];
  // The injector's seed comes from the step's own pre-drawn salt, never from
  // the step's position, so shrinking the list around it cannot change which
  // page/bit/key the injection picks.
  sim::FaultInjector injector(&env.process, spec.seed ^ step.b);
  injector.SetKernel(env.kernel.get());
  auto injected = injector.Inject(site);
  if (!injected.ok()) {
    Note(s, std::string("injection skipped: ") + sim::FaultSiteName(site));
    return;
  }
  if (config.runtime_audit) {
    RunAudit(env, result);
  }
  // Syscall sites: drive the armed call and require a clean refusal.
  if (site == sim::FaultSite::kSyscallMmapEnomem) {
    const uint64_t rv = env.kernel->Dispatch(
        static_cast<uint64_t>(sim::Sysno::kMmap), 0, 4 * kPageSize);
    if (sim::IsSysError(rv)) {
      s.fault_observed = true;
      Note(s, std::string("armed mmap refused cleanly: ") +
                  sim::ErrnoName(sim::SysErrnoOf(rv)));
    }
  } else if (site == sim::FaultSite::kSyscallMprotectEacces) {
    const uint64_t rv = env.kernel->Dispatch(
        static_cast<uint64_t>(sim::Sysno::kMprotect), sim::kWorkingSetBase,
        sim::kProtRw);
    if (sim::IsSysError(rv)) {
      s.fault_observed = true;
      Note(s, std::string("armed mprotect refused cleanly: ") +
                  sim::ErrnoName(sim::SysErrnoOf(rv)));
    }
  }
  AttackerReadAt(env, s, result, env.target);
}

void StepPreemptRace(Env& env, const CampaignConfig& config,
                     const CampaignStep& step, Signals& s, CampaignResult& result,
                     StepBudget& budget) {
  if (!budget.Consume(4)) {
    return;
  }
  GateState gate;
  sim::SchedulerConfig sched_config;
  sched_config.quantum = 10'000 + static_cast<Cycles>(step.a % 4) * 10'000;
  sim::Scheduler scheduler(sched_config, 2);
  scheduler.Submit(0, 0, 0);  // victim
  scheduler.Submit(1, 0, sched_config.quantum / 2);  // attacker, mid-quantum
  scheduler.SetSwitchHook([&](uint16_t tenant) {
    // The kernel's scheduler checkpoint: audit when handing the CPU to the
    // (attacker) tenant — the analogue of an audit on context switch.
    if (tenant == 1 && config.runtime_audit) {
      RunAudit(env, result);
    }
  });
  bool gated = false;
  (void)scheduler.Run([&](uint16_t tenant, uint64_t /*seq*/, int phase,
                          bool* done) -> Cycles {
    if (tenant == 0) {
      switch (phase) {
        case 0:
          gated = OpenGate(env, gate);
          return 1'000;
        case 1:
          // Long compute inside the open window: overruns the quantum, so
          // the preemption lands while the gate is open.
          return sched_config.quantum * 2;
        default:
          CloseGate(env, gate);
          *done = true;
          return 1'000;
      }
    }
    AttackerReadAt(env, s, result, env.target);
    *done = true;
    return 500;
  });
  if (!gated) {
    Note(s, "preempt race: no racable gate for this technique");
  }
}

void StepMmapFixed(Env& env, const CampaignStep& step, Signals& s,
                   CampaignResult& result, StepBudget& budget) {
  if (!budget.Consume()) {
    return;
  }
  ++result.probes;
  const uint64_t pages = 1 + step.b % 4;
  const VirtAddr hint =
      PageAlignDown(env.target) - (1 + step.a % 4) * kPageSize;
  const uint64_t rv =
      env.kernel->Dispatch(static_cast<uint64_t>(sim::Sysno::kMmap), hint,
                           pages * kPageSize);
  if (sim::IsSysError(rv) && sim::SysErrnoOf(rv) == sim::Errno::kEPERM) {
    s.policy_refused = true;
    Note(s, "fixed mmap near region refused by policy");
  }
}

void StepMmapSpray(Env& env, const CampaignStep& step, Signals& s,
                   CampaignResult& result, StepBudget& budget) {
  const uint64_t count = 1 + step.a % 8;
  const uint64_t pages = 1 + step.b % 4;
  uint64_t landed = 0;
  for (uint64_t i = 0; i < count; ++i) {
    if (!budget.Consume()) {
      return;
    }
    ++result.probes;
    const uint64_t rv = env.kernel->Dispatch(
        static_cast<uint64_t>(sim::Sysno::kMmap), 0, pages * kPageSize);
    if (!sim::IsSysError(rv)) {
      ++landed;
    }
  }
  (void)landed;
  (void)s;
}

void StepWxTransition(Env& env, const CampaignStep& step, Signals& s,
                      CampaignResult& result, StepBudget& budget) {
  if (!budget.Consume(2)) {
    return;
  }
  ++result.probes;
  const uint64_t mapped = env.kernel->Dispatch(
      static_cast<uint64_t>(sim::Sysno::kMmap), 0, kPageSize);
  if (sim::IsSysError(mapped)) {
    Note(s, "wx transition: staging mmap refused");
    return;
  }
  // Write the payload through the attacker's own mapping, then try to make
  // it executable — RWX directly or the classic W-then-X flip.
  (void)env.process.Poke64(mapped, 0x90909090c3c3c3c3ULL);
  const uint64_t prot = (step.a % 2 == 0) ? sim::kProtRx : sim::kProtRwx;
  const uint64_t rv = env.kernel->Dispatch(
      static_cast<uint64_t>(sim::Sysno::kMprotect), mapped, prot);
  if (sim::IsSysError(rv)) {
    s.policy_refused = true;
    Note(s, std::string("W^X transition refused: ") +
                sim::ErrnoName(sim::SysErrnoOf(rv)));
    return;
  }
  // Writable-then-executable memory under attacker control models code
  // injection: wrpkru/vmfunc/mprotect are unprivileged, so arbitrary code
  // execution breaks every in-process gate (ERIM's founding observation).
  s.exec_hijack = true;
  Note(s, "attacker gained writable-then-executable page at " + Hex64(mapped));
}

void StepAdjacentOverflow(Env& env, const CampaignStep& step, Signals& s,
                          CampaignResult& result, StepBudget& budget) {
  if (!budget.Consume(2)) {
    return;
  }
  ++result.probes;
  const uint64_t pages = 1 + step.a % 4;
  const VirtAddr hint = PageAlignDown(env.target) - pages * kPageSize;
  const uint64_t rv = env.kernel->Dispatch(
      static_cast<uint64_t>(sim::Sysno::kMmap), hint, pages * kPageSize);
  if (sim::IsSysError(rv)) {
    if (sim::SysErrnoOf(rv) == sim::Errno::kEPERM) {
      s.policy_refused = true;
      Note(s, "adjacent fixed mmap refused by policy");
    }
    return;
  }
  // The linear overflow: writes march up from the staging buffer across the
  // boundary; the landing that matters is the first region page.
  AttackerWriteAt(env, s, result, env.target);
}

void StepGuardTouch(Env& env, const CampaignStep& step, Signals& s,
                    CampaignResult& result, StepBudget& budget) {
  if (!budget.Consume()) {
    return;
  }
  const VirtAddr region_base =
      env.located || env.region == nullptr ? PageAlignDown(env.target) : env.target;
  const VirtAddr va =
      (step.a % 2 == 0)
          ? region_base - kPageSize
          : PageAlignUp(region_base + (env.region != nullptr ? env.region->size
                                                             : kPageSize));
  AttackerReadAt(env, s, result, va);
}

void StepStaleRead(Env& env, const CampaignStep& step, Signals& s,
                   CampaignResult& result, StepBudget& budget) {
  if (!budget.Consume()) {
    return;
  }
  ++result.probes;
  const uint64_t pages = 1 + step.a % 4;
  const uint64_t rv = env.kernel->Dispatch(
      static_cast<uint64_t>(sim::Sysno::kMmap), 0, pages * kPageSize);
  if (sim::IsSysError(rv)) {
    return;
  }
  // Read before initializing: with poison-on-alloc the value is the policy's
  // poison pattern — recognizably dead, never stale program data.
  auto value = env.process.Peek64(rv);
  if (value.ok() && value.value() == 0xdededededededeULL * 0x100 + 0xde) {
    s.diverted = true;
    Note(s, "poison visible on uninitialized read");
  }
}

void StepCashOut(Env& env, Signals& s, CampaignResult& result,
                 StepBudget& budget) {
  if (!budget.Consume(2)) {
    return;
  }
  AttackerReadAt(env, s, result, env.target);
  AttackerWriteAt(env, s, result, env.target);
  if (!env.located && !s.leaked && !s.corrupted) {
    // The attacker cashed out against a guess: for information hiding the
    // containment result IS that the region was never located — the blind
    // probes landed in unmapped space (or attacker-reachable noise), not in
    // the hidden region.
    s.stayed_hidden = true;
    Note(s, "cash-out fired blind: region never located");
  }
}

CampaignOutcome Classify(const Signals& s, const CampaignResult& result,
                         bool budget_exhausted) {
  if (s.leaked || s.corrupted || s.exec_hijack) {
    return CampaignOutcome::kEscaped;
  }
  if (budget_exhausted) {
    return CampaignOutcome::kTimedOut;
  }
  if (result.repairs > 0 || result.quarantines > 0 || result.downgrades > 0) {
    return CampaignOutcome::kDegraded;
  }
  if (s.fault_observed || s.policy_refused || s.diverted || s.stayed_hidden) {
    return CampaignOutcome::kDetected;
  }
  // No leak — but no containment signal either. Conservatively an escape,
  // exactly like eval::fault_campaign: every campaign must have an
  // observable containment story.
  return CampaignOutcome::kEscaped;
}

}  // namespace

const char* StepKindName(StepKind kind) {
  const int i = static_cast<int>(kind);
  return (i >= 0 && i < kNumStepKinds) ? kStepNames[i] : "?";
}

std::optional<StepKind> StepKindFromName(const std::string& name) {
  for (int i = 0; i < kNumStepKinds; ++i) {
    if (name == kStepNames[i]) {
      return static_cast<StepKind>(i);
    }
  }
  return std::nullopt;
}

const char* CampaignOutcomeName(CampaignOutcome outcome) {
  const int i = static_cast<int>(outcome);
  return (i >= 0 && i < 4) ? kOutcomeNames[i] : "?";
}

std::optional<CampaignOutcome> CampaignOutcomeFromName(const std::string& name) {
  for (int i = 0; i < 4; ++i) {
    if (name == kOutcomeNames[i]) {
      return static_cast<CampaignOutcome>(i);
    }
  }
  return std::nullopt;
}

uint64_t CampaignSeed(uint64_t suite_seed, core::TechniqueKind kind, uint64_t index) {
  uint64_t h = 0xcbf29ce484222325ULL;
  h = Fnv1a(h, core::TechniqueKindName(kind));
  h = Fnv1a(h, "/campaign-");
  h = Fnv1a(h, std::to_string(index).c_str());
  return suite_seed ^ h;
}

CampaignSpec GenerateCampaign(core::TechniqueKind kind, uint64_t seed, uint64_t index) {
  CampaignSpec spec;
  spec.technique = kind;
  spec.seed = seed;
  spec.index = index;

  // The drawable pool: common steps for every technique, plus the
  // technique-specific compositions.
  std::vector<StepKind> pool = {
      StepKind::kProbeSweep,   StepKind::kMmapFixed,       StepKind::kMmapSpray,
      StepKind::kWxTransition, StepKind::kAdjacentOverflow, StepKind::kGuardTouch,
      StepKind::kStaleRead,
  };
  if (kind != core::TechniqueKind::kInfoHide) {
    pool.push_back(StepKind::kFaultThenProbe);
  }
  if (kind == core::TechniqueKind::kMpk || kind == core::TechniqueKind::kMprotect ||
      kind == core::TechniqueKind::kCrypt) {
    pool.push_back(StepKind::kGateRace);
    pool.push_back(StepKind::kPreemptRace);
  }
  if (kind == core::TechniqueKind::kInfoHide) {
    pool.push_back(StepKind::kAllocOracle);
  }

  // ALL randomness happens here: parameters are drawn for every step (even
  // when a runner ignores some), so RunCampaign never touches an RNG and a
  // serialized spec replays bit-for-bit.
  Rng rng(seed);
  const uint64_t count = 2 + rng.Below(6);  // 2..7 drawn steps
  for (uint64_t i = 0; i < count; ++i) {
    CampaignStep step;
    step.kind = pool[rng.Below(pool.size())];
    switch (step.kind) {
      case StepKind::kProbeSweep:
        step.a = rng.Next();
        step.b = 1 + rng.Below(8);
        step.c = 4 + rng.Below(29);
        break;
      case StepKind::kMmapSpray:
        step.a = rng.Next();
        step.b = rng.Next();
        break;
      default:
        step.a = rng.Next();
        step.b = rng.Next();
        step.c = rng.Next();
        break;
    }
    spec.steps.push_back(step);
  }
  // Every generated campaign tries to cash out at the end; shrunk or
  // hand-written specs may omit it.
  spec.steps.push_back(CampaignStep{StepKind::kCashOut, rng.Next(), 0, 0});
  return spec;
}

CampaignResult RunCampaign(const CampaignSpec& spec, const CampaignConfig& config) {
  CampaignResult result;
  Signals signals;
  Env env(spec.technique);

  core::MemSentryConfig mconfig;
  mconfig.technique = spec.technique;
  env.memsentry = std::make_unique<core::MemSentry>(&env.process, mconfig);

  auto region = env.memsentry->allocator().Alloc("secret", config.region_bytes);
  if (!region.ok()) {
    result.note = "setup failed (scored as escape): " + region.status().ToString();
    return result;  // outcome stays kEscaped: broken campaigns must be loud
  }
  env.region = region.value();
  (void)env.process.Poke64(env.region->base, kSecret);

  env.policy = std::make_unique<defenses::MmapPolicy>(
      &env.process,
      config.mmap_policy ? defenses::MmapPolicyConfig::Strict()
                         : defenses::MmapPolicyConfig::Off(),
      spec.seed ^ 0x4d415047ULL);  // "MAPG"
  env.policy->Attach(env.kernel.get());

  Status prepared = env.memsentry->PrepareRuntime();
  if (!prepared.ok()) {
    result.note = "prepare failed (scored as escape): " + prepared.ToString();
    return result;
  }
  result.downgrades = static_cast<int>(env.memsentry->downgrades().size());
  (void)env.policy->InstallGuards();

  // Deterministic techniques do not hide the region (the paper's titular
  // point); information hiding forces the attacker to start from a guess.
  if (spec.technique == core::TechniqueKind::kInfoHide) {
    env.located = false;
    env.target = sim::kStackTop + (spec.seed % (uint64_t{1} << 24)) * kPageSize;
  } else {
    env.located = true;
    env.target = env.region->base;
  }

  StepBudget budget(config.step_budget);
  for (const CampaignStep& step : spec.steps) {
    if (budget.exhausted()) {
      break;
    }
    ++result.steps_run;
    switch (step.kind) {
      case StepKind::kProbeSweep:
        StepProbeSweep(env, step, signals, result, budget);
        break;
      case StepKind::kAllocOracle:
        StepAllocOracle(env, signals, result, budget);
        break;
      case StepKind::kGateRace:
        StepGateRace(env, config, signals, result, budget);
        break;
      case StepKind::kFaultThenProbe:
        StepFaultThenProbe(env, spec, config, step, signals, result, budget);
        break;
      case StepKind::kPreemptRace:
        StepPreemptRace(env, config, step, signals, result, budget);
        break;
      case StepKind::kMmapFixed:
        StepMmapFixed(env, step, signals, result, budget);
        break;
      case StepKind::kMmapSpray:
        StepMmapSpray(env, step, signals, result, budget);
        break;
      case StepKind::kWxTransition:
        StepWxTransition(env, step, signals, result, budget);
        break;
      case StepKind::kAdjacentOverflow:
        StepAdjacentOverflow(env, step, signals, result, budget);
        break;
      case StepKind::kGuardTouch:
        StepGuardTouch(env, step, signals, result, budget);
        break;
      case StepKind::kStaleRead:
        StepStaleRead(env, step, signals, result, budget);
        break;
      case StepKind::kCashOut:
        StepCashOut(env, signals, result, budget);
        break;
    }
  }

  result.budget_used = budget.used();
  result.leaked = signals.leaked;
  result.corrupted = signals.corrupted;
  result.exec_hijack = signals.exec_hijack;
  result.outcome = Classify(signals, result, budget.exhausted());
  if (!signals.note.empty()) {
    result.note = result.note.empty() ? signals.note : result.note + " | " + signals.note;
  }
  return result;
}

CampaignSpec ShrinkCampaign(const CampaignSpec& spec, const CampaignConfig& config) {
  const CampaignResult original = RunCampaign(spec, config);
  // The reproduction predicate matches the outcome AND the escape signature
  // (leak/corrupt/hijack bits): without the signature a shrink could bottom
  // out in a step list that "escapes" only through the conservative
  // no-signal default — a bogus reproducer.
  auto reproduces = [&](const CampaignSpec& candidate) {
    const CampaignResult r = RunCampaign(candidate, config);
    return r.outcome == original.outcome && r.leaked == original.leaked &&
           r.corrupted == original.corrupted &&
           r.exec_hijack == original.exec_hijack;
  };

  CampaignSpec best = spec;
  // Bisection: keep whichever half still reproduces, until neither does.
  bool progress = true;
  while (progress && best.steps.size() > 1) {
    progress = false;
    const size_t half = best.steps.size() / 2;
    CampaignSpec hi = best;
    hi.steps.assign(best.steps.begin() + static_cast<long>(half), best.steps.end());
    if (reproduces(hi)) {
      best = std::move(hi);
      progress = true;
      continue;
    }
    CampaignSpec lo = best;
    lo.steps.assign(best.steps.begin(), best.steps.begin() + static_cast<long>(half));
    if (reproduces(lo)) {
      best = std::move(lo);
      progress = true;
    }
  }
  // Greedy polish to 1-minimality: no single step can be removed.
  for (size_t i = 0; i < best.steps.size() && best.steps.size() > 1;) {
    CampaignSpec candidate = best;
    candidate.steps.erase(candidate.steps.begin() + static_cast<long>(i));
    if (reproduces(candidate)) {
      best = std::move(candidate);
    } else {
      ++i;
    }
  }
  return best;
}

json::Value CampaignToJson(const CampaignSpec& spec, const CampaignConfig& config,
                           CampaignOutcome expected) {
  json::Value v = json::Value::Object();
  v.Set("kind", "attack_campaign");
  v.Set("technique", core::TechniqueKindName(spec.technique));
  v.Set("seed", Hex64(spec.seed));
  v.Set("index", spec.index);
  json::Value c = json::Value::Object();
  c.Set("region_bytes", config.region_bytes);
  c.Set("mmap_policy", config.mmap_policy);
  c.Set("runtime_audit", config.runtime_audit);
  c.Set("step_budget", config.step_budget);
  v.Set("config", std::move(c));
  json::Value steps = json::Value::Array();
  for (const CampaignStep& step : spec.steps) {
    json::Value s = json::Value::Object();
    s.Set("op", StepKindName(step.kind));
    s.Set("a", Hex64(step.a));
    s.Set("b", Hex64(step.b));
    s.Set("c", Hex64(step.c));
    steps.Append(std::move(s));
  }
  v.Set("steps", std::move(steps));
  v.Set("expected", CampaignOutcomeName(expected));
  return v;
}

StatusOr<ParsedCampaign> CampaignFromJson(const json::Value& value) {
  if (value.StringOr("kind", "") != "attack_campaign") {
    return InvalidArgument("not an attack_campaign replay spec");
  }
  ParsedCampaign parsed;
  const auto technique = TechniqueFromName(value.StringOr("technique", ""));
  if (!technique.has_value()) {
    return InvalidArgument("unknown technique: " + value.StringOr("technique", ""));
  }
  parsed.spec.technique = *technique;
  auto seed = ParseHex64(value.StringOr("seed", ""));
  MEMSENTRY_RETURN_IF_ERROR(seed.status());
  parsed.spec.seed = seed.value();
  parsed.spec.index = static_cast<uint64_t>(value.NumberOr("index", 0));
  if (const json::Value* config = value.Find("config"); config != nullptr) {
    parsed.config.region_bytes =
        static_cast<uint64_t>(config->NumberOr("region_bytes", 4096));
    parsed.config.mmap_policy = config->BoolOr("mmap_policy", true);
    parsed.config.runtime_audit = config->BoolOr("runtime_audit", true);
    parsed.config.step_budget =
        static_cast<uint64_t>(config->NumberOr("step_budget", 96));
  }
  const json::Value* steps = value.Find("steps");
  if (steps == nullptr || !steps->is_array()) {
    return InvalidArgument("replay spec has no steps array");
  }
  for (const json::Value& s : steps->items()) {
    CampaignStep step;
    const auto kind = StepKindFromName(s.StringOr("op", ""));
    if (!kind.has_value()) {
      return InvalidArgument("unknown step op: " + s.StringOr("op", ""));
    }
    step.kind = *kind;
    auto a = ParseHex64(s.StringOr("a", "0x0"));
    auto b = ParseHex64(s.StringOr("b", "0x0"));
    auto c = ParseHex64(s.StringOr("c", "0x0"));
    MEMSENTRY_RETURN_IF_ERROR(a.status());
    MEMSENTRY_RETURN_IF_ERROR(b.status());
    MEMSENTRY_RETURN_IF_ERROR(c.status());
    step.a = a.value();
    step.b = b.value();
    step.c = c.value();
    parsed.spec.steps.push_back(step);
  }
  const auto expected = CampaignOutcomeFromName(value.StringOr("expected", ""));
  if (expected.has_value()) {
    parsed.expected = *expected;
  }
  return parsed;
}

CampaignSuiteResult RunCampaignSuite(const CampaignSuiteOptions& options) {
  struct Row {
    int technique = 0;
    CampaignResult result;
    bool anomaly = false;
    CampaignSpec spec;
    CampaignSpec shrunk;
  };
  const uint64_t per = options.campaigns_per_technique;
  const size_t total = static_cast<size_t>(per) * core::kNumTechniques;
  // Every campaign is a pure function of (suite seed, technique, index), and
  // ParallelMap returns positionally — so tallies and anomaly order are
  // byte-identical for every jobs value.
  std::vector<Row> rows = ParallelMap(options.jobs, total, [&](size_t i) {
    const auto kind = static_cast<core::TechniqueKind>(i / per);
    const uint64_t index = i % per;
    const uint64_t seed = CampaignSeed(options.seed, kind, index);
    Row row;
    row.technique = static_cast<int>(kind);
    CampaignSpec spec = GenerateCampaign(kind, seed, index);
    row.result = RunCampaign(spec, options.config);
    if (row.result.outcome == CampaignOutcome::kEscaped ||
        row.result.outcome == CampaignOutcome::kTimedOut) {
      row.anomaly = true;
      row.shrunk = options.shrink_anomalies ? ShrinkCampaign(spec, options.config)
                                            : spec;
      row.spec = std::move(spec);
    }
    return row;
  });

  CampaignSuiteResult suite;
  for (Row& row : rows) {
    CampaignTally& tally = suite.per_technique[static_cast<size_t>(row.technique)];
    switch (row.result.outcome) {
      case CampaignOutcome::kDetected:
        ++tally.detected;
        break;
      case CampaignOutcome::kDegraded:
        ++tally.degraded;
        break;
      case CampaignOutcome::kEscaped:
        ++tally.escaped;
        ++suite.total_escaped;
        break;
      case CampaignOutcome::kTimedOut:
        ++tally.timed_out;
        ++suite.total_timed_out;
        break;
    }
    tally.steps_run += row.result.steps_run;
    tally.probes += row.result.probes;
    if (row.anomaly) {
      suite.anomalies.push_back(CampaignAnomaly{std::move(row.spec),
                                                std::move(row.shrunk),
                                                std::move(row.result)});
    }
  }
  return suite;
}

}  // namespace memsentry::attacks

// A chunked bump allocator for executor-transient state. Hot interpreter
// paths (the AES crypt scratch buffer, per-cell setup scratch) used to hit
// the general heap once per event; an Arena turns that into a pointer bump
// after the first chunk warms up. Reset() recycles every chunk without
// returning memory to the OS, so steady-state allocation never calls
// malloc. Not thread-safe: each Executor owns its own Arena.
#ifndef MEMSENTRY_SRC_BASE_ARENA_H_
#define MEMSENTRY_SRC_BASE_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace memsentry::base {

class Arena {
 public:
  static constexpr size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(size_t chunk_bytes = kDefaultChunkBytes) : chunk_bytes_(chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Returns `bytes` of storage aligned to `align` (a power of two). The
  // storage lives until Reset() or destruction.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    uintptr_t p = (cursor_ + (align - 1)) & ~static_cast<uintptr_t>(align - 1);
    if (p + bytes > limit_) {
      Grow(bytes, align);
      p = (cursor_ + (align - 1)) & ~static_cast<uintptr_t>(align - 1);
    }
    cursor_ = p + bytes;
    return reinterpret_cast<void*>(p);
  }

  // Typed array of trivially-destructible Ts; not zero-initialized.
  template <typename T>
  T* AllocateArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is reclaimed without running destructors");
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  // Rewinds to empty, keeping every chunk for reuse. O(chunks), no frees.
  void Reset() {
    chunk_index_ = 0;
    if (!chunks_.empty()) {
      cursor_ = reinterpret_cast<uintptr_t>(chunks_[0].data.get());
      limit_ = cursor_ + chunks_[0].size;
    } else {
      cursor_ = limit_ = 0;
    }
  }

  size_t chunk_count() const { return chunks_.size(); }
  size_t bytes_reserved() const {
    size_t total = 0;
    for (const Chunk& c : chunks_) {
      total += c.size;
    }
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<uint8_t[]> data;
    size_t size = 0;
  };

  void Grow(size_t bytes, size_t align) {
    // Advance to the next retained chunk that fits, or mint a new one.
    while (chunk_index_ + 1 < chunks_.size()) {
      ++chunk_index_;
      const Chunk& c = chunks_[chunk_index_];
      const uintptr_t base = reinterpret_cast<uintptr_t>(c.data.get());
      const uintptr_t aligned = (base + (align - 1)) & ~static_cast<uintptr_t>(align - 1);
      if (aligned + bytes <= base + c.size) {
        cursor_ = base;
        limit_ = base + c.size;
        return;
      }
    }
    const size_t want = bytes + align;
    const size_t size = want > chunk_bytes_ ? want : chunk_bytes_;
    Chunk chunk;
    chunk.data = std::make_unique<uint8_t[]>(size);
    chunk.size = size;
    cursor_ = reinterpret_cast<uintptr_t>(chunk.data.get());
    limit_ = cursor_ + size;
    chunks_.push_back(std::move(chunk));
    chunk_index_ = chunks_.size() - 1;
  }

  size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  size_t chunk_index_ = 0;
  uintptr_t cursor_ = 0;
  uintptr_t limit_ = 0;
};

}  // namespace memsentry::base

#endif  // MEMSENTRY_SRC_BASE_ARENA_H_

// A small dependency-free worker pool for the experiment engine. The suite's
// parallelism is embarrassingly simple — every (profile, config) cell builds
// its own machine from a deterministic seed — so all the pool provides is a
// fixed set of workers, a futures-style Submit, and an ordered ParallelMap
// whose output is positionally identical to a serial loop. Determinism rule:
// tasks must not share mutable state; the pool guarantees nothing about
// execution order, only about result placement.
#ifndef MEMSENTRY_SRC_BASE_THREAD_POOL_H_
#define MEMSENTRY_SRC_BASE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace memsentry {

// max(1, std::thread::hardware_concurrency) — the default worker count.
int HardwareJobs();

// jobs > 0 passes through; jobs <= 0 resolves to HardwareJobs(). This is the
// one place the `--jobs=N` / ExperimentOptions::jobs convention (0 = auto)
// turns into a concrete worker count.
int ResolveJobs(int jobs);

class ThreadPool {
 public:
  // Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Drains the queue: already-submitted tasks finish, then workers exit.
  ~ThreadPool();

  int threads() const { return static_cast<int>(workers_.size()); }

  // Schedules fn() on a worker; the future carries its value or exception.
  template <typename Fn>
  auto Submit(Fn fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> future = task->get_future();
    Enqueue([task] { (*task)(); });
    return future;
  }

 private:
  void Enqueue(std::function<void()> job);
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

// Applies fn(index) for index in [0, count) and returns the results in input
// order — the parallel drop-in for `for (i...) out.push_back(fn(i))`. With
// jobs <= 1 it runs inline on the calling thread (no pool, no reordering of
// side effects), which is the degenerate case the determinism tests pin
// against. The first exception any task throws is rethrown after all tasks
// finish.
template <typename Fn>
auto ParallelMap(int jobs, size_t count, Fn fn)
    -> std::vector<std::invoke_result_t<Fn, size_t>> {
  using R = std::invoke_result_t<Fn, size_t>;
  std::vector<R> results;
  results.reserve(count);
  jobs = ResolveJobs(jobs);
  if (jobs <= 1 || count <= 1) {
    for (size_t i = 0; i < count; ++i) {
      results.push_back(fn(i));
    }
    return results;
  }
  ThreadPool pool(jobs < static_cast<int>(count) ? jobs : static_cast<int>(count));
  std::vector<std::future<R>> futures;
  futures.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    futures.push_back(pool.Submit([&fn, i] { return fn(i); }));
  }
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      results.push_back(future.get());
    } catch (...) {
      if (!first_error) {
        first_error = std::current_exception();
      }
    }
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
  return results;
}

}  // namespace memsentry

#endif  // MEMSENTRY_SRC_BASE_THREAD_POOL_H_

// Small numeric helpers for the benchmark harnesses (geomean etc.).
#ifndef MEMSENTRY_SRC_BASE_STATS_UTIL_H_
#define MEMSENTRY_SRC_BASE_STATS_UTIL_H_

#include <cassert>
#include <cmath>
#include <span>

namespace memsentry {

// Geometric mean of strictly positive values. The paper reports SPEC overheads
// as the geomean over all C/C++ benchmarks.
inline double GeoMean(std::span<const double> values) {
  assert(!values.empty());
  double log_sum = 0.0;
  for (double v : values) {
    assert(v > 0.0);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

inline double Mean(std::span<const double> values) {
  assert(!values.empty());
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

// Converts a normalized runtime (1.0 == baseline) to a percent overhead.
inline double ToOverheadPercent(double normalized_runtime) {
  return (normalized_runtime - 1.0) * 100.0;
}

}  // namespace memsentry

#endif  // MEMSENTRY_SRC_BASE_STATS_UTIL_H_

// Lightweight Status / StatusOr error propagation (no exceptions cross library
// boundaries; simulated CPU faults are values, not C++ exceptions).
#ifndef MEMSENTRY_SRC_BASE_STATUS_H_
#define MEMSENTRY_SRC_BASE_STATUS_H_

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace memsentry {

// Contract violations (e.g. reading the value of an errored StatusOr) abort
// unconditionally — NOT assert() — so misuse dies the same way in Release
// builds as in Debug builds and death tests can pin the contract.
#define MEMSENTRY_CONTRACT_CHECK(cond, what)                               \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "memsentry contract violation: %s (%s:%d)\n",   \
                   what, __FILE__, __LINE__);                              \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kPermissionDenied,
  kResourceExhausted,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
};

const char* StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status InvalidArgument(std::string m) {
  return Status(StatusCode::kInvalidArgument, std::move(m));
}
inline Status NotFound(std::string m) { return Status(StatusCode::kNotFound, std::move(m)); }
inline Status AlreadyExists(std::string m) {
  return Status(StatusCode::kAlreadyExists, std::move(m));
}
inline Status OutOfRange(std::string m) { return Status(StatusCode::kOutOfRange, std::move(m)); }
inline Status PermissionDenied(std::string m) {
  return Status(StatusCode::kPermissionDenied, std::move(m));
}
inline Status ResourceExhausted(std::string m) {
  return Status(StatusCode::kResourceExhausted, std::move(m));
}
inline Status FailedPrecondition(std::string m) {
  return Status(StatusCode::kFailedPrecondition, std::move(m));
}
inline Status Unimplemented(std::string m) {
  return Status(StatusCode::kUnimplemented, std::move(m));
}
inline Status InternalError(std::string m) { return Status(StatusCode::kInternal, std::move(m)); }

// StatusOr<T>: either a value or a non-OK Status.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : status_(OkStatus()), value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {                // NOLINT(runtime/explicit)
    MEMSENTRY_CONTRACT_CHECK(!status_.ok(),
                             "StatusOr constructed from OK status without a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    MEMSENTRY_CONTRACT_CHECK(ok(), "StatusOr::value() called on error status");
    return *value_;
  }
  T& value() & {
    MEMSENTRY_CONTRACT_CHECK(ok(), "StatusOr::value() called on error status");
    return *value_;
  }
  T&& value() && {
    MEMSENTRY_CONTRACT_CHECK(ok(), "StatusOr::value() called on error status");
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define MEMSENTRY_RETURN_IF_ERROR(expr)            \
  do {                                             \
    ::memsentry::Status _status = (expr);          \
    if (!_status.ok()) return _status;             \
  } while (false)

#define MEMSENTRY_ASSIGN_OR_RETURN(lhs, expr)      \
  auto _statusor_##__LINE__ = (expr);              \
  if (!_statusor_##__LINE__.ok()) return _statusor_##__LINE__.status(); \
  lhs = std::move(_statusor_##__LINE__).value()

}  // namespace memsentry

#endif  // MEMSENTRY_SRC_BASE_STATUS_H_

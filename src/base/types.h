// Fundamental integer and address types shared by every MemSentry library.
#ifndef MEMSENTRY_SRC_BASE_TYPES_H_
#define MEMSENTRY_SRC_BASE_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace memsentry {

// A virtual address in the simulated guest address space.
using VirtAddr = uint64_t;

// A physical address in the simulated machine (host-physical when an EPT is
// active; guest-physical addresses are translated through the EPT first).
using PhysAddr = uint64_t;

// A guest-physical address: the output of the guest page tables and the input
// of the EPT. Identical to PhysAddr when no EPT is active.
using GuestPhysAddr = uint64_t;

// Cycle counts produced by the cost model. Fractional cycles are meaningful:
// on a superscalar core an instruction that never stalls the pipeline costs a
// fraction of a cycle of issue bandwidth (e.g. 0.25 on a 4-wide core).
using Cycles = double;

inline constexpr uint64_t kPageShift = 12;
inline constexpr uint64_t kPageSize = uint64_t{1} << kPageShift;  // 4 KiB
inline constexpr uint64_t kPageMask = kPageSize - 1;

// x86-64 canonical user address space is 128 TiB (47 bits + sign extension).
// MemSentry splits it at 64 TiB: everything at or above the split is the
// sensitive partition for address-based techniques (paper Section 5.4).
inline constexpr uint64_t kAddressSpaceBits = 47;
inline constexpr VirtAddr kAddressSpaceEnd = uint64_t{1} << kAddressSpaceBits;  // 128 TiB
inline constexpr VirtAddr kPartitionSplit = kAddressSpaceEnd / 2;               // 64 TiB
// The SFI mask from Figure 2(c): and-ing a pointer with this forces it below
// the 64 TiB split.
inline constexpr uint64_t kSfiMask = kPartitionSplit - 1;  // 0x00003fffffffffff

constexpr VirtAddr PageAlignDown(VirtAddr a) { return a & ~kPageMask; }
constexpr VirtAddr PageAlignUp(VirtAddr a) { return (a + kPageMask) & ~kPageMask; }
constexpr uint64_t PageNumber(VirtAddr a) { return a >> kPageShift; }
constexpr uint64_t PageOffset(VirtAddr a) { return a & kPageMask; }

}  // namespace memsentry

#endif  // MEMSENTRY_SRC_BASE_TYPES_H_

#include "src/base/thread_pool.h"

namespace memsentry {

int HardwareJobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int ResolveJobs(int jobs) { return jobs > 0 ? jobs : HardwareJobs(); }

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) {
    threads = 1;
  }
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  wake_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and drained
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

}  // namespace memsentry

#include "src/base/crash_handler.h"

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <exception>
#include <filesystem>
#include <mutex>
#include <system_error>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#if defined(__GLIBC__)
#include <execinfo.h>
#endif

namespace memsentry::base {
namespace {

// All handler-visible state lives in fixed buffers filled outside the
// handler; the handler itself allocates nothing.
constexpr size_t kPathMax = 1024;
constexpr size_t kManifestMax = 32768;
constexpr uint64_t kJournalTailBytes = 8192;

char g_root[kPathMax];
char g_journal_path[kPathMax];
char g_binary[128] = "unknown";
char g_cell[256] = "idle";
char g_manifest_head[kManifestMax];  // complete manifest up to `"reason": "`
size_t g_manifest_head_len = 0;
bool g_installed = false;
volatile sig_atomic_t g_fatal_handled = 0;

// Staged snapshot blob. Swapped under a mutex by SetCrashSnapshot; the
// handler reads the raw pointer/size without locking (a crash racing a swap
// can at worst write the previous snapshot, which is still a valid bundle).
std::mutex g_snapshot_mutex;
std::string g_snapshot_storage;
const char* volatile g_snapshot_data = nullptr;
volatile uint64_t g_snapshot_size = 0;

// --- async-signal-safe string building ---

size_t SafeAppend(char* buf, size_t pos, size_t cap, const char* s) {
  while (*s != '\0' && pos + 1 < cap) {
    buf[pos++] = *s++;
  }
  buf[pos] = '\0';
  return pos;
}

size_t SafeAppendNum(char* buf, size_t pos, size_t cap, uint64_t v) {
  char digits[24];
  int n = 0;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0 && pos + 1 < cap) {
    buf[pos++] = digits[--n];
  }
  buf[pos] = '\0';
  return pos;
}

void SafeWrite(int fd, const char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = write(fd, data + done, size - done);
    if (n <= 0) {
      return;
    }
    done += static_cast<size_t>(n);
  }
}

void SafeWriteStr(int fd, const char* s) { SafeWrite(fd, s, strlen(s)); }

// Directory-name characters only; everything else becomes '-'.
void SanitizeComponent(const char* in, char* out, size_t cap) {
  size_t pos = 0;
  for (; in[pos] != '\0' && pos + 1 < cap; ++pos) {
    const char c = in[pos];
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    out[pos] = ok ? c : '-';
  }
  out[pos] = '\0';
}

// The one function the whole machinery funnels into. Must stay
// async-signal-safe end to end. Returns the bundle dir length (0 on failure)
// and fills `dir`.
size_t WriteBundleAt(const char* reason, char* dir, size_t dir_cap) {
  if (!g_installed || g_root[0] == '\0') {
    return 0;
  }
  mkdir(g_root, 0755);  // EEXIST is fine

  size_t pos = SafeAppend(dir, 0, dir_cap, g_root);
  pos = SafeAppend(dir, pos, dir_cap, "/");
  pos = SafeAppendNum(dir, pos, dir_cap, static_cast<uint64_t>(time(nullptr)));
  pos = SafeAppend(dir, pos, dir_cap, "-");
  pos = SafeAppendNum(dir, pos, dir_cap, static_cast<uint64_t>(getpid()));
  pos = SafeAppend(dir, pos, dir_cap, "-");
  char clean[256];
  SanitizeComponent(g_binary, clean, sizeof(clean));
  pos = SafeAppend(dir, pos, dir_cap, clean);
  pos = SafeAppend(dir, pos, dir_cap, "-");
  SanitizeComponent(g_cell, clean, sizeof(clean));
  pos = SafeAppend(dir, pos, dir_cap, clean);
  if (mkdir(dir, 0755) != 0) {
    return 0;
  }

  char path[kPathMax];
  size_t p = SafeAppend(path, 0, sizeof(path), dir);
  p = SafeAppend(path, p, sizeof(path), "/manifest.json");
  int fd = open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    SafeWrite(fd, g_manifest_head, g_manifest_head_len);
    // Escape the reason minimally: quotes/backslashes/control chars -> '_'.
    for (const char* c = reason; *c != '\0'; ++c) {
      const char out =
          (*c == '"' || *c == '\\' || static_cast<unsigned char>(*c) < 0x20) ? '_' : *c;
      SafeWrite(fd, &out, 1);
    }
    SafeWriteStr(fd, "\"\n}\n");
    close(fd);
  }

  const char* snapshot = g_snapshot_data;
  const uint64_t snapshot_size = g_snapshot_size;
  if (snapshot != nullptr && snapshot_size > 0) {
    p = SafeAppend(path, 0, sizeof(path), dir);
    p = SafeAppend(path, p, sizeof(path), "/snapshot.bin");
    fd = open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      SafeWrite(fd, snapshot, snapshot_size);
      close(fd);
    }
  }

#if defined(__GLIBC__)
  p = SafeAppend(path, 0, sizeof(path), dir);
  p = SafeAppend(path, p, sizeof(path), "/backtrace.txt");
  fd = open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    void* frames[64];
    const int depth = backtrace(frames, 64);
    backtrace_symbols_fd(frames, depth, fd);
    close(fd);
  }
#endif

  if (g_journal_path[0] != '\0') {
    const int journal = open(g_journal_path, O_RDONLY);
    if (journal >= 0) {
      const off_t size = lseek(journal, 0, SEEK_END);
      const off_t start =
          size > static_cast<off_t>(kJournalTailBytes) ? size - static_cast<off_t>(kJournalTailBytes) : 0;
      lseek(journal, start, SEEK_SET);
      p = SafeAppend(path, 0, sizeof(path), dir);
      p = SafeAppend(path, p, sizeof(path), "/journal_tail.txt");
      fd = open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd >= 0) {
        char buf[512];
        ssize_t n;
        while ((n = read(journal, buf, sizeof(buf))) > 0) {
          SafeWrite(fd, buf, static_cast<size_t>(n));
        }
        close(fd);
      }
      close(journal);
    }
  }
  return pos;
}

void FatalSignalHandler(int sig) {
  if (!g_fatal_handled) {
    g_fatal_handled = 1;
    char dir[kPathMax];
    if (WriteBundleAt(sig == SIGSEGV   ? "SIGSEGV"
                      : sig == SIGBUS  ? "SIGBUS"
                      : sig == SIGABRT ? "SIGABRT"
                                       : "signal",
                      dir, sizeof(dir)) > 0) {
      SafeWriteStr(2, "\n[crash_handler] wrote ");
      SafeWriteStr(2, dir);
      SafeWriteStr(2, "\n");
    }
  }
  // SA_RESETHAND restored the default action; re-raise so the exit status
  // reports the original signal.
  raise(sig);
}

void TerminateHandler() {
  if (!g_fatal_handled) {
    g_fatal_handled = 1;
    char dir[kPathMax];
    if (WriteBundleAt("uncaught-exception", dir, sizeof(dir)) > 0) {
      SafeWriteStr(2, "\n[crash_handler] wrote ");
      SafeWriteStr(2, dir);
      SafeWriteStr(2, "\n");
    }
  }
  abort();
}

// Renders the manifest prefix for the current context. Runs outside the
// handler, so normal string building is fine; the result is copied into the
// static buffer the handler writes verbatim.
void RenderManifestHead(const CrashContext& context) {
  std::string head = "{\n  \"binary\": \"";
  for (const char c : context.binary) {
    head += (c == '"' || c == '\\') ? '_' : c;
  }
  head += "\",\n  \"cell\": \"";
  for (const char c : context.cell) {
    head += (c == '"' || c == '\\') ? '_' : c;
  }
  head += "\",\n  \"seed\": " + std::to_string(context.seed);
  head += ",\n  \"config\": ";
  head += context.config_json.empty() ? "null" : context.config_json;
  head += ",\n  \"replay\": ";
  head += context.replay_json.empty() ? "null" : context.replay_json;
  head += ",\n  \"reason\": \"";
  if (head.size() >= kManifestMax) {
    head.resize(kManifestMax - 1);
  }
  memcpy(g_manifest_head, head.data(), head.size());
  g_manifest_head[head.size()] = '\0';
  g_manifest_head_len = head.size();

  strncpy(g_binary, context.binary.c_str(), sizeof(g_binary) - 1);
  g_binary[sizeof(g_binary) - 1] = '\0';
  strncpy(g_cell, context.cell.c_str(), sizeof(g_cell) - 1);
  g_cell[sizeof(g_cell) - 1] = '\0';
}

}  // namespace

void InstallCrashHandler(const std::string& bundle_root) {
  if (g_installed) {
    return;
  }
  strncpy(g_root, bundle_root.c_str(), sizeof(g_root) - 1);
  g_root[sizeof(g_root) - 1] = '\0';
  if (const char* journal = std::getenv("MEMSENTRY_JOURNAL")) {
    strncpy(g_journal_path, journal, sizeof(g_journal_path) - 1);
    g_journal_path[sizeof(g_journal_path) - 1] = '\0';
  }
  // Default manifest before any cell context is staged.
  RenderManifestHead(CrashContext{});
  g_binary[0] = '\0';
  strncpy(g_binary, "unknown", sizeof(g_binary) - 1);
  strncpy(g_cell, "idle", sizeof(g_cell) - 1);

  struct sigaction action;
  memset(&action, 0, sizeof(action));
  action.sa_handler = FatalSignalHandler;
  sigemptyset(&action.sa_mask);
  // One shot: the handler runs once, then the default action takes over on
  // re-raise (and on any crash inside the handler itself).
  action.sa_flags = SA_RESETHAND | SA_NODEFER;
  sigaction(SIGSEGV, &action, nullptr);
  sigaction(SIGBUS, &action, nullptr);
  sigaction(SIGABRT, &action, nullptr);
  std::set_terminate(TerminateHandler);
  g_installed = true;
}

void SetCrashContext(const CrashContext& context) { RenderManifestHead(context); }

void ClearCrashCell() {
  CrashContext idle;
  idle.binary = g_binary;
  idle.cell = "idle";
  RenderManifestHead(idle);
}

void SetCrashSnapshot(std::string blob) {
  std::lock_guard<std::mutex> lock(g_snapshot_mutex);
  // Drop the handler's view before the storage mutates underneath it.
  g_snapshot_data = nullptr;
  g_snapshot_size = 0;
  g_snapshot_storage = std::move(blob);
  if (!g_snapshot_storage.empty()) {
    g_snapshot_data = g_snapshot_storage.data();
    g_snapshot_size = g_snapshot_storage.size();
  }
}

std::string WriteCrashBundle(const char* reason) {
  char dir[kPathMax];
  const size_t len = WriteBundleAt(reason, dir, sizeof(dir));
  return len > 0 ? std::string(dir, len) : std::string();
}

std::string_view CrashJournalPath() { return g_journal_path; }

namespace {

namespace fs = std::filesystem;

struct BundleEntry {
  fs::path path;
  int64_t stamp = 0;       // parsed leading unixtime, or mtime fallback
  uint64_t bytes = 0;
};

// Parses the leading `<unixtime>-` of a bundle directory name. Returns -1
// when the name does not start with digits followed by '-'.
int64_t ParseBundleStamp(const std::string& name) {
  size_t pos = 0;
  while (pos < name.size() && name[pos] >= '0' && name[pos] <= '9') {
    ++pos;
  }
  if (pos == 0 || pos >= name.size() || name[pos] != '-') {
    return -1;
  }
  return static_cast<int64_t>(std::strtoll(name.c_str(), nullptr, 10));
}

uint64_t DirectoryBytes(const fs::path& dir) {
  uint64_t total = 0;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir, ec), end; !ec && it != end; it.increment(ec)) {
    std::error_code sec;
    if (it->is_regular_file(sec) && !sec) {
      total += it->file_size(sec);
    }
  }
  return total;
}

}  // namespace

CrashGcStats CollectCrashBundles(const std::string& bundle_root, const CrashBundleCaps& caps,
                                 int64_t protect_after) {
  CrashGcStats stats;
  std::error_code ec;
  std::vector<BundleEntry> bundles;
  for (fs::directory_iterator it(bundle_root, ec), end; !ec && it != end; it.increment(ec)) {
    std::error_code sec;
    if (!it->is_directory(sec) || sec) {
      continue;
    }
    BundleEntry entry;
    entry.path = it->path();
    entry.stamp = ParseBundleStamp(entry.path.filename().string());
    if (entry.stamp < 0) {
      const auto mtime = fs::last_write_time(entry.path, sec);
      entry.stamp =
          sec ? 0
              : std::chrono::duration_cast<std::chrono::seconds>(
                    mtime.time_since_epoch() -
                    (fs::file_time_type::clock::now().time_since_epoch() -
                     std::chrono::system_clock::now().time_since_epoch()))
                    .count();
    }
    entry.bytes = DirectoryBytes(entry.path);
    bundles.push_back(std::move(entry));
  }
  if (bundles.empty()) {
    return stats;
  }

  std::sort(bundles.begin(), bundles.end(), [](const BundleEntry& a, const BundleEntry& b) {
    return a.stamp != b.stamp ? a.stamp < b.stamp : a.path < b.path;
  });

  uint64_t total_bytes = 0;
  for (const BundleEntry& entry : bundles) {
    total_bytes += entry.bytes;
  }
  size_t remaining = bundles.size();
  for (const BundleEntry& entry : bundles) {
    if (remaining <= caps.max_bundles && total_bytes <= caps.max_bytes) {
      break;
    }
    if (entry.stamp >= protect_after) {
      // Bundles are sorted oldest-first, so everything from here on is
      // protected too; the caps simply cannot be met this run.
      break;
    }
    std::error_code rec;
    fs::remove_all(entry.path, rec);
    if (!rec) {
      ++stats.bundles_removed;
      stats.bytes_removed += entry.bytes;
    }
    // A sibling process may have beaten us to the removal; either way the
    // bundle no longer counts against the caps.
    --remaining;
    total_bytes -= entry.bytes;
  }
  stats.bundles_kept = remaining;
  return stats;
}

}  // namespace memsentry::base

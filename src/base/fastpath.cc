#include "src/base/fastpath.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace memsentry::base {
namespace {

// -1 = not yet initialized from the environment.
std::atomic<int> g_mode{-1};

}  // namespace

bool ParseFastPathMode(const char* text, FastPathMode* mode) {
  if (text == nullptr) {
    return false;
  }
  if (std::strcmp(text, "on") == 0 || std::strcmp(text, "1") == 0) {
    *mode = FastPathMode::kOn;
    return true;
  }
  if (std::strcmp(text, "off") == 0 || std::strcmp(text, "0") == 0) {
    *mode = FastPathMode::kOff;
    return true;
  }
  if (std::strcmp(text, "check") == 0) {
    *mode = FastPathMode::kCheck;
    return true;
  }
  return false;
}

FastPathMode GetFastPathMode() {
  int mode = g_mode.load(std::memory_order_relaxed);
  if (mode < 0) {
    FastPathMode parsed = FastPathMode::kOn;
    ParseFastPathMode(std::getenv("MEMSENTRY_FASTPATH"), &parsed);
    // Concurrent first reads race benignly: both parse the same environment
    // and store the same value.
    g_mode.store(static_cast<int>(parsed), std::memory_order_relaxed);
    return parsed;
  }
  return static_cast<FastPathMode>(mode);
}

void SetFastPathMode(FastPathMode mode) {
  g_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

const char* FastPathModeName(FastPathMode mode) {
  switch (mode) {
    case FastPathMode::kOff:
      return "off";
    case FastPathMode::kOn:
      return "on";
    case FastPathMode::kCheck:
      return "check";
  }
  return "?";
}

}  // namespace memsentry::base

// Minimal JSON value/writer/parser for the benchmark result pipeline
// (`--json=` reports, BENCH_RESULTS.json, bench/baselines/*). No third-party
// dependencies, mirroring the stats_util.h philosophy: just enough JSON for
// machine-readable benchmark interchange. Object members preserve insertion
// order so emitted files diff cleanly across runs.
#ifndef MEMSENTRY_SRC_BASE_JSON_H_
#define MEMSENTRY_SRC_BASE_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/base/status.h"

namespace memsentry::json {

// A JSON document node: null, bool, number (double), string, array or object.
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Member = std::pair<std::string, Value>;

  Value() : kind_(Kind::kNull) {}
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}              // NOLINT(runtime/explicit)
  Value(double d) : kind_(Kind::kNumber), number_(d) {}        // NOLINT(runtime/explicit)
  Value(int i) : kind_(Kind::kNumber), number_(i) {}           // NOLINT(runtime/explicit)
  Value(int64_t i)                                             // NOLINT(runtime/explicit)
      : kind_(Kind::kNumber), number_(static_cast<double>(i)) {}
  Value(uint64_t i)                                            // NOLINT(runtime/explicit)
      : kind_(Kind::kNumber), number_(static_cast<double>(i)) {}
  Value(const char* s) : kind_(Kind::kString), string_(s) {}   // NOLINT(runtime/explicit)
  Value(std::string s)                                         // NOLINT(runtime/explicit)
      : kind_(Kind::kString), string_(std::move(s)) {}
  Value(std::string_view s) : kind_(Kind::kString), string_(s) {}  // NOLINT(runtime/explicit)

  static Value Array() {
    Value v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static Value Object() {
    Value v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }

  // Array access.
  const std::vector<Value>& items() const { return items_; }
  std::vector<Value>& items() { return items_; }
  void Append(Value v) {
    kind_ = Kind::kArray;
    items_.push_back(std::move(v));
  }
  size_t size() const { return kind_ == Kind::kObject ? members_.size() : items_.size(); }

  // Object access. Find returns nullptr when the key is absent (or the node
  // is not an object); operator[] inserts a null member, turning the node
  // into an object if it was null.
  const Value* Find(std::string_view key) const;
  Value* Find(std::string_view key);
  Value& operator[](std::string_view key);
  void Set(std::string key, Value v) { (*this)[key] = std::move(v); }
  const std::vector<Member>& members() const { return members_; }
  std::vector<Member>& members() { return members_; }

  // Convenience lookups for "get member or fallback" reads.
  double NumberOr(std::string_view key, double fallback) const;
  std::string StringOr(std::string_view key, std::string_view fallback) const;
  bool BoolOr(std::string_view key, bool fallback) const;

  // Serializes the value. indent == 0 emits one compact line; indent > 0
  // pretty-prints with that many spaces per level.
  std::string Dump(int indent = 0) const;

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<Member> members_;
};

// Escapes a string for embedding inside JSON quotes (", \, control chars).
std::string Escape(std::string_view s);

// Parses a complete JSON document. Trailing non-whitespace or any syntax
// error yields kInvalidArgument with an offset-carrying message.
StatusOr<Value> Parse(std::string_view text);

// File helpers used by the Reporter and bench_runner.
StatusOr<Value> ParseFile(const std::string& path);
Status WriteFile(const std::string& path, const Value& value, int indent = 2);

// Crash-safe variants: write to `<path>.tmp`, then rename into place, so a
// crash mid-write leaves either the old file or the new one at `path` —
// never a torn half of the new one. Readers must never pick up `.tmp` files.
Status WriteFileAtomic(const std::string& path, const Value& value, int indent = 2);
Status WriteTextFileAtomic(const std::string& path, std::string_view text);

}  // namespace memsentry::json

#endif  // MEMSENTRY_SRC_BASE_JSON_H_

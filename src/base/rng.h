// Deterministic seeded PRNG (xoshiro256**) used everywhere randomness is
// needed: workload synthesis, ASLR placement, attack probing, DieHard-style
// allocation. Determinism makes every test and benchmark bit-reproducible.
#ifndef MEMSENTRY_SRC_BASE_RNG_H_
#define MEMSENTRY_SRC_BASE_RNG_H_

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>

namespace memsentry {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 seeding to fill the xoshiro state from a single word.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) {
    assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
      const uint64_t r = Next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    assert(lo <= hi);
    return lo + Below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Bernoulli with probability p.
  bool Chance(double p) { return NextDouble() < p; }

  // Crash-safe snapshots: the raw xoshiro state, so a restored stream
  // continues with exactly the draws an uninterrupted one would make.
  std::array<uint64_t, 4> state() const { return {state_[0], state_[1], state_[2], state_[3]}; }
  void set_state(const std::array<uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) {
      state_[i] = s[static_cast<size_t>(i)];
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace memsentry

#endif  // MEMSENTRY_SRC_BASE_RNG_H_

// Crash bundles: when a bench/campaign process dies — SIGSEGV/SIGABRT/SIGBUS,
// an uncaught exception, or a programmatic trigger (fastpath check-mode
// divergence, fault-matrix escape) — a handler writes a replayable bundle
//
//   crash_bundles/<timestamp>-<binary>-<cell>/
//     manifest.json    binary, cell, seed, config, replay spec, reason
//     snapshot.bin     last simulation snapshot, when one was staged
//     backtrace.txt    async-signal-safe raw backtrace (glibc builds)
//     journal_tail.txt tail of the suite journal (MEMSENTRY_JOURNAL)
//
// and `memsentry_cli replay <bundle>` re-executes the failing cell
// deterministically from the manifest's replay spec.
//
// Everything the signal handler touches is pre-rendered at SetCrashContext
// time into static buffers; the handler itself only calls async-signal-safe
// primitives (mkdir/open/write/time, backtrace_symbols_fd).
#ifndef MEMSENTRY_SRC_BASE_CRASH_HANDLER_H_
#define MEMSENTRY_SRC_BASE_CRASH_HANDLER_H_

#include <string>
#include <string_view>

namespace memsentry::base {

// What the manifest records about the cell in flight. `config_json` and
// `replay_json` must be complete JSON values (objects); `replay_json` is the
// machine-readable spec `memsentry_cli replay` consumes.
struct CrashContext {
  std::string binary;       // e.g. "fault_matrix"
  std::string cell;         // e.g. "Mpk/pkru-desync"
  uint64_t seed = 0;
  std::string config_json;  // run configuration (mode, instructions, fastpath...)
  std::string replay_json;  // replay spec, e.g. {"kind":"fault_cell",...}
};

// Installs the signal/terminate handlers (idempotent; first root wins).
// Bundles land under `bundle_root` (created on demand).
void InstallCrashHandler(const std::string& bundle_root);

// Stages the manifest for the cell about to run. Pre-renders everything the
// handler will write, so a crash any time after this call produces a
// complete bundle for this cell.
void SetCrashContext(const CrashContext& context);

// Marks cell completion: a crash between cells produces a bundle with
// cell="idle" and no replay spec.
void ClearCrashCell();

// Stages the most recent simulation snapshot blob; written into the bundle
// verbatim as snapshot.bin. Pass an empty string to drop the staged blob.
void SetCrashSnapshot(std::string blob);

// Programmatic trigger for failures that are detected rather than trapped
// (containment escapes, determinism divergence): writes a bundle now and
// returns its directory path ("" if the handler was never installed or the
// bundle could not be created). Does not terminate the process.
std::string WriteCrashBundle(const char* reason);

// The staged journal path, taken from $MEMSENTRY_JOURNAL at install time
// (exposed for tests).
std::string_view CrashJournalPath();

// --- bundle retention ---
//
// Bundles accumulate across suite runs (every chaos campaign leaves a
// trail); without a cap a long-lived checkout fills its disk with stale
// replay state. CollectCrashBundles enforces a size/count budget by
// deleting the oldest bundles first. It runs at process startup (normal
// context, not the signal handler) and never touches bundles stamped at or
// after `protect_after` — the current run's output is sacrosanct even when
// it alone exceeds the caps.

struct CrashBundleCaps {
  size_t max_bundles = 32;           // keep at most this many bundle dirs
  uint64_t max_bytes = 256u << 20;   // ...totalling at most this many bytes
};

struct CrashGcStats {
  size_t bundles_kept = 0;
  size_t bundles_removed = 0;
  uint64_t bytes_removed = 0;
};

// Scans `bundle_root` for bundle directories (named
// `<unixtime>-<pid>-<binary>-<cell>`; the leading timestamp orders them,
// directory mtime is the fallback for foreign names), then removes the
// oldest until both caps hold. Bundles whose timestamp is >= `protect_after`
// are never deleted and do not count toward `bundles_removed`. A missing
// root is a no-op. Safe to call from any number of concurrent processes —
// removal failures (e.g. a sibling already deleted the dir) are ignored.
CrashGcStats CollectCrashBundles(const std::string& bundle_root, const CrashBundleCaps& caps,
                                 int64_t protect_after);

}  // namespace memsentry::base

#endif  // MEMSENTRY_SRC_BASE_CRASH_HANDLER_H_

#include "src/base/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace memsentry::json {

const Value* Value::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  for (const Member& m : members_) {
    if (m.first == key) {
      return &m.second;
    }
  }
  return nullptr;
}

Value* Value::Find(std::string_view key) {
  return const_cast<Value*>(static_cast<const Value*>(this)->Find(key));
}

Value& Value::operator[](std::string_view key) {
  kind_ = Kind::kObject;
  if (Value* existing = Find(key)) {
    return *existing;
  }
  members_.emplace_back(std::string(key), Value());
  return members_.back().second;
}

double Value::NumberOr(std::string_view key, double fallback) const {
  const Value* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->number_value() : fallback;
}

std::string Value::StringOr(std::string_view key, std::string_view fallback) const {
  const Value* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->string_value() : std::string(fallback);
}

bool Value::BoolOr(std::string_view key, bool fallback) const {
  const Value* v = Find(key);
  return (v != nullptr && v->is_bool()) ? v->bool_value() : fallback;
}

std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

void AppendNumber(std::string& out, double d) {
  if (!std::isfinite(d)) {
    // JSON has no inf/nan; null is the conventional stand-in.
    out += "null";
    return;
  }
  char buf[32];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  if (ec != std::errc()) {
    out += "0";
    return;
  }
  out.append(buf, end);
}

void AppendNewlineIndent(std::string& out, int indent, int depth) {
  if (indent > 0) {
    out += '\n';
    out.append(static_cast<size_t>(indent) * static_cast<size_t>(depth), ' ');
  }
}

}  // namespace

void Value::DumpTo(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber:
      AppendNumber(out, number_);
      return;
    case Kind::kString:
      out += '"';
      out += Escape(string_);
      out += '"';
      return;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) {
          out += ',';
        }
        AppendNewlineIndent(out, indent, depth + 1);
        items_[i].DumpTo(out, indent, depth + 1);
      }
      AppendNewlineIndent(out, indent, depth);
      out += ']';
      return;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) {
          out += ',';
        }
        AppendNewlineIndent(out, indent, depth + 1);
        out += '"';
        out += Escape(members_[i].first);
        out += "\":";
        if (indent > 0) {
          out += ' ';
        }
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      AppendNewlineIndent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Value::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

namespace {

// Recursive-descent parser. Depth-limited so hostile inputs can't blow the
// stack; benchmark reports nest four or five levels deep.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<Value> Run() {
    SkipWhitespace();
    Value root;
    MEMSENTRY_RETURN_IF_ERROR(ParseValue(root, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after document");
    }
    return root;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return InvalidArgument("json: " + what + " at offset " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Status ParseValue(Value& out, int depth) {
    if (depth > kMaxDepth) {
      return Error("nesting too deep");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    const char c = text_[pos_];
    if (c == '{') {
      return ParseObject(out, depth);
    }
    if (c == '[') {
      return ParseArray(out, depth);
    }
    if (c == '"') {
      std::string s;
      MEMSENTRY_RETURN_IF_ERROR(ParseString(s));
      out = Value(std::move(s));
      return OkStatus();
    }
    if (ConsumeLiteral("true")) {
      out = Value(true);
      return OkStatus();
    }
    if (ConsumeLiteral("false")) {
      out = Value(false);
      return OkStatus();
    }
    if (ConsumeLiteral("null")) {
      out = Value();
      return OkStatus();
    }
    return ParseNumber(out);
  }

  Status ParseObject(Value& out, int depth) {
    ++pos_;  // '{'
    out = Value::Object();
    SkipWhitespace();
    if (Consume('}')) {
      return OkStatus();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      MEMSENTRY_RETURN_IF_ERROR(ParseString(key));
      SkipWhitespace();
      if (!Consume(':')) {
        return Error("expected ':' in object");
      }
      Value member;
      MEMSENTRY_RETURN_IF_ERROR(ParseValue(member, depth + 1));
      out.members().emplace_back(std::move(key), std::move(member));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return OkStatus();
      }
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(Value& out, int depth) {
    ++pos_;  // '['
    out = Value::Array();
    SkipWhitespace();
    if (Consume(']')) {
      return OkStatus();
    }
    while (true) {
      Value item;
      MEMSENTRY_RETURN_IF_ERROR(ParseValue(item, depth + 1));
      out.items().push_back(std::move(item));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return OkStatus();
      }
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string& out) {
    if (!Consume('"')) {
      return Error("expected string");
    }
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return OkStatus();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          uint32_t code = 0;
          MEMSENTRY_RETURN_IF_ERROR(ParseHex4(code));
          // Surrogate pair → one code point.
          if (code >= 0xD800 && code <= 0xDBFF && text_.substr(pos_, 2) == "\\u") {
            pos_ += 2;
            uint32_t low = 0;
            MEMSENTRY_RETURN_IF_ERROR(ParseHex4(low));
            if (low >= 0xDC00 && low <= 0xDFFF) {
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else {
              return Error("invalid low surrogate");
            }
          }
          AppendUtf8(out, code);
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseHex4(uint32_t& out) {
    if (pos_ + 4 > text_.size()) {
      return Error("truncated \\u escape");
    }
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape");
      }
    }
    return OkStatus();
  }

  static void AppendUtf8(std::string& out, uint32_t code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Status ParseNumber(Value& out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Error("expected value");
    }
    double d = 0;
    const auto [end, ec] = std::from_chars(text_.data() + start, text_.data() + pos_, d);
    if (ec != std::errc() || end != text_.data() + pos_) {
      return Error("malformed number");
    }
    out = Value(d);
    return OkStatus();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Value> Parse(std::string_view text) { return Parser(text).Run(); }

StatusOr<Value> ParseFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFound("json: cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto parsed = Parse(buffer.str());
  if (!parsed.ok()) {
    return InvalidArgument(path + ": " + parsed.status().message());
  }
  return parsed;
}

Status WriteFile(const std::string& path, const Value& value, int indent) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return PermissionDenied("json: cannot write " + path);
  }
  out << value.Dump(indent) << '\n';
  if (!out.good()) {
    return InternalError("json: short write to " + path);
  }
  return OkStatus();
}

Status WriteTextFileAtomic(const std::string& path, std::string_view text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return PermissionDenied("json: cannot write " + tmp);
    }
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    out.flush();
    if (!out.good()) {
      std::remove(tmp.c_str());
      return InternalError("json: short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return InternalError("json: cannot rename " + tmp + " into place");
  }
  return OkStatus();
}

Status WriteFileAtomic(const std::string& path, const Value& value, int indent) {
  return WriteTextFileAtomic(path, value.Dump(indent) + "\n");
}

}  // namespace memsentry::json

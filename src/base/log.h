// Minimal leveled logging. Off by default; enabled per-program via
// SetLogLevel. Keeps the simulator hot paths free of iostream formatting.
#ifndef MEMSENTRY_SRC_BASE_LOG_H_
#define MEMSENTRY_SRC_BASE_LOG_H_

#include <sstream>
#include <string>

namespace memsentry {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();
void LogMessage(LogLevel level, const char* file, int line, const std::string& message);

namespace internal {

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line) : level_(level), file_(file), line_(line) {}
  ~LogLine() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal

#define MEMSENTRY_LOG(level)                                                  \
  if (::memsentry::GetLogLevel() <= ::memsentry::LogLevel::level)             \
  ::memsentry::internal::LogLine(::memsentry::LogLevel::level, __FILE__, __LINE__)

}  // namespace memsentry

#endif  // MEMSENTRY_SRC_BASE_LOG_H_

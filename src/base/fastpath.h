// Runtime selection of the simulator fast paths (pre-decoded µop streams in
// the executor, the MMU translation grant cache). The fast paths are
// bit-identical by construction — every modeled number (cycles, stats,
// faults, safe-access refs) matches the reference paths exactly — so the
// mode only changes wall-clock. kCheck runs the fast paths with reference
// re-derivation in lockstep and aborts the process on any divergence; it is
// the differential oracle exercised by tests and the perf-smoke CI job.
#ifndef MEMSENTRY_SRC_BASE_FASTPATH_H_
#define MEMSENTRY_SRC_BASE_FASTPATH_H_

namespace memsentry::base {

enum class FastPathMode : int {
  kOff = 0,    // reference interpreter + full MMU path only
  kOn = 1,     // decoded µop streams + MMU grant cache
  kCheck = 2,  // fast paths, validated in lockstep against the reference
};

// Process-wide mode. The first read consults the MEMSENTRY_FASTPATH
// environment variable ("on"/"off"/"check", default "on"); SetFastPathMode
// overrides it (tests, --fastpath= command-line flags). Reads after
// initialization are a single relaxed atomic load, cheap enough for the
// per-access hot path.
FastPathMode GetFastPathMode();
void SetFastPathMode(FastPathMode mode);

const char* FastPathModeName(FastPathMode mode);

// Parses "on"/"1", "off"/"0" or "check". Returns false (leaving *mode
// untouched) on anything else, including nullptr.
bool ParseFastPathMode(const char* text, FastPathMode* mode);

}  // namespace memsentry::base

#endif  // MEMSENTRY_SRC_BASE_FASTPATH_H_

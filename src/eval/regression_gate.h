// The benchmark regression gate: compares a merged BENCH_RESULTS.json
// document against a committed baseline (bench/baselines/*.json) with
// per-metric relative tolerances. Fidelity metrics (paper-geomean deltas,
// per-benchmark normalized runtimes) gate hard; perf metrics (cycle totals,
// wall clock) warn until enough baselines exist to trust a trajectory; info
// metrics are recorded but never compared. Shared by tools/bench_runner and
// tests/bench_report_test.cc.
#ifndef MEMSENTRY_SRC_EVAL_REGRESSION_GATE_H_
#define MEMSENTRY_SRC_EVAL_REGRESSION_GATE_H_

#include <string>
#include <vector>

#include "src/base/json.h"

namespace memsentry::eval {

enum class MetricKind {
  kFidelity,  // reproduction-of-the-paper claims; regressions fail the gate
  kPerf,      // simulator cycle counts etc.; warn, gate once history exists
  kInfo,      // context only (wall clock, instruction budgets); never gated
};

const char* MetricKindName(MetricKind kind);
MetricKind ParseMetricKind(const std::string& name);  // unknown -> kInfo

struct GateOptions {
  double fidelity_default_tol = 0.05;  // relative; per-metric "tol" overrides
  double perf_default_tol = 0.15;
  // Once bench/baselines holds >= 2 snapshots the perf trajectory is real
  // and perf drifts gate like fidelity ones.
  bool gate_perf = false;
};

enum class Severity { kNote, kWarning, kFailure };

struct GateIssue {
  Severity severity = Severity::kNote;
  std::string metric;
  std::string message;
};

struct GateReport {
  std::vector<GateIssue> issues;
  int compared = 0;      // metrics present in both documents
  int failures = 0;      // gate-failing regressions
  int warnings = 0;      // out-of-tolerance perf drifts (while not gated)
  int new_metrics = 0;   // in results but not in baseline
  int missing = 0;       // in baseline but not in results
  bool ok() const { return failures == 0; }
  std::string Summary() const;
};

// Both documents use the merged-report schema: {"metrics": {name: {"value":
// N, "kind": "fidelity"|"perf"|"info", "tol": T?, "paper": P?}, ...}}.
// The baseline's kind and tolerance are authoritative for shared metrics.
GateReport CompareAgainstBaseline(const json::Value& results, const json::Value& baseline,
                                  const GateOptions& options = {});

// Relative deviation |measured - reference| / max(|reference|, 1e-12).
double RelativeDelta(double measured, double reference);

}  // namespace memsentry::eval

#endif  // MEMSENTRY_SRC_EVAL_REGRESSION_GATE_H_

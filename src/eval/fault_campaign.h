// Fault-containment campaigns: runs every isolation technique under every
// applicable fault site (src/sim/fault_injector.h) and classifies how the
// fault was contained. The classification a cell may report:
//
//   kDetected — the fault surfaced as the correct architectural fault or a
//     clean errno-style refusal; nothing leaked, nothing silently wrong.
//   kDegraded — the containment audit repaired or quarantined corrupted
//     protection state, or the technique downgraded along its fallback
//     chain; protection held, with a logged and countable cost.
//   kEscaped — the attacker read the secret, achieved a controlled write,
//     or the program's own legitimate path silently computed with wrong
//     data. Always a failure: bench/fault_matrix pins every cell and the
//     total escape count at zero in the regression baseline.
//
// Campaigns are deterministic: each (technique, site) cell derives its RNG
// seed from the campaign seed and the cell's names alone, so a cell replays
// bit-for-bit regardless of execution order or matrix composition.
#ifndef MEMSENTRY_SRC_EVAL_FAULT_CAMPAIGN_H_
#define MEMSENTRY_SRC_EVAL_FAULT_CAMPAIGN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/core/technique.h"
#include "src/sim/fault_injector.h"

namespace memsentry::eval {

enum class Containment {
  kDetected = 0,
  kDegraded = 1,
  kEscaped = 2,
};

const char* ContainmentName(Containment outcome);

struct FaultCellResult {
  core::TechniqueKind technique;
  sim::FaultSite site;
  Containment outcome = Containment::kEscaped;
  uint64_t cell_seed = 0;
  int repairs = 0;      // audit issues repaired in place
  int quarantines = 0;  // audit issues contained but not repairable
  int downgrades = 0;   // fallback-chain steps taken by PrepareRuntime
  std::string detail;
};

struct FaultCampaignOptions {
  uint64_t seed = 0xfa017ca3ULL;
  uint64_t region_bytes = 4096;
  // Test-only escape hook: skip the containment audit between injection and
  // probe. This reproduces exactly the desync escapes the audit exists to
  // stop, and lets the tests prove that an escape fails the regression gate.
  bool skip_containment_audit = false;
  // Crash-bundle hook: when set to "<TechniqueKindName>/<FaultSiteName>",
  // the matching cell stages a full simulation snapshot with the crash
  // handler and aborts right after injection. Deterministic by construction
  // (same seed, same cell, same abort point), so `memsentry_cli replay` on
  // the resulting bundle reproduces the identical failure.
  std::string force_crash;
};

struct FaultCampaignResult {
  std::vector<FaultCellResult> cells;
  int detected = 0;
  int degraded = 0;
  int escaped = 0;
  int repairs = 0;
  int downgrades = 0;
};

// The (technique, site) cells the standard campaign runs: every technique
// under the lost-mapping fault, plus each technique's own corruption modes
// (bounds for MPX, pkey/PKRU/TLB for MPK, EPT/TLB for VMFUNC, round keys
// for crypt, TLB/syscall refusal for mprotect, syscall exhaustion for the
// allocating techniques).
std::vector<std::pair<core::TechniqueKind, sim::FaultSite>> FaultMatrixCells();

// Runs one cell in a fresh victim process. Deterministic for a fixed
// (options.seed, kind, site) triple.
FaultCellResult RunFaultCell(core::TechniqueKind kind, sim::FaultSite site,
                             const FaultCampaignOptions& options);

// Runs every cell of FaultMatrixCells() and tallies the outcomes.
FaultCampaignResult RunFaultCampaign(const FaultCampaignOptions& options);

}  // namespace memsentry::eval

#endif  // MEMSENTRY_SRC_EVAL_FAULT_CAMPAIGN_H_

// Metric accumulation for benchmark reports, shared between the standalone
// bench binaries (through bench::Reporter) and the in-process campaign
// engine (src/eval/campaign_engine.h). A ReportBuilder collects named scalar
// metrics — fidelity, perf, info, host-perf — in insertion order; the order
// and the bit-exact values are what the suite's determinism gate compares,
// so every path that emits a given workload's metrics must route through the
// same builder calls in the same sequence.
#ifndef MEMSENTRY_SRC_EVAL_REPORT_BUILDER_H_
#define MEMSENTRY_SRC_EVAL_REPORT_BUILDER_H_

#include <cmath>
#include <string>
#include <vector>

#include "src/base/json.h"
#include "src/eval/figures.h"
#include "src/eval/regression_gate.h"
#include "src/workloads/spec_profiles.h"

namespace memsentry::eval {

// Default per-metric relative tolerances baked into every report (and thus
// into snapshots under bench/baselines/). Geomeans are tight; individual
// benchmarks wobble more across instruction budgets and compilers; cycle
// totals are perf-kind and warn-only until a second baseline exists.
inline constexpr double kGeomeanTol = 0.05;
inline constexpr double kPerBenchmarkTol = 0.15;
inline constexpr double kCyclesTol = 0.15;
inline constexpr double kMicroLatencyTol = 0.10;
// Host-side throughput (sim instr/s) swings with machine load and CPU
// generation; the wide band still catches order-of-magnitude interpreter
// regressions while staying quiet across healthy hosts.
inline constexpr double kHostThroughputTol = 0.60;

// Collects one binary's (or one engine job's) results as named metrics.
// Metric names are slash-paths, unique across the whole suite because each
// workload prefixes its own figure/table (e.g. "fig3/geomean/MPX-w").
class ReportBuilder {
 public:
  // One scalar metric. paper = NAN when the paper gives no reference value;
  // note is free-form context carried into the report.
  void Add(const std::string& name, double value, MetricKind kind, double tol,
           double paper = NAN, const std::string& note = "") {
    json::Value entry = json::Value::Object();
    entry.Set("value", value);
    entry.Set("kind", MetricKindName(kind));
    entry.Set("tol", tol);
    if (!std::isnan(paper)) {
      entry.Set("paper", paper);
    }
    if (!note.empty()) {
      entry.Set("note", note);
    }
    metrics_.Set(name, std::move(entry));
  }

  void AddFidelity(const std::string& name, double value, double tol, double paper = NAN,
                   const std::string& note = "") {
    Add(name, value, MetricKind::kFidelity, tol, paper, note);
  }

  void AddPerf(const std::string& name, double value, double tol = kCyclesTol) {
    Add(name, value, MetricKind::kPerf, tol);
  }

  void AddInfo(const std::string& name, double value) {
    Add(name, value, MetricKind::kInfo, 0.0);
  }

  // Host-dependent perf metric: tolerance-checked against the committed
  // baseline (so sustained throughput regressions surface in the gate) but
  // never a hard failure, and exempt from --check-determinism — its value
  // depends on host wall-clock speed, not on simulation state.
  void AddHostPerf(const std::string& name, double value, double tol) {
    Add(name, value, MetricKind::kPerf, tol);
    metrics_[name].Set("host", true);
  }

  // Accumulates simulated (retired) instructions executed by this workload.
  // The caller turns the total into a `<binary>/sim_instr_per_second`
  // host-perf metric — the suite's wall-clock throughput gauge.
  void AddSimulatedInstructions(double instructions) { sim_instructions_ += instructions; }

  // A whole figure: per-config geomeans (fidelity, with the paper's
  // reference), per-benchmark normalized runtimes (fidelity, looser), and
  // suite-total protected cycles (perf).
  void AddFigure(const std::string& prefix, const std::vector<FigureSeries>& series,
                 const std::vector<double>& paper_geomeans) {
    const auto profiles = workloads::SpecCpu2006();
    for (size_t i = 0; i < series.size(); ++i) {
      const auto& s = series[i];
      const double paper = i < paper_geomeans.size() ? paper_geomeans[i] : NAN;
      AddFidelity(prefix + "/geomean/" + s.config, s.geomean, kGeomeanTol, paper);
      for (size_t b = 0; b < s.normalized.size() && b < profiles.size(); ++b) {
        AddFidelity(prefix + "/norm/" + s.config + "/" + profiles[b].name, s.normalized[b],
                    kPerBenchmarkTol);
      }
      AddPerf(prefix + "/cycles/" + s.config, s.total_prot_cycles);
      AddSimulatedInstructions(s.total_instructions);
    }
  }

  double sim_instructions() const { return sim_instructions_; }
  const json::Value& metrics() const { return metrics_; }
  json::Value TakeMetrics() { return std::move(metrics_); }

 private:
  double sim_instructions_ = 0;
  json::Value metrics_ = json::Value::Object();
};

}  // namespace memsentry::eval

#endif  // MEMSENTRY_SRC_EVAL_REPORT_BUILDER_H_

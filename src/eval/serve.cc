#include "src/eval/serve.h"

#include <csignal>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace memsentry::eval {
namespace {

// One request/response line per connection round; both halves share the
// framing so the protocol stays symmetric. MSG_NOSIGNAL keeps a mid-write
// peer disconnect an EPIPE errno instead of a process-killing SIGPIPE —
// load-bearing under the chaos harness, where the coordinator abandons
// workers mid-exchange as a matter of course.
Status SendLine(int fd, const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n =
        ::send(fd, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return InternalError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return OkStatus();
}

// Reads one newline-terminated frame. Error taxonomy (the serve loop keys
// its reply-vs-drop choice off the code):
//   kNotFound           clean EOF before any bytes — peer is done
//   kInvalidArgument    EOF mid-line — truncated frame, peer died mid-write
//   kResourceExhausted  line exceeded kServeMaxLineBytes
//   kInternal           recv() error
StatusOr<std::string> RecvLine(int fd) {
  std::string line;
  char c;
  for (;;) {
    const ssize_t n = ::recv(fd, &c, 1, 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return InternalError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (line.empty()) {
        return NotFound("connection closed");
      }
      return InvalidArgument("truncated frame: peer closed mid-line after " +
                             std::to_string(line.size()) + " bytes");
    }
    if (c == '\n') {
      return line;
    }
    if (line.size() >= kServeMaxLineBytes) {
      return ResourceExhausted("line exceeds " + std::to_string(kServeMaxLineBytes) + " bytes");
    }
    line.push_back(c);
  }
}

json::Value ErrorResponse(const std::string& code, const std::string& message) {
  json::Value response = json::Value::Object();
  response.Set("ok", false);
  response.Set("code", code);
  response.Set("error", message);
  return response;
}

json::Value JobReportJson(const JobReport& report) {
  json::Value out = json::Value::Object();
  out.Set("workload", report.workload);
  out.Set("state", JobStateName(report.state));
  out.Set("status", report.status);
  out.Set("wall_seconds", report.wall_seconds);
  json::Value cells = json::Value::Array();
  for (size_t i = 0; i < report.cell_names.size(); ++i) {
    json::Value cell = json::Value::Object();
    cell.Set("name", report.cell_names[i]);
    cell.Set("seconds", report.cell_seconds[i]);
    cell.Set("restored", static_cast<bool>(report.cell_restored[i]));
    cells.Append(std::move(cell));
  }
  out.Set("cells", std::move(cells));
  return out;
}

// Builds WorkloadOptions from the shared request fields (submit and
// run_cell use the same recipe keys the run memo does).
WorkloadOptions RequestWorkloadOptions(const json::Value& request) {
  WorkloadOptions wo;
  wo.quick = request.BoolOr("quick", false);
  wo.experiment.target_instructions =
      static_cast<uint64_t>(request.NumberOr("instructions", 400'000));
  wo.experiment.seed = static_cast<uint64_t>(
      request.NumberOr("seed", static_cast<double>(wo.experiment.seed)));
  if (const json::Value* extra = request.Find("extra"); extra != nullptr && extra->is_object()) {
    for (const auto& [key, value] : extra->members()) {
      wo.extra[key] = value.is_string() ? value.string_value() : value.Dump();
    }
  }
  return wo;
}

std::string Hex64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return std::string(buf);
}

// Dispatches one parsed request. Sets *shutdown when the client asked the
// loop to exit (acknowledged before the loop tears down).
json::Value Dispatch(const ServeOptions& options, CampaignEngine& engine,
                     const json::Value& request, bool* shutdown) {
  const std::string cmd = request.StringOr("cmd", "");
  json::Value response = json::Value::Object();
  if (cmd == "ping") {
    response.Set("ok", true);
    return response;
  }
  if (cmd == "shutdown") {
    *shutdown = true;
    response.Set("ok", true);
    return response;
  }
  if (cmd == "workloads") {
    response.Set("ok", true);
    json::Value names = json::Value::Array();
    for (const Workload& workload : options.registry->workloads()) {
      names.Append(workload.name);
    }
    response.Set("workloads", std::move(names));
    return response;
  }
  if (cmd == "submit") {
    const std::string name = request.StringOr("workload", "");
    const uint64_t id = engine.Submit(name, RequestWorkloadOptions(request));
    if (id == 0) {
      return ErrorResponse("unknown_workload", "unknown workload: " + name);
    }
    response.Set("ok", true);
    response.Set("job", id);
    return response;
  }
  if (cmd == "run_cell") {
    const std::string name = request.StringOr("workload", "");
    const std::string cell_name = request.StringOr("cell", "");
    if (name.empty() || cell_name.empty()) {
      return ErrorResponse("missing_field", "run_cell needs workload and cell");
    }
    const Workload* workload = options.registry->Find(name);
    if (workload == nullptr) {
      return ErrorResponse("unknown_workload", "unknown workload: " + name);
    }
    WorkloadOptions wo = RequestWorkloadOptions(request);
    // Same forcings as CampaignEngine::Submit: the cell owns no parallelism,
    // prints nothing, and must not stage process-global crash contexts.
    wo.experiment.jobs = 1;
    wo.print = false;
    wo.crash_contexts = false;
    const std::vector<WorkloadCell> cells = workload->cells(wo);
    const WorkloadCell* cell = nullptr;
    for (const WorkloadCell& candidate : cells) {
      if (candidate.name == cell_name) {
        cell = &candidate;
        break;
      }
    }
    if (cell == nullptr) {
      return ErrorResponse("unknown_cell", "unknown cell: " + name + "/" + cell_name);
    }
    json::Value payload;
    try {
      payload = cell->run(wo);
    } catch (const std::exception& e) {
      return ErrorResponse("cell_failed", name + "/" + cell_name + ": " + e.what());
    } catch (...) {
      return ErrorResponse("cell_failed", name + "/" + cell_name + ": unknown exception");
    }
    response.Set("ok", true);
    response.Set("crc", Hex64(ServeFrameDigest(payload.Dump(0))));
    response.Set("payload", std::move(payload));
    return response;
  }
  if (cmd == "status") {
    if (const json::Value* job = request.Find("job")) {
      json::Value status = engine.JobStatus(static_cast<uint64_t>(job->number_value()));
      if (status.is_null()) {
        return ErrorResponse("unknown_job", "unknown job");
      }
      response.Set("ok", true);
      response.Set("job", std::move(status));
    } else {
      response.Set("ok", true);
      response.Set("jobs", engine.AllJobStatus());
    }
    return response;
  }
  if (cmd == "cancel") {
    const json::Value* job = request.Find("job");
    if (job == nullptr) {
      return ErrorResponse("missing_field", "cancel needs a job id");
    }
    response.Set("ok", true);
    response.Set("cancelled", engine.Cancel(static_cast<uint64_t>(job->number_value())));
    return response;
  }
  if (cmd == "wait") {
    const json::Value* job = request.Find("job");
    if (job == nullptr) {
      return ErrorResponse("missing_field", "wait needs a job id");
    }
    const JobReport* report = engine.Wait(static_cast<uint64_t>(job->number_value()));
    if (report == nullptr) {
      return ErrorResponse("unknown_job", "unknown job");
    }
    response.Set("ok", true);
    response.Set("job", JobReportJson(*report));
    response.Set("metrics", report->report.metrics());
    return response;
  }
  return ErrorResponse("unknown_cmd", "unknown cmd: " + cmd);
}

// Deterministically corrupts a serialized reply in place (garble chaos).
// The flips are keyed off the frame's own digest, avoid producing '\n'
// (which would split the frame rather than corrupt it), and always change
// at least the first byte, so a JSON parse or crc check on the other side
// is guaranteed to notice.
void GarbleFrame(std::string& frame, uint64_t key) {
  if (frame.empty()) {
    return;
  }
  for (int i = 0; i < 3; ++i) {
    const size_t pos = (key >> (i * 16)) % frame.size();
    char b = static_cast<char>(frame[pos] ^ 0x5A);
    if (b == '\n') {
      b = static_cast<char>(b ^ 0x01);
    }
    frame[pos] = b;
  }
  if (frame[0] == '{') {
    frame[0] = '!';
  }
}

}  // namespace

uint64_t ServeFrameDigest(const std::string& bytes) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a 64
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string ServeChaos::Format() const {
  if (!any()) {
    return "";
  }
  std::string out;
  const auto add = [&out](const char* mode) {
    if (!out.empty()) {
      out.push_back(',');
    }
    out += mode;
  };
  if (kill) add("kill");
  if (hang) add("hang");
  if (garble) add("garble");
  out += ":seed=" + std::to_string(seed);
  out += ":one_in=" + std::to_string(one_in);
  out += ":hang_ms=" + std::to_string(hang_ms);
  return out;
}

StatusOr<ServeChaos> ParseChaosSpec(const std::string& spec) {
  ServeChaos chaos;
  if (spec.empty()) {
    return InvalidArgument("empty chaos spec");
  }
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= spec.size()) {
    const size_t colon = spec.find(':', start);
    parts.push_back(spec.substr(start, colon == std::string::npos ? colon : colon - start));
    if (colon == std::string::npos) {
      break;
    }
    start = colon + 1;
  }
  // First segment: comma-separated mode list.
  const std::string& modes = parts[0];
  start = 0;
  while (start <= modes.size()) {
    const size_t comma = modes.find(',', start);
    const std::string mode =
        modes.substr(start, comma == std::string::npos ? comma : comma - start);
    if (mode == "kill") {
      chaos.kill = true;
    } else if (mode == "hang") {
      chaos.hang = true;
    } else if (mode == "garble") {
      chaos.garble = true;
    } else {
      return InvalidArgument("unknown chaos mode: " + mode);
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  for (size_t i = 1; i < parts.size(); ++i) {
    const size_t eq = parts[i].find('=');
    if (eq == std::string::npos) {
      return InvalidArgument("chaos option needs key=value: " + parts[i]);
    }
    const std::string key = parts[i].substr(0, eq);
    const std::string value = parts[i].substr(eq + 1);
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0') {
      return InvalidArgument("chaos option " + key + " needs a number, got: " + value);
    }
    if (key == "seed") {
      chaos.seed = parsed;
    } else if (key == "one_in") {
      if (parsed == 0) {
        return InvalidArgument("chaos one_in must be >= 1");
      }
      chaos.one_in = static_cast<uint32_t>(parsed);
    } else if (key == "hang_ms") {
      chaos.hang_ms = static_cast<uint32_t>(parsed);
    } else {
      return InvalidArgument("unknown chaos option: " + key);
    }
  }
  if (!chaos.any()) {
    return InvalidArgument("chaos spec enables no mode: " + spec);
  }
  return chaos;
}

std::string ChaosDecision(const ServeChaos& chaos, const std::string& workload,
                          const std::string& cell, uint64_t attempt) {
  if (!chaos.any() || attempt >= 2) {
    return "";  // re-dispatched attempts always run clean: progress is guaranteed
  }
  const std::string key = std::to_string(chaos.seed) + "|" + workload + "|" + cell + "|" +
                          std::to_string(attempt);
  const uint64_t h = ServeFrameDigest(key);
  if (h % chaos.one_in != 0) {
    return "";
  }
  std::vector<const char*> enabled;
  if (chaos.kill) enabled.push_back("kill");
  if (chaos.hang) enabled.push_back("hang");
  if (chaos.garble) enabled.push_back("garble");
  return enabled[(h / chaos.one_in) % enabled.size()];
}

int ServeLoop(const ServeOptions& options) {
  if (options.registry == nullptr || options.socket_path.empty()) {
    std::fprintf(stderr, "serve: registry and socket path are required\n");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options.socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "serve: socket path too long: %s\n", options.socket_path.c_str());
    return 1;
  }
  std::strncpy(addr.sun_path, options.socket_path.c_str(), sizeof(addr.sun_path) - 1);

  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::fprintf(stderr, "serve: socket: %s\n", std::strerror(errno));
    return 1;
  }
  // Bind-collision semantics: a path that still accepts connections belongs
  // to a live server — refuse to steal it. A path nobody answers on is a
  // stale socket from a crashed server; unlink and rebind.
  struct stat st{};
  if (::lstat(options.socket_path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      std::fprintf(stderr, "serve: %s exists and is not a socket\n", options.socket_path.c_str());
      ::close(listener);
      return 1;
    }
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
      const bool live =
          ::connect(probe, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0;
      ::close(probe);
      if (live) {
        std::fprintf(stderr, "serve: %s is already served by a live server\n",
                     options.socket_path.c_str());
        ::close(listener);
        return 1;
      }
    }
    ::unlink(options.socket_path.c_str());
  }
  // The socket carries submit/run_cell for a trusted local caller only:
  // create the inode 0600 (umask for the bind itself, chmod to pin the mode
  // regardless of the inherited mask).
  const mode_t saved_umask = ::umask(0177);
  const bool bound =
      ::bind(listener, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0;
  ::umask(saved_umask);
  if (!bound || ::listen(listener, 8) != 0) {
    std::fprintf(stderr, "serve: bind/listen %s: %s\n", options.socket_path.c_str(),
                 std::strerror(errno));
    ::close(listener);
    return 1;
  }
  ::chmod(options.socket_path.c_str(), 0600);

  EngineOptions engine_options;
  engine_options.jobs = options.jobs;
  CampaignEngine engine(options.registry, engine_options);
  if (!options.quiet) {
    std::fprintf(stderr, "serve: listening on %s (%d workers, %zu workloads)%s\n",
                 options.socket_path.c_str(), engine.jobs(),
                 options.registry->workloads().size(),
                 options.chaos.any() ? (" chaos=" + options.chaos.Format()).c_str() : "");
  }

  bool shutdown = false;
  int exit_status = 0;
  while (!shutdown) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) {
        continue;
      }
      std::fprintf(stderr, "serve: accept: %s\n", std::strerror(errno));
      exit_status = 1;
      break;
    }
    // Serve request lines until the client closes; each connection may carry
    // several rounds (submit, poll status, wait).
    for (;;) {
      StatusOr<std::string> line = RecvLine(conn);
      if (!line.ok()) {
        // Typed best-effort reply for frames we can classify, then drop the
        // connection — after an oversized or truncated frame there is no
        // resynchronization point in the stream.
        if (line.status().code() == StatusCode::kResourceExhausted) {
          (void)SendLine(conn, ErrorResponse("oversized_line", line.status().message()).Dump());
        } else if (line.status().code() == StatusCode::kInvalidArgument) {
          (void)SendLine(conn, ErrorResponse("truncated_frame", line.status().message()).Dump());
        }
        break;
      }
      json::Value response;
      StatusOr<json::Value> request = json::Parse(*line);
      if (!request.ok()) {
        response = ErrorResponse("bad_json", "bad request: " + request.status().message());
      } else {
        if (!options.quiet) {
          std::fprintf(stderr, "serve: %s\n", request->StringOr("cmd", "?").c_str());
        }
        response = Dispatch(options, engine, *request, &shutdown);
      }
      // Chaos harness: misbehave deterministically on first-attempt
      // run_cell replies. kill fires after the cell ran (a torn attempt —
      // work done, result lost — which is exactly what re-dispatch
      // idempotency must absorb).
      std::string chaos_mode;
      if (options.chaos.any() && request.ok() &&
          request->StringOr("cmd", "") == "run_cell") {
        chaos_mode = ChaosDecision(options.chaos, request->StringOr("workload", ""),
                                   request->StringOr("cell", ""),
                                   static_cast<uint64_t>(request->NumberOr("attempt", 1)));
      }
      if (chaos_mode == "kill") {
        if (!options.quiet) {
          std::fprintf(stderr, "serve: chaos kill\n");
        }
        ::raise(SIGKILL);
      } else if (chaos_mode == "hang") {
        if (!options.quiet) {
          std::fprintf(stderr, "serve: chaos hang %ums\n", options.chaos.hang_ms);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(options.chaos.hang_ms));
      } else if (chaos_mode == "garble") {
        std::string frame = response.Dump();
        GarbleFrame(frame, ServeFrameDigest(frame) ^ options.chaos.seed);
        if (!options.quiet) {
          std::fprintf(stderr, "serve: chaos garble\n");
        }
        (void)SendLine(conn, frame);
        break;  // drop the connection behind the corrupted frame
      }
      if (!SendLine(conn, response.Dump()).ok() || shutdown) {
        break;
      }
    }
    ::close(conn);
  }
  ::close(listener);
  ::unlink(options.socket_path.c_str());
  return exit_status;
}

StatusOr<json::Value> ServeRequest(const std::string& socket_path, const json::Value& request) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgument("socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return InternalError("connect " + socket_path + ": " + err);
  }
  Status sent = SendLine(fd, request.Dump());
  if (!sent.ok()) {
    ::close(fd);
    return sent;
  }
  StatusOr<std::string> line = RecvLine(fd);
  ::close(fd);
  if (!line.ok()) {
    return line.status();
  }
  return json::Parse(*line);
}

}  // namespace memsentry::eval

#include "src/eval/serve.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

namespace memsentry::eval {
namespace {

// One request/response line per connection round; both halves share the
// framing so the protocol stays symmetric.
Status SendLine(int fd, const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd, framed.data() + sent, framed.size() - sent, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return InternalError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return OkStatus();
}

StatusOr<std::string> RecvLine(int fd) {
  std::string line;
  char c;
  for (;;) {
    const ssize_t n = ::recv(fd, &c, 1, 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return InternalError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (line.empty()) {
        return InternalError("connection closed before a full request line");
      }
      return line;  // peer closed after the payload; treat as the line end
    }
    if (c == '\n') {
      return line;
    }
    line.push_back(c);
  }
}

json::Value ErrorResponse(const std::string& message) {
  json::Value response = json::Value::Object();
  response.Set("ok", false);
  response.Set("error", message);
  return response;
}

json::Value JobReportJson(const JobReport& report) {
  json::Value out = json::Value::Object();
  out.Set("workload", report.workload);
  out.Set("state", JobStateName(report.state));
  out.Set("status", report.status);
  out.Set("wall_seconds", report.wall_seconds);
  json::Value cells = json::Value::Array();
  for (size_t i = 0; i < report.cell_names.size(); ++i) {
    json::Value cell = json::Value::Object();
    cell.Set("name", report.cell_names[i]);
    cell.Set("seconds", report.cell_seconds[i]);
    cell.Set("restored", static_cast<bool>(report.cell_restored[i]));
    cells.Append(std::move(cell));
  }
  out.Set("cells", std::move(cells));
  return out;
}

// Dispatches one parsed request. Sets *shutdown when the client asked the
// loop to exit (acknowledged before the loop tears down).
json::Value Dispatch(const ServeOptions& options, CampaignEngine& engine,
                     const json::Value& request, bool* shutdown) {
  const std::string cmd = request.StringOr("cmd", "");
  json::Value response = json::Value::Object();
  if (cmd == "ping") {
    response.Set("ok", true);
    return response;
  }
  if (cmd == "shutdown") {
    *shutdown = true;
    response.Set("ok", true);
    return response;
  }
  if (cmd == "workloads") {
    response.Set("ok", true);
    json::Value names = json::Value::Array();
    for (const Workload& workload : options.registry->workloads()) {
      names.Append(workload.name);
    }
    response.Set("workloads", std::move(names));
    return response;
  }
  if (cmd == "submit") {
    const std::string name = request.StringOr("workload", "");
    WorkloadOptions wo;
    wo.quick = request.BoolOr("quick", false);
    wo.experiment.target_instructions =
        static_cast<uint64_t>(request.NumberOr("instructions", 400'000));
    wo.experiment.seed = static_cast<uint64_t>(
        request.NumberOr("seed", static_cast<double>(wo.experiment.seed)));
    if (const json::Value* extra = request.Find("extra"); extra != nullptr && extra->is_object()) {
      for (const auto& [key, value] : extra->members()) {
        wo.extra[key] = value.is_string() ? value.string_value() : value.Dump();
      }
    }
    const uint64_t id = engine.Submit(name, wo);
    if (id == 0) {
      return ErrorResponse("unknown workload: " + name);
    }
    response.Set("ok", true);
    response.Set("job", id);
    return response;
  }
  if (cmd == "status") {
    if (const json::Value* job = request.Find("job")) {
      json::Value status = engine.JobStatus(static_cast<uint64_t>(job->number_value()));
      if (status.is_null()) {
        return ErrorResponse("unknown job");
      }
      response.Set("ok", true);
      response.Set("job", std::move(status));
    } else {
      response.Set("ok", true);
      response.Set("jobs", engine.AllJobStatus());
    }
    return response;
  }
  if (cmd == "cancel") {
    const json::Value* job = request.Find("job");
    if (job == nullptr) {
      return ErrorResponse("cancel needs a job id");
    }
    response.Set("ok", true);
    response.Set("cancelled", engine.Cancel(static_cast<uint64_t>(job->number_value())));
    return response;
  }
  if (cmd == "wait") {
    const json::Value* job = request.Find("job");
    if (job == nullptr) {
      return ErrorResponse("wait needs a job id");
    }
    const JobReport* report = engine.Wait(static_cast<uint64_t>(job->number_value()));
    if (report == nullptr) {
      return ErrorResponse("unknown job");
    }
    response.Set("ok", true);
    response.Set("job", JobReportJson(*report));
    response.Set("metrics", report->report.metrics());
    return response;
  }
  return ErrorResponse("unknown cmd: " + cmd);
}

}  // namespace

int ServeLoop(const ServeOptions& options) {
  if (options.registry == nullptr || options.socket_path.empty()) {
    std::fprintf(stderr, "serve: registry and socket path are required\n");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options.socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "serve: socket path too long: %s\n", options.socket_path.c_str());
    return 1;
  }
  std::strncpy(addr.sun_path, options.socket_path.c_str(), sizeof(addr.sun_path) - 1);

  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::fprintf(stderr, "serve: socket: %s\n", std::strerror(errno));
    return 1;
  }
  ::unlink(options.socket_path.c_str());  // stale socket from a crashed server
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listener, 8) != 0) {
    std::fprintf(stderr, "serve: bind/listen %s: %s\n", options.socket_path.c_str(),
                 std::strerror(errno));
    ::close(listener);
    return 1;
  }

  EngineOptions engine_options;
  engine_options.jobs = options.jobs;
  CampaignEngine engine(options.registry, engine_options);
  if (!options.quiet) {
    std::fprintf(stderr, "serve: listening on %s (%d workers, %zu workloads)\n",
                 options.socket_path.c_str(), engine.jobs(),
                 options.registry->workloads().size());
  }

  bool shutdown = false;
  int exit_status = 0;
  while (!shutdown) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) {
        continue;
      }
      std::fprintf(stderr, "serve: accept: %s\n", std::strerror(errno));
      exit_status = 1;
      break;
    }
    // Serve request lines until the client closes; each connection may carry
    // several rounds (submit, poll status, wait).
    for (;;) {
      StatusOr<std::string> line = RecvLine(conn);
      if (!line.ok()) {
        break;
      }
      json::Value response;
      StatusOr<json::Value> request = json::Parse(*line);
      if (!request.ok()) {
        response = ErrorResponse("bad request: " + request.status().message());
      } else {
        if (!options.quiet) {
          std::fprintf(stderr, "serve: %s\n", request->StringOr("cmd", "?").c_str());
        }
        response = Dispatch(options, engine, *request, &shutdown);
      }
      if (!SendLine(conn, response.Dump()).ok() || shutdown) {
        break;
      }
    }
    ::close(conn);
  }
  ::close(listener);
  ::unlink(options.socket_path.c_str());
  return exit_status;
}

StatusOr<json::Value> ServeRequest(const std::string& socket_path, const json::Value& request) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgument("socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return InternalError("connect " + socket_path + ": " + err);
  }
  Status sent = SendLine(fd, request.Dump());
  if (!sent.ok()) {
    ::close(fd);
    return sent;
  }
  StatusOr<std::string> line = RecvLine(fd);
  ::close(fd);
  if (!line.ok()) {
    return line.status();
  }
  return json::Parse(*line);
}

}  // namespace memsentry::eval

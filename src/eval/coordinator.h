// ShardCoordinator — fault-tolerant fan-out of workload cells over the
// serve protocol (DESIGN.md §12, ROADMAP item 3).
//
// The coordinator spawns N `memsentry_cli serve` workers as local
// subprocesses (jobs=1 each, newline-JSON over per-worker UNIX sockets) and
// drives them with `run_cell` requests under time-bounded leases. Cells are
// pure functions of their recipe — (workload, cell, quick, instructions,
// seed, extra), the same keys the run memo hashes — so any attempt may be
// torn, repeated, or raced without affecting the result, and the merged
// report is byte-identical to a serial single-engine run at any worker
// count and under any chaos schedule.
//
// Robustness ladder (each rung catches what the one above lets through):
//   1. connect/ping with jitter-free seeded exponential backoff and a fixed
//      retry budget — a worker that never comes up is a worker failure;
//   2. lease expiry — a worker that accepts a cell but does not reply
//      within the lease is SIGKILLed, reaped, respawned, and the cell is
//      re-dispatched to a healthy worker;
//   3. reply validation — frames that fail JSON parse or the FNV-1a payload
//      digest are counted garbled and the cell re-dispatched;
//   4. quarantine — K consecutive failures retire the worker and
//      redistribute its queue;
//   5. per-cell attempt cap — a cell that keeps failing remotely runs
//      inline in the coordinator process (cells_inlined);
//   6. degradation — when every worker is quarantined the remaining cells
//      run inline serially; the suite always completes, flagged `degraded`.
#ifndef MEMSENTRY_SRC_EVAL_COORDINATOR_H_
#define MEMSENTRY_SRC_EVAL_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/base/json.h"
#include "src/eval/campaign_engine.h"
#include "src/eval/serve.h"

namespace memsentry::eval {

struct CoordinatorOptions {
  // Path to the memsentry_cli binary used to spawn `serve` workers.
  std::string worker_cli;
  // Directory for per-worker sockets and log files (created if missing).
  std::string socket_dir;
  int workers = 3;              // clamped to >= 1
  double lease_seconds = 20.0;  // per-cell reply deadline once dispatched
  int quarantine_after = 3;     // consecutive failures before a worker is retired
  int max_attempts = 4;         // remote tries per cell before it runs inline
  int connect_attempts = 8;     // ping retries per spawn (backoff 50ms doubling)
  ServeChaos chaos;             // forwarded to workers via serve --chaos
  bool quiet = false;
  // Durability hooks, mirroring EngineOptions: `restore` marks a cell done
  // at submit time with a recorded payload; `on_cell_done` streams each
  // completed cell's payload (called from the coordinator thread only).
  std::function<const json::Value*(const std::string& workload, const std::string& cell)>
      restore;
  std::function<void(const std::string& workload, const std::string& cell,
                     const json::Value& payload)>
      on_cell_done;
};

// All counters are host-timing-dependent (a loaded machine can expire a
// lease chaos never touched), so they surface as info-kind metrics only —
// never gated, never part of the determinism contract. `degraded` is the
// exception the acceptance criteria pin: all workers dead => 1.
struct CoordinatorStats {
  uint64_t cells_total = 0;
  uint64_t cells_restored = 0;
  uint64_t cells_dispatched = 0;    // run_cell requests sent (incl. re-dispatch)
  uint64_t cells_redispatched = 0;  // re-queued after a failed attempt
  uint64_t cells_inlined = 0;       // ran in-process (attempt cap or degraded)
  uint64_t lease_expiries = 0;
  uint64_t garbled_replies = 0;     // JSON parse or payload-digest failures
  uint64_t connect_retries = 0;
  uint64_t workers_respawned = 0;
  uint64_t workers_quarantined = 0;
  bool degraded = false;
};

class ShardCoordinator {
 public:
  ShardCoordinator(const WorkloadRegistry* registry, CoordinatorOptions options);
  ~ShardCoordinator();

  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;

  // Enqueues a workload's cells (same forcings as CampaignEngine::Submit).
  // Returns the job id, or 0 for an unknown workload. Submit everything
  // before Run(); the coordinator is single-shot.
  uint64_t Submit(const std::string& workload_name, const WorkloadOptions& options);

  // Spawns the fleet, drives every cell to completion (re-dispatching,
  // quarantining, and degrading as needed), assembles each job serially in
  // cell-enumeration order, and tears the fleet down. Returns the max job
  // status (0 = every workload assembled clean). The suite always
  // completes: total worker loss degrades to in-process execution.
  int Run();

  // Valid after Run(); reports are in submit order and stay alive for the
  // coordinator's lifetime. Find() is keyed by workload name.
  const std::vector<std::unique_ptr<JobReport>>& reports() const { return reports_; }
  const JobReport* Find(const std::string& workload_name) const;

  const CoordinatorStats& stats() const { return stats_; }

 private:
  struct JobRec;
  struct WorkerSlot;
  struct CellRef {
    size_t job = 0;
    size_t cell = 0;
    int attempts = 0;  // completed dispatch attempts
  };

  double Now() const;
  void SpawnWorker(WorkerSlot& worker);
  void ShutdownWorker(WorkerSlot& worker, bool graceful);
  bool TryConnect(WorkerSlot& worker);
  void DispatchCell(WorkerSlot& worker, CellRef cell);
  void WorkerFailed(WorkerSlot& worker, const char* why, bool respawn);
  void RequeueOrInline(CellRef cell);
  void RunCellInline(const CellRef& cell);
  void CompleteCell(const CellRef& cell, json::Value payload, double seconds);
  void HandleFrame(WorkerSlot& worker, const std::string& frame);
  void PollWorkers(double timeout_seconds);
  bool AllQuarantined() const;
  void RunDegraded();

  const WorkloadRegistry* registry_;
  CoordinatorOptions options_;
  std::vector<std::unique_ptr<JobRec>> jobs_;
  std::vector<std::unique_ptr<JobReport>> reports_;
  std::vector<std::unique_ptr<WorkerSlot>> workers_;
  std::vector<CellRef> queue_;  // FIFO of cells awaiting dispatch
  CoordinatorStats stats_;
  bool ran_ = false;
};

}  // namespace memsentry::eval

#endif  // MEMSENTRY_SRC_EVAL_COORDINATOR_H_

#include "src/eval/campaign_engine.h"

#include <chrono>
#include <cstdio>
#include <cstring>

#include "src/eval/run_memo.h"

namespace memsentry::eval {

void WorkloadRegistry::Register(Workload workload) {
  workloads_.push_back(std::move(workload));
}

const Workload* WorkloadRegistry::Find(std::string_view name) const {
  for (const Workload& workload : workloads_) {
    if (workload.name == name) {
      return &workload;
    }
  }
  return nullptr;
}

int RunWorkloadStandalone(const Workload& workload, const WorkloadOptions& options,
                          ReportBuilder& report) {
  WorkloadOptions cell_options = options;
  // Cells are single-threaded by contract; the fan-out below owns the
  // workload's parallelism budget.
  cell_options.experiment.jobs = 1;
  const std::vector<WorkloadCell> cells = workload.cells(options);
  const int jobs = workload.serial_standalone ? 1 : options.experiment.jobs;
  std::vector<json::Value> payloads = ParallelMap(
      jobs, cells.size(), [&](size_t i) { return cells[i].run(cell_options); });
  return workload.assemble(options, payloads, report);
}

void ParseWorkloadArgs(int argc, char** argv, WorkloadOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [arg](const char* flag) -> const char* {
      const size_t n = std::strlen(flag);
      return std::strncmp(arg, flag, n) == 0 ? arg + n : nullptr;
    };
    if (std::strcmp(arg, "--quick") == 0) {
      options.quick = true;
    } else if (const char* v = value("--seed=")) {
      options.extra["seed"] = v;
    } else if (const char* v = value("--campaigns=")) {
      options.extra["campaigns"] = v;
    } else if (std::strcmp(arg, "--policy=off") == 0) {
      options.extra["policy"] = "off";
    } else if (std::strcmp(arg, "--skip-audit") == 0) {
      options.extra["skip_audit"] = "1";
    } else if (const char* v = value("--step-budget=")) {
      options.extra["step_budget"] = v;
    } else if (std::strcmp(arg, "--allow-escapes") == 0) {
      options.extra["allow_escapes"] = "1";
    } else if (const char* v = value("--force-crash=")) {
      options.extra["force_crash"] = v;
    }
  }
}

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "?";
}

struct CampaignEngine::Job {
  uint64_t id = 0;
  const Workload* workload = nullptr;
  WorkloadOptions options;
  std::vector<WorkloadCell> cells;
  std::vector<json::Value> payloads;
  JobReport report;
  size_t remaining = 0;   // cells not yet finished (guarded by engine mutex)
  size_t done_cells = 0;  // restored + run (guarded by engine mutex)
  bool cancelled = false;
  bool cell_failed = false;
  std::chrono::steady_clock::time_point start;
};

CampaignEngine::CampaignEngine(const WorkloadRegistry* registry, EngineOptions options)
    : registry_(registry), options_(std::move(options)), jobs_(ResolveJobs(options_.jobs)) {
  queues_.resize(static_cast<size_t>(jobs_));
  if (options_.run_memo) {
    RunMemo::Global().Reset();
    RunMemo::Enable(true);
  }
  pool_ = std::make_unique<ThreadPool>(jobs_);
  for (int w = 0; w < jobs_; ++w) {
    pool_->Submit([this, w] { WorkerLoop(static_cast<size_t>(w)); });
  }
}

CampaignEngine::~CampaignEngine() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  pool_.reset();  // joins the workers; queued cells drain first
  if (options_.run_memo) {
    RunMemo::Enable(false);
  }
}

uint64_t CampaignEngine::Submit(const std::string& workload_name,
                                const WorkloadOptions& options) {
  const Workload* workload = registry_ != nullptr ? registry_->Find(workload_name) : nullptr;
  if (workload == nullptr) {
    return 0;
  }
  auto job = std::make_shared<Job>();
  job->workload = workload;
  job->options = options;
  job->options.experiment.jobs = 1;
  job->options.print = false;
  job->options.crash_contexts = false;
  job->start = std::chrono::steady_clock::now();
  job->cells = workload->cells(job->options);
  job->payloads.resize(job->cells.size());
  job->report.workload = workload->name;
  job->report.state = JobState::kQueued;
  job->report.cell_seconds.assign(job->cells.size(), 0.0);
  job->report.cell_restored.assign(job->cells.size(), false);
  for (const WorkloadCell& cell : job->cells) {
    job->report.cell_names.push_back(cell.name);
  }

  // Restored cells (a resumed suite journal) complete at submit time.
  std::vector<size_t> pending;
  for (size_t i = 0; i < job->cells.size(); ++i) {
    const json::Value* restored =
        options_.restore ? options_.restore(workload->name, job->cells[i].name) : nullptr;
    if (restored != nullptr) {
      job->payloads[i] = *restored;
      job->report.cell_restored[i] = true;
    } else {
      pending.push_back(i);
    }
  }
  job->remaining = pending.size();
  job->done_cells = job->cells.size() - pending.size();

  bool finished = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job->id = next_job_id_++;
    job->report.state = JobState::kRunning;
    jobs_by_id_[job->id] = job;
    stats_.cells_restored += job->done_cells;
    if (pending.empty()) {
      finished = true;
    } else {
      for (const size_t cell : pending) {
        queues_[next_queue_ % queues_.size()].push_back(Task{job, cell});
        ++next_queue_;
      }
    }
  }
  if (finished) {
    FinishJob(job);
  } else {
    work_ready_.notify_all();
  }
  return job->id;
}

bool CampaignEngine::PopTask(size_t worker, Task& task) {
  auto& own = queues_[worker];
  if (!own.empty()) {
    task = std::move(own.front());
    own.pop_front();
    return true;
  }
  // Steal from the back of a sibling's deque — the classic split: owners
  // drain fronts, thieves take the coldest queued cell.
  for (size_t i = 1; i < queues_.size(); ++i) {
    auto& victim = queues_[(worker + i) % queues_.size()];
    if (!victim.empty()) {
      task = std::move(victim.back());
      victim.pop_back();
      ++stats_.steals;
      return true;
    }
  }
  return false;
}

void CampaignEngine::WorkerLoop(size_t worker) {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] {
        if (stopping_) {
          return true;
        }
        for (const auto& queue : queues_) {
          if (!queue.empty()) {
            return true;
          }
        }
        return false;
      });
      if (!PopTask(worker, task)) {
        if (stopping_) {
          return;
        }
        continue;
      }
    }
    RunCell(task);
  }
}

void CampaignEngine::RunCell(const Task& task) {
  Job& job = *task.job;
  bool cancelled;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cancelled = job.cancelled;
  }
  json::Value payload;
  double seconds = 0;
  bool failed = false;
  if (!cancelled) {
    const auto start = std::chrono::steady_clock::now();
    try {
      payload = job.cells[task.cell].run(job.options);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "campaign_engine: %s/%s threw: %s\n", job.workload->name.c_str(),
                   job.cells[task.cell].name.c_str(), e.what());
      failed = true;
    } catch (...) {
      std::fprintf(stderr, "campaign_engine: %s/%s threw\n", job.workload->name.c_str(),
                   job.cells[task.cell].name.c_str());
      failed = true;
    }
    seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (!failed && options_.on_cell_done) {
      options_.on_cell_done(job.workload->name, job.cells[task.cell].name, payload);
    }
  }
  bool finished = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job.payloads[task.cell] = std::move(payload);
    job.report.cell_seconds[task.cell] = seconds;
    job.cell_failed = job.cell_failed || failed;
    ++job.done_cells;
    if (!cancelled) {
      ++stats_.cells_run;
    }
    finished = --job.remaining == 0;
  }
  if (finished) {
    FinishJob(task.job);
  }
}

void CampaignEngine::FinishJob(const std::shared_ptr<Job>& job) {
  // Assembly runs on whichever thread completed the job's last cell —
  // serial per job, in cell-enumeration order, so the metric stream is
  // schedule-independent.
  bool cancelled;
  bool failed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cancelled = job->cancelled;
    failed = job->cell_failed;
  }
  int status = 1;
  if (!cancelled && !failed) {
    status = job->workload->assemble(job->options, job->payloads, job->report.report);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job->report.status = failed ? 1 : (cancelled ? 0 : status);
    job->report.state = cancelled  ? JobState::kCancelled
                        : failed   ? JobState::kFailed
                                   : JobState::kDone;
    job->report.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - job->start).count();
  }
  job_done_.notify_all();
}

json::Value CampaignEngine::StatusLocked(const Job& job) const {
  json::Value status = json::Value::Object();
  status.Set("job", job.id);
  status.Set("workload", job.report.workload);
  status.Set("state", JobStateName(job.report.state));
  status.Set("status", job.report.status);
  status.Set("cells_done", static_cast<uint64_t>(job.done_cells));
  status.Set("cells_total", static_cast<uint64_t>(job.cells.size()));
  return status;
}

json::Value CampaignEngine::JobStatus(uint64_t job_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_by_id_.find(job_id);
  if (it == jobs_by_id_.end()) {
    return json::Value();
  }
  return StatusLocked(*it->second);
}

json::Value CampaignEngine::AllJobStatus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  json::Value all = json::Value::Array();
  for (const auto& [id, job] : jobs_by_id_) {
    all.Append(StatusLocked(*job));
  }
  return all;
}

bool CampaignEngine::Cancel(uint64_t job_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_by_id_.find(job_id);
  if (it == jobs_by_id_.end()) {
    return false;
  }
  Job& job = *it->second;
  if (job.report.state != JobState::kQueued && job.report.state != JobState::kRunning) {
    return false;
  }
  job.cancelled = true;
  return true;
}

const JobReport* CampaignEngine::Wait(uint64_t job_id) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_by_id_.find(job_id);
  if (it == jobs_by_id_.end()) {
    return nullptr;
  }
  const std::shared_ptr<Job> job = it->second;
  job_done_.wait(lock, [&] {
    return job->report.state == JobState::kDone || job->report.state == JobState::kFailed ||
           job->report.state == JobState::kCancelled;
  });
  return &job->report;
}

void CampaignEngine::WaitAll() {
  std::unique_lock<std::mutex> lock(mutex_);
  job_done_.wait(lock, [&] {
    for (const auto& [id, job] : jobs_by_id_) {
      if (job->report.state == JobState::kQueued || job->report.state == JobState::kRunning) {
        return false;
      }
    }
    return true;
  });
}

EngineStats CampaignEngine::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace memsentry::eval

#include "src/eval/run_memo.h"

#include <atomic>
#include <cstring>

namespace memsentry::eval {

namespace {

std::atomic<bool> g_enabled{false};

// Each 8-byte word is xor-folded and multiplied by a stream-specific odd
// constant with an extra shift-xor for diffusion (the plain FNV step
// diffuses one byte per multiply; folding 8 bytes needs the wider mix).
// Different constants per stream give the independence a 128-bit combined
// key needs over structured input.
uint64_t Mix(uint64_t h, uint64_t v, uint64_t prime) {
  h ^= v;
  h *= prime;
  h ^= h >> 29;
  return h;
}

}  // namespace

void RunKeyHasher::Bytes(const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t v;
    std::memcpy(&v, p + i, sizeof(v));
    a_ = Mix(a_, v, 0x100000001b3ULL);
    b_ = Mix(b_, v, 0x9E3779B97F4A7C15ULL);
  }
  if (i < n) {
    uint64_t tail = 0;
    std::memcpy(&tail, p + i, n - i);
    // The length folds into the tail word so "abc" and "abc\0" differ.
    a_ = Mix(a_, tail ^ static_cast<uint64_t>(n - i), 0x100000001b3ULL);
    b_ = Mix(b_, tail ^ (static_cast<uint64_t>(n - i) << 8), 0x9E3779B97F4A7C15ULL);
  }
}

RunMemo& RunMemo::Global() {
  static RunMemo* memo = new RunMemo();
  return *memo;
}

void RunMemo::Enable(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

bool RunMemo::Enabled() { return g_enabled.load(std::memory_order_relaxed); }

std::optional<RunMemo::Result> RunMemo::Lookup(const Key& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second;
}

void RunMemo::Insert(const Key& key, const Result& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.emplace(key, result);
}

RunMemo::Stats RunMemo::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void RunMemo::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  stats_ = Stats{};
}

}  // namespace memsentry::eval

#include "src/eval/coordinator.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>
#include <utility>

namespace memsentry::eval {
namespace {

constexpr double kConnectBackoffStart = 0.05;  // doubles per retry, no jitter
constexpr double kConnectBackoffCap = 1.6;
constexpr double kPollSliceMax = 0.2;   // upper bound on one poll() wait
constexpr double kPollSliceMin = 0.005;  // lower bound: no busy spin

double MonotonicSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Client-side framing twin of serve.cc's SendLine: MSG_NOSIGNAL so a worker
// dying mid-exchange surfaces as EPIPE, not SIGPIPE.
bool SendFrame(int fd, const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n =
        ::send(fd, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

struct ShardCoordinator::JobRec {
  uint64_t id = 0;
  const Workload* workload = nullptr;
  WorkloadOptions options;
  std::vector<WorkloadCell> cells;
  std::vector<json::Value> payloads;
  bool cell_failed = false;
  size_t remaining = 0;  // cells not yet completed
  double start = 0;
};

struct ShardCoordinator::WorkerSlot {
  enum class State { kDown, kConnectWait, kPingWait, kIdle, kBusy, kQuarantined };

  int index = 0;
  State state = State::kDown;
  pid_t pid = -1;
  int fd = -1;
  std::string socket_path;
  std::string log_path;
  std::string rxbuf;
  int spawns = 0;
  int connect_tries = 0;
  double backoff = kConnectBackoffStart;
  double next_connect_at = 0;
  double deadline = 0;  // ping deadline (kPingWait) or lease deadline (kBusy)
  int consecutive_failures = 0;
  CellRef inflight;
  double dispatch_time = 0;
};

ShardCoordinator::ShardCoordinator(const WorkloadRegistry* registry, CoordinatorOptions options)
    : registry_(registry), options_(std::move(options)) {
  options_.workers = std::max(options_.workers, 1);
  options_.quarantine_after = std::max(options_.quarantine_after, 1);
  options_.max_attempts = std::max(options_.max_attempts, 1);
  options_.connect_attempts = std::max(options_.connect_attempts, 1);
}

ShardCoordinator::~ShardCoordinator() {
  for (auto& worker : workers_) {
    ShutdownWorker(*worker, /*graceful=*/false);
  }
}

double ShardCoordinator::Now() const { return MonotonicSeconds(); }

uint64_t ShardCoordinator::Submit(const std::string& workload_name,
                                  const WorkloadOptions& options) {
  if (ran_ || registry_ == nullptr) {
    return 0;
  }
  const Workload* workload = registry_->Find(workload_name);
  if (workload == nullptr) {
    return 0;
  }
  auto job = std::make_unique<JobRec>();
  auto report = std::make_unique<JobReport>();
  job->id = jobs_.size() + 1;
  job->workload = workload;
  job->options = options;
  // Same forcings as CampaignEngine::Submit: cells own no parallelism,
  // print nothing, stage no process-global crash contexts.
  job->options.experiment.jobs = 1;
  job->options.print = false;
  job->options.crash_contexts = false;
  job->start = Now();
  job->cells = workload->cells(job->options);
  job->payloads.resize(job->cells.size());
  report->workload = workload->name;
  report->state = JobState::kRunning;
  report->cell_seconds.assign(job->cells.size(), 0.0);
  report->cell_restored.assign(job->cells.size(), false);
  for (const WorkloadCell& cell : job->cells) {
    report->cell_names.push_back(cell.name);
  }

  const size_t job_index = jobs_.size();
  for (size_t i = 0; i < job->cells.size(); ++i) {
    const json::Value* restored =
        options_.restore ? options_.restore(workload->name, job->cells[i].name) : nullptr;
    if (restored != nullptr) {
      job->payloads[i] = *restored;
      report->cell_restored[i] = true;
      ++stats_.cells_restored;
    } else {
      queue_.push_back(CellRef{job_index, i, 0});
      ++job->remaining;
    }
  }
  stats_.cells_total += job->cells.size();
  jobs_.push_back(std::move(job));
  reports_.push_back(std::move(report));
  return jobs_.back()->id;
}

void ShardCoordinator::SpawnWorker(WorkerSlot& worker) {
  const double now = Now();
  ++worker.spawns;
  if (worker.spawns > 1) {
    ++stats_.workers_respawned;
  }
  // A fresh socket path per spawn sidesteps every rebind race with the
  // previous incarnation's inode.
  worker.socket_path = options_.socket_dir + "/worker-" + std::to_string(worker.index) + "." +
                       std::to_string(worker.spawns) + ".sock";
  worker.log_path = options_.socket_dir + "/worker-" + std::to_string(worker.index) + ".log";
  worker.rxbuf.clear();
  worker.connect_tries = 0;
  worker.backoff = kConnectBackoffStart;
  worker.next_connect_at = now + kConnectBackoffStart;

  const pid_t pid = ::fork();
  if (pid < 0) {
    // Treat a fork failure like a connect failure: the retry/quarantine
    // ladder decides whether this worker survives.
    worker.state = WorkerSlot::State::kDown;
    WorkerFailed(worker, "fork failed", /*respawn=*/true);
    return;
  }
  if (pid == 0) {
    const int log_fd =
        ::open(worker.log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0600);
    if (log_fd >= 0) {
      ::dup2(log_fd, STDOUT_FILENO);
      ::dup2(log_fd, STDERR_FILENO);
      ::close(log_fd);
    }
    const std::string chaos = options_.chaos.Format();
    std::vector<const char*> argv = {options_.worker_cli.c_str(), "serve",
                                     "--socket",                  worker.socket_path.c_str(),
                                     "--jobs",                    "1",
                                     "--quiet"};
    if (!chaos.empty()) {
      argv.push_back("--chaos");
      argv.push_back(chaos.c_str());
    }
    argv.push_back(nullptr);
    ::execv(options_.worker_cli.c_str(), const_cast<char* const*>(argv.data()));
    std::fprintf(stderr, "coordinator worker: execv %s: %s\n", options_.worker_cli.c_str(),
                 std::strerror(errno));
    ::_exit(127);
  }
  worker.pid = pid;
  worker.state = WorkerSlot::State::kConnectWait;
  if (!options_.quiet) {
    std::fprintf(stderr, "coordinator: worker %d spawn %d (pid %d) on %s\n", worker.index,
                 worker.spawns, static_cast<int>(pid), worker.socket_path.c_str());
  }
}

void ShardCoordinator::ShutdownWorker(WorkerSlot& worker, bool graceful) {
  if (worker.fd >= 0) {
    if (graceful) {
      json::Value request = json::Value::Object();
      request.Set("cmd", "shutdown");
      (void)SendFrame(worker.fd, request.Dump());
    }
    ::close(worker.fd);
    worker.fd = -1;
  }
  if (worker.pid > 0) {
    ::kill(worker.pid, SIGKILL);
    int status = 0;
    while (::waitpid(worker.pid, &status, 0) < 0 && errno == EINTR) {
    }
    worker.pid = -1;
  }
  if (!worker.socket_path.empty()) {
    ::unlink(worker.socket_path.c_str());
  }
}

bool ShardCoordinator::TryConnect(WorkerSlot& worker) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (worker.socket_path.size() >= sizeof(addr.sun_path)) {
    return false;
  }
  std::strncpy(addr.sun_path, worker.socket_path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return false;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  json::Value ping = json::Value::Object();
  ping.Set("cmd", "ping");
  if (!SendFrame(fd, ping.Dump())) {
    ::close(fd);
    return false;
  }
  worker.fd = fd;
  worker.rxbuf.clear();
  worker.state = WorkerSlot::State::kPingWait;
  worker.deadline = Now() + options_.lease_seconds;
  return true;
}

void ShardCoordinator::DispatchCell(WorkerSlot& worker, CellRef cell) {
  JobRec& job = *jobs_[cell.job];
  ++cell.attempts;
  ++stats_.cells_dispatched;
  worker.inflight = cell;
  worker.state = WorkerSlot::State::kBusy;
  worker.dispatch_time = Now();
  worker.deadline = worker.dispatch_time + options_.lease_seconds;

  json::Value request = json::Value::Object();
  request.Set("cmd", "run_cell");
  request.Set("workload", job.workload->name);
  request.Set("cell", job.cells[cell.cell].name);
  request.Set("quick", job.options.quick);
  request.Set("instructions", static_cast<double>(job.options.experiment.target_instructions));
  request.Set("seed", static_cast<double>(job.options.experiment.seed));
  json::Value extra = json::Value::Object();
  for (const auto& [key, value] : job.options.extra) {
    extra.Set(key, value);
  }
  request.Set("extra", std::move(extra));
  request.Set("attempt", static_cast<uint64_t>(cell.attempts));
  if (!SendFrame(worker.fd, request.Dump())) {
    WorkerFailed(worker, "send failed", /*respawn=*/true);
  }
}

// One failure rung: requeue any in-flight cell, tear down the connection
// (and the process, when `respawn`), bump the consecutive-failure count,
// and either quarantine the worker or put it back on the spawn/connect
// ladder.
void ShardCoordinator::WorkerFailed(WorkerSlot& worker, const char* why, bool respawn) {
  if (!options_.quiet) {
    std::fprintf(stderr, "coordinator: worker %d failed (%s)\n", worker.index, why);
  }
  if (worker.state == WorkerSlot::State::kBusy) {
    RequeueOrInline(worker.inflight);
  }
  if (worker.fd >= 0) {
    ::close(worker.fd);
    worker.fd = -1;
  }
  worker.rxbuf.clear();
  ++worker.consecutive_failures;
  if (worker.consecutive_failures >= options_.quarantine_after) {
    ShutdownWorker(worker, /*graceful=*/false);
    worker.state = WorkerSlot::State::kQuarantined;
    ++stats_.workers_quarantined;
    if (!options_.quiet) {
      std::fprintf(stderr, "coordinator: worker %d quarantined after %d failures\n",
                   worker.index, worker.consecutive_failures);
    }
    return;
  }
  if (respawn) {
    ShutdownWorker(worker, /*graceful=*/false);
    worker.state = WorkerSlot::State::kDown;  // respawned on the next tick
  } else {
    // The process is healthy (e.g. it deliberately dropped the connection
    // behind a garbled frame); reconnect with a fresh backoff ladder.
    worker.state = WorkerSlot::State::kConnectWait;
    worker.connect_tries = 0;
    worker.backoff = kConnectBackoffStart;
    worker.next_connect_at = Now();
  }
}

void ShardCoordinator::RequeueOrInline(CellRef cell) {
  if (cell.attempts >= options_.max_attempts) {
    // Attempt cap: a cell the fleet keeps failing runs in-process — the
    // livelock guard for cells genuinely slower than the lease.
    RunCellInline(cell);
    return;
  }
  ++stats_.cells_redispatched;
  queue_.push_back(cell);
}

void ShardCoordinator::RunCellInline(const CellRef& cell) {
  JobRec& job = *jobs_[cell.job];
  ++stats_.cells_inlined;
  const double start = Now();
  json::Value payload;
  bool failed = false;
  try {
    payload = job.cells[cell.cell].run(job.options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "coordinator: %s/%s threw inline: %s\n", job.workload->name.c_str(),
                 job.cells[cell.cell].name.c_str(), e.what());
    failed = true;
  } catch (...) {
    std::fprintf(stderr, "coordinator: %s/%s threw inline\n", job.workload->name.c_str(),
                 job.cells[cell.cell].name.c_str());
    failed = true;
  }
  if (failed) {
    job.cell_failed = true;
    --job.remaining;
    return;
  }
  CompleteCell(cell, std::move(payload), Now() - start);
}

void ShardCoordinator::CompleteCell(const CellRef& cell, json::Value payload, double seconds) {
  JobRec& job = *jobs_[cell.job];
  JobReport& report = *reports_[cell.job];
  job.payloads[cell.cell] = std::move(payload);
  report.cell_seconds[cell.cell] = seconds;
  --job.remaining;
  if (options_.on_cell_done) {
    options_.on_cell_done(job.workload->name, job.cells[cell.cell].name,
                          job.payloads[cell.cell]);
  }
}

void ShardCoordinator::HandleFrame(WorkerSlot& worker, const std::string& frame) {
  StatusOr<json::Value> reply = json::Parse(frame);
  if (worker.state == WorkerSlot::State::kPingWait) {
    if (!reply.ok() || !reply->BoolOr("ok", false)) {
      WorkerFailed(worker, "bad ping reply", /*respawn=*/true);
      return;
    }
    worker.state = WorkerSlot::State::kIdle;
    return;
  }
  if (worker.state != WorkerSlot::State::kBusy) {
    return;  // unsolicited frame; ignore
  }
  if (!reply.ok()) {
    ++stats_.garbled_replies;
    WorkerFailed(worker, "garbled reply (parse)", /*respawn=*/false);
    return;
  }
  const CellRef cell = worker.inflight;
  JobRec& job = *jobs_[cell.job];
  if (!reply->BoolOr("ok", false)) {
    // A typed error from a healthy worker. Cells are deterministic, so a
    // cell_failed (or unknown_*) verdict will repeat anywhere — mirror the
    // engine: mark the job failed, don't burn retries.
    std::fprintf(stderr, "coordinator: %s/%s failed remotely: %s (%s)\n",
                 job.workload->name.c_str(), job.cells[cell.cell].name.c_str(),
                 reply->StringOr("error", "?").c_str(), reply->StringOr("code", "?").c_str());
    job.cell_failed = true;
    --job.remaining;
    worker.state = WorkerSlot::State::kIdle;
    worker.consecutive_failures = 0;
    return;
  }
  const json::Value* payload = reply->Find("payload");
  const std::string crc_hex = reply->StringOr("crc", "");
  const uint64_t crc = std::strtoull(crc_hex.c_str(), nullptr, 16);
  if (payload == nullptr || crc_hex.empty() ||
      ServeFrameDigest(payload->Dump(0)) != crc) {
    // Parsed, but the payload doesn't match its digest: a corrupted frame
    // that happened to stay valid JSON. Never let it into the report.
    ++stats_.garbled_replies;
    WorkerFailed(worker, "garbled reply (digest)", /*respawn=*/false);
    return;
  }
  CompleteCell(cell, *payload, Now() - worker.dispatch_time);
  worker.state = WorkerSlot::State::kIdle;
  worker.consecutive_failures = 0;
}

void ShardCoordinator::PollWorkers(double timeout_seconds) {
  std::vector<pollfd> fds;
  std::vector<WorkerSlot*> owners;
  for (auto& worker : workers_) {
    if (worker->fd >= 0) {
      fds.push_back(pollfd{worker->fd, POLLIN, 0});
      owners.push_back(worker.get());
    }
  }
  const int timeout_ms = static_cast<int>(timeout_seconds * 1000.0);
  if (fds.empty()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(timeout_ms));
    return;
  }
  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready <= 0) {
    return;  // timeout or EINTR; deadlines are handled by the caller
  }
  for (size_t i = 0; i < fds.size(); ++i) {
    WorkerSlot& worker = *owners[i];
    if (fds[i].revents == 0 || worker.fd != fds[i].fd) {
      continue;  // no event, or the slot was torn down by an earlier failure
    }
    char chunk[65536];
    const ssize_t n = ::recv(worker.fd, chunk, sizeof(chunk), 0);
    if (n < 0 && (errno == EINTR || errno == EAGAIN)) {
      continue;
    }
    if (n <= 0) {
      // EOF or a hard socket error: the worker died (chaos kill, crash) or
      // dropped us; the respawn ladder takes it from here.
      WorkerFailed(worker, "connection lost", /*respawn=*/true);
      continue;
    }
    worker.rxbuf.append(chunk, static_cast<size_t>(n));
    if (worker.rxbuf.size() > kServeMaxLineBytes) {
      WorkerFailed(worker, "oversized reply", /*respawn=*/true);
      continue;
    }
    size_t newline;
    while (worker.fd >= 0 && (newline = worker.rxbuf.find('\n')) != std::string::npos) {
      const std::string frame = worker.rxbuf.substr(0, newline);
      worker.rxbuf.erase(0, newline + 1);
      HandleFrame(worker, frame);
    }
  }
}

bool ShardCoordinator::AllQuarantined() const {
  for (const auto& worker : workers_) {
    if (worker->state != WorkerSlot::State::kQuarantined) {
      return false;
    }
  }
  return !workers_.empty();
}

void ShardCoordinator::RunDegraded() {
  stats_.degraded = true;
  if (!options_.quiet) {
    std::fprintf(stderr,
                 "coordinator: every worker quarantined; degrading to in-process execution "
                 "(%zu cells left)\n",
                 queue_.size());
  }
  std::vector<CellRef> remaining;
  remaining.swap(queue_);
  for (const CellRef& cell : remaining) {
    RunCellInline(cell);
  }
}

const JobReport* ShardCoordinator::Find(const std::string& workload_name) const {
  for (const auto& report : reports_) {
    if (report->workload == workload_name) {
      return report.get();
    }
  }
  return nullptr;
}

int ShardCoordinator::Run() {
  if (ran_) {
    return 1;
  }
  ran_ = true;
  std::error_code ec;
  std::filesystem::create_directories(options_.socket_dir, ec);

  const auto cells_outstanding = [this] {
    if (!queue_.empty()) {
      return true;
    }
    for (const auto& worker : workers_) {
      if (worker->state == WorkerSlot::State::kBusy) {
        return true;
      }
    }
    return false;
  };

  if (!queue_.empty()) {
    for (int i = 0; i < options_.workers; ++i) {
      auto worker = std::make_unique<WorkerSlot>();
      worker->index = i;
      workers_.push_back(std::move(worker));
    }
  }

  while (cells_outstanding()) {
    if (AllQuarantined()) {
      RunDegraded();
      break;
    }
    const double now = Now();
    double next_deadline = now + kPollSliceMax;
    for (auto& worker : workers_) {
      switch (worker->state) {
        case WorkerSlot::State::kDown:
          SpawnWorker(*worker);
          break;
        case WorkerSlot::State::kConnectWait:
          if (now >= worker->next_connect_at) {
            if (!TryConnect(*worker)) {
              ++stats_.connect_retries;
              ++worker->connect_tries;
              if (worker->connect_tries >= options_.connect_attempts) {
                WorkerFailed(*worker, "connect budget exhausted", /*respawn=*/true);
              } else {
                worker->backoff = std::min(worker->backoff * 2.0, kConnectBackoffCap);
                worker->next_connect_at = now + worker->backoff;
              }
            }
          }
          break;
        default:
          break;
      }
      if (worker->state == WorkerSlot::State::kIdle && !queue_.empty()) {
        const CellRef cell = queue_.front();
        queue_.erase(queue_.begin());
        DispatchCell(*worker, cell);
      }
      if ((worker->state == WorkerSlot::State::kBusy ||
           worker->state == WorkerSlot::State::kPingWait) &&
          now >= worker->deadline) {
        if (worker->state == WorkerSlot::State::kBusy) {
          ++stats_.lease_expiries;
          WorkerFailed(*worker, "lease expired", /*respawn=*/true);
        } else {
          WorkerFailed(*worker, "ping deadline expired", /*respawn=*/true);
        }
      }
      if (worker->state == WorkerSlot::State::kBusy ||
          worker->state == WorkerSlot::State::kPingWait) {
        next_deadline = std::min(next_deadline, worker->deadline);
      } else if (worker->state == WorkerSlot::State::kConnectWait) {
        next_deadline = std::min(next_deadline, worker->next_connect_at);
      }
    }
    if (!cells_outstanding()) {
      break;
    }
    const double timeout =
        std::clamp(next_deadline - Now(), kPollSliceMin, kPollSliceMax);
    PollWorkers(timeout);
  }

  for (auto& worker : workers_) {
    ShutdownWorker(*worker, /*graceful=*/true);
  }

  // Assembly: serial, in submit order, each job's payloads in
  // cell-enumeration order — the same path CampaignEngine::FinishJob takes,
  // so the metric stream is transport-independent.
  int exit_status = 0;
  for (size_t j = 0; j < jobs_.size(); ++j) {
    JobRec& job = *jobs_[j];
    JobReport& report = *reports_[j];
    int status = 1;
    if (!job.cell_failed) {
      status = job.workload->assemble(job.options, job.payloads, report.report);
    }
    report.status = job.cell_failed ? 1 : status;
    report.state = job.cell_failed ? JobState::kFailed : JobState::kDone;
    report.wall_seconds = Now() - job.start;
    exit_status = std::max(exit_status, report.status);
  }
  return exit_status;
}

}  // namespace memsentry::eval

// CampaignEngine — the persistent in-process suite engine (DESIGN.md §11).
//
// The bench binaries' bodies are extracted into registered Workloads: each
// enumerates its experiment cells (one (config, profile) pair, one fault
// cell, one tenant sweep point, ...) and assembles the cell payloads into
// the exact metric stream its standalone binary emits. The engine schedules
// every submitted workload's cells onto one warm pool of workers with work
// stealing at cell granularity: each worker owns a deque fed round-robin at
// submit time, pops its own front, and steals from the back of a sibling's
// deque when it runs dry — no worker idles while any workload has runnable
// cells, so a straggler workload (fig3's 48 cells) soaks up every worker
// instead of serializing behind binary-granular scheduling.
//
// Determinism contract: cells are pure functions of their WorkloadOptions
// (each builds its own machine/process/module from the deterministic seed;
// the engine forces experiment.jobs = 1 inside cells), and assembly runs
// serially in cell-enumeration order once the last cell lands. Metric
// values and order are therefore bit-identical for every worker count and
// steal schedule — the property tests/campaign_engine_test.cc pins.
//
// Durability: the engine itself is storage-agnostic. EngineOptions::restore
// lets a caller (tools/bench_runner's suite journal) mark cells as already
// done with a recorded payload, and on_cell_done streams each completed
// cell's payload back out, so a kill -9 mid-suite resumes at cell — not
// binary — granularity. Mid-cell durability composes through the existing
// checkpoint fields of ExperimentOptions (PR 5 snapshots).
#ifndef MEMSENTRY_SRC_EVAL_CAMPAIGN_ENGINE_H_
#define MEMSENTRY_SRC_EVAL_CAMPAIGN_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/json.h"
#include "src/base/thread_pool.h"
#include "src/eval/figures.h"
#include "src/eval/report_builder.h"

namespace memsentry::eval {

// Options handed to every cell run and to assembly.
struct WorkloadOptions {
  ExperimentOptions experiment;
  // The workload was invoked in --quick mode (shrinks sweeps, not budgets).
  bool quick = false;
  // Print the human-readable tables (standalone binaries; the engine and
  // serve mode keep workloads silent).
  bool print = false;
  // Stage base::CrashContext / write escape bundles. Only sound when cells
  // run one at a time in their own process (the crash-context staging area
  // is process-global), so the engine leaves it off.
  bool crash_contexts = false;
  // Workload-specific flags ("seed", "campaigns", "policy", ...), parsed by
  // ParseWorkloadArgs from the standalone argv or supplied by the runner.
  std::map<std::string, std::string> extra;
};

// One independently schedulable unit of a workload. `run` must be a pure
// function of the options: no shared mutable state, single-threaded, and
// its JSON payload must round-trip losslessly (json numbers serialize via
// shortest-round-trip, so doubles survive bit-exactly).
struct WorkloadCell {
  std::string name;  // stable across runs; journal key and timing label
  std::function<json::Value(const WorkloadOptions&)> run;
};

struct Workload {
  std::string name;  // the bench binary's name, e.g. "fig3_address"
  // Standalone runs stay serial (cells stage process-global crash contexts
  // or must interleave prints with execution order).
  bool serial_standalone = false;
  std::function<std::vector<WorkloadCell>(const WorkloadOptions&)> cells;
  // Serial pass over the payloads in cell-enumeration order: prints the
  // human tables (when options.print) and emits the metric stream. Returns
  // the workload's exit status (nonzero = the binary would have failed).
  std::function<int(const WorkloadOptions&, const std::vector<json::Value>&, ReportBuilder&)>
      assemble;
};

class WorkloadRegistry {
 public:
  void Register(Workload workload);
  const Workload* Find(std::string_view name) const;
  const std::vector<Workload>& workloads() const { return workloads_; }

 private:
  std::vector<Workload> workloads_;
};

// Runs one workload the way its standalone binary does: cells fanned out
// over ParallelMap (serial when the workload demands it), then assembly.
int RunWorkloadStandalone(const Workload& workload, const WorkloadOptions& options,
                          ReportBuilder& report);

// Parses the workload-specific argv flags the bench binaries accept
// (--quick, --seed=, --campaigns=, --policy=off, --skip-audit,
// --step-budget=, --allow-escapes, --force-crash=) into options.quick /
// options.extra. Unknown arguments are ignored, matching the binaries'
// historical leniency.
void ParseWorkloadArgs(int argc, char** argv, WorkloadOptions& options);

enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };
const char* JobStateName(JobState state);

// The finished form of one submitted workload.
struct JobReport {
  std::string workload;
  JobState state = JobState::kQueued;
  int status = 0;           // assemble()'s return; 1 when a cell threw
  double wall_seconds = 0;  // submit-to-assembled host wall
  std::vector<std::string> cell_names;
  std::vector<double> cell_seconds;  // per-cell run wall; 0 for restored cells
  std::vector<bool> cell_restored;
  ReportBuilder report;
};

struct EngineOptions {
  int jobs = 0;  // worker threads; <= 0 = hardware_concurrency
  // Enable the cross-cell run memo (src/eval/run_memo.h) for the engine's
  // lifetime. On construction the memo is reset, so hit statistics are
  // scoped to this engine.
  bool run_memo = true;
  // Durability hooks. `restore` is consulted once per cell at submit time; a
  // non-null payload marks the cell done without running it. `on_cell_done`
  // fires after each cell completes (from worker threads — the callee
  // serializes). Either may be empty.
  std::function<const json::Value*(const std::string& workload, const std::string& cell)>
      restore;
  std::function<void(const std::string& workload, const std::string& cell,
                     const json::Value& payload)>
      on_cell_done;
};

struct EngineStats {
  uint64_t cells_run = 0;
  uint64_t cells_restored = 0;
  uint64_t steals = 0;  // cells executed by a worker other than their owner
};

class CampaignEngine {
 public:
  CampaignEngine(const WorkloadRegistry* registry, EngineOptions options);
  // Drains all submitted work, then stops the workers.
  ~CampaignEngine();

  CampaignEngine(const CampaignEngine&) = delete;
  CampaignEngine& operator=(const CampaignEngine&) = delete;

  // Enqueues a workload's cells. Returns the job id, or 0 for an unknown
  // workload name. experiment.jobs is forced to 1 inside cells (the engine
  // owns the parallelism); print/crash_contexts are forced off.
  uint64_t Submit(const std::string& workload_name, const WorkloadOptions& options);

  // {"job", "workload", "state", "status", "cells_done", "cells_total"} —
  // null for an unknown id.
  json::Value JobStatus(uint64_t job_id) const;
  json::Value AllJobStatus() const;

  // Marks a job cancelled: queued cells are skipped (in-flight cells finish)
  // and assembly never runs. Returns false for unknown or finished jobs.
  bool Cancel(uint64_t job_id);

  // Blocks until the job reaches a terminal state. nullptr for unknown ids;
  // the report stays valid for the engine's lifetime.
  const JobReport* Wait(uint64_t job_id);
  void WaitAll();

  EngineStats stats() const;
  int jobs() const { return jobs_; }

 private:
  struct Job;
  struct Task {
    std::shared_ptr<Job> job;
    size_t cell = 0;
  };

  void WorkerLoop(size_t worker);
  bool PopTask(size_t worker, Task& task);  // mutex_ held
  void RunCell(const Task& task);
  void FinishJob(const std::shared_ptr<Job>& job);
  json::Value StatusLocked(const Job& job) const;  // mutex_ held

  const WorkloadRegistry* registry_;
  EngineOptions options_;
  int jobs_;
  std::unique_ptr<ThreadPool> pool_;

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable job_done_;
  std::vector<std::deque<Task>> queues_;  // one per worker
  std::map<uint64_t, std::shared_ptr<Job>> jobs_by_id_;
  uint64_t next_job_id_ = 1;
  size_t next_queue_ = 0;  // round-robin cell distribution cursor
  bool stopping_ = false;
  EngineStats stats_;
};

}  // namespace memsentry::eval

#endif  // MEMSENTRY_SRC_EVAL_CAMPAIGN_ENGINE_H_

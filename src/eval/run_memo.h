// Cross-cell execution memo for the campaign engine (src/eval/campaign_engine.h).
//
// Many figure cells execute byte-identical baseline pipelines: a baseline
// run is independent of the technique being evaluated, so Figure 3
// re-builds and re-executes the same uninstrumented 401.bzip2 baseline once
// per (technique, mode) column, and the MPK/VMFUNC columns of Figures 4-6
// share their defense-only baselines per profile. The memo keys a completed
// run by its construction *recipe* — every input the pipeline constructor
// and executor read (profile fields, synthesis seed and budget, effective
// safe-region geometry, defense scenario, run budget) — hashed BEFORE any
// pipeline work, so a hit skips program synthesis, process preparation, and
// interpretation outright, not just the executor loop. Pipeline
// construction and the executor are both deterministic functions of the
// recipe, so replaying a hit is provably value-preserving, not an
// approximation. Key assembly lives at the call sites (figures.cc), which
// know which recipe fields their pipelines actually observe.
//
// The memo is process-global but OFF by default: fork-mode bench binaries
// keep their historical cost profile (each binary's wall-clock is a gated
// trajectory), and only the in-process engine turns it on for the duration
// of a suite run.
#ifndef MEMSENTRY_SRC_EVAL_RUN_MEMO_H_
#define MEMSENTRY_SRC_EVAL_RUN_MEMO_H_

#include <cstdint>
#include <cstddef>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace memsentry::eval {

class RunMemo {
 public:
  // 128-bit key: two independent FNV-1a variants over the same bytes, so a
  // single-hash collision cannot alias two distinct cells.
  struct Key {
    uint64_t lo = 0;
    uint64_t hi = 0;
    bool operator==(const Key& other) const { return lo == other.lo && hi == other.hi; }
  };

  // The full observable outcome of eval's Execute() fast path.
  struct Result {
    bool ok = false;
    double cycles = 0;
    uint64_t instructions = 0;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    double HitRate() const {
      const uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  static RunMemo& Global();

  // Process-wide switch consulted by figures.cc's baseline memo. Off by
  // default.
  static void Enable(bool on);
  static bool Enabled();

  std::optional<Result> Lookup(const Key& key);
  void Insert(const Key& key, const Result& result);
  Stats stats() const;

  // Drops all entries and zeroes the stats (engine start).
  void Reset();

 private:
  struct KeyHash {
    size_t operator()(const Key& key) const {
      return static_cast<size_t>(key.lo ^ (key.hi * 0x9e3779b97f4a7c15ULL));
    }
  };

  mutable std::mutex mutex_;
  std::unordered_map<Key, Result, KeyHash> entries_;
  Stats stats_;
};

// Incremental 128-bit recipe hasher: two independent word-at-a-time mix
// streams over the same bytes, so a single-stream collision cannot alias
// two distinct recipes. Feed it every input the memoized computation reads,
// in a fixed order, then Finish().
class RunKeyHasher {
 public:
  void Bytes(const void* data, size_t n);
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void F64(double v) { Bytes(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U64(s.size());
    Bytes(s.data(), s.size());
  }
  RunMemo::Key Finish() const { return RunMemo::Key{a_, b_}; }

 private:
  uint64_t a_ = 1469598103934665603ULL;
  uint64_t b_ = 1469598103934665603ULL ^ 0x5bd1e9955bd1e995ULL;
};

}  // namespace memsentry::eval

#endif  // MEMSENTRY_SRC_EVAL_RUN_MEMO_H_

#include "src/eval/figures.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "src/base/stats_util.h"
#include "src/base/thread_pool.h"
#include "src/core/memsentry.h"
#include "src/defenses/event_annotator.h"
#include "src/defenses/shadow_stack.h"
#include "src/eval/run_memo.h"
#include "src/sim/executor.h"
#include "src/sim/snapshot.h"
#include "src/workloads/synth.h"

namespace memsentry::eval {

using workloads::PrepareWorkloadProcess;
using workloads::SpecCpu2006;
using workloads::SynthesizeSpecProgram;
using workloads::SynthOptions;
namespace {

struct Run {
  bool ok = false;
  Cycles cycles = 0;
  uint64_t instructions = 0;
};

// Filesystem-safe checkpoint filename for a cell label.
std::string CheckpointPath(const std::string& dir, const std::string& label) {
  std::string name;
  for (const char c : label) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    name += ok ? c : '-';
  }
  return dir + "/" + name + ".snap";
}

Run Finish(const sim::RunResult& result) {
  return Run{result.halted && !result.fault.has_value(), result.cycles, result.instructions};
}

// One cell execution. With checkpointing enabled the run proceeds in
// interval-sized slices, persisting a full simulation snapshot after each
// slice and resuming from the newest one on re-entry. Resume is TOTAL-budget
// based (Executor::Resume), so the final RunResult is bit-identical to an
// uninterrupted executor.Run() — same cycle accumulation order, same stats.
Run Execute(sim::Process& process, const ir::Module& module,
            const ExperimentOptions& options, const std::string& label) {
  sim::Executor executor(&process, &module);
  sim::RunConfig rc;
  if (options.checkpoint_interval == 0 || options.checkpoint_dir.empty()) {
    return Finish(executor.Run(rc));
  }
  const uint64_t total_budget = rc.max_instructions;
  const std::string path = CheckpointPath(options.checkpoint_dir, label);
  sim::RunResult partial;
  bool resuming = false;
  if (auto blob = sim::ReadSnapshotFile(path); blob.ok()) {
    sim::RunResult loaded;
    sim::SnapshotInfo info;
    const Status restored =
        sim::LoadSnapshot(blob.value(), &process, &loaded, nullptr, nullptr, &info);
    // A snapshot for a different cell or a corrupt blob is ignored (the
    // checksum in the header rejects torn files before any state mutates);
    // the cell simply restarts from its deterministic beginning.
    if (restored.ok() && info.label == label && loaded.hit_instruction_limit &&
        loaded.cursor.valid) {
      partial = std::move(loaded);
      resuming = true;
    }
  }
  for (;;) {
    const uint64_t done = resuming ? partial.instructions : 0;
    rc.max_instructions = std::min(total_budget, done + options.checkpoint_interval);
    const sim::RunResult result =
        resuming ? executor.Resume(rc, partial) : executor.Run(rc);
    if (!result.hit_instruction_limit || rc.max_instructions >= total_budget) {
      std::remove(path.c_str());
      return Finish(result);
    }
    (void)sim::WriteSnapshotFile(
        path, sim::SaveSnapshot(process, &result, nullptr, nullptr, label));
    partial = result;
    resuming = true;
  }
}

ir::Module CachedSynthesize(const SpecProfile& profile, const SynthOptions& synth);

// Baseline: the synthesized program plus (for domain scenarios) the defense
// pass, but no isolation. The paper's SafeStack observation holds here too:
// the defense's own cost appears in both numerator and denominator.
struct Pipeline {
  sim::Machine machine;
  std::unique_ptr<sim::Process> process;
  std::unique_ptr<core::MemSentry> memsentry;
  ir::Module module;
  VirtAddr region_base = 0;

  Pipeline(const SpecProfile& profile, core::TechniqueKind kind,
           const ExperimentOptions& options, bool with_isolation) {
    process = std::make_unique<sim::Process>(&machine);
    if (with_isolation && kind == core::TechniqueKind::kVmfunc) {
      // Dune wraps the whole process; its residual cost (syscall->hypercall,
      // nested walks) is part of VMFUNC's overhead, as in the paper.
      Status dune = process->EnableDune();
      (void)dune;
    }
    Status prepared = PrepareWorkloadProcess(*process, profile);
    (void)prepared;
    core::MemSentryConfig config;
    config.technique = kind;
    config.options = options.instrument;
    memsentry = std::make_unique<core::MemSentry>(process.get(), config);
    // The paper's crypt figures protect "a single native 128-bit value";
    // page-granular techniques get a page.
    const uint64_t region_bytes = kind == core::TechniqueKind::kCrypt ? 16 : 4096;
    auto region = memsentry->allocator().Alloc("defense-metadata", region_bytes);
    if (region.ok()) {
      region_base = region.value()->base;
    }
    SynthOptions synth;
    synth.target_instructions = options.target_instructions;
    synth.seed = options.seed;
    module = RunMemo::Enabled() ? CachedSynthesize(profile, synth)
                                : SynthesizeSpecProgram(profile, synth);
  }

  Status Protect() { return memsentry->Protect(module); }
};

Status ApplyDefense(Pipeline& p, DomainScenario scenario) {
  switch (scenario) {
    case DomainScenario::kCallRet: {
      defenses::ShadowStackPass pass(p.region_base);
      return pass.Run(p.module);
    }
    case DomainScenario::kIndirectBranch: {
      defenses::EventAnnotatorPass pass(defenses::EventKind::kIndirectBranch, p.region_base);
      return pass.Run(p.module);
    }
    case DomainScenario::kSyscall: {
      defenses::EventAnnotatorPass pass(defenses::EventKind::kSyscall, p.region_base);
      return pass.Run(p.module);
    }
  }
  return OkStatus();
}

// Recipe key for a baseline (with_isolation == false) pipeline. A baseline
// never calls Protect(), so of the technique under evaluation it observes
// only what SafeRegionAllocator::Alloc reads: the requested region size
// (16 bytes for crypt, one page otherwise), the technique's granularity
// rounding, and whether placement is InfoHide's probabilistic mmap. Keying
// on that effective geometry — rather than the raw kind — is what lets the
// MPK and VMFUNC columns of a domain figure, and cross-workload repeats
// like the mprotect baseline sweep, share one baseline per profile.
// Everything else the pipeline constructor, the defense pass, and the
// executor read is hashed explicitly: all profile fields, the synthesis
// seed and budget, the scenario, and the run budget. instrument options are
// deliberately absent — only Protect() reads them.
RunMemo::Key BaselineRecipeKey(const SpecProfile& profile, core::TechniqueKind kind,
                               int scenario_tag, const ExperimentOptions& options,
                               uint64_t region_size_override) {
  const uint64_t region_bytes = kind == core::TechniqueKind::kCrypt ? 16 : 4096;
  const uint64_t granularity = core::CreateTechnique(kind)->limits().granularity;
  const uint64_t rounded = (region_bytes + granularity - 1) / granularity * granularity;
  RunKeyHasher h;
  HashSpecProfile(h, profile);
  h.U64(static_cast<uint64_t>(scenario_tag) + 1);  // -1 == address-based
  h.U64(options.target_instructions);
  h.U64(options.seed);
  h.U64(rounded);
  h.U64(kind == core::TechniqueKind::kInfoHide);
  h.U64(region_size_override);
  h.U64(sim::RunConfig{}.max_instructions);
  return h.Finish();
}

// One synthesized program per (profile, synthesis options): synthesis reads
// neither the technique nor the isolation flag, so the engine's cells
// re-derive byte-identical modules dozens of times per profile. Entries are
// returned by value — every pipeline rewrites its own copy through defense
// and MemSentry passes. Content-keyed, so entries stay valid across engine
// runs in one process (serve mode reuses them); only enabled alongside the
// run memo so fork-mode binaries keep their historical cost profile.
ir::Module CachedSynthesize(const SpecProfile& profile, const SynthOptions& synth) {
  struct KeyHash {
    size_t operator()(const RunMemo::Key& k) const {
      return static_cast<size_t>(k.lo ^ (k.hi * 0x9e3779b97f4a7c15ULL));
    }
  };
  static std::mutex* mutex = new std::mutex();
  static auto* cache = new std::unordered_map<RunMemo::Key, ir::Module, KeyHash>();
  RunKeyHasher h;
  HashSpecProfile(h, profile);
  h.U64(synth.target_instructions);
  h.U64(synth.seed);
  h.U64(static_cast<uint64_t>(synth.num_callees));
  h.F64(synth.safe_accesses_per_ki);
  h.U64(synth.safe_region_base);
  h.U64(synth.safe_region_size);
  const RunMemo::Key key = h.Finish();
  std::lock_guard<std::mutex> lock(*mutex);
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache->emplace(key, SynthesizeSpecProgram(profile, synth)).first;
  }
  return it->second;
}

// Consults the run memo before any pipeline work: a hit replays the
// recorded outcome without synthesizing, preparing, or interpreting
// anything. Checkpointed runs bypass the memo — their value is the
// durability side effect, which a replay would skip.
template <typename MakeRun>
Run MemoizedBaseline(const ExperimentOptions& options, const RunMemo::Key& key,
                     MakeRun&& make) {
  const bool checkpointing =
      options.checkpoint_interval != 0 && !options.checkpoint_dir.empty();
  if (!RunMemo::Enabled() || checkpointing) {
    return make();
  }
  RunMemo& memo = RunMemo::Global();
  if (const auto hit = memo.Lookup(key)) {
    return Run{hit->ok, hit->cycles, hit->instructions};
  }
  const Run run = make();
  memo.Insert(key, RunMemo::Result{run.ok, run.cycles, run.instructions});
  return run;
}

}  // namespace

const char* DomainScenarioName(DomainScenario scenario) {
  switch (scenario) {
    case DomainScenario::kCallRet:
      return "call/ret";
    case DomainScenario::kIndirectBranch:
      return "indirect-branch";
    case DomainScenario::kSyscall:
      return "syscall";
  }
  return "?";
}

ExperimentResult RunAddressBasedExperimentFull(const SpecProfile& profile,
                                               core::TechniqueKind kind, core::ProtectMode mode,
                                               const ExperimentOptions& options) {
  const std::string label = std::string(profile.name) + "/" + core::TechniqueKindName(kind) +
                            "/mode" + std::to_string(static_cast<int>(mode));
  // Baseline: plain program on a fresh machine.
  const Run base = MemoizedBaseline(
      options, BaselineRecipeKey(profile, kind, /*scenario_tag=*/-1, options, 0), [&] {
        Pipeline baseline(profile, kind, options, /*with_isolation=*/false);
        return Execute(*baseline.process, baseline.module, options, label + "/base");
      });
  if (!base.ok) {
    return {};
  }
  // Protected: same program, instrumented.
  ExperimentOptions configured = options;
  configured.instrument.mode = mode;
  Pipeline protected_run(profile, kind, configured, /*with_isolation=*/true);
  if (!protected_run.Protect().ok()) {
    return {};
  }
  const Run isolated =
      Execute(*protected_run.process, protected_run.module, options, label + "/prot");
  if (!isolated.ok) {
    return {};
  }
  return ExperimentResult{isolated.cycles / base.cycles, base.cycles, isolated.cycles,
                          static_cast<double>(base.instructions),
                          static_cast<double>(isolated.instructions)};
}

double RunAddressBasedExperiment(const SpecProfile& profile, core::TechniqueKind kind,
                                 core::ProtectMode mode, const ExperimentOptions& options) {
  return RunAddressBasedExperimentFull(profile, kind, mode, options).normalized;
}

ExperimentResult RunDomainBasedExperimentFull(const SpecProfile& profile,
                                              core::TechniqueKind kind, DomainScenario scenario,
                                              const ExperimentOptions& options) {
  const std::string label = std::string(profile.name) + "/" + core::TechniqueKindName(kind) +
                            "/" + DomainScenarioName(scenario);
  // Baseline: program + defense pass, no isolation.
  const Run base = MemoizedBaseline(
      options,
      BaselineRecipeKey(profile, kind, static_cast<int>(scenario), options, 0), [&] {
        Pipeline baseline(profile, kind, options, /*with_isolation=*/false);
        if (!ApplyDefense(baseline, scenario).ok()) {
          return Run{};
        }
        return Execute(*baseline.process, baseline.module, options, label + "/base");
      });
  if (!base.ok) {
    return {};
  }
  // Protected: defense pass + Prepare + MemSentry pass.
  Pipeline protected_run(profile, kind, options, /*with_isolation=*/true);
  if (!ApplyDefense(protected_run, scenario).ok()) {
    return {};
  }
  if (!protected_run.Protect().ok()) {
    return {};
  }
  const Run isolated =
      Execute(*protected_run.process, protected_run.module, options, label + "/prot");
  if (!isolated.ok) {
    return {};
  }
  return ExperimentResult{isolated.cycles / base.cycles, base.cycles, isolated.cycles,
                          static_cast<double>(base.instructions),
                          static_cast<double>(isolated.instructions)};
}

double RunDomainBasedExperiment(const SpecProfile& profile, core::TechniqueKind kind,
                                DomainScenario scenario, const ExperimentOptions& options) {
  return RunDomainBasedExperimentFull(profile, kind, scenario, options).normalized;
}

const std::vector<AddressSweepConfig>& AddressSweepConfigs() {
  using core::ProtectMode;
  using core::TechniqueKind;
  static const std::vector<AddressSweepConfig>* configs = new std::vector<AddressSweepConfig>{
      {"MPX-w", TechniqueKind::kMpx, ProtectMode::kWriteOnly},
      {"SFI-w", TechniqueKind::kSfi, ProtectMode::kWriteOnly},
      {"MPX-r", TechniqueKind::kMpx, ProtectMode::kReadOnly},
      {"SFI-r", TechniqueKind::kSfi, ProtectMode::kReadOnly},
      {"MPX-rw", TechniqueKind::kMpx, ProtectMode::kReadWrite},
      {"SFI-rw", TechniqueKind::kSfi, ProtectMode::kReadWrite},
  };
  return *configs;
}

const std::vector<DomainSweepConfig>& DomainSweepConfigs() {
  using core::TechniqueKind;
  static const std::vector<DomainSweepConfig>* configs = new std::vector<DomainSweepConfig>{
      {"MPK", TechniqueKind::kMpk},
      {"VMFUNC", TechniqueKind::kVmfunc},
      {"crypt", TechniqueKind::kCrypt},
  };
  return *configs;
}

// Serial config-major assembly (cells[c * profiles + p]): sums and geomeans
// see operands in the same order as a serial sweep — floating point stays
// byte-stable no matter how the cells were scheduled. Shared by the sweeps
// below and the campaign engine's per-cell figure workloads.
std::vector<FigureSeries> AssembleFigureSeries(const std::vector<const char*>& config_names,
                                               size_t profiles,
                                               const std::vector<ExperimentResult>& cells) {
  std::vector<FigureSeries> series;
  for (size_t c = 0; c < config_names.size(); ++c) {
    FigureSeries s;
    s.config = config_names[c];
    for (size_t p = 0; p < profiles; ++p) {
      const ExperimentResult& r = cells[c * profiles + p];
      s.normalized.push_back(r.normalized);
      s.total_base_cycles += r.base_cycles;
      s.total_prot_cycles += r.prot_cycles;
      s.total_instructions += r.base_instructions + r.prot_instructions;
    }
    s.geomean = GeoMean(s.normalized);
    series.push_back(std::move(s));
  }
  return series;
}

namespace {

// The sweeps fan every (config, profile) cell out as an independent task:
// each cell constructs its own Machine/Process/Module pair from the
// deterministic seed (inside the Run*ExperimentFull pipelines), so tasks
// share no mutable state and the cell results are bit-identical for any
// jobs value.
std::vector<FigureSeries> SweepAddress(const ExperimentOptions& options) {
  const auto& configs = AddressSweepConfigs();
  const auto profiles = SpecCpu2006();
  std::vector<const char*> names;
  for (const AddressSweepConfig& config : configs) {
    names.push_back(config.name);
  }
  const std::vector<ExperimentResult> cells =
      ParallelMap(options.jobs, configs.size() * profiles.size(), [&](size_t i) {
        const AddressSweepConfig& config = configs[i / profiles.size()];
        const SpecProfile& profile = profiles[i % profiles.size()];
        return RunAddressBasedExperimentFull(profile, config.kind, config.mode, options);
      });
  return AssembleFigureSeries(names, profiles.size(), cells);
}

std::vector<FigureSeries> SweepDomain(DomainScenario scenario,
                                      const ExperimentOptions& options) {
  const auto& configs = DomainSweepConfigs();
  const auto profiles = SpecCpu2006();
  std::vector<const char*> names;
  for (const DomainSweepConfig& config : configs) {
    names.push_back(config.name);
  }
  const std::vector<ExperimentResult> cells =
      ParallelMap(options.jobs, configs.size() * profiles.size(), [&](size_t i) {
        const DomainSweepConfig& config = configs[i / profiles.size()];
        const SpecProfile& profile = profiles[i % profiles.size()];
        return RunDomainBasedExperimentFull(profile, config.kind, scenario, options);
      });
  return AssembleFigureSeries(names, profiles.size(), cells);
}

}  // namespace

std::vector<FigureSeries> RunFigure3(const ExperimentOptions& options) {
  return SweepAddress(options);
}
std::vector<FigureSeries> RunFigure4(const ExperimentOptions& options) {
  return SweepDomain(DomainScenario::kCallRet, options);
}
std::vector<FigureSeries> RunFigure5(const ExperimentOptions& options) {
  return SweepDomain(DomainScenario::kIndirectBranch, options);
}
std::vector<FigureSeries> RunFigure6(const ExperimentOptions& options) {
  return SweepDomain(DomainScenario::kSyscall, options);
}

std::vector<CryptSizePoint> RunCryptSizeSweep(const SpecProfile& profile,
                                              const std::vector<uint64_t>& sizes,
                                              const ExperimentOptions& options) {
  // Each size is an independent task (own machines, deterministic seed);
  // failed sizes surface as region_bytes == 0 and are filtered out in input
  // order, preserving the serial loop's skip semantics.
  const std::vector<CryptSizePoint> raw =
      ParallelMap(options.jobs, sizes.size(), [&](size_t i) -> CryptSizePoint {
        const uint64_t size = sizes[i];
        const std::string label =
            std::string(profile.name) + "/crypt-size-" + std::to_string(size);
        // Baseline: defense only; the region size is irrelevant without crypt
        // but is part of the recorded state, so it keys the memo.
        const Run base = MemoizedBaseline(
            options,
            BaselineRecipeKey(profile, core::TechniqueKind::kCrypt,
                              static_cast<int>(DomainScenario::kCallRet), options, size),
            [&]() -> Run {
              Pipeline base_pipeline(profile, core::TechniqueKind::kCrypt, options, false);
              base_pipeline.process->safe_regions()[0].size = size;
              if (!ApplyDefense(base_pipeline, DomainScenario::kCallRet).ok()) {
                return {};
              }
              return Execute(*base_pipeline.process, base_pipeline.module, options,
                             label + "/base");
            });
        // Protected with the resized region.
        Pipeline prot(profile, core::TechniqueKind::kCrypt, options, true);
        auto& region = prot.process->safe_regions()[0];
        // Grow the region (remap additional pages if needed).
        const uint64_t old_pages = PageAlignUp(region.size) >> kPageShift;
        const uint64_t new_pages = PageAlignUp(size) >> kPageShift;
        if (new_pages > old_pages) {
          (void)prot.process->MapRange(region.base + old_pages * kPageSize,
                                       new_pages - old_pages, machine::PageFlags::Data());
        }
        region.size = size;
        if (!ApplyDefense(prot, DomainScenario::kCallRet).ok()) {
          return {};
        }
        if (!prot.Protect().ok()) {
          return {};
        }
        const Run isolated = Execute(*prot.process, prot.module, options, label + "/prot");
        if (!base.ok || !isolated.ok) {
          return {};
        }
        return CryptSizePoint{size, isolated.cycles / base.cycles, isolated.cycles,
                              static_cast<double>(base.instructions + isolated.instructions)};
      });
  std::vector<CryptSizePoint> points;
  for (const CryptSizePoint& p : raw) {
    if (p.region_bytes != 0) {
      points.push_back(p);
    }
  }
  return points;
}

double RunMprotectBaseline(const SpecProfile& profile, const ExperimentOptions& options) {
  return RunDomainBasedExperiment(profile, core::TechniqueKind::kMprotect,
                                  DomainScenario::kCallRet, options);
}

void HashSpecProfile(RunKeyHasher& h, const SpecProfile& profile) {
  h.Str(profile.name);
  h.U64(profile.is_cpp);
  h.F64(profile.loads_per_ki);
  h.F64(profile.stores_per_ki);
  h.F64(profile.calls_per_ki);
  h.F64(profile.indirect_frac);
  h.F64(profile.syscalls_per_ki);
  h.F64(profile.vec_frac);
  h.U64(static_cast<uint64_t>(profile.vec_pressure));
  h.U64(profile.ws_kb);
  h.F64(profile.cold_frac);
  h.F64(profile.mem_exposure);
}

ir::Module SynthesizeSpecProgramCached(const SpecProfile& profile, const SynthOptions& synth) {
  return RunMemo::Enabled() ? CachedSynthesize(profile, synth)
                            : SynthesizeSpecProgram(profile, synth);
}

}  // namespace memsentry::eval

#include "src/eval/fault_campaign.h"

#include <cstdlib>
#include <cstring>

#include "src/aes/aes128.h"
#include "src/base/crash_handler.h"
#include "src/core/advisor.h"
#include "src/core/memsentry.h"
#include "src/mpx/mpx.h"
#include "src/sim/kernel.h"
#include "src/sim/snapshot.h"

namespace memsentry::eval {
namespace {

// Same secret as the attack harness: recognizable in a leak report.
inline constexpr uint64_t kSecret = 0x5ec4e7c0de5ec4e7ULL;

// Per-cell seed: campaign seed mixed with an FNV-1a hash of the cell's
// names. Order-independent — running one cell standalone replays exactly
// the same injection as running it inside the full matrix.
uint64_t CellSeed(uint64_t campaign_seed, core::TechniqueKind kind, sim::FaultSite site) {
  uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](const char* s) {
    for (; *s != '\0'; ++s) {
      h ^= static_cast<uint8_t>(*s);
      h *= 0x100000001b3ULL;
    }
  };
  mix(core::TechniqueKindName(kind));
  mix("/");
  mix(sim::FaultSiteName(site));
  return campaign_seed ^ h;
}

// What the probes observed, accumulated across the attacker primitives and
// the legitimate access path.
struct ProbeSignals {
  bool leaked = false;          // attacker read the secret plaintext
  bool corrupted = false;       // attacker landed a controlled write
  bool fault_observed = false;  // an architectural fault or clean refusal
  bool legit_wrong = false;     // legitimate path silently saw wrong data
  std::string note;
};

void Observe(ProbeSignals& signals, const std::string& note) {
  if (!signals.note.empty()) {
    signals.note += "; ";
  }
  signals.note += note;
}

// The program's own (uninstrumented-by-checks, properly gated) access to the
// safe region: opens the domain the way the technique's MakeDomainOpen
// sequence would, reads the secret, re-closes. A fault here is loud — the
// injected fault surfaced on the legitimate path. A silently wrong value is
// the worst outcome: the program computes with corrupted data.
void LegitProbe(core::TechniqueKind kind, sim::Process& process, sim::Kernel& kernel,
                sim::SafeRegion* region, sim::FaultSite site, ProbeSignals& signals) {
  machine::Mmu& mmu = process.mmu();
  Cycles cycles = 0;
  switch (kind) {
    case core::TechniqueKind::kSfi:
    case core::TechniqueKind::kMpx: {
      // Legit safe-region accesses are exempt from masking/bndcu; the raw
      // memory path is the model.
      auto value = process.Peek64(region->base);
      if (!value.ok()) {
        signals.fault_observed = true;
        Observe(signals, "legit access failed cleanly: " + value.status().ToString());
      } else if (value.value() != kSecret) {
        signals.legit_wrong = true;
        Observe(signals, "legit access silently read wrong data");
      }
      return;
    }
    case core::TechniqueKind::kMpk: {
      const uint32_t closed = process.regs().pkru.value;
      process.regs().pkru.value = mpk::kOpenPkru;
      auto read = mmu.Read64(region->base, process.regs().pkru, &cycles);
      if (!read.ok()) {
        signals.fault_observed = true;
        Observe(signals, "legit open-domain read faulted: " + read.fault().ToString());
      } else if (read.value() != kSecret) {
        signals.legit_wrong = true;
        Observe(signals, "legit open-domain read silently saw wrong data");
      } else if (site == sim::FaultSite::kPteWritableClear) {
        // The spurious write protection only surfaces on a write; store the
        // secret back (a value-preserving write) through the open domain.
        auto write = mmu.Write64(region->base, kSecret, process.regs().pkru, &cycles);
        if (!write.ok()) {
          signals.fault_observed = true;
          Observe(signals, "legit open-domain write faulted: " + write.fault().ToString());
        }
      }
      process.regs().pkru.value = closed;
      return;
    }
    case core::TechniqueKind::kVmfunc: {
      vmx::VmxContext& vmx = process.dune()->vmx();
      auto enter = vmx.VmFunc(0, region->ept_index);
      if (!enter.ok()) {
        signals.fault_observed = true;
        Observe(signals, "vmfunc to private EPT faulted");
        return;
      }
      auto read = mmu.Read64(region->base, process.regs().pkru, &cycles);
      if (!read.ok()) {
        signals.fault_observed = true;
        Observe(signals, "legit in-domain read faulted: " + read.fault().ToString());
      } else if (read.value() != kSecret) {
        signals.legit_wrong = true;
        Observe(signals, "legit in-domain read silently saw wrong data");
      }
      (void)vmx.VmFunc(0, 0);
      return;
    }
    case core::TechniqueKind::kCrypt: {
      std::vector<uint8_t> bytes(region->size);
      Status peeked = process.PeekBytes(region->base, bytes.data(), region->size);
      if (!peeked.ok()) {
        signals.fault_observed = true;
        Observe(signals, "legit ciphertext read failed cleanly: " + peeked.ToString());
        return;
      }
      aes::CryptRegion(bytes, region->enc_keys, region->nonce);
      uint64_t decrypted = 0;
      std::memcpy(&decrypted, bytes.data(), sizeof(decrypted));
      if (decrypted != kSecret) {
        signals.legit_wrong = true;
        Observe(signals, "legit decrypt silently produced wrong plaintext");
      }
      return;
    }
    case core::TechniqueKind::kMprotect: {
      const uint64_t opened = kernel.Dispatch(static_cast<uint64_t>(sim::Sysno::kMprotect),
                                              region->base, sim::kProtRw);
      if (sim::IsSysError(opened)) {
        // Fail-closed: the open syscall refused; the region stays sealed.
        signals.fault_observed = true;
        Observe(signals, std::string("legit mprotect open refused: ") +
                             sim::ErrnoName(sim::SysErrnoOf(opened)));
        return;
      }
      auto read = mmu.Read64(region->base, process.regs().pkru, &cycles);
      if (!read.ok()) {
        signals.fault_observed = true;
        Observe(signals, "legit opened read faulted: " + read.fault().ToString());
      } else if (read.value() != kSecret) {
        signals.legit_wrong = true;
        Observe(signals, "legit opened read silently saw wrong data");
      }
      (void)kernel.Dispatch(static_cast<uint64_t>(sim::Sysno::kMprotect), region->base,
                            sim::kProtNone);
      return;
    }
    case core::TechniqueKind::kSgx:
    case core::TechniqueKind::kInfoHide:
      return;  // no modeled legitimate in-process path to exercise here
  }
}

Containment Classify(const ProbeSignals& signals, int repairs, int quarantines,
                     int downgrades) {
  if (signals.leaked || signals.corrupted || signals.legit_wrong) {
    return Containment::kEscaped;
  }
  if (repairs > 0 || quarantines > 0 || downgrades > 0) {
    return Containment::kDegraded;
  }
  if (signals.fault_observed) {
    return Containment::kDetected;
  }
  // Nothing leaked, but nothing surfaced either: the fault vanished without
  // any signal. Conservatively an escape — every enumerated cell must have
  // an observable containment story.
  return Containment::kEscaped;
}

}  // namespace

const char* ContainmentName(Containment outcome) {
  switch (outcome) {
    case Containment::kDetected:
      return "detected";
    case Containment::kDegraded:
      return "degraded";
    case Containment::kEscaped:
      return "ESCAPED";
  }
  return "?";
}

std::vector<std::pair<core::TechniqueKind, sim::FaultSite>> FaultMatrixCells() {
  using K = core::TechniqueKind;
  using S = sim::FaultSite;
  return {
      {K::kSfi, S::kPtePresentClear},
      {K::kSfi, S::kSyscallMmapEnomem},
      {K::kMpx, S::kPtePresentClear},
      {K::kMpx, S::kBndRegisterClobber},
      {K::kMpx, S::kBndTableCorrupt},
      {K::kMpx, S::kSyscallMmapEnomem},
      {K::kMpk, S::kPtePresentClear},
      {K::kMpk, S::kPteWritableClear},
      {K::kMpk, S::kPtePkeyFlip},
      {K::kMpk, S::kTlbStaleEntry},
      {K::kMpk, S::kPkruDesync},
      {K::kMpk, S::kSyscallPkeyAllocExhausted},
      {K::kVmfunc, S::kPtePresentClear},
      {K::kVmfunc, S::kEptMappingDrop},
      {K::kVmfunc, S::kTlbStaleEntry},
      {K::kCrypt, S::kPtePresentClear},
      {K::kCrypt, S::kAesRoundKeyClobber},
      {K::kSgx, S::kPtePresentClear},
      {K::kMprotect, S::kPtePresentClear},
      {K::kMprotect, S::kTlbStaleEntry},
      {K::kMprotect, S::kSyscallMprotectEacces},
  };
}

FaultCellResult RunFaultCell(core::TechniqueKind kind, sim::FaultSite site,
                             const FaultCampaignOptions& options) {
  FaultCellResult cell;
  cell.technique = kind;
  cell.site = site;
  cell.cell_seed = CellSeed(options.seed, kind, site);

  sim::Machine machine;
  sim::Process process(&machine);
  if (kind == core::TechniqueKind::kVmfunc) {
    (void)process.EnableDune();
  }
  (void)process.SetupStack();
  (void)process.MapRange(sim::kWorkingSetBase, 16, machine::PageFlags::Data());
  sim::Kernel kernel(&process);
  kernel.Install();

  // The MPK key-exhaustion cell is the fallback-chain scenario: sixteen
  // regions against fifteen usable keys, with the advisor's default chain
  // configured. Every other cell runs the technique strictly.
  const bool exhaustion_cell = kind == core::TechniqueKind::kMpk &&
                               site == sim::FaultSite::kSyscallPkeyAllocExhausted;
  core::MemSentryConfig config;
  config.technique = kind;
  if (exhaustion_cell) {
    config.fallbacks = core::DefaultFallbackChain(kind);
  }
  core::MemSentry memsentry(&process, config);

  const int region_count = exhaustion_cell ? 16 : 1;
  sim::SafeRegion* victim = nullptr;
  for (int i = 0; i < region_count; ++i) {
    auto region = memsentry.allocator().Alloc(
        i == 0 ? std::string("secret") : "secret-" + std::to_string(i),
        options.region_bytes);
    if (!region.ok()) {
      cell.detail = "setup failed: " + region.status().ToString();
      return cell;  // outcome stays kEscaped: a broken cell must be loud
    }
    (void)process.Poke64(region.value()->base, kSecret);
    if (i == 0) {
      victim = region.value();
    }
  }

  sim::FaultInjector injector(&process, cell.cell_seed);
  injector.SetKernel(&kernel);

  if (exhaustion_cell) {
    // Arm the kernel-side exhaustion too (pkey_alloc -> ENOSPC from now on);
    // the in-process allocator exhausts on its own from the 16 regions.
    auto injected = injector.Inject(site);
    if (!injected.ok()) {
      cell.detail = "injection failed: " + injected.status().ToString();
      return cell;
    }
    cell.detail = injected.value().detail;
  }

  Status prepared = memsentry.PrepareRuntime();
  if (!prepared.ok()) {
    cell.detail = "prepare failed: " + prepared.ToString();
    return cell;
  }
  cell.downgrades = static_cast<int>(memsentry.downgrades().size());

  if (!exhaustion_cell) {
    auto injected = injector.Inject(site);
    if (!injected.ok()) {
      cell.detail = "injection failed: " + injected.status().ToString();
      return cell;
    }
    cell.detail = injected.value().detail;
  }

  // Crash-bundle hook: die right after injection with the full simulation
  // state staged, so the bundle's snapshot captures the armed fault and a
  // replay reproduces this exact abort.
  const std::string cell_label =
      std::string(core::TechniqueKindName(kind)) + "/" + sim::FaultSiteName(site);
  if (options.force_crash == cell_label) {
    base::SetCrashSnapshot(
        sim::SaveSnapshot(process, nullptr, &kernel, &injector, cell_label));
    std::abort();
  }

  // Containment audit at the closed-domain checkpoint (unless the test-only
  // escape hook disabled it).
  if (!options.skip_containment_audit) {
    for (const auto& issue : memsentry.technique().AuditProtection(process)) {
      if (issue.repaired) {
        ++cell.repairs;
      } else {
        ++cell.quarantines;
      }
    }
  }

  // The bound-table corruption targets the reload path: model the legacy
  // branch that resets bnd0 and the next check's table reload, exactly as
  // the executor does.
  if (site == sim::FaultSite::kBndTableCorrupt) {
    mpx::OnLegacyBranch(process.regs());
    if (process.regs().bnd[0].upper == ~uint64_t{0} && process.bnd_reload(0).has_value()) {
      process.regs().bnd[0] = *process.bnd_reload(0);
    }
  }

  ProbeSignals signals;
  core::Technique& technique = memsentry.technique();
  const VirtAddr target = victim->base;

  // Attacker read primitive.
  auto read = technique.AttackerRead(process, target);
  if (!read.ok()) {
    signals.fault_observed = true;
    Observe(signals, "attacker read: " + read.fault().ToString());
  } else if (read.value() == kSecret) {
    signals.leaked = true;
    Observe(signals, "attacker read the secret plaintext");
  }

  // Syscall-refusal cells: drive the program-visible call the armed failure
  // targets and require a clean errno (then a successful retry, proving the
  // process survived the refusal).
  if (site == sim::FaultSite::kSyscallMmapEnomem) {
    const uint64_t nr = static_cast<uint64_t>(sim::Sysno::kMmap);
    const uint64_t first = kernel.Dispatch(nr, 0, 4 * kPageSize);
    if (!sim::IsSysError(first)) {
      signals.legit_wrong = true;
      Observe(signals, "armed mmap failure did not fire");
    } else {
      signals.fault_observed = true;
      Observe(signals, std::string("mmap refused cleanly: ") +
                           sim::ErrnoName(sim::SysErrnoOf(first)));
      const uint64_t retry = kernel.Dispatch(nr, 0, 4 * kPageSize);
      if (sim::IsSysError(retry)) {
        signals.legit_wrong = true;
        Observe(signals, "mmap retry after refusal failed too");
      }
    }
  }

  // Legitimate access path, before the attacker write probe (a garbling
  // write to ciphertext must not be misread as legit-path corruption). A
  // quarantined region has no trustworthy legitimate path by design.
  if (cell.quarantines == 0) {
    LegitProbe(memsentry.active_technique(), process, kernel, victim, site, signals);
  } else {
    Observe(signals, "region quarantined; legit path not exercised");
  }

  // Attacker write primitive, with ground truth through raw memory.
  auto write = technique.AttackerWrite(process, target, 0xdeadULL);
  if (!write.ok()) {
    signals.fault_observed = true;
    Observe(signals, "attacker write: " + write.fault().ToString());
  } else if (memsentry.active_technique() == core::TechniqueKind::kCrypt) {
    std::vector<uint8_t> bytes(victim->size);
    if (process.PeekBytes(target, bytes.data(), victim->size).ok()) {
      aes::CryptRegion(bytes, victim->enc_keys, victim->nonce);
      uint64_t decrypted = 0;
      std::memcpy(&decrypted, bytes.data(), sizeof(decrypted));
      if (decrypted == 0xdeadULL) {
        signals.corrupted = true;
        Observe(signals, "attacker write decrypted to the attacker's value");
      }
    }
  } else {
    auto now = process.Peek64(target);
    if (now.ok() && now.value() == 0xdeadULL) {
      signals.corrupted = true;
      Observe(signals, "attacker write landed in the safe region");
    }
  }

  cell.outcome = Classify(signals, cell.repairs, cell.quarantines, cell.downgrades);
  if (!signals.note.empty()) {
    cell.detail += " | " + signals.note;
  }
  return cell;
}

FaultCampaignResult RunFaultCampaign(const FaultCampaignOptions& options) {
  FaultCampaignResult result;
  for (const auto& [kind, site] : FaultMatrixCells()) {
    FaultCellResult cell = RunFaultCell(kind, site, options);
    switch (cell.outcome) {
      case Containment::kDetected:
        ++result.detected;
        break;
      case Containment::kDegraded:
        ++result.degraded;
        break;
      case Containment::kEscaped:
        ++result.escaped;
        break;
    }
    result.repairs += cell.repairs;
    result.downgrades += cell.downgrades;
    result.cells.push_back(std::move(cell));
  }
  return result;
}

}  // namespace memsentry::eval

// Experiment pipelines for every figure in the paper's evaluation
// (Section 6.2). Each function builds a fresh machine/process, synthesizes
// the benchmark program, applies the defense pass and the MemSentry pass,
// executes both baseline and protected builds, and returns the normalized
// runtime (1.0 == baseline). Shared by bench/ binaries and the calibration
// tests.
#ifndef MEMSENTRY_SRC_EVAL_FIGURES_H_
#define MEMSENTRY_SRC_EVAL_FIGURES_H_

#include <string>
#include <vector>

#include "src/core/technique.h"
#include "src/eval/run_memo.h"
#include "src/workloads/spec_profiles.h"
#include "src/workloads/synth.h"

namespace memsentry::eval {

using workloads::SpecProfile;

struct ExperimentOptions {
  uint64_t target_instructions = 400'000;
  uint64_t seed = 0xbe7cd06eULL;
  core::InstrumentOptions instrument;
  // Worker threads for the suite sweeps (RunFigure3..6, RunCryptSizeSweep).
  // 0 = hardware_concurrency; 1 = serial. Every (profile, config) cell builds
  // its own machine/process/module from the deterministic seed, so results
  // are bit-identical for every jobs value — enforced by
  // tests/parallel_determinism_test.cc.
  int jobs = 0;
  // Crash-safe execution: when both are set, every cell execution runs in
  // `checkpoint_interval`-instruction slices and persists a snapshot
  // (sim/snapshot) after each slice under `checkpoint_dir`, resuming from the
  // newest snapshot on the next run of the same cell. Resumed results are
  // bit-identical to uninterrupted ones — run(N+M) == run(N); save; load;
  // run(M) — so a killed suite re-run with the same options converges to the
  // exact same report. 0 / empty (the default) disables checkpointing.
  std::string checkpoint_dir;
  uint64_t checkpoint_interval = 0;
};

// One baseline-vs-protected execution pair. normalized is protected/baseline
// cycles (1.0 == baseline, < 0 on failure); the raw cycle counts feed the
// perf series of the machine-readable benchmark reports. The retired
// instruction counts feed the suite's simulated-instruction throughput
// (info) metrics.
struct ExperimentResult {
  double normalized = -1;
  double base_cycles = 0;
  double prot_cycles = 0;
  double base_instructions = 0;
  double prot_instructions = 0;
  bool ok() const { return normalized > 0; }
};

// Figure 3: address-based techniques (SFI/MPX), instrumenting all loads
// (-r), stores (-w) or both (-rw) of the whole program.
ExperimentResult RunAddressBasedExperimentFull(const SpecProfile& profile,
                                               core::TechniqueKind kind, core::ProtectMode mode,
                                               const ExperimentOptions& options = {});
double RunAddressBasedExperiment(const SpecProfile& profile, core::TechniqueKind kind,
                                 core::ProtectMode mode, const ExperimentOptions& options = {});

// Figures 4-6: domain-based techniques switching at every...
enum class DomainScenario {
  kCallRet,         // Figure 4: shadow stack (the real ShadowStackPass)
  kIndirectBranch,  // Figure 5: CFI / layout randomization metadata
  kSyscall,         // Figure 6: TASR-style / allocator metadata
};

const char* DomainScenarioName(DomainScenario scenario);

ExperimentResult RunDomainBasedExperimentFull(const SpecProfile& profile,
                                              core::TechniqueKind kind, DomainScenario scenario,
                                              const ExperimentOptions& options = {});
double RunDomainBasedExperiment(const SpecProfile& profile, core::TechniqueKind kind,
                                DomainScenario scenario, const ExperimentOptions& options = {});

// One row of a figure: per-benchmark normalized runtimes per configuration,
// plus the suite-total cycle counts behind them (for perf regression series).
struct FigureSeries {
  std::string config;                 // e.g. "MPX-w" or "MPK"
  std::vector<double> normalized;     // one per benchmark, suite order
  double geomean = 0;
  double total_base_cycles = 0;       // summed over the suite
  double total_prot_cycles = 0;
  double total_instructions = 0;      // baseline + protected retired instrs
};

// The figure sweeps' configuration columns, exposed so the campaign engine
// can enumerate and run single (config, profile) cells that are
// bit-identical to the full sweeps below.
struct AddressSweepConfig {
  const char* name;  // Figure 3 column, e.g. "MPX-w"
  core::TechniqueKind kind;
  core::ProtectMode mode;
};
const std::vector<AddressSweepConfig>& AddressSweepConfigs();

struct DomainSweepConfig {
  const char* name;  // Figures 4-6 column: "MPK", "VMFUNC", "crypt"
  core::TechniqueKind kind;
};
const std::vector<DomainSweepConfig>& DomainSweepConfigs();

// Serial assembly of config-major per-cell results (cells[c * profiles + p])
// into FigureSeries — the exact floating-point accumulation order of the
// sweeps, shared with the campaign engine.
std::vector<FigureSeries> AssembleFigureSeries(const std::vector<const char*>& config_names,
                                               size_t profiles,
                                               const std::vector<ExperimentResult>& cells);

// Convenience sweeps over the whole SPEC suite.
std::vector<FigureSeries> RunFigure3(const ExperimentOptions& options = {});
std::vector<FigureSeries> RunFigure4(const ExperimentOptions& options = {});
std::vector<FigureSeries> RunFigure5(const ExperimentOptions& options = {});
std::vector<FigureSeries> RunFigure6(const ExperimentOptions& options = {});

// The crypt region-size sweep (Section 6.2: cost grows linearly; ~15x at
// 1 KiB): normalized runtime of the call/ret scenario vs safe-region size.
struct CryptSizePoint {
  uint64_t region_bytes;
  double normalized;
  double prot_cycles = 0;
  double instructions = 0;  // baseline + protected retired instrs
};
std::vector<CryptSizePoint> RunCryptSizeSweep(const SpecProfile& profile,
                                              const std::vector<uint64_t>& sizes,
                                              const ExperimentOptions& options = {});

// The mprotect baseline (Section 1: "20-50x in our experiments") on the
// call/ret scenario.
double RunMprotectBaseline(const SpecProfile& profile, const ExperimentOptions& options = {});

// Synthesis is independent of the technique and the isolation flag, so the
// campaign engine's cells re-derive byte-identical modules dozens of times
// per profile. When the run memo is enabled this returns a copy of a cached
// module; otherwise it synthesizes fresh, preserving fork-mode cost
// profiles. Shared with the suite workloads (e.g. the SafeStack case study).
ir::Module SynthesizeSpecProgramCached(const SpecProfile& profile,
                                       const workloads::SynthOptions& synth);

// Feeds every SpecProfile field into a recipe hasher, for memo keys built
// outside figures.cc.
void HashSpecProfile(RunKeyHasher& h, const SpecProfile& profile);

}  // namespace memsentry::eval

#endif  // MEMSENTRY_SRC_EVAL_FIGURES_H_

// `memsentry_cli serve` — a resident CampaignEngine behind a local UNIX
// socket, so the server workload, campaign sweeps, and the shard
// coordinator (src/eval/coordinator.h) can be driven without paying one
// batch process per run. Newline-delimited JSON request/response protocol,
// one object per line:
//
//   {"cmd":"ping"}                         -> {"ok":true}
//   {"cmd":"workloads"}                    -> {"ok":true,"workloads":[...]}
//   {"cmd":"submit","workload":"fig4_callret",
//    "quick":true,"instructions":100000,   -> {"ok":true,"job":1}
//    "extra":{"campaigns":"160"}}
//   {"cmd":"status"}                       -> {"ok":true,"jobs":[...]}
//   {"cmd":"status","job":1}               -> {"ok":true,"job":{...}}
//   {"cmd":"cancel","job":1}               -> {"ok":true,"cancelled":true}
//   {"cmd":"wait","job":1}                 -> {"ok":true,"job":{...},"metrics":{...}}
//   {"cmd":"run_cell","workload":"fig3_address","cell":"mpk/hot",
//    "quick":true,"instructions":100000,   -> {"ok":true,"payload":...,
//    "seed":123,"extra":{},"attempt":1}        "crc":"<fnv1a hex of payload>"}
//   {"cmd":"shutdown"}                     -> {"ok":true}   (loop exits)
//
// Error replies are typed: {"ok":false,"code":"bad_json","error":"..."} with
// codes bad_json / oversized_line / unknown_cmd / unknown_workload /
// unknown_cell / unknown_job / missing_field / cell_failed. Malformed JSON
// and unknown commands get a typed reply on the same connection; frames the
// server cannot resynchronize after (oversized lines, truncated frames cut
// off by a client disconnect) get a clean connection drop. Neither ever
// crashes or wedges the loop — the coordinator leans on this to retry.
//
// `run_cell` executes one workload cell synchronously on the serving thread
// (cells are pure functions of their recipe — see campaign_engine.h — so a
// re-run after a torn attempt is safe and bit-identical). The reply carries
// an FNV-1a digest of the compact payload dump so the caller can reject
// corrupted-but-parseable frames.
//
// The loop serves connections one at a time (submit returns immediately —
// the engine runs jobs on its own workers — but `wait` blocks the loop, so
// clients issue it last). The socket inode is created with mode 0600; a
// bind collision against a live server fails fast, while a stale socket
// left by a crashed server is unlinked and rebound.
#ifndef MEMSENTRY_SRC_EVAL_SERVE_H_
#define MEMSENTRY_SRC_EVAL_SERVE_H_

#include <cstdint>
#include <string>

#include "src/base/json.h"
#include "src/base/status.h"
#include "src/eval/campaign_engine.h"

namespace memsentry::eval {

// Deterministic fault injection for the chaos harness (ISSUE: --chaos=...).
// Whether a given run_cell request misbehaves is a pure function of
// (seed, workload, cell, attempt): the coordinator bumps `attempt` on every
// re-dispatch and attempts >= 2 are never chaosed, so every cell terminates
// and the whole chaos schedule replays bit-identically from the seed.
struct ServeChaos {
  bool kill = false;    // SIGKILL the worker after running the cell, before the reply
  bool hang = false;    // stall hang_ms before replying (coordinator sees a dead lease)
  bool garble = false;  // corrupt the serialized reply frame, then drop the connection
  uint64_t seed = 0;
  uint32_t one_in = 3;       // a first-attempt cell draws chaos with probability 1/one_in
  uint32_t hang_ms = 30000;  // must exceed the coordinator's lease to be observable

  bool any() const { return kill || hang || garble; }
  // Round-trips through ParseChaosSpec; empty when !any().
  std::string Format() const;
};

// Parses "kill,hang,garble:seed=S[:one_in=N][:hang_ms=N]" (any non-empty
// subset of modes, options in any order after the mode list).
StatusOr<ServeChaos> ParseChaosSpec(const std::string& spec);

// Which chaos mode (if any) fires for this request. "" = run clean.
// Exposed so tests can pin the schedule without a live server.
std::string ChaosDecision(const ServeChaos& chaos, const std::string& workload,
                          const std::string& cell, uint64_t attempt);

// FNV-1a over the bytes — the digest run_cell replies carry (as %016llx hex,
// since JSON numbers are doubles and cannot round-trip 64 bits).
uint64_t ServeFrameDigest(const std::string& bytes);

// Request lines beyond this are rejected ("oversized_line" + connection
// drop); generous enough for any legitimate payload in the suite.
inline constexpr size_t kServeMaxLineBytes = 64u << 20;

struct ServeOptions {
  std::string socket_path;
  const WorkloadRegistry* registry = nullptr;
  int jobs = 0;        // engine workers; <= 0 = hardware_concurrency
  bool quiet = false;  // suppress the per-request log lines
  ServeChaos chaos;    // inert by default
};

// Binds the socket and serves requests until a shutdown command (returns 0)
// or a socket-level failure (returns 1). The socket file is unlinked on the
// way out.
int ServeLoop(const ServeOptions& options);

// Client half: connect, send `request` as one line, read one response line.
StatusOr<json::Value> ServeRequest(const std::string& socket_path,
                                   const json::Value& request);

}  // namespace memsentry::eval

#endif  // MEMSENTRY_SRC_EVAL_SERVE_H_

// `memsentry_cli serve` — a resident CampaignEngine behind a local UNIX
// socket, so the server workload and campaign sweeps can be driven without
// paying one batch process per run. Newline-delimited JSON request/response
// protocol, one object per line:
//
//   {"cmd":"ping"}                         -> {"ok":true}
//   {"cmd":"workloads"}                    -> {"ok":true,"workloads":[...]}
//   {"cmd":"submit","workload":"fig4_callret",
//    "quick":true,"instructions":100000,   -> {"ok":true,"job":1}
//    "extra":{"campaigns":"160"}}
//   {"cmd":"status"}                       -> {"ok":true,"jobs":[...]}
//   {"cmd":"status","job":1}               -> {"ok":true,"job":{...}}
//   {"cmd":"cancel","job":1}               -> {"ok":true,"cancelled":true}
//   {"cmd":"wait","job":1}                 -> {"ok":true,"job":{...},"metrics":{...}}
//   {"cmd":"shutdown"}                     -> {"ok":true}   (loop exits)
//
// The loop serves connections one at a time (submit returns immediately —
// the engine runs jobs on its own workers — but `wait` blocks the loop, so
// clients issue it last). Anything not a local trusted caller is out of
// scope: the socket is a filesystem path with default permissions.
#ifndef MEMSENTRY_SRC_EVAL_SERVE_H_
#define MEMSENTRY_SRC_EVAL_SERVE_H_

#include <string>

#include "src/base/json.h"
#include "src/base/status.h"
#include "src/eval/campaign_engine.h"

namespace memsentry::eval {

struct ServeOptions {
  std::string socket_path;
  const WorkloadRegistry* registry = nullptr;
  int jobs = 0;      // engine workers; <= 0 = hardware_concurrency
  bool quiet = false;  // suppress the per-request log lines
};

// Binds the socket and serves requests until a shutdown command (returns 0)
// or a socket-level failure (returns 1). The socket file is unlinked on the
// way out.
int ServeLoop(const ServeOptions& options);

// Client half: connect, send `request` as one line, read one response line.
StatusOr<json::Value> ServeRequest(const std::string& socket_path,
                                   const json::Value& request);

}  // namespace memsentry::eval

#endif  // MEMSENTRY_SRC_EVAL_SERVE_H_

#include "src/eval/regression_gate.h"

#include <cmath>
#include <cstdio>

namespace memsentry::eval {

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kFidelity:
      return "fidelity";
    case MetricKind::kPerf:
      return "perf";
    case MetricKind::kInfo:
      return "info";
  }
  return "?";
}

MetricKind ParseMetricKind(const std::string& name) {
  if (name == "fidelity") {
    return MetricKind::kFidelity;
  }
  if (name == "perf") {
    return MetricKind::kPerf;
  }
  return MetricKind::kInfo;
}

double RelativeDelta(double measured, double reference) {
  const double denom = std::max(std::fabs(reference), 1e-12);
  return std::fabs(measured - reference) / denom;
}

std::string GateReport::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%d compared, %d failures, %d warnings, %d new, %d missing", compared,
                failures, warnings, new_metrics, missing);
  return buf;
}

namespace {

const json::Value* Metrics(const json::Value& doc) {
  const json::Value* m = doc.Find("metrics");
  return (m != nullptr && m->is_object()) ? m : nullptr;
}

std::string FormatDelta(double measured, double reference, double tol) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%.6g vs baseline %.6g (delta %.2f%%, tol %.2f%%)",
                measured, reference, 100.0 * RelativeDelta(measured, reference),
                100.0 * tol);
  return buf;
}

}  // namespace

GateReport CompareAgainstBaseline(const json::Value& results, const json::Value& baseline,
                                  const GateOptions& options) {
  GateReport report;
  const json::Value* base_metrics = Metrics(baseline);
  const json::Value* run_metrics = Metrics(results);
  if (base_metrics == nullptr) {
    report.issues.push_back(
        {Severity::kFailure, "<baseline>", "baseline document has no \"metrics\" object"});
    ++report.failures;
    return report;
  }
  if (run_metrics == nullptr) {
    report.issues.push_back(
        {Severity::kFailure, "<results>", "results document has no \"metrics\" object"});
    ++report.failures;
    return report;
  }

  for (const auto& [name, base_entry] : base_metrics->members()) {
    const MetricKind kind = ParseMetricKind(base_entry.StringOr("kind", "info"));
    if (kind == MetricKind::kInfo) {
      continue;
    }
    const json::Value* run_entry = run_metrics->Find(name);
    if (run_entry == nullptr) {
      // A fidelity metric that disappeared means a figure lost coverage —
      // that is exactly the silent drift the gate exists to catch.
      ++report.missing;
      if (kind == MetricKind::kFidelity) {
        report.issues.push_back(
            {Severity::kFailure, name, "fidelity metric missing from results"});
        ++report.failures;
      } else {
        report.issues.push_back({Severity::kWarning, name, "perf metric missing from results"});
        ++report.warnings;
      }
      continue;
    }
    const double reference = base_entry.NumberOr("value", 0.0);
    const double measured = run_entry->NumberOr("value", 0.0);
    const double default_tol = kind == MetricKind::kFidelity ? options.fidelity_default_tol
                                                             : options.perf_default_tol;
    const double tol = base_entry.NumberOr("tol", default_tol);
    ++report.compared;
    // A value sitting exactly on the tolerance boundary passes; the 1e-9
    // slack keeps last-ulp rounding in the relative delta from flaking it.
    if (RelativeDelta(measured, reference) <= tol + 1e-9) {
      continue;
    }
    // Host-flagged metrics (wall-clock throughput) compare against the
    // baseline but never hard-fail: their values track the machine the
    // suite ran on, not the simulation.
    const bool host = base_entry.BoolOr("host", false);
    const bool gated = !host && (kind == MetricKind::kFidelity || options.gate_perf);
    report.issues.push_back({gated ? Severity::kFailure : Severity::kWarning, name,
                             FormatDelta(measured, reference, tol) +
                                 (host ? " [host metric: warn-only]" : "")});
    if (gated) {
      ++report.failures;
    } else {
      ++report.warnings;
    }
  }

  for (const auto& [name, run_entry] : run_metrics->members()) {
    if (ParseMetricKind(run_entry.StringOr("kind", "info")) == MetricKind::kInfo) {
      continue;
    }
    if (base_metrics->Find(name) == nullptr) {
      ++report.new_metrics;
      report.issues.push_back(
          {Severity::kNote, name, "new metric (not in baseline; re-snapshot to track it)"});
    }
  }
  return report;
}

}  // namespace memsentry::eval

// FIPS-197 AES-128: key expansion, block encrypt/decrypt, and the primitives
// AES-NI exposes (single rounds, InvMixColumns, key-generation assist). The
// crypt isolation technique uses this to genuinely encrypt safe regions
// in place; tests validate against the FIPS-197 / SP 800-38A vectors.
#ifndef MEMSENTRY_SRC_AES_AES128_H_
#define MEMSENTRY_SRC_AES_AES128_H_

#include <array>
#include <cstdint>
#include <span>

namespace memsentry::aes {

inline constexpr int kBlockSize = 16;   // bytes
inline constexpr int kNumRounds = 10;   // AES-128
inline constexpr int kNumRoundKeys = kNumRounds + 1;

using Block = std::array<uint8_t, kBlockSize>;
using RoundKey = std::array<uint8_t, kBlockSize>;
using KeySchedule = std::array<RoundKey, kNumRoundKeys>;

// Expands a 128-bit key into 11 round keys (FIPS-197 §5.2); the hardware
// equivalent is a chain of aeskeygenassist + shuffles.
KeySchedule ExpandKey(const Block& key);

// Derives the decryption ("equivalent inverse cipher") schedule by applying
// InvMixColumns to round keys 1..9 — exactly what aesimc does on real
// hardware before aesdec can consume an encryption schedule.
KeySchedule InverseKeySchedule(const KeySchedule& enc);

// One middle round of encryption: ShiftRows, SubBytes, MixColumns, AddKey.
// Matches the aesenc instruction semantics.
Block EncryptRound(const Block& state, const RoundKey& key);
// Final round (no MixColumns) — aesenclast.
Block EncryptLastRound(const Block& state, const RoundKey& key);
// Decryption counterparts — aesdec / aesdeclast (equivalent inverse cipher).
Block DecryptRound(const Block& state, const RoundKey& key);
Block DecryptLastRound(const Block& state, const RoundKey& key);

// InvMixColumns on a whole block — the aesimc instruction.
Block InvMixColumnsBlock(const Block& block);

// Full-block ECB operations built from the rounds above.
Block EncryptBlock(const Block& plaintext, const KeySchedule& keys);
Block DecryptBlock(const Block& ciphertext, const KeySchedule& enc_keys);

// In-place CTR-like region transform used by the crypt technique: XOR of an
// AES-CTR keystream, so arbitrary region sizes (not only multiples of 16)
// encrypt/decrypt symmetrically. `nonce` binds the keystream to the region.
void CryptRegion(std::span<uint8_t> data, const KeySchedule& keys, uint64_t nonce);

}  // namespace memsentry::aes

#endif  // MEMSENTRY_SRC_AES_AES128_H_

#include "src/aes/aes128.h"

#include <cstring>

namespace memsentry::aes {
namespace {

// GF(2^8) arithmetic over the AES polynomial x^8 + x^4 + x^3 + x + 1 (0x11b).
uint8_t Xtime(uint8_t a) { return static_cast<uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1b : 0x00)); }

uint8_t Gmul(uint8_t a, uint8_t b) {
  uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) {
      p ^= a;
    }
    a = Xtime(a);
    b >>= 1;
  }
  return p;
}

// The S-box is computed (inverse in GF(2^8) + affine transform) rather than
// transcribed; tests pin the known values S(0x00)=0x63, S(0x53)=0xed.
struct SboxTables {
  uint8_t sbox[256];
  uint8_t inv_sbox[256];

  SboxTables() {
    // Build inverses via brute force once; table construction is not hot.
    uint8_t inverse[256] = {0};
    for (int a = 1; a < 256; ++a) {
      for (int b = 1; b < 256; ++b) {
        if (Gmul(static_cast<uint8_t>(a), static_cast<uint8_t>(b)) == 1) {
          inverse[a] = static_cast<uint8_t>(b);
          break;
        }
      }
    }
    for (int x = 0; x < 256; ++x) {
      const uint8_t inv = inverse[x];
      uint8_t s = 0x63;
      for (int i = 0; i < 8; ++i) {
        const uint8_t bit = static_cast<uint8_t>(
            ((inv >> i) ^ (inv >> ((i + 4) & 7)) ^ (inv >> ((i + 5) & 7)) ^
             (inv >> ((i + 6) & 7)) ^ (inv >> ((i + 7) & 7))) &
            1);
      s = static_cast<uint8_t>(s ^ (bit << i));
      }
      // s started as the affine constant 0x63; the loop xored in the rotated
      // bits, so s now holds the full affine transform of inv.
      sbox[x] = s;
      inv_sbox[s] = static_cast<uint8_t>(x);
    }
  }
};

const SboxTables& Tables() {
  static const SboxTables tables;
  return tables;
}

Block SubBytes(const Block& in) {
  Block out;
  for (int i = 0; i < kBlockSize; ++i) {
    out[i] = Tables().sbox[in[i]];
  }
  return out;
}

Block InvSubBytes(const Block& in) {
  Block out;
  for (int i = 0; i < kBlockSize; ++i) {
    out[i] = Tables().inv_sbox[in[i]];
  }
  return out;
}

// State layout is FIPS-197 column-major: byte index = row + 4*column.
Block ShiftRows(const Block& in) {
  Block out;
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      out[r + 4 * c] = in[r + 4 * ((c + r) & 3)];
    }
  }
  return out;
}

Block InvShiftRows(const Block& in) {
  Block out;
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      out[r + 4 * c] = in[r + 4 * ((c - r + 4) & 3)];
    }
  }
  return out;
}

Block MixColumns(const Block& in) {
  Block out;
  for (int c = 0; c < 4; ++c) {
    const uint8_t* col = &in[4 * c];
    out[4 * c + 0] = static_cast<uint8_t>(Gmul(col[0], 2) ^ Gmul(col[1], 3) ^ col[2] ^ col[3]);
    out[4 * c + 1] = static_cast<uint8_t>(col[0] ^ Gmul(col[1], 2) ^ Gmul(col[2], 3) ^ col[3]);
    out[4 * c + 2] = static_cast<uint8_t>(col[0] ^ col[1] ^ Gmul(col[2], 2) ^ Gmul(col[3], 3));
    out[4 * c + 3] = static_cast<uint8_t>(Gmul(col[0], 3) ^ col[1] ^ col[2] ^ Gmul(col[3], 2));
  }
  return out;
}

Block InvMixColumns(const Block& in) {
  Block out;
  for (int c = 0; c < 4; ++c) {
    const uint8_t* col = &in[4 * c];
    out[4 * c + 0] = static_cast<uint8_t>(Gmul(col[0], 14) ^ Gmul(col[1], 11) ^ Gmul(col[2], 13) ^
                                          Gmul(col[3], 9));
    out[4 * c + 1] = static_cast<uint8_t>(Gmul(col[0], 9) ^ Gmul(col[1], 14) ^ Gmul(col[2], 11) ^
                                          Gmul(col[3], 13));
    out[4 * c + 2] = static_cast<uint8_t>(Gmul(col[0], 13) ^ Gmul(col[1], 9) ^ Gmul(col[2], 14) ^
                                          Gmul(col[3], 11));
    out[4 * c + 3] = static_cast<uint8_t>(Gmul(col[0], 11) ^ Gmul(col[1], 13) ^ Gmul(col[2], 9) ^
                                          Gmul(col[3], 14));
  }
  return out;
}

Block Xor(const Block& a, const Block& b) {
  Block out;
  for (int i = 0; i < kBlockSize; ++i) {
    out[i] = a[i] ^ b[i];
  }
  return out;
}

}  // namespace

KeySchedule ExpandKey(const Block& key) {
  KeySchedule keys;
  keys[0] = key;
  uint8_t rcon = 0x01;
  for (int round = 1; round < kNumRoundKeys; ++round) {
    const RoundKey& prev = keys[round - 1];
    RoundKey& out = keys[round];
    // RotWord + SubWord + Rcon on the previous last word.
    uint8_t t[4] = {Tables().sbox[prev[13]], Tables().sbox[prev[14]], Tables().sbox[prev[15]],
                    Tables().sbox[prev[12]]};
    t[0] ^= rcon;
    rcon = Xtime(rcon);
    for (int i = 0; i < 4; ++i) {
      out[i] = static_cast<uint8_t>(prev[i] ^ t[i]);
    }
    for (int i = 4; i < kBlockSize; ++i) {
      out[i] = static_cast<uint8_t>(prev[i] ^ out[i - 4]);
    }
  }
  return keys;
}

KeySchedule InverseKeySchedule(const KeySchedule& enc) {
  KeySchedule dec = enc;
  for (int round = 1; round < kNumRounds; ++round) {
    dec[round] = InvMixColumnsBlock(enc[round]);
  }
  return dec;
}

Block EncryptRound(const Block& state, const RoundKey& key) {
  return Xor(MixColumns(ShiftRows(SubBytes(state))), key);
}

Block EncryptLastRound(const Block& state, const RoundKey& key) {
  return Xor(ShiftRows(SubBytes(state)), key);
}

Block DecryptRound(const Block& state, const RoundKey& key) {
  // Equivalent inverse cipher (aesdec): expects an InvMixColumns'd round key.
  return Xor(InvMixColumns(InvSubBytes(InvShiftRows(state))), key);
}

Block DecryptLastRound(const Block& state, const RoundKey& key) {
  return Xor(InvSubBytes(InvShiftRows(state)), key);
}

Block InvMixColumnsBlock(const Block& block) { return InvMixColumns(block); }

Block EncryptBlock(const Block& plaintext, const KeySchedule& keys) {
  Block state = Xor(plaintext, keys[0]);
  for (int round = 1; round < kNumRounds; ++round) {
    state = EncryptRound(state, keys[round]);
  }
  return EncryptLastRound(state, keys[kNumRounds]);
}

Block DecryptBlock(const Block& ciphertext, const KeySchedule& enc_keys) {
  const KeySchedule dec = InverseKeySchedule(enc_keys);
  Block state = Xor(ciphertext, enc_keys[kNumRounds]);
  for (int round = kNumRounds - 1; round >= 1; --round) {
    state = DecryptRound(state, dec[round]);
  }
  return DecryptLastRound(state, enc_keys[0]);
}

void CryptRegion(std::span<uint8_t> data, const KeySchedule& keys, uint64_t nonce) {
  uint64_t counter = 0;
  for (size_t offset = 0; offset < data.size(); offset += kBlockSize, ++counter) {
    Block ctr{};
    std::memcpy(ctr.data(), &nonce, sizeof(nonce));
    std::memcpy(ctr.data() + 8, &counter, sizeof(counter));
    const Block keystream = EncryptBlock(ctr, keys);
    const size_t chunk = std::min<size_t>(kBlockSize, data.size() - offset);
    for (size_t i = 0; i < chunk; ++i) {
      data[offset + i] ^= keystream[i];
    }
  }
}

}  // namespace memsentry::aes

#include "src/aes/aes128.h"

#include <cstring>

namespace memsentry::aes {
namespace {

// GF(2^8) arithmetic over the AES polynomial x^8 + x^4 + x^3 + x + 1 (0x11b).
uint8_t Xtime(uint8_t a) { return static_cast<uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1b : 0x00)); }

uint8_t Gmul(uint8_t a, uint8_t b) {
  uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) {
      p ^= a;
    }
    a = Xtime(a);
    b >>= 1;
  }
  return p;
}

// The S-box is computed (inverse in GF(2^8) + affine transform) rather than
// transcribed; tests pin the known values S(0x00)=0x63, S(0x53)=0xed. The
// round tables compose the S-box with the MixColumns constants so a round is
// pure table lookups and xors — the byte-wise Gmul formulation this replaces
// spent an 8-iteration bit loop per GF multiply on the region-crypt hot path.
struct SboxTables {
  uint8_t sbox[256];
  uint8_t inv_sbox[256];
  // Encrypt round: {2,3}·S(x) (the 1·S(x) contributions read sbox directly).
  uint8_t enc2[256];
  uint8_t enc3[256];
  // Decrypt round: {14,11,13,9}·S⁻¹(x).
  uint8_t dec14[256];
  uint8_t dec11[256];
  uint8_t dec13[256];
  uint8_t dec9[256];
  // Raw InvMixColumns constants for aesimc (no S-box composition).
  uint8_t mul14[256];
  uint8_t mul11[256];
  uint8_t mul13[256];
  uint8_t mul9[256];

  SboxTables() {
    // Build inverses via brute force once; table construction is not hot.
    uint8_t inverse[256] = {0};
    for (int a = 1; a < 256; ++a) {
      for (int b = 1; b < 256; ++b) {
        if (Gmul(static_cast<uint8_t>(a), static_cast<uint8_t>(b)) == 1) {
          inverse[a] = static_cast<uint8_t>(b);
          break;
        }
      }
    }
    for (int x = 0; x < 256; ++x) {
      const uint8_t inv = inverse[x];
      uint8_t s = 0x63;
      for (int i = 0; i < 8; ++i) {
        const uint8_t bit = static_cast<uint8_t>(
            ((inv >> i) ^ (inv >> ((i + 4) & 7)) ^ (inv >> ((i + 5) & 7)) ^
             (inv >> ((i + 6) & 7)) ^ (inv >> ((i + 7) & 7))) &
            1);
      s = static_cast<uint8_t>(s ^ (bit << i));
      }
      // s started as the affine constant 0x63; the loop xored in the rotated
      // bits, so s now holds the full affine transform of inv.
      sbox[x] = s;
      inv_sbox[s] = static_cast<uint8_t>(x);
    }
    for (int x = 0; x < 256; ++x) {
      const uint8_t b = static_cast<uint8_t>(x);
      enc2[x] = Gmul(sbox[x], 2);
      enc3[x] = Gmul(sbox[x], 3);
      dec14[x] = Gmul(inv_sbox[x], 14);
      dec11[x] = Gmul(inv_sbox[x], 11);
      dec13[x] = Gmul(inv_sbox[x], 13);
      dec9[x] = Gmul(inv_sbox[x], 9);
      mul14[x] = Gmul(b, 14);
      mul11[x] = Gmul(b, 11);
      mul13[x] = Gmul(b, 13);
      mul9[x] = Gmul(b, 9);
    }
  }
};

const SboxTables& Tables() {
  static const SboxTables tables;
  return tables;
}

Block InvSubBytes(const Block& in) {
  const SboxTables& t = Tables();
  Block out;
  for (int i = 0; i < kBlockSize; ++i) {
    out[i] = t.inv_sbox[in[i]];
  }
  return out;
}

// State layout is FIPS-197 column-major: byte index = row + 4*column.
Block InvShiftRows(const Block& in) {
  Block out;
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      out[r + 4 * c] = in[r + 4 * ((c - r + 4) & 3)];
    }
  }
  return out;
}

Block InvMixColumns(const Block& in) {
  const SboxTables& t = Tables();
  Block out;
  for (int c = 0; c < 4; ++c) {
    const uint8_t* col = &in[4 * c];
    out[4 * c + 0] =
        static_cast<uint8_t>(t.mul14[col[0]] ^ t.mul11[col[1]] ^ t.mul13[col[2]] ^ t.mul9[col[3]]);
    out[4 * c + 1] =
        static_cast<uint8_t>(t.mul9[col[0]] ^ t.mul14[col[1]] ^ t.mul11[col[2]] ^ t.mul13[col[3]]);
    out[4 * c + 2] =
        static_cast<uint8_t>(t.mul13[col[0]] ^ t.mul9[col[1]] ^ t.mul14[col[2]] ^ t.mul11[col[3]]);
    out[4 * c + 3] =
        static_cast<uint8_t>(t.mul11[col[0]] ^ t.mul13[col[1]] ^ t.mul9[col[2]] ^ t.mul14[col[3]]);
  }
  return out;
}

Block Xor(const Block& a, const Block& b) {
  Block out;
  for (int i = 0; i < kBlockSize; ++i) {
    out[i] = a[i] ^ b[i];
  }
  return out;
}

}  // namespace

KeySchedule ExpandKey(const Block& key) {
  KeySchedule keys;
  keys[0] = key;
  uint8_t rcon = 0x01;
  for (int round = 1; round < kNumRoundKeys; ++round) {
    const RoundKey& prev = keys[round - 1];
    RoundKey& out = keys[round];
    // RotWord + SubWord + Rcon on the previous last word.
    uint8_t t[4] = {Tables().sbox[prev[13]], Tables().sbox[prev[14]], Tables().sbox[prev[15]],
                    Tables().sbox[prev[12]]};
    t[0] ^= rcon;
    rcon = Xtime(rcon);
    for (int i = 0; i < 4; ++i) {
      out[i] = static_cast<uint8_t>(prev[i] ^ t[i]);
    }
    for (int i = 4; i < kBlockSize; ++i) {
      out[i] = static_cast<uint8_t>(prev[i] ^ out[i - 4]);
    }
  }
  return keys;
}

KeySchedule InverseKeySchedule(const KeySchedule& enc) {
  KeySchedule dec = enc;
  for (int round = 1; round < kNumRounds; ++round) {
    dec[round] = InvMixColumnsBlock(enc[round]);
  }
  return dec;
}

// SubBytes → ShiftRows → MixColumns → AddRoundKey, fully composed: column c
// of the shifted state is (in[0+4c], in[1+4(c+1)], in[2+4(c+2)], in[3+4(c+3)])
// and the enc2/enc3 tables fold the S-box into the MixColumns constants.
Block EncryptRound(const Block& state, const RoundKey& key) {
  const SboxTables& t = Tables();
  Block out;
  for (int c = 0; c < 4; ++c) {
    const uint8_t a0 = state[0 + 4 * c];
    const uint8_t a1 = state[1 + 4 * ((c + 1) & 3)];
    const uint8_t a2 = state[2 + 4 * ((c + 2) & 3)];
    const uint8_t a3 = state[3 + 4 * ((c + 3) & 3)];
    out[4 * c + 0] =
        static_cast<uint8_t>(t.enc2[a0] ^ t.enc3[a1] ^ t.sbox[a2] ^ t.sbox[a3] ^ key[4 * c + 0]);
    out[4 * c + 1] =
        static_cast<uint8_t>(t.sbox[a0] ^ t.enc2[a1] ^ t.enc3[a2] ^ t.sbox[a3] ^ key[4 * c + 1]);
    out[4 * c + 2] =
        static_cast<uint8_t>(t.sbox[a0] ^ t.sbox[a1] ^ t.enc2[a2] ^ t.enc3[a3] ^ key[4 * c + 2]);
    out[4 * c + 3] =
        static_cast<uint8_t>(t.enc3[a0] ^ t.sbox[a1] ^ t.sbox[a2] ^ t.enc2[a3] ^ key[4 * c + 3]);
  }
  return out;
}

Block EncryptLastRound(const Block& state, const RoundKey& key) {
  const SboxTables& t = Tables();
  Block out;
  for (int c = 0; c < 4; ++c) {
    for (int r = 0; r < 4; ++r) {
      out[r + 4 * c] = static_cast<uint8_t>(t.sbox[state[r + 4 * ((c + r) & 3)]] ^ key[r + 4 * c]);
    }
  }
  return out;
}

// Equivalent inverse cipher (aesdec): expects an InvMixColumns'd round key.
// InvShiftRows → InvSubBytes → InvMixColumns, composed via the dec* tables.
Block DecryptRound(const Block& state, const RoundKey& key) {
  const SboxTables& t = Tables();
  Block out;
  for (int c = 0; c < 4; ++c) {
    const uint8_t a0 = state[0 + 4 * c];
    const uint8_t a1 = state[1 + 4 * ((c + 3) & 3)];
    const uint8_t a2 = state[2 + 4 * ((c + 2) & 3)];
    const uint8_t a3 = state[3 + 4 * ((c + 1) & 3)];
    out[4 * c + 0] =
        static_cast<uint8_t>(t.dec14[a0] ^ t.dec11[a1] ^ t.dec13[a2] ^ t.dec9[a3] ^ key[4 * c + 0]);
    out[4 * c + 1] =
        static_cast<uint8_t>(t.dec9[a0] ^ t.dec14[a1] ^ t.dec11[a2] ^ t.dec13[a3] ^ key[4 * c + 1]);
    out[4 * c + 2] =
        static_cast<uint8_t>(t.dec13[a0] ^ t.dec9[a1] ^ t.dec14[a2] ^ t.dec11[a3] ^ key[4 * c + 2]);
    out[4 * c + 3] =
        static_cast<uint8_t>(t.dec11[a0] ^ t.dec13[a1] ^ t.dec9[a2] ^ t.dec14[a3] ^ key[4 * c + 3]);
  }
  return out;
}

Block DecryptLastRound(const Block& state, const RoundKey& key) {
  return Xor(InvSubBytes(InvShiftRows(state)), key);
}

Block InvMixColumnsBlock(const Block& block) { return InvMixColumns(block); }

Block EncryptBlock(const Block& plaintext, const KeySchedule& keys) {
  Block state = Xor(plaintext, keys[0]);
  for (int round = 1; round < kNumRounds; ++round) {
    state = EncryptRound(state, keys[round]);
  }
  return EncryptLastRound(state, keys[kNumRounds]);
}

Block DecryptBlock(const Block& ciphertext, const KeySchedule& enc_keys) {
  const KeySchedule dec = InverseKeySchedule(enc_keys);
  Block state = Xor(ciphertext, enc_keys[kNumRounds]);
  for (int round = kNumRounds - 1; round >= 1; --round) {
    state = DecryptRound(state, dec[round]);
  }
  return DecryptLastRound(state, enc_keys[0]);
}

void CryptRegion(std::span<uint8_t> data, const KeySchedule& keys, uint64_t nonce) {
  uint64_t counter = 0;
  for (size_t offset = 0; offset < data.size(); offset += kBlockSize, ++counter) {
    Block ctr{};
    std::memcpy(ctr.data(), &nonce, sizeof(nonce));
    std::memcpy(ctr.data() + 8, &counter, sizeof(counter));
    const Block keystream = EncryptBlock(ctr, keys);
    const size_t chunk = std::min<size_t>(kBlockSize, data.size() - offset);
    for (size_t i = 0; i < chunk; ++i) {
      data[offset + i] ^= keystream[i];
    }
  }
}

}  // namespace memsentry::aes

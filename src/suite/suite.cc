#include "src/suite/workloads.h"

#include "src/suite/suite_internal.h"
#include "src/workloads/spec_profiles.h"

namespace memsentry::suite {

void PrintFigure(const std::vector<eval::FigureSeries>& series,
                 const std::vector<double>& paper_geomeans) {
  std::printf("%-16s", "benchmark");
  for (const auto& s : series) {
    std::printf("%10s", s.config.c_str());
  }
  std::printf("\n");
  const auto profiles = workloads::SpecCpu2006();
  for (size_t b = 0; b < profiles.size(); ++b) {
    std::printf("%-16s", profiles[b].name.c_str());
    for (const auto& s : series) {
      std::printf("%10.2f", s.normalized[b]);
    }
    std::printf("\n");
  }
  std::printf("%-16s", "geomean");
  for (const auto& s : series) {
    std::printf("%10.3f", s.geomean);
  }
  std::printf("\n%-16s", "paper geomean");
  for (size_t i = 0; i < series.size(); ++i) {
    if (i < paper_geomeans.size()) {
      std::printf("%10.3f", paper_geomeans[i]);
    } else {
      std::printf("%10s", "-");
    }
  }
  std::printf("\n(normalized runtime; 1.00 = uninstrumented baseline)\n");
}

json::Value ExperimentToJson(const eval::ExperimentResult& result) {
  json::Value v = json::Value::Object();
  v.Set("normalized", result.normalized);
  v.Set("base_cycles", result.base_cycles);
  v.Set("prot_cycles", result.prot_cycles);
  v.Set("base_instructions", result.base_instructions);
  v.Set("prot_instructions", result.prot_instructions);
  return v;
}

eval::ExperimentResult ExperimentFromJson(const json::Value& value) {
  eval::ExperimentResult result;
  result.normalized = value.NumberOr("normalized", -1);
  result.base_cycles = value.NumberOr("base_cycles", 0);
  result.prot_cycles = value.NumberOr("prot_cycles", 0);
  result.base_instructions = value.NumberOr("base_instructions", 0);
  result.prot_instructions = value.NumberOr("prot_instructions", 0);
  return result;
}

const eval::WorkloadRegistry& SuiteRegistry() {
  static const eval::WorkloadRegistry* registry = [] {
    auto* r = new eval::WorkloadRegistry();
    RegisterTableWorkloads(*r);
    RegisterFigureWorkloads(*r);
    RegisterAblationWorkloads(*r);
    RegisterAdversaryWorkloads(*r);
    return r;
  }();
  return *registry;
}

const eval::Workload* FindSuiteWorkload(std::string_view name) {
  return SuiteRegistry().Find(name);
}

}  // namespace memsentry::suite

// Figure-family workloads: fig3/4/5/6, the mprotect baseline, the crypt
// region-size sweep and the SafeStack case study. Cell granularity is one
// (configuration, benchmark) experiment — the unit the engine steals across
// workers — and assembly reproduces the monolithic sweeps' floating-point
// accumulation order exactly (eval::AssembleFigureSeries), so the metric
// stream is bit-identical to the historical binaries for every schedule.
#include <cmath>
#include <optional>

#include "src/base/stats_util.h"
#include "src/core/memsentry.h"
#include "src/defenses/safestack.h"
#include "src/sim/executor.h"
#include "src/suite/suite_internal.h"
#include "src/suite/workloads.h"
#include "src/workloads/spec_profiles.h"
#include "src/workloads/synth.h"

namespace memsentry::suite {
namespace {

using eval::ReportBuilder;
using eval::Workload;
using eval::WorkloadCell;
using eval::WorkloadOptions;

// --- fig3..fig6 ------------------------------------------------------------

struct FigureSpec {
  const char* name;    // workload / binary name
  const char* prefix;  // metric prefix
  const char* title;   // PrintHeader banner
  bool address;        // fig3 (address sweep) vs fig4..6 (domain sweep)
  eval::DomainScenario scenario;
  std::vector<double> paper;
};

const std::vector<FigureSpec>& FigureSpecs() {
  static const std::vector<FigureSpec>* specs = new std::vector<FigureSpec>{
      {"fig3_address", "fig3",
       "Figure 3 — address-based isolation (MPX vs SFI), all loads/stores instrumented",
       true, eval::DomainScenario::kCallRet, {1.028, 1.040, 1.120, 1.171, 1.147, 1.196}},
      {"fig4_callret", "fig4",
       "Figure 4 — domain-based isolation at every call+ret (shadow stack)",
       false, eval::DomainScenario::kCallRet, {2.30, 4.57, 3.17}},
      {"fig5_indirect", "fig5",
       "Figure 5 — domain-based isolation at every indirect branch (CFI)",
       false, eval::DomainScenario::kIndirectBranch, {1.34, 1.82, 1.60}},
      {"fig6_syscall", "fig6",
       "Figure 6 — domain-based isolation at every system call",
       false, eval::DomainScenario::kSyscall, {1.011, 1.055, 1.22}},
  };
  return *specs;
}

size_t FigureConfigCount(const FigureSpec& spec) {
  return spec.address ? eval::AddressSweepConfigs().size() : eval::DomainSweepConfigs().size();
}

const char* FigureConfigName(const FigureSpec& spec, size_t c) {
  return spec.address ? eval::AddressSweepConfigs()[c].name : eval::DomainSweepConfigs()[c].name;
}

Workload MakeFigureWorkload(const FigureSpec& spec) {
  Workload workload;
  workload.name = spec.name;
  workload.cells = [&spec](const WorkloadOptions&) {
    std::vector<WorkloadCell> cells;
    const auto profiles = workloads::SpecCpu2006();
    for (size_t c = 0; c < FigureConfigCount(spec); ++c) {
      for (size_t p = 0; p < profiles.size(); ++p) {
        WorkloadCell cell;
        cell.name = std::string(FigureConfigName(spec, c)) + "/" + profiles[p].name;
        cell.run = [&spec, c, p](const WorkloadOptions& options) {
          const auto cell_profiles = workloads::SpecCpu2006();
          eval::ExperimentResult result;
          if (spec.address) {
            const eval::AddressSweepConfig& config = eval::AddressSweepConfigs()[c];
            result = eval::RunAddressBasedExperimentFull(cell_profiles[p], config.kind,
                                                         config.mode, options.experiment);
          } else {
            const eval::DomainSweepConfig& config = eval::DomainSweepConfigs()[c];
            result = eval::RunDomainBasedExperimentFull(cell_profiles[p], config.kind,
                                                        spec.scenario, options.experiment);
          }
          return ExperimentToJson(result);
        };
        cells.push_back(std::move(cell));
      }
    }
    return cells;
  };
  workload.assemble = [&spec](const WorkloadOptions& options,
                              const std::vector<json::Value>& payloads,
                              ReportBuilder& report) {
    std::vector<const char*> names;
    for (size_t c = 0; c < FigureConfigCount(spec); ++c) {
      names.push_back(FigureConfigName(spec, c));
    }
    std::vector<eval::ExperimentResult> cells;
    cells.reserve(payloads.size());
    for (const json::Value& payload : payloads) {
      cells.push_back(ExperimentFromJson(payload));
    }
    const auto series =
        eval::AssembleFigureSeries(names, workloads::SpecCpu2006().size(), cells);
    if (options.print) {
      PrintHeader(spec.title);
      PrintFigure(series, spec.paper);
    }
    report.AddFigure(spec.prefix, series, spec.paper);
    return 0;
  };
  return workload;
}

// --- mprotect_baseline -----------------------------------------------------

Workload MakeMprotectBaseline() {
  Workload workload;
  workload.name = "mprotect_baseline";
  workload.cells = [](const WorkloadOptions&) {
    std::vector<WorkloadCell> cells;
    const auto profiles = workloads::SpecCpu2006();
    for (size_t p = 0; p < profiles.size(); ++p) {
      WorkloadCell cell;
      cell.name = profiles[p].name;
      cell.run = [p](const WorkloadOptions& options) {
        const auto r = eval::RunDomainBasedExperimentFull(
            workloads::SpecCpu2006()[p], core::TechniqueKind::kMprotect,
            eval::DomainScenario::kCallRet, options.experiment);
        return ExperimentToJson(r);
      };
      cells.push_back(std::move(cell));
    }
    return cells;
  };
  workload.assemble = [](const WorkloadOptions& options,
                         const std::vector<json::Value>& payloads, ReportBuilder& report) {
    if (options.print) {
      PrintHeader("mprotect baseline — page-protection toggling at every call+ret");
      std::printf("%-16s %12s\n", "benchmark", "normalized");
    }
    const auto profiles = workloads::SpecCpu2006();
    std::vector<double> values;
    double total_cycles = 0;
    for (size_t p = 0; p < profiles.size(); ++p) {
      const eval::ExperimentResult r = ExperimentFromJson(payloads[p]);
      values.push_back(r.normalized);
      total_cycles += r.prot_cycles;
      report.AddFidelity("mprotect/norm/" + profiles[p].name, r.normalized,
                         eval::kPerBenchmarkTol);
      if (options.print) {
        std::printf("%-16s %12.1f\n", profiles[p].name.c_str(), r.normalized);
      }
    }
    if (options.print) {
      std::printf("%-16s %12.1f   (paper: 20-50x)\n", "geomean", GeoMean(values));
    }
    report.AddFidelity("mprotect/geomean", GeoMean(values), eval::kGeomeanTol, NAN,
                       "paper: 20-50x on call-dense benchmarks");
    report.AddPerf("mprotect/cycles/total", total_cycles);
    return 0;
  };
  return workload;
}

// --- crypt_size_sweep ------------------------------------------------------

const std::vector<uint64_t>& CryptSizes() {
  static const std::vector<uint64_t>* sizes =
      new std::vector<uint64_t>{16, 32, 64, 128, 256, 512, 1024, 2048};
  return *sizes;
}

Workload MakeCryptSizeSweep() {
  Workload workload;
  workload.name = "crypt_size_sweep";
  workload.cells = [](const WorkloadOptions&) {
    std::vector<WorkloadCell> cells;
    for (size_t i = 0; i < CryptSizes().size(); ++i) {
      WorkloadCell cell;
      cell.name = std::to_string(CryptSizes()[i]);
      cell.run = [i](const WorkloadOptions& options) {
        // One-size sweep: RunCryptSizeSweep's cells are independent, so the
        // single-point call is bit-identical to the full sweep's i-th point.
        const auto points = eval::RunCryptSizeSweep(
            *workloads::FindProfile("401.bzip2"), {CryptSizes()[i]}, options.experiment);
        json::Value payload = json::Value::Object();
        payload.Set("ok", !points.empty());
        if (!points.empty()) {
          payload.Set("region_bytes", points[0].region_bytes);
          payload.Set("normalized", points[0].normalized);
          payload.Set("prot_cycles", points[0].prot_cycles);
          payload.Set("instructions", points[0].instructions);
        }
        return payload;
      };
      cells.push_back(std::move(cell));
    }
    return cells;
  };
  workload.assemble = [](const WorkloadOptions& options,
                         const std::vector<json::Value>& payloads, ReportBuilder& report) {
    if (options.print) {
      PrintHeader("crypt region-size sweep (call/ret scenario, 401.bzip2)");
      std::printf("%12s %14s %18s\n", "region bytes", "normalized", "overhead vs 16 B");
    }
    double base_overhead = 0;
    for (const json::Value& payload : payloads) {
      if (!payload.BoolOr("ok", false)) {
        continue;  // failed sizes drop out in input order, like the sweep
      }
      const uint64_t region_bytes = static_cast<uint64_t>(payload.NumberOr("region_bytes", 0));
      const double normalized = payload.NumberOr("normalized", 0);
      if (region_bytes == 16) {
        base_overhead = normalized - 1.0;
      }
      const double relative = base_overhead > 0 ? (normalized - 1.0) / base_overhead : 1.0;
      const std::string bytes = std::to_string(region_bytes);
      report.AddFidelity("crypt_sweep/norm/" + bytes, normalized, eval::kPerBenchmarkTol);
      report.AddPerf("crypt_sweep/cycles/" + bytes, payload.NumberOr("prot_cycles", 0));
      report.AddSimulatedInstructions(payload.NumberOr("instructions", 0));
      if (region_bytes == 1024) {
        report.AddFidelity("crypt_sweep/relative_overhead_1024", relative,
                           eval::kPerBenchmarkTol, NAN,
                           "paper: ~15x total overhead at 1024 bytes, linear growth");
      }
      if (options.print) {
        std::printf("%12llu %14.2f %17.1fx\n",
                    static_cast<unsigned long long>(region_bytes), normalized, relative);
      }
    }
    if (options.print) {
      std::printf("(paper: linear growth; ~15x total at 1024 bytes)\n");
    }
    return 0;
  };
  return workload;
}

// --- safestack_casestudy ---------------------------------------------------

double RunSafeStack(const workloads::SpecProfile& profile, core::TechniqueKind kind,
                    const eval::ExperimentOptions& options) {
  // Baseline: plain program, ordinary stack. Nothing below reads the
  // technique — the MPX and SFI columns run the same baseline — so under the
  // engine's run memo it executes once per (profile, budget) and replays
  // thereafter. The recipe key hashes exactly the inputs this block reads: a
  // domain tag, every profile field, and the synthesis/run budgets.
  double base_cycles = 0;
  {
    eval::RunKeyHasher h;
    h.Str("safestack/base");
    eval::HashSpecProfile(h, profile);
    h.U64(options.target_instructions);
    h.U64(sim::RunConfig{}.max_instructions);
    const eval::RunMemo::Key key = h.Finish();
    std::optional<eval::RunMemo::Result> hit;
    if (eval::RunMemo::Enabled()) {
      hit = eval::RunMemo::Global().Lookup(key);
    }
    if (hit) {
      if (!hit->ok) return -1;
      base_cycles = hit->cycles;
    } else {
      sim::Machine machine;
      sim::Process process(&machine);
      (void)workloads::PrepareWorkloadProcess(process, profile);
      workloads::SynthOptions synth;
      synth.target_instructions = options.target_instructions;
      ir::Module module = eval::SynthesizeSpecProgramCached(profile, synth);
      sim::Executor executor(&process, &module);
      auto result = executor.Run();
      if (eval::RunMemo::Enabled()) {
        eval::RunMemo::Global().Insert(
            key, eval::RunMemo::Result{result.halted, result.cycles, result.instructions});
      }
      if (!result.halted) return -1;
      base_cycles = result.cycles;
    }
  }
  // SafeStack + MemSentry: stack relocated above the split, all explicit
  // stores instrumented; implicit call/ret pushes stay exempt.
  sim::Machine machine;
  sim::Process process(&machine);
  (void)workloads::PrepareWorkloadProcess(process, profile);
  core::MemSentryConfig config;
  config.technique = kind;
  config.options.mode = core::ProtectMode::kWriteOnly;
  core::MemSentry ms(&process, config);
  auto base = defenses::SafeStackDefense::Install(process, ms.allocator());
  if (!base.ok()) return -1;
  workloads::SynthOptions synth;
  synth.target_instructions = options.target_instructions;
  ir::Module module = eval::SynthesizeSpecProgramCached(profile, synth);
  if (!ms.Protect(module).ok()) return -1;
  sim::Executor executor(&process, &module);
  auto result = executor.Run();
  if (!result.halted) return -1;
  return result.cycles / base_cycles;
}

Workload MakeSafeStackCaseStudy() {
  Workload workload;
  workload.name = "safestack_casestudy";
  workload.cells = [](const WorkloadOptions&) {
    std::vector<WorkloadCell> cells;
    const auto profiles = workloads::SpecCpu2006();
    for (size_t p = 0; p < profiles.size(); ++p) {
      WorkloadCell cell;
      cell.name = profiles[p].name;
      cell.run = [p](const WorkloadOptions& options) {
        const auto& profile = workloads::SpecCpu2006()[p];
        json::Value payload = json::Value::Object();
        payload.Set("mpx",
                    RunSafeStack(profile, core::TechniqueKind::kMpx, options.experiment));
        payload.Set("sfi",
                    RunSafeStack(profile, core::TechniqueKind::kSfi, options.experiment));
        return payload;
      };
      cells.push_back(std::move(cell));
    }
    return cells;
  };
  workload.assemble = [](const WorkloadOptions& options,
                         const std::vector<json::Value>& payloads, ReportBuilder& report) {
    if (options.print) {
      PrintHeader("SafeStack case study — MemSentry-hardened production shadow stack");
      std::printf("%-16s %10s %10s\n", "benchmark", "MPX-w", "SFI-w");
    }
    const auto profiles = workloads::SpecCpu2006();
    std::vector<double> mpx, sfi;
    for (size_t p = 0; p < profiles.size(); ++p) {
      const double m = payloads[p].NumberOr("mpx", -1);
      const double s = payloads[p].NumberOr("sfi", -1);
      mpx.push_back(m);
      sfi.push_back(s);
      report.AddFidelity("safestack/norm/MPX-w/" + profiles[p].name, m,
                         eval::kPerBenchmarkTol);
      report.AddFidelity("safestack/norm/SFI-w/" + profiles[p].name, s,
                         eval::kPerBenchmarkTol);
      if (options.print) {
        std::printf("%-16s %10.2f %10.2f\n", profiles[p].name.c_str(), m, s);
      }
    }
    if (options.print) {
      std::printf("%-16s %10.3f %10.3f\n", "geomean", GeoMean(mpx), GeoMean(sfi));
      std::printf(
          "(paper: identical to Figure 3 -w: MPX 1.028, SFI 1.040 — SafeStack itself\n");
      std::printf(" introduces no additional overhead)\n");
    }
    report.AddFidelity("safestack/geomean/MPX-w", GeoMean(mpx), eval::kGeomeanTol, 1.028);
    report.AddFidelity("safestack/geomean/SFI-w", GeoMean(sfi), eval::kGeomeanTol, 1.040);
    return 0;
  };
  return workload;
}

}  // namespace

void RegisterFigureWorkloads(eval::WorkloadRegistry& registry) {
  for (const FigureSpec& spec : FigureSpecs()) {
    registry.Register(MakeFigureWorkload(spec));
  }
  registry.Register(MakeMprotectBaseline());
  registry.Register(MakeCryptSizeSweep());
  registry.Register(MakeSafeStackCaseStudy());
}

}  // namespace memsentry::suite

// Shared helpers for the suite workload implementations. Internal to
// src/suite — the public surface is workloads.h.
#ifndef MEMSENTRY_SRC_SUITE_SUITE_INTERNAL_H_
#define MEMSENTRY_SRC_SUITE_SUITE_INTERNAL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/eval/campaign_engine.h"
#include "src/eval/figures.h"

namespace memsentry::suite {

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

// One figure as rows of benchmarks x configuration columns — the same table
// bench::PrintFigure renders.
void PrintFigure(const std::vector<eval::FigureSeries>& series,
                 const std::vector<double>& paper_geomeans);

// options.extra lookups with the bench binaries' strtoull(.., 0) parsing.
inline uint64_t ExtraU64(const eval::WorkloadOptions& options, const char* key,
                         uint64_t fallback) {
  const auto it = options.extra.find(key);
  if (it == options.extra.end()) {
    return fallback;
  }
  return std::strtoull(it->second.c_str(), nullptr, 0);
}

inline bool HasExtra(const eval::WorkloadOptions& options, const char* key) {
  return options.extra.find(key) != options.extra.end();
}

inline std::string ExtraString(const eval::WorkloadOptions& options, const char* key) {
  const auto it = options.extra.find(key);
  return it == options.extra.end() ? std::string() : it->second;
}

// ExperimentResult <-> cell payload. json numbers round-trip doubles
// bit-exactly (shortest-round-trip serialization), so assembly sees the
// same operands a monolithic sweep would.
json::Value ExperimentToJson(const eval::ExperimentResult& result);
eval::ExperimentResult ExperimentFromJson(const json::Value& value);

}  // namespace memsentry::suite

#endif  // MEMSENTRY_SRC_SUITE_SUITE_INTERNAL_H_

// Adversarial workloads: the attack matrix (R/W primitive vs every
// technique plus the per-strategy disclosure cells), the fault-containment
// matrix (one cell per injected fault), the generative campaign suite (one
// cell per technique slice), and the multi-tenant server sweep (one cell
// per (tenants, technique) point).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/attacks/campaign_gen.h"
#include "src/attacks/harness.h"
#include "src/attacks/primitives.h"
#include "src/attacks/strategies.h"
#include "src/base/crash_handler.h"
#include "src/core/safe_region.h"
#include "src/defenses/mmap_policy.h"
#include "src/eval/fault_campaign.h"
#include "src/sim/decode_cache.h"
#include "src/suite/suite_internal.h"
#include "src/suite/workloads.h"
#include "src/workloads/server.h"

namespace memsentry::suite {
namespace {

using eval::ReportBuilder;
using eval::Workload;
using eval::WorkloadCell;
using eval::WorkloadOptions;

std::string HexString(uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llx", static_cast<unsigned long long>(value));
  return buf;
}

uint64_t HexU64(const json::Value& value, const char* key) {
  return std::strtoull(value.StringOr(key, "0").c_str(), nullptr, 16);
}

// --- attack_matrix ---

json::Value RunAttackMatrixCell(const WorkloadOptions&) {
  json::Value rows = json::Value::Array();
  for (const auto& r : attacks::RunAttackMatrix()) {
    json::Value row = json::Value::Object();
    row.Set("technique", core::TechniqueKindName(r.technique));
    row.Set("located", r.region_located);
    row.Set("locate_probes", static_cast<uint64_t>(r.locate_probes));
    row.Set("read_outcome", static_cast<int>(r.read_outcome));
    row.Set("read_name", attacks::OutcomeName(r.read_outcome));
    row.Set("write_outcome", static_cast<int>(r.write_outcome));
    row.Set("write_name", attacks::OutcomeName(r.write_outcome));
    row.Set("detail", r.detail);
    rows.Append(std::move(row));
  }
  return rows;
}

json::Value StrategyPayload(bool found, uint64_t probes) {
  json::Value payload = json::Value::Object();
  payload.Set("found", found);
  payload.Set("probes", probes);
  return payload;
}

json::Value RunAllocOracleCell(const WorkloadOptions&) {
  // Allocation oracle vs a small hidden region: the headline break.
  sim::Machine machine;
  sim::Process process(&machine);
  core::SafeRegionAllocator allocator(&process, core::TechniqueKind::kInfoHide, /*seed=*/77);
  auto region = allocator.Alloc("hidden", 8 * kPageSize);
  auto located = attacks::AllocationOracleAttack(process, 8);
  return StrategyPayload(region.ok() && located.found, located.probes);
}

json::Value RunAllocOracleGuardedCell(const WorkloadOptions&) {
  // The same oracle with MapGuard guard pages flanking the region.
  sim::Machine machine;
  sim::Process process(&machine);
  core::SafeRegionAllocator allocator(&process, core::TechniqueKind::kInfoHide, /*seed=*/77);
  auto region = allocator.Alloc("hidden", 8 * kPageSize);
  defenses::MmapPolicy policy(&process, defenses::MmapPolicyConfig::Strict(), /*seed=*/77);
  (void)policy.InstallGuards();
  auto located = attacks::AllocationOracleAttack(process, 8);
  return StrategyPayload(region.ok() && located.found, located.probes);
}

json::Value RunCrashScanCell(const WorkloadOptions&) {
  // Crash-resistant scan vs a CPI-style 4 GiB reservation: tractable.
  sim::Machine machine;
  sim::Process process(&machine);
  core::SafeRegionAllocator allocator(&process, core::TechniqueKind::kInfoHide, /*seed=*/5);
  auto region = allocator.Alloc("cpi-region", uint64_t{4} << 30);
  auto technique = core::CreateTechnique(core::TechniqueKind::kInfoHide);
  attacks::ArbitraryRw rw(&process, technique.get());
  auto located = attacks::CrashResistantScan(rw, sim::kStackTop, kAddressSpaceEnd,
                                             /*stride=*/uint64_t{1} << 30,
                                             /*probe_budget=*/1 << 20);
  return StrategyPayload(region.ok() && located.found, located.probes);
}

json::Value RunThreadSprayCell(const WorkloadOptions&) {
  // Thread spraying vs a 256 KiB region: density makes scanning work.
  sim::Machine machine;
  sim::Process process(&machine);
  core::SafeRegionAllocator allocator(&process, core::TechniqueKind::kInfoHide, /*seed=*/9);
  const uint64_t kRegionBytes = 256 * 1024;
  auto region = allocator.Alloc("original", kRegionBytes);
  auto technique = core::CreateTechnique(core::TechniqueKind::kInfoHide);
  attacks::ArbitraryRw rw(&process, technique.get());
  auto located = attacks::ThreadSprayingAttack(process, rw, allocator, kRegionBytes,
                                               /*spray_count=*/512,
                                               /*probe_budget=*/3'000'000);
  return StrategyPayload(region.ok() && located.found, located.probes);
}

constexpr const char* kStrategyNames[] = {"alloc-oracle", "alloc-oracle-guarded",
                                          "crash-scan-4g", "thread-spray"};

int AssembleAttackMatrix(const WorkloadOptions& options, const std::vector<json::Value>& payloads,
                         ReportBuilder& report) {
  const bool print = options.print;
  if (print) {
    std::printf("\n================================================================\n");
    std::printf("Attack matrix — arbitrary R/W primitive vs every technique\n");
    std::printf("================================================================\n");
    std::printf("%-12s %-9s %-13s %-12s %-12s %s\n", "technique", "located", "oracle probes",
                "read", "write", "notes");
  }
  for (const json::Value& r : payloads[0].items()) {
    const std::string technique = r.StringOr("technique", "");
    const bool located = r.BoolOr("located", false);
    if (print) {
      std::printf("%-12s %-9s %-13llu %-12s %-12s %s\n", technique.c_str(),
                  located ? "yes" : "no",
                  static_cast<unsigned long long>(r.NumberOr("locate_probes", 0)),
                  r.StringOr("read_name", "").c_str(), r.StringOr("write_name", "").c_str(),
                  r.StringOr("detail", "").c_str());
    }
    // The security results are the paper's headline claim; any change in an
    // outcome (e.g. a technique suddenly leaking) is a hard fidelity break.
    const std::string prefix = "attack/" + technique;
    report.AddFidelity(prefix + "/located", located ? 1 : 0, 0.0);
    report.AddFidelity(prefix + "/read_outcome", r.NumberOr("read_outcome", -1), 0.0, NAN,
                       r.StringOr("read_name", ""));
    report.AddFidelity(prefix + "/write_outcome", r.NumberOr("write_outcome", -1), 0.0, NAN,
                       r.StringOr("write_name", ""));
    report.AddPerf(prefix + "/locate_probes", r.NumberOr("locate_probes", 0), 0.5);
  }
  if (print) {
    std::printf("\nDeterministic techniques hand the attacker the region's address and still\n");
    std::printf("hold; the information-hiding baseline is located in a few dozen probes and\n");
    std::printf("fully compromised — no need to hide.\n");
    std::printf("\n%-22s %-7s %s\n", "locate strategy", "found", "probes");
  }
  for (size_t s = 0; s < 4; ++s) {
    const json::Value& row = payloads[1 + s];
    const bool found = row.BoolOr("found", false);
    const double probes = row.NumberOr("probes", 0);
    if (print) {
      std::printf("%-22s %-7s %llu\n", kStrategyNames[s], found ? "yes" : "no",
                  static_cast<unsigned long long>(probes));
    }
    const std::string prefix = std::string("attack/strategy/") + kStrategyNames[s];
    report.AddFidelity(prefix + "/found", found ? 1 : 0, 0.0);
    report.AddFidelity(prefix + "/probes", probes, 0.0);
  }
  if (print) {
    std::printf("\nMapGuard's guard pages skew the oracle's hole measurement: the guarded\n");
    std::printf("victim stays hidden while the unguarded one falls in the same probe budget.\n");
  }
  return 0;
}

// --- fault_matrix ---

eval::FaultCampaignOptions FaultOptionsFromExtra(const WorkloadOptions& options) {
  eval::FaultCampaignOptions fault;
  if (HasExtra(options, "seed")) {
    fault.seed = ExtraU64(options, "seed", fault.seed);
  }
  fault.force_crash = ExtraString(options, "force_crash");
  return fault;
}

// The machine-readable replay spec memsentry_cli consumes. `expected` is
// empty for crashes (replay reproduces the abort) and the containment name
// for escape bundles (replay compares outcomes).
std::string ReplaySpec(const eval::FaultCampaignOptions& options, const char* technique,
                       const char* site, const char* expected) {
  json::Value spec = json::Value::Object();
  spec.Set("kind", "fault_cell");
  spec.Set("technique", technique);
  spec.Set("site", site);
  spec.Set("seed", options.seed);
  if (!options.force_crash.empty()) {
    spec.Set("force_crash", options.force_crash);
  }
  if (expected[0] != '\0') {
    spec.Set("expected", expected);
  }
  return spec.Dump(0);
}

json::Value RunFaultMatrixCell(const WorkloadOptions& wo, core::TechniqueKind kind,
                               sim::FaultSite site) {
  const eval::FaultCampaignOptions options = FaultOptionsFromExtra(wo);
  const char* technique_name = core::TechniqueKindName(kind);
  const char* site_name = sim::FaultSiteName(site);

  // Crash-context staging is process-global; only sound when the engine
  // isn't interleaving cells (serial_standalone guarantees that here).
  base::CrashContext context;
  if (wo.crash_contexts) {
    context.binary = "fault_matrix";
    context.cell = std::string(technique_name) + "/" + site_name;
    context.seed = options.seed;
    context.config_json = ExtraString(wo, "config_json");
    context.replay_json = ReplaySpec(options, technique_name, site_name, "");
    base::SetCrashContext(context);
  }

  eval::FaultCellResult cell = eval::RunFaultCell(kind, site, options);

  if (wo.crash_contexts) {
    if (cell.outcome == eval::Containment::kEscaped) {
      // The process survives an escape, so trap-style bundles never fire;
      // write one programmatically with the outcome pinned for replay.
      context.replay_json = ReplaySpec(options, technique_name, site_name, "ESCAPED");
      base::SetCrashContext(context);
      const std::string bundle = base::WriteCrashBundle("fault-matrix-escape");
      if (!bundle.empty()) {
        std::fprintf(stderr, "fault_matrix: escape bundle at %s\n", bundle.c_str());
      }
    }
    base::ClearCrashCell();
  }

  json::Value payload = json::Value::Object();
  payload.Set("technique", technique_name);
  payload.Set("site", site_name);
  payload.Set("outcome", static_cast<int>(cell.outcome));
  payload.Set("outcome_name", eval::ContainmentName(cell.outcome));
  payload.Set("repairs", cell.repairs);
  payload.Set("quarantines", cell.quarantines);
  payload.Set("downgrades", cell.downgrades);
  payload.Set("detail", cell.detail);
  return payload;
}

int AssembleFaultMatrix(const WorkloadOptions& options, const std::vector<json::Value>& payloads,
                        ReportBuilder& report) {
  const eval::FaultCampaignOptions fault = FaultOptionsFromExtra(options);
  if (options.print) {
    PrintHeader("Fault matrix — injected faults vs every technique");
    std::printf("campaign seed: 0x%llx\n", static_cast<unsigned long long>(fault.seed));
    std::printf("%-10s %-26s %-9s %7s %11s %10s  %s\n", "technique", "fault site", "outcome",
                "repairs", "quarantines", "downgrades", "detail");
  }
  int detected = 0, degraded = 0, escaped = 0, repairs = 0, downgrades = 0;
  for (const json::Value& cell : payloads) {
    const int outcome = static_cast<int>(cell.NumberOr("outcome", 2));
    const int cell_repairs = static_cast<int>(cell.NumberOr("repairs", 0));
    const int cell_downgrades = static_cast<int>(cell.NumberOr("downgrades", 0));
    switch (static_cast<eval::Containment>(outcome)) {
      case eval::Containment::kDetected:
        ++detected;
        break;
      case eval::Containment::kDegraded:
        ++degraded;
        break;
      case eval::Containment::kEscaped:
        ++escaped;
        break;
    }
    repairs += cell_repairs;
    downgrades += cell_downgrades;
    if (options.print) {
      std::printf("%-10s %-26s %-9s %7d %11d %10d  %s\n", cell.StringOr("technique", "").c_str(),
                  cell.StringOr("site", "").c_str(), cell.StringOr("outcome_name", "").c_str(),
                  cell_repairs, static_cast<int>(cell.NumberOr("quarantines", 0)),
                  cell_downgrades, cell.StringOr("detail", "").c_str());
    }
    const std::string prefix = "fault/" + cell.StringOr("technique", "") + "/" +
                               cell.StringOr("site", "");
    // Zero tolerance: an outcome shift in any cell (detected->degraded, or
    // worse, anything->escaped) is a containment regression.
    report.AddFidelity(prefix + "/outcome", outcome, 0.0, NAN,
                       cell.StringOr("outcome_name", ""));
    report.AddInfo(prefix + "/repairs", cell_repairs);
    report.AddInfo(prefix + "/downgrades", cell_downgrades);
  }

  report.AddFidelity("fault/escaped_total", escaped, 0.0, NAN,
                     "silent-corruption escapes across the whole matrix");
  report.AddInfo("fault/detected_total", detected);
  report.AddInfo("fault/degraded_total", degraded);
  report.AddInfo("fault/repairs_total", repairs);
  report.AddInfo("fault/downgrades_total", downgrades);
  report.AddInfo("fault/seed", static_cast<double>(fault.seed));

  if (options.print) {
    std::printf("\n%d detected, %d degraded, %d ESCAPED (of %zu cells)\n", detected, degraded,
                escaped, payloads.size());
    std::printf("detected = correct architectural fault or clean errno refusal;\n");
    std::printf("degraded = containment audit repaired/quarantined state or the technique\n");
    std::printf("fell back along its configured chain; any escape is a test failure.\n");
  }
  return escaped > 0 ? 1 : 0;
}

// --- attack_campaigns ---

struct CampaignRun {
  attacks::CampaignSuiteOptions options;
  bool allow_escapes = false;
};

CampaignRun CampaignOptionsFromExtra(const WorkloadOptions& wo) {
  CampaignRun run;
  if (HasExtra(wo, "seed")) {
    run.options.seed = ExtraU64(wo, "seed", run.options.seed);
  }
  if (HasExtra(wo, "campaigns")) {
    // Total across techniques, rounded up to a per-technique count.
    const uint64_t total = ExtraU64(wo, "campaigns", 0);
    run.options.campaigns_per_technique =
        (total + core::kNumTechniques - 1) / core::kNumTechniques;
  }
  if (ExtraString(wo, "policy") == "off") {
    run.options.config.mmap_policy = false;
  }
  if (HasExtra(wo, "skip_audit")) {
    run.options.config.runtime_audit = false;
  }
  if (HasExtra(wo, "step_budget")) {
    run.options.config.step_budget = ExtraU64(wo, "step_budget", run.options.config.step_budget);
  }
  run.allow_escapes = HasExtra(wo, "allow_escapes");
  return run;
}

// One technique's slice of RunCampaignSuite: same seeds, same campaign
// order, same tally accumulation — the flat suite array is technique-major,
// so concatenating the eight cells reproduces it positionally.
json::Value RunCampaignTechniqueCell(const WorkloadOptions& wo, int technique) {
  const CampaignRun run = CampaignOptionsFromExtra(wo);
  const auto kind = static_cast<core::TechniqueKind>(technique);
  attacks::CampaignTally tally;
  json::Value anomalies = json::Value::Array();
  for (uint64_t index = 0; index < run.options.campaigns_per_technique; ++index) {
    const uint64_t seed = attacks::CampaignSeed(run.options.seed, kind, index);
    attacks::CampaignSpec spec = attacks::GenerateCampaign(kind, seed, index);
    const attacks::CampaignResult result = attacks::RunCampaign(spec, run.options.config);
    switch (result.outcome) {
      case attacks::CampaignOutcome::kDetected:
        ++tally.detected;
        break;
      case attacks::CampaignOutcome::kDegraded:
        ++tally.degraded;
        break;
      case attacks::CampaignOutcome::kEscaped:
        ++tally.escaped;
        break;
      case attacks::CampaignOutcome::kTimedOut:
        ++tally.timed_out;
        break;
    }
    tally.steps_run += result.steps_run;
    tally.probes += result.probes;
    if (result.outcome == attacks::CampaignOutcome::kEscaped ||
        result.outcome == attacks::CampaignOutcome::kTimedOut) {
      const attacks::CampaignSpec shrunk =
          run.options.shrink_anomalies ? attacks::ShrinkCampaign(spec, run.options.config)
                                       : spec;
      json::Value replay = attacks::CampaignToJson(shrunk, run.options.config, result.outcome);
      replay.Set("original_steps", static_cast<double>(spec.steps.size()));
      json::Value anomaly = json::Value::Object();
      anomaly.Set("replay", std::move(replay));
      anomaly.Set("outcome", static_cast<int>(result.outcome));
      anomaly.Set("outcome_name", attacks::CampaignOutcomeName(result.outcome));
      anomaly.Set("note", result.note);
      anomaly.Set("index", index);
      anomaly.Set("seed_hex", HexString(spec.seed));
      anomaly.Set("orig_steps", static_cast<uint64_t>(spec.steps.size()));
      anomaly.Set("shrunk_steps", static_cast<uint64_t>(shrunk.steps.size()));
      anomalies.Append(std::move(anomaly));
    }
  }
  json::Value payload = json::Value::Object();
  payload.Set("detected", tally.detected);
  payload.Set("degraded", tally.degraded);
  payload.Set("escaped", tally.escaped);
  payload.Set("timed_out", tally.timed_out);
  payload.Set("steps_run", tally.steps_run);
  payload.Set("probes", tally.probes);
  payload.Set("anomalies", std::move(anomalies));
  return payload;
}

int AssembleCampaigns(const WorkloadOptions& options, const std::vector<json::Value>& payloads,
                      ReportBuilder& report) {
  const CampaignRun run = CampaignOptionsFromExtra(options);
  const uint64_t total_campaigns =
      run.options.campaigns_per_technique * core::kNumTechniques;
  if (options.print) {
    PrintHeader("Attack campaigns — seeded generative adversary vs every technique");
    std::printf("suite seed: 0x%llx   campaigns: %llu (%llu per technique)\n",
                static_cast<unsigned long long>(run.options.seed),
                static_cast<unsigned long long>(total_campaigns),
                static_cast<unsigned long long>(run.options.campaigns_per_technique));
    std::printf("mmap policy: %s   runtime audit: %s   step budget: %llu\n",
                run.options.config.mmap_policy ? "strict (MapGuard)" : "OFF",
                run.options.config.runtime_audit ? "on" : "OFF",
                static_cast<unsigned long long>(run.options.config.step_budget));
    std::printf("\n%-10s %9s %9s %9s %10s %10s %10s\n", "technique", "detected", "degraded",
                "ESCAPED", "timed-out", "steps", "probes");
  }
  uint64_t total_detected = 0, total_degraded = 0, total_escaped = 0, total_timed_out = 0;
  for (int k = 0; k < core::kNumTechniques; ++k) {
    const auto kind = static_cast<core::TechniqueKind>(k);
    const json::Value& t = payloads[static_cast<size_t>(k)];
    const double detected = t.NumberOr("detected", 0);
    const double degraded = t.NumberOr("degraded", 0);
    const double escaped = t.NumberOr("escaped", 0);
    const double timed_out = t.NumberOr("timed_out", 0);
    total_detected += static_cast<uint64_t>(detected);
    total_degraded += static_cast<uint64_t>(degraded);
    total_escaped += static_cast<uint64_t>(escaped);
    total_timed_out += static_cast<uint64_t>(timed_out);
    if (options.print) {
      std::printf("%-10s %9llu %9llu %9llu %10llu %10llu %10llu\n",
                  core::TechniqueKindName(kind), static_cast<unsigned long long>(detected),
                  static_cast<unsigned long long>(degraded),
                  static_cast<unsigned long long>(escaped),
                  static_cast<unsigned long long>(timed_out),
                  static_cast<unsigned long long>(t.NumberOr("steps_run", 0)),
                  static_cast<unsigned long long>(t.NumberOr("probes", 0)));
    }
    const std::string prefix = std::string("campaign/") + core::TechniqueKindName(kind);
    // Zero tolerance: any drift in the outcome distribution — one campaign
    // flipping detected->degraded, or worse, anything->escaped — is a
    // containment regression against the committed baseline.
    report.AddFidelity(prefix + "/detected", detected, 0.0);
    report.AddFidelity(prefix + "/degraded", degraded, 0.0);
    report.AddFidelity(prefix + "/escaped", escaped, 0.0, NAN,
                       "silent escapes; pinned at zero under the default config");
    report.AddFidelity(prefix + "/timed_out", timed_out, 0.0);
    report.AddFidelity(prefix + "/steps_run", t.NumberOr("steps_run", 0), 0.0);
    report.AddInfo(prefix + "/probes", t.NumberOr("probes", 0));
  }
  report.AddFidelity("campaign/escaped_total", static_cast<double>(total_escaped), 0.0, NAN,
                     "escapes across all generated campaigns");
  report.AddFidelity("campaign/timed_out_total", static_cast<double>(total_timed_out), 0.0);
  report.AddInfo("campaign/seed", static_cast<double>(run.options.seed));
  report.AddInfo("campaign/total", static_cast<double>(total_campaigns));

  // Every anomaly becomes a crash bundle: the shrunk (1-minimal) spec is the
  // replay payload, the original spec rides along for forensics.
  for (int k = 0; k < core::kNumTechniques; ++k) {
    const auto kind = static_cast<core::TechniqueKind>(k);
    const json::Value* anomalies = payloads[static_cast<size_t>(k)].Find("anomalies");
    if (anomalies == nullptr) {
      continue;
    }
    for (const json::Value& anomaly : anomalies->items()) {
      const std::string label =
          std::string(core::TechniqueKindName(kind)) + "/campaign-" +
          std::to_string(static_cast<uint64_t>(anomaly.NumberOr("index", 0)));
      std::string bundle;
      if (options.crash_contexts) {
        base::CrashContext context;
        context.binary = "attack_campaigns";
        context.cell = label;
        context.seed = HexU64(anomaly, "seed_hex");
        context.config_json = ExtraString(options, "config_json");
        const json::Value* replay = anomaly.Find("replay");
        context.replay_json = replay != nullptr ? replay->Dump(0) : "";
        base::SetCrashContext(context);
        bundle = base::WriteCrashBundle(
            static_cast<attacks::CampaignOutcome>(static_cast<int>(
                anomaly.NumberOr("outcome", 0))) == attacks::CampaignOutcome::kEscaped
                ? "attack-campaign-escape"
                : "attack-campaign-timeout");
        base::ClearCrashCell();
      }
      if (options.print) {
        std::printf("%s: %s %s (%zu steps, shrunk to %zu) — %s\n",
                    anomaly.StringOr("outcome_name", "").c_str(), label.c_str(),
                    bundle.empty() ? "(bundle write failed)" : bundle.c_str(),
                    static_cast<size_t>(anomaly.NumberOr("orig_steps", 0)),
                    static_cast<size_t>(anomaly.NumberOr("shrunk_steps", 0)),
                    anomaly.StringOr("note", "").c_str());
      }
    }
  }

  if (options.print) {
    std::printf("\n%llu detected, %llu degraded, %llu ESCAPED, %llu timed out (of %llu)\n",
                static_cast<unsigned long long>(total_detected),
                static_cast<unsigned long long>(total_degraded),
                static_cast<unsigned long long>(total_escaped),
                static_cast<unsigned long long>(total_timed_out),
                static_cast<unsigned long long>(total_campaigns));
    std::printf("detected = faulted/refused/diverted; degraded = audit repaired state;\n");
    std::printf("any escape under the default configuration is a test failure and is\n");
    std::printf("written as a replayable crash bundle (memsentry_cli replay-campaign).\n");
  }
  if (total_escaped > 0 && !run.allow_escapes) {
    return 1;
  }
  return 0;
}

// --- server_workload ---

std::vector<int> ServerTenantCounts(bool quick) {
  std::vector<int> tenant_counts = {1, 10, 100, 1000};
  if (!quick) {
    tenant_counts.push_back(10000);
  }
  return tenant_counts;
}

json::Value RunServerCell(int tenants, workloads::ServerTechnique technique) {
  workloads::ServerConfig config;
  config.tenants = tenants;
  config.technique = technique;
  const workloads::ServerResult r = workloads::RunServerWorkload(config);
  json::Value payload = json::Value::Object();
  payload.Set("requests", r.requests);
  payload.Set("faults", r.faults);
  payload.Set("total_cycles", static_cast<double>(r.total_cycles));
  payload.Set("requests_per_sec", r.requests_per_sec);
  payload.Set("p50_latency", static_cast<double>(r.p50_latency));
  payload.Set("p99_latency", static_cast<double>(r.p99_latency));
  payload.Set("p999_latency", static_cast<double>(r.p999_latency));
  payload.Set("tlb_hit_rate", r.tlb_hit_rate);
  payload.Set("grant_hit_rate", r.grant_hit_rate);
  payload.Set("context_switches", r.context_switches);
  payload.Set("preemptions", r.preemptions);
  payload.Set("syscalls", r.syscalls);
  payload.Set("resident_vpids", r.resident_vpids);
  payload.Set("digest_hex", HexString(r.digest));
  return payload;
}

int AssembleServer(const WorkloadOptions& options, const std::vector<json::Value>& payloads,
                   ReportBuilder& report) {
  const workloads::ServerConfig base;
  const std::vector<int> tenant_counts = ServerTenantCounts(options.quick);
  const auto techniques = workloads::AllServerTechniques();
  const sim::DecodeCacheStats decode_stats = sim::DecodeCache::Global().stats();
  if (options.print) {
    PrintHeader("multi-tenant server workload (open-loop, per-technique scaling)");
    std::printf("%-10s %8s %14s %12s %12s %12s %8s %8s\n", "technique", "tenants", "req/s",
                "p50 cyc", "p99 cyc", "p999 cyc", "tlb-hit", "switches");
  }
  size_t i = 0;
  for (int tenants : tenant_counts) {
    for (workloads::ServerTechnique technique : techniques) {
      const json::Value& r = payloads[i++];
      const std::string prefix = std::string("server/") +
                                 workloads::ServerTechniqueName(technique) + "/t" +
                                 std::to_string(tenants);
      // Everything here is modeled (deterministic) cycles, so throughput and
      // tail latency are fidelity-kind: a perturbation is a real behavioral
      // change, not host noise — exactly what the CI gate must catch.
      report.AddFidelity(prefix + "/requests_per_sec", r.NumberOr("requests_per_sec", 0),
                         eval::kGeomeanTol);
      report.AddFidelity(prefix + "/p50_cycles", r.NumberOr("p50_latency", 0), eval::kGeomeanTol);
      report.AddFidelity(prefix + "/p99_cycles", r.NumberOr("p99_latency", 0), eval::kGeomeanTol);
      report.AddFidelity(prefix + "/p999_cycles", r.NumberOr("p999_latency", 0),
                         eval::kGeomeanTol);
      report.AddFidelity(prefix + "/faults", r.NumberOr("faults", 0), 0.0);
      report.AddPerf(prefix + "/total_cycles", r.NumberOr("total_cycles", 0));
      report.AddInfo(prefix + "/tlb_hit_rate", r.NumberOr("tlb_hit_rate", 0));
      report.AddInfo(prefix + "/grant_hit_rate", r.NumberOr("grant_hit_rate", 0));
      report.AddInfo(prefix + "/context_switches", r.NumberOr("context_switches", 0));
      report.AddInfo(prefix + "/preemptions", r.NumberOr("preemptions", 0));
      report.AddInfo(prefix + "/resident_vpids", r.NumberOr("resident_vpids", 0));
      // Low 53 bits of the per-tenant digest (exactly representable in a
      // double). Info-kind: run-to-run bit-identity is enforced by the
      // determinism tests, not by the baseline gate.
      report.AddInfo(prefix + "/digest53",
                     static_cast<double>(HexU64(r, "digest_hex") & ((uint64_t{1} << 53) - 1)));
      if (options.print) {
        std::printf("%-10s %8d %14.0f %12.0f %12.0f %12.0f %7.1f%% %8llu\n",
                    workloads::ServerTechniqueName(technique), tenants,
                    r.NumberOr("requests_per_sec", 0), r.NumberOr("p50_latency", 0),
                    r.NumberOr("p99_latency", 0), r.NumberOr("p999_latency", 0),
                    100.0 * r.NumberOr("tlb_hit_rate", 0),
                    static_cast<unsigned long long>(r.NumberOr("context_switches", 0)));
      }
    }
  }
  if (options.print) {
    std::printf("(modeled cycles at the calibrated 4 GHz clock; open-loop load %.0f%%;\n"
                " VMFUNC omitted: one EPT per tenant exceeds the 512-entry EPTP list)\n",
                100.0 * base.offered_load);
  }
  // Shared decoded-module cache behavior across the whole sweep: tenants of
  // one technique share a single lowering, so misses == #techniques (when
  // this workload owns the cache; in-engine the cache is suite-wide and the
  // values — info-kind, so never determinism-gated — cover more workloads).
  report.AddInfo("microarch/decode_cache_hit_rate", decode_stats.HitRate());
  report.AddInfo("microarch/decode_cache_lowerings",
                 static_cast<double>(decode_stats.misses));
  if (options.print) {
    std::printf("decode cache: %.4f hit rate, %llu lowerings\n", decode_stats.HitRate(),
                static_cast<unsigned long long>(decode_stats.misses));
  }
  return 0;
}

}  // namespace

void RegisterAdversaryWorkloads(eval::WorkloadRegistry& registry) {
  {
    Workload w;
    w.name = "attack_matrix";
    w.cells = [](const WorkloadOptions&) {
      return std::vector<WorkloadCell>{
          {"matrix", RunAttackMatrixCell},
          {"alloc-oracle", RunAllocOracleCell},
          {"alloc-oracle-guarded", RunAllocOracleGuardedCell},
          {"crash-scan-4g", RunCrashScanCell},
          {"thread-spray", RunThreadSprayCell},
      };
    };
    w.assemble = AssembleAttackMatrix;
    registry.Register(std::move(w));
  }
  {
    Workload w;
    w.name = "fault_matrix";
    // Cells stage process-global crash contexts in standalone mode.
    w.serial_standalone = true;
    w.cells = [](const WorkloadOptions&) {
      std::vector<WorkloadCell> cells;
      for (const auto& [kind, site] : eval::FaultMatrixCells()) {
        const std::string name =
            std::string(core::TechniqueKindName(kind)) + "/" + sim::FaultSiteName(site);
        cells.push_back({name, [kind = kind, site = site](const WorkloadOptions& wo) {
                           return RunFaultMatrixCell(wo, kind, site);
                         }});
      }
      return cells;
    };
    w.assemble = AssembleFaultMatrix;
    registry.Register(std::move(w));
  }
  {
    Workload w;
    w.name = "attack_campaigns";
    w.cells = [](const WorkloadOptions&) {
      std::vector<WorkloadCell> cells;
      for (int k = 0; k < core::kNumTechniques; ++k) {
        cells.push_back({core::TechniqueKindName(static_cast<core::TechniqueKind>(k)),
                         [k](const WorkloadOptions& wo) {
                           return RunCampaignTechniqueCell(wo, k);
                         }});
      }
      return cells;
    };
    w.assemble = AssembleCampaigns;
    registry.Register(std::move(w));
  }
  {
    Workload w;
    w.name = "server_workload";
    w.cells = [](const WorkloadOptions& options) {
      if (options.print) {
        // Standalone scoping for the decode-cache metric below, matching the
        // historical binary: one decode per technique across the sweep.
        sim::DecodeCache::Global().ResetStats();
      }
      std::vector<WorkloadCell> cells;
      for (int tenants : ServerTenantCounts(options.quick)) {
        for (workloads::ServerTechnique technique : workloads::AllServerTechniques()) {
          const std::string name = std::string(workloads::ServerTechniqueName(technique)) +
                                   "/t" + std::to_string(tenants);
          cells.push_back({name, [tenants, technique](const WorkloadOptions&) {
                             return RunServerCell(tenants, technique);
                           }});
        }
      }
      return cells;
    };
    w.assemble = AssembleServer;
    registry.Register(std::move(w));
  }
}

}  // namespace memsentry::suite

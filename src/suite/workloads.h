// The benchmark suite as registered campaign-engine workloads. Every bench
// binary's body lives here as an eval::Workload — quick/full cell
// enumeration plus an assembly pass that emits the binary's exact metric
// stream and (in print mode) its exact stdout tables — so one warm process
// can run the whole suite through eval::CampaignEngine while the thin
// standalone binaries (bench/*.cc + bench/suite_main.h) stay bit-identical
// to their historical selves.
#ifndef MEMSENTRY_SRC_SUITE_WORKLOADS_H_
#define MEMSENTRY_SRC_SUITE_WORKLOADS_H_

#include <string_view>

#include "src/eval/campaign_engine.h"

namespace memsentry::suite {

// Per-family registration, in suite order (tables, figures, adversary).
void RegisterFigureWorkloads(eval::WorkloadRegistry& registry);
void RegisterTableWorkloads(eval::WorkloadRegistry& registry);
void RegisterAblationWorkloads(eval::WorkloadRegistry& registry);
void RegisterAdversaryWorkloads(eval::WorkloadRegistry& registry);

// The process-wide registry with every suite workload registered once.
const eval::WorkloadRegistry& SuiteRegistry();

// nullptr when `name` is not a registered suite workload (bench_substrate
// stays a real binary: it measures host time through google-benchmark).
const eval::Workload* FindSuiteWorkload(std::string_view name);

}  // namespace memsentry::suite

#endif  // MEMSENTRY_SRC_SUITE_WORKLOADS_H_

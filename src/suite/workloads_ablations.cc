// The ablations workload: six independent sections, one cell each — MPX
// single vs double bounds, SFI mask hoisting, MPK closing policy, SGX as a
// domain technique, BNDPRESERVE, and static vs dynamic points-to.
#include <cmath>

#include "src/core/memsentry.h"
#include "src/ir/pointsto.h"
#include "src/sim/executor.h"
#include "src/sim/profiling.h"
#include "src/suite/suite_internal.h"
#include "src/suite/workloads.h"
#include "src/workloads/spec_profiles.h"
#include "src/workloads/synth.h"

namespace memsentry::suite {
namespace {

using eval::ReportBuilder;
using eval::Workload;
using eval::WorkloadCell;
using eval::WorkloadOptions;

double Fig3Point(const workloads::SpecProfile& profile, core::TechniqueKind kind,
                 core::InstrumentOptions instrument, eval::ExperimentOptions options) {
  options.instrument = instrument;
  return eval::RunAddressBasedExperiment(profile, kind, instrument.mode, options);
}

json::Value RunMpxBoundsCell(const WorkloadOptions& wo) {
  json::Value rows = json::Value::Array();
  for (const char* name : {"403.gcc", "456.hmmer"}) {
    const auto& profile = *workloads::FindProfile(name);
    core::InstrumentOptions single;
    single.mode = core::ProtectMode::kReadWrite;
    core::InstrumentOptions both = single;
    both.mpx_double_bounds = true;
    json::Value row = json::Value::Object();
    row.Set("profile", profile.name);
    row.Set("single", Fig3Point(profile, core::TechniqueKind::kMpx, single, wo.experiment));
    row.Set("double", Fig3Point(profile, core::TechniqueKind::kMpx, both, wo.experiment));
    rows.Append(std::move(row));
  }
  return rows;
}

json::Value RunSfiMaskCell(const WorkloadOptions& wo) {
  json::Value rows = json::Value::Array();
  for (const char* name : {"403.gcc", "456.hmmer"}) {
    const auto& profile = *workloads::FindProfile(name);
    core::InstrumentOptions hoisted;
    hoisted.mode = core::ProtectMode::kReadWrite;
    core::InstrumentOptions remat = hoisted;
    remat.sfi_rematerialize_mask = true;
    json::Value row = json::Value::Object();
    row.Set("profile", profile.name);
    row.Set("hoisted", Fig3Point(profile, core::TechniqueKind::kSfi, hoisted, wo.experiment));
    row.Set("remat", Fig3Point(profile, core::TechniqueKind::kSfi, remat, wo.experiment));
    rows.Append(std::move(row));
  }
  return rows;
}

json::Value RunMpkPolicyCell(const WorkloadOptions& wo) {
  const auto& gcc = *workloads::FindProfile("403.gcc");
  eval::ExperimentOptions options = wo.experiment;
  options.instrument.mode = core::ProtectMode::kWriteOnly;
  const double wd = eval::RunDomainBasedExperiment(gcc, core::TechniqueKind::kMpk,
                                                   eval::DomainScenario::kCallRet, options);
  options.instrument.mode = core::ProtectMode::kReadWrite;
  const double ad = eval::RunDomainBasedExperiment(gcc, core::TechniqueKind::kMpk,
                                                   eval::DomainScenario::kCallRet, options);
  json::Value payload = json::Value::Object();
  payload.Set("wd", wd);
  payload.Set("ad", ad);
  return payload;
}

json::Value RunSgxSyscallCell(const WorkloadOptions& wo) {
  const auto& gcc = *workloads::FindProfile("403.gcc");
  const eval::ExperimentOptions options = wo.experiment;
  json::Value payload = json::Value::Object();
  payload.Set("sgx", eval::RunDomainBasedExperiment(gcc, core::TechniqueKind::kSgx,
                                                    eval::DomainScenario::kSyscall, options));
  payload.Set("mpk", eval::RunDomainBasedExperiment(gcc, core::TechniqueKind::kMpk,
                                                    eval::DomainScenario::kSyscall, options));
  return payload;
}

json::Value RunBndPreserveCell(const WorkloadOptions& wo) {
  const auto& gcc = *workloads::FindProfile("403.gcc");
  // Without BNDPRESERVE every legacy branch resets the bound registers and
  // the next check reloads bnd0 from the bound table (Section 5.4).
  auto run = [&](bool preserve) {
    const eval::ExperimentOptions options = wo.experiment;
    sim::Machine m1;
    sim::Process base_proc(&m1);
    (void)workloads::PrepareWorkloadProcess(base_proc, gcc);
    workloads::SynthOptions synth;
    synth.target_instructions = options.target_instructions;
    ir::Module module = workloads::SynthesizeSpecProgram(gcc, synth);
    sim::Executor base_exec(&base_proc, &module);
    const double base = base_exec.Run().cycles;

    sim::Machine m2;
    sim::Process proc(&m2);
    (void)workloads::PrepareWorkloadProcess(proc, gcc);
    core::MemSentryConfig config;
    config.technique = core::TechniqueKind::kMpx;
    core::MemSentry ms(&proc, config);
    (void)ms.allocator().Alloc("region", 4096);
    ir::Module inst = workloads::SynthesizeSpecProgram(gcc, synth);
    (void)ms.Protect(inst);
    proc.regs().bnd_preserve = preserve;
    sim::Executor exec(&proc, &inst);
    return exec.Run().cycles / base;
  };
  json::Value payload = json::Value::Object();
  payload.Set("on", run(true));
  payload.Set("off", run(false));
  return payload;
}

json::Value RunPointsToCell(const WorkloadOptions&) {
  const auto& gcc = *workloads::FindProfile("403.gcc");
  // A program with hidden safe-region accesses, half through memory-loaded
  // pointers. Compare how many instructions each analysis hands MemSentry.
  sim::Machine m1;
  sim::Process process(&m1);
  (void)workloads::PrepareWorkloadProcess(process, gcc);
  core::MemSentryConfig config;
  config.technique = core::TechniqueKind::kMpk;
  core::MemSentry ms(&process, config);
  auto region = ms.allocator().Alloc("program-data", 4096);
  workloads::SynthOptions synth;
  synth.target_instructions = 200'000;
  synth.safe_accesses_per_ki = 4;
  synth.safe_region_base = region.value()->base;
  ir::Module base_module = workloads::SynthesizeSpecProgram(gcc, synth);
  const uint64_t mem_ops =
      base_module.CountIf([](const ir::Instr& i) { return i.IsMemoryAccess(); });

  ir::Module dynamic_module = base_module;
  {
    sim::Machine m2;
    sim::Process scratch(&m2);
    (void)workloads::PrepareWorkloadProcess(scratch, gcc);
    (void)scratch.MapRange(region.value()->base, 1, machine::PageFlags::Data());
    scratch.AddSafeRegion("program-data", region.value()->base, 4096);
    (void)sim::DynamicPointsTo(scratch, dynamic_module);
  }
  const uint64_t dynamic_count =
      dynamic_module.CountIf([](const ir::Instr& i) { return i.IsSafeAccess(); });

  ir::Module static_module = base_module;
  const ir::SafeRange range{region.value()->base, 4096};
  (void)ir::AnalyzePointsTo(static_module, std::span(&range, 1), /*conservative=*/true,
                            /*annotate=*/true);
  const uint64_t static_count =
      static_module.CountIf([](const ir::Instr& i) { return i.IsSafeAccess(); });

  json::Value payload = json::Value::Object();
  payload.Set("memory_ops", mem_ops);
  payload.Set("dynamic", dynamic_count);
  payload.Set("static", static_count);
  return payload;
}

int AssembleAblations(const WorkloadOptions& options, const std::vector<json::Value>& payloads,
                      ReportBuilder& report) {
  const bool print = options.print;
  if (print) {
    PrintHeader("Ablations — the design choices behind MemSentry's numbers");
    std::printf("\n[1] MPX: single upper-bound check (MemSentry) vs double-sided (GCC style)\n");
    std::printf("%-16s %14s %14s\n", "benchmark", "single bndcu", "bndcl+bndcu");
  }
  for (const json::Value& row : payloads[0].items()) {
    const std::string profile = row.StringOr("profile", "");
    const double s = row.NumberOr("single", -1);
    const double b = row.NumberOr("double", -1);
    report.AddFidelity("ablate/mpx_single/" + profile, s, eval::kPerBenchmarkTol);
    report.AddFidelity("ablate/mpx_double/" + profile, b, eval::kPerBenchmarkTol);
    if (print) {
      std::printf("%-16s %14.3f %14.3f\n", profile.c_str(), s, b);
    }
  }
  if (print) {
    std::printf("(the paper dismisses MPX-as-bounds-checker for its overhead; the single\n");
    std::printf(" partition check is what makes it competitive — Section 5.4/6.1)\n");
    std::printf("\n[2] SFI: hoisted mask vs rematerialized per access\n");
    std::printf("%-16s %14s %14s\n", "benchmark", "hoisted", "rematerialized");
  }
  for (const json::Value& row : payloads[1].items()) {
    const std::string profile = row.StringOr("profile", "");
    const double h = row.NumberOr("hoisted", -1);
    const double r = row.NumberOr("remat", -1);
    report.AddFidelity("ablate/sfi_hoisted/" + profile, h, eval::kPerBenchmarkTol);
    report.AddFidelity("ablate/sfi_remat/" + profile, r, eval::kPerBenchmarkTol);
    if (print) {
      std::printf("%-16s %14.3f %14.3f\n", profile.c_str(), h, r);
    }
  }
  {
    const double wd = payloads[2].NumberOr("wd", -1);
    const double ad = payloads[2].NumberOr("ad", -1);
    if (print) {
      std::printf("\n[3] MPK closing policy: integrity-only (WD) vs confidentiality (AD+WD)\n");
      std::printf("    Both policies cost the same wrpkru pair; what differs is protection:\n");
      std::printf("    WD-only still lets the attacker *read* the region (shadow stacks only\n");
      std::printf("    need integrity; private keys need AD) — Section 4.\n");
    }
    report.AddFidelity("ablate/mpk_wd_only", wd, eval::kPerBenchmarkTol);
    report.AddFidelity("ablate/mpk_ad_wd", ad, eval::kPerBenchmarkTol);
    if (print) {
      std::printf("    403.gcc: WD-only %.3f vs AD+WD %.3f (identical switch cost)\n", wd, ad);
    }
  }
  {
    const double sgx = payloads[3].NumberOr("sgx", -1);
    const double mpk = payloads[3].NumberOr("mpk", -1);
    if (print) {
      std::printf("\n[4] SGX as a domain technique (why the paper rules it out)\n");
    }
    report.AddFidelity("ablate/sgx_syscall", sgx, eval::kPerBenchmarkTol);
    report.AddFidelity("ablate/mpk_syscall", mpk, eval::kPerBenchmarkTol);
    if (print) {
      std::printf("    403.gcc syscall scenario: SGX %.2f vs MPK %.3f\n", sgx, mpk);
      std::printf("    (7664-cycle crossings: ~70x an MPK switch — Section 3.1)\n");
    }
  }
  {
    const double on = payloads[4].NumberOr("on", -1);
    const double off = payloads[4].NumberOr("off", -1);
    if (print) {
      std::printf("\n[5] BNDPRESERVE on vs off\n");
    }
    report.AddFidelity("ablate/bndpreserve_on", on, eval::kPerBenchmarkTol);
    report.AddFidelity("ablate/bndpreserve_off", off, eval::kPerBenchmarkTol);
    if (print) {
      std::printf("    403.gcc MPX-rw: BNDPRESERVE on %.3f vs off %.3f\n", on, off);
      std::printf("    (off: every branch resets bnd0; checks pay bound-table reloads --\n");
      std::printf("     and between reset and reload, checks pass vacuously: the flag is\n");
      std::printf("     a correctness requirement, not just a performance one)\n");
    }
  }
  {
    const double mem_ops = payloads[5].NumberOr("memory_ops", 0);
    const double dynamic_count = payloads[5].NumberOr("dynamic", 0);
    const double static_count = payloads[5].NumberOr("static", 0);
    if (print) {
      std::printf("\n[6] Program-data protection: static (DSA) vs dynamic (PIN) points-to\n");
    }
    report.AddFidelity("ablate/pointsto/memory_ops", mem_ops, 0.02);
    report.AddFidelity("ablate/pointsto/dynamic_annotated", dynamic_count, 0.02);
    report.AddFidelity("ablate/pointsto/static_annotated", static_count, 0.02);
    if (print) {
      std::printf("    memory ops in program:        %llu\n",
                  static_cast<unsigned long long>(mem_ops));
      std::printf("    dynamic profile annotates:    %llu (exact for this input)\n",
                  static_cast<unsigned long long>(dynamic_count));
      std::printf("    static conservative annotates:%llu (over-approximation: %.1fx)\n",
                  static_cast<unsigned long long>(static_count), static_count / dynamic_count);
      std::printf("    (paper Section 5.5: DSA is overly conservative; the PIN-style run\n");
      std::printf("     is exact but under-approximates across inputs)\n");
    }
  }
  return 0;
}

}  // namespace

void RegisterAblationWorkloads(eval::WorkloadRegistry& registry) {
  Workload workload;
  workload.name = "ablations";
  workload.cells = [](const WorkloadOptions&) {
    return std::vector<WorkloadCell>{
        {"mpx_bounds", RunMpxBoundsCell}, {"sfi_mask", RunSfiMaskCell},
        {"mpk_policy", RunMpkPolicyCell}, {"sgx_syscall", RunSgxSyscallCell},
        {"bndpreserve", RunBndPreserveCell}, {"pointsto", RunPointsToCell},
    };
  };
  workload.assemble = AssembleAblations;
  registry.Register(std::move(workload));
}

}  // namespace memsentry::suite

// Table workloads: the survey/applicability/limits tables, the Table 4
// microbenchmark latencies (seven section cells), and the microarchitecture
// profile (one cell per SPEC stand-in).
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/advisor.h"
#include "src/core/memsentry.h"
#include "src/core/technique.h"
#include "src/defenses/registry.h"
#include "src/ir/builder.h"
#include "src/mpx/mpx.h"
#include "src/sim/executor.h"
#include "src/suite/suite_internal.h"
#include "src/suite/workloads.h"
#include "src/workloads/spec_profiles.h"
#include "src/workloads/synth.h"

namespace memsentry::suite {
namespace {

using eval::ReportBuilder;
using eval::Workload;
using eval::WorkloadCell;
using eval::WorkloadOptions;

// --- table1_defenses ---

json::Value RunTable1Cell(const WorkloadOptions&) {
  json::Value rows = json::Value::Array();
  for (const auto& d : defenses::SurveyedDefenses()) {
    json::Value row = json::Value::Object();
    row.Set("name", d.name);
    row.Set("vuln_read", d.vuln_read);
    row.Set("vuln_write", d.vuln_write);
    row.Set("probabilistic", d.probabilistic);
    row.Set("deterministic", d.deterministic);
    row.Set("instrumentation_points", d.instrumentation_points);
    rows.Append(std::move(row));
  }
  return rows;
}

int AssembleTable1(const WorkloadOptions& options, const std::vector<json::Value>& payloads,
                   ReportBuilder& report) {
  const json::Value& rows = payloads[0];
  if (options.print) {
    std::printf("\n================================================================\n");
    std::printf("Table 1 — defense systems based on memory isolation\n");
    std::printf("================================================================\n");
    std::printf("%-14s %4s %4s %6s %5s  %s\n", "defense", "r", "w", "prob.", "det.",
                "instrumentation points");
  }
  int probabilistic = 0;
  for (const json::Value& row : rows.items()) {
    const bool prob = row.BoolOr("probabilistic", false);
    if (options.print) {
      std::printf("%-14s %4s %4s %6s %5s  %s\n", row.StringOr("name", "").c_str(),
                  row.BoolOr("vuln_read", false) ? "x" : "",
                  row.BoolOr("vuln_write", false) ? "x" : "", prob ? "x" : "",
                  row.BoolOr("deterministic", false) ? "x" : "",
                  row.StringOr("instrumentation_points", "").c_str());
    }
    probabilistic += prob ? 1 : 0;
  }
  if (options.print) {
    std::printf("\n%d of %zu surveyed defenses rely on probabilistic isolation\n", probabilistic,
                static_cast<size_t>(rows.size()));
    std::printf("(information hiding) for their safe regions — the paper's motivation.\n");
  }
  // Structural fidelity: the survey must keep matching the paper row counts.
  report.AddFidelity("table1/surveyed_defenses", static_cast<double>(rows.size()), 0.0, 13);
  report.AddFidelity("table1/probabilistic", probabilistic, 0.0, 10);
  return 0;
}

// --- table2_applicability ---

json::Value RunTable2Cell(const WorkloadOptions&) {
  using namespace memsentry::core;
  json::Value payload = json::Value::Object();
  json::Value rows = json::Value::Array();
  for (const auto& row : ApplicabilityTable()) {
    json::Value r = json::Value::Object();
    r.Set("address", row.category == Category::kAddressBased);
    r.Set("instrumentation_points", row.instrumentation_points);
    r.Set("application", row.application);
    rows.Append(std::move(r));
  }
  payload.Set("rows", std::move(rows));

  struct Named {
    const char* scenario;
    const char* key;
    ScenarioSpec spec;
  };
  const Named scenarios[] = {
      {"shadow stack (every call/ret)", "shadow_stack",
       {.point = InstrumentationPoint::kCallRet, .events_per_kinstr = 25}},
      {"CFI metadata (indirect branches)", "cfi_metadata",
       {.point = InstrumentationPoint::kIndirectBranch, .events_per_kinstr = 3,
        .region_bytes = 4096}},
      {"heap metadata (allocator calls)", "heap_metadata",
       {.point = InstrumentationPoint::kAllocatorCall, .events_per_kinstr = 0.3}},
      {"TASR pointer list (system calls)", "tasr_pointers",
       {.point = InstrumentationPoint::kSyscall, .events_per_kinstr = 0.05}},
      {"private key (16 bytes, rare use)", "private_key",
       {.point = InstrumentationPoint::kMemAccess, .events_per_kinstr = 0.1,
        .region_bytes = 16, .needs_confidentiality = true}},
      {"old CPU (2012), shadow stack", "old_cpu_shadow_stack",
       {.point = InstrumentationPoint::kCallRet, .events_per_kinstr = 25, .cpu_year = 2012}},
      {"future CPU with MPK, CFI metadata", "mpk_cfi_metadata",
       {.point = InstrumentationPoint::kIndirectBranch, .events_per_kinstr = 3,
        .mpk_available = true}},
  };
  json::Value advise = json::Value::Array();
  for (const auto& [name, key, spec] : scenarios) {
    const Recommendation rec = Advise(spec);
    json::Value a = json::Value::Object();
    a.Set("scenario", name);
    a.Set("key", key);
    a.Set("primary", static_cast<int>(rec.primary));
    a.Set("primary_name", TechniqueKindName(rec.primary));
    a.Set("rationale80", rec.rationale.substr(0, 80));
    advise.Append(std::move(a));
  }
  payload.Set("advise", std::move(advise));
  return payload;
}

int AssembleTable2(const WorkloadOptions& options, const std::vector<json::Value>& payloads,
                   ReportBuilder& report) {
  const json::Value& payload = payloads[0];
  const json::Value* rows = payload.Find("rows");
  const json::Value* advise = payload.Find("advise");
  if (options.print) {
    std::printf("\n================================================================\n");
    std::printf("Table 2 — instrumentation points and applications per isolation type\n");
    std::printf("================================================================\n");
    std::printf("%-15s %-26s %s\n", "isolation", "instrumentation points", "application");
    for (const json::Value& row : rows->items()) {
      std::printf("%-15s %-26s %s\n",
                  row.BoolOr("address", false) ? "Address-based" : "Domain-based",
                  row.StringOr("instrumentation_points", "").c_str(),
                  row.StringOr("application", "").c_str());
    }
  }
  report.AddFidelity("table2/rows", static_cast<double>(rows->size()), 0.0);

  if (options.print) {
    std::printf("\nAdvisor recommendations (Section 6.3 discussion as executable logic):\n");
  }
  for (const json::Value& a : advise->items()) {
    const std::string name = a.StringOr("scenario", "");
    const std::string primary_name = a.StringOr("primary_name", "");
    if (options.print) {
      std::printf("  %-36s -> %-8s (%s)\n", name.c_str(), primary_name.c_str(),
                  a.StringOr("rationale80", "").c_str());
    }
    // The recommended technique, as its enum index: a change in the advisor's
    // Section 6.3 mapping shifts the value and trips the fidelity gate.
    report.AddFidelity(std::string("table2/advise/") + a.StringOr("key", ""),
                       a.NumberOr("primary", -1), 0.0, NAN, primary_name);
  }
  return 0;
}

// --- table3_limits ---

json::Value RunTable3Cell(const WorkloadOptions&) {
  using namespace memsentry::core;
  json::Value rows = json::Value::Array();
  for (int k = 0; k < kNumTechniques; ++k) {
    const auto kind = static_cast<TechniqueKind>(k);
    auto technique = CreateTechnique(kind);
    const TechniqueLimits limits = technique->limits();
    json::Value row = json::Value::Object();
    row.Set("name", TechniqueKindName(kind));
    row.Set("max_domains", limits.max_domains);
    row.Set("granularity", static_cast<uint64_t>(limits.granularity));
    row.Set("hw_since_year", limits.hw_since_year);
    row.Set("notes", limits.notes);
    rows.Append(std::move(row));
  }
  return rows;
}

int AssembleTable3(const WorkloadOptions& options, const std::vector<json::Value>& payloads,
                   ReportBuilder& report) {
  if (options.print) {
    std::printf("\n================================================================\n");
    std::printf("Table 3 — limitations of memory isolation techniques\n");
    std::printf("================================================================\n");
    std::printf("%-12s %-12s %-12s %-6s %s\n", "technique", "max domains", "granularity",
                "since", "notes");
  }
  for (const json::Value& row : payloads[0].items()) {
    const double max_domains = row.NumberOr("max_domains", -1);
    const auto granularity = static_cast<uint64_t>(row.NumberOr("granularity", 0));
    const std::string name = row.StringOr("name", "");
    if (options.print) {
      char domains[16];
      if (max_domains == 0) {
        std::snprintf(domains, sizeof(domains), "unbounded");
      } else {
        std::snprintf(domains, sizeof(domains), "%d", static_cast<int>(max_domains));
      }
      char gran[16];
      if (granularity >= 4096) {
        std::snprintf(gran, sizeof(gran), "page");
      } else {
        std::snprintf(gran, sizeof(gran), "%llu bytes",
                      static_cast<unsigned long long>(granularity));
      }
      std::printf("%-12s %-12s %-12s %-6d %s\n", name.c_str(), domains, gran,
                  static_cast<int>(row.NumberOr("hw_since_year", 0)),
                  row.StringOr("notes", "").c_str());
    }
    const std::string prefix = "table3/" + name;
    report.AddFidelity(prefix + "/max_domains", max_domains, 0.0);
    report.AddFidelity(prefix + "/granularity", static_cast<double>(granularity), 0.0);
  }
  return 0;
}

// --- table4_micro ---
//
// Each section of bench/table4_micro.cc is one cell; a cell returns the
// rows it measured as {key, name, paper, measured, model, note} so assembly
// can replay the exact Row/RowModel print + metric sequence.

using ir::Instr;
using ir::Opcode;
using machine::Gpr;
using workloads::BuildLoop;

constexpr uint64_t kIters = 10'000;

struct Env {
  sim::Machine machine;
  sim::Process process{&machine};
};

// Runs `body` as a loop and returns cycles per iteration.
double PerIteration(sim::Process& process, const std::vector<Instr>& body) {
  ir::Module module = BuildLoop(body, kIters);
  sim::Executor executor(&process, &module);
  auto result = executor.Run();
  if (!result.halted) {
    std::printf("  !! loop faulted: %s\n",
                result.fault ? result.fault->ToString().c_str() : "?");
    return -1;
  }
  return result.cycles / static_cast<double>(kIters);
}

double Delta(sim::Process& process, const std::vector<Instr>& with_op,
             const std::vector<Instr>& reference) {
  // Warm the TLB and caches first so cold walks don't pollute the delta.
  (void)PerIteration(process, with_op);
  (void)PerIteration(process, reference);
  return PerIteration(process, with_op) - PerIteration(process, reference);
}

Instr Critical(Instr instr) {
  instr.flags |= ir::kFlagCritical | ir::kFlagInstrumentation;
  return instr;
}
Instr Plain(Instr instr) {
  instr.flags |= ir::kFlagInstrumentation;
  return instr;
}

json::Value T4Row(const char* key, const char* name, const char* paper, double measured,
                  const char* note = "") {
  json::Value row = json::Value::Object();
  row.Set("key", key);
  row.Set("name", name);
  row.Set("paper", paper);
  row.Set("measured", measured);
  row.Set("model", false);
  row.Set("note", note);
  return row;
}

json::Value T4RowModel(const char* key, const char* name, const char* paper, double model) {
  json::Value row = T4Row(key, name, paper, model);
  row.Set("model", true);
  return row;
}

json::Value RunTable4ModelCell(const WorkloadOptions&) {
  const machine::CostModel cost;  // defaults = the calibrated machine
  json::Value rows = json::Value::Array();
  rows.Append(T4RowModel("l1_access", "L1 cache access", "4", cost.lat_l1));
  rows.Append(T4RowModel("l2_access", "L2 cache access", "12", cost.lat_l2));
  rows.Append(T4RowModel("l3_access", "L3 cache access", "44", cost.lat_l3));
  rows.Append(T4RowModel("dram_access", "DRAM access", "251", cost.lat_dram));
  return rows;
}

json::Value RunTable4SfiMpxCell(const WorkloadOptions&) {
  Env env;
  (void)env.process.SetupStack();
  (void)env.process.MapRange(sim::kWorkingSetBase, 4, machine::PageFlags::Data());
  const std::vector<Instr> lea_load = {
      Instr{.op = Opcode::kLea, .dst = Gpr::kR9, .src = Gpr::kR8},
      Instr{.op = Opcode::kLoad, .dst = Gpr::kRbx, .src = Gpr::kR9},
  };
  const std::vector<Instr> lea_store = {
      Instr{.op = Opcode::kLea, .dst = Gpr::kR9, .src = Gpr::kR8},
      Instr{.op = Opcode::kStore, .dst = Gpr::kR9, .src = Gpr::kRbx},
  };
  auto with = [](std::vector<Instr> seq, Instr op, size_t at = 1) {
    seq.insert(seq.begin() + static_cast<long>(at), op);
    return seq;
  };
  json::Value rows = json::Value::Array();
  rows.Append(T4Row(
      "sfi_and_load", "SFI (and, result used by load)", "0.22",
      Delta(env.process,
            with(lea_load, Critical({.op = Opcode::kAndImm, .dst = Gpr::kR9, .imm = kSfiMask})),
            lea_load),
      "(0.22 dep + 0.25 slot)"));
  rows.Append(T4Row(
      "sfi_and_store", "SFI (and, result used by store)", "0",
      Delta(env.process,
            with(lea_store, Plain({.op = Opcode::kAndImm, .dst = Gpr::kR9, .imm = kSfiMask})),
            lea_store),
      "(slot only; store buffer hides dep)"));
  env.process.regs().bnd[0] = mpx::MakeBounds(0, kPartitionSplit);
  rows.Append(T4Row(
      "mpx_single_bndcu", "MPX (single bndcu)", "<0.1",
      Delta(env.process, with(lea_load, Plain({.op = Opcode::kBndcu, .src = Gpr::kR9, .imm = 0})),
            lea_load),
      "(no pointer modification -> no dep)"));
  auto both = with(lea_load, Plain({.op = Opcode::kBndcu, .src = Gpr::kR9, .imm = 0}));
  both = with(both, Critical({.op = Opcode::kBndcl, .src = Gpr::kR9, .imm = 0}), 2);
  rows.Append(T4Row("mpx_both_bounds", "MPX (both bndcl and bndcu)", "0.50",
                    Delta(env.process, both, lea_load), "(second check serializes: +0.42)"));
  return rows;
}

json::Value RunTable4MpkCell(const WorkloadOptions&) {
  Env env;
  (void)env.process.SetupStack();
  (void)env.process.MapRange(sim::kWorkingSetBase, 4, machine::PageFlags::Data());
  const std::vector<Instr> wrpkru = {Instr{.op = Opcode::kWrpkru, .imm = 0}};
  json::Value rows = json::Value::Array();
  rows.Append(T4Row("mpk_wrpkru", "MPK (wrpkru, simulated)", "42",
                    PerIteration(env.process, wrpkru),
                    "(the paper's xmm-moves + mfence approximation)"));
  return rows;
}

json::Value RunTable4VirtCell(const WorkloadOptions&) {
  Env env;
  (void)env.process.EnableDune();
  (void)env.process.SetupStack();
  (void)env.process.MapRange(sim::kWorkingSetBase, 4, machine::PageFlags::Data());
  (void)env.process.dune()->CreateEpt();
  const std::vector<Instr> vmfunc_pair = {
      Instr{.op = Opcode::kVmFunc, .imm = 1},
      Instr{.op = Opcode::kVmFunc, .imm = 0},
  };
  json::Value rows = json::Value::Array();
  rows.Append(T4Row("vmfunc_ept_switch", "vmfunc (EPT switch)", "147",
                    PerIteration(env.process, vmfunc_pair) / 2.0));
  const std::vector<Instr> vmcall = {Instr{.op = Opcode::kVmCall, .imm = 0}};
  rows.Append(T4Row("vmcall", "vmcall", "613", PerIteration(env.process, vmcall)));
  return rows;
}

json::Value RunTable4SyscallCell(const WorkloadOptions&) {
  Env env;
  (void)env.process.SetupStack();
  (void)env.process.MapRange(sim::kWorkingSetBase, 4, machine::PageFlags::Data());
  const std::vector<Instr> syscall = {Instr{.op = Opcode::kSyscall, .imm = 0}};
  json::Value rows = json::Value::Array();
  rows.Append(T4Row("syscall", "syscall", "108", PerIteration(env.process, syscall)));
  return rows;
}

json::Value RunTable4SgxCell(const WorkloadOptions&) {
  Env env;
  (void)env.process.SetupStack();
  core::MemSentryConfig config;
  config.technique = core::TechniqueKind::kSgx;
  core::MemSentry ms(&env.process, config);
  (void)ms.allocator().Alloc("enclave-data", 4096);
  (void)ms.PrepareRuntime();
  const std::vector<Instr> crossing = {
      Instr{.op = Opcode::kEnclaveEnter, .imm = 0},
      Instr{.op = Opcode::kEnclaveExit},
  };
  json::Value rows = json::Value::Array();
  rows.Append(T4Row("sgx_ecall_roundtrip", "SGX enter + exit enclave (empty ECALL)", "7664",
                    PerIteration(env.process, crossing)));
  return rows;
}

json::Value RunTable4AesCell(const WorkloadOptions&) {
  Env env;
  (void)env.process.SetupStack();
  core::MemSentryConfig config;
  config.technique = core::TechniqueKind::kCrypt;
  core::MemSentry ms(&env.process, config);
  auto region = ms.allocator().Alloc("chunk", 16);
  (void)ms.PrepareRuntime();
  const std::vector<Instr> encdec = {
      Instr{.op = Opcode::kMovImm, .dst = Gpr::kRax, .imm = region.value()->base},
      Instr{.op = Opcode::kAesCryptRegion, .src = Gpr::kRax, .target = 0},
      Instr{.op = Opcode::kMovImm, .dst = Gpr::kRax, .imm = region.value()->base},
      Instr{.op = Opcode::kAesCryptRegion, .src = Gpr::kRax, .target = 0},
  };
  const machine::CostModel& cm = env.machine.cost;
  json::Value rows = json::Value::Array();
  rows.Append(T4Row(
      "aes_encdec_block", "AES encryption and decryption (11 rounds)", "41",
      PerIteration(env.process, encdec) - 2 * cm.ymm_to_xmm_all_keys - 2 * cm.mov_imm_slot,
      "(one 128-bit chunk, keys already in xmm)"));
  rows.Append(T4RowModel("aes_keygen10", "AES keygen (10 rounds)", "121", cm.aes_keygen10));
  rows.Append(T4RowModel("aes_imc9", "AES imc (9 rounds)", "71", cm.aes_imc9));
  rows.Append(
      T4RowModel("ymm_to_xmm_keys", "Loading ymm into xmm (11 times)", "10", cm.ymm_to_xmm_all_keys));
  return rows;
}

int AssembleTable4(const WorkloadOptions& options, const std::vector<json::Value>& payloads,
                   ReportBuilder& report) {
  if (options.print) {
    std::printf("\n================================================================\n");
    std::printf("Table 4 — microbenchmark latencies (cycles)\n");
    std::printf("================================================================\n");
    std::printf("%-46s %10s %12s\n", "instruction/operation", "paper", "measured");
  }
  for (const json::Value& cell : payloads) {
    for (const json::Value& row : cell.items()) {
      const std::string key = row.StringOr("key", "");
      const std::string paper = row.StringOr("paper", "");
      const double measured = row.NumberOr("measured", -1);
      if (row.BoolOr("model", false)) {
        if (options.print) {
          std::printf("%-46s %10s %12.2f  (machine description)\n",
                      row.StringOr("name", "").c_str(), paper.c_str(), measured);
        }
        report.AddFidelity("table4/" + key, measured, 0.0, NAN,
                           "machine description; paper: " + paper);
      } else {
        if (options.print) {
          std::printf("%-46s %10s %12.2f  %s\n", row.StringOr("name", "").c_str(), paper.c_str(),
                      measured, row.StringOr("note", "").c_str());
        }
        report.AddFidelity("table4/" + key, measured, eval::kMicroLatencyTol, NAN,
                           "paper: " + paper);
      }
    }
  }
  return 0;
}

// --- microarch_stats ---

json::Value RunMicroarchCell(size_t profile_index) {
  const auto& profile = workloads::SpecCpu2006()[profile_index];
  sim::Machine machine;
  sim::Process process(&machine);
  (void)workloads::PrepareWorkloadProcess(process, profile);
  core::MemSentryConfig config;
  config.technique = core::TechniqueKind::kMpx;
  core::MemSentry ms(&process, config);
  (void)ms.allocator().Alloc("region", 4096);
  workloads::SynthOptions synth;
  synth.target_instructions = 300'000;
  ir::Module module = workloads::SynthesizeSpecProgram(profile, synth);
  (void)ms.Protect(module);
  process.mmu().ResetStats();
  sim::Executor executor(&process, &module);
  auto result = executor.Run();
  json::Value payload = json::Value::Object();
  payload.Set("halted", result.halted);
  if (!result.halted) {
    return payload;
  }
  const auto& tlb = process.mmu().tlb().stats();
  const auto& cache = process.mmu().dcache().stats();
  const auto& grants = process.mmu().grant_stats();
  payload.Set("cpi", result.Cpi());
  payload.Set("instr_share", 100.0 * static_cast<double>(result.instrumentation_instrs) /
                                 static_cast<double>(result.instructions));
  payload.Set("cycles", static_cast<double>(result.cycles));
  payload.Set("instructions", static_cast<uint64_t>(result.instructions));
  payload.Set("tlb_hit_rate", tlb.HitRate());
  payload.Set("tlb_hits", static_cast<uint64_t>(tlb.hits));
  payload.Set("tlb_misses", static_cast<uint64_t>(tlb.misses));
  payload.Set("accesses", static_cast<uint64_t>(cache.accesses));
  payload.Set("l1_hits", static_cast<uint64_t>(cache.l1_hits));
  payload.Set("l2_hits", static_cast<uint64_t>(cache.l2_hits));
  payload.Set("l3_hits", static_cast<uint64_t>(cache.l3_hits));
  payload.Set("dram_accesses", static_cast<uint64_t>(cache.dram_accesses));
  payload.Set("grant_hits", static_cast<uint64_t>(grants.hits));
  payload.Set("grant_misses", static_cast<uint64_t>(grants.misses));
  return payload;
}

int AssembleMicroarch(const WorkloadOptions& options, const std::vector<json::Value>& payloads,
                      ReportBuilder& report) {
  if (options.print) {
    PrintHeader("Workload microarchitecture — why the figures look the way they do");
    std::printf("%-16s %6s %8s %7s %7s %7s %7s %9s\n", "benchmark", "CPI", "TLB-hit", "L1%",
                "L2%", "L3%", "DRAM%", "instr.share");
  }
  // Suite-wide microarchitectural hit rates, reported as info metrics: they
  // explain the modeled cycle counts (and the translation fast path's
  // effectiveness) without gating — the fidelity/perf metrics above already
  // pin the numbers that matter.
  double tlb_hits = 0, tlb_total = 0;
  double l1_hits = 0, cache_total = 0;
  double grant_hits = 0, grant_total = 0;
  const auto profiles = workloads::SpecCpu2006();
  for (size_t p = 0; p < profiles.size(); ++p) {
    const auto& profile = profiles[p];
    const json::Value& cell = payloads[p];
    if (!cell.BoolOr("halted", false)) {
      if (options.print) {
        std::printf("%-16s  !! faulted\n", profile.name.c_str());
      }
      continue;
    }
    const double accesses = cell.NumberOr("accesses", 0);
    tlb_hits += cell.NumberOr("tlb_hits", 0);
    tlb_total += cell.NumberOr("tlb_hits", 0) + cell.NumberOr("tlb_misses", 0);
    l1_hits += cell.NumberOr("l1_hits", 0);
    cache_total += accesses;
    grant_hits += cell.NumberOr("grant_hits", 0);
    grant_total += cell.NumberOr("grant_hits", 0) + cell.NumberOr("grant_misses", 0);
    const double cpi = cell.NumberOr("cpi", 0);
    const double instr_share = cell.NumberOr("instr_share", 0);
    report.AddFidelity("microarch/cpi/" + profile.name, cpi, eval::kMicroLatencyTol);
    report.AddFidelity("microarch/instr_share/" + profile.name, instr_share,
                       eval::kPerBenchmarkTol);
    report.AddPerf("microarch/cycles/" + profile.name, cell.NumberOr("cycles", 0));
    report.AddSimulatedInstructions(cell.NumberOr("instructions", 0));
    if (options.print) {
      std::printf("%-16s %6.2f %7.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% %8.1f%%\n",
                  profile.name.c_str(), cpi, 100.0 * cell.NumberOr("tlb_hit_rate", 0),
                  100.0 * cell.NumberOr("l1_hits", 0) / accesses,
                  100.0 * cell.NumberOr("l2_hits", 0) / accesses,
                  100.0 * cell.NumberOr("l3_hits", 0) / accesses,
                  100.0 * cell.NumberOr("dram_accesses", 0) / accesses, instr_share);
    }
  }
  report.AddInfo("microarch/tlb_hit_rate", tlb_total > 0 ? tlb_hits / tlb_total : 0.0);
  report.AddInfo("microarch/l1_hit_rate", cache_total > 0 ? l1_hits / cache_total : 0.0);
  report.AddInfo("microarch/grant_cache_hit_rate",
                 grant_total > 0 ? grant_hits / grant_total : 0.0);
  if (options.print) {
    std::printf("\n(MPX-rw build; instr.share = fraction of executed instructions that are\n");
    std::printf(" MemSentry-inserted; memory-bound rows show how DRAM time hides them)\n");
  }
  return 0;
}

}  // namespace

void RegisterTableWorkloads(eval::WorkloadRegistry& registry) {
  {
    Workload w;
    w.name = "table1_defenses";
    w.cells = [](const WorkloadOptions&) {
      return std::vector<WorkloadCell>{{"survey", RunTable1Cell}};
    };
    w.assemble = AssembleTable1;
    registry.Register(std::move(w));
  }
  {
    Workload w;
    w.name = "table2_applicability";
    w.cells = [](const WorkloadOptions&) {
      return std::vector<WorkloadCell>{{"matrix", RunTable2Cell}};
    };
    w.assemble = AssembleTable2;
    registry.Register(std::move(w));
  }
  {
    Workload w;
    w.name = "table3_limits";
    w.cells = [](const WorkloadOptions&) {
      return std::vector<WorkloadCell>{{"limits", RunTable3Cell}};
    };
    w.assemble = AssembleTable3;
    registry.Register(std::move(w));
  }
  {
    Workload w;
    w.name = "table4_micro";
    w.cells = [](const WorkloadOptions&) {
      return std::vector<WorkloadCell>{
          {"model", RunTable4ModelCell},     {"sfi_mpx", RunTable4SfiMpxCell},
          {"mpk", RunTable4MpkCell},         {"virt", RunTable4VirtCell},
          {"syscall", RunTable4SyscallCell}, {"sgx", RunTable4SgxCell},
          {"aes", RunTable4AesCell},
      };
    };
    w.assemble = AssembleTable4;
    registry.Register(std::move(w));
  }
  {
    Workload w;
    w.name = "microarch_stats";
    w.cells = [](const WorkloadOptions&) {
      std::vector<WorkloadCell> cells;
      const auto profiles = workloads::SpecCpu2006();
      for (size_t p = 0; p < profiles.size(); ++p) {
        cells.push_back({profiles[p].name,
                         [p](const WorkloadOptions&) { return RunMicroarchCell(p); }});
      }
      return cells;
    };
    w.assemble = AssembleMicroarch;
    registry.Register(std::move(w));
  }
}

}  // namespace memsentry::suite

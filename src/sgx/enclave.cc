#include "src/sgx/enclave.h"

#include <algorithm>

namespace memsentry::sgx {

Status Enclave::AddPage(VirtAddr va) {
  if (finalized_) {
    return FailedPrecondition("SGX1: cannot add pages after EINIT");
  }
  if (PageOffset(va) != 0) {
    return InvalidArgument("enclave pages must be page-aligned");
  }
  if (va < base_ || PageNumber(va - base_) >= max_pages_) {
    return OutOfRange("page outside the enclave's reserved range");
  }
  const uint64_t index = PageNumber(va - base_);
  if (std::find(committed_pages_.begin(), committed_pages_.end(), index) !=
      committed_pages_.end()) {
    return AlreadyExists("enclave page already committed");
  }
  committed_pages_.push_back(index);
  return OkStatus();
}

Status Enclave::RegisterEntry(uint32_t entry_id, VirtAddr target) {
  if (finalized_) {
    return FailedPrecondition("entry points are fixed at EINIT");
  }
  if (!Contains(target) && committed_pages_.empty()) {
    return InvalidArgument("entry target outside enclave");
  }
  entries_[entry_id] = target;
  return OkStatus();
}

Status Enclave::Finalize() {
  if (finalized_) {
    return FailedPrecondition("already finalized");
  }
  if (committed_pages_.empty()) {
    return FailedPrecondition("enclave has no pages");
  }
  finalized_ = true;
  return OkStatus();
}

bool Enclave::Contains(VirtAddr va) const {
  if (va < base_) {
    return false;
  }
  const uint64_t index = PageNumber(va - base_);
  return std::find(committed_pages_.begin(), committed_pages_.end(), index) !=
         committed_pages_.end();
}

machine::FaultOr<VirtAddr> Enclave::Enter(uint32_t entry_id) {
  if (!finalized_ || inside_) {
    return machine::Fault{machine::FaultType::kEnclaveExit, base_,
                          machine::AccessType::kExecute};
  }
  auto it = entries_.find(entry_id);
  if (it == entries_.end()) {
    return machine::Fault{machine::FaultType::kEnclaveExit, entry_id,
                          machine::AccessType::kExecute};
  }
  inside_ = true;
  return it->second;
}

machine::FaultOr<bool> Enclave::Exit() {
  if (!inside_ || in_ocall_) {
    return machine::Fault{machine::FaultType::kEnclaveExit, base_,
                          machine::AccessType::kExecute};
  }
  inside_ = false;
  return true;
}

machine::FaultOr<bool> Enclave::Ocall() {
  if (!inside_ || in_ocall_) {
    return machine::Fault{machine::FaultType::kEnclaveExit, base_,
                          machine::AccessType::kExecute};
  }
  in_ocall_ = true;
  return true;
}

machine::FaultOr<bool> Enclave::OcallReturn() {
  if (!in_ocall_) {
    return machine::Fault{machine::FaultType::kEnclaveExit, base_,
                          machine::AccessType::kExecute};
  }
  in_ocall_ = false;
  return true;
}

}  // namespace memsentry::sgx

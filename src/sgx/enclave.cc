#include "src/sgx/enclave.h"

#include <algorithm>

#include "src/machine/snapshot.h"

namespace memsentry::sgx {

namespace {
constexpr uint32_t kTagSgx = 0x53475821;  // "SGX!"
}  // namespace

Status Enclave::AddPage(VirtAddr va) {
  if (finalized_) {
    return FailedPrecondition("SGX1: cannot add pages after EINIT");
  }
  if (PageOffset(va) != 0) {
    return InvalidArgument("enclave pages must be page-aligned");
  }
  if (va < base_ || PageNumber(va - base_) >= max_pages_) {
    return OutOfRange("page outside the enclave's reserved range");
  }
  const uint64_t index = PageNumber(va - base_);
  if (std::find(committed_pages_.begin(), committed_pages_.end(), index) !=
      committed_pages_.end()) {
    return AlreadyExists("enclave page already committed");
  }
  committed_pages_.push_back(index);
  return OkStatus();
}

Status Enclave::RegisterEntry(uint32_t entry_id, VirtAddr target) {
  if (finalized_) {
    return FailedPrecondition("entry points are fixed at EINIT");
  }
  if (!Contains(target) && committed_pages_.empty()) {
    return InvalidArgument("entry target outside enclave");
  }
  entries_[entry_id] = target;
  return OkStatus();
}

Status Enclave::Finalize() {
  if (finalized_) {
    return FailedPrecondition("already finalized");
  }
  if (committed_pages_.empty()) {
    return FailedPrecondition("enclave has no pages");
  }
  finalized_ = true;
  return OkStatus();
}

bool Enclave::Contains(VirtAddr va) const {
  if (va < base_) {
    return false;
  }
  const uint64_t index = PageNumber(va - base_);
  return std::find(committed_pages_.begin(), committed_pages_.end(), index) !=
         committed_pages_.end();
}

machine::FaultOr<VirtAddr> Enclave::Enter(uint32_t entry_id) {
  if (!finalized_ || inside_) {
    return machine::Fault{machine::FaultType::kEnclaveExit, base_,
                          machine::AccessType::kExecute};
  }
  auto it = entries_.find(entry_id);
  if (it == entries_.end()) {
    return machine::Fault{machine::FaultType::kEnclaveExit, entry_id,
                          machine::AccessType::kExecute};
  }
  inside_ = true;
  return it->second;
}

machine::FaultOr<bool> Enclave::Exit() {
  if (!inside_ || in_ocall_) {
    return machine::Fault{machine::FaultType::kEnclaveExit, base_,
                          machine::AccessType::kExecute};
  }
  inside_ = false;
  return true;
}

machine::FaultOr<bool> Enclave::Ocall() {
  if (!inside_ || in_ocall_) {
    return machine::Fault{machine::FaultType::kEnclaveExit, base_,
                          machine::AccessType::kExecute};
  }
  in_ocall_ = true;
  return true;
}

machine::FaultOr<bool> Enclave::OcallReturn() {
  if (!in_ocall_) {
    return machine::Fault{machine::FaultType::kEnclaveExit, base_,
                          machine::AccessType::kExecute};
  }
  in_ocall_ = false;
  return true;
}

void Enclave::SaveState(machine::SnapshotWriter& w) const {
  w.PutTag(kTagSgx);
  w.PutU64(base_);
  w.PutU64(max_pages_);
  w.PutU64(committed_pages_.size());
  for (const uint64_t page : committed_pages_) {
    w.PutU64(page);
  }
  std::vector<uint32_t> ids;
  ids.reserve(entries_.size());
  for (const auto& [id, target] : entries_) {
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  w.PutU64(ids.size());
  for (const uint32_t id : ids) {
    w.PutU32(id);
    w.PutU64(entries_.at(id));
  }
  w.PutBool(finalized_);
  w.PutBool(inside_);
  w.PutBool(in_ocall_);
}

Status Enclave::LoadState(machine::SnapshotReader& r) {
  if (!r.ExpectTag(kTagSgx, "sgx")) {
    return r.status();
  }
  const uint64_t base = r.U64();
  const uint64_t max_pages = r.U64();
  const uint64_t page_count = r.U64();
  if (!r.FitCount(page_count, 8)) {
    return r.status();
  }
  std::vector<uint64_t> pages;
  pages.reserve(page_count);
  for (uint64_t i = 0; i < page_count; ++i) {
    pages.push_back(r.U64());
  }
  const uint64_t entry_count = r.U64();
  if (!r.FitCount(entry_count, 12)) {
    return r.status();
  }
  std::unordered_map<uint32_t, VirtAddr> entries;
  entries.reserve(entry_count);
  for (uint64_t i = 0; i < entry_count; ++i) {
    const uint32_t id = r.U32();
    entries[id] = r.U64();
  }
  const bool finalized = r.Bool();
  const bool inside = r.Bool();
  const bool in_ocall = r.Bool();
  MEMSENTRY_RETURN_IF_ERROR(r.status());
  base_ = base;
  max_pages_ = max_pages;
  committed_pages_ = std::move(pages);
  entries_ = std::move(entries);
  finalized_ = finalized;
  inside_ = inside;
  in_ocall_ = in_ocall;
  return OkStatus();
}

}  // namespace memsentry::sgx

// Intel SGX enclave model: a finalized, fixed-size compartment of code+data
// reachable only through pre-registered ECALL entry points. Captures the
// properties the paper evaluates (Section 3.1): enclave memory is
// inaccessible from outside, mappings are fixed after finalization, no new
// memory can be added, and crossings cost thousands of cycles.
#ifndef MEMSENTRY_SRC_SGX_ENCLAVE_H_
#define MEMSENTRY_SRC_SGX_ENCLAVE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/base/types.h"
#include "src/machine/fault.h"

namespace memsentry::machine {
class SnapshotReader;
class SnapshotWriter;
}  // namespace memsentry::machine

namespace memsentry::sgx {

class Enclave {
 public:
  // ECREATE: reserves the enclave's virtual range. Pages and entry points are
  // added before EINIT finalizes the enclave.
  Enclave(VirtAddr base, uint64_t max_pages) : base_(base), max_pages_(max_pages) {}

  // EADD: commits one page inside the reserved range.
  Status AddPage(VirtAddr va);
  // Registers an ECALL entry point (index -> code address inside the enclave).
  Status RegisterEntry(uint32_t entry_id, VirtAddr target);
  // EINIT: after this, AddPage fails — SGX1 mappings are immutable.
  Status Finalize();
  bool finalized() const { return finalized_; }

  VirtAddr base() const { return base_; }
  uint64_t committed_pages() const { return committed_pages_.size(); }
  bool Contains(VirtAddr va) const;

  // EENTER via a registered entry point; returns the code address to jump to.
  machine::FaultOr<VirtAddr> Enter(uint32_t entry_id);
  // EEXIT back to untrusted code.
  machine::FaultOr<bool> Exit();
  // OCALL: temporarily leaves the enclave (nestable once) to run untrusted
  // code, then OcallReturn re-enters.
  machine::FaultOr<bool> Ocall();
  machine::FaultOr<bool> OcallReturn();

  bool inside() const { return inside_ && !in_ocall_; }

  // Memory rule enforced by the executor on every data access: enclave pages
  // are untouchable from outside (real SGX gives abort-page semantics; we
  // fault so tests observe the denial deterministically).
  bool AccessAllowed(VirtAddr va) const { return !Contains(va) || inside(); }

  // Crash-safe snapshots: geometry, committed pages, entry points and the
  // inside/ocall execution state.
  void SaveState(machine::SnapshotWriter& w) const;
  Status LoadState(machine::SnapshotReader& r);

 private:
  VirtAddr base_;
  uint64_t max_pages_;
  std::vector<uint64_t> committed_pages_;  // page indices relative to base_
  std::unordered_map<uint32_t, VirtAddr> entries_;
  bool finalized_ = false;
  bool inside_ = false;
  bool in_ocall_ = false;
};

}  // namespace memsentry::sgx

#endif  // MEMSENTRY_SRC_SGX_ENCLAVE_H_

// Intel MPK user-space surface: wrpkru/rdpkru plus a small key allocator
// mirroring the Linux pkey_alloc/pkey_free/pkey_mprotect API. The actual
// permission enforcement happens in the MMU on every access (src/machine/mmu),
// reading the PKRU from the register file and the key from the leaf PTE.
#ifndef MEMSENTRY_SRC_MPK_MPK_H_
#define MEMSENTRY_SRC_MPK_MPK_H_

#include <bitset>
#include <cstdint>

#include "src/base/status.h"
#include "src/base/types.h"
#include "src/machine/page_table.h"
#include "src/machine/registers.h"

namespace memsentry::mpk {

inline constexpr int kNumKeys = 16;  // 4 PTE bits

// wrpkru: writes the 32-bit PKRU. Architecturally requires ecx=edx=0 and
// clobbers nothing, but it is *serializing with respect to memory accesses* —
// the executor charges CostModel::wrpkru when it runs one. Returns the old
// value for convenience.
uint32_t WritePkru(machine::RegisterFile& regs, uint32_t value);
uint32_t ReadPkru(const machine::RegisterFile& regs);

// Kernel-side key management (pkey_alloc / pkey_free / pkey_mprotect).
class KeyAllocator {
 public:
  KeyAllocator() { in_use_.set(0); }  // key 0 is the implicit default domain

  StatusOr<uint8_t> Alloc();
  Status Free(uint8_t key);
  bool InUse(uint8_t key) const { return key < kNumKeys && in_use_.test(key); }

  // Crash-safe snapshots: the raw in-use bitmap.
  uint16_t bits() const { return static_cast<uint16_t>(in_use_.to_ulong()); }
  void set_bits(uint16_t bits) { in_use_ = std::bitset<kNumKeys>(bits); }

 private:
  std::bitset<kNumKeys> in_use_;
};

// Tags `pages` pages starting at `start` with `key` (pkey_mprotect). The
// caller must flush the relevant TLB entries afterwards, as the kernel does.
Status TagRange(machine::PageTable& pt, VirtAddr start, uint64_t pages, uint8_t key);

// Convenience PKRU masks for a two-domain split: everything except `key`
// accessible (the technique's "closed" state denies both read and write to
// `key`; "write-closed" denies only writes for integrity-only protection).
uint32_t ClosedPkru(uint8_t key, bool deny_reads);
inline constexpr uint32_t kOpenPkru = 0;

}  // namespace memsentry::mpk

#endif  // MEMSENTRY_SRC_MPK_MPK_H_

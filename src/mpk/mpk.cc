#include "src/mpk/mpk.h"

namespace memsentry::mpk {

uint32_t WritePkru(machine::RegisterFile& regs, uint32_t value) {
  const uint32_t old = regs.pkru.value;
  regs.pkru.value = value;
  return old;
}

uint32_t ReadPkru(const machine::RegisterFile& regs) { return regs.pkru.value; }

StatusOr<uint8_t> KeyAllocator::Alloc() {
  for (int k = 1; k < kNumKeys; ++k) {
    if (!in_use_.test(k)) {
      in_use_.set(k);
      return static_cast<uint8_t>(k);
    }
  }
  return ResourceExhausted("all 16 protection keys in use");
}

Status KeyAllocator::Free(uint8_t key) {
  if (key == 0 || key >= kNumKeys) {
    return InvalidArgument("cannot free key " + std::to_string(key));
  }
  if (!in_use_.test(key)) {
    return NotFound("key not allocated");
  }
  in_use_.reset(key);
  return OkStatus();
}

Status TagRange(machine::PageTable& pt, VirtAddr start, uint64_t pages, uint8_t key) {
  if (PageOffset(start) != 0) {
    return InvalidArgument("pkey range must be page-aligned");
  }
  for (uint64_t i = 0; i < pages; ++i) {
    MEMSENTRY_RETURN_IF_ERROR(pt.SetKey(start + i * kPageSize, key));
  }
  return OkStatus();
}

uint32_t ClosedPkru(uint8_t key, bool deny_reads) {
  machine::Pkru pkru{};
  if (deny_reads) {
    pkru.SetAccessDisable(key, true);
  }
  pkru.SetWriteDisable(key, true);
  return pkru.value;
}

}  // namespace memsentry::mpk

#include "src/mpk/key_virtualizer.h"

#include "src/mpk/mpk.h"

namespace memsentry::mpk {
namespace {

// Cost of one pkey_mprotect page re-tag: a PTE update plus the TLB
// invalidation, amortized (the syscall itself is charged by the caller).
inline constexpr Cycles kRetagPerPage = 60.0;

}  // namespace

int KeyVirtualizer::CreateDomain() {
  domains_.push_back(Domain{});
  return static_cast<int>(domains_.size()) - 1;
}

Status KeyVirtualizer::AttachRange(int domain, VirtAddr base, uint64_t pages) {
  if (domain < 0 || domain >= domain_count()) {
    return InvalidArgument("no such domain");
  }
  Domain& d = domains_[static_cast<size_t>(domain)];
  d.ranges.emplace_back(base, pages);
  const uint8_t key = d.hw_key >= 0 ? static_cast<uint8_t>(d.hw_key) : kParkingKey;
  MEMSENTRY_RETURN_IF_ERROR(TagRange(*page_table_, base, pages, key));
  for (uint64_t p = 0; p < pages; ++p) {
    mmu_->InvalidatePage(base + p * kPageSize);
  }
  return OkStatus();
}

StatusOr<uint8_t> KeyVirtualizer::Bind(int domain, Cycles* cost) {
  if (domain < 0 || domain >= domain_count()) {
    return InvalidArgument("no such domain");
  }
  Domain& d = domains_[static_cast<size_t>(domain)];
  d.last_bound = ++bind_tick_;
  if (d.hw_key >= 0) {
    return static_cast<uint8_t>(d.hw_key);  // hit: no re-tagging
  }
  // Find a free hardware key among 1..kBindableKeys.
  int key = -1;
  for (int k = 1; k <= kBindableKeys; ++k) {
    if (key_owner_[static_cast<size_t>(k)] < 0) {
      key = k;
      break;
    }
  }
  if (key < 0) {
    // Evict the least-recently-bound domain.
    int victim = -1;
    uint64_t oldest = ~uint64_t{0};
    for (int i = 0; i < domain_count(); ++i) {
      const Domain& candidate = domains_[static_cast<size_t>(i)];
      if (candidate.hw_key >= 0 && candidate.last_bound < oldest) {
        oldest = candidate.last_bound;
        victim = i;
      }
    }
    if (victim < 0) {
      return InternalError("no evictable domain");
    }
    Domain& evicted = domains_[static_cast<size_t>(victim)];
    key = evicted.hw_key;
    MEMSENTRY_RETURN_IF_ERROR(Retag(evicted, kParkingKey, cost));
    evicted.hw_key = -1;
    ++evictions_;
  }
  MEMSENTRY_RETURN_IF_ERROR(Retag(d, static_cast<uint8_t>(key), cost));
  d.hw_key = key;
  key_owner_[static_cast<size_t>(key)] = domain;
  return static_cast<uint8_t>(key);
}

std::optional<uint8_t> KeyVirtualizer::CurrentKey(int domain) const {
  if (domain < 0 || domain >= domain_count()) {
    return std::nullopt;
  }
  const Domain& d = domains_[static_cast<size_t>(domain)];
  if (d.hw_key < 0) {
    return std::nullopt;
  }
  return static_cast<uint8_t>(d.hw_key);
}

Status KeyVirtualizer::Retag(const Domain& domain, uint8_t key, Cycles* cost) {
  for (const auto& [base, pages] : domain.ranges) {
    MEMSENTRY_RETURN_IF_ERROR(TagRange(*page_table_, base, pages, key));
    for (uint64_t p = 0; p < pages; ++p) {
      mmu_->InvalidatePage(base + p * kPageSize);
    }
    if (cost != nullptr) {
      *cost += kRetagPerPage * static_cast<double>(pages);
    }
  }
  return OkStatus();
}

}  // namespace memsentry::mpk

// Virtualizes the 16 hardware protection keys over arbitrarily many logical
// domains — the extension the paper's Table 3 limit (16 domains) calls for,
// later realized by libmpk. Logical domains bind lazily to hardware keys;
// when all keys are in use, the least-recently-bound domain is evicted: its
// pages are re-tagged to a permanently-disabled parking key (a
// pkey_mprotect sweep whose cost scales with the domain's footprint).
#ifndef MEMSENTRY_SRC_MPK_KEY_VIRTUALIZER_H_
#define MEMSENTRY_SRC_MPK_KEY_VIRTUALIZER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/base/status.h"
#include "src/base/types.h"
#include "src/machine/cost_model.h"
#include "src/machine/mmu.h"
#include "src/machine/page_table.h"

namespace memsentry::mpk {

// Key 15 parks evicted domains; PKRU must keep it access-disabled forever.
inline constexpr uint8_t kParkingKey = 15;
// Keys 1..14 are bindable (0 is the default domain, 15 parks).
inline constexpr int kBindableKeys = 14;

class KeyVirtualizer {
 public:
  KeyVirtualizer(machine::PageTable* page_table, machine::Mmu* mmu)
      : page_table_(page_table), mmu_(mmu) {}

  // Creates a logical domain; unbounded count. Returns the domain id.
  int CreateDomain();
  int domain_count() const { return static_cast<int>(domains_.size()); }

  // Registers pages as belonging to the domain. The range is tagged with the
  // domain's current hardware key (or parked if unbound).
  Status AttachRange(int domain, VirtAddr base, uint64_t pages);

  // Ensures the domain is bound to a hardware key, evicting the
  // least-recently-bound domain if necessary. Adds the re-tagging cost of
  // any eviction plus this domain's own re-tag to *cost.
  StatusOr<uint8_t> Bind(int domain, Cycles* cost);

  // The domain's current hardware key, if bound.
  std::optional<uint8_t> CurrentKey(int domain) const;

  uint64_t evictions() const { return evictions_; }

  // PKRU template with the parking key disabled; callers OR in their own
  // policy for the bound keys.
  static uint32_t BasePkru() {
    machine::Pkru pkru{};
    pkru.SetAccessDisable(kParkingKey, true);
    pkru.SetWriteDisable(kParkingKey, true);
    return pkru.value;
  }

 private:
  struct Domain {
    std::vector<std::pair<VirtAddr, uint64_t>> ranges;  // base, pages
    int hw_key = -1;   // -1 == parked
    uint64_t last_bound = 0;
  };

  Status Retag(const Domain& domain, uint8_t key, Cycles* cost);

  machine::PageTable* page_table_;
  machine::Mmu* mmu_;
  std::vector<Domain> domains_;
  std::vector<int> key_owner_ = std::vector<int>(16, -1);  // hw key -> domain
  uint64_t bind_tick_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace memsentry::mpk

#endif  // MEMSENTRY_SRC_MPK_KEY_VIRTUALIZER_H_

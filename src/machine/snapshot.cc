#include "src/machine/snapshot.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/machine/cache.h"
#include "src/machine/mmu.h"
#include "src/machine/page_table.h"
#include "src/machine/phys_mem.h"
#include "src/machine/registers.h"
#include "src/machine/tlb.h"

namespace memsentry::machine {
namespace {

// Section tags ("four-character codes") for every machine-layer component.
inline constexpr uint32_t kTagPmem = 0x504D454D;   // PMEM
inline constexpr uint32_t kTagPageTable = 0x50475442;  // PGTB
inline constexpr uint32_t kTagTlb = 0x544C4221;    // TLB!
inline constexpr uint32_t kTagCache = 0x43414348;  // CACH
inline constexpr uint32_t kTagHier = 0x48494552;   // HIER
inline constexpr uint32_t kTagMmu = 0x4D4D5521;    // MMU!
inline constexpr uint32_t kTagRegs = 0x52454753;   // REGS

}  // namespace

uint64_t SnapshotDigest(const void* data, uint64_t size) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint64_t h = 14695981039346656037ULL;
  for (uint64_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::string SnapshotWriter::Finalize() const {
  std::string blob;
  blob.reserve(kSnapshotHeaderBytes + payload_.size());
  auto put_le = [&blob](uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      blob.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  };
  put_le(kSnapshotMagic, 4);
  put_le(kSnapshotVersion, 4);
  put_le(payload_.size(), 8);
  put_le(SnapshotDigest(payload_.data(), payload_.size()), 8);
  blob += payload_;
  return blob;
}

StatusOr<SnapshotReader> SnapshotReader::Open(std::string_view blob) {
  if (blob.size() < kSnapshotHeaderBytes) {
    return OutOfRange("snapshot truncated: shorter than its header");
  }
  auto le = [&blob](uint64_t off, int bytes) {
    uint64_t v = 0;
    for (int i = 0; i < bytes; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(blob[off + static_cast<uint64_t>(i)]))
           << (8 * i);
    }
    return v;
  };
  const auto magic = static_cast<uint32_t>(le(0, 4));
  if (magic != kSnapshotMagic) {
    return InvalidArgument("snapshot magic mismatch: not a memsentry snapshot");
  }
  const auto version = static_cast<uint32_t>(le(4, 4));
  if (version != kSnapshotVersion) {
    return Unimplemented("unsupported snapshot version " + std::to_string(version) +
                         " (loader supports " + std::to_string(kSnapshotVersion) + ")");
  }
  const uint64_t payload_size = le(8, 8);
  if (payload_size != blob.size() - kSnapshotHeaderBytes) {
    return OutOfRange("snapshot truncated: payload size mismatch");
  }
  const uint64_t checksum = le(16, 8);
  std::string payload(blob.substr(kSnapshotHeaderBytes));
  if (SnapshotDigest(payload.data(), payload.size()) != checksum) {
    return InvalidArgument("snapshot checksum mismatch: payload corrupted");
  }
  return SnapshotReader(std::move(payload));
}

bool SnapshotReader::Take(uint64_t n, const char** p) {
  if (!status_.ok()) {
    return false;
  }
  if (n > payload_.size() - pos_) {
    status_ = OutOfRange("snapshot truncated mid-field");
    return false;
  }
  *p = payload_.data() + pos_;
  pos_ += n;
  return true;
}

uint64_t SnapshotReader::Le(int bytes) {
  const char* p = nullptr;
  if (!Take(static_cast<uint64_t>(bytes), &p)) {
    return 0;
  }
  uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

uint8_t SnapshotReader::U8() {
  const char* p = nullptr;
  if (!Take(1, &p)) {
    return 0;
  }
  return static_cast<uint8_t>(*p);
}

void SnapshotReader::Bytes(void* out, uint64_t size) {
  const char* p = nullptr;
  if (!Take(size, &p)) {
    std::memset(out, 0, size);
    return;
  }
  std::memcpy(out, p, size);
}

std::string SnapshotReader::String() {
  const uint64_t size = U64();
  if (!FitCount(size, 1)) {
    return {};
  }
  std::string s(size, '\0');
  Bytes(s.data(), size);
  return s;
}

bool SnapshotReader::FitCount(uint64_t count, uint64_t min_bytes_each) {
  if (!status_.ok()) {
    return false;
  }
  if (min_bytes_each != 0 && count > remaining() / min_bytes_each) {
    status_ = OutOfRange("snapshot truncated: length prefix exceeds payload");
    return false;
  }
  return true;
}

bool SnapshotReader::ExpectTag(uint32_t tag, const char* what) {
  if (U32() != tag) {
    if (status_.ok()) {
      status_ = InvalidArgument(std::string("snapshot section tag mismatch at ") + what);
    }
    return false;
  }
  return status_.ok();
}

void SnapshotReader::Fail(Status status) {
  if (status_.ok()) {
    status_ = std::move(status);
  }
}

Status SnapshotReader::Finish() const {
  if (!status_.ok()) {
    return status_;
  }
  if (remaining() != 0) {
    return InvalidArgument("snapshot has trailing bytes after the last section");
  }
  return OkStatus();
}

// --- PhysicalMemory ----------------------------------------------------------
// Frames are written sorted by frame number so blobs are canonical. The
// allocated-but-unmaterialized distinction (nullptr value in the map) is
// preserved: such frames read as zero but occupy allocator slots, and
// re-materializing them eagerly would change allocator behavior.

void PhysicalMemory::SaveState(SnapshotWriter& w) const {
  w.PutTag(kTagPmem);
  w.PutU64(total_frames_);
  w.PutU64(next_frame_);
  std::vector<uint64_t> numbers;
  numbers.reserve(frames_.size());
  for (const auto& [number, frame] : frames_) {
    numbers.push_back(number);
  }
  std::sort(numbers.begin(), numbers.end());
  w.PutU64(numbers.size());
  for (uint64_t number : numbers) {
    const auto& frame = frames_.at(number);
    w.PutU64(number);
    w.PutBool(frame != nullptr);
    if (frame != nullptr) {
      w.PutBytes(frame->data(), kPageSize);
    }
  }
}

Status PhysicalMemory::LoadState(SnapshotReader& r) {
  if (!r.ExpectTag(kTagPmem, "physical memory")) {
    return r.status();
  }
  const uint64_t total = r.U64();
  if (r.status().ok() && total != total_frames_) {
    return FailedPrecondition("snapshot DRAM geometry mismatch: snapshot has " +
                              std::to_string(total) + " frames, machine has " +
                              std::to_string(total_frames_));
  }
  const uint64_t next = r.U64();
  const uint64_t count = r.U64();
  if (!r.FitCount(count, 9)) {
    return r.status();
  }
  std::unordered_map<uint64_t, std::unique_ptr<Frame>> frames;
  frames.reserve(count);
  for (uint64_t i = 0; i < count && r.status().ok(); ++i) {
    const uint64_t number = r.U64();
    const bool materialized = r.Bool();
    if (number >= total_frames_) {
      return InvalidArgument("snapshot frame number out of range");
    }
    std::unique_ptr<Frame> frame;
    if (materialized) {
      frame = std::make_unique<Frame>();
      r.Bytes(frame->data(), kPageSize);
    }
    frames[number] = std::move(frame);
  }
  if (!r.status().ok()) {
    return r.status();
  }
  frames_ = std::move(frames);
  next_frame_ = next;
  frame_cache_.fill(CachedFrame{});
  return OkStatus();
}

// --- PageTable ---------------------------------------------------------------
// Only the root pointer: every table frame lives in (and is restored with)
// physical memory.

void PageTable::SaveState(SnapshotWriter& w) const {
  w.PutTag(kTagPageTable);
  w.PutU64(root_);
}

Status PageTable::LoadState(SnapshotReader& r) {
  if (!r.ExpectTag(kTagPageTable, "page table")) {
    return r.status();
  }
  const PhysAddr root = r.U64();
  if (r.status().ok() && (root == 0 || (root & (kPageSize - 1)) != 0)) {
    return InvalidArgument("snapshot page-table root is not a frame address");
  }
  if (!r.status().ok()) {
    return r.status();
  }
  root_ = root;
  return OkStatus();
}

// --- Tlb ---------------------------------------------------------------------
// Valid entries only, with their (set, way) coordinates: LRU ticks and the
// mutation version must survive exactly — grant-cache coherence and
// replacement decisions both key off them.

void Tlb::SaveState(SnapshotWriter& w) const {
  w.PutTag(kTagTlb);
  w.PutU64(tick_);
  w.PutU64(version_);
  w.PutU64(stats_.hits);
  w.PutU64(stats_.misses);
  w.PutU64(stats_.flushes);
  uint64_t valid = 0;
  for (const auto& set : sets_) {
    for (const auto& entry : set) {
      valid += entry.valid ? 1 : 0;
    }
  }
  w.PutU64(valid);
  for (int s = 0; s < kSets; ++s) {
    for (int way = 0; way < kWays; ++way) {
      const Entry& entry = sets_[static_cast<size_t>(s)][static_cast<size_t>(way)];
      if (!entry.valid) {
        continue;
      }
      w.PutU16(static_cast<uint16_t>(s));
      w.PutU16(static_cast<uint16_t>(way));
      w.PutU16(entry.vpid);
      w.PutU64(entry.vpn);
      w.PutU64(entry.pte);
      w.PutU64(entry.lru);
    }
  }
}

Status Tlb::LoadState(SnapshotReader& r) {
  if (!r.ExpectTag(kTagTlb, "TLB")) {
    return r.status();
  }
  const uint64_t tick = r.U64();
  const uint64_t version = r.U64();
  TlbStats stats;
  stats.hits = r.U64();
  stats.misses = r.U64();
  stats.flushes = r.U64();
  const uint64_t count = r.U64();
  if (!r.FitCount(count, 30)) {
    return r.status();
  }
  std::array<std::array<Entry, kWays>, kSets> sets{};
  for (uint64_t i = 0; i < count && r.status().ok(); ++i) {
    const uint16_t s = r.U16();
    const uint16_t way = r.U16();
    if (s >= kSets || way >= kWays) {
      return InvalidArgument("snapshot TLB entry coordinates out of range");
    }
    Entry& entry = sets[s][way];
    entry.valid = true;
    entry.vpid = r.U16();
    entry.vpn = r.U64();
    entry.pte = r.U64();
    entry.lru = r.U64();
  }
  if (!r.status().ok()) {
    return r.status();
  }
  sets_ = sets;
  tick_ = tick;
  version_ = version;
  stats_ = stats;
  return OkStatus();
}

// --- CacheArray / CacheHierarchy --------------------------------------------
// Geometry is validated, not restored: a snapshot taken against a different
// cache configuration prices accesses differently and must be rejected.

void CacheArray::SaveState(SnapshotWriter& w) const {
  w.PutTag(kTagCache);
  w.PutU32(static_cast<uint32_t>(ways_));
  w.PutU32(static_cast<uint32_t>(line_shift_));
  w.PutU64(num_sets_);
  w.PutU64(tick_);
  const uint64_t total = num_sets_ * static_cast<uint64_t>(ways_);
  uint64_t valid = 0;
  for (uint64_t i = 0; i < total; ++i) {
    valid += lines_[i].valid() ? 1 : 0;
  }
  w.PutU64(valid);
  for (uint64_t i = 0; i < total; ++i) {
    if (!lines_[i].valid()) {
      continue;
    }
    w.PutU64(i);
    w.PutU64(lines_[i].tag);
    w.PutU64(lines_[i].lru);
  }
}

Status CacheArray::LoadState(SnapshotReader& r) {
  if (!r.ExpectTag(kTagCache, "cache array")) {
    return r.status();
  }
  const auto ways = static_cast<int>(r.U32());
  const auto line_shift = static_cast<int>(r.U32());
  const uint64_t num_sets = r.U64();
  if (r.status().ok() &&
      (ways != ways_ || line_shift != line_shift_ || num_sets != num_sets_)) {
    return FailedPrecondition("snapshot cache geometry mismatch");
  }
  const uint64_t tick = r.U64();
  const uint64_t count = r.U64();
  if (!r.FitCount(count, 24)) {
    return r.status();
  }
  const uint64_t total = num_sets_ * static_cast<uint64_t>(ways_);
  std::vector<Line> lines(total, Line{0, 0});
  for (uint64_t i = 0; i < count && r.status().ok(); ++i) {
    const uint64_t index = r.U64();
    if (index >= total) {
      return InvalidArgument("snapshot cache line index out of range");
    }
    lines[index].tag = r.U64();
    lines[index].lru = r.U64();
  }
  if (!r.status().ok()) {
    return r.status();
  }
  std::memcpy(lines_.get(), lines.data(), total * sizeof(Line));
  tick_ = tick;
  return OkStatus();
}

void CacheHierarchy::SaveState(SnapshotWriter& w) const {
  w.PutTag(kTagHier);
  l1_.SaveState(w);
  l2_.SaveState(w);
  l3_.SaveState(w);
  w.PutU64(stats_.accesses);
  w.PutU64(stats_.l1_hits);
  w.PutU64(stats_.l2_hits);
  w.PutU64(stats_.l3_hits);
  w.PutU64(stats_.dram_accesses);
}

Status CacheHierarchy::LoadState(SnapshotReader& r) {
  if (!r.ExpectTag(kTagHier, "cache hierarchy")) {
    return r.status();
  }
  MEMSENTRY_RETURN_IF_ERROR(l1_.LoadState(r));
  MEMSENTRY_RETURN_IF_ERROR(l2_.LoadState(r));
  MEMSENTRY_RETURN_IF_ERROR(l3_.LoadState(r));
  stats_.accesses = r.U64();
  stats_.l1_hits = r.U64();
  stats_.l2_hits = r.U64();
  stats_.l3_hits = r.U64();
  stats_.dram_accesses = r.U64();
  return r.status();
}

// --- Mmu ---------------------------------------------------------------------
// Grants are a pure cache holding Tlb::Entry pointers into the pre-restore
// TLB, so they are dropped rather than restored; the first post-restore
// access re-derives each verdict through the slow path, which is
// bit-identical by the fast-path contract. Grant hit/miss counters are
// info-only observability and are restored verbatim.

void Mmu::SaveState(SnapshotWriter& w) const {
  w.PutTag(kTagMmu);
  w.PutU16(vpid_);
  w.PutU64(stats_.accesses);
  w.PutU64(stats_.faults);
  w.PutU64(stats_.walk_memory_touches);
  w.PutU64(grant_stats_.hits);
  w.PutU64(grant_stats_.misses);
  tlb_.SaveState(w);
  dcache_.SaveState(w);
}

Status Mmu::LoadState(SnapshotReader& r) {
  if (!r.ExpectTag(kTagMmu, "MMU")) {
    return r.status();
  }
  vpid_ = r.U16();
  stats_.accesses = r.U64();
  stats_.faults = r.U64();
  stats_.walk_memory_touches = r.U64();
  grant_stats_.hits = r.U64();
  grant_stats_.misses = r.U64();
  MEMSENTRY_RETURN_IF_ERROR(tlb_.LoadState(r));
  MEMSENTRY_RETURN_IF_ERROR(dcache_.LoadState(r));
  grants_.assign(kGrantSlots, Grant{});
  return r.status();
}

// --- RegisterFile ------------------------------------------------------------

void SaveRegisterFile(const RegisterFile& regs, SnapshotWriter& w) {
  w.PutTag(kTagRegs);
  for (uint64_t g : regs.gpr) {
    w.PutU64(g);
  }
  for (const Ymm& ymm : regs.ymm) {
    for (uint64_t word : ymm.words) {
      w.PutU64(word);
    }
  }
  for (const BoundRegister& bnd : regs.bnd) {
    w.PutU64(bnd.lower);
    w.PutU64(bnd.upper);
  }
  w.PutBool(regs.bnd_preserve);
  w.PutU32(regs.pkru.value);
  w.PutU64(regs.rip);
  w.PutBool(regs.zero_flag);
}

Status LoadRegisterFile(RegisterFile* regs, SnapshotReader& r) {
  if (!r.ExpectTag(kTagRegs, "register file")) {
    return r.status();
  }
  for (uint64_t& g : regs->gpr) {
    g = r.U64();
  }
  for (Ymm& ymm : regs->ymm) {
    for (uint64_t& word : ymm.words) {
      word = r.U64();
    }
  }
  for (BoundRegister& bnd : regs->bnd) {
    bnd.lower = r.U64();
    bnd.upper = r.U64();
  }
  regs->bnd_preserve = r.Bool();
  regs->pkru.value = r.U32();
  regs->rip = r.U64();
  regs->zero_flag = r.Bool();
  return r.status();
}

}  // namespace memsentry::machine

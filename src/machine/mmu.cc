#include "src/machine/mmu.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace memsentry::machine {

Mmu::Mmu(PhysicalMemory* pmem, const CostModel* cost) : pmem_(pmem), cost_(cost) {}

FaultOr<AccessResult> Mmu::AccessSlow(VirtAddr va, AccessType access, const Pkru& pkru,
                                      bool fill_grant) {
  ++stats_.accesses;
  assert(page_table_ != nullptr && "no active page table");

  if (va >= kAddressSpaceEnd) {
    ++stats_.faults;
    return Fault{FaultType::kNonCanonical, va, access};
  }

  AccessResult result;
  uint64_t pte = 0;
  const uint16_t asid = EffectiveAsid();
  Tlb::Entry* tlb_entry = tlb_.LookupEntry(va, asid);
  if (tlb_entry != nullptr) {
    pte = tlb_entry->pte;
  } else {
    result.tlb_hit = false;
    auto walk = page_table_->Walk(va);
    // Each walk level is a real memory touch priced through the data cache.
    const int guest_levels = walk.ok() ? walk.value().levels_touched : 1;
    for (int i = 0; i < guest_levels; ++i) {
      // Page-table entries cluster, so model them as hitting near the root
      // frame; pricing uses the cache level the touch lands in.
      const CacheLevel level = dcache_.Access(page_table_->root() + static_cast<uint64_t>(i) * 64);
      result.cycles += cost_->MemLatency(level);
      ++stats_.walk_memory_touches;
    }
    if (!walk.ok()) {
      ++stats_.faults;
      return Fault{FaultType::kPageNotPresent, va, access};
    }
    pte = walk.value().pte;

    if (second_ != nullptr) {
      // Nested translation: the guest frame is guest-physical; run it through
      // the EPT and charge the extra walk levels.
      const GuestPhysAddr gpa = pte & kPteFrameMask;
      for (int i = 0; i < second_->ExtraWalkLevels(); ++i) {
        const CacheLevel level =
            dcache_.Access(page_table_->root() + 4096 + static_cast<uint64_t>(i) * 64);
        result.cycles += cost_->MemLatency(level);
        ++stats_.walk_memory_touches;
      }
      auto host = second_->TranslateGuestPhys(gpa, access);
      if (!host.ok()) {
        ++stats_.faults;
        // Report the *virtual* address: the guest defense/attacker reasons in
        // virtual space.
        Fault f = host.fault();
        f.address = va;
        return f;
      }
      pte = (pte & ~kPteFrameMask) | (host.value() & kPteFrameMask);
    }
    tlb_entry = tlb_.Insert(va, asid, pte);
  }

  // Permission checks run on every access, hit or miss.
  const bool user_page = PageTable::PteUser(pte);
  if (!user_page) {
    ++stats_.faults;
    return Fault{FaultType::kUserSupervisor, va, access};
  }
  switch (access) {
    case AccessType::kExecute:
      if (PageTable::PteNx(pte)) {
        ++stats_.faults;
        return Fault{FaultType::kNxViolation, va, access};
      }
      break;
    case AccessType::kWrite:
      if (!PageTable::PteWritable(pte)) {
        ++stats_.faults;
        return Fault{FaultType::kWriteProtection, va, access};
      }
      [[fallthrough]];
    case AccessType::kRead: {
      // MPK: protection keys gate data accesses to user pages (SDM 4.6.2).
      const uint8_t key = PageTable::PtePkey(pte);
      if (pkru.AccessDisabled(key)) {
        ++stats_.faults;
        return Fault{FaultType::kPkeyAccessDisabled, va, access};
      }
      if (access == AccessType::kWrite && pkru.WriteDisabled(key)) {
        ++stats_.faults;
        return Fault{FaultType::kPkeyWriteDisabled, va, access};
      }
      break;
    }
  }

  if (fill_grant) {
    // Mint the grant before pricing: the verdict is settled, and the TLB
    // version must be read *after* any Insert above (which bumped it).
    const uint64_t vpn = PageNumber(va);
    Grant& grant = grants_[GrantIndex(vpn, access)];
    grant.vpn = vpn;
    grant.pte = pte;
    grant.tlb_version = tlb_.version();
    grant.entry = tlb_entry;
    grant.pkru = pkru.value;
    grant.asid = asid;
    grant.access = static_cast<uint8_t>(access);
  }

  result.phys = (pte & kPteFrameMask) | PageOffset(va);
  result.level = dcache_.Access(result.phys);
  if (access == AccessType::kRead) {
    result.cycles += cost_->LoadCost(result.level);
  }
  // Stores: latency hidden by the store buffer; the line move was recorded.
  return result;
}

void Mmu::CheckGrant(const Grant& grant, VirtAddr va, AccessType access,
                     const Pkru& pkru) const {
  // Re-derive what the slow path would do on this access and abort on any
  // divergence: the grant must mirror the entry a first-match Lookup would
  // hit, with the same PTE, and the permission verdict must still be
  // "allowed" under the live PKRU.
  const Tlb::Entry* first = tlb_.PeekEntry(va, EffectiveAsid());
  const char* divergence = nullptr;
  if (first == nullptr) {
    divergence = "grant hit but the TLB has no matching entry";
  } else if (first != grant.entry) {
    divergence = "grant entry is not the first-match TLB entry";
  } else if (first->pte != grant.pte) {
    divergence = "grant PTE differs from the cached TLB PTE";
  } else if (!PageTable::PteUser(grant.pte)) {
    divergence = "grant PTE lost its user bit";
  } else if (access == AccessType::kExecute && PageTable::PteNx(grant.pte)) {
    divergence = "grant PTE gained NX";
  } else if (access == AccessType::kWrite && !PageTable::PteWritable(grant.pte)) {
    divergence = "grant PTE lost its writable bit";
  } else if (access != AccessType::kExecute) {
    const uint8_t key = PageTable::PtePkey(grant.pte);
    if (pkru.AccessDisabled(key) ||
        (access == AccessType::kWrite && pkru.WriteDisabled(key))) {
      divergence = "live PKRU now denies the granted access";
    }
  }
  if (divergence != nullptr) {
    std::fprintf(stderr,
                 "memsentry: MMU fast-path divergence: %s (va=0x%llx access=%d asid=%u "
                 "pkru=0x%x tlb_version=%llu)\n",
                 divergence, static_cast<unsigned long long>(va), static_cast<int>(access),
                 unsigned{grant.asid}, grant.pkru,
                 static_cast<unsigned long long>(grant.tlb_version));
    std::abort();
  }
}

// Both byte-transfer helpers split at page boundaries, so a multi-page copy
// performs exactly one Access() — one translation, one pricing — per page
// touched, regardless of total size. tests/mmu_bytes_test.cc pins the cycle
// counts of multi-page copies so this invariant cannot drift.
FaultOr<bool> Mmu::ReadBytes(VirtAddr va, void* out, uint64_t size, const Pkru& pkru,
                             Cycles* cycles) {
  uint8_t* dst = static_cast<uint8_t*>(out);
  while (size > 0) {
    const uint64_t chunk = std::min<uint64_t>(size, kPageSize - PageOffset(va));
    auto access = Access(va, AccessType::kRead, pkru);
    if (!access.ok()) {
      return access.fault();
    }
    if (cycles != nullptr) {
      *cycles += access.value().cycles;
    }
    pmem_->ReadBytes(access.value().phys, dst, chunk);
    va += chunk;
    dst += chunk;
    size -= chunk;
  }
  return true;
}

FaultOr<bool> Mmu::WriteBytes(VirtAddr va, const void* in, uint64_t size, const Pkru& pkru,
                              Cycles* cycles) {
  const uint8_t* src = static_cast<const uint8_t*>(in);
  while (size > 0) {
    const uint64_t chunk = std::min<uint64_t>(size, kPageSize - PageOffset(va));
    auto access = Access(va, AccessType::kWrite, pkru);
    if (!access.ok()) {
      return access.fault();
    }
    if (cycles != nullptr) {
      *cycles += access.value().cycles;
    }
    pmem_->WriteBytes(access.value().phys, src, chunk);
    va += chunk;
    src += chunk;
    size -= chunk;
  }
  return true;
}

}  // namespace memsentry::machine

#include "src/machine/cache.h"

#include <cassert>

namespace memsentry::machine {
namespace {

int Log2(uint64_t v) {
  int n = 0;
  while ((uint64_t{1} << n) < v) {
    ++n;
  }
  return n;
}

}  // namespace

CacheArray::CacheArray(uint64_t size_bytes, int ways, int line_bytes)
    : ways_(ways),
      line_shift_(Log2(static_cast<uint64_t>(line_bytes))),
      tag_shift_(Log2(size_bytes / (static_cast<uint64_t>(ways) * line_bytes))),
      num_sets_(size_bytes / (static_cast<uint64_t>(ways) * line_bytes)) {
  assert((num_sets_ & (num_sets_ - 1)) == 0 && "set count must be a power of two");
  lines_.reset(static_cast<Line*>(
      std::calloc(num_sets_ * static_cast<uint64_t>(ways_), sizeof(Line))));
}

void CacheArray::Fill(Line* base, uint64_t tag) {
  // Evict the last invalid way if any, else the first least-recently used
  // way (same choice as the original combined scan).
  Line* victim = base;
  for (int w = 0; w < ways_; ++w) {
    Line& line = base[w];
    if (!line.valid()) {
      victim = &line;
    } else if (victim->valid() && line.lru < victim->lru) {
      victim = &line;
    }
  }
  *victim = Line{.tag = tag, .lru = ++tick_};
}

void CacheArray::Flush() {
  const uint64_t n = num_sets_ * static_cast<uint64_t>(ways_);
  for (uint64_t i = 0; i < n; ++i) {
    lines_[i].lru = 0;
  }
}

CacheHierarchy::CacheHierarchy()
    : l1_(32 * 1024, /*ways=*/8, /*line_bytes=*/64),
      l2_(256 * 1024, /*ways=*/4, /*line_bytes=*/64),
      l3_(8 * 1024 * 1024, /*ways=*/16, /*line_bytes=*/64) {}

void CacheHierarchy::Flush() {
  l1_.Flush();
  l2_.Flush();
  l3_.Flush();
}

}  // namespace memsentry::machine

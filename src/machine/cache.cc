#include "src/machine/cache.h"

#include <cassert>

namespace memsentry::machine {
namespace {

int Log2(uint64_t v) {
  int n = 0;
  while ((uint64_t{1} << n) < v) {
    ++n;
  }
  return n;
}

}  // namespace

CacheArray::CacheArray(uint64_t size_bytes, int ways, int line_bytes)
    : ways_(ways),
      line_shift_(Log2(static_cast<uint64_t>(line_bytes))),
      num_sets_(size_bytes / (static_cast<uint64_t>(ways) * line_bytes)) {
  assert((num_sets_ & (num_sets_ - 1)) == 0 && "set count must be a power of two");
  lines_.resize(num_sets_ * static_cast<uint64_t>(ways_));
}

bool CacheArray::Access(PhysAddr addr) {
  const uint64_t block = addr >> line_shift_;
  const uint64_t set = block & (num_sets_ - 1);
  const uint64_t tag = block >> Log2(num_sets_);
  Line* base = &lines_[set * static_cast<uint64_t>(ways_)];
  Line* victim = base;
  for (int w = 0; w < ways_; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = ++tick_;
      return true;
    }
    if (!line.valid) {
      victim = &line;
    } else if (victim->valid && line.lru < victim->lru) {
      victim = &line;
    }
  }
  *victim = Line{.valid = true, .tag = tag, .lru = ++tick_};
  return false;
}

void CacheArray::Flush() {
  for (Line& line : lines_) {
    line.valid = false;
  }
}

CacheHierarchy::CacheHierarchy()
    : l1_(32 * 1024, /*ways=*/8, /*line_bytes=*/64),
      l2_(256 * 1024, /*ways=*/4, /*line_bytes=*/64),
      l3_(8 * 1024 * 1024, /*ways=*/16, /*line_bytes=*/64) {}

CacheLevel CacheHierarchy::Access(PhysAddr addr) {
  ++stats_.accesses;
  if (l1_.Access(addr)) {
    ++stats_.l1_hits;
    return CacheLevel::kL1;
  }
  if (l2_.Access(addr)) {
    ++stats_.l2_hits;
    return CacheLevel::kL2;
  }
  if (l3_.Access(addr)) {
    ++stats_.l3_hits;
    return CacheLevel::kL3;
  }
  ++stats_.dram_accesses;
  return CacheLevel::kDram;
}

void CacheHierarchy::Flush() {
  l1_.Flush();
  l2_.Flush();
  l3_.Flush();
}

}  // namespace memsentry::machine

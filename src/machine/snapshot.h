// Versioned, deterministic binary serialization of machine state. Snapshots
// power crash-safe campaigns: run(N+M) must be bit-identical to
// run(N); save; load; run(M), so every value is written exactly (doubles as
// raw bit patterns, counters verbatim, container contents in a canonical
// order). The format is explicit little-endian with a magic/version header
// and an FNV-1a payload checksum; the reader is bounds-checked and
// status-latching so corrupt or truncated input yields a typed Status, never
// a crash (fuzzed under ASan in tests/snapshot_test.cc).
#ifndef MEMSENTRY_SRC_MACHINE_SNAPSHOT_H_
#define MEMSENTRY_SRC_MACHINE_SNAPSHOT_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "src/base/status.h"

namespace memsentry::machine {

struct RegisterFile;

inline constexpr uint32_t kSnapshotMagic = 0x4D534E50;  // "MSNP"
inline constexpr uint32_t kSnapshotVersion = 1;
// Header: magic, version, payload size, FNV-1a(payload). All little-endian.
inline constexpr uint64_t kSnapshotHeaderBytes = 4 + 4 + 8 + 8;

// FNV-1a over a byte range; doubles as the config-digest hash (cost model,
// AES key schedules) so loads can detect a mismatched environment.
uint64_t SnapshotDigest(const void* data, uint64_t size);

// Append-only byte sink. Integers are written little-endian byte by byte, so
// snapshots are portable across hosts; doubles are written as their raw IEEE
// bit pattern, the representation the determinism contract is defined over.
class SnapshotWriter {
 public:
  void PutU8(uint8_t v) { payload_.push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v) { PutLe(v, 2); }
  void PutU32(uint32_t v) { PutLe(v, 4); }
  void PutU64(uint64_t v) { PutLe(v, 8); }
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutDouble(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }
  void PutBytes(const void* data, uint64_t size) {
    payload_.append(static_cast<const char*>(data), size);
  }
  void PutString(std::string_view s) {
    PutU64(s.size());
    PutBytes(s.data(), s.size());
  }
  // Section tags bound the blast radius of a bug: a reader that drifts out
  // of sync fails at the next tag with a named error instead of silently
  // misinterpreting downstream bytes.
  void PutTag(uint32_t tag) { PutU32(tag); }

  uint64_t size() const { return payload_.size(); }

  // Prepends the header (magic, version, size, checksum) and returns the
  // complete blob.
  std::string Finalize() const;

 private:
  void PutLe(uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      payload_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  std::string payload_;
};

// Bounds-checked, status-latching reader. Every accessor returns a zero
// value once the payload is exhausted (or a prior validation failed) and
// latches the first error; callers check status() / Finish() once at the end
// instead of guarding every read. Length prefixes must be validated with
// FitCount() before sizing containers, which keeps the fuzz test OOM-safe.
class SnapshotReader {
 public:
  // Validates the header (typed errors: bad magic -> kInvalidArgument,
  // unsupported version -> kUnimplemented, truncation/size mismatch ->
  // kOutOfRange, checksum mismatch -> kInvalidArgument) and returns a reader
  // positioned at the start of the payload. The reader owns a copy of the
  // payload, so the blob may be released immediately.
  static StatusOr<SnapshotReader> Open(std::string_view blob);

  uint8_t U8();
  uint16_t U16() { return static_cast<uint16_t>(Le(2)); }
  uint32_t U32() { return static_cast<uint32_t>(Le(4)); }
  uint64_t U64() { return Le(8); }
  int32_t I32() { return static_cast<int32_t>(U32()); }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  bool Bool() { return U8() != 0; }
  double Double() {
    const uint64_t bits = U64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  void Bytes(void* out, uint64_t size);
  std::string String();

  // True when `count` elements of at least `min_bytes_each` fit in the
  // remaining payload; latches kOutOfRange otherwise. Call before resizing
  // any container from a length prefix.
  bool FitCount(uint64_t count, uint64_t min_bytes_each);

  // Reads a tag and latches kInvalidArgument naming `what` on mismatch.
  bool ExpectTag(uint32_t tag, const char* what);

  // Latches an arbitrary validation failure (keeps subsequent reads inert).
  void Fail(Status status);

  uint64_t remaining() const { return payload_.size() - pos_; }
  const Status& status() const { return status_; }
  // Final verdict: the latched status, or an error if payload bytes remain
  // unconsumed (a format drift both ways should be loud).
  Status Finish() const;

 private:
  explicit SnapshotReader(std::string payload) : payload_(std::move(payload)) {}

  uint64_t Le(int bytes);
  bool Take(uint64_t n, const char** p);

  std::string payload_;
  uint64_t pos_ = 0;
  Status status_;
};

// --- Machine-state components -----------------------------------------------
// Each stateful machine class implements SaveState/LoadState (declared on the
// class); the free functions below cover the plain-aggregate register file.
// LoadState never allocates from unvalidated lengths and reports failures as
// typed Status values.

void SaveRegisterFile(const RegisterFile& regs, SnapshotWriter& w);
Status LoadRegisterFile(RegisterFile* regs, SnapshotReader& r);

}  // namespace memsentry::machine

#endif  // MEMSENTRY_SRC_MACHINE_SNAPSHOT_H_

#include "src/machine/fault.h"

#include <cstdio>

namespace memsentry::machine {

const char* FaultTypeName(FaultType type) {
  switch (type) {
    case FaultType::kNone:
      return "NONE";
    case FaultType::kPageNotPresent:
      return "PAGE_NOT_PRESENT";
    case FaultType::kWriteProtection:
      return "WRITE_PROTECTION";
    case FaultType::kNxViolation:
      return "NX_VIOLATION";
    case FaultType::kPkeyAccessDisabled:
      return "PKEY_ACCESS_DISABLED";
    case FaultType::kPkeyWriteDisabled:
      return "PKEY_WRITE_DISABLED";
    case FaultType::kUserSupervisor:
      return "USER_SUPERVISOR";
    case FaultType::kNonCanonical:
      return "NON_CANONICAL";
    case FaultType::kGeneralProtection:
      return "GENERAL_PROTECTION";
    case FaultType::kBoundRange:
      return "BOUND_RANGE";
    case FaultType::kEptViolation:
      return "EPT_VIOLATION";
    case FaultType::kVmExit:
      return "VM_EXIT";
    case FaultType::kEnclaveAccess:
      return "ENCLAVE_ACCESS";
    case FaultType::kEnclaveExit:
      return "ENCLAVE_EXIT";
  }
  return "UNKNOWN";
}

const char* AccessTypeName(AccessType type) {
  switch (type) {
    case AccessType::kRead:
      return "read";
    case AccessType::kWrite:
      return "write";
    case AccessType::kExecute:
      return "execute";
  }
  return "?";
}

std::string Fault::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s (%s at 0x%llx)", FaultTypeName(type),
                AccessTypeName(access), static_cast<unsigned long long>(address));
  return buf;
}

}  // namespace memsentry::machine

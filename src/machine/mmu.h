// The MMU ties together page tables, TLB, data cache, protection keys and an
// optional second-level (EPT) translation. Every simulated data access goes
// through Access(); permission and pkey checks are evaluated on every access
// (including TLB hits) exactly as on real hardware, so PKRU updates take
// effect immediately while PTE changes require a TLB invalidation.
#ifndef MEMSENTRY_SRC_MACHINE_MMU_H_
#define MEMSENTRY_SRC_MACHINE_MMU_H_

#include <cstdint>

#include "src/base/types.h"
#include "src/machine/cache.h"
#include "src/machine/cost_model.h"
#include "src/machine/fault.h"
#include "src/machine/page_table.h"
#include "src/machine/phys_mem.h"
#include "src/machine/registers.h"
#include "src/machine/tlb.h"

namespace memsentry::machine {

// Second-level address translation (implemented by vmx::Ept). Guest-physical
// frames produced by the guest page tables are translated again; pages absent
// from the active EPT raise EPT violations.
class SecondLevelTranslation {
 public:
  virtual ~SecondLevelTranslation() = default;

  // Translates a guest-physical address for the given access type.
  virtual FaultOr<PhysAddr> TranslateGuestPhys(GuestPhysAddr gpa, AccessType access) = 0;

  // Extra page-walk memory touches a nested walk costs on a TLB miss.
  virtual int ExtraWalkLevels() const = 0;

  // Mixed into TLB tags: switching EPTs (vmfunc) must not require a flush,
  // which real hardware achieves with per-EPTP TLB tagging.
  virtual uint16_t AsidTag() const = 0;
};

struct AccessResult {
  PhysAddr phys = 0;
  Cycles cycles = 0;  // translation cost + exposed data latency
  CacheLevel level = CacheLevel::kL1;
  bool tlb_hit = true;
};

struct MmuStats {
  uint64_t accesses = 0;
  uint64_t faults = 0;
  uint64_t walk_memory_touches = 0;
};

class Mmu {
 public:
  Mmu(PhysicalMemory* pmem, const CostModel* cost);

  Mmu(const Mmu&) = delete;
  Mmu& operator=(const Mmu&) = delete;

  void SetPageTable(PageTable* pt) {
    page_table_ = pt;
    tlb_.FlushAll();
  }
  PageTable* page_table() const { return page_table_; }

  void SetSecondLevel(SecondLevelTranslation* second) { second_ = second; }
  SecondLevelTranslation* second_level() const { return second_; }

  void SetVpid(uint16_t vpid) { vpid_ = vpid; }

  // Translates + prices one access. `pkru` is the current thread's PKRU.
  FaultOr<AccessResult> Access(VirtAddr va, AccessType access, const Pkru& pkru);

  // Data helpers on top of Access(). 64-bit accesses must not cross a page.
  FaultOr<uint64_t> Read64(VirtAddr va, const Pkru& pkru, Cycles* cycles);
  FaultOr<bool> Write64(VirtAddr va, uint64_t value, const Pkru& pkru, Cycles* cycles);
  // Arbitrary-length buffer access, split at page boundaries.
  FaultOr<bool> ReadBytes(VirtAddr va, void* out, uint64_t size, const Pkru& pkru,
                          Cycles* cycles);
  FaultOr<bool> WriteBytes(VirtAddr va, const void* in, uint64_t size, const Pkru& pkru,
                           Cycles* cycles);

  // TLB maintenance (invlpg / mov cr3).
  void InvalidatePage(VirtAddr va) { tlb_.InvalidatePage(va); }
  void FlushTlb() { tlb_.FlushAll(); }

  // The tag translations are inserted under right now (vpid ⊕ active-EPT
  // tag). Public so fault injection and coherence audits can address the
  // exact TLB entries the current translation mode would hit.
  uint16_t EffectiveAsid() const {
    return static_cast<uint16_t>(vpid_ ^ (second_ != nullptr ? second_->AsidTag() << 8 : 0));
  }

  Tlb& tlb() { return tlb_; }
  CacheHierarchy& dcache() { return dcache_; }
  PhysicalMemory& pmem() { return *pmem_; }
  const MmuStats& stats() const { return stats_; }
  void ResetStats() {
    stats_ = MmuStats{};
    tlb_.ResetStats();
    dcache_.ResetStats();
  }

 private:
  PhysicalMemory* pmem_;
  const CostModel* cost_;
  PageTable* page_table_ = nullptr;
  SecondLevelTranslation* second_ = nullptr;
  uint16_t vpid_ = 0;
  Tlb tlb_;
  CacheHierarchy dcache_;
  MmuStats stats_;
};

}  // namespace memsentry::machine

#endif  // MEMSENTRY_SRC_MACHINE_MMU_H_

// The MMU ties together page tables, TLB, data cache, protection keys and an
// optional second-level (EPT) translation. Every simulated data access goes
// through Access(); permission and pkey checks are evaluated on every access
// (including TLB hits) exactly as on real hardware, so PKRU updates take
// effect immediately while PTE changes require a TLB invalidation.
#ifndef MEMSENTRY_SRC_MACHINE_MMU_H_
#define MEMSENTRY_SRC_MACHINE_MMU_H_

#include <cstdint>
#include <vector>

#include "src/base/fastpath.h"
#include "src/base/types.h"
#include "src/machine/cache.h"
#include "src/machine/cost_model.h"
#include "src/machine/fault.h"
#include "src/machine/page_table.h"
#include "src/machine/phys_mem.h"
#include "src/machine/registers.h"
#include "src/machine/tlb.h"

namespace memsentry::machine {

class SnapshotReader;
class SnapshotWriter;

// Second-level address translation (implemented by vmx::Ept). Guest-physical
// frames produced by the guest page tables are translated again; pages absent
// from the active EPT raise EPT violations.
class SecondLevelTranslation {
 public:
  virtual ~SecondLevelTranslation() = default;

  // Translates a guest-physical address for the given access type.
  virtual FaultOr<PhysAddr> TranslateGuestPhys(GuestPhysAddr gpa, AccessType access) = 0;

  // Extra page-walk memory touches a nested walk costs on a TLB miss.
  virtual int ExtraWalkLevels() const = 0;

  // Mixed into TLB tags: switching EPTs (vmfunc) must not require a flush,
  // which real hardware achieves with per-EPTP TLB tagging. Non-virtual on
  // purpose — the grant probe reads it on every memory access, so it must
  // stay a plain inline load; implementations publish tag changes through
  // SetAsidTag (vmx does so on every EPT switch and snapshot restore).
  uint16_t AsidTag() const { return asid_tag_; }

 protected:
  void SetAsidTag(uint16_t tag) { asid_tag_ = tag; }

 private:
  uint16_t asid_tag_ = 0;
};

struct AccessResult {
  PhysAddr phys = 0;
  Cycles cycles = 0;  // translation cost + exposed data latency
  CacheLevel level = CacheLevel::kL1;
  bool tlb_hit = true;
};

struct MmuStats {
  uint64_t accesses = 0;
  uint64_t faults = 0;
  uint64_t walk_memory_touches = 0;
};

// Hit/miss counters for the translation grant cache (the fast path in front
// of Access()). Observability only: the counters never feed modeled cycles.
struct GrantStats {
  uint64_t hits = 0;
  uint64_t misses = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class Mmu {
 public:
  Mmu(PhysicalMemory* pmem, const CostModel* cost);

  Mmu(const Mmu&) = delete;
  Mmu& operator=(const Mmu&) = delete;

  void SetPageTable(PageTable* pt) {
    page_table_ = pt;
    tlb_.FlushAll();
  }
  PageTable* page_table() const { return page_table_; }

  void SetSecondLevel(SecondLevelTranslation* second) { second_ = second; }
  SecondLevelTranslation* second_level() const { return second_; }

  void SetVpid(uint16_t vpid) { vpid_ = vpid; }

  // Translates + prices one access. `pkru` is the current thread's PKRU.
  // Inline so the grant-probe fast path (one compare against a memoized
  // verdict) fuses into the interpreter's load/store handling; everything
  // that misses falls into the out-of-line slow path. The interpreter hoists
  // the mode lookup out of its dispatch loop and uses the explicit-mode
  // overload; everyone else pays the (relaxed atomic) load per access.
  FaultOr<AccessResult> Access(VirtAddr va, AccessType access, const Pkru& pkru) {
    return Access(va, access, pkru, base::GetFastPathMode());
  }

  FaultOr<AccessResult> Access(VirtAddr va, AccessType access, const Pkru& pkru,
                               base::FastPathMode mode) {
    if (mode == base::FastPathMode::kOff) {
      return AccessSlow(va, access, pkru, /*fill_grant=*/false);
    }
    // Non-canonical addresses can never match (grants are only minted for
    // successful accesses), so the probe needs no range check.
    const uint64_t vpn = PageNumber(va);
    Grant& grant = grants_[GrantIndex(vpn, access)];
    if (grant.vpn == vpn && grant.access == static_cast<uint8_t>(access) &&
        grant.pkru == pkru.value && grant.tlb_version == tlb_.version() &&
        grant.asid == EffectiveAsid()) {
      if (mode == base::FastPathMode::kCheck) {
        CheckGrant(grant, va, access, pkru);
      }
      ++grant_stats_.hits;
      // Replay the slow path's observable effects exactly: the access
      // count, the TLB hit bookkeeping (LRU bump + hit counter), and the
      // stateful data-cache touch that prices the access.
      ++stats_.accesses;
      tlb_.RecordHit(grant.entry);
      AccessResult result;
      result.phys = (grant.pte & kPteFrameMask) | PageOffset(va);
      result.level = dcache_.Access(result.phys);
      if (access == AccessType::kRead) {
        result.cycles += cost_->LoadCost(result.level);
      }
      return result;
    }
    ++grant_stats_.misses;
    return AccessSlow(va, access, pkru, /*fill_grant=*/true);
  }

  // Data helpers on top of Access(). 64-bit accesses must not cross a page.
  FaultOr<uint64_t> Read64(VirtAddr va, const Pkru& pkru, Cycles* cycles) {
    return Read64(va, pkru, cycles, base::GetFastPathMode());
  }

  FaultOr<uint64_t> Read64(VirtAddr va, const Pkru& pkru, Cycles* cycles,
                           base::FastPathMode mode) {
    auto access = Access(va, AccessType::kRead, pkru, mode);
    if (!access.ok()) {
      return access.fault();
    }
    if (cycles != nullptr) {
      *cycles += access.value().cycles;
    }
    return pmem_->Read64(access.value().phys);
  }

  FaultOr<bool> Write64(VirtAddr va, uint64_t value, const Pkru& pkru, Cycles* cycles) {
    return Write64(va, value, pkru, cycles, base::GetFastPathMode());
  }

  FaultOr<bool> Write64(VirtAddr va, uint64_t value, const Pkru& pkru, Cycles* cycles,
                        base::FastPathMode mode) {
    auto access = Access(va, AccessType::kWrite, pkru, mode);
    if (!access.ok()) {
      return access.fault();
    }
    if (cycles != nullptr) {
      *cycles += access.value().cycles;
    }
    pmem_->Write64(access.value().phys, value);
    return true;
  }

  // Arbitrary-length buffer access, split at page boundaries.
  FaultOr<bool> ReadBytes(VirtAddr va, void* out, uint64_t size, const Pkru& pkru,
                          Cycles* cycles);
  FaultOr<bool> WriteBytes(VirtAddr va, const void* in, uint64_t size, const Pkru& pkru,
                           Cycles* cycles);

  // TLB maintenance (invlpg / mov cr3).
  void InvalidatePage(VirtAddr va) { tlb_.InvalidatePage(va); }
  void FlushTlb() { tlb_.FlushAll(); }

  // The tag translations are inserted under right now (vpid ⊕ active-EPT
  // tag). Public so fault injection and coherence audits can address the
  // exact TLB entries the current translation mode would hit.
  uint16_t EffectiveAsid() const {
    return static_cast<uint16_t>(vpid_ ^ (second_ != nullptr ? second_->AsidTag() << 8 : 0));
  }

  Tlb& tlb() { return tlb_; }
  CacheHierarchy& dcache() { return dcache_; }
  PhysicalMemory& pmem() { return *pmem_; }
  const MmuStats& stats() const { return stats_; }
  const GrantStats& grant_stats() const { return grant_stats_; }
  void ResetStats() {
    stats_ = MmuStats{};
    grant_stats_ = GrantStats{};
    tlb_.ResetStats();
    dcache_.ResetStats();
  }

  // Crash-safe snapshots: vpid, stats, TLB and D-cache state. Grants hold
  // Tlb::Entry pointers into the pre-restore TLB, so LoadState drops them
  // all — the slow path re-derives each verdict bit-identically.
  void SaveState(SnapshotWriter& w) const;
  Status LoadState(SnapshotReader& r);

 private:
  // One memoized Access() verdict: the cached leaf PTE (frame + permission
  // bits, post-EPT splice) of a prior *successful* access, plus everything
  // that proves the verdict is still current. A grant hits only when
  //   * the (vpn, asid, access-kind) key matches,
  //   * the live PKRU value equals the one the verdict was computed under
  //     (covers wrpkru and direct PKRU desync writes alike: same pte + same
  //     pkru => same permission outcome, matching real hardware's "PKRU
  //     changes need no TLB flush" semantics), and
  //   * the TLB version is unchanged, which proves the slow path's
  //     first-match Lookup would hit `entry` with `pte` exactly as it did
  //     when the grant was minted (every Insert/InvalidatePage/Flush* —
  //     including every FaultInjector site that touches translation state —
  //     bumps the version and thereby drops all grants).
  // A hit replays the slow path's observable effects (access count, TLB hit
  // bookkeeping, the stateful data-cache touch and its load cost) so all
  // modeled results stay bit-identical.
  struct Grant {
    uint64_t vpn = ~uint64_t{0};
    uint64_t pte = 0;
    uint64_t tlb_version = 0;
    Tlb::Entry* entry = nullptr;
    uint32_t pkru = 0;
    uint16_t asid = 0;
    uint8_t access = 0;
  };

  static constexpr uint64_t kGrantSlots = 1024;  // direct-mapped, power of two
  static uint64_t GrantIndex(uint64_t vpn, AccessType access) {
    return (vpn * 3 + static_cast<uint64_t>(access)) & (kGrantSlots - 1);
  }

  // The pre-fast-path Access() body; fills the grant slot on success when
  // `fill_grant` (the fast path is enabled).
  FaultOr<AccessResult> AccessSlow(VirtAddr va, AccessType access, const Pkru& pkru,
                                   bool fill_grant);
  // kCheck lockstep oracle: re-derives the slow path's lookup and permission
  // verdict for a hitting grant and aborts the process on divergence.
  void CheckGrant(const Grant& grant, VirtAddr va, AccessType access, const Pkru& pkru) const;

  PhysicalMemory* pmem_;
  const CostModel* cost_;
  PageTable* page_table_ = nullptr;
  SecondLevelTranslation* second_ = nullptr;
  uint16_t vpid_ = 0;
  Tlb tlb_;
  CacheHierarchy dcache_;
  MmuStats stats_;
  GrantStats grant_stats_;
  std::vector<Grant> grants_ = std::vector<Grant>(kGrantSlots);
};

}  // namespace memsentry::machine

#endif  // MEMSENTRY_SRC_MACHINE_MMU_H_

// Architectural register file: 16 GPRs, 16 ymm (with xmm as the low half),
// 4 MPX bound registers + config, PKRU, rip/rsp/flags.
#ifndef MEMSENTRY_SRC_MACHINE_REGISTERS_H_
#define MEMSENTRY_SRC_MACHINE_REGISTERS_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace memsentry::machine {

// General-purpose register names (x86-64 numbering).
enum class Gpr : uint8_t {
  kRax = 0,
  kRcx = 1,
  kRdx = 2,
  kRbx = 3,
  kRsp = 4,
  kRbp = 5,
  kRsi = 6,
  kRdi = 7,
  kR8 = 8,
  kR9 = 9,
  kR10 = 10,
  kR11 = 11,
  kR12 = 12,
  kR13 = 13,
  kR14 = 14,
  kR15 = 15,
};

inline constexpr int kNumGprs = 16;
inline constexpr int kNumYmms = 16;
inline constexpr int kNumBnds = 4;

// A 256-bit ymm register; words[0..1] form the xmm low half, words[2..3] the
// upper half (where MemSentry's crypt technique parks AES round keys).
struct Ymm {
  std::array<uint64_t, 4> words{};

  void SetXmm(uint64_t lo, uint64_t hi) {
    words[0] = lo;
    words[1] = hi;
  }
  void SetUpper(uint64_t lo, uint64_t hi) {
    words[2] = lo;
    words[3] = hi;
  }
};

// An MPX bound register: [lower, upper] (upper stored one's-complemented on
// real hardware; we store it plainly).
struct BoundRegister {
  uint64_t lower = 0;
  uint64_t upper = ~uint64_t{0};  // INIT state: permit everything
};

// PKRU layout: 2 bits per key — bit 2k = AD (access disable), 2k+1 = WD
// (write disable).
struct Pkru {
  uint32_t value = 0;

  bool AccessDisabled(uint8_t key) const { return (value >> (2 * key)) & 1; }
  bool WriteDisabled(uint8_t key) const { return (value >> (2 * key + 1)) & 1; }
  void SetAccessDisable(uint8_t key, bool disable) {
    const uint32_t bit = uint32_t{1} << (2 * key);
    value = disable ? (value | bit) : (value & ~bit);
  }
  void SetWriteDisable(uint8_t key, bool disable) {
    const uint32_t bit = uint32_t{1} << (2 * key + 1);
    value = disable ? (value | bit) : (value & ~bit);
  }
};

struct RegisterFile {
  std::array<uint64_t, kNumGprs> gpr{};
  std::array<Ymm, kNumYmms> ymm{};
  std::array<BoundRegister, kNumBnds> bnd{};
  bool bnd_preserve = true;  // BNDCFGU.BNDPRESERVE: don't reset bounds at legacy branches
  Pkru pkru{};
  uint64_t rip = 0;
  bool zero_flag = false;

  uint64_t& operator[](Gpr r) { return gpr[static_cast<size_t>(r)]; }
  uint64_t operator[](Gpr r) const { return gpr[static_cast<size_t>(r)]; }
};

}  // namespace memsentry::machine

#endif  // MEMSENTRY_SRC_MACHINE_REGISTERS_H_

// x86-64 4-level page tables built inside simulated physical memory, using the
// architectural PTE bit layout including the 4-bit protection key (MPK) field
// in bits 62:59 of leaf entries (Intel SDM Vol 3, 4.6.2).
#ifndef MEMSENTRY_SRC_MACHINE_PAGE_TABLE_H_
#define MEMSENTRY_SRC_MACHINE_PAGE_TABLE_H_

#include <cstdint>

#include "src/base/status.h"
#include "src/base/types.h"
#include "src/machine/phys_mem.h"

namespace memsentry::machine {

class SnapshotReader;
class SnapshotWriter;

// Architectural PTE bits.
inline constexpr uint64_t kPtePresent = uint64_t{1} << 0;
inline constexpr uint64_t kPteWritable = uint64_t{1} << 1;
inline constexpr uint64_t kPteUser = uint64_t{1} << 2;
inline constexpr uint64_t kPteAccessed = uint64_t{1} << 5;
inline constexpr uint64_t kPteDirty = uint64_t{1} << 6;
inline constexpr uint64_t kPteNx = uint64_t{1} << 63;
inline constexpr int kPtePkeyShift = 59;
inline constexpr uint64_t kPtePkeyMask = uint64_t{0xf} << kPtePkeyShift;
inline constexpr uint64_t kPteFrameMask = 0x000ffffffffff000ULL;

// Page permissions + protection key, the software-facing view of a mapping.
struct PageFlags {
  bool writable = true;
  bool user = true;
  bool executable = false;
  uint8_t pkey = 0;  // protection key 0..15; key 0 is the default domain

  static PageFlags Data() { return PageFlags{.writable = true, .user = true}; }
  static PageFlags ReadOnlyData() { return PageFlags{.writable = false, .user = true}; }
  static PageFlags Code() {
    return PageFlags{.writable = false, .user = true, .executable = true};
  }
};

struct WalkResult {
  PhysAddr phys = 0;       // translated physical address (frame | offset)
  uint64_t pte = 0;        // leaf entry, for permission evaluation
  int levels_touched = 4;  // memory accesses the walk performed
};

// A 4-level page table. The root (PML4) and all intermediate tables are
// ordinary frames in PhysicalMemory; Walk() performs real entry loads.
class PageTable {
 public:
  explicit PageTable(PhysicalMemory* pmem);

  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  PhysAddr root() const { return root_; }

  // Maps one page. Fails if already mapped (use Protect/SetKey to modify).
  Status Map(VirtAddr virt, PhysAddr phys, PageFlags flags);
  // Allocates a fresh frame and maps it; returns the frame address.
  StatusOr<PhysAddr> MapNew(VirtAddr virt, PageFlags flags);
  Status Unmap(VirtAddr virt);
  // Rewrites permissions of an existing mapping (mprotect).
  Status Protect(VirtAddr virt, PageFlags flags);
  // Rewrites only the protection key of an existing mapping (pkey_mprotect).
  Status SetKey(VirtAddr virt, uint8_t pkey);

  bool IsMapped(VirtAddr virt) const;

  // Hardware-style walk: loads one entry per level from physical memory.
  // Returns nullopt-equivalent via ok()==false when a level is not present.
  StatusOr<WalkResult> Walk(VirtAddr virt) const;

  // Raw leaf-PTE access for fault injection and containment audits. Reads
  // and overwrites the leaf entry verbatim — including non-present entries —
  // with no validation of the resulting bits. Fails only when no leaf slot
  // exists (an intermediate level is absent).
  StatusOr<uint64_t> ReadPte(VirtAddr virt) const;
  Status WritePteRaw(VirtAddr virt, uint64_t pte);

  static bool PteWritable(uint64_t pte) { return (pte & kPteWritable) != 0; }
  static bool PteUser(uint64_t pte) { return (pte & kPteUser) != 0; }
  static bool PteNx(uint64_t pte) { return (pte & kPteNx) != 0; }
  static uint8_t PtePkey(uint64_t pte) {
    return static_cast<uint8_t>((pte & kPtePkeyMask) >> kPtePkeyShift);
  }

  // Crash-safe snapshots: only the root pointer — all table frames live in
  // (and restore with) physical memory.
  void SaveState(SnapshotWriter& w) const;
  Status LoadState(SnapshotReader& r);

 private:
  // Returns the physical address of the leaf PTE slot for virt, creating
  // intermediate tables when create==true; 0 when absent and create==false.
  PhysAddr PteSlot(VirtAddr virt, bool create);
  // Non-creating slot lookup usable from const methods.
  PhysAddr FindPteSlot(VirtAddr virt) const;

  static uint64_t IndexAt(VirtAddr virt, int level) {
    // level 3 = PML4, 2 = PDPT, 1 = PD, 0 = PT.
    return (virt >> (kPageShift + 9 * level)) & 0x1ff;
  }

  PhysicalMemory* pmem_;
  PhysAddr root_;
};

}  // namespace memsentry::machine

#endif  // MEMSENTRY_SRC_MACHINE_PAGE_TABLE_H_

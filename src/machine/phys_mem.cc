#include "src/machine/phys_mem.h"

#include <cassert>

namespace memsentry::machine {

PhysicalMemory::PhysicalMemory(uint64_t total_frames) : total_frames_(total_frames) {}

StatusOr<PhysAddr> PhysicalMemory::AllocFrame() {
  if (next_frame_ >= total_frames_) {
    // Linear scan for a freed frame; allocation is not on the simulated hot
    // path so simplicity wins over a free list.
    for (uint64_t f = 1; f < total_frames_; ++f) {
      if (frames_.find(f) == frames_.end()) {
        frames_.emplace(f, nullptr);  // materialized lazily on first touch
        return PhysAddr{f << kPageShift};
      }
    }
    return ResourceExhausted("physical memory exhausted");
  }
  const uint64_t f = next_frame_++;
  frames_.emplace(f, nullptr);  // materialized lazily on first touch
  return PhysAddr{f << kPageShift};
}

Status PhysicalMemory::FreeFrame(PhysAddr frame) {
  const uint64_t f = PageNumber(frame);
  auto it = frames_.find(f);
  if (it == frames_.end()) {
    return NotFound("freeing unallocated frame");
  }
  CachedFrame& slot = frame_cache_[f & (kFrameCacheSlots - 1)];
  if (slot.number == f) {
    slot = CachedFrame{};
  }
  frames_.erase(it);
  return OkStatus();
}

bool PhysicalMemory::IsAllocated(PhysAddr frame) const {
  return frames_.find(PageNumber(frame)) != frames_.end();
}

PhysicalMemory::Frame* PhysicalMemory::FrameFor(PhysAddr addr) {
  const uint64_t f = PageNumber(addr);
  assert(f < total_frames_ && "physical address out of simulated DRAM");
  CachedFrame& slot = frame_cache_[f & (kFrameCacheSlots - 1)];
  if (slot.number == f) {
    return slot.frame;
  }
  auto it = frames_.find(f);
  if (it == frames_.end()) {
    it = frames_.emplace(f, nullptr).first;
  }
  if (it->second == nullptr) {
    it->second = std::make_unique<Frame>();
    it->second->fill(0);
  }
  slot = CachedFrame{f, it->second.get()};
  return it->second.get();
}

const PhysicalMemory::Frame* PhysicalMemory::FrameForConst(PhysAddr addr) const {
  const uint64_t f = PageNumber(addr);
  assert(f < total_frames_ && "physical address out of simulated DRAM");
  CachedFrame& slot = frame_cache_[f & (kFrameCacheSlots - 1)];
  if (slot.number == f) {
    return slot.frame;
  }
  auto it = frames_.find(f);
  if (it == frames_.end()) {
    return nullptr;
  }
  if (it->second != nullptr) {
    slot = CachedFrame{f, it->second.get()};
  }
  return it->second.get();
}

uint64_t PhysicalMemory::Read64Slow(PhysAddr addr) const {
  const Frame* frame = FrameForConst(addr);
  if (frame == nullptr) {
    return 0;
  }
  uint64_t v;
  std::memcpy(&v, frame->data() + PageOffset(addr), sizeof(v));
  return v;
}

void PhysicalMemory::Write64Slow(PhysAddr addr, uint64_t value) {
  Frame* frame = FrameFor(addr);
  std::memcpy(frame->data() + PageOffset(addr), &value, sizeof(value));
}

uint8_t PhysicalMemory::Read8Slow(PhysAddr addr) const {
  const Frame* frame = FrameForConst(addr);
  return frame == nullptr ? 0 : (*frame)[PageOffset(addr)];
}

void PhysicalMemory::Write8Slow(PhysAddr addr, uint8_t value) {
  (*FrameFor(addr))[PageOffset(addr)] = value;
}

void PhysicalMemory::ReadBytes(PhysAddr addr, void* out, uint64_t size) const {
  assert(PageOffset(addr) + size <= kPageSize && "read crosses a frame boundary");
  const Frame* frame = FrameForConst(addr);
  if (frame == nullptr) {
    std::memset(out, 0, size);
    return;
  }
  std::memcpy(out, frame->data() + PageOffset(addr), size);
}

void PhysicalMemory::WriteBytes(PhysAddr addr, const void* in, uint64_t size) {
  assert(PageOffset(addr) + size <= kPageSize && "write crosses a frame boundary");
  std::memcpy(FrameFor(addr)->data() + PageOffset(addr), in, size);
}

}  // namespace memsentry::machine

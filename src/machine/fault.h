// CPU fault model. Simulated architectural exceptions are values propagated
// through StatusOr-style results, never C++ exceptions (Core Guidelines E.x:
// exceptions are for errors in the *simulator*, faults are *data* here).
#ifndef MEMSENTRY_SRC_MACHINE_FAULT_H_
#define MEMSENTRY_SRC_MACHINE_FAULT_H_

#include <optional>
#include <string>

#include "src/base/status.h"
#include "src/base/types.h"

namespace memsentry::machine {

enum class FaultType {
  kNone = 0,
  // #PF variants.
  kPageNotPresent,      // P bit clear on a mapped-path level
  kWriteProtection,     // write to a read-only page
  kNxViolation,         // instruction fetch from NX page
  kPkeyAccessDisabled,  // MPK: PKRU AD bit set for the page's key
  kPkeyWriteDisabled,   // MPK: PKRU WD bit set for the page's key
  kUserSupervisor,      // user access to supervisor page
  // #GP.
  kNonCanonical,        // address above the canonical 47-bit hole
  kGeneralProtection,
  // #BR.
  kBoundRange,          // MPX bndcl/bndcu violation
  // VT-x.
  kEptViolation,        // guest-physical address not mapped / not permitted in the active EPT
  kVmExit,              // operation requires hypervisor intervention
  // SGX.
  kEnclaveAccess,       // non-enclave code touched enclave memory (or abort-page semantics)
  kEnclaveExit,         // invalid enclave transition
};

const char* FaultTypeName(FaultType type);

enum class AccessType { kRead, kWrite, kExecute };

const char* AccessTypeName(AccessType type);

// A fault record: what happened, at which address, with which access.
struct Fault {
  FaultType type = FaultType::kNone;
  VirtAddr address = 0;
  AccessType access = AccessType::kRead;

  std::string ToString() const;
};

// Result of an operation that either succeeds (producing T) or faults.
// Distinct from StatusOr: a Fault is architecturally meaningful and gets
// delivered to the simulated kernel / signal handler, not to the caller's
// error log.
template <typename T>
class [[nodiscard]] FaultOr {
 public:
  FaultOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  FaultOr(Fault fault) : fault_(fault) {}         // NOLINT(runtime/explicit)

  bool ok() const { return !fault_.has_value(); }
  const Fault& fault() const {
    MEMSENTRY_CONTRACT_CHECK(!ok(), "FaultOr::fault() called on non-faulting result");
    return *fault_;
  }
  const T& value() const {
    MEMSENTRY_CONTRACT_CHECK(ok(), "FaultOr::value() called on faulting result");
    return *value_;
  }
  T& value() {
    MEMSENTRY_CONTRACT_CHECK(ok(), "FaultOr::value() called on faulting result");
    return *value_;
  }

 private:
  std::optional<T> value_;
  std::optional<Fault> fault_;
};

}  // namespace memsentry::machine

#endif  // MEMSENTRY_SRC_MACHINE_FAULT_H_

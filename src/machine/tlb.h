// Set-associative TLB with LRU replacement and VPID-style tags. Cached
// entries retain the leaf PTE so permission and protection-key checks are
// still evaluated on hits (as on real hardware: PKRU changes take effect
// without a TLB flush; PTE permission changes require one).
#ifndef MEMSENTRY_SRC_MACHINE_TLB_H_
#define MEMSENTRY_SRC_MACHINE_TLB_H_

#include <array>
#include <cstdint>
#include <optional>

#include "src/base/status.h"
#include "src/base/types.h"

namespace memsentry::machine {

class SnapshotReader;
class SnapshotWriter;

struct TlbStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t flushes = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class Tlb {
 public:
  static constexpr int kSets = 64;
  static constexpr int kWays = 8;

  struct Entry {
    bool valid = false;
    uint16_t vpid = 0;
    uint64_t vpn = 0;   // virtual page number
    uint64_t pte = 0;   // cached leaf PTE (frame + permission bits + pkey)
    uint64_t lru = 0;   // higher == more recently used
  };

  // Looks up a virtual page; bumps LRU and stats on hit.
  std::optional<uint64_t> Lookup(VirtAddr virt, uint16_t vpid);
  // Like Lookup, but exposes the entry that served the hit (first match in
  // way order) so the MMU grant cache can replay the exact hit bookkeeping.
  Entry* LookupEntry(VirtAddr virt, uint16_t vpid);
  // Non-perturbing lookup for coherence audits: no LRU bump, no stats.
  std::optional<uint64_t> Peek(VirtAddr virt, uint16_t vpid) const;
  // Non-perturbing entry lookup (first match in way order, as Lookup would
  // find it); used by the fast-path differential oracle.
  const Entry* PeekEntry(VirtAddr virt, uint16_t vpid) const;
  Entry* Insert(VirtAddr virt, uint16_t vpid, uint64_t pte);
  // Invalidates one page across all VPIDs (invlpg).
  void InvalidatePage(VirtAddr virt);
  // Flushes everything (mov cr3 without PCID) or one VPID.
  void FlushVpid(uint16_t vpid);
  void FlushAll();

  // Replays exactly what Lookup does on a hit of `entry`. The grant cache
  // calls this instead of re-scanning the set, keeping LRU order and hit
  // counts bit-identical to the reference path.
  void RecordHit(Entry* entry) {
    entry->lru = ++tick_;
    ++stats_.hits;
  }

  // Monotonic mutation counter: bumped by every Insert, InvalidatePage,
  // FlushAll and FlushVpid. Version equality proves the TLB arrays are
  // unchanged since a grant was minted, so the slow path's first-match
  // Lookup would still land on the same entry with the same PTE — the
  // coherence invariant behind the MMU grant cache. Stats resets and LRU
  // bumps deliberately do not count: they never change which entry a
  // lookup matches.
  uint64_t version() const { return version_; }

  const TlbStats& stats() const { return stats_; }
  void ResetStats() { stats_ = TlbStats{}; }

  // Non-perturbing occupancy scans for multi-tenant experiments: how many
  // valid entries a given address space holds, and how many distinct address
  // spaces are resident. No LRU bumps, no stats, no version change — safe to
  // call mid-run without breaking bit-identity.
  int OccupancyForVpid(uint16_t vpid) const;
  int CountResidentVpids() const;

  // Crash-safe snapshots: entries with their (set, way) coordinates, the LRU
  // tick and the mutation version — replacement decisions and grant-cache
  // coherence both depend on them bit-for-bit.
  void SaveState(SnapshotWriter& w) const;
  Status LoadState(SnapshotReader& r);

 private:
  static int SetIndex(uint64_t vpn) { return static_cast<int>(vpn & (kSets - 1)); }

  std::array<std::array<Entry, kWays>, kSets> sets_{};
  uint64_t tick_ = 0;
  uint64_t version_ = 0;
  TlbStats stats_;
};

}  // namespace memsentry::machine

#endif  // MEMSENTRY_SRC_MACHINE_TLB_H_

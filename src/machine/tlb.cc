#include "src/machine/tlb.h"

#include <algorithm>
#include <vector>

namespace memsentry::machine {

Tlb::Entry* Tlb::LookupEntry(VirtAddr virt, uint16_t vpid) {
  const uint64_t vpn = PageNumber(virt);
  auto& set = sets_[SetIndex(vpn)];
  for (Entry& e : set) {
    if (e.valid && e.vpid == vpid && e.vpn == vpn) {
      RecordHit(&e);
      return &e;
    }
  }
  ++stats_.misses;
  return nullptr;
}

std::optional<uint64_t> Tlb::Lookup(VirtAddr virt, uint16_t vpid) {
  Entry* e = LookupEntry(virt, vpid);
  if (e == nullptr) {
    return std::nullopt;
  }
  return e->pte;
}

const Tlb::Entry* Tlb::PeekEntry(VirtAddr virt, uint16_t vpid) const {
  const uint64_t vpn = PageNumber(virt);
  const auto& set = sets_[SetIndex(vpn)];
  for (const Entry& e : set) {
    if (e.valid && e.vpid == vpid && e.vpn == vpn) {
      return &e;
    }
  }
  return nullptr;
}

std::optional<uint64_t> Tlb::Peek(VirtAddr virt, uint16_t vpid) const {
  const Entry* e = PeekEntry(virt, vpid);
  if (e == nullptr) {
    return std::nullopt;
  }
  return e->pte;
}

Tlb::Entry* Tlb::Insert(VirtAddr virt, uint16_t vpid, uint64_t pte) {
  ++version_;
  const uint64_t vpn = PageNumber(virt);
  auto& set = sets_[SetIndex(vpn)];
  Entry* victim = &set[0];
  for (Entry& e : set) {
    if (!e.valid) {
      victim = &e;
      break;
    }
    if (e.lru < victim->lru) {
      victim = &e;
    }
  }
  *victim = Entry{.valid = true, .vpid = vpid, .vpn = vpn, .pte = pte, .lru = ++tick_};
  return victim;
}

void Tlb::InvalidatePage(VirtAddr virt) {
  ++version_;
  const uint64_t vpn = PageNumber(virt);
  for (Entry& e : sets_[SetIndex(vpn)]) {
    if (e.valid && e.vpn == vpn) {
      e.valid = false;
    }
  }
}

void Tlb::FlushAll() {
  ++version_;
  for (auto& set : sets_) {
    for (Entry& e : set) {
      e.valid = false;
    }
  }
  ++stats_.flushes;
}

void Tlb::FlushVpid(uint16_t vpid) {
  ++version_;
  for (auto& set : sets_) {
    for (Entry& e : set) {
      if (e.valid && e.vpid == vpid) {
        e.valid = false;
      }
    }
  }
  ++stats_.flushes;
}

int Tlb::OccupancyForVpid(uint16_t vpid) const {
  int count = 0;
  for (const auto& set : sets_) {
    for (const Entry& e : set) {
      if (e.valid && e.vpid == vpid) {
        ++count;
      }
    }
  }
  return count;
}

int Tlb::CountResidentVpids() const {
  // kSets * kWays is 512; a scan with a small sorted vector beats dragging
  // in a hash set for a diagnostic call.
  std::vector<uint16_t> seen;
  for (const auto& set : sets_) {
    for (const Entry& e : set) {
      if (e.valid) {
        seen.push_back(e.vpid);
      }
    }
  }
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  return static_cast<int>(seen.size());
}

}  // namespace memsentry::machine

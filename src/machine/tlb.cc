#include "src/machine/tlb.h"

namespace memsentry::machine {

std::optional<uint64_t> Tlb::Lookup(VirtAddr virt, uint16_t vpid) {
  const uint64_t vpn = PageNumber(virt);
  auto& set = sets_[SetIndex(vpn)];
  for (Entry& e : set) {
    if (e.valid && e.vpid == vpid && e.vpn == vpn) {
      e.lru = ++tick_;
      ++stats_.hits;
      return e.pte;
    }
  }
  ++stats_.misses;
  return std::nullopt;
}

std::optional<uint64_t> Tlb::Peek(VirtAddr virt, uint16_t vpid) const {
  const uint64_t vpn = PageNumber(virt);
  const auto& set = sets_[SetIndex(vpn)];
  for (const Entry& e : set) {
    if (e.valid && e.vpid == vpid && e.vpn == vpn) {
      return e.pte;
    }
  }
  return std::nullopt;
}

void Tlb::Insert(VirtAddr virt, uint16_t vpid, uint64_t pte) {
  const uint64_t vpn = PageNumber(virt);
  auto& set = sets_[SetIndex(vpn)];
  Entry* victim = &set[0];
  for (Entry& e : set) {
    if (!e.valid) {
      victim = &e;
      break;
    }
    if (e.lru < victim->lru) {
      victim = &e;
    }
  }
  *victim = Entry{.valid = true, .vpid = vpid, .vpn = vpn, .pte = pte, .lru = ++tick_};
}

void Tlb::InvalidatePage(VirtAddr virt) {
  const uint64_t vpn = PageNumber(virt);
  for (Entry& e : sets_[SetIndex(vpn)]) {
    if (e.valid && e.vpn == vpn) {
      e.valid = false;
    }
  }
}

void Tlb::FlushAll() {
  for (auto& set : sets_) {
    for (Entry& e : set) {
      e.valid = false;
    }
  }
  ++stats_.flushes;
}

void Tlb::FlushVpid(uint16_t vpid) {
  for (auto& set : sets_) {
    for (Entry& e : set) {
      if (e.valid && e.vpid == vpid) {
        e.valid = false;
      }
    }
  }
  ++stats_.flushes;
}

}  // namespace memsentry::machine

// Sparse simulated physical memory: a frame allocator plus byte-granularity
// access. Page tables, EPTs and guest data all live in these frames, exactly
// as they would in real DRAM.
#ifndef MEMSENTRY_SRC_MACHINE_PHYS_MEM_H_
#define MEMSENTRY_SRC_MACHINE_PHYS_MEM_H_

#include <array>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "src/base/status.h"
#include "src/base/types.h"

namespace memsentry::machine {

class SnapshotReader;
class SnapshotWriter;

class PhysicalMemory {
 public:
  // total_frames bounds the simulated DRAM size (frames are 4 KiB).
  explicit PhysicalMemory(uint64_t total_frames = uint64_t{1} << 22);  // default 16 GiB

  PhysicalMemory(const PhysicalMemory&) = delete;
  PhysicalMemory& operator=(const PhysicalMemory&) = delete;

  // Allocates a zeroed frame; returns its physical address.
  StatusOr<PhysAddr> AllocFrame();
  Status FreeFrame(PhysAddr frame);

  bool IsAllocated(PhysAddr frame) const;
  uint64_t allocated_frames() const { return frames_.size(); }
  uint64_t total_frames() const { return total_frames_; }

  // Byte access. Addresses may span frame boundaries only within one frame;
  // callers (the MMU) split accesses at page granularity. The frame-cache
  // hit path is inline — the interpreter performs one of these per modeled
  // memory access, and accesses cluster on a handful of frames — with the
  // map lookup / lazy materialization out of line.
  uint64_t Read64(PhysAddr addr) const {
    assert(PageOffset(addr) + 8 <= kPageSize && "64-bit read crosses a frame boundary");
    if (const Frame* frame = CachedFrameLookup(addr)) {
      uint64_t v;
      std::memcpy(&v, frame->data() + PageOffset(addr), sizeof(v));
      return v;
    }
    return Read64Slow(addr);
  }
  void Write64(PhysAddr addr, uint64_t value) {
    assert(PageOffset(addr) + 8 <= kPageSize && "64-bit write crosses a frame boundary");
    if (Frame* frame = CachedFrameLookup(addr)) {
      std::memcpy(frame->data() + PageOffset(addr), &value, sizeof(value));
      return;
    }
    Write64Slow(addr, value);
  }
  uint8_t Read8(PhysAddr addr) const {
    if (const Frame* frame = CachedFrameLookup(addr)) {
      return (*frame)[PageOffset(addr)];
    }
    return Read8Slow(addr);
  }
  void Write8(PhysAddr addr, uint8_t value) {
    if (Frame* frame = CachedFrameLookup(addr)) {
      (*frame)[PageOffset(addr)] = value;
      return;
    }
    Write8Slow(addr, value);
  }
  void ReadBytes(PhysAddr addr, void* out, uint64_t size) const;
  void WriteBytes(PhysAddr addr, const void* in, uint64_t size);

  // Crash-safe snapshots (src/machine/snapshot.h): frames sorted by number,
  // preserving the allocated-but-unmaterialized distinction. LoadState
  // replaces all content, validates the DRAM geometry and resets the frame
  // lookup cache.
  void SaveState(SnapshotWriter& w) const;
  Status LoadState(SnapshotReader& r);

 private:
  using Frame = std::array<uint8_t, kPageSize>;

  // Returns the frame backing addr, materializing it if the frame number is
  // within bounds but was never explicitly allocated (page tables allocate
  // explicitly; test code may poke memory directly).
  Frame* FrameFor(PhysAddr addr);
  const Frame* FrameForConst(PhysAddr addr) const;

  // Direct-mapped cache probe shared by the inline access fast paths;
  // returns nullptr on a cache miss (the slow paths consult the map).
  Frame* CachedFrameLookup(PhysAddr addr) const {
    const uint64_t f = PageNumber(addr);
    const CachedFrame& slot = frame_cache_[f & (kFrameCacheSlots - 1)];
    return slot.number == f ? slot.frame : nullptr;
  }

  // Out-of-line halves of the inline accessors: frame-cache misses only.
  uint64_t Read64Slow(PhysAddr addr) const;
  void Write64Slow(PhysAddr addr, uint64_t value);
  uint8_t Read8Slow(PhysAddr addr) const;
  void Write8Slow(PhysAddr addr, uint8_t value);

  // Direct-mapped lookup cache in front of the frame map: accesses cluster
  // heavily by frame, and the Frame* stays stable behind its unique_ptr.
  // Only materialized frames are cached; FreeFrame evicts its slot.
  struct CachedFrame {
    uint64_t number = ~uint64_t{0};
    Frame* frame = nullptr;
  };
  static constexpr uint64_t kFrameCacheSlots = 64;  // power of two

  uint64_t total_frames_;
  uint64_t next_frame_ = 1;  // frame 0 reserved: phys 0 is never handed out
  std::unordered_map<uint64_t, std::unique_ptr<Frame>> frames_;
  mutable std::array<CachedFrame, kFrameCacheSlots> frame_cache_;
};

}  // namespace memsentry::machine

#endif  // MEMSENTRY_SRC_MACHINE_PHYS_MEM_H_

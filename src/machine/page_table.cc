#include "src/machine/page_table.h"

#include <cassert>

namespace memsentry::machine {
namespace {

uint64_t MakePte(PhysAddr phys, PageFlags flags) {
  uint64_t pte = (phys & kPteFrameMask) | kPtePresent;
  if (flags.writable) {
    pte |= kPteWritable;
  }
  if (flags.user) {
    pte |= kPteUser;
  }
  if (!flags.executable) {
    pte |= kPteNx;
  }
  pte |= (uint64_t{flags.pkey} << kPtePkeyShift) & kPtePkeyMask;
  return pte;
}

}  // namespace

PageTable::PageTable(PhysicalMemory* pmem) : pmem_(pmem) {
  auto root = pmem_->AllocFrame();
  assert(root.ok() && "cannot allocate PML4");
  root_ = root.value();
}

PhysAddr PageTable::PteSlot(VirtAddr virt, bool create) {
  PhysAddr table = root_;
  for (int level = 3; level >= 1; --level) {
    const PhysAddr slot = table + IndexAt(virt, level) * 8;
    uint64_t entry = pmem_->Read64(slot);
    if ((entry & kPtePresent) == 0) {
      if (!create) {
        return 0;
      }
      auto frame = pmem_->AllocFrame();
      assert(frame.ok() && "cannot allocate page-table level");
      // Intermediate entries are maximally permissive; leaves carry policy.
      entry = (frame.value() & kPteFrameMask) | kPtePresent | kPteWritable | kPteUser;
      pmem_->Write64(slot, entry);
    }
    table = entry & kPteFrameMask;
  }
  return table + IndexAt(virt, 0) * 8;
}

Status PageTable::Map(VirtAddr virt, PhysAddr phys, PageFlags flags) {
  if (PageOffset(virt) != 0 || PageOffset(phys) != 0) {
    return InvalidArgument("Map requires page-aligned addresses");
  }
  const PhysAddr slot = PteSlot(virt, /*create=*/true);
  if ((pmem_->Read64(slot) & kPtePresent) != 0) {
    return AlreadyExists("virtual page already mapped");
  }
  pmem_->Write64(slot, MakePte(phys, flags));
  return OkStatus();
}

StatusOr<PhysAddr> PageTable::MapNew(VirtAddr virt, PageFlags flags) {
  MEMSENTRY_ASSIGN_OR_RETURN(PhysAddr frame, pmem_->AllocFrame());
  MEMSENTRY_RETURN_IF_ERROR(Map(virt, frame, flags));
  return frame;
}

Status PageTable::Unmap(VirtAddr virt) {
  const PhysAddr slot = PteSlot(virt, /*create=*/false);
  if (slot == 0 || (pmem_->Read64(slot) & kPtePresent) == 0) {
    return NotFound("virtual page not mapped");
  }
  pmem_->Write64(slot, 0);
  return OkStatus();
}

Status PageTable::Protect(VirtAddr virt, PageFlags flags) {
  const PhysAddr slot = PteSlot(virt, /*create=*/false);
  if (slot == 0) {
    return NotFound("virtual page not mapped");
  }
  const uint64_t old = pmem_->Read64(slot);
  if ((old & kPtePresent) == 0) {
    return NotFound("virtual page not mapped");
  }
  pmem_->Write64(slot, MakePte(old & kPteFrameMask, flags));
  return OkStatus();
}

Status PageTable::SetKey(VirtAddr virt, uint8_t pkey) {
  if (pkey >= 16) {
    return InvalidArgument("protection key must be 0..15");
  }
  const PhysAddr slot = PteSlot(virt, /*create=*/false);
  if (slot == 0) {
    return NotFound("virtual page not mapped");
  }
  const uint64_t old = pmem_->Read64(slot);
  if ((old & kPtePresent) == 0) {
    return NotFound("virtual page not mapped");
  }
  pmem_->Write64(slot, (old & ~kPtePkeyMask) | ((uint64_t{pkey} << kPtePkeyShift) & kPtePkeyMask));
  return OkStatus();
}

PhysAddr PageTable::FindPteSlot(VirtAddr virt) const {
  PhysAddr table = root_;
  for (int level = 3; level >= 1; --level) {
    const uint64_t entry = pmem_->Read64(table + IndexAt(virt, level) * 8);
    if ((entry & kPtePresent) == 0) {
      return 0;
    }
    table = entry & kPteFrameMask;
  }
  return table + IndexAt(virt, 0) * 8;
}

StatusOr<uint64_t> PageTable::ReadPte(VirtAddr virt) const {
  const PhysAddr slot = FindPteSlot(virt);
  if (slot == 0) {
    return NotFound("no leaf PTE slot for virtual page");
  }
  return pmem_->Read64(slot);
}

Status PageTable::WritePteRaw(VirtAddr virt, uint64_t pte) {
  const PhysAddr slot = FindPteSlot(virt);
  if (slot == 0) {
    return NotFound("no leaf PTE slot for virtual page");
  }
  pmem_->Write64(slot, pte);
  return OkStatus();
}

bool PageTable::IsMapped(VirtAddr virt) const {
  auto result = Walk(virt);
  return result.ok();
}

StatusOr<WalkResult> PageTable::Walk(VirtAddr virt) const {
  PhysAddr table = root_;
  int touched = 0;
  for (int level = 3; level >= 1; --level) {
    const uint64_t entry = pmem_->Read64(table + IndexAt(virt, level) * 8);
    ++touched;
    if ((entry & kPtePresent) == 0) {
      return NotFound("not present at level " + std::to_string(level));
    }
    table = entry & kPteFrameMask;
  }
  const uint64_t pte = pmem_->Read64(table + IndexAt(virt, 0) * 8);
  ++touched;
  if ((pte & kPtePresent) == 0) {
    return NotFound("leaf not present");
  }
  return WalkResult{.phys = (pte & kPteFrameMask) | PageOffset(virt),
                    .pte = pte,
                    .levels_touched = touched};
}

}  // namespace memsentry::machine

// Three-level inclusive cache hierarchy cost model (tag arrays only, LRU).
// Latencies follow paper Table 4 / Intel documentation: L1 4, L2 12, L3 44,
// DRAM 251 cycles. Only tags are modeled — data already lives in simulated
// physical memory; the hierarchy exists to price accesses.
#ifndef MEMSENTRY_SRC_MACHINE_CACHE_H_
#define MEMSENTRY_SRC_MACHINE_CACHE_H_

#include <cstdint>
#include <vector>

#include "src/base/types.h"

namespace memsentry::machine {

enum class CacheLevel { kL1 = 0, kL2 = 1, kL3 = 2, kDram = 3 };

struct CacheStats {
  uint64_t accesses = 0;
  uint64_t l1_hits = 0;
  uint64_t l2_hits = 0;
  uint64_t l3_hits = 0;
  uint64_t dram_accesses = 0;
};

// One set-associative tag array.
class CacheArray {
 public:
  CacheArray(uint64_t size_bytes, int ways, int line_bytes);

  // Returns true on hit; on miss, fills the line (allocate-on-miss).
  bool Access(PhysAddr addr);
  void Flush();

 private:
  struct Line {
    bool valid = false;
    uint64_t tag = 0;
    uint64_t lru = 0;
  };

  int ways_;
  int line_shift_;
  uint64_t num_sets_;
  uint64_t tick_ = 0;
  std::vector<Line> lines_;  // num_sets * ways, row-major by set
};

class CacheHierarchy {
 public:
  CacheHierarchy();

  // Returns the level that served the access (filling lines downward).
  CacheLevel Access(PhysAddr addr);
  void Flush();

  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats{}; }

 private:
  CacheArray l1_;
  CacheArray l2_;
  CacheArray l3_;
  CacheStats stats_;
};

}  // namespace memsentry::machine

#endif  // MEMSENTRY_SRC_MACHINE_CACHE_H_

// Three-level inclusive cache hierarchy cost model (tag arrays only, LRU).
// Latencies follow paper Table 4 / Intel documentation: L1 4, L2 12, L3 44,
// DRAM 251 cycles. Only tags are modeled — data already lives in simulated
// physical memory; the hierarchy exists to price accesses.
#ifndef MEMSENTRY_SRC_MACHINE_CACHE_H_
#define MEMSENTRY_SRC_MACHINE_CACHE_H_

#include <cstdint>
#include <cstdlib>
#include <memory>

#include "src/base/status.h"
#include "src/base/types.h"

namespace memsentry::machine {

class SnapshotReader;
class SnapshotWriter;

enum class CacheLevel { kL1 = 0, kL2 = 1, kL3 = 2, kDram = 3 };

struct CacheStats {
  uint64_t accesses = 0;
  uint64_t l1_hits = 0;
  uint64_t l2_hits = 0;
  uint64_t l3_hits = 0;
  uint64_t dram_accesses = 0;
};

// One set-associative tag array.
class CacheArray {
 public:
  CacheArray(uint64_t size_bytes, int ways, int line_bytes);

  // Returns true on hit; on miss, fills the line (allocate-on-miss).
  // Inline: this runs once per simulated memory touch per level, the
  // hottest call in the whole simulator after the interpreter loop itself.
  bool Access(PhysAddr addr) {
    const uint64_t block = addr >> line_shift_;
    const uint64_t set = block & (num_sets_ - 1);
    const uint64_t tag = block >> tag_shift_;
    Line* base = &lines_[set * static_cast<uint64_t>(ways_)];
    // Hit scan first — the common case wants no victim bookkeeping. An
    // invalid line (lru == 0) can't false-match: a zero tag with lru == 0
    // is rejected by the lru check.
    for (int w = 0; w < ways_; ++w) {
      Line& line = base[w];
      if (line.tag == tag && line.valid()) {
        line.lru = ++tick_;
        return true;
      }
    }
    Fill(base, tag);
    return false;
  }

  void Flush();

  // Crash-safe snapshots: geometry-validated tag/LRU dump of valid lines.
  void SaveState(SnapshotWriter& w) const;
  Status LoadState(SnapshotReader& r);

 private:
  // lru == 0 means invalid: tick_ starts at 0 and every touch stamps
  // ++tick_, so a valid line always has lru >= 1. This packs a line into 16
  // bytes and lets the backing array come from calloc — the OS hands out
  // zero pages lazily, so the mostly-untouched L3 tag array costs nothing to
  // "initialize" per simulated machine.
  struct Line {
    uint64_t tag;
    uint64_t lru;

    bool valid() const { return lru != 0; }
  };

  struct FreeDeleter {
    void operator()(Line* p) const { std::free(p); }
  };

  // Miss path: picks the victim way and installs the line (out of line to
  // keep the inlined hit scan small).
  void Fill(Line* base, uint64_t tag);

  int ways_;
  int line_shift_;
  int tag_shift_;  // log2(num_sets_), precomputed off the per-access path
  uint64_t num_sets_;
  uint64_t tick_ = 0;
  std::unique_ptr<Line[], FreeDeleter> lines_;  // num_sets * ways, row-major by set
};

class CacheHierarchy {
 public:
  CacheHierarchy();

  // Returns the level that served the access (filling lines downward).
  CacheLevel Access(PhysAddr addr) {
    ++stats_.accesses;
    if (l1_.Access(addr)) {
      ++stats_.l1_hits;
      return CacheLevel::kL1;
    }
    if (l2_.Access(addr)) {
      ++stats_.l2_hits;
      return CacheLevel::kL2;
    }
    if (l3_.Access(addr)) {
      ++stats_.l3_hits;
      return CacheLevel::kL3;
    }
    ++stats_.dram_accesses;
    return CacheLevel::kDram;
  }

  void Flush();

  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats{}; }

  void SaveState(SnapshotWriter& w) const;
  Status LoadState(SnapshotReader& r);

 private:
  CacheArray l1_;
  CacheArray l2_;
  CacheArray l3_;
  CacheStats stats_;
};

}  // namespace memsentry::machine

#endif  // MEMSENTRY_SRC_MACHINE_CACHE_H_

// Cycle cost model for the simulated core. Calibrated against the paper's
// Table 4 (measured on an i7-6700K Skylake @ 4 GHz) and Agner Fog's
// instruction tables. Two cost dimensions per operation:
//
//   * slot     — issue-bandwidth cost every executed instance pays (a 4-wide
//                core retires up to 4 instructions/cycle -> 0.25 per slot).
//   * latency  — visible only when the result is on the critical path (e.g.
//                an SFI `and` whose output is the address of a following
//                load: paper Table 4 measures 0.22 cycles; the same `and`
//                feeding a store measures 0 because the store buffer hides
//                it).
//
// The executor charges `slot` always and `latency` only for instructions
// flagged on_critical_path by the instrumentation pass / synthesizer, which
// reproduces the paper's load/store asymmetry for SFI and the single- vs
// double-bounds-check asymmetry for MPX.
#ifndef MEMSENTRY_SRC_MACHINE_COST_MODEL_H_
#define MEMSENTRY_SRC_MACHINE_COST_MODEL_H_

#include "src/base/types.h"
#include "src/machine/cache.h"

namespace memsentry::machine {

struct CostModel {
  // ---- Memory hierarchy (Table 4 upper half) ----
  double lat_l1 = 4.0;
  double lat_l2 = 12.0;
  double lat_l3 = 44.0;
  double lat_dram = 251.0;

  // Fraction of a load's hierarchy latency that out-of-order execution fails
  // to hide in typical code. Store latency is fully hidden by the store
  // buffer (stores still occupy slots and move lines for inclusivity).
  double load_latency_exposure = 0.35;

  // ---- Core width ----
  double issue_width = 4.0;
  double slot = 1.0 / issue_width;

  // ---- Generic instruction classes ----
  double alu_slot = 0.25;
  double lea_slot = 0.25;
  double mov_imm_slot = 0.25;
  double branch_slot = 0.5;        // includes amortized predictor cost
  double branch_mispredict = 16.0; // charged probabilistically by the workload
  double call_slot = 1.5;
  double ret_slot = 1.5;
  double vector_slot = 0.5;        // xmm/ymm FP/vector op
  double nop_slot = 0.25;
  double load_slot = 0.25;         // issue cost; hierarchy latency priced separately
  double store_slot = 0.25;
  // Extra cost per vector op and pressure class when the crypt technique
  // reserves the ymm upper halves for AES round keys (paper Section 6.2:
  // "clobbering a number of xmm registers" dominates for FP benchmarks).
  double ymm_reserve_vec_penalty = 1.6;

  // ---- SFI (Figure 2c) ----
  // `and` with a mask: free in the store path, 0.22 visible in the load path.
  double sfi_and_slot = 0.25;
  double sfi_and_dep_latency = 0.22;
  double sfi_movabs_slot = 0.15;   // mask materialization, often hoisted

  // ---- MPX (Figure 2b) ----
  // Single bndcu: does not modify the pointer, so no dependency is ever
  // introduced (paper: "<0.1"); the pair adds a visible 0.42 because the
  // second check waits on the first (paper: 0.50 total).
  double bndcu_slot = 0.27;
  double bndcu_latency = 0.08;
  double bndcl_pair_extra_latency = 0.42;
  // Bound reload from the bound table when BNDPRESERVE is off (per legacy
  // branch) or when registers spill (>4 live bounds).
  double bnd_table_load = 6.0;

  // ---- MPK ----
  // One wrpkru including its implicit serialization. The paper simulates
  // this with 11 xmm<->gpr moves plus an mfence; ERIM later measured real
  // silicon at 11-26 cycles per wrpkru. A domain switch is wrpkru(open) +
  // wrpkru(close), and clobbering rax/rcx/rdx typically costs extra spills
  // around call-dense instrumentation sites.
  double wrpkru = 43.0;
  double rdpkru = 1.0;
  double mpk_clobber_spills = 12.0;  // per open+close pair, in situ

  // ---- Virtualization (Table 4) ----
  double vmfunc = 147.0;
  double vmcall = 613.0;
  double syscall = 108.0;

  // ---- SGX (Table 4) ----
  double sgx_ecall_roundtrip = 7664.0;  // empty ECALL enter + exit

  // ---- AES-NI (Table 4) ----
  double aes_encdec_block = 41.0;   // 11 rounds encrypt + decrypt, one block
  double aes_round = 41.0 / 22.0;   // one aesenc/aesdec step
  double aes_keygen10 = 121.0;      // full round-key generation
  double aes_imc9 = 71.0;           // decryption key schedule via aesimc
  double ymm_to_xmm_all_keys = 10.0;  // extracting 11 round keys from ymm uppers
  double xmm_spill = 8.0;           // saving/restoring one live xmm through memory

  // ---- mprotect baseline ----
  // syscall + kernel page-table update + TLB shootdown of the page.
  double mprotect_call = 700.0;

  double MemLatency(CacheLevel level) const {
    switch (level) {
      case CacheLevel::kL1:
        return lat_l1;
      case CacheLevel::kL2:
        return lat_l2;
      case CacheLevel::kL3:
        return lat_l3;
      case CacheLevel::kDram:
        return lat_dram;
    }
    return lat_dram;
  }

  // Exposed (visible) cost of a load served at `level`.
  double LoadCost(CacheLevel level) const { return load_latency_exposure * MemLatency(level); }
};

}  // namespace memsentry::machine

#endif  // MEMSENTRY_SRC_MACHINE_COST_MODEL_H_

// The MemSentry pass (paper Figure 1): consumes (a) the safe regions, (b) the
// instrumentation points — instructions flagged kFlagSafeAccess, i.e. the
// saferegion_access() annotations left by a defense pass — and (c) the chosen
// technique, and rewrites the module:
//
//   * address-based: every load/store NOT flagged safe-access gets the
//     technique's check sequence (mask or bounds check) in front of it;
//   * domain-based: every maximal run of safe-access instructions is wrapped
//     in the technique's domain open/close sequences.
#ifndef MEMSENTRY_SRC_CORE_INSTRUMENT_H_
#define MEMSENTRY_SRC_CORE_INSTRUMENT_H_

#include <memory>

#include "src/core/technique.h"
#include "src/ir/pass.h"
#include "src/sim/process.h"

namespace memsentry::core {

class MemSentryPass : public ir::ModulePass {
 public:
  // `process` provides the runtime state domain sequences need (pkeys, EPT
  // indices, region bases); Technique::Prepare must have run already.
  MemSentryPass(Technique* technique, sim::Process* process, InstrumentOptions options)
      : technique_(technique), process_(process), options_(options) {}

  std::string name() const override;
  Status Run(ir::Module& module) override;

  // Statistics from the last run.
  uint64_t checks_inserted() const { return checks_inserted_; }
  uint64_t switch_pairs_inserted() const { return switch_pairs_inserted_; }

 private:
  Status RunAddressBased(ir::Module& module);
  Status RunDomainBased(ir::Module& module);

  Technique* technique_;
  sim::Process* process_;
  InstrumentOptions options_;
  uint64_t checks_inserted_ = 0;
  uint64_t switch_pairs_inserted_ = 0;
};

// Marks an instruction as allowed to access the safe region — the
// saferegion_access(ins) annotation from the paper's usage section.
inline void MarkSafeRegionAccess(ir::Instr& instr) { instr.flags |= ir::kFlagSafeAccess; }

}  // namespace memsentry::core

#endif  // MEMSENTRY_SRC_CORE_INSTRUMENT_H_

#include "src/core/instrument.h"

namespace memsentry::core {

std::string MemSentryPass::name() const {
  return std::string("memsentry-") + TechniqueKindName(technique_->kind());
}

Status MemSentryPass::Run(ir::Module& module) {
  checks_inserted_ = 0;
  switch_pairs_inserted_ = 0;
  switch (technique_->category()) {
    case Category::kAddressBased:
      return RunAddressBased(module);
    case Category::kDomainBased:
      return RunDomainBased(module);
    case Category::kNone:
      return OkStatus();  // information hiding: no instrumentation at all
  }
  return OkStatus();
}

Status MemSentryPass::RunAddressBased(ir::Module& module) {
  const bool instrument_loads = options_.mode != ProtectMode::kWriteOnly;
  const bool instrument_stores = options_.mode != ProtectMode::kReadOnly;
  for (auto& func : module.functions) {
    for (auto& block : func.blocks) {
      std::vector<ir::Instr> out;
      out.reserve(block.instrs.size());
      for (const ir::Instr& instr : block.instrs) {
        const bool is_load = instr.op == ir::Opcode::kLoad;
        const bool is_store = instr.op == ir::Opcode::kStore;
        const bool wants = (is_load && instrument_loads) || (is_store && instrument_stores);
        // saferegion_access-annotated instructions are the ones *allowed* to
        // touch sensitive data: they stay unchecked (Section 3.2).
        if (wants && !instr.IsSafeAccess()) {
          const machine::Gpr addr_reg = is_load ? instr.src : instr.dst;
          for (ir::Instr check : technique_->MakeAccessCheck(addr_reg, is_load, options_)) {
            out.push_back(check);
          }
          ++checks_inserted_;
        }
        out.push_back(instr);
      }
      block.instrs = std::move(out);
    }
  }
  return OkStatus();
}

Status MemSentryPass::RunDomainBased(ir::Module& module) {
  const std::vector<ir::Instr> open = technique_->MakeDomainOpen(*process_, options_);
  const std::vector<ir::Instr> close = technique_->MakeDomainClose(*process_, options_);
  for (auto& func : module.functions) {
    for (auto& block : func.blocks) {
      std::vector<ir::Instr> out;
      out.reserve(block.instrs.size());
      bool in_run = false;
      for (const ir::Instr& instr : block.instrs) {
        const bool safe = instr.IsSafeAccess() && !instr.IsTerminator();
        if (safe && !in_run) {
          out.insert(out.end(), open.begin(), open.end());
          in_run = true;
          ++switch_pairs_inserted_;
        } else if (!safe && in_run) {
          out.insert(out.end(), close.begin(), close.end());
          in_run = false;
        }
        out.push_back(instr);
      }
      if (in_run) {
        // A safe-access run ending at the block boundary closes before the
        // terminator... which cannot happen (the terminator ended the run),
        // so this closes runs in blocks whose last instruction is annotated.
        out.insert(out.end(), close.begin(), close.end());
      }
      block.instrs = std::move(out);
    }
  }
  return OkStatus();
}

}  // namespace memsentry::core

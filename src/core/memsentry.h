// MemSentry public facade. Typical usage (mirrors the paper's workflow):
//
//   sim::Machine machine;
//   sim::Process process(&machine);
//   core::MemSentry memsentry(&process, {.technique = core::TechniqueKind::kMpk});
//   auto region = memsentry.allocator().Alloc("shadow-stack", 4096);   // saferegion_alloc
//   ... defense pass runs, annotating accesses with MarkSafeRegionAccess ...
//   memsentry.Protect(module);   // Prepare() + MemSentryPass
//   sim::Executor(&process, &module).Run();
#ifndef MEMSENTRY_SRC_CORE_MEMSENTRY_H_
#define MEMSENTRY_SRC_CORE_MEMSENTRY_H_

#include <memory>

#include "src/core/gate_audit.h"
#include "src/core/instrument.h"
#include "src/core/safe_region.h"
#include "src/core/technique.h"
#include "src/ir/pass.h"

namespace memsentry::core {

struct MemSentryConfig {
  TechniqueKind technique = TechniqueKind::kMpk;
  InstrumentOptions options;
  uint64_t placement_seed = 0x10de5eedULL;  // for information hiding's ASLR
};

class MemSentry {
 public:
  MemSentry(sim::Process* process, MemSentryConfig config)
      : process_(process),
        config_(config),
        technique_(CreateTechnique(config.technique)),
        allocator_(process, config.technique, config.placement_seed) {}

  SafeRegionAllocator& allocator() { return allocator_; }
  Technique& technique() { return *technique_; }
  const MemSentryConfig& config() const { return config_; }

  // Prepares the runtime state for every allocated safe region and runs the
  // MemSentry pass over the module. Call after the defense pass. Preparation
  // happens exactly once even when PrepareRuntime() already ran (a second
  // crypt pass would decrypt the region, a second MPK pass would re-key it).
  Status Protect(ir::Module& module) {
    MEMSENTRY_RETURN_IF_ERROR(PrepareRuntime());
    ir::PassManager pm;
    pm.Add(std::make_unique<MemSentryPass>(technique_.get(), process_, config_.options));
    MEMSENTRY_RETURN_IF_ERROR(pm.Run(module));
    // Domain-switch gate audit: no attacker-reachable or unpaired gates may
    // survive instrumentation — the assumption Section 3.1 rests on.
    const GateAuditResult audit = AuditDomainGates(module);
    if (!audit.ok()) {
      return InternalError("gate audit failed: " + audit.findings[0].problem);
    }
    return OkStatus();
  }

  // Runtime-only preparation (for workloads without a module to rewrite).
  Status PrepareRuntime() {
    if (prepared_) {
      return OkStatus();
    }
    MEMSENTRY_RETURN_IF_ERROR(technique_->Prepare(*process_));
    prepared_ = true;
    return OkStatus();
  }

 private:
  sim::Process* process_;
  MemSentryConfig config_;
  std::unique_ptr<Technique> technique_;
  SafeRegionAllocator allocator_;
  bool prepared_ = false;
};

}  // namespace memsentry::core

#endif  // MEMSENTRY_SRC_CORE_MEMSENTRY_H_

// MemSentry public facade. Typical usage (mirrors the paper's workflow):
//
//   sim::Machine machine;
//   sim::Process process(&machine);
//   core::MemSentry memsentry(&process, {.technique = core::TechniqueKind::kMpk});
//   auto region = memsentry.allocator().Alloc("shadow-stack", 4096);   // saferegion_alloc
//   ... defense pass runs, annotating accesses with MarkSafeRegionAccess ...
//   memsentry.Protect(module);   // Prepare() + MemSentryPass
//   sim::Executor(&process, &module).Run();
#ifndef MEMSENTRY_SRC_CORE_MEMSENTRY_H_
#define MEMSENTRY_SRC_CORE_MEMSENTRY_H_

#include <memory>
#include <vector>

#include "src/base/log.h"
#include "src/core/gate_audit.h"
#include "src/core/instrument.h"
#include "src/core/safe_region.h"
#include "src/core/technique.h"
#include "src/ir/pass.h"

namespace memsentry::core {

struct MemSentryConfig {
  TechniqueKind technique = TechniqueKind::kMpk;
  InstrumentOptions options;
  uint64_t placement_seed = 0x10de5eedULL;  // for information hiding's ASLR
  // Graceful degradation (opt-in; empty = strict failure, the default and
  // the paper's behavior): when Prepare fails on an exhausted or missing
  // resource (kResourceExhausted / kFailedPrecondition), these techniques
  // are tried in order and the first that prepares becomes active. See
  // advisor.h's DefaultFallbackChain for the recommended orders.
  std::vector<TechniqueKind> fallbacks;
};

// One recorded degradation step: which technique gave way to which, and why.
struct DowngradeEvent {
  TechniqueKind from;
  TechniqueKind to;
  std::string reason;
};

class MemSentry {
 public:
  MemSentry(sim::Process* process, MemSentryConfig config)
      : process_(process),
        config_(config),
        technique_(CreateTechnique(config.technique)),
        allocator_(process, config.technique, config.placement_seed) {}

  SafeRegionAllocator& allocator() { return allocator_; }
  Technique& technique() { return *technique_; }
  const MemSentryConfig& config() const { return config_; }

  // The technique actually protecting the process: config().technique unless
  // PrepareRuntime degraded down the fallback chain.
  TechniqueKind active_technique() const { return technique_->kind(); }
  const std::vector<DowngradeEvent>& downgrades() const { return downgrades_; }

  // Prepares the runtime state for every allocated safe region and runs the
  // MemSentry pass over the module. Call after the defense pass. Preparation
  // happens exactly once even when PrepareRuntime() already ran (a second
  // crypt pass would decrypt the region, a second MPK pass would re-key it).
  Status Protect(ir::Module& module) {
    MEMSENTRY_RETURN_IF_ERROR(PrepareRuntime());
    ir::PassManager pm;
    pm.Add(std::make_unique<MemSentryPass>(technique_.get(), process_, config_.options));
    MEMSENTRY_RETURN_IF_ERROR(pm.Run(module));
    // Domain-switch gate audit: no attacker-reachable or unpaired gates may
    // survive instrumentation — the assumption Section 3.1 rests on.
    const GateAuditResult audit = AuditDomainGates(module);
    if (!audit.ok()) {
      return InternalError("gate audit failed: " + audit.findings[0].problem);
    }
    return OkStatus();
  }

  // Runtime-only preparation (for workloads without a module to rewrite).
  // When the configured technique cannot prepare because a hardware resource
  // is exhausted or missing, each configured fallback is tried in order; a
  // successful fallback swaps the active technique and records a
  // DowngradeEvent (never silently — the downgrade is logged and countable).
  Status PrepareRuntime() {
    if (prepared_) {
      return OkStatus();
    }
    Status status = technique_->Prepare(*process_);
    if (status.ok()) {
      prepared_ = true;
      return OkStatus();
    }
    for (TechniqueKind fallback : config_.fallbacks) {
      if (status.code() != StatusCode::kResourceExhausted &&
          status.code() != StatusCode::kFailedPrecondition) {
        break;  // a real error, not a capacity/availability limit
      }
      auto candidate = CreateTechnique(fallback);
      const TechniqueKind from = technique_->kind();
      const Status fallback_status = candidate->Prepare(*process_);
      if (fallback_status.ok()) {
        downgrades_.push_back(DowngradeEvent{from, fallback, status.message()});
        MEMSENTRY_LOG(kWarning) << "technique downgrade: " << TechniqueKindName(from)
                                << " -> " << TechniqueKindName(fallback) << " ("
                                << status.message() << ")";
        technique_ = std::move(candidate);
        prepared_ = true;
        return OkStatus();
      }
      status = fallback_status;
    }
    return status;
  }

 private:
  sim::Process* process_;
  MemSentryConfig config_;
  std::unique_ptr<Technique> technique_;
  SafeRegionAllocator allocator_;
  std::vector<DowngradeEvent> downgrades_;
  bool prepared_ = false;
};

}  // namespace memsentry::core

#endif  // MEMSENTRY_SRC_CORE_MEMSENTRY_H_

// Domain-switch gate audit. The paper's domain-based security argument rests
// on one assumption (Section 3.1): the switch instructions (wrpkru, vmfunc,
// ECALL, mprotect) "can thus not be triggered by an attacker only equipped
// with a read/write primitive". That holds only if every switch instruction
// in the binary is one MemSentry inserted, correctly paired, and followed by
// a close — a stray or unpaired gate is a door. This pass verifies the
// invariant over the instrumented module (the IR-level analogue of ERIM's
// later binary scan for wrpkru gadgets).
#ifndef MEMSENTRY_SRC_CORE_GATE_AUDIT_H_
#define MEMSENTRY_SRC_CORE_GATE_AUDIT_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/ir/module.h"

namespace memsentry::core {

struct GateFinding {
  ir::InstrRef where;
  std::string problem;
};

struct GateAuditResult {
  std::vector<GateFinding> findings;
  uint64_t gates_checked = 0;

  bool ok() const { return findings.empty(); }
};

// Audits every domain-switch instruction in the module:
//   * it must carry kFlagInstrumentation (MemSentry inserted it — anything
//     else is attacker-reachable switch code),
//   * within each basic block, opens and closes must alternate and balance
//     (no block may leave the sensitive domain dangling open across a
//     terminator, where control flow escapes analysis),
//   * an open must be followed by a close in the same block.
GateAuditResult AuditDomainGates(const ir::Module& module);

}  // namespace memsentry::core

#endif  // MEMSENTRY_SRC_CORE_GATE_AUDIT_H_

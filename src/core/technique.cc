#include "src/core/technique.h"

#include "src/core/techniques_impl.h"

namespace memsentry::core {

const char* TechniqueKindName(TechniqueKind kind) {
  switch (kind) {
    case TechniqueKind::kSfi:
      return "SFI";
    case TechniqueKind::kMpx:
      return "MPX";
    case TechniqueKind::kMpk:
      return "MPK";
    case TechniqueKind::kVmfunc:
      return "VMFUNC";
    case TechniqueKind::kCrypt:
      return "crypt";
    case TechniqueKind::kSgx:
      return "SGX";
    case TechniqueKind::kMprotect:
      return "mprotect";
    case TechniqueKind::kInfoHide:
      return "info-hiding";
  }
  return "?";
}

std::vector<ir::Instr> Technique::MakeAccessCheck(machine::Gpr, bool,
                                                  const InstrumentOptions&) const {
  return {};
}

std::vector<ir::Instr> Technique::MakeDomainOpen(const sim::Process&,
                                                 const InstrumentOptions&) const {
  return {};
}

std::vector<ir::Instr> Technique::MakeDomainClose(const sim::Process&,
                                                  const InstrumentOptions&) const {
  return {};
}

machine::FaultOr<uint64_t> Technique::AttackerRead(sim::Process& process, VirtAddr va) {
  // Default: the primitive performs an architecturally ordinary read under
  // the process's current protection state. Domain-based techniques rely on
  // exactly this: the closed domain faults.
  if (process.enclave() != nullptr && !process.enclave()->AccessAllowed(va)) {
    return machine::Fault{machine::FaultType::kEnclaveAccess, va, machine::AccessType::kRead};
  }
  Cycles cycles = 0;
  return process.mmu().Read64(va, process.regs().pkru, &cycles);
}

machine::FaultOr<bool> Technique::AttackerWrite(sim::Process& process, VirtAddr va,
                                                uint64_t value) {
  if (process.enclave() != nullptr && !process.enclave()->AccessAllowed(va)) {
    return machine::Fault{machine::FaultType::kEnclaveAccess, va, machine::AccessType::kWrite};
  }
  Cycles cycles = 0;
  return process.mmu().Write64(va, value, process.regs().pkru, &cycles);
}

std::vector<ProtectionAuditIssue> Technique::AuditProtection(sim::Process& process) {
  std::vector<ProtectionAuditIssue> issues;
  machine::Mmu& mmu = process.mmu();
  const uint16_t asid = mmu.EffectiveAsid();
  for (const auto& region : process.safe_regions()) {
    const uint64_t pages = PageAlignUp(region.size) >> kPageShift;
    for (uint64_t p = 0; p < pages; ++p) {
      const VirtAddr va = region.base + p * kPageSize;
      const auto cached = mmu.tlb().Peek(va, asid);
      if (!cached.has_value()) {
        continue;
      }
      auto walk = process.page_table().Walk(va);
      const uint64_t compare_mask = ~machine::kPteFrameMask;
      if (!walk.ok() || ((*cached ^ walk.value().pte) & compare_mask) != 0) {
        mmu.InvalidatePage(va);
        issues.push_back(ProtectionAuditIssue{
            .what = "stale TLB entry for " + region.name + " page " + std::to_string(p),
            .repaired = true});
      }
    }
  }
  return issues;
}

std::unique_ptr<Technique> CreateTechnique(TechniqueKind kind) {
  switch (kind) {
    case TechniqueKind::kSfi:
      return std::make_unique<internal::SfiTechnique>();
    case TechniqueKind::kMpx:
      return std::make_unique<internal::MpxTechnique>();
    case TechniqueKind::kMpk:
      return std::make_unique<internal::MpkTechnique>();
    case TechniqueKind::kVmfunc:
      return std::make_unique<internal::VmfuncTechnique>();
    case TechniqueKind::kCrypt:
      return std::make_unique<internal::CryptTechnique>();
    case TechniqueKind::kSgx:
      return std::make_unique<internal::SgxTechnique>();
    case TechniqueKind::kMprotect:
      return std::make_unique<internal::MprotectTechnique>();
    case TechniqueKind::kInfoHide:
      return std::make_unique<internal::InfoHideTechnique>();
  }
  return nullptr;
}

}  // namespace memsentry::core

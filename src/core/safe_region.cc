#include "src/core/safe_region.h"

namespace memsentry::core {

StatusOr<sim::SafeRegion*> SafeRegionAllocator::Alloc(const std::string& name, uint64_t size) {
  if (size == 0) {
    return InvalidArgument("safe region size must be positive");
  }
  auto technique = CreateTechnique(kind_);
  const uint64_t granularity = technique->limits().granularity;
  const uint64_t rounded = (size + granularity - 1) / granularity * granularity;

  VirtAddr base;
  if (kind_ == TechniqueKind::kInfoHide) {
    // Probabilistic placement: a random page anywhere in the usable address
    // space, mimicking mmap-based ASLR of the safe region. Retry on overlap.
    for (int attempt = 0;; ++attempt) {
      if (attempt > 64) {
        return ResourceExhausted("could not find a random gap");
      }
      // mmap-style randomization range: above the program's conventional
      // mappings, below the canonical boundary.
      base = PageAlignDown(rng_.Range(sim::kStackTop + kPageSize,
                                      kAddressSpaceEnd - PageAlignUp(rounded) - kPageSize));
      bool clash = false;
      for (uint64_t p = 0; p < PageAlignUp(rounded) >> kPageShift; ++p) {
        if (process_->IsMapped(base + p * kPageSize)) {
          clash = true;
          break;
        }
      }
      if (!clash) {
        break;
      }
    }
  } else {
    // Deterministic placement in the sensitive partition (above 64 TiB).
    base = next_;
    next_ += PageAlignUp(rounded) + kPageSize;  // guard page between regions
  }

  MEMSENTRY_RETURN_IF_ERROR(
      process_->MapRange(base, PageAlignUp(rounded) >> kPageShift, machine::PageFlags::Data()));
  sim::SafeRegion& region = process_->AddSafeRegion(name, base, rounded);
  return &region;
}

}  // namespace memsentry::core

#include "src/core/advisor.h"

namespace memsentry::core {

const char* InstrumentationPointName(InstrumentationPoint point) {
  switch (point) {
    case InstrumentationPoint::kCallRet:
      return "call/ret";
    case InstrumentationPoint::kIndirectBranch:
      return "indirect branches";
    case InstrumentationPoint::kSyscall:
      return "system calls";
    case InstrumentationPoint::kAllocatorCall:
      return "allocator calls";
    case InstrumentationPoint::kMemAccess:
      return "memory accesses (points-to)";
  }
  return "?";
}

Recommendation Advise(const ScenarioSpec& spec) {
  Recommendation rec;
  // Section 6.3: the optimal choice primarily depends on how often domain
  // switches occur. Dense events (every call/ret) favor address-based
  // techniques; sparse events (syscalls, allocator calls) favor domain-based.
  const bool dense = spec.events_per_kinstr >= 5.0;

  if (dense) {
    if (spec.cpu_year >= 2015 && spec.domains_needed <= 4) {
      rec.primary = TechniqueKind::kMpx;
      rec.alternatives = {TechniqueKind::kSfi};
      rec.rationale =
          "frequent domain switches favor address-based isolation; a single "
          "bndcu against bnd0 beats the SFI and-mask on Skylake and later, and "
          "deterministically detects violations instead of silently remapping them";
    } else {
      rec.primary = TechniqueKind::kSfi;
      rec.alternatives = spec.domains_needed <= 4
                             ? std::vector<TechniqueKind>{TechniqueKind::kMpx}
                             : std::vector<TechniqueKind>{};
      rec.rationale =
          "frequent switches need address-based isolation and SFI works on any "
          "CPU (or with more than 4 partitions, where MPX spills bounds)";
    }
    return rec;
  }

  // Sparse events: domain-based.
  if (spec.mpk_available && spec.domains_needed <= 16) {
    rec.primary = TechniqueKind::kMpk;
    rec.alternatives = {TechniqueKind::kVmfunc, TechniqueKind::kCrypt};
    rec.rationale =
        "MPK has by far the cheapest domain switch (two wrpkru writes), page "
        "granularity and 16 domains";
    return rec;
  }

  // Until MPK ships, the choice is VMFUNC vs crypt (Section 6.3): crypt's
  // cost is linear in region size, VMFUNC's is constant; crypt wins for 1-2
  // AES chunks and needs no privileged host component.
  const bool tiny_region = spec.region_bytes <= 32;
  const bool vmfunc_possible = spec.cpu_year >= 2013 && spec.hypervisor_ok;
  if (tiny_region || !vmfunc_possible) {
    rec.primary = TechniqueKind::kCrypt;
    rec.alternatives =
        vmfunc_possible ? std::vector<TechniqueKind>{TechniqueKind::kVmfunc}
                        : std::vector<TechniqueKind>{};
    rec.rationale =
        "for 1-2 AES chunks crypt is faster than an EPT switch, works since "
        "Westmere (2010), and needs no hypervisor; it also isolates at 16-byte "
        "granularity without page separation";
  } else {
    rec.primary = TechniqueKind::kVmfunc;
    rec.alternatives = {TechniqueKind::kCrypt};
    rec.rationale =
        "constant-cost EPT switching beats encryption once the region exceeds "
        "a couple of AES chunks; requires Haswell (2013) and a small privileged "
        "component (Dune or a modified hypervisor)";
  }
  return rec;
  // SGX is deliberately never recommended: transition costs (7664 cycles) and
  // fixed, size-limited mappings make it unsuitable for lightweight safe
  // region isolation (Section 3.1); mprotect and information hiding are
  // baselines, not recommendations.
}

std::vector<TechniqueKind> DefaultFallbackChain(TechniqueKind kind) {
  switch (kind) {
    case TechniqueKind::kMpk:
      // 16 keys exhaust fast; SFI has no key budget and the allocator already
      // placed every region above the 64 TiB split.
      return {TechniqueKind::kSfi};
    case TechniqueKind::kVmfunc:
      // EPTP slots (512) or a missing Dune runtime degrade to MPK, then SFI.
      return {TechniqueKind::kMpk, TechniqueKind::kSfi};
    case TechniqueKind::kSgx:
      return {TechniqueKind::kMpk, TechniqueKind::kSfi};
    case TechniqueKind::kMpx:
      // 4 bound registers; the partition-check fallback is software masking.
      return {TechniqueKind::kSfi};
    case TechniqueKind::kCrypt:
      return {TechniqueKind::kSfi};
    case TechniqueKind::kSfi:
    case TechniqueKind::kMprotect:
    case TechniqueKind::kInfoHide:
      return {};
  }
  return {};
}

std::vector<ApplicabilityRow> ApplicabilityTable() {
  // Paper Table 2.
  return {
      {Category::kAddressBased, "Loads", "Code randomization"},
      {Category::kAddressBased, "Loads", "CFI variants"},
      {Category::kAddressBased, "Stores", "ShadowStack"},
      {Category::kAddressBased, "Stores", "CPI"},
      {Category::kAddressBased, "Both + points-to info", "Program data"},
      {Category::kDomainBased, "call + ret", "ShadowStack"},
      {Category::kDomainBased, "Indirect branches", "CFI variants"},
      {Category::kDomainBased, "Indirect branches", "Layout randomization"},
      {Category::kDomainBased, "System calls", "Layout randomization"},
      {Category::kDomainBased, "Allocator calls", "Heap"},
      {Category::kDomainBased, "Points-to info", "Program data"},
  };
}

}  // namespace memsentry::core

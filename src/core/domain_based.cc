// Domain-based techniques: MPK, VMFUNC, crypt, SGX, plus the mprotect and
// information-hiding baselines. Domain-based isolation leaves program loads
// and stores untouched; instead, the safe region is inaccessible by default
// and instrumentation opens/closes the sensitive domain around annotated
// accesses (paper Section 3.1).
#include "src/base/rng.h"
#include "src/core/techniques_impl.h"
#include "src/mpk/mpk.h"

namespace memsentry::core::internal {
namespace {

ir::Instr Flagged(ir::Instr instr) {
  instr.flags |= ir::kFlagInstrumentation;
  return instr;
}

// PKRU value that closes every registered safe region (reads denied only in
// confidentiality modes; writes always denied).
uint32_t ClosedPkruFor(const sim::Process& process, ProtectMode mode) {
  machine::Pkru pkru{};
  for (const auto& region : process.safe_regions()) {
    if (region.pkey == 0) {
      continue;
    }
    pkru.SetWriteDisable(region.pkey, true);
    if (mode != ProtectMode::kWriteOnly) {
      pkru.SetAccessDisable(region.pkey, true);
    }
  }
  return pkru.value;
}

// FNV-1a over a region's expanded key schedule + nonce; stored in
// SafeRegion::enc_key_digest at Prepare so audits can detect round-key
// clobbering without keeping a plaintext copy of the key around.
uint64_t KeyScheduleDigest(const aes::KeySchedule& keys, uint64_t nonce) {
  uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](uint8_t byte) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  };
  for (const auto& round_key : keys) {
    for (uint8_t byte : round_key) {
      mix(byte);
    }
  }
  for (int i = 0; i < 8; ++i) {
    mix(static_cast<uint8_t>(nonce >> (8 * i)));
  }
  return h;
}

}  // namespace

// ---- MPK ----

TechniqueLimits MpkTechnique::limits() const {
  return TechniqueLimits{.max_domains = 16,
                         .granularity = kPageSize,
                         .hw_since_year = 2017,
                         .notes = "16 protection keys, 4 bits per PTE; unreleased at paper time"};
}

Status MpkTechnique::Prepare(sim::Process& process) {
  mpk::KeyAllocator keys;
  for (auto& region : process.safe_regions()) {
    MEMSENTRY_ASSIGN_OR_RETURN(uint8_t key, keys.Alloc());
    region.pkey = key;
    const uint64_t pages = PageAlignUp(region.size) >> kPageShift;
    MEMSENTRY_RETURN_IF_ERROR(mpk::TagRange(process.page_table(), region.base, pages, key));
    for (uint64_t p = 0; p < pages; ++p) {
      process.mmu().InvalidatePage(region.base + p * kPageSize);
    }
  }
  // Start closed (read+write denied; the instrumentation's open relaxes it).
  process.regs().pkru.value = ClosedPkruFor(process, ProtectMode::kReadWrite);
  return OkStatus();
}

std::vector<ir::Instr> MpkTechnique::MakeDomainOpen(const sim::Process&,
                                                    const InstrumentOptions&) const {
  return {Flagged(ir::Instr{.op = ir::Opcode::kWrpkru, .imm = mpk::kOpenPkru})};
}

std::vector<ir::Instr> MpkTechnique::MakeDomainClose(const sim::Process& process,
                                                     const InstrumentOptions& opts) const {
  return {Flagged(ir::Instr{.op = ir::Opcode::kWrpkru,
                            .imm = ClosedPkruFor(process, opts.mode)})};
}

std::vector<ProtectionAuditIssue> MpkTechnique::AuditProtection(sim::Process& process) {
  auto issues = Technique::AuditProtection(process);
  // Pages whose PTE pkey no longer matches the region's key are reachable
  // under any PKRU that leaves the flipped-to key open (unused keys are open
  // even in the closed state) — re-tag and shoot down the TLB entry.
  for (auto& region : process.safe_regions()) {
    if (region.pkey == 0) {
      continue;
    }
    const uint64_t pages = PageAlignUp(region.size) >> kPageShift;
    for (uint64_t p = 0; p < pages; ++p) {
      const VirtAddr va = region.base + p * kPageSize;
      auto walk = process.page_table().Walk(va);
      if (!walk.ok()) {
        continue;  // non-present pages fault architecturally; nothing to repair
      }
      if (machine::PageTable::PtePkey(walk.value().pte) != region.pkey) {
        const bool retagged = process.page_table().SetKey(va, region.pkey).ok();
        if (retagged) {
          process.mmu().InvalidatePage(va);
        }
        issues.push_back(ProtectionAuditIssue{
            .what = "PTE pkey mismatch on " + region.name + " page " + std::to_string(p),
            .repaired = retagged});
      }
    }
  }
  // PKRU must still carry the closed-state bits Prepare installed; a desync
  // between wrpkru and the region access (the ERIM gate problem) clears them.
  const uint32_t closed = ClosedPkruFor(process, ProtectMode::kReadWrite);
  if ((process.regs().pkru.value & closed) != closed) {
    process.regs().pkru.value |= closed;
    issues.push_back(ProtectionAuditIssue{
        .what = "PKRU desync: closed-state deny bits cleared", .repaired = true});
  }
  return issues;
}

// ---- VMFUNC ----

TechniqueLimits VmfuncTechnique::limits() const {
  return TechniqueLimits{.max_domains = 512,
                         .granularity = kPageSize,
                         .hw_since_year = 2013,
                         .notes = "EPTP list of 512; needs Dune or a modified hypervisor"};
}

Status VmfuncTechnique::Prepare(sim::Process& process) {
  if (!process.dune_enabled()) {
    return FailedPrecondition("VMFUNC isolation requires the process to run under Dune");
  }
  // One secondary EPT holds all shared mappings plus the secrets; the
  // default EPT 0 loses the secret frames via the mark-private hypercall.
  MEMSENTRY_ASSIGN_OR_RETURN(int secret_ept, process.dune()->CreateEpt());
  for (auto& region : process.safe_regions()) {
    region.ept_index = secret_ept;
    const uint64_t pages = PageAlignUp(region.size) >> kPageShift;
    for (uint64_t p = 0; p < pages; ++p) {
      const VirtAddr va = region.base + p * kPageSize;
      auto walk = process.page_table().Walk(va);
      if (!walk.ok()) {
        return NotFound("safe region page not mapped: " + region.name);
      }
      const GuestPhysAddr gpa = walk.value().phys & ~kPageMask;
      MEMSENTRY_RETURN_IF_ERROR(process.dune()->MarkPrivate(gpa, 1, secret_ept));
      process.mmu().InvalidatePage(va);
    }
  }
  return OkStatus();
}

std::vector<ir::Instr> VmfuncTechnique::MakeDomainOpen(const sim::Process& process,
                                                       const InstrumentOptions&) const {
  const int ept = process.safe_regions().empty() ? 1 : process.safe_regions()[0].ept_index;
  return {Flagged(ir::Instr{.op = ir::Opcode::kVmFunc, .imm = static_cast<uint64_t>(ept)})};
}

std::vector<ir::Instr> VmfuncTechnique::MakeDomainClose(const sim::Process&,
                                                        const InstrumentOptions&) const {
  return {Flagged(ir::Instr{.op = ir::Opcode::kVmFunc, .imm = 0})};
}

std::vector<ProtectionAuditIssue> VmfuncTechnique::AuditProtection(sim::Process& process) {
  auto issues = Technique::AuditProtection(process);
  if (!process.dune_enabled()) {
    return issues;
  }
  // Secret frames must not be mapped in the default EPT 0: a mapping that
  // leaked back (EPT corruption) makes the region readable without vmfunc.
  for (auto& region : process.safe_regions()) {
    if (region.ept_index <= 0) {
      continue;
    }
    const uint64_t pages = PageAlignUp(region.size) >> kPageShift;
    for (uint64_t p = 0; p < pages; ++p) {
      const VirtAddr va = region.base + p * kPageSize;
      auto walk = process.page_table().Walk(va);
      if (!walk.ok()) {
        continue;
      }
      const GuestPhysAddr gpa = walk.value().phys & ~kPageMask;
      if (process.dune()->vmx().ept(0).IsMapped(gpa)) {
        const bool restricted =
            process.dune()->MarkPrivate(gpa, 1, region.ept_index).ok();
        if (restricted) {
          process.mmu().InvalidatePage(va);
        }
        issues.push_back(ProtectionAuditIssue{
            .what = "secret frame of " + region.name + " leaked into EPT 0",
            .repaired = restricted});
      }
    }
  }
  return issues;
}

// ---- crypt (AES-NI) ----

TechniqueLimits CryptTechnique::limits() const {
  return TechniqueLimits{.max_domains = 0,  // unbounded: one key per domain
                         .granularity = 16,
                         .hw_since_year = 2010,
                         .notes = "AES-NI since Westmere; cost linear in region size"};
}

Status CryptTechnique::Prepare(sim::Process& process) {
  Rng rng(key_seed_);
  for (auto& region : process.safe_regions()) {
    if (region.crypt) {
      continue;  // already prepared; re-encrypting would decrypt (CTR toggle)
    }
    aes::Block key;
    for (auto& byte : key) {
      byte = static_cast<uint8_t>(rng.Next());
    }
    region.enc_keys = aes::ExpandKey(key);
    region.nonce = rng.Next();
    region.enc_key_digest = KeyScheduleDigest(region.enc_keys, region.nonce);
    region.crypt = true;
    // Encrypt at rest now; the data becomes ciphertext until a domain open.
    std::vector<uint8_t> bytes(region.size);
    MEMSENTRY_RETURN_IF_ERROR(process.PeekBytes(region.base, bytes.data(), region.size));
    aes::CryptRegion(bytes, region.enc_keys, region.nonce);
    MEMSENTRY_RETURN_IF_ERROR(process.PokeBytes(region.base, bytes.data(), region.size));
    region.encrypted_now = true;
  }
  // Round keys are parked in ymm8..15 upper halves: reserve them, which taxes
  // vector-heavy code (Section 6.2).
  process.SetYmmReserved(true);
  return OkStatus();
}

std::vector<ir::Instr> CryptTechnique::MakeDomainOpen(const sim::Process& process,
                                                      const InstrumentOptions& opts) const {
  std::vector<ir::Instr> seq;
  for (const auto& region : process.safe_regions()) {
    seq.push_back(
        Flagged(ir::Instr{.op = ir::Opcode::kMovImm, .dst = machine::Gpr::kRax,
                          .imm = region.base}));
    seq.push_back(Flagged(ir::Instr{.op = ir::Opcode::kAesCryptRegion,
                                    .src = machine::Gpr::kRax,
                                    .imm = 0,  // whole region
                                    .target = opts.crypt_live_xmm}));
  }
  return seq;
}

std::vector<ir::Instr> CryptTechnique::MakeDomainClose(const sim::Process& process,
                                                       const InstrumentOptions& opts) const {
  // CTR keystream XOR is an involution: closing re-encrypts with the same op.
  return MakeDomainOpen(process, opts);
}

std::vector<ProtectionAuditIssue> CryptTechnique::AuditProtection(sim::Process& process) {
  auto issues = Technique::AuditProtection(process);
  for (auto& region : process.safe_regions()) {
    if (!region.crypt) {
      continue;
    }
    if (KeyScheduleDigest(region.enc_keys, region.nonce) != region.enc_key_digest) {
      // Clobbered round keys cannot be reconstructed; the ciphertext stays
      // unreadable (contained) but a domain open would produce garbage, so
      // the region is quarantined rather than repaired.
      if (!region.encrypted_now) {
        // Caught mid-open: the region holds (near-)plaintext that the
        // clobbered schedule cannot re-seal — a last-round key flip garbles
        // only one byte per block, so "garbage" re-encryption would still
        // leak almost everything. Quarantine must scrub the exposure.
        std::vector<uint8_t> zeros(region.size, 0);
        if (process.PokeBytes(region.base, zeros.data(), region.size).ok()) {
          region.encrypted_now = true;  // sealed; contents destroyed
        }
      }
      issues.push_back(ProtectionAuditIssue{
          .what = "AES round-key schedule clobbered for " + region.name +
                  "; region quarantined (ciphertext unrecoverable)",
          .repaired = false});
      continue;
    }
    if (!region.encrypted_now) {
      // Left decrypted at rest (missed close): re-encrypt with the intact key.
      std::vector<uint8_t> bytes(region.size);
      const bool peeked = process.PeekBytes(region.base, bytes.data(), region.size).ok();
      bool repaired = false;
      if (peeked) {
        aes::CryptRegion(bytes, region.enc_keys, region.nonce);
        repaired = process.PokeBytes(region.base, bytes.data(), region.size).ok();
        region.encrypted_now = repaired;
      }
      issues.push_back(ProtectionAuditIssue{
          .what = "region " + region.name + " found decrypted at rest",
          .repaired = repaired});
    }
  }
  return issues;
}

// ---- SGX ----

TechniqueLimits SgxTechnique::limits() const {
  return TechniqueLimits{.max_domains = 0,
                         .granularity = kPageSize,
                         .hw_since_year = 2015,
                         .notes = "fixed mappings after EINIT; 7664-cycle crossings"};
}

Status SgxTechnique::Prepare(sim::Process& process) {
  if (process.safe_regions().empty()) {
    return FailedPrecondition("SGX technique needs at least one safe region");
  }
  // Build one enclave spanning all safe regions (they are contiguous per the
  // allocator); accessor code is assumed extracted into the enclave.
  VirtAddr lo = ~VirtAddr{0};
  VirtAddr hi = 0;
  for (const auto& region : process.safe_regions()) {
    lo = std::min(lo, PageAlignDown(region.base));
    hi = std::max(hi, PageAlignUp(region.base + region.size));
  }
  auto enclave = std::make_unique<sgx::Enclave>(lo, PageNumber(hi - lo));
  for (const auto& region : process.safe_regions()) {
    const uint64_t pages = PageAlignUp(region.size) >> kPageShift;
    for (uint64_t p = 0; p < pages; ++p) {
      MEMSENTRY_RETURN_IF_ERROR(enclave->AddPage(PageAlignDown(region.base) + p * kPageSize));
    }
  }
  MEMSENTRY_RETURN_IF_ERROR(enclave->RegisterEntry(0, lo));
  MEMSENTRY_RETURN_IF_ERROR(enclave->Finalize());
  process.SetEnclave(std::move(enclave));
  return OkStatus();
}

std::vector<ir::Instr> SgxTechnique::MakeDomainOpen(const sim::Process&,
                                                    const InstrumentOptions&) const {
  return {Flagged(ir::Instr{.op = ir::Opcode::kEnclaveEnter, .imm = 0})};
}

std::vector<ir::Instr> SgxTechnique::MakeDomainClose(const sim::Process&,
                                                     const InstrumentOptions&) const {
  return {Flagged(ir::Instr{.op = ir::Opcode::kEnclaveExit})};
}

// ---- mprotect baseline ----

TechniqueLimits MprotectTechnique::limits() const {
  return TechniqueLimits{.max_domains = 0,
                         .granularity = kPageSize,
                         .hw_since_year = 0,
                         .notes = "POSIX baseline: 20-50x on switch-heavy workloads"};
}

Status MprotectTechnique::Prepare(sim::Process& process) {
  for (auto& region : process.safe_regions()) {
    machine::PageFlags closed = machine::PageFlags::Data();
    closed.user = false;
    const uint64_t pages = PageAlignUp(region.size) >> kPageShift;
    for (uint64_t p = 0; p < pages; ++p) {
      MEMSENTRY_RETURN_IF_ERROR(process.page_table().Protect(region.base + p * kPageSize, closed));
      process.mmu().InvalidatePage(region.base + p * kPageSize);
    }
    region.mprotected = true;
  }
  return OkStatus();
}

std::vector<ir::Instr> MprotectTechnique::MakeDomainOpen(const sim::Process&,
                                                         const InstrumentOptions&) const {
  return {Flagged(ir::Instr{.op = ir::Opcode::kMprotect, .imm = 1})};
}

std::vector<ir::Instr> MprotectTechnique::MakeDomainClose(const sim::Process&,
                                                          const InstrumentOptions&) const {
  return {Flagged(ir::Instr{.op = ir::Opcode::kMprotect, .imm = 0})};
}

std::vector<ProtectionAuditIssue> MprotectTechnique::AuditProtection(sim::Process& process) {
  auto issues = Technique::AuditProtection(process);
  // Closed regions must stay supervisor-only; a PTE user bit that came back
  // makes the page reachable without the open syscall.
  for (auto& region : process.safe_regions()) {
    if (!region.mprotected) {
      continue;
    }
    const uint64_t pages = PageAlignUp(region.size) >> kPageShift;
    for (uint64_t p = 0; p < pages; ++p) {
      const VirtAddr va = region.base + p * kPageSize;
      auto walk = process.page_table().Walk(va);
      if (!walk.ok() || !machine::PageTable::PteUser(walk.value().pte)) {
        continue;
      }
      machine::PageFlags closed = machine::PageFlags::Data();
      closed.user = false;
      closed.pkey = machine::PageTable::PtePkey(walk.value().pte);
      const bool reclosed = process.page_table().Protect(va, closed).ok();
      if (reclosed) {
        process.mmu().InvalidatePage(va);
      }
      issues.push_back(ProtectionAuditIssue{
          .what = "closed region " + region.name + " page " + std::to_string(p) +
                  " user-accessible",
          .repaired = reclosed});
    }
  }
  return issues;
}

// ---- information hiding baseline ----

TechniqueLimits InfoHideTechnique::limits() const {
  return TechniqueLimits{.max_domains = 0,
                         .granularity = kPageSize,
                         .hw_since_year = 0,
                         .notes = "probabilistic only: broken by allocation oracles et al."};
}

Status InfoHideTechnique::Prepare(sim::Process&) {
  // The whole point: nothing is enforced. Protection rests on the region's
  // randomized placement, handled by the allocator.
  return OkStatus();
}

}  // namespace memsentry::core::internal

// Domain-based techniques: MPK, VMFUNC, crypt, SGX, plus the mprotect and
// information-hiding baselines. Domain-based isolation leaves program loads
// and stores untouched; instead, the safe region is inaccessible by default
// and instrumentation opens/closes the sensitive domain around annotated
// accesses (paper Section 3.1).
#include "src/base/rng.h"
#include "src/core/techniques_impl.h"
#include "src/mpk/mpk.h"

namespace memsentry::core::internal {
namespace {

ir::Instr Flagged(ir::Instr instr) {
  instr.flags |= ir::kFlagInstrumentation;
  return instr;
}

// PKRU value that closes every registered safe region (reads denied only in
// confidentiality modes; writes always denied).
uint32_t ClosedPkruFor(const sim::Process& process, ProtectMode mode) {
  machine::Pkru pkru{};
  for (const auto& region : process.safe_regions()) {
    if (region.pkey == 0) {
      continue;
    }
    pkru.SetWriteDisable(region.pkey, true);
    if (mode != ProtectMode::kWriteOnly) {
      pkru.SetAccessDisable(region.pkey, true);
    }
  }
  return pkru.value;
}

}  // namespace

// ---- MPK ----

TechniqueLimits MpkTechnique::limits() const {
  return TechniqueLimits{.max_domains = 16,
                         .granularity = kPageSize,
                         .hw_since_year = 2017,
                         .notes = "16 protection keys, 4 bits per PTE; unreleased at paper time"};
}

Status MpkTechnique::Prepare(sim::Process& process) {
  mpk::KeyAllocator keys;
  for (auto& region : process.safe_regions()) {
    MEMSENTRY_ASSIGN_OR_RETURN(uint8_t key, keys.Alloc());
    region.pkey = key;
    const uint64_t pages = PageAlignUp(region.size) >> kPageShift;
    MEMSENTRY_RETURN_IF_ERROR(mpk::TagRange(process.page_table(), region.base, pages, key));
    for (uint64_t p = 0; p < pages; ++p) {
      process.mmu().InvalidatePage(region.base + p * kPageSize);
    }
  }
  // Start closed (read+write denied; the instrumentation's open relaxes it).
  process.regs().pkru.value = ClosedPkruFor(process, ProtectMode::kReadWrite);
  return OkStatus();
}

std::vector<ir::Instr> MpkTechnique::MakeDomainOpen(const sim::Process&,
                                                    const InstrumentOptions&) const {
  return {Flagged(ir::Instr{.op = ir::Opcode::kWrpkru, .imm = mpk::kOpenPkru})};
}

std::vector<ir::Instr> MpkTechnique::MakeDomainClose(const sim::Process& process,
                                                     const InstrumentOptions& opts) const {
  return {Flagged(ir::Instr{.op = ir::Opcode::kWrpkru,
                            .imm = ClosedPkruFor(process, opts.mode)})};
}

// ---- VMFUNC ----

TechniqueLimits VmfuncTechnique::limits() const {
  return TechniqueLimits{.max_domains = 512,
                         .granularity = kPageSize,
                         .hw_since_year = 2013,
                         .notes = "EPTP list of 512; needs Dune or a modified hypervisor"};
}

Status VmfuncTechnique::Prepare(sim::Process& process) {
  if (!process.dune_enabled()) {
    return FailedPrecondition("VMFUNC isolation requires the process to run under Dune");
  }
  // One secondary EPT holds all shared mappings plus the secrets; the
  // default EPT 0 loses the secret frames via the mark-private hypercall.
  MEMSENTRY_ASSIGN_OR_RETURN(int secret_ept, process.dune()->CreateEpt());
  for (auto& region : process.safe_regions()) {
    region.ept_index = secret_ept;
    const uint64_t pages = PageAlignUp(region.size) >> kPageShift;
    for (uint64_t p = 0; p < pages; ++p) {
      const VirtAddr va = region.base + p * kPageSize;
      auto walk = process.page_table().Walk(va);
      if (!walk.ok()) {
        return NotFound("safe region page not mapped: " + region.name);
      }
      const GuestPhysAddr gpa = walk.value().phys & ~kPageMask;
      MEMSENTRY_RETURN_IF_ERROR(process.dune()->MarkPrivate(gpa, 1, secret_ept));
      process.mmu().InvalidatePage(va);
    }
  }
  return OkStatus();
}

std::vector<ir::Instr> VmfuncTechnique::MakeDomainOpen(const sim::Process& process,
                                                       const InstrumentOptions&) const {
  const int ept = process.safe_regions().empty() ? 1 : process.safe_regions()[0].ept_index;
  return {Flagged(ir::Instr{.op = ir::Opcode::kVmFunc, .imm = static_cast<uint64_t>(ept)})};
}

std::vector<ir::Instr> VmfuncTechnique::MakeDomainClose(const sim::Process&,
                                                        const InstrumentOptions&) const {
  return {Flagged(ir::Instr{.op = ir::Opcode::kVmFunc, .imm = 0})};
}

// ---- crypt (AES-NI) ----

TechniqueLimits CryptTechnique::limits() const {
  return TechniqueLimits{.max_domains = 0,  // unbounded: one key per domain
                         .granularity = 16,
                         .hw_since_year = 2010,
                         .notes = "AES-NI since Westmere; cost linear in region size"};
}

Status CryptTechnique::Prepare(sim::Process& process) {
  Rng rng(key_seed_);
  for (auto& region : process.safe_regions()) {
    if (region.crypt) {
      continue;  // already prepared; re-encrypting would decrypt (CTR toggle)
    }
    aes::Block key;
    for (auto& byte : key) {
      byte = static_cast<uint8_t>(rng.Next());
    }
    region.enc_keys = aes::ExpandKey(key);
    region.nonce = rng.Next();
    region.crypt = true;
    // Encrypt at rest now; the data becomes ciphertext until a domain open.
    std::vector<uint8_t> bytes(region.size);
    MEMSENTRY_RETURN_IF_ERROR(process.PeekBytes(region.base, bytes.data(), region.size));
    aes::CryptRegion(bytes, region.enc_keys, region.nonce);
    MEMSENTRY_RETURN_IF_ERROR(process.PokeBytes(region.base, bytes.data(), region.size));
    region.encrypted_now = true;
  }
  // Round keys are parked in ymm8..15 upper halves: reserve them, which taxes
  // vector-heavy code (Section 6.2).
  process.SetYmmReserved(true);
  return OkStatus();
}

std::vector<ir::Instr> CryptTechnique::MakeDomainOpen(const sim::Process& process,
                                                      const InstrumentOptions& opts) const {
  std::vector<ir::Instr> seq;
  for (const auto& region : process.safe_regions()) {
    seq.push_back(
        Flagged(ir::Instr{.op = ir::Opcode::kMovImm, .dst = machine::Gpr::kRax,
                          .imm = region.base}));
    seq.push_back(Flagged(ir::Instr{.op = ir::Opcode::kAesCryptRegion,
                                    .src = machine::Gpr::kRax,
                                    .imm = 0,  // whole region
                                    .target = opts.crypt_live_xmm}));
  }
  return seq;
}

std::vector<ir::Instr> CryptTechnique::MakeDomainClose(const sim::Process& process,
                                                       const InstrumentOptions& opts) const {
  // CTR keystream XOR is an involution: closing re-encrypts with the same op.
  return MakeDomainOpen(process, opts);
}

// ---- SGX ----

TechniqueLimits SgxTechnique::limits() const {
  return TechniqueLimits{.max_domains = 0,
                         .granularity = kPageSize,
                         .hw_since_year = 2015,
                         .notes = "fixed mappings after EINIT; 7664-cycle crossings"};
}

Status SgxTechnique::Prepare(sim::Process& process) {
  if (process.safe_regions().empty()) {
    return FailedPrecondition("SGX technique needs at least one safe region");
  }
  // Build one enclave spanning all safe regions (they are contiguous per the
  // allocator); accessor code is assumed extracted into the enclave.
  VirtAddr lo = ~VirtAddr{0};
  VirtAddr hi = 0;
  for (const auto& region : process.safe_regions()) {
    lo = std::min(lo, PageAlignDown(region.base));
    hi = std::max(hi, PageAlignUp(region.base + region.size));
  }
  auto enclave = std::make_unique<sgx::Enclave>(lo, PageNumber(hi - lo));
  for (const auto& region : process.safe_regions()) {
    const uint64_t pages = PageAlignUp(region.size) >> kPageShift;
    for (uint64_t p = 0; p < pages; ++p) {
      MEMSENTRY_RETURN_IF_ERROR(enclave->AddPage(PageAlignDown(region.base) + p * kPageSize));
    }
  }
  MEMSENTRY_RETURN_IF_ERROR(enclave->RegisterEntry(0, lo));
  MEMSENTRY_RETURN_IF_ERROR(enclave->Finalize());
  process.SetEnclave(std::move(enclave));
  return OkStatus();
}

std::vector<ir::Instr> SgxTechnique::MakeDomainOpen(const sim::Process&,
                                                    const InstrumentOptions&) const {
  return {Flagged(ir::Instr{.op = ir::Opcode::kEnclaveEnter, .imm = 0})};
}

std::vector<ir::Instr> SgxTechnique::MakeDomainClose(const sim::Process&,
                                                     const InstrumentOptions&) const {
  return {Flagged(ir::Instr{.op = ir::Opcode::kEnclaveExit})};
}

// ---- mprotect baseline ----

TechniqueLimits MprotectTechnique::limits() const {
  return TechniqueLimits{.max_domains = 0,
                         .granularity = kPageSize,
                         .hw_since_year = 0,
                         .notes = "POSIX baseline: 20-50x on switch-heavy workloads"};
}

Status MprotectTechnique::Prepare(sim::Process& process) {
  for (auto& region : process.safe_regions()) {
    machine::PageFlags closed = machine::PageFlags::Data();
    closed.user = false;
    const uint64_t pages = PageAlignUp(region.size) >> kPageShift;
    for (uint64_t p = 0; p < pages; ++p) {
      MEMSENTRY_RETURN_IF_ERROR(process.page_table().Protect(region.base + p * kPageSize, closed));
      process.mmu().InvalidatePage(region.base + p * kPageSize);
    }
    region.mprotected = true;
  }
  return OkStatus();
}

std::vector<ir::Instr> MprotectTechnique::MakeDomainOpen(const sim::Process&,
                                                         const InstrumentOptions&) const {
  return {Flagged(ir::Instr{.op = ir::Opcode::kMprotect, .imm = 1})};
}

std::vector<ir::Instr> MprotectTechnique::MakeDomainClose(const sim::Process&,
                                                          const InstrumentOptions&) const {
  return {Flagged(ir::Instr{.op = ir::Opcode::kMprotect, .imm = 0})};
}

// ---- information hiding baseline ----

TechniqueLimits InfoHideTechnique::limits() const {
  return TechniqueLimits{.max_domains = 0,
                         .granularity = kPageSize,
                         .hw_since_year = 0,
                         .notes = "probabilistic only: broken by allocation oracles et al."};
}

Status InfoHideTechnique::Prepare(sim::Process&) {
  // The whole point: nothing is enforced. Protection rests on the region's
  // randomized placement, handled by the allocator.
  return OkStatus();
}

}  // namespace memsentry::core::internal

// SFI and MPX: address-based isolation. The address space is split at 64 TiB
// (kPartitionSplit); instrumented accesses are confined to the nonsensitive
// lower half, so safe regions above the split are unreachable except by
// exempt (saferegion_access-annotated) instructions. See paper Figure 2.
#include "src/core/techniques_impl.h"
#include "src/mpx/mpx.h"

namespace memsentry::core::internal {
namespace {

ir::Instr Flagged(ir::Instr instr, uint8_t extra_flags = 0) {
  instr.flags |= ir::kFlagInstrumentation | extra_flags;
  return instr;
}

}  // namespace

// ---- SFI ----

TechniqueLimits SfiTechnique::limits() const {
  return TechniqueLimits{.max_domains = 48,
                         .granularity = 1,
                         .hw_since_year = 0,
                         .notes = "domains limited by maskable address bits; software only"};
}

Status SfiTechnique::Prepare(sim::Process& process) {
  // Nothing to configure: protection comes purely from the instrumentation.
  // Sanity-check placement: every safe region must be in the upper partition,
  // otherwise masked pointers could still reach it.
  for (const auto& region : process.safe_regions()) {
    if (region.base < kPartitionSplit) {
      return FailedPrecondition("SFI requires safe regions above the 64 TiB split: " +
                                region.name);
    }
  }
  return OkStatus();
}

std::vector<ir::Instr> SfiTechnique::MakeAccessCheck(machine::Gpr addr_reg, bool is_load,
                                                     const InstrumentOptions& opts) const {
  std::vector<ir::Instr> seq;
  // Split the access: lea separates address computation from the memory op
  // (Figure 2c), then mask. The movabs materializing the mask is normally
  // hoisted by the register allocator; its flagged cost (sfi_movabs_slot) is
  // the amortized share. The ablation emits a second, unhoistable one.
  seq.push_back(Flagged(ir::Instr{.op = ir::Opcode::kLea, .dst = addr_reg, .src = addr_reg}));
  seq.push_back(
      Flagged(ir::Instr{.op = ir::Opcode::kMovImm, .dst = machine::Gpr::kRax, .imm = kSfiMask}));
  if (opts.sfi_rematerialize_mask) {
    seq.push_back(
        Flagged(ir::Instr{.op = ir::Opcode::kMovImm, .dst = machine::Gpr::kRax, .imm = kSfiMask}));
  }
  // The and is on the critical path only when its result feeds a load.
  seq.push_back(Flagged(ir::Instr{.op = ir::Opcode::kAndImm, .dst = addr_reg, .imm = kSfiMask},
                        is_load ? ir::kFlagCritical : 0));
  return seq;
}

machine::FaultOr<uint64_t> SfiTechnique::AttackerRead(sim::Process& process, VirtAddr va) {
  // The attacker's primitive lives inside instrumented code: the pointer is
  // masked before use. Reads of the safe region silently alias into the
  // nonsensitive partition — prevented, though not detected (Section 3.2).
  return Technique::AttackerRead(process, va & kSfiMask);
}

machine::FaultOr<bool> SfiTechnique::AttackerWrite(sim::Process& process, VirtAddr va,
                                                   uint64_t value) {
  return Technique::AttackerWrite(process, va & kSfiMask, value);
}

// ---- MPX ----

TechniqueLimits MpxTechnique::limits() const {
  return TechniqueLimits{.max_domains = 4,
                         .granularity = 1,
                         .hw_since_year = 2015,
                         .notes = "4 bound registers; unbounded via bound tables (slow)"};
}

Status MpxTechnique::Prepare(sim::Process& process) {
  for (const auto& region : process.safe_regions()) {
    if (region.base < kPartitionSplit) {
      return FailedPrecondition("MPX partitioning requires safe regions above 64 TiB: " +
                                region.name);
    }
  }
  // bnd0 = [0, 64 TiB): program initialization sets the single partition
  // bound; BNDPRESERVE keeps it across legacy branches (Section 5.4).
  // Without the flag, branches reset bnd0 and the next check reloads it
  // from the bound table (SetBndReload models the table entry).
  process.regs().bnd[0] = mpx::MakeBounds(0, kPartitionSplit);
  process.SetBndReload(0, process.regs().bnd[0]);
  return OkStatus();
}

std::vector<ir::Instr> MpxTechnique::MakeAccessCheck(machine::Gpr addr_reg, bool is_load,
                                                     const InstrumentOptions& opts) const {
  std::vector<ir::Instr> seq;
  seq.push_back(Flagged(ir::Instr{.op = ir::Opcode::kLea, .dst = addr_reg, .src = addr_reg}));
  // Single upper-bound check: the lower bound is 0 and addresses are
  // unsigned, so checking it would be useless (Section 5.4). bndcu does not
  // modify the pointer -> never on the critical path.
  seq.push_back(Flagged(ir::Instr{.op = ir::Opcode::kBndcu, .src = addr_reg, .imm = 0}));
  if (opts.mpx_double_bounds) {
    // Ablation: GCC-style double-sided checking. The second check serializes
    // behind the first (Table 4: 0.50 vs <0.1 cycles).
    seq.push_back(Flagged(ir::Instr{.op = ir::Opcode::kBndcl, .src = addr_reg, .imm = 0},
                          ir::kFlagCritical));
    (void)is_load;
  }
  return seq;
}

machine::FaultOr<uint64_t> MpxTechnique::AttackerRead(sim::Process& process, VirtAddr va) {
  if (auto fault = mpx::CheckUpper(process.regs().bnd[0], va); fault.has_value()) {
    return *fault;  // #BR: deterministically *detected*, not just prevented
  }
  return Technique::AttackerRead(process, va);
}

machine::FaultOr<bool> MpxTechnique::AttackerWrite(sim::Process& process, VirtAddr va,
                                                   uint64_t value) {
  if (auto fault = mpx::CheckUpper(process.regs().bnd[0], va); fault.has_value()) {
    fault->access = machine::AccessType::kWrite;  // label the faulting primitive
    return *fault;
  }
  return Technique::AttackerWrite(process, va, value);
}

std::vector<ProtectionAuditIssue> MpxTechnique::AuditProtection(sim::Process& process) {
  auto issues = Technique::AuditProtection(process);
  const machine::BoundRegister partition = mpx::MakeBounds(0, kPartitionSplit);
  // bnd0 must confine accesses to the nonsensitive partition. A widened
  // register (or a corrupted bound-table entry it reloads from after a
  // legacy branch) silently re-admits the safe region.
  machine::BoundRegister& bnd0 = process.regs().bnd[0];
  if (bnd0.lower != partition.lower || bnd0.upper != partition.upper) {
    bnd0 = partition;
    issues.push_back(ProtectionAuditIssue{
        .what = "bnd0 widened beyond the 64 TiB partition", .repaired = true});
  }
  const auto& reload = process.bnd_reload(0);
  if (!reload.has_value() || reload->lower != partition.lower ||
      reload->upper != partition.upper) {
    process.SetBndReload(0, partition);
    issues.push_back(ProtectionAuditIssue{
        .what = "bound-table entry for bnd0 corrupted", .repaired = true});
  }
  return issues;
}

}  // namespace memsentry::core::internal

// Technique selection guidance: encodes the paper's Table 2 (applicability),
// Table 3 (limits) and the Section 6.3 discussion as executable logic.
#ifndef MEMSENTRY_SRC_CORE_ADVISOR_H_
#define MEMSENTRY_SRC_CORE_ADVISOR_H_

#include <string>
#include <vector>

#include "src/core/technique.h"

namespace memsentry::core {

// Where a defense inserts code (paper Tables 1 and 2).
enum class InstrumentationPoint {
  kCallRet,          // shadow stacks
  kIndirectBranch,   // CFI variants, layout randomization
  kSyscall,          // TASR-style layout randomization
  kAllocatorCall,    // heap protection (DieHard)
  kMemAccess,        // CPI / arbitrary program data, needs points-to
};

const char* InstrumentationPointName(InstrumentationPoint point);

struct ScenarioSpec {
  InstrumentationPoint point = InstrumentationPoint::kCallRet;
  // Roughly how many protected events occur per 1000 instructions; drives
  // the address- vs domain-based crossover (Section 6.3).
  double events_per_kinstr = 10.0;
  uint64_t region_bytes = 4096;
  bool needs_confidentiality = false;  // reads must be stopped too
  int domains_needed = 1;
  int cpu_year = 2017;        // newest CPU generation available
  bool hypervisor_ok = true;  // privileged host component acceptable
  bool mpk_available = false; // unreleased at paper time
};

struct Recommendation {
  TechniqueKind primary;
  std::vector<TechniqueKind> alternatives;
  std::string rationale;
};

Recommendation Advise(const ScenarioSpec& spec);

// Degradation order for MemSentryConfig::fallbacks: the techniques to retry
// (in order) when `kind`'s Prepare fails on an exhausted or unavailable
// resource. Chains end in techniques with no hardware resource to exhaust
// (SFI needs only the placement invariant, which the allocator guarantees).
// Opt-in: MemSentry applies no chain unless the config asks for one.
std::vector<TechniqueKind> DefaultFallbackChain(TechniqueKind kind);

// One row of the paper's Table 2.
struct ApplicabilityRow {
  Category category;
  std::string instrumentation_points;
  std::string application;
};

std::vector<ApplicabilityRow> ApplicabilityTable();

}  // namespace memsentry::core

#endif  // MEMSENTRY_SRC_CORE_ADVISOR_H_

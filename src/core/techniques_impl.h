// Concrete Technique implementations. Internal to src/core: users obtain
// techniques through CreateTechnique() in technique.h.
#ifndef MEMSENTRY_SRC_CORE_TECHNIQUES_IMPL_H_
#define MEMSENTRY_SRC_CORE_TECHNIQUES_IMPL_H_

#include "src/core/technique.h"

namespace memsentry::core::internal {

// ---- Address-based (paper Section 3.2) ----

class SfiTechnique : public Technique {
 public:
  TechniqueKind kind() const override { return TechniqueKind::kSfi; }
  Category category() const override { return Category::kAddressBased; }
  TechniqueLimits limits() const override;
  Status Prepare(sim::Process& process) override;
  std::vector<ir::Instr> MakeAccessCheck(machine::Gpr addr_reg, bool is_load,
                                         const InstrumentOptions& opts) const override;
  machine::FaultOr<uint64_t> AttackerRead(sim::Process& process, VirtAddr va) override;
  machine::FaultOr<bool> AttackerWrite(sim::Process& process, VirtAddr va,
                                       uint64_t value) override;
};

class MpxTechnique : public Technique {
 public:
  TechniqueKind kind() const override { return TechniqueKind::kMpx; }
  Category category() const override { return Category::kAddressBased; }
  TechniqueLimits limits() const override;
  Status Prepare(sim::Process& process) override;
  std::vector<ir::Instr> MakeAccessCheck(machine::Gpr addr_reg, bool is_load,
                                         const InstrumentOptions& opts) const override;
  machine::FaultOr<uint64_t> AttackerRead(sim::Process& process, VirtAddr va) override;
  machine::FaultOr<bool> AttackerWrite(sim::Process& process, VirtAddr va,
                                       uint64_t value) override;
  std::vector<ProtectionAuditIssue> AuditProtection(sim::Process& process) override;
};

// ---- Domain-based (paper Section 3.1) ----

class MpkTechnique : public Technique {
 public:
  TechniqueKind kind() const override { return TechniqueKind::kMpk; }
  Category category() const override { return Category::kDomainBased; }
  TechniqueLimits limits() const override;
  Status Prepare(sim::Process& process) override;
  std::vector<ir::Instr> MakeDomainOpen(const sim::Process& process,
                                        const InstrumentOptions& opts) const override;
  std::vector<ir::Instr> MakeDomainClose(const sim::Process& process,
                                         const InstrumentOptions& opts) const override;
  std::vector<ProtectionAuditIssue> AuditProtection(sim::Process& process) override;
};

class VmfuncTechnique : public Technique {
 public:
  TechniqueKind kind() const override { return TechniqueKind::kVmfunc; }
  Category category() const override { return Category::kDomainBased; }
  TechniqueLimits limits() const override;
  Status Prepare(sim::Process& process) override;
  std::vector<ir::Instr> MakeDomainOpen(const sim::Process& process,
                                        const InstrumentOptions& opts) const override;
  std::vector<ir::Instr> MakeDomainClose(const sim::Process& process,
                                         const InstrumentOptions& opts) const override;
  std::vector<ProtectionAuditIssue> AuditProtection(sim::Process& process) override;
};

class CryptTechnique : public Technique {
 public:
  explicit CryptTechnique(uint64_t key_seed = 0x5afe5eedULL) : key_seed_(key_seed) {}
  TechniqueKind kind() const override { return TechniqueKind::kCrypt; }
  Category category() const override { return Category::kDomainBased; }
  TechniqueLimits limits() const override;
  Status Prepare(sim::Process& process) override;
  std::vector<ir::Instr> MakeDomainOpen(const sim::Process& process,
                                        const InstrumentOptions& opts) const override;
  std::vector<ir::Instr> MakeDomainClose(const sim::Process& process,
                                         const InstrumentOptions& opts) const override;
  std::vector<ProtectionAuditIssue> AuditProtection(sim::Process& process) override;

 private:
  uint64_t key_seed_;
};

class SgxTechnique : public Technique {
 public:
  TechniqueKind kind() const override { return TechniqueKind::kSgx; }
  Category category() const override { return Category::kDomainBased; }
  TechniqueLimits limits() const override;
  Status Prepare(sim::Process& process) override;
  std::vector<ir::Instr> MakeDomainOpen(const sim::Process& process,
                                        const InstrumentOptions& opts) const override;
  std::vector<ir::Instr> MakeDomainClose(const sim::Process& process,
                                         const InstrumentOptions& opts) const override;
};

// ---- Baselines ----

class MprotectTechnique : public Technique {
 public:
  TechniqueKind kind() const override { return TechniqueKind::kMprotect; }
  Category category() const override { return Category::kDomainBased; }
  TechniqueLimits limits() const override;
  Status Prepare(sim::Process& process) override;
  std::vector<ir::Instr> MakeDomainOpen(const sim::Process& process,
                                        const InstrumentOptions& opts) const override;
  std::vector<ir::Instr> MakeDomainClose(const sim::Process& process,
                                         const InstrumentOptions& opts) const override;
  std::vector<ProtectionAuditIssue> AuditProtection(sim::Process& process) override;
};

class InfoHideTechnique : public Technique {
 public:
  TechniqueKind kind() const override { return TechniqueKind::kInfoHide; }
  Category category() const override { return Category::kNone; }
  TechniqueLimits limits() const override;
  Status Prepare(sim::Process& process) override;
};

}  // namespace memsentry::core::internal

#endif  // MEMSENTRY_SRC_CORE_TECHNIQUES_IMPL_H_

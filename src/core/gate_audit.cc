#include "src/core/gate_audit.h"

#include "src/mpk/mpk.h"

namespace memsentry::core {
namespace {

enum class GateKind { kNotAGate, kOpen, kClose, kToggle };

GateKind Classify(const ir::Instr& instr) {
  switch (instr.op) {
    case ir::Opcode::kWrpkru:
      return instr.imm == mpk::kOpenPkru ? GateKind::kOpen : GateKind::kClose;
    case ir::Opcode::kVmFunc:
      return instr.imm != 0 ? GateKind::kOpen : GateKind::kClose;
    case ir::Opcode::kEnclaveEnter:
      return GateKind::kOpen;
    case ir::Opcode::kEnclaveExit:
      return GateKind::kClose;
    case ir::Opcode::kMprotect:
      return instr.imm != 0 ? GateKind::kOpen : GateKind::kClose;
    case ir::Opcode::kAesCryptRegion:
      return GateKind::kToggle;
    default:
      return GateKind::kNotAGate;
  }
}

}  // namespace

GateAuditResult AuditDomainGates(const ir::Module& module) {
  GateAuditResult result;
  for (int fi = 0; fi < static_cast<int>(module.functions.size()); ++fi) {
    const ir::Function& func = module.functions[static_cast<size_t>(fi)];
    for (int bi = 0; bi < static_cast<int>(func.blocks.size()); ++bi) {
      const auto& instrs = func.blocks[static_cast<size_t>(bi)].instrs;
      bool domain_open = false;
      int crypt_toggles = 0;
      for (int ii = 0; ii < static_cast<int>(instrs.size()); ++ii) {
        const ir::Instr& instr = instrs[static_cast<size_t>(ii)];
        const GateKind kind = Classify(instr);
        if (kind == GateKind::kNotAGate) {
          continue;
        }
        ++result.gates_checked;
        const ir::InstrRef ref{fi, bi, ii};
        if (!instr.IsInstrumentation()) {
          result.findings.push_back(
              {ref, "domain-switch instruction not inserted by MemSentry: an "
                    "attacker-reachable gate"});
        }
        switch (kind) {
          case GateKind::kOpen:
            if (domain_open) {
              result.findings.push_back({ref, "open while sensitive domain already open"});
            }
            domain_open = true;
            break;
          case GateKind::kClose:
            if (!domain_open) {
              result.findings.push_back({ref, "close without a matching open"});
            }
            domain_open = false;
            break;
          case GateKind::kToggle:
            ++crypt_toggles;
            break;
          case GateKind::kNotAGate:
            break;
        }
      }
      if (domain_open) {
        result.findings.push_back(
            {ir::InstrRef{fi, bi, static_cast<int>(instrs.size()) - 1},
             "sensitive domain left open across a block boundary"});
      }
      if (crypt_toggles % 2 != 0) {
        result.findings.push_back(
            {ir::InstrRef{fi, bi, static_cast<int>(instrs.size()) - 1},
             "unbalanced crypt toggles: region state diverges across this block"});
      }
    }
  }
  return result;
}

}  // namespace memsentry::core

// The Technique interface: one implementation per isolation mechanism
// (paper Sections 3.1/3.2). A technique knows how to
//   1. prepare a process's safe regions at runtime (tag pages, build EPTs,
//      encrypt, build an enclave, ...),
//   2. instrument a module (via core/instrument.h),
//   3. adjudicate an attacker's arbitrary read/write primitive, and
//   4. report its architectural limits (paper Table 3).
#ifndef MEMSENTRY_SRC_CORE_TECHNIQUE_H_
#define MEMSENTRY_SRC_CORE_TECHNIQUE_H_

#include <memory>
#include <string>

#include "src/base/status.h"
#include "src/base/types.h"
#include "src/ir/module.h"
#include "src/machine/fault.h"
#include "src/sim/process.h"

namespace memsentry::core {

enum class TechniqueKind {
  kSfi = 0,      // and-mask every access (address-based, software only)
  kMpx,          // single bndcu against bnd0 (address-based)
  kMpk,          // protection keys + wrpkru (domain-based)
  kVmfunc,       // EPT switching via VMFUNC under Dune (domain-based)
  kCrypt,        // AES-NI in-place encryption (domain-based)
  kSgx,          // enclave-hosted safe region (domain-based)
  kMprotect,     // mprotect() toggling: the slow POSIX baseline
  kInfoHide,     // probabilistic isolation: randomized placement only
};

inline constexpr int kNumTechniques = 8;

const char* TechniqueKindName(TechniqueKind kind);

enum class Category { kAddressBased, kDomainBased, kNone };

// What the protection must stop (paper Section 4): a shadow stack needs
// integrity only (writes), code randomization secrecy needs reads, private
// keys need both.
enum class ProtectMode { kWriteOnly, kReadOnly, kReadWrite };

// Architectural limits, paper Table 3.
struct TechniqueLimits {
  int max_domains = 0;          // 0 == unbounded
  uint64_t granularity = 1;     // minimum isolated-data granularity in bytes
  int hw_since_year = 0;        // first commodity CPU generation with support
  std::string notes;
};

// One finding of a containment audit (AuditProtection): what protection
// state was found corrupted and whether the audit repaired it in place.
// Unrepaired findings mean the region is contained but quarantined (e.g.
// clobbered AES round keys: the ciphertext is unrecoverable but unreadable).
struct ProtectionAuditIssue {
  std::string what;
  bool repaired = false;
};

struct InstrumentOptions {
  ProtectMode mode = ProtectMode::kReadWrite;
  // MPX ablation: check both bounds (the GCC-style usage the paper shows is
  // much slower) instead of MemSentry's single upper-bound check.
  bool mpx_double_bounds = false;
  // SFI ablation: rematerialize the mask before every access instead of
  // hoisting it to a register.
  bool sfi_rematerialize_mask = false;
  // crypt: how many live xmm registers each inlined AES sequence must spill.
  int crypt_live_xmm = 6;
};

class Technique {
 public:
  virtual ~Technique() = default;

  virtual TechniqueKind kind() const = 0;
  virtual Category category() const = 0;
  virtual TechniqueLimits limits() const = 0;

  // Runtime side: configures every safe region already registered on the
  // process. Must run after regions are allocated and before execution.
  virtual Status Prepare(sim::Process& process) = 0;

  // Instrumentation side (used by core/instrument.h). Address-based
  // techniques emit a per-access check sequence; domain-based techniques
  // emit open/close sequences around safe-access runs. Default
  // implementations return empty sequences.
  virtual std::vector<ir::Instr> MakeAccessCheck(machine::Gpr addr_reg, bool is_load,
                                                 const InstrumentOptions& opts) const;
  virtual std::vector<ir::Instr> MakeDomainOpen(const sim::Process& process,
                                                const InstrumentOptions& opts) const;
  virtual std::vector<ir::Instr> MakeDomainClose(const sim::Process& process,
                                                 const InstrumentOptions& opts) const;

  // The attacker holds an arbitrary read/write primitive inside the
  // (instrumented) vulnerable program; these apply the technique's semantics
  // to that primitive (paper Section 2.3 threat model).
  virtual machine::FaultOr<uint64_t> AttackerRead(sim::Process& process, VirtAddr va);
  virtual machine::FaultOr<bool> AttackerWrite(sim::Process& process, VirtAddr va,
                                               uint64_t value);

  // Containment audit: sweeps the process for corrupted protection state and
  // repairs what can be repaired, returning one issue per finding. Intended
  // to run at closed-domain checkpoints (the technique's Prepare-time state
  // is the reference; an audit while a domain is legitimately open would
  // re-close it). The base implementation is a TLB-coherence sweep over all
  // safe-region pages: any cached translation whose permission or pkey bits
  // disagree with the live page tables is invalidated — the desync vector
  // that otherwise lets pre-revocation TLB entries bypass MPK, VMFUNC and
  // mprotect (frame bits are exempt from the comparison because nested
  // translation caches host frames).
  virtual std::vector<ProtectionAuditIssue> AuditProtection(sim::Process& process);
};

std::unique_ptr<Technique> CreateTechnique(TechniqueKind kind);

}  // namespace memsentry::core

#endif  // MEMSENTRY_SRC_CORE_TECHNIQUE_H_

// saferegion_alloc(): allocates and registers safe regions, honoring each
// technique's placement and granularity rules (paper Table 3):
//   * address-based techniques place regions above the 64 TiB split,
//   * page-granular techniques round sizes up to 4 KiB,
//   * crypt rounds to 16-byte AES chunks,
//   * information hiding places the region at a random page in the 128 TiB
//     address space and relies on nothing else.
#ifndef MEMSENTRY_SRC_CORE_SAFE_REGION_H_
#define MEMSENTRY_SRC_CORE_SAFE_REGION_H_

#include <string>

#include "src/base/rng.h"
#include "src/core/technique.h"
#include "src/sim/process.h"

namespace memsentry::core {

class SafeRegionAllocator {
 public:
  SafeRegionAllocator(sim::Process* process, TechniqueKind kind, uint64_t seed = 0x10de5eedULL)
      : process_(process), kind_(kind), rng_(seed) {}

  // Allocates `size` bytes of safe region, maps its pages, registers it with
  // the process, and returns the region.
  StatusOr<sim::SafeRegion*> Alloc(const std::string& name, uint64_t size);

  // The paper's C API shape.
  StatusOr<VirtAddr> saferegion_alloc(uint64_t size) {
    auto region = Alloc("anon", size);
    if (!region.ok()) {
      return region.status();
    }
    return region.value()->base;
  }

 private:
  sim::Process* process_;
  TechniqueKind kind_;
  Rng rng_;
  VirtAddr next_ = sim::kSafeRegionBase;
};

}  // namespace memsentry::core

#endif  // MEMSENTRY_SRC_CORE_SAFE_REGION_H_

// IRBuilder: append-style construction of modules, mirroring llvm::IRBuilder
// at the granularity this project needs.
#ifndef MEMSENTRY_SRC_IR_BUILDER_H_
#define MEMSENTRY_SRC_IR_BUILDER_H_

#include <string>

#include "src/ir/module.h"

namespace memsentry::ir {

class Builder {
 public:
  explicit Builder(Module* module) : module_(module) {}

  // Creates a function with one empty block and positions the builder there.
  int CreateFunction(const std::string& name);
  // Appends an empty block to the current function; returns its index.
  int NewBlock();
  void SetInsertPoint(int function, int block);
  int current_function() const { return func_; }
  int current_block() const { return block_; }

  Instr& Emit(const Instr& instr);

  // Convenience emitters.
  Instr& MovImm(machine::Gpr dst, uint64_t imm);
  Instr& AddImm(machine::Gpr dst, int64_t imm);
  Instr& AndImm(machine::Gpr dst, uint64_t imm);
  Instr& AluRR(machine::Gpr dst, machine::Gpr src, int alu_op);
  Instr& Lea(machine::Gpr dst, machine::Gpr src, int64_t offset);
  Instr& VecOp(int pressure_class);
  Instr& Load(machine::Gpr dst, machine::Gpr addr);
  Instr& Store(machine::Gpr addr, machine::Gpr value);
  Instr& Jmp(int block);
  Instr& CondBr(int taken_block);
  Instr& Call(int function);
  Instr& IndirectCall(machine::Gpr target_reg, uint32_t callsite_id);
  Instr& Ret();
  Instr& Halt();
  Instr& Syscall(uint64_t nr);
  Instr& Trap();

 private:
  Module* module_;
  int func_ = 0;
  int block_ = 0;
};

}  // namespace memsentry::ir

#endif  // MEMSENTRY_SRC_IR_BUILDER_H_

#include "src/ir/instr.h"

namespace memsentry::ir {

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kNop: return "nop";
    case Opcode::kMovImm: return "mov.imm";
    case Opcode::kAddImm: return "add.imm";
    case Opcode::kAndImm: return "and.imm";
    case Opcode::kAluRR: return "alu.rr";
    case Opcode::kLea: return "lea";
    case Opcode::kVecOp: return "vecop";
    case Opcode::kLoad: return "load";
    case Opcode::kStore: return "store";
    case Opcode::kJmp: return "jmp";
    case Opcode::kCondBr: return "condbr";
    case Opcode::kCall: return "call";
    case Opcode::kIndirectCall: return "icall";
    case Opcode::kRet: return "ret";
    case Opcode::kHalt: return "halt";
    case Opcode::kSyscall: return "syscall";
    case Opcode::kMprotect: return "mprotect";
    case Opcode::kBndcu: return "bndcu";
    case Opcode::kBndcl: return "bndcl";
    case Opcode::kWrpkru: return "wrpkru";
    case Opcode::kRdpkru: return "rdpkru";
    case Opcode::kVmFunc: return "vmfunc";
    case Opcode::kVmCall: return "vmcall";
    case Opcode::kMFence: return "mfence";
    case Opcode::kAesCryptRegion: return "aes.crypt";
    case Opcode::kEnclaveEnter: return "eenter";
    case Opcode::kEnclaveExit: return "eexit";
    case Opcode::kTrap: return "trap";
    case Opcode::kTrapIf: return "trap.if";
  }
  return "?";
}

}  // namespace memsentry::ir

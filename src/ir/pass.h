// Pass framework: the MemSentry isolation passes and the defense passes are
// ModulePasses scheduled by a PassManager, mirroring the paper's "run the
// MemSentry pass after the defense pass" workflow (Section 3, Figure 1).
#ifndef MEMSENTRY_SRC_IR_PASS_H_
#define MEMSENTRY_SRC_IR_PASS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/ir/module.h"

namespace memsentry::ir {

class ModulePass {
 public:
  virtual ~ModulePass() = default;
  virtual std::string name() const = 0;
  virtual Status Run(Module& module) = 0;
};

class PassManager {
 public:
  void Add(std::unique_ptr<ModulePass> pass) { passes_.push_back(std::move(pass)); }

  // Runs every pass in order; verifies the module after each one.
  Status Run(Module& module);

  const std::vector<std::string>& executed() const { return executed_; }

 private:
  std::vector<std::unique_ptr<ModulePass>> passes_;
  std::vector<std::string> executed_;
};

}  // namespace memsentry::ir

#endif  // MEMSENTRY_SRC_IR_PASS_H_

// The MemSentry IR: a small, explicit instruction set standing in for LLVM IR
// at the level MemSentry cares about — loads, stores, address arithmetic,
// calls/returns, indirect branches, syscalls, and the hardware-feature
// instructions the isolation passes insert (bndcu, and-mask, wrpkru, vmfunc,
// AES region crypt, enclave crossings).
#ifndef MEMSENTRY_SRC_IR_INSTR_H_
#define MEMSENTRY_SRC_IR_INSTR_H_

#include <cstdint>

#include "src/machine/registers.h"

namespace memsentry::ir {

enum class Opcode : uint8_t {
  kNop = 0,
  // Data movement / arithmetic.
  kMovImm,   // dst = imm
  kAddImm,   // dst += (int64)imm; sets zero_flag = (dst == 0)
  kAndImm,   // dst &= imm (generic mask; SFI's mask is this + kFlagInstrumentation)
  kAluRR,    // dst = dst <op imm> src; op: 0 add, 1 sub, 2 xor, 3 mul; sets zero_flag
  kLea,      // dst = src + (int64)imm (address computation, no memory touch)
  kVecOp,    // xmm/ymm vector/FP work; imm = register-pressure class (0..3)
  // Memory.
  kLoad,   // dst = mem64[src]
  kStore,  // mem64[dst] = src   (address register first, like AT&T mov %src,(%dst))
  // Control flow (block terminators except kCall/kIndirectCall/kSyscall).
  kJmp,           // goto block `target`
  kCondBr,        // if !zero_flag goto block `target`, else fall through
  kCall,          // call function `target`
  kIndirectCall,  // call function whose index is in src; imm = callsite id (CFI)
  kRet,
  kHalt,
  // Kernel interface.
  kSyscall,   // imm = syscall number
  kMprotect,  // imm = 1 to open (RW) the safe region, 0 to close; the baseline technique
  // MPX.
  kBndcu,  // fault if src > bnd[imm].upper
  kBndcl,  // fault if src < bnd[imm].lower
  // MPK.
  kWrpkru,  // pkru = (uint32)imm; serializing
  kRdpkru,  // dst = pkru
  // VT-x.
  kVmFunc,  // EPTP-switch to index imm (VMFUNC leaf 0)
  kVmCall,  // hypercall: imm = nr, a0 = rdi, a1 = rsi
  kMFence,
  // AES-NI crypt technique: decrypt-use-reencrypt of the registered safe
  // region whose base is in src; imm = size in bytes, target = live xmm
  // registers the inlined AES sequence must save/restore.
  kAesCryptRegion,
  // SGX.
  kEnclaveEnter,  // ECALL: imm = entry id
  kEnclaveExit,   // EEXIT
  // Defense-internal.
  kTrap,    // defense detected a violation; halts the program with trapped=true
  kTrapIf,  // traps when zero_flag is clear (defense invariant checks)
};

const char* OpcodeName(Opcode op);

// Instruction flags.
inline constexpr uint8_t kFlagInstrumentation = 1 << 0;  // inserted by a MemSentry pass
inline constexpr uint8_t kFlagSafeAccess = 1 << 1;       // saferegion_access(): exempt / wrapped
inline constexpr uint8_t kFlagCritical = 1 << 2;         // result feeds an address: charge latency
inline constexpr uint8_t kFlagDefense = 1 << 3;          // inserted by a defense pass

struct Instr {
  Opcode op = Opcode::kNop;
  machine::Gpr dst = machine::Gpr::kRax;
  machine::Gpr src = machine::Gpr::kRax;
  uint64_t imm = 0;
  int32_t target = 0;  // block index (branches) or function index (calls)
  uint8_t flags = 0;

  bool IsInstrumentation() const { return (flags & kFlagInstrumentation) != 0; }
  bool IsSafeAccess() const { return (flags & kFlagSafeAccess) != 0; }
  bool IsCritical() const { return (flags & kFlagCritical) != 0; }
  bool IsDefense() const { return (flags & kFlagDefense) != 0; }

  bool IsTerminator() const {
    return op == Opcode::kJmp || op == Opcode::kCondBr || op == Opcode::kRet ||
           op == Opcode::kHalt;
  }
  bool IsMemoryAccess() const { return op == Opcode::kLoad || op == Opcode::kStore; }
};

}  // namespace memsentry::ir

#endif  // MEMSENTRY_SRC_IR_INSTR_H_

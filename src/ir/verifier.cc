#include "src/ir/verifier.h"

#include <string>

namespace memsentry::ir {
namespace {

std::string Where(const Function& f, int block, int index) {
  return "in " + f.name + " block " + std::to_string(block) + " instr " + std::to_string(index);
}

}  // namespace

Status Verify(const Module& module) {
  if (module.functions.empty()) {
    return InvalidArgument("module has no functions");
  }
  if (module.entry < 0 || module.entry >= static_cast<int>(module.functions.size())) {
    return InvalidArgument("invalid entry function index");
  }
  const int num_functions = static_cast<int>(module.functions.size());
  for (const Function& f : module.functions) {
    if (f.blocks.empty()) {
      return InvalidArgument("function " + f.name + " has no blocks");
    }
    const int num_blocks = static_cast<int>(f.blocks.size());
    for (int b = 0; b < num_blocks; ++b) {
      const auto& instrs = f.blocks[static_cast<size_t>(b)].instrs;
      if (instrs.empty()) {
        return InvalidArgument("empty block " + Where(f, b, 0));
      }
      for (int i = 0; i < static_cast<int>(instrs.size()); ++i) {
        const Instr& instr = instrs[static_cast<size_t>(i)];
        const bool last = i == static_cast<int>(instrs.size()) - 1;
        if (instr.IsTerminator() != last) {
          return InvalidArgument(std::string(instr.IsTerminator() ? "terminator not at block end "
                                                                  : "block does not end in terminator ") +
                                 Where(f, b, i));
        }
        switch (instr.op) {
          case Opcode::kJmp:
          case Opcode::kCondBr:
            if (instr.target < 0 || instr.target >= num_blocks) {
              return InvalidArgument("branch target out of range " + Where(f, b, i));
            }
            // A fall-through CondBr needs a next block.
            if (instr.op == Opcode::kCondBr && b + 1 >= num_blocks) {
              return InvalidArgument("cond-br fall-through off function end " + Where(f, b, i));
            }
            break;
          case Opcode::kCall:
            if (instr.target < 0 || instr.target >= num_functions) {
              return InvalidArgument("call target out of range " + Where(f, b, i));
            }
            break;
          case Opcode::kWrpkru:
            if (instr.imm > 0xffffffffULL) {
              return InvalidArgument("wrpkru immediate exceeds 32 bits " + Where(f, b, i));
            }
            break;
          case Opcode::kBndcu:
          case Opcode::kBndcl:
            if (instr.imm >= machine::kNumBnds) {
              return InvalidArgument("bound register index out of range " + Where(f, b, i));
            }
            break;
          default:
            break;
        }
      }
    }
  }
  return OkStatus();
}

}  // namespace memsentry::ir

// Static points-to analysis (the DSA stand-in from paper Section 5.5): a
// flow-insensitive abstract interpretation that classifies every load/store
// as may-touch-safe-region or not. In conservative mode, values of unknown
// provenance (anything loaded from memory) are assumed to possibly point into
// the safe region — reproducing DSA's over-approximation, "where most memory
// accesses are classified as being able to touch sensitive data". The
// dynamic (PIN-style) counterpart lives in src/sim/profiling.h.
#ifndef MEMSENTRY_SRC_IR_POINTSTO_H_
#define MEMSENTRY_SRC_IR_POINTSTO_H_

#include <span>
#include <vector>

#include "src/base/types.h"
#include "src/ir/module.h"

namespace memsentry::ir {

struct SafeRange {
  VirtAddr base = 0;
  uint64_t size = 0;

  bool Contains(VirtAddr a) const { return a >= base && a < base + size; }
};

struct PointsToResult {
  uint64_t total_mem_ops = 0;
  uint64_t may_access = 0;  // memory ops classified as possibly touching a safe region
  std::vector<InstrRef> refs;

  double MayAccessFraction() const {
    return total_mem_ops == 0 ? 0.0
                              : static_cast<double>(may_access) / static_cast<double>(total_mem_ops);
  }
};

// Analyzes the module. When `annotate` is set, flags the classified
// instructions with kFlagSafeAccess so the MemSentry pass can consume the
// result, mirroring the LLVM-metadata handoff.
PointsToResult AnalyzePointsTo(Module& module, std::span<const SafeRange> safe_ranges,
                               bool conservative, bool annotate);

}  // namespace memsentry::ir

#endif  // MEMSENTRY_SRC_IR_POINTSTO_H_

// Structural IR verification, run after construction and after every pass.
#ifndef MEMSENTRY_SRC_IR_VERIFIER_H_
#define MEMSENTRY_SRC_IR_VERIFIER_H_

#include "src/base/status.h"
#include "src/ir/module.h"

namespace memsentry::ir {

// Checks:
//  * every block ends with exactly one terminator, and terminators appear
//    only in the last position,
//  * branch targets are valid block indices in their function,
//  * call targets are valid function indices,
//  * the entry function index is valid,
//  * wrpkru immediates fit in 32 bits, bnd indices are 0..3.
Status Verify(const Module& module);

}  // namespace memsentry::ir

#endif  // MEMSENTRY_SRC_IR_VERIFIER_H_

#include "src/ir/printer.h"
#include <cstdarg>

#include <cinttypes>
#include <cstdio>

namespace memsentry::ir {
namespace {

const char* GprName(machine::Gpr reg) {
  static const char* kNames[] = {"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
                                 "r8",  "r9",  "r10", "r11", "r12", "r13", "r14", "r15"};
  return kNames[static_cast<size_t>(reg)];
}

std::string Flags(const Instr& instr) {
  std::string tags;
  auto add = [&](const char* tag) {
    tags += tags.empty() ? "  ; [" : ", ";
    tags += tag;
  };
  if (instr.IsInstrumentation()) {
    add("instrumentation");
  }
  if (instr.IsSafeAccess()) {
    add("safe-access");
  }
  if (instr.IsCritical()) {
    add("critical");
  }
  if (instr.IsDefense()) {
    add("defense");
  }
  if (!tags.empty()) {
    tags += "]";
  }
  return tags;
}

std::string Format(const char* fmt, ...) {
  char buf[160];
  va_list args;
  va_start(args, fmt);
  vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

}  // namespace

std::string ToString(const Instr& i) {
  std::string body;
  switch (i.op) {
    case Opcode::kMovImm:
      body = Format("mov.imm %s, 0x%" PRIx64, GprName(i.dst), i.imm);
      break;
    case Opcode::kAddImm:
      body = Format("add.imm %s, %" PRId64, GprName(i.dst), static_cast<int64_t>(i.imm));
      break;
    case Opcode::kAndImm:
      body = Format("and.imm %s, 0x%" PRIx64, GprName(i.dst), i.imm);
      break;
    case Opcode::kAluRR: {
      static const char* kOps[] = {"add", "sub", "xor", "mul"};
      body = Format("%s %s, %s", kOps[i.imm & 3], GprName(i.dst), GprName(i.src));
      break;
    }
    case Opcode::kLea:
      body = Format("lea %s, [%s%+" PRId64 "]", GprName(i.dst), GprName(i.src),
                    static_cast<int64_t>(i.imm));
      break;
    case Opcode::kVecOp:
      body = Format("vecop p%" PRIu64, i.imm);
      break;
    case Opcode::kLoad:
      body = Format("load %s, [%s]", GprName(i.dst), GprName(i.src));
      break;
    case Opcode::kStore:
      body = Format("store [%s], %s", GprName(i.dst), GprName(i.src));
      break;
    case Opcode::kJmp:
      body = Format("jmp bb%d", i.target);
      break;
    case Opcode::kCondBr:
      body = Format("br.nz bb%d", i.target);
      break;
    case Opcode::kCall:
      body = Format("call @f%d", i.target);
      break;
    case Opcode::kIndirectCall:
      body = Format("icall *%s  ; site %" PRIu64, GprName(i.src), i.imm);
      break;
    case Opcode::kSyscall:
      body = Format("syscall %" PRIu64, i.imm);
      break;
    case Opcode::kMprotect:
      body = Format("mprotect.%s", i.imm != 0 ? "open" : "close");
      break;
    case Opcode::kBndcu:
      body = Format("bndcu bnd%" PRIu64 ", %s", i.imm, GprName(i.src));
      break;
    case Opcode::kBndcl:
      body = Format("bndcl bnd%" PRIu64 ", %s", i.imm, GprName(i.src));
      break;
    case Opcode::kWrpkru:
      body = Format("wrpkru 0x%" PRIx64, i.imm);
      break;
    case Opcode::kRdpkru:
      body = Format("rdpkru %s", GprName(i.dst));
      break;
    case Opcode::kVmFunc:
      body = Format("vmfunc 0, %" PRIu64, i.imm);
      break;
    case Opcode::kVmCall:
      body = Format("vmcall %" PRIu64, i.imm);
      break;
    case Opcode::kAesCryptRegion:
      body = Format("aes.crypt [%s], size=%" PRIu64, GprName(i.src), i.imm);
      break;
    case Opcode::kEnclaveEnter:
      body = Format("eenter %" PRIu64, i.imm);
      break;
    default:
      body = OpcodeName(i.op);
      break;
  }
  return body + Flags(i);
}

std::string ToString(const Function& function) {
  std::string out = "func @" + function.name + " {\n";
  for (size_t b = 0; b < function.blocks.size(); ++b) {
    out += Format("bb%zu:\n", b);
    for (const Instr& instr : function.blocks[b].instrs) {
      out += "  " + ToString(instr) + "\n";
    }
  }
  out += "}\n";
  return out;
}

std::string ToString(const Module& module) {
  std::string out;
  for (size_t f = 0; f < module.functions.size(); ++f) {
    if (static_cast<int>(f) == module.entry) {
      out += "; entry\n";
    }
    out += ToString(module.functions[f]);
  }
  return out;
}

}  // namespace memsentry::ir

// IR containers: Module -> Function -> BasicBlock -> Instr, plus counting
// helpers used by tests and the benchmark harnesses.
#ifndef MEMSENTRY_SRC_IR_MODULE_H_
#define MEMSENTRY_SRC_IR_MODULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ir/instr.h"

namespace memsentry::ir {

struct BasicBlock {
  std::vector<Instr> instrs;
};

struct Function {
  std::string name;
  std::vector<BasicBlock> blocks;

  uint64_t InstrCount() const {
    uint64_t n = 0;
    for (const auto& b : blocks) {
      n += b.instrs.size();
    }
    return n;
  }
};

struct Module {
  std::vector<Function> functions;
  int entry = 0;  // index of the entry function
  // Mutation counter for decode-cache invalidation: PassManager bumps it
  // after every pass, and anything else that edits instructions should call
  // Touch() so a stale sim::DecodedModule is detected cheaply.
  uint64_t version = 0;

  void Touch() { ++version; }

  Function& EntryFunction() { return functions[static_cast<size_t>(entry)]; }

  uint64_t InstrCount() const {
    uint64_t n = 0;
    for (const auto& f : functions) {
      n += f.InstrCount();
    }
    return n;
  }

  // Counts instructions matching a predicate across the whole module.
  template <typename Pred>
  uint64_t CountIf(Pred pred) const {
    uint64_t n = 0;
    for (const auto& f : functions) {
      for (const auto& b : f.blocks) {
        for (const auto& i : b.instrs) {
          if (pred(i)) {
            ++n;
          }
        }
      }
    }
    return n;
  }

  int FindFunction(const std::string& name) const {
    for (size_t i = 0; i < functions.size(); ++i) {
      if (functions[i].name == name) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }
};

// A stable reference to one instruction inside a module.
struct InstrRef {
  int function = 0;
  int block = 0;
  int index = 0;

  bool operator==(const InstrRef&) const = default;
};

}  // namespace memsentry::ir

#endif  // MEMSENTRY_SRC_IR_MODULE_H_

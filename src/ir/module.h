// IR containers: Module -> Function -> BasicBlock -> Instr, plus counting
// helpers used by tests and the benchmark harnesses.
#ifndef MEMSENTRY_SRC_IR_MODULE_H_
#define MEMSENTRY_SRC_IR_MODULE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/ir/instr.h"

namespace memsentry::ir {

struct BasicBlock {
  std::vector<Instr> instrs;
};

struct Function {
  std::string name;
  std::vector<BasicBlock> blocks;

  uint64_t InstrCount() const {
    uint64_t n = 0;
    for (const auto& b : blocks) {
      n += b.instrs.size();
    }
    return n;
  }
};

struct Module {
  std::vector<Function> functions;
  int entry = 0;  // index of the entry function

  // The digest memo below is atomic (not copyable), so spell out the value
  // operations. Copies and moves drop the memo — they are setup-time
  // operations and the memo re-fills on the next decode-cache lookup.
  Module() = default;
  Module(const Module& o) : functions(o.functions), entry(o.entry), version(o.version) {}
  Module& operator=(const Module& o) {
    functions = o.functions;
    entry = o.entry;
    version = o.version;
    digest_version_.store(~uint64_t{0}, std::memory_order_release);
    return *this;
  }
  Module(Module&& o) noexcept
      : functions(std::move(o.functions)), entry(o.entry), version(o.version) {}
  Module& operator=(Module&& o) noexcept {
    functions = std::move(o.functions);
    entry = o.entry;
    version = o.version;
    digest_version_.store(~uint64_t{0}, std::memory_order_release);
    return *this;
  }
  // Mutation counter for decode-cache invalidation: PassManager bumps it
  // after every pass, and anything else that edits instructions should call
  // Touch() so a stale sim::DecodedModule is detected cheaply.
  uint64_t version = 0;

  void Touch() { ++version; }

  // Content-digest memo for sim::ModuleContentDigest: valid while the module
  // is at `digest_version` (Touch() implicitly invalidates it). Atomics so
  // concurrent decode-cache lookups against one shared module instance stay
  // race-free; the release/acquire pair orders the value under the version.
  uint64_t CachedDigest(uint64_t* out) const {
    const uint64_t at = digest_version_.load(std::memory_order_acquire);
    *out = digest_.load(std::memory_order_relaxed);
    return at;
  }
  void StoreDigest(uint64_t digest) const {
    digest_.store(digest, std::memory_order_relaxed);
    digest_version_.store(version, std::memory_order_release);
  }

  Function& EntryFunction() { return functions[static_cast<size_t>(entry)]; }

  uint64_t InstrCount() const {
    uint64_t n = 0;
    for (const auto& f : functions) {
      n += f.InstrCount();
    }
    return n;
  }

  // Counts instructions matching a predicate across the whole module.
  template <typename Pred>
  uint64_t CountIf(Pred pred) const {
    uint64_t n = 0;
    for (const auto& f : functions) {
      for (const auto& b : f.blocks) {
        for (const auto& i : b.instrs) {
          if (pred(i)) {
            ++n;
          }
        }
      }
    }
    return n;
  }

  int FindFunction(const std::string& name) const {
    for (size_t i = 0; i < functions.size(); ++i) {
      if (functions[i].name == name) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

 private:
  // ~0 marks "never digested" — version 0 modules digest on first ask.
  mutable std::atomic<uint64_t> digest_version_{~uint64_t{0}};
  mutable std::atomic<uint64_t> digest_{0};
};

// A stable reference to one instruction inside a module.
struct InstrRef {
  int function = 0;
  int block = 0;
  int index = 0;

  bool operator==(const InstrRef&) const = default;
};

}  // namespace memsentry::ir

#endif  // MEMSENTRY_SRC_IR_MODULE_H_

#include "src/ir/pointsto.h"

#include <array>

namespace memsentry::ir {
namespace {

// Abstract value lattice for one register.
enum class Abs : uint8_t {
  kBottom = 0,    // no information yet
  kNotSafe,       // provably outside every safe range
  kSafePointer,   // may point into a safe range
  kUnknown,       // top: unknown provenance
};

Abs Join(Abs a, Abs b) {
  if (a == Abs::kBottom) {
    return b;
  }
  if (b == Abs::kBottom) {
    return a;
  }
  if (a == b) {
    return a;
  }
  // NotSafe join SafePointer, or anything join Unknown -> Unknown... except
  // SafePointer is sticky: "may point" absorbs NotSafe.
  if ((a == Abs::kSafePointer && b == Abs::kNotSafe) ||
      (a == Abs::kNotSafe && b == Abs::kSafePointer)) {
    return Abs::kSafePointer;
  }
  return Abs::kUnknown;
}

using RegState = std::array<Abs, machine::kNumGprs>;

Abs Classify(uint64_t value, std::span<const SafeRange> ranges) {
  for (const SafeRange& r : ranges) {
    if (r.Contains(value)) {
      return Abs::kSafePointer;
    }
  }
  return Abs::kNotSafe;
}

}  // namespace

PointsToResult AnalyzePointsTo(Module& module, std::span<const SafeRange> safe_ranges,
                               bool conservative, bool annotate) {
  PointsToResult result;
  for (int fi = 0; fi < static_cast<int>(module.functions.size()); ++fi) {
    Function& f = module.functions[static_cast<size_t>(fi)];
    // Flow-insensitive: one register state per function, iterated to a
    // fixpoint over all instructions regardless of block order.
    RegState state{};
    state.fill(Abs::kBottom);
    bool changed = true;
    int iterations = 0;
    while (changed && iterations < 16) {
      changed = false;
      ++iterations;
      for (auto& block : f.blocks) {
        for (auto& instr : block.instrs) {
          auto set = [&](machine::Gpr reg, Abs value) {
            Abs& slot = state[static_cast<size_t>(reg)];
            const Abs joined = Join(slot, value);
            if (joined != slot) {
              slot = joined;
              changed = true;
            }
          };
          switch (instr.op) {
            case Opcode::kMovImm:
              set(instr.dst, Classify(instr.imm, safe_ranges));
              break;
            case Opcode::kLea:
            case Opcode::kAddImm:
            case Opcode::kAndImm: {
              // Derived pointers keep the provenance of their base. AddImm
              // and AndImm modify dst in place; Lea copies from src.
              const machine::Gpr base = instr.op == Opcode::kLea ? instr.src : instr.dst;
              set(instr.dst, state[static_cast<size_t>(base)]);
              break;
            }
            case Opcode::kAluRR:
              set(instr.dst, Join(state[static_cast<size_t>(instr.dst)],
                                  state[static_cast<size_t>(instr.src)]));
              break;
            case Opcode::kLoad:
              // Values loaded from memory have unknown provenance: the core
              // of DSA's conservatism.
              set(instr.dst, Abs::kUnknown);
              break;
            case Opcode::kRdpkru:
              set(instr.dst, Abs::kNotSafe);
              break;
            default:
              break;
          }
        }
      }
    }

    // Classification pass.
    for (int bi = 0; bi < static_cast<int>(f.blocks.size()); ++bi) {
      auto& block = f.blocks[static_cast<size_t>(bi)];
      for (int ii = 0; ii < static_cast<int>(block.instrs.size()); ++ii) {
        Instr& instr = block.instrs[static_cast<size_t>(ii)];
        if (!instr.IsMemoryAccess()) {
          continue;
        }
        ++result.total_mem_ops;
        const machine::Gpr addr_reg = instr.op == Opcode::kLoad ? instr.src : instr.dst;
        const Abs abs = state[static_cast<size_t>(addr_reg)];
        const bool may =
            abs == Abs::kSafePointer || (conservative && (abs == Abs::kUnknown || abs == Abs::kBottom));
        if (may) {
          ++result.may_access;
          result.refs.push_back(InstrRef{fi, bi, ii});
          if (annotate) {
            instr.flags |= kFlagSafeAccess;
          }
        }
      }
    }
  }
  return result;
}

}  // namespace memsentry::ir

// Textual IR dumping, for debugging passes and inspecting instrumentation.
#ifndef MEMSENTRY_SRC_IR_PRINTER_H_
#define MEMSENTRY_SRC_IR_PRINTER_H_

#include <string>

#include "src/ir/module.h"

namespace memsentry::ir {

// One instruction, e.g. "bndcu bnd0, r9  ; [instrumentation]".
std::string ToString(const Instr& instr);

// A whole function or module in a readable listing:
//   func @main {
//   bb0:
//     mov.imm r14, 0x480000000000
//     store [r14], rbx            ; [safe-access]
//     halt
//   }
std::string ToString(const Function& function);
std::string ToString(const Module& module);

}  // namespace memsentry::ir

#endif  // MEMSENTRY_SRC_IR_PRINTER_H_

#include "src/ir/pass.h"

#include "src/ir/verifier.h"

namespace memsentry::ir {

Status PassManager::Run(Module& module) {
  MEMSENTRY_RETURN_IF_ERROR(Verify(module));
  for (auto& pass : passes_) {
    MEMSENTRY_RETURN_IF_ERROR(pass->Run(module));
    module.Touch();  // invalidate any cached decoded form
    Status verified = Verify(module);
    if (!verified.ok()) {
      return InternalError("pass " + pass->name() + " broke the module: " + verified.ToString());
    }
    executed_.push_back(pass->name());
  }
  return OkStatus();
}

}  // namespace memsentry::ir

#include "src/ir/builder.h"

#include <cassert>

namespace memsentry::ir {

int Builder::CreateFunction(const std::string& name) {
  Function f;
  f.name = name;
  f.blocks.emplace_back();
  module_->functions.push_back(std::move(f));
  func_ = static_cast<int>(module_->functions.size()) - 1;
  block_ = 0;
  return func_;
}

int Builder::NewBlock() {
  auto& f = module_->functions[static_cast<size_t>(func_)];
  f.blocks.emplace_back();
  return static_cast<int>(f.blocks.size()) - 1;
}

void Builder::SetInsertPoint(int function, int block) {
  assert(function >= 0 && function < static_cast<int>(module_->functions.size()));
  assert(block >= 0 &&
         block < static_cast<int>(module_->functions[static_cast<size_t>(function)].blocks.size()));
  func_ = function;
  block_ = block;
}

Instr& Builder::Emit(const Instr& instr) {
  auto& instrs =
      module_->functions[static_cast<size_t>(func_)].blocks[static_cast<size_t>(block_)].instrs;
  instrs.push_back(instr);
  return instrs.back();
}

Instr& Builder::MovImm(machine::Gpr dst, uint64_t imm) {
  return Emit(Instr{.op = Opcode::kMovImm, .dst = dst, .imm = imm});
}

Instr& Builder::AddImm(machine::Gpr dst, int64_t imm) {
  return Emit(Instr{.op = Opcode::kAddImm, .dst = dst, .imm = static_cast<uint64_t>(imm)});
}

Instr& Builder::AndImm(machine::Gpr dst, uint64_t imm) {
  return Emit(Instr{.op = Opcode::kAndImm, .dst = dst, .imm = imm});
}

Instr& Builder::AluRR(machine::Gpr dst, machine::Gpr src, int alu_op) {
  return Emit(
      Instr{.op = Opcode::kAluRR, .dst = dst, .src = src, .imm = static_cast<uint64_t>(alu_op)});
}

Instr& Builder::Lea(machine::Gpr dst, machine::Gpr src, int64_t offset) {
  return Emit(
      Instr{.op = Opcode::kLea, .dst = dst, .src = src, .imm = static_cast<uint64_t>(offset)});
}

Instr& Builder::VecOp(int pressure_class) {
  return Emit(Instr{.op = Opcode::kVecOp, .imm = static_cast<uint64_t>(pressure_class)});
}

Instr& Builder::Load(machine::Gpr dst, machine::Gpr addr) {
  return Emit(Instr{.op = Opcode::kLoad, .dst = dst, .src = addr});
}

Instr& Builder::Store(machine::Gpr addr, machine::Gpr value) {
  return Emit(Instr{.op = Opcode::kStore, .dst = addr, .src = value});
}

Instr& Builder::Jmp(int block) { return Emit(Instr{.op = Opcode::kJmp, .target = block}); }

Instr& Builder::CondBr(int taken_block) {
  return Emit(Instr{.op = Opcode::kCondBr, .target = taken_block});
}

Instr& Builder::Call(int function) { return Emit(Instr{.op = Opcode::kCall, .target = function}); }

Instr& Builder::IndirectCall(machine::Gpr target_reg, uint32_t callsite_id) {
  return Emit(Instr{.op = Opcode::kIndirectCall, .src = target_reg, .imm = callsite_id});
}

Instr& Builder::Ret() { return Emit(Instr{.op = Opcode::kRet}); }

Instr& Builder::Halt() { return Emit(Instr{.op = Opcode::kHalt}); }

Instr& Builder::Syscall(uint64_t nr) { return Emit(Instr{.op = Opcode::kSyscall, .imm = nr}); }

Instr& Builder::Trap() { return Emit(Instr{.op = Opcode::kTrap}); }

}  // namespace memsentry::ir

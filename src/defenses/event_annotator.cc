#include "src/defenses/event_annotator.h"

#include "src/workloads/synth.h"

namespace memsentry::defenses {

Status EventAnnotatorPass::Run(ir::Module& module) {
  events_ = 0;
  for (auto& func : module.functions) {
    for (auto& block : func.blocks) {
      std::vector<ir::Instr> out;
      out.reserve(block.instrs.size());
      for (const ir::Instr& instr : block.instrs) {
        const bool match =
            (kind_ == EventKind::kIndirectBranch && instr.op == ir::Opcode::kIndirectCall) ||
            (kind_ == EventKind::kSyscall && instr.op == ir::Opcode::kSyscall);
        if (match) {
          // Consult the defense's metadata: one read of the safe region.
          out.push_back(ir::Instr{.op = ir::Opcode::kMovImm,
                                  .dst = workloads::kRegDefScratch,
                                  .imm = region_base_,
                                  .flags = ir::kFlagDefense});
          out.push_back(ir::Instr{.op = ir::Opcode::kLoad,
                                  .dst = workloads::kRegDefScratch,
                                  .src = workloads::kRegDefScratch,
                                  .flags = ir::kFlagDefense | ir::kFlagSafeAccess});
          ++events_;
        }
        out.push_back(instr);
      }
      block.instrs = std::move(out);
    }
  }
  return OkStatus();
}

}  // namespace memsentry::defenses

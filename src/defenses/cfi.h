// Coarse-grained CFI (paper Section 2.2): a valid-target table lives in a
// safe region; every indirect call checks that its target is in the table
// before transferring control, trapping otherwise. The table lookup is the
// MemSentry instrumentation point — if an attacker can rewrite the table,
// the CFI policy dissolves, which is exactly the scenario MemSentry hardens.
#ifndef MEMSENTRY_SRC_DEFENSES_CFI_H_
#define MEMSENTRY_SRC_DEFENSES_CFI_H_

#include "src/base/types.h"
#include "src/ir/pass.h"
#include "src/sim/process.h"

namespace memsentry::defenses {

class CfiPass : public ir::ModulePass {
 public:
  explicit CfiPass(VirtAddr table_base) : table_base_(table_base) {}

  std::string name() const override { return "coarse-cfi"; }
  Status Run(ir::Module& module) override;

  uint64_t checks_inserted() const { return checks_; }

 private:
  VirtAddr table_base_;
  uint64_t checks_ = 0;
};

// Populates the valid-target table: table[f] = 1 for every function that is
// a legitimate indirect-call target. Run after mapping the region and before
// Technique::Prepare (crypt encrypts afterwards, MPK closes the key, ...).
Status PopulateCfiTable(sim::Process& process, VirtAddr table_base,
                        const ir::Module& module);

}  // namespace memsentry::defenses

#endif  // MEMSENTRY_SRC_DEFENSES_CFI_H_

// CCFI-style cryptographically enforced control-flow integrity (paper
// Table 1 / Section 2.2): code pointers are sealed with AES-NI, and the
// sealing binds the pointer to its storage location, so an attacker can
// neither forge a sealed pointer (no key) nor replay one sealed value into a
// different slot (location mismatch). The AES keys live outside addressable
// memory — in this framework, conceptually in the reserved ymm upper halves,
// like the crypt technique's round keys.
#ifndef MEMSENTRY_SRC_DEFENSES_CCFI_H_
#define MEMSENTRY_SRC_DEFENSES_CCFI_H_

#include <array>
#include <cstdint>

#include "src/aes/aes128.h"
#include "src/base/status.h"
#include "src/base/types.h"

namespace memsentry::defenses {

struct SealedPointer {
  aes::Block bytes{};

  bool operator==(const SealedPointer&) const = default;
};

class CcfiSealer {
 public:
  explicit CcfiSealer(uint64_t key_seed = 0xccf1c0deULL);

  // Seals `code_ptr` for storage at address `slot`.
  SealedPointer Seal(uint64_t code_ptr, VirtAddr slot) const;

  // Unseals; fails if the sealed value was moved to a different slot or
  // tampered with (the decrypted location tag no longer matches).
  StatusOr<uint64_t> Unseal(const SealedPointer& sealed, VirtAddr slot) const;

 private:
  aes::KeySchedule keys_;
};

}  // namespace memsentry::defenses

#endif  // MEMSENTRY_SRC_DEFENSES_CCFI_H_

#include "src/defenses/aslr_guard.h"

namespace memsentry::defenses {

Status AgRandMap::Init() {
  for (uint64_t i = 0; i < entries_; ++i) {
    uint64_t key = 0;
    while (key == 0) {
      key = rng_.Next();  // a zero key would be the identity seal
    }
    MEMSENTRY_RETURN_IF_ERROR(process_->Poke64(table_base_ + i * 8, key));
  }
  return OkStatus();
}

StatusOr<uint64_t> AgRandMap::Encrypt(uint64_t entry, uint64_t code_ptr) const {
  if (entry >= entries_) {
    return OutOfRange("AG-RandMap entry out of range");
  }
  MEMSENTRY_ASSIGN_OR_RETURN(uint64_t key, process_->Peek64(table_base_ + entry * 8));
  return code_ptr ^ key;
}

}  // namespace memsentry::defenses

#include "src/defenses/registry.h"

#include <array>

namespace memsentry::defenses {
namespace {

// Paper Table 1, row for row.
const std::array<DefenseInfo, 13> kDefenses = {{
    {"CCFIR", true, false, true, false, "Indirect branches"},
    {"O-CFI", true, false, true, false, "Indirect branches"},
    {"Shadow Stack", true, true, true, false, "call/ret"},
    {"StackArmor", true, true, true, false, "call/ret"},
    {"TASR", true, true, true, false, "System I/O"},
    {"Isomeron", true, true, true, false, "Indirect branches"},
    {"Oxymoron", true, false, true, false, "Code page across edges"},
    {"CPI", true, true, true, false, "Memory accesses"},
    {"CCFI", false, true, false, true, "Memory accesses"},
    {"ASLR-Guard", true, true, true, false, "Memory accesses"},
    {"DieHard", false, true, true, false, "malloc/free"},
    {"Readactor", true, false, false, true, "Indirect branches"},
    {"LR2", true, false, false, true, "Mem. accesses & ind. branches"},
}};

// Defenses this repo actually implements and can attach at runtime, as
// opposed to the surveyed systems above.
const std::array<RuntimeDefenseInfo, 1> kRuntimeDefenses = {{
    {"MapGuard", "src/defenses/mmap_policy.h",
     "mmap-policy layer: W^X transition bans, guard pages around safe "
     "regions, ASLR entropy enforcement, poison-on-alloc"},
}};

}  // namespace

std::span<const DefenseInfo> SurveyedDefenses() { return kDefenses; }

std::span<const RuntimeDefenseInfo> RuntimeDefenses() { return kRuntimeDefenses; }

const RuntimeDefenseInfo* FindRuntimeDefense(const std::string& name) {
  for (const auto& d : kRuntimeDefenses) {
    if (d.name == name) {
      return &d;
    }
  }
  return nullptr;
}

const DefenseInfo* FindDefense(const std::string& name) {
  for (const auto& d : kDefenses) {
    if (d.name == name) {
      return &d;
    }
  }
  return nullptr;
}

}  // namespace memsentry::defenses

#include "src/defenses/mmap_policy.h"

#include <algorithm>
#include <array>

#include "src/machine/page_table.h"

namespace memsentry::defenses {

using sim::Errno;
using sim::Sysno;

MmapPolicy::MmapPolicy(sim::Process* process, const MmapPolicyConfig& config,
                       uint64_t seed)
    : process_(process), config_(config), rng_(seed) {}

void MmapPolicy::Attach(sim::Kernel* kernel) { kernel->SetMmapPolicy(this); }

Status MmapPolicy::InstallGuards() {
  if (!config_.guard_pages) {
    return OkStatus();
  }
  for (const auto& region : process_->safe_regions()) {
    const std::array<VirtAddr, 2> candidates = {
        PageAlignDown(region.base) - kPageSize,
        PageAlignUp(region.base + region.size),
    };
    for (const VirtAddr va : candidates) {
      if (IsGuardPage(va)) {
        continue;  // shared edge with an already-guarded neighbor
      }
      // Only claim the page if it is actually free; an occupied neighbor
      // (e.g. two adjacent regions) keeps its mapping.
      const auto free_run = process_->FindFreeRun(va, va + kPageSize, 1);
      if (!free_run.has_value() || *free_run != va) {
        continue;
      }
      const Status reserved = process_->ReserveRange(va, 1);
      if (!reserved.ok()) {
        return reserved;
      }
      guard_pages_.push_back(va);
      ++stats_.guard_pages_installed;
    }
  }
  return OkStatus();
}

bool MmapPolicy::IsGuardPage(VirtAddr va) const {
  const VirtAddr page = PageAlignDown(va);
  return std::find(guard_pages_.begin(), guard_pages_.end(), page) !=
         guard_pages_.end();
}

std::optional<Errno> MmapPolicy::FilterSyscall(Sysno nr, uint64_t a0,
                                               uint64_t a1) {
  switch (nr) {
    case Sysno::kMmap: {
      // a0 = hint (0 = kernel chooses). Attacker-chosen placements defeat
      // both ASLR and guard pages, so MapGuard refuses MAP_FIXED outright.
      if (config_.ban_fixed_address && a0 != 0) {
        ++stats_.refused_fixed;
        return Errno::kEPERM;
      }
      return std::nullopt;
    }
    case Sysno::kMprotect: {
      // a0 = page-aligned addr, a1 = prot. Guard pages may not be
      // re-protected into existence.
      if (IsGuardPage(a0)) {
        ++stats_.refused_guard_op;
        return Errno::kEPERM;
      }
      const bool want_write = (a1 & 2) != 0;
      const bool want_exec = (a1 & sim::kProtExec) != 0;
      if (config_.ban_rwx && want_write && want_exec) {
        ++stats_.refused_rwx;
        return Errno::kEACCES;
      }
      if (config_.ban_wx_transitions && (want_write || want_exec)) {
        const auto pte = process_->page_table().ReadPte(PageAlignDown(a0));
        if (pte.ok() && (*pte & machine::kPtePresent) != 0) {
          const bool was_write = machine::PageTable::PteWritable(*pte);
          const bool was_exec = !machine::PageTable::PteNx(*pte);
          // Once-writable memory never becomes executable and vice versa:
          // the classic W^X lifetime rule, which closes the
          // write-shellcode-then-flip-to-exec path.
          if ((was_write && want_exec && !was_exec) ||
              (was_exec && want_write && !was_write)) {
            ++stats_.refused_transition;
            return Errno::kEACCES;
          }
        }
      }
      return std::nullopt;
    }
    case Sysno::kMunmap: {
      // a0 = addr, a1 = length. Unmapping a guard hole would let a later
      // mmap fill it; refuse any overlap.
      const VirtAddr lo = PageAlignDown(a0);
      const VirtAddr hi = PageAlignUp(a0 + (a1 == 0 ? 1 : a1));
      for (VirtAddr va = lo; va < hi; va += kPageSize) {
        if (IsGuardPage(va)) {
          ++stats_.refused_guard_op;
          return Errno::kEPERM;
        }
      }
      return std::nullopt;
    }
    default:
      return std::nullopt;
  }
}

std::optional<VirtAddr> MmapPolicy::ChoosePlacement(uint64_t pages) {
  if (!config_.randomize_placement || pages == 0) {
    return std::nullopt;
  }
  // Draw a page-granular candidate with the configured entropy, then take
  // the lowest free run at or above it (retrying from the area base keeps
  // the call infallible when the draw lands near the top).
  const uint64_t span_pages = (sim::kStackTop - sim::kMmapAreaBase) / kPageSize;
  const int bits = std::clamp(config_.aslr_entropy_bits, 1, 40);
  const uint64_t entropy_pages =
      std::min(span_pages, uint64_t{1} << bits);
  const VirtAddr candidate =
      sim::kMmapAreaBase + rng_.Below(entropy_pages) * kPageSize;
  auto run = process_->FindFreeRun(candidate, sim::kStackTop, pages);
  if (!run.has_value()) {
    run = process_->FindFreeRun(sim::kMmapAreaBase, sim::kStackTop, pages);
  }
  if (run.has_value()) {
    ++stats_.randomized_placements;
  }
  return run;
}

void MmapPolicy::OnMapped(VirtAddr base, uint64_t pages) {
  if (!config_.poison_on_alloc) {
    return;
  }
  std::array<uint8_t, kPageSize> fill;
  fill.fill(config_.poison_byte);
  for (uint64_t i = 0; i < pages; ++i) {
    // Fresh kernel mappings are always pokeable; a failure here would mean
    // the mapping the kernel just reported did not happen.
    (void)process_->PokeBytes(base + i * kPageSize, fill.data(), fill.size());
  }
  stats_.poisoned_pages += pages;
}

}  // namespace memsentry::defenses

#include "src/defenses/safe_alloc.h"

namespace memsentry::defenses {

Status SafeAllocator::Init() {
  for (uint64_t i = 0; i < slots_; ++i) {
    MEMSENTRY_RETURN_IF_ERROR(SetSlotState(i, 0));
  }
  live_ = 0;
  return OkStatus();
}

StatusOr<VirtAddr> SafeAllocator::Alloc() {
  if (live_ * 2 >= slots_) {
    // DieHard requires an M-factor of over-provisioning for its probabilistic
    // guarantees; refuse to fill past one half.
    return ResourceExhausted("heap beyond the probabilistic safety threshold");
  }
  for (;;) {
    const uint64_t index = rng_.Below(slots_);
    MEMSENTRY_ASSIGN_OR_RETURN(uint64_t state, SlotState(index));
    if (state == 0) {
      MEMSENTRY_RETURN_IF_ERROR(SetSlotState(index, 1));
      ++live_;
      return heap_base_ + index * slot_size_;
    }
  }
}

Status SafeAllocator::Free(VirtAddr ptr) {
  if (ptr < heap_base_ || (ptr - heap_base_) % slot_size_ != 0) {
    return InvalidArgument("free of a pointer the allocator never produced");
  }
  const uint64_t index = (ptr - heap_base_) / slot_size_;
  if (index >= slots_) {
    return InvalidArgument("free of a pointer outside the heap");
  }
  MEMSENTRY_ASSIGN_OR_RETURN(uint64_t state, SlotState(index));
  if (state == 0) {
    return FailedPrecondition("double free detected");
  }
  MEMSENTRY_RETURN_IF_ERROR(SetSlotState(index, 0));
  --live_;
  return OkStatus();
}

}  // namespace memsentry::defenses

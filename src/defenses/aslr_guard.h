// ASLR-Guard's AG-RandMap (paper Section 2.2): a table of per-entry xor keys
// in a safe region encrypts code pointers. Unlike PointerGuard's single key,
// each entry gets its own key, so one leaked plaintext/ciphertext pair does
// not unlock the rest — provided the table itself is isolated against both
// reads and writes, which is MemSentry's job.
#ifndef MEMSENTRY_SRC_DEFENSES_ASLR_GUARD_H_
#define MEMSENTRY_SRC_DEFENSES_ASLR_GUARD_H_

#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/base/types.h"
#include "src/sim/process.h"

namespace memsentry::defenses {

class AgRandMap {
 public:
  AgRandMap(sim::Process* process, VirtAddr table_base, uint64_t entries,
            uint64_t seed = 0xa51a4ba5ULL)
      : process_(process), table_base_(table_base), entries_(entries), rng_(seed) {}

  static constexpr uint64_t TableBytes(uint64_t entries) { return entries * 8; }

  // Fills the key table. Call before the isolation technique's Prepare().
  Status Init();

  // Encrypts/decrypts a code pointer with entry's key (runs inside annotated
  // defense code, hence raw table access).
  StatusOr<uint64_t> Encrypt(uint64_t entry, uint64_t code_ptr) const;
  StatusOr<uint64_t> Decrypt(uint64_t entry, uint64_t sealed) const {
    return Encrypt(entry, sealed);  // xor is an involution
  }

  uint64_t entries() const { return entries_; }
  VirtAddr table_base() const { return table_base_; }

 private:
  sim::Process* process_;
  VirtAddr table_base_;
  uint64_t entries_;
  Rng rng_;
};

}  // namespace memsentry::defenses

#endif  // MEMSENTRY_SRC_DEFENSES_ASLR_GUARD_H_

#include "src/defenses/cfi.h"

#include "src/workloads/synth.h"

namespace memsentry::defenses {
namespace {

using workloads::kRegConst8;
using workloads::kRegDefScratch;
using workloads::kRegDefTable;

ir::Instr Def(ir::Instr instr, bool safe = false) {
  instr.flags |= ir::kFlagDefense | (safe ? ir::kFlagSafeAccess : 0);
  return instr;
}

}  // namespace

Status CfiPass::Run(ir::Module& module) {
  checks_ = 0;
  // Entry setup: materialize the table base and the index scale once.
  {
    auto& instrs = module.EntryFunction().blocks[0].instrs;
    const std::vector<ir::Instr> setup = {
        Def(ir::Instr{.op = ir::Opcode::kMovImm, .dst = kRegDefTable, .imm = table_base_}),
        Def(ir::Instr{.op = ir::Opcode::kMovImm, .dst = kRegConst8, .imm = 8}),
    };
    instrs.insert(instrs.begin(), setup.begin(), setup.end());
  }
  for (auto& func : module.functions) {
    for (auto& block : func.blocks) {
      std::vector<ir::Instr> out;
      out.reserve(block.instrs.size());
      for (const ir::Instr& instr : block.instrs) {
        if (instr.op == ir::Opcode::kIndirectCall) {
          // rbp = table[target]; trap unless it equals 1.
          const std::vector<ir::Instr> check = {
              Def(ir::Instr{.op = ir::Opcode::kLea, .dst = kRegDefScratch, .src = instr.src}),
              Def(ir::Instr{.op = ir::Opcode::kAluRR,
                            .dst = kRegDefScratch,
                            .src = kRegConst8,
                            .imm = 3 /* mul */}),
              Def(ir::Instr{.op = ir::Opcode::kAluRR,
                            .dst = kRegDefScratch,
                            .src = kRegDefTable,
                            .imm = 0 /* add */}),
              Def(ir::Instr{.op = ir::Opcode::kLoad,
                            .dst = kRegDefScratch,
                            .src = kRegDefScratch},
                  /*safe=*/true),
              Def(ir::Instr{.op = ir::Opcode::kAddImm,
                            .dst = kRegDefScratch,
                            .imm = static_cast<uint64_t>(-1)}),
              Def(ir::Instr{.op = ir::Opcode::kTrapIf}),
          };
          out.insert(out.end(), check.begin(), check.end());
          ++checks_;
        }
        out.push_back(instr);
      }
      block.instrs = std::move(out);
    }
  }
  return OkStatus();
}

Status PopulateCfiTable(sim::Process& process, VirtAddr table_base, const ir::Module& module) {
  for (size_t f = 0; f < module.functions.size(); ++f) {
    // Every non-entry function is a legitimate indirect target; the entry is
    // not (nobody may "call main").
    const uint64_t valid = static_cast<int>(f) != module.entry ? 1 : 0;
    MEMSENTRY_RETURN_IF_ERROR(process.Poke64(table_base + f * 8, valid));
  }
  return OkStatus();
}

}  // namespace memsentry::defenses

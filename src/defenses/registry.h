// The paper's Table 1: a survey of defense systems that depend on memory
// isolation — what they protect against, whether their isolation is
// probabilistic (information hiding) or deterministic, and where they insert
// code. Used by bench/table1_defenses and the advisor examples.
#ifndef MEMSENTRY_SRC_DEFENSES_REGISTRY_H_
#define MEMSENTRY_SRC_DEFENSES_REGISTRY_H_

#include <span>
#include <string>

namespace memsentry::defenses {

struct DefenseInfo {
  std::string name;
  bool vuln_read = false;    // the safe region must not be readable
  bool vuln_write = false;   // the safe region must not be writable
  bool probabilistic = false;
  bool deterministic = false;
  std::string instrumentation_points;
};

std::span<const DefenseInfo> SurveyedDefenses();

const DefenseInfo* FindDefense(const std::string& name);

// Runtime defenses implemented in this repo and attachable to a simulated
// process. Deliberately a separate table from the paper's Table 1 survey
// (which is pinned row-for-row by the table1_defenses fidelity bench).
struct RuntimeDefenseInfo {
  std::string name;
  std::string header;   // where the implementation lives
  std::string summary;  // one-line description of the enforcement
};

std::span<const RuntimeDefenseInfo> RuntimeDefenses();

const RuntimeDefenseInfo* FindRuntimeDefense(const std::string& name);

}  // namespace memsentry::defenses

#endif  // MEMSENTRY_SRC_DEFENSES_REGISTRY_H_

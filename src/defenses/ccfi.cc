#include "src/defenses/ccfi.h"

#include <cstring>

#include "src/base/rng.h"

namespace memsentry::defenses {

CcfiSealer::CcfiSealer(uint64_t key_seed) {
  Rng rng(key_seed);
  aes::Block key;
  for (auto& byte : key) {
    byte = static_cast<uint8_t>(rng.Next());
  }
  keys_ = aes::ExpandKey(key);
}

SealedPointer CcfiSealer::Seal(uint64_t code_ptr, VirtAddr slot) const {
  aes::Block plain;
  std::memcpy(plain.data(), &code_ptr, 8);
  std::memcpy(plain.data() + 8, &slot, 8);
  SealedPointer sealed;
  sealed.bytes = aes::EncryptBlock(plain, keys_);
  return sealed;
}

StatusOr<uint64_t> CcfiSealer::Unseal(const SealedPointer& sealed, VirtAddr slot) const {
  const aes::Block plain = aes::DecryptBlock(sealed.bytes, keys_);
  uint64_t ptr = 0;
  VirtAddr tagged_slot = 0;
  std::memcpy(&ptr, plain.data(), 8);
  std::memcpy(&tagged_slot, plain.data() + 8, 8);
  if (tagged_slot != slot) {
    return PermissionDenied("CCFI: sealed pointer moved or forged (location tag mismatch)");
  }
  return ptr;
}

}  // namespace memsentry::defenses

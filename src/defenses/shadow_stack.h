// A real shadow stack defense (paper Sections 2.2/4): every function
// prologue pushes the return address (exposed in r11 by the call) onto a
// shadow stack in a safe region; every epilogue pops it and traps if the
// in-memory return address was tampered with. The shadow accesses carry
// kFlagSafeAccess — they are MemSentry's instrumentation points.
#ifndef MEMSENTRY_SRC_DEFENSES_SHADOW_STACK_H_
#define MEMSENTRY_SRC_DEFENSES_SHADOW_STACK_H_

#include "src/base/types.h"
#include "src/ir/pass.h"

namespace memsentry::defenses {

class ShadowStackPass : public ir::ModulePass {
 public:
  explicit ShadowStackPass(VirtAddr shadow_base) : shadow_base_(shadow_base) {}

  std::string name() const override { return "shadow-stack"; }
  Status Run(ir::Module& module) override;

  uint64_t prologues() const { return prologues_; }
  uint64_t epilogues() const { return epilogues_; }

 private:
  VirtAddr shadow_base_;
  uint64_t prologues_ = 0;
  uint64_t epilogues_ = 0;
};

}  // namespace memsentry::defenses

#endif  // MEMSENTRY_SRC_DEFENSES_SHADOW_STACK_H_

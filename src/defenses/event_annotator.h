// Generic defense stand-in for Figures 5 and 6: inserts one safe-region
// access (flagged as a MemSentry instrumentation point) at every indirect
// branch, syscall, or allocator call — modeling CFI / layout randomization /
// heap-protection defenses that consult their metadata at those events.
// Figure 4's call/ret scenario uses the real ShadowStackPass instead.
#ifndef MEMSENTRY_SRC_DEFENSES_EVENT_ANNOTATOR_H_
#define MEMSENTRY_SRC_DEFENSES_EVENT_ANNOTATOR_H_

#include "src/base/types.h"
#include "src/ir/pass.h"

namespace memsentry::defenses {

enum class EventKind {
  kIndirectBranch,  // CFI variants, Isomeron/Oxymoron-style randomization
  kSyscall,         // TASR-style rerandomization at system I/O
};

class EventAnnotatorPass : public ir::ModulePass {
 public:
  EventAnnotatorPass(EventKind kind, VirtAddr region_base)
      : kind_(kind), region_base_(region_base) {}

  std::string name() const override { return "event-annotator"; }
  Status Run(ir::Module& module) override;

  uint64_t events_annotated() const { return events_; }

 private:
  EventKind kind_;
  VirtAddr region_base_;
  uint64_t events_ = 0;
};

}  // namespace memsentry::defenses

#endif  // MEMSENTRY_SRC_DEFENSES_EVENT_ANNOTATOR_H_

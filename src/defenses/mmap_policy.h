// A MapGuard-style mmap-policy defense: a kernel-attached filter over the
// memory-management syscalls that enforces W^X (no RWX mappings, no
// writable<->executable transitions), bans attacker-chosen fixed placements,
// randomizes kernel-chosen placements with configurable entropy, installs
// guard pages around every safe region, and poisons fresh mappings so
// uninitialized reads are recognizable. Modeled on MapGuard's LD_PRELOAD
// interposition of mmap/mprotect; here the interposition point is
// sim::Kernel's MmapPolicyHook, so refusals surface as ordinary errnos.
//
// The guard pages are the load-bearing piece for information hiding: they
// sit adjacent to the region, so the allocation oracle's size sanity check
// (derived hole == region size) sees region+2 pages and rejects its own
// answer, and probe sweeps fault before reaching the region.
#ifndef MEMSENTRY_SRC_DEFENSES_MMAP_POLICY_H_
#define MEMSENTRY_SRC_DEFENSES_MMAP_POLICY_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/base/types.h"
#include "src/sim/kernel.h"
#include "src/sim/process.h"

namespace memsentry::defenses {

struct MmapPolicyConfig {
  bool ban_rwx = true;              // refuse prot with write+exec together
  bool ban_wx_transitions = true;   // refuse W->X and X->W re-protections
  bool ban_fixed_address = true;    // refuse attacker-chosen mmap hints
  bool randomize_placement = true;  // ASLR for kernel-chosen placements
  int aslr_entropy_bits = 28;       // page-granular entropy of placements
  bool guard_pages = true;          // unmapped pages around safe regions
  bool poison_on_alloc = true;      // fill fresh mappings with poison_byte
  uint8_t poison_byte = 0xde;

  // Full enforcement (the gated configuration).
  static MmapPolicyConfig Strict() { return MmapPolicyConfig{}; }
  // Everything off — the control configuration the weakened campaigns run.
  static MmapPolicyConfig Off() {
    MmapPolicyConfig c;
    c.ban_rwx = false;
    c.ban_wx_transitions = false;
    c.ban_fixed_address = false;
    c.randomize_placement = false;
    c.guard_pages = false;
    c.poison_on_alloc = false;
    return c;
  }
};

class MmapPolicy : public sim::MmapPolicyHook {
 public:
  struct Stats {
    uint64_t refused_rwx = 0;
    uint64_t refused_transition = 0;
    uint64_t refused_fixed = 0;
    uint64_t refused_guard_op = 0;
    uint64_t randomized_placements = 0;
    uint64_t poisoned_pages = 0;
    uint64_t guard_pages_installed = 0;
  };

  // `seed` drives placement randomization only; everything else is
  // deterministic filtering.
  MmapPolicy(sim::Process* process, const MmapPolicyConfig& config, uint64_t seed);

  // Attaches this policy to the kernel (kernel->SetMmapPolicy(this)). The
  // policy must outlive the kernel's use of it.
  void Attach(sim::Kernel* kernel);

  // Reserves one unmapped guard page immediately below and above every
  // currently registered safe region (skipping pages that are not free).
  // No-op when config.guard_pages is off.
  Status InstallGuards();

  bool IsGuardPage(VirtAddr va) const;

  // sim::MmapPolicyHook:
  std::optional<sim::Errno> FilterSyscall(sim::Sysno nr, uint64_t a0,
                                          uint64_t a1) override;
  std::optional<VirtAddr> ChoosePlacement(uint64_t pages) override;
  void OnMapped(VirtAddr base, uint64_t pages) override;

  const Stats& stats() const { return stats_; }
  const MmapPolicyConfig& config() const { return config_; }

 private:
  sim::Process* process_;
  MmapPolicyConfig config_;
  Rng rng_;
  Stats stats_;
  std::vector<VirtAddr> guard_pages_;  // page-aligned bases, unmapped holes
};

}  // namespace memsentry::defenses

#endif  // MEMSENTRY_SRC_DEFENSES_MMAP_POLICY_H_

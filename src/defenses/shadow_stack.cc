#include "src/defenses/shadow_stack.h"

#include "src/workloads/synth.h"

namespace memsentry::defenses {
namespace {

using workloads::kRegDefScratch;
using workloads::kRegScratch;
using workloads::kRegShadowPtr;

ir::Instr Def(ir::Instr instr, bool safe = false) {
  instr.flags |= ir::kFlagDefense | (safe ? ir::kFlagSafeAccess : 0);
  return instr;
}

}  // namespace

Status ShadowStackPass::Run(ir::Module& module) {
  prologues_ = 0;
  epilogues_ = 0;
  for (int fi = 0; fi < static_cast<int>(module.functions.size()); ++fi) {
    ir::Function& func = module.functions[static_cast<size_t>(fi)];
    // Prologue: push r11 (the just-written return address) onto the shadow
    // stack. Inserted at the top of the entry block.
    {
      auto& instrs = func.blocks[0].instrs;
      std::vector<ir::Instr> prologue = {
          Def(ir::Instr{.op = ir::Opcode::kStore,
                        .dst = kRegShadowPtr,
                        .src = machine::Gpr::kR11},
              /*safe=*/true),
          Def(ir::Instr{.op = ir::Opcode::kLea,
                        .dst = kRegShadowPtr,
                        .src = kRegShadowPtr,
                        .imm = 8}),
      };
      instrs.insert(instrs.begin(), prologue.begin(), prologue.end());
      ++prologues_;
    }
    // Entry function: initialize the shadow pointer first of all.
    if (fi == module.entry) {
      auto& instrs = func.blocks[0].instrs;
      instrs.insert(instrs.begin(), Def(ir::Instr{.op = ir::Opcode::kMovImm,
                                                  .dst = kRegShadowPtr,
                                                  .imm = shadow_base_}));
    }
    // Epilogues: before every ret, pop the shadow entry and compare it with
    // the in-memory return address the ret is about to consume.
    for (auto& block : func.blocks) {
      std::vector<ir::Instr> out;
      out.reserve(block.instrs.size());
      for (const ir::Instr& instr : block.instrs) {
        if (instr.op == ir::Opcode::kRet) {
          const std::vector<ir::Instr> epilogue = {
              Def(ir::Instr{.op = ir::Opcode::kLea,
                            .dst = kRegShadowPtr,
                            .src = kRegShadowPtr,
                            .imm = static_cast<uint64_t>(-8)}),
              Def(ir::Instr{.op = ir::Opcode::kLoad,
                            .dst = kRegDefScratch,
                            .src = kRegShadowPtr},
                  /*safe=*/true),
              Def(ir::Instr{.op = ir::Opcode::kLoad,
                            .dst = kRegScratch,
                            .src = machine::Gpr::kRsp}),
              Def(ir::Instr{.op = ir::Opcode::kAluRR,
                            .dst = kRegDefScratch,
                            .src = kRegScratch,
                            .imm = 2 /* xor: zero iff equal */}),
              Def(ir::Instr{.op = ir::Opcode::kTrapIf}),
          };
          out.insert(out.end(), epilogue.begin(), epilogue.end());
          ++epilogues_;
        }
        out.push_back(instr);
      }
      block.instrs = std::move(out);
    }
  }
  return OkStatus();
}

}  // namespace memsentry::defenses

// DieHard-style probabilistically safe allocator (paper Section 2.2):
// allocations land in random slots of an over-provisioned heap, and the
// allocation bitmap — the metadata an attacker would corrupt to turn the
// heap against itself — lives in a safe region. The allocator entry points
// are the MemSentry instrumentation points (Table 2: "Allocator calls").
#ifndef MEMSENTRY_SRC_DEFENSES_SAFE_ALLOC_H_
#define MEMSENTRY_SRC_DEFENSES_SAFE_ALLOC_H_

#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/base/types.h"
#include "src/sim/process.h"

namespace memsentry::defenses {

class SafeAllocator {
 public:
  // heap: `slots` chunks of `slot_size` bytes at heap_base (plain memory).
  // meta_base: safe region holding one 64-bit word per slot.
  SafeAllocator(sim::Process* process, VirtAddr heap_base, VirtAddr meta_base, uint64_t slots,
                uint64_t slot_size, uint64_t seed = 0xd1e4a4dULL)
      : process_(process),
        heap_base_(heap_base),
        meta_base_(meta_base),
        slots_(slots),
        slot_size_(slot_size),
        rng_(seed) {}

  static constexpr uint64_t MetadataBytes(uint64_t slots) { return slots * 8; }

  // Zeroes the bitmap. Call before the isolation technique's Prepare().
  Status Init();

  // Randomized allocation: probes random slots until a free one is found
  // (the heap is kept at most half full, so expected probes are < 2).
  StatusOr<VirtAddr> Alloc();
  Status Free(VirtAddr ptr);

  uint64_t live() const { return live_; }
  uint64_t slots() const { return slots_; }

  // Allocator-internal metadata access (conceptually running inside the
  // annotated allocator entry points, hence the raw access).
  StatusOr<uint64_t> SlotState(uint64_t index) const {
    return process_->Peek64(meta_base_ + index * 8);
  }

 private:
  Status SetSlotState(uint64_t index, uint64_t state) {
    return process_->Poke64(meta_base_ + index * 8, state);
  }

  sim::Process* process_;
  VirtAddr heap_base_;
  VirtAddr meta_base_;
  uint64_t slots_;
  uint64_t slot_size_;
  uint64_t live_ = 0;
  Rng rng_;
};

}  // namespace memsentry::defenses

#endif  // MEMSENTRY_SRC_DEFENSES_SAFE_ALLOC_H_

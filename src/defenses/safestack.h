// SafeStack (paper Section 4/6.2): the regular stack — holding return
// addresses and provably-safe scalars — becomes the *safe* stack, relocated
// into the sensitive partition; unsafe buffers live elsewhere. SafeStack
// itself adds no overhead; MemSentry hardens it by instrumenting all explicit
// memory writes (address-based, write-only mode) while the implicit call/ret
// pushes — not expressible by attacker-controlled code — remain exempt.
#ifndef MEMSENTRY_SRC_DEFENSES_SAFESTACK_H_
#define MEMSENTRY_SRC_DEFENSES_SAFESTACK_H_

#include "src/base/types.h"
#include "src/core/safe_region.h"
#include "src/sim/process.h"

namespace memsentry::defenses {

class SafeStackDefense {
 public:
  // Allocates the safe stack as a safe region and points rsp at its top.
  // Returns the region base.
  static StatusOr<VirtAddr> Install(sim::Process& process, core::SafeRegionAllocator& allocator,
                                    uint64_t pages = 16) {
    MEMSENTRY_ASSIGN_OR_RETURN(sim::SafeRegion * region,
                               allocator.Alloc("safestack", pages * kPageSize));
    process.regs()[machine::Gpr::kRsp] = region->base + region->size;
    return region->base;
  }
};

}  // namespace memsentry::defenses

#endif  // MEMSENTRY_SRC_DEFENSES_SAFESTACK_H_

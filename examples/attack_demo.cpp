// The paper's Section 1 narrative as a runnable demo: an attacker locates a
// CPI-style hidden safe region with an allocation oracle in a few dozen
// probes and owns it — then the same attack is replayed against every
// deterministic technique, where even the *known* address is useless.
#include <cstdio>

#include "src/attacks/harness.h"
#include "src/attacks/primitives.h"
#include "src/attacks/strategies.h"
#include "src/core/memsentry.h"

using namespace memsentry;

int main() {
  // Act 1: information hiding falls.
  {
    sim::Machine machine;
    sim::Process process(&machine);
    (void)process.SetupStack();
    core::MemSentryConfig config;
    config.technique = core::TechniqueKind::kInfoHide;
    config.placement_seed = 0xA11CE;
    core::MemSentry ms(&process, config);
    auto region = ms.allocator().Alloc("cpi-safe-region", 8 * kPageSize);
    (void)process.Poke64(region.value()->base, 0x5EC4E7);
    (void)ms.PrepareRuntime();
    std::printf("[hidden] region randomized to 0x%llx (attacker does not know this)\n",
                static_cast<unsigned long long>(region.value()->base));

    auto located = attacks::AllocationOracleAttack(process, 8);
    std::printf("[hidden] allocation oracle: %s after %llu probes",
                located.found ? "FOUND" : "failed",
                static_cast<unsigned long long>(located.probes));
    if (located.found) {
      std::printf(" -> 0x%llx\n", static_cast<unsigned long long>(located.base));
      attacks::ArbitraryRw rw(&process, &ms.technique());
      auto secret = rw.Read(located.base);
      std::printf("[hidden] arbitrary read at the located address: 0x%llx — %s\n",
                  static_cast<unsigned long long>(secret.value()),
                  secret.value() == 0x5EC4E7 ? "secret LEAKED, defense bypassed"
                                             : "miss");
    } else {
      std::printf("\n");
    }
  }

  // Act 2: deterministic isolation holds, address handed to the attacker.
  std::printf("\n[deterministic] same attack, address given away for free:\n");
  for (auto kind : {core::TechniqueKind::kSfi, core::TechniqueKind::kMpx,
                    core::TechniqueKind::kMpk, core::TechniqueKind::kVmfunc,
                    core::TechniqueKind::kCrypt, core::TechniqueKind::kSgx}) {
    const auto report = attacks::RunAttackScenario(kind);
    std::printf("  %-8s read: %-10s write: %-10s %s\n", core::TechniqueKindName(kind),
                attacks::OutcomeName(report.read_outcome),
                attacks::OutcomeName(report.write_outcome), report.detail.c_str());
  }
  std::printf("\nNo need to hide: what cannot be touched need not be hidden.\n");
  return 0;
}

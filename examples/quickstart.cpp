// Quickstart: protect a safe region with MemSentry in a few lines.
//
//   1. create a simulated machine + process,
//   2. pick a technique and allocate a safe region (saferegion_alloc),
//   3. build a program whose annotated instructions may touch the region,
//   4. Protect() — runtime preparation + the MemSentry instrumentation pass,
//   5. run: the legitimate access works; an attacker's primitive faults.
#include <cstdio>

#include "src/core/memsentry.h"
#include "src/ir/builder.h"
#include "src/sim/executor.h"

using namespace memsentry;

int main() {
  // 1. Machine and process.
  sim::Machine machine;
  sim::Process process(&machine);
  (void)process.SetupStack();

  // 2. MemSentry with MPK (swap the enum to try any other technique).
  core::MemSentryConfig config;
  config.technique = core::TechniqueKind::kMpk;
  core::MemSentry memsentry(&process, config);
  auto region = memsentry.allocator().Alloc("secrets", 4096);
  if (!region.ok()) {
    std::printf("allocation failed: %s\n", region.status().ToString().c_str());
    return 1;
  }
  const VirtAddr base = region.value()->base;
  std::printf("safe region at 0x%llx (%s)\n", static_cast<unsigned long long>(base),
              core::TechniqueKindName(config.technique));

  // 3. A program that writes a secret into the region. The store carries the
  //    saferegion_access() annotation, so MemSentry will wrap it in a domain
  //    switch (or exempt it from masking, for address-based techniques).
  ir::Module module;
  ir::Builder b(&module);
  b.CreateFunction("main");
  b.MovImm(machine::Gpr::kRbx, 0xC0FFEE);
  b.MovImm(machine::Gpr::kR14, base);
  core::MarkSafeRegionAccess(b.Store(machine::Gpr::kR14, machine::Gpr::kRbx));
  b.Halt();

  // 4. Prepare the runtime state and instrument the module.
  if (Status s = memsentry.Protect(module); !s.ok()) {
    std::printf("protect failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 5a. The legitimate (annotated) access succeeds.
  sim::Executor executor(&process, &module);
  auto result = executor.Run();
  std::printf("program: %s, region word = 0x%llx\n",
              result.halted ? "completed" : "faulted",
              static_cast<unsigned long long>(process.Peek64(base).value()));

  // 5b. The attacker's arbitrary-read primitive — with the address! — fails.
  auto leak = memsentry.technique().AttackerRead(process, base);
  if (leak.ok()) {
    std::printf("attacker read 0x%llx (!!)\n", static_cast<unsigned long long>(leak.value()));
  } else {
    std::printf("attacker read -> %s: no need to hide.\n", leak.fault().ToString().c_str());
  }
  return 0;
}

// Protecting sensitive user data (paper Section 4, "sensitive non-control
// data"): a 16-byte signing key kept encrypted at rest with the crypt
// technique — the advisor's pick for tiny, rarely-touched regions — and an
// ASLR-Guard-style sealed pointer table on top of it.
#include <cstdio>
#include <cstring>

#include "src/core/advisor.h"
#include "src/core/memsentry.h"
#include "src/defenses/aslr_guard.h"
#include "src/ir/builder.h"
#include "src/sim/executor.h"

using namespace memsentry;

int main() {
  // Ask the advisor first (Section 6.3 logic).
  core::ScenarioSpec spec;
  spec.point = core::InstrumentationPoint::kMemAccess;
  spec.events_per_kinstr = 0.1;
  spec.region_bytes = 16;
  spec.needs_confidentiality = true;
  const core::Recommendation rec = core::Advise(spec);
  std::printf("advisor: use %s — %s\n\n", core::TechniqueKindName(rec.primary),
              rec.rationale.c_str());

  sim::Machine machine;
  sim::Process process(&machine);
  (void)process.SetupStack();
  core::MemSentryConfig config;
  config.technique = rec.primary;  // crypt
  core::MemSentry memsentry(&process, config);
  auto region = memsentry.allocator().Alloc("signing-key", 16);
  const VirtAddr key_addr = region.value()->base;

  // Install the key, then Prepare() encrypts it in place.
  const uint64_t key_lo = 0x0123456789abcdefULL;
  const uint64_t key_hi = 0xfedcba9876543210ULL;
  (void)process.Poke64(key_addr, key_lo);
  (void)process.Poke64(key_addr + 8, key_hi);
  (void)memsentry.PrepareRuntime();
  std::printf("key at rest: 0x%016llx%016llx (ciphertext)\n",
              static_cast<unsigned long long>(process.Peek64(key_addr + 8).value()),
              static_cast<unsigned long long>(process.Peek64(key_addr).value()));

  // The application "signs" something: the annotated loads read the key
  // between the decrypt/re-encrypt pair MemSentry inserts.
  ir::Module module;
  ir::Builder b(&module);
  b.CreateFunction("sign");
  b.MovImm(machine::Gpr::kR14, key_addr);
  core::MarkSafeRegionAccess(b.Load(machine::Gpr::kRbx, machine::Gpr::kR14));
  b.Lea(machine::Gpr::kR14, machine::Gpr::kR14, 8);
  // Note: the Lea breaks the annotated run; real deployments keep the whole
  // sequence contiguous so one decrypt/encrypt pair covers it.
  core::MarkSafeRegionAccess(b.Load(machine::Gpr::kRsi, machine::Gpr::kR14));
  b.Halt();
  (void)memsentry.Protect(module);
  auto result = sim::Executor(&process, &module).Run();
  std::printf("application read key: lo=0x%llx hi=0x%llx (%s)\n",
              static_cast<unsigned long long>(process.regs()[machine::Gpr::kRbx]),
              static_cast<unsigned long long>(process.regs()[machine::Gpr::kRsi]),
              process.regs()[machine::Gpr::kRbx] == key_lo &&
                      process.regs()[machine::Gpr::kRsi] == key_hi
                  ? "correct plaintext"
                  : "WRONG");

  // The attacker's arbitrary read sees only ciphertext.
  auto leak = memsentry.technique().AttackerRead(process, key_addr);
  std::printf("attacker read: 0x%llx -> %s\n",
              leak.ok() ? static_cast<unsigned long long>(leak.value()) : 0ULL,
              leak.ok() && leak.value() == key_lo ? "LEAKED" : "ciphertext only, key safe");

  // Bonus: an AG-RandMap sealing code pointers with per-entry xor keys, its
  // table isolated the same way.
  (void)process.MapRange(sim::kTableBase, 1, machine::PageFlags::Data());
  defenses::AgRandMap map(&process, sim::kTableBase, 64);
  (void)map.Init();
  const uint64_t code_ptr = 0x401234;
  const uint64_t sealed = map.Encrypt(3, code_ptr).value();
  std::printf("AG-RandMap: code pointer 0x%llx sealed as 0x%llx, unseals to 0x%llx\n",
              static_cast<unsigned long long>(code_ptr),
              static_cast<unsigned long long>(sealed),
              static_cast<unsigned long long>(map.Decrypt(3, sealed).value()));
  return 0;
}

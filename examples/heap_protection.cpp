// Heap-metadata protection (paper Table 2, "Allocator calls" row): a
// DieHard-style randomized allocator keeps its allocation bitmap in a safe
// region. An attacker who can flip bitmap bits turns the heap against
// itself (overlapping allocations -> use-after-free-style corruption);
// MemSentry's MPK isolation makes the bitmap untouchable outside the
// allocator's annotated entry points.
#include <cstdio>

#include "src/core/memsentry.h"
#include "src/defenses/safe_alloc.h"

using namespace memsentry;

namespace {

// Returns true if the attacker managed to make the allocator hand out an
// already-live slot after tampering with the bitmap.
bool RunHeapAttack(bool isolated) {
  sim::Machine machine;
  sim::Process process(&machine);
  (void)process.SetupStack();
  (void)process.MapRange(sim::kHeapBase, 64, machine::PageFlags::Data());

  core::MemSentryConfig config;
  config.technique = core::TechniqueKind::kMpk;
  core::MemSentry ms(&process, config);
  auto region = ms.allocator().Alloc("diehard-bitmap", defenses::SafeAllocator::MetadataBytes(256));
  defenses::SafeAllocator heap(&process, sim::kHeapBase, region.value()->base, 256, 64);
  (void)heap.Init();

  // The program allocates a few objects.
  auto victim = heap.Alloc();
  if (isolated) {
    (void)ms.PrepareRuntime();  // bitmap pages now closed (MPK)
  }

  // The attacker's arbitrary write clears the victim's bitmap word, so a
  // later allocation can land on top of the live object.
  const uint64_t victim_index = (victim.value() - sim::kHeapBase) / 64;
  auto write = ms.technique().AttackerWrite(*&process, region.value()->base + victim_index * 8, 0);
  if (!write.ok()) {
    std::printf("  attacker bitmap write -> %s\n", write.fault().ToString().c_str());
    return false;
  }
  std::printf("  attacker cleared bitmap entry %llu\n",
              static_cast<unsigned long long>(victim_index));

  // The allocator (inside its annotated entry point) keeps allocating; with
  // the tampered bitmap it may re-issue the victim slot.
  for (int i = 0; i < 64; ++i) {
    auto p = heap.Alloc();
    if (p.ok() && p.value() == victim.value()) {
      return true;  // overlapping allocation: heap corrupted
    }
  }
  return false;
}

}  // namespace

int main() {
  std::printf("[heap, bitmap merely hidden]\n");
  const bool corrupted = RunHeapAttack(/*isolated=*/false);
  std::printf("  => %s\n\n", corrupted
                                 ? "allocator re-issued a live slot: HEAP CORRUPTED"
                                 : "attack failed");

  std::printf("[heap, bitmap isolated with MemSentry/MPK]\n");
  const bool corrupted_isolated = RunHeapAttack(/*isolated=*/true);
  std::printf("  => %s\n", corrupted_isolated
                               ? "HEAP CORRUPTED (?!)"
                               : "metadata untouchable: allocator integrity preserved");
  return corrupted_isolated ? 1 : 0;
}

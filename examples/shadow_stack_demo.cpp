// Shadow stack end-to-end: a program whose callee smashes its own return
// address (forging a *valid* control transfer), run four ways:
//
//   1. undefended                      -> hijack succeeds silently,
//   2. shadow stack only               -> hijack trapped, BUT the attacker
//      can first corrupt the (merely hidden) shadow stack and slip through,
//   3. shadow stack + MemSentry (MPX)  -> the shadow stack itself is
//      untouchable; the hijack is trapped even against a metadata attacker.
//
// This is the paper's core argument compressed into one program: a defense
// is only as strong as the isolation of its metadata.
#include <cstdio>

#include "src/core/memsentry.h"
#include "src/defenses/shadow_stack.h"
#include "src/ir/builder.h"
#include "src/sim/executor.h"

using namespace memsentry;

namespace {

// main calls callee; callee overwrites the pushed return address with a
// forged-but-valid encoding that skips main's bookkeeping instruction.
// The forged return address targets main's dedicated exit block — a
// position that stays valid no matter how many instructions the defense and
// isolation passes insert (passes never create blocks).
constexpr uint64_t kForgedRa = (0xCA11ULL << 48) | (1ULL << 18);  // main, block 1, instr 0

ir::Module VictimProgram() {
  ir::Module m;
  ir::Builder b(&m);
  b.CreateFunction("main");
  const int exit_block = b.NewBlock();
  b.Call(1);
  b.AddImm(machine::Gpr::kRbx, 1);  // skipped if the hijack lands
  b.Jmp(exit_block);
  b.SetInsertPoint(0, exit_block);
  b.Halt();
  b.SetInsertPoint(0, 0);
  b.CreateFunction("callee");
  b.MovImm(machine::Gpr::kRcx, kForgedRa);
  b.Store(machine::Gpr::kRsp, machine::Gpr::kRcx);
  b.Ret();
  return m;
}

const char* Verdict(const sim::RunResult& r) {
  if (r.trapped) {
    return "defense TRAPPED the hijack";
  }
  if (r.fault) {
    return "architectural fault";
  }
  return "program completed";
}

}  // namespace

int main() {
  // --- 1. Undefended ---
  {
    sim::Machine machine;
    sim::Process process(&machine);
    (void)process.SetupStack();
    ir::Module m = VictimProgram();
    auto r = sim::Executor(&process, &m).Run();
    std::printf("[undefended]            %s; bookkeeping %s\n", Verdict(r),
                process.regs()[machine::Gpr::kRbx] == 1 ? "intact" : "SKIPPED (hijacked!)");
  }

  // --- 2. Shadow stack, metadata merely placed (not isolated) ---
  {
    sim::Machine machine;
    sim::Process process(&machine);
    (void)process.SetupStack();
    const VirtAddr shadow = 0x480000000000ULL;
    (void)process.MapRange(shadow, 1, machine::PageFlags::Data());
    ir::Module m = VictimProgram();
    defenses::ShadowStackPass pass(shadow);
    (void)pass.Run(m);
    auto r = sim::Executor(&process, &m).Run();
    std::printf("[shadow stack]          %s\n", Verdict(r));

    // The metadata attack: overwrite the shadow entry with the forged RA
    // before the epilogue compares. With information hiding this is exactly
    // what allocation oracles enable.
    sim::Machine machine2;
    sim::Process process2(&machine2);
    (void)process2.SetupStack();
    (void)process2.MapRange(shadow, 1, machine::PageFlags::Data());
    ir::Module m2 = VictimProgram();
    // The attacker's write, inlined into the callee after its prologue: the
    // shadow slot for the callee's RA is shadow + 8.
    {
      defenses::ShadowStackPass pass2(shadow);
      (void)pass2.Run(m2);
      auto& callee = m2.functions[1].blocks[0].instrs;
      ir::Instr setup{.op = ir::Opcode::kMovImm, .dst = machine::Gpr::kRdx, .imm = kForgedRa};
      ir::Instr addr{.op = ir::Opcode::kMovImm, .dst = machine::Gpr::kR10, .imm = shadow + 8};
      ir::Instr write{.op = ir::Opcode::kStore, .dst = machine::Gpr::kR10,
                      .src = machine::Gpr::kRdx};
      callee.insert(callee.begin() + 2, {setup, addr, write});
    }
    auto r2 = sim::Executor(&process2, &m2).Run();
    std::printf("[shadow stack, metadata corrupted] %s; bookkeeping %s\n", Verdict(r2),
                process2.regs()[machine::Gpr::kRbx] == 1 ? "intact"
                                                         : "SKIPPED (defense bypassed!)");
  }

  // --- 3. Shadow stack + MemSentry (MPX write protection) ---
  {
    sim::Machine machine;
    sim::Process process(&machine);
    (void)process.SetupStack();
    core::MemSentryConfig config;
    config.technique = core::TechniqueKind::kMpx;
    config.options.mode = core::ProtectMode::kWriteOnly;
    core::MemSentry ms(&process, config);
    auto region = ms.allocator().Alloc("shadow-stack", 4096);
    ir::Module m = VictimProgram();
    defenses::ShadowStackPass pass(region.value()->base);
    (void)pass.Run(m);
    // Same metadata attack as above...
    {
      auto& callee = m.functions[1].blocks[0].instrs;
      ir::Instr setup{.op = ir::Opcode::kMovImm, .dst = machine::Gpr::kRdx, .imm = kForgedRa};
      ir::Instr addr{.op = ir::Opcode::kMovImm, .dst = machine::Gpr::kR10,
                     .imm = region.value()->base + 8};
      ir::Instr write{.op = ir::Opcode::kStore, .dst = machine::Gpr::kR10,
                      .src = machine::Gpr::kRdx};
      callee.insert(callee.begin() + 2, {setup, addr, write});
    }
    // ...but now MemSentry instruments every non-annotated store.
    (void)ms.Protect(m);
    auto r = sim::Executor(&process, &m).Run();
    std::printf("[shadow stack + MemSentry/MPX]     %s (%s)\n", Verdict(r),
                r.fault ? r.fault->ToString().c_str() : "-");
  }
  return 0;
}

# Empty dependencies file for heap_protection.
# This may be replaced when dependencies are built.

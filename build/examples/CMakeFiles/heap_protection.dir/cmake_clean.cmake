file(REMOVE_RECURSE
  "CMakeFiles/heap_protection.dir/heap_protection.cpp.o"
  "CMakeFiles/heap_protection.dir/heap_protection.cpp.o.d"
  "heap_protection"
  "heap_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heap_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/private_key_vault.dir/private_key_vault.cpp.o"
  "CMakeFiles/private_key_vault.dir/private_key_vault.cpp.o.d"
  "private_key_vault"
  "private_key_vault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_key_vault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for private_key_vault.
# This may be replaced when dependencies are built.

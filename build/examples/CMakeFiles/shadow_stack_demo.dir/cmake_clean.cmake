file(REMOVE_RECURSE
  "CMakeFiles/shadow_stack_demo.dir/shadow_stack_demo.cpp.o"
  "CMakeFiles/shadow_stack_demo.dir/shadow_stack_demo.cpp.o.d"
  "shadow_stack_demo"
  "shadow_stack_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadow_stack_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

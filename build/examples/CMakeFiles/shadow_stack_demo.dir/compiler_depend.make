# Empty compiler generated dependencies file for shadow_stack_demo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/key_virtualizer_test.dir/key_virtualizer_test.cc.o"
  "CMakeFiles/key_virtualizer_test.dir/key_virtualizer_test.cc.o.d"
  "key_virtualizer_test"
  "key_virtualizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_virtualizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for key_virtualizer_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/technique_test.dir/technique_test.cc.o"
  "CMakeFiles/technique_test.dir/technique_test.cc.o.d"
  "technique_test"
  "technique_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/technique_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

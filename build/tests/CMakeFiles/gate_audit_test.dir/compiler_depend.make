# Empty compiler generated dependencies file for gate_audit_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/gate_audit_test.dir/gate_audit_test.cc.o"
  "CMakeFiles/gate_audit_test.dir/gate_audit_test.cc.o.d"
  "gate_audit_test"
  "gate_audit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gate_audit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

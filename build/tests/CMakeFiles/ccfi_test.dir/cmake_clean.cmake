file(REMOVE_RECURSE
  "CMakeFiles/ccfi_test.dir/ccfi_test.cc.o"
  "CMakeFiles/ccfi_test.dir/ccfi_test.cc.o.d"
  "ccfi_test"
  "ccfi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccfi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ccfi_test.
# This may be replaced when dependencies are built.

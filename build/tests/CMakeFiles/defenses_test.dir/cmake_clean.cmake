file(REMOVE_RECURSE
  "CMakeFiles/defenses_test.dir/defenses_test.cc.o"
  "CMakeFiles/defenses_test.dir/defenses_test.cc.o.d"
  "defenses_test"
  "defenses_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defenses_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

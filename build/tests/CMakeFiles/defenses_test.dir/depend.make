# Empty dependencies file for defenses_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/multi_domain_test.dir/multi_domain_test.cc.o"
  "CMakeFiles/multi_domain_test.dir/multi_domain_test.cc.o.d"
  "multi_domain_test"
  "multi_domain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_domain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for multi_domain_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for memsentry_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/memsentry_cli.dir/memsentry_cli.cc.o"
  "CMakeFiles/memsentry_cli.dir/memsentry_cli.cc.o.d"
  "memsentry_cli"
  "memsentry_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memsentry_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for memsentry_ir.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/memsentry_ir.dir/builder.cc.o"
  "CMakeFiles/memsentry_ir.dir/builder.cc.o.d"
  "CMakeFiles/memsentry_ir.dir/instr.cc.o"
  "CMakeFiles/memsentry_ir.dir/instr.cc.o.d"
  "CMakeFiles/memsentry_ir.dir/pass.cc.o"
  "CMakeFiles/memsentry_ir.dir/pass.cc.o.d"
  "CMakeFiles/memsentry_ir.dir/pointsto.cc.o"
  "CMakeFiles/memsentry_ir.dir/pointsto.cc.o.d"
  "CMakeFiles/memsentry_ir.dir/printer.cc.o"
  "CMakeFiles/memsentry_ir.dir/printer.cc.o.d"
  "CMakeFiles/memsentry_ir.dir/verifier.cc.o"
  "CMakeFiles/memsentry_ir.dir/verifier.cc.o.d"
  "libmemsentry_ir.a"
  "libmemsentry_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memsentry_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmemsentry_ir.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/builder.cc" "src/ir/CMakeFiles/memsentry_ir.dir/builder.cc.o" "gcc" "src/ir/CMakeFiles/memsentry_ir.dir/builder.cc.o.d"
  "/root/repo/src/ir/instr.cc" "src/ir/CMakeFiles/memsentry_ir.dir/instr.cc.o" "gcc" "src/ir/CMakeFiles/memsentry_ir.dir/instr.cc.o.d"
  "/root/repo/src/ir/pass.cc" "src/ir/CMakeFiles/memsentry_ir.dir/pass.cc.o" "gcc" "src/ir/CMakeFiles/memsentry_ir.dir/pass.cc.o.d"
  "/root/repo/src/ir/pointsto.cc" "src/ir/CMakeFiles/memsentry_ir.dir/pointsto.cc.o" "gcc" "src/ir/CMakeFiles/memsentry_ir.dir/pointsto.cc.o.d"
  "/root/repo/src/ir/printer.cc" "src/ir/CMakeFiles/memsentry_ir.dir/printer.cc.o" "gcc" "src/ir/CMakeFiles/memsentry_ir.dir/printer.cc.o.d"
  "/root/repo/src/ir/verifier.cc" "src/ir/CMakeFiles/memsentry_ir.dir/verifier.cc.o" "gcc" "src/ir/CMakeFiles/memsentry_ir.dir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/memsentry_base.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/memsentry_machine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for memsentry_vmx.
# This may be replaced when dependencies are built.

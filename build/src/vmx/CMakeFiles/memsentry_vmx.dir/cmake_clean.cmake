file(REMOVE_RECURSE
  "CMakeFiles/memsentry_vmx.dir/ept.cc.o"
  "CMakeFiles/memsentry_vmx.dir/ept.cc.o.d"
  "libmemsentry_vmx.a"
  "libmemsentry_vmx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memsentry_vmx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmemsentry_vmx.a"
)

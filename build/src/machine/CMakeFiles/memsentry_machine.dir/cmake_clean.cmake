file(REMOVE_RECURSE
  "CMakeFiles/memsentry_machine.dir/cache.cc.o"
  "CMakeFiles/memsentry_machine.dir/cache.cc.o.d"
  "CMakeFiles/memsentry_machine.dir/fault.cc.o"
  "CMakeFiles/memsentry_machine.dir/fault.cc.o.d"
  "CMakeFiles/memsentry_machine.dir/mmu.cc.o"
  "CMakeFiles/memsentry_machine.dir/mmu.cc.o.d"
  "CMakeFiles/memsentry_machine.dir/page_table.cc.o"
  "CMakeFiles/memsentry_machine.dir/page_table.cc.o.d"
  "CMakeFiles/memsentry_machine.dir/phys_mem.cc.o"
  "CMakeFiles/memsentry_machine.dir/phys_mem.cc.o.d"
  "CMakeFiles/memsentry_machine.dir/tlb.cc.o"
  "CMakeFiles/memsentry_machine.dir/tlb.cc.o.d"
  "libmemsentry_machine.a"
  "libmemsentry_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memsentry_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

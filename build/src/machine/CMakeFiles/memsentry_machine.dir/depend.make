# Empty dependencies file for memsentry_machine.
# This may be replaced when dependencies are built.

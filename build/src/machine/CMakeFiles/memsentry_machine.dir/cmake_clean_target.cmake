file(REMOVE_RECURSE
  "libmemsentry_machine.a"
)

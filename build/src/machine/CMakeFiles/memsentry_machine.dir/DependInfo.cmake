
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/cache.cc" "src/machine/CMakeFiles/memsentry_machine.dir/cache.cc.o" "gcc" "src/machine/CMakeFiles/memsentry_machine.dir/cache.cc.o.d"
  "/root/repo/src/machine/fault.cc" "src/machine/CMakeFiles/memsentry_machine.dir/fault.cc.o" "gcc" "src/machine/CMakeFiles/memsentry_machine.dir/fault.cc.o.d"
  "/root/repo/src/machine/mmu.cc" "src/machine/CMakeFiles/memsentry_machine.dir/mmu.cc.o" "gcc" "src/machine/CMakeFiles/memsentry_machine.dir/mmu.cc.o.d"
  "/root/repo/src/machine/page_table.cc" "src/machine/CMakeFiles/memsentry_machine.dir/page_table.cc.o" "gcc" "src/machine/CMakeFiles/memsentry_machine.dir/page_table.cc.o.d"
  "/root/repo/src/machine/phys_mem.cc" "src/machine/CMakeFiles/memsentry_machine.dir/phys_mem.cc.o" "gcc" "src/machine/CMakeFiles/memsentry_machine.dir/phys_mem.cc.o.d"
  "/root/repo/src/machine/tlb.cc" "src/machine/CMakeFiles/memsentry_machine.dir/tlb.cc.o" "gcc" "src/machine/CMakeFiles/memsentry_machine.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/memsentry_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libmemsentry_core.a"
)

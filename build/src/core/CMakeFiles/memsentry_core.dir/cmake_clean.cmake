file(REMOVE_RECURSE
  "CMakeFiles/memsentry_core.dir/address_based.cc.o"
  "CMakeFiles/memsentry_core.dir/address_based.cc.o.d"
  "CMakeFiles/memsentry_core.dir/advisor.cc.o"
  "CMakeFiles/memsentry_core.dir/advisor.cc.o.d"
  "CMakeFiles/memsentry_core.dir/domain_based.cc.o"
  "CMakeFiles/memsentry_core.dir/domain_based.cc.o.d"
  "CMakeFiles/memsentry_core.dir/gate_audit.cc.o"
  "CMakeFiles/memsentry_core.dir/gate_audit.cc.o.d"
  "CMakeFiles/memsentry_core.dir/instrument.cc.o"
  "CMakeFiles/memsentry_core.dir/instrument.cc.o.d"
  "CMakeFiles/memsentry_core.dir/safe_region.cc.o"
  "CMakeFiles/memsentry_core.dir/safe_region.cc.o.d"
  "CMakeFiles/memsentry_core.dir/technique.cc.o"
  "CMakeFiles/memsentry_core.dir/technique.cc.o.d"
  "libmemsentry_core.a"
  "libmemsentry_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memsentry_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for memsentry_core.
# This may be replaced when dependencies are built.

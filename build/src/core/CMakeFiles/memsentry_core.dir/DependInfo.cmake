
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/address_based.cc" "src/core/CMakeFiles/memsentry_core.dir/address_based.cc.o" "gcc" "src/core/CMakeFiles/memsentry_core.dir/address_based.cc.o.d"
  "/root/repo/src/core/advisor.cc" "src/core/CMakeFiles/memsentry_core.dir/advisor.cc.o" "gcc" "src/core/CMakeFiles/memsentry_core.dir/advisor.cc.o.d"
  "/root/repo/src/core/domain_based.cc" "src/core/CMakeFiles/memsentry_core.dir/domain_based.cc.o" "gcc" "src/core/CMakeFiles/memsentry_core.dir/domain_based.cc.o.d"
  "/root/repo/src/core/gate_audit.cc" "src/core/CMakeFiles/memsentry_core.dir/gate_audit.cc.o" "gcc" "src/core/CMakeFiles/memsentry_core.dir/gate_audit.cc.o.d"
  "/root/repo/src/core/instrument.cc" "src/core/CMakeFiles/memsentry_core.dir/instrument.cc.o" "gcc" "src/core/CMakeFiles/memsentry_core.dir/instrument.cc.o.d"
  "/root/repo/src/core/safe_region.cc" "src/core/CMakeFiles/memsentry_core.dir/safe_region.cc.o" "gcc" "src/core/CMakeFiles/memsentry_core.dir/safe_region.cc.o.d"
  "/root/repo/src/core/technique.cc" "src/core/CMakeFiles/memsentry_core.dir/technique.cc.o" "gcc" "src/core/CMakeFiles/memsentry_core.dir/technique.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/memsentry_base.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/memsentry_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/memsentry_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/memsentry_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mpx/CMakeFiles/memsentry_mpx.dir/DependInfo.cmake"
  "/root/repo/build/src/mpk/CMakeFiles/memsentry_mpk.dir/DependInfo.cmake"
  "/root/repo/build/src/aes/CMakeFiles/memsentry_aes.dir/DependInfo.cmake"
  "/root/repo/build/src/sgx/CMakeFiles/memsentry_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/dune/CMakeFiles/memsentry_dune.dir/DependInfo.cmake"
  "/root/repo/build/src/vmx/CMakeFiles/memsentry_vmx.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/memsentry_sgx.dir/enclave.cc.o"
  "CMakeFiles/memsentry_sgx.dir/enclave.cc.o.d"
  "libmemsentry_sgx.a"
  "libmemsentry_sgx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memsentry_sgx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for memsentry_sgx.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libmemsentry_sgx.a"
)

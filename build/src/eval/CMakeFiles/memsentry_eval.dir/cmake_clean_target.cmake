file(REMOVE_RECURSE
  "libmemsentry_eval.a"
)

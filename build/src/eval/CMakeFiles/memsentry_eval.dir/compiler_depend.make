# Empty compiler generated dependencies file for memsentry_eval.
# This may be replaced when dependencies are built.

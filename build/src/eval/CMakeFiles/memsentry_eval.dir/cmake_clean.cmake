file(REMOVE_RECURSE
  "CMakeFiles/memsentry_eval.dir/figures.cc.o"
  "CMakeFiles/memsentry_eval.dir/figures.cc.o.d"
  "libmemsentry_eval.a"
  "libmemsentry_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memsentry_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/memsentry_mpx.dir/mpx.cc.o"
  "CMakeFiles/memsentry_mpx.dir/mpx.cc.o.d"
  "libmemsentry_mpx.a"
  "libmemsentry_mpx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memsentry_mpx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmemsentry_mpx.a"
)

# Empty compiler generated dependencies file for memsentry_mpx.
# This may be replaced when dependencies are built.

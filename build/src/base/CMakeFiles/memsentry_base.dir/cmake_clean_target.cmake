file(REMOVE_RECURSE
  "libmemsentry_base.a"
)

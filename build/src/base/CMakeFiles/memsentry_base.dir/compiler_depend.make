# Empty compiler generated dependencies file for memsentry_base.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/memsentry_base.dir/log.cc.o"
  "CMakeFiles/memsentry_base.dir/log.cc.o.d"
  "CMakeFiles/memsentry_base.dir/status.cc.o"
  "CMakeFiles/memsentry_base.dir/status.cc.o.d"
  "libmemsentry_base.a"
  "libmemsentry_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memsentry_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmemsentry_defenses.a"
)

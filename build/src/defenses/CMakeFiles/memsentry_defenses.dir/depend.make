# Empty dependencies file for memsentry_defenses.
# This may be replaced when dependencies are built.

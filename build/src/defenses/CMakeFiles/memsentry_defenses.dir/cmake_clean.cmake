file(REMOVE_RECURSE
  "CMakeFiles/memsentry_defenses.dir/aslr_guard.cc.o"
  "CMakeFiles/memsentry_defenses.dir/aslr_guard.cc.o.d"
  "CMakeFiles/memsentry_defenses.dir/ccfi.cc.o"
  "CMakeFiles/memsentry_defenses.dir/ccfi.cc.o.d"
  "CMakeFiles/memsentry_defenses.dir/cfi.cc.o"
  "CMakeFiles/memsentry_defenses.dir/cfi.cc.o.d"
  "CMakeFiles/memsentry_defenses.dir/event_annotator.cc.o"
  "CMakeFiles/memsentry_defenses.dir/event_annotator.cc.o.d"
  "CMakeFiles/memsentry_defenses.dir/registry.cc.o"
  "CMakeFiles/memsentry_defenses.dir/registry.cc.o.d"
  "CMakeFiles/memsentry_defenses.dir/safe_alloc.cc.o"
  "CMakeFiles/memsentry_defenses.dir/safe_alloc.cc.o.d"
  "CMakeFiles/memsentry_defenses.dir/shadow_stack.cc.o"
  "CMakeFiles/memsentry_defenses.dir/shadow_stack.cc.o.d"
  "libmemsentry_defenses.a"
  "libmemsentry_defenses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memsentry_defenses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

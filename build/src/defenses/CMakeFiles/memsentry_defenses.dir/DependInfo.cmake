
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/defenses/aslr_guard.cc" "src/defenses/CMakeFiles/memsentry_defenses.dir/aslr_guard.cc.o" "gcc" "src/defenses/CMakeFiles/memsentry_defenses.dir/aslr_guard.cc.o.d"
  "/root/repo/src/defenses/ccfi.cc" "src/defenses/CMakeFiles/memsentry_defenses.dir/ccfi.cc.o" "gcc" "src/defenses/CMakeFiles/memsentry_defenses.dir/ccfi.cc.o.d"
  "/root/repo/src/defenses/cfi.cc" "src/defenses/CMakeFiles/memsentry_defenses.dir/cfi.cc.o" "gcc" "src/defenses/CMakeFiles/memsentry_defenses.dir/cfi.cc.o.d"
  "/root/repo/src/defenses/event_annotator.cc" "src/defenses/CMakeFiles/memsentry_defenses.dir/event_annotator.cc.o" "gcc" "src/defenses/CMakeFiles/memsentry_defenses.dir/event_annotator.cc.o.d"
  "/root/repo/src/defenses/registry.cc" "src/defenses/CMakeFiles/memsentry_defenses.dir/registry.cc.o" "gcc" "src/defenses/CMakeFiles/memsentry_defenses.dir/registry.cc.o.d"
  "/root/repo/src/defenses/safe_alloc.cc" "src/defenses/CMakeFiles/memsentry_defenses.dir/safe_alloc.cc.o" "gcc" "src/defenses/CMakeFiles/memsentry_defenses.dir/safe_alloc.cc.o.d"
  "/root/repo/src/defenses/shadow_stack.cc" "src/defenses/CMakeFiles/memsentry_defenses.dir/shadow_stack.cc.o" "gcc" "src/defenses/CMakeFiles/memsentry_defenses.dir/shadow_stack.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/memsentry_base.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/memsentry_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/memsentry_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/memsentry_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/memsentry_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/aes/CMakeFiles/memsentry_aes.dir/DependInfo.cmake"
  "/root/repo/build/src/mpx/CMakeFiles/memsentry_mpx.dir/DependInfo.cmake"
  "/root/repo/build/src/mpk/CMakeFiles/memsentry_mpk.dir/DependInfo.cmake"
  "/root/repo/build/src/sgx/CMakeFiles/memsentry_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/dune/CMakeFiles/memsentry_dune.dir/DependInfo.cmake"
  "/root/repo/build/src/vmx/CMakeFiles/memsentry_vmx.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/memsentry_machine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

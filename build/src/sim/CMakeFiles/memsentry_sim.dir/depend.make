# Empty dependencies file for memsentry_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libmemsentry_sim.a"
)

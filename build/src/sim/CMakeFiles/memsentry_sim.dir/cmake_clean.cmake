file(REMOVE_RECURSE
  "CMakeFiles/memsentry_sim.dir/executor.cc.o"
  "CMakeFiles/memsentry_sim.dir/executor.cc.o.d"
  "CMakeFiles/memsentry_sim.dir/kernel.cc.o"
  "CMakeFiles/memsentry_sim.dir/kernel.cc.o.d"
  "CMakeFiles/memsentry_sim.dir/process.cc.o"
  "CMakeFiles/memsentry_sim.dir/process.cc.o.d"
  "CMakeFiles/memsentry_sim.dir/profiling.cc.o"
  "CMakeFiles/memsentry_sim.dir/profiling.cc.o.d"
  "libmemsentry_sim.a"
  "libmemsentry_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memsentry_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

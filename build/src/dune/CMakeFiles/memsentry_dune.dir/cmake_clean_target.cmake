file(REMOVE_RECURSE
  "libmemsentry_dune.a"
)

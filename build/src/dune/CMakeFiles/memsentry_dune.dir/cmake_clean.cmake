file(REMOVE_RECURSE
  "CMakeFiles/memsentry_dune.dir/dune.cc.o"
  "CMakeFiles/memsentry_dune.dir/dune.cc.o.d"
  "libmemsentry_dune.a"
  "libmemsentry_dune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memsentry_dune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

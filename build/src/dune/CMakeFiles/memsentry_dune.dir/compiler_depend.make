# Empty compiler generated dependencies file for memsentry_dune.
# This may be replaced when dependencies are built.

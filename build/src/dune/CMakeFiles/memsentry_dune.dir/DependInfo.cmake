
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dune/dune.cc" "src/dune/CMakeFiles/memsentry_dune.dir/dune.cc.o" "gcc" "src/dune/CMakeFiles/memsentry_dune.dir/dune.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/memsentry_base.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/memsentry_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/vmx/CMakeFiles/memsentry_vmx.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/memsentry_attacks.dir/harness.cc.o"
  "CMakeFiles/memsentry_attacks.dir/harness.cc.o.d"
  "CMakeFiles/memsentry_attacks.dir/strategies.cc.o"
  "CMakeFiles/memsentry_attacks.dir/strategies.cc.o.d"
  "libmemsentry_attacks.a"
  "libmemsentry_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memsentry_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for memsentry_attacks.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libmemsentry_attacks.a"
)

file(REMOVE_RECURSE
  "libmemsentry_workloads.a"
)

# Empty dependencies file for memsentry_workloads.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/memsentry_workloads.dir/spec_profiles.cc.o"
  "CMakeFiles/memsentry_workloads.dir/spec_profiles.cc.o.d"
  "CMakeFiles/memsentry_workloads.dir/synth.cc.o"
  "CMakeFiles/memsentry_workloads.dir/synth.cc.o.d"
  "libmemsentry_workloads.a"
  "libmemsentry_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memsentry_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for memsentry_aes.
# This may be replaced when dependencies are built.

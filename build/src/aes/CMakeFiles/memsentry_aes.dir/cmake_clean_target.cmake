file(REMOVE_RECURSE
  "libmemsentry_aes.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/memsentry_aes.dir/aes128.cc.o"
  "CMakeFiles/memsentry_aes.dir/aes128.cc.o.d"
  "libmemsentry_aes.a"
  "libmemsentry_aes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memsentry_aes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for memsentry_mpk.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/memsentry_mpk.dir/key_virtualizer.cc.o"
  "CMakeFiles/memsentry_mpk.dir/key_virtualizer.cc.o.d"
  "CMakeFiles/memsentry_mpk.dir/mpk.cc.o"
  "CMakeFiles/memsentry_mpk.dir/mpk.cc.o.d"
  "libmemsentry_mpk.a"
  "libmemsentry_mpk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memsentry_mpk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

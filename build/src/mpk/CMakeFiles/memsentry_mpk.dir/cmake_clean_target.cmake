file(REMOVE_RECURSE
  "libmemsentry_mpk.a"
)

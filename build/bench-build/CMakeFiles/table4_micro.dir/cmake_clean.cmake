file(REMOVE_RECURSE
  "../bench/table4_micro"
  "../bench/table4_micro.pdb"
  "CMakeFiles/table4_micro.dir/table4_micro.cc.o"
  "CMakeFiles/table4_micro.dir/table4_micro.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

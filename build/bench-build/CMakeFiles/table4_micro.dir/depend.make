# Empty dependencies file for table4_micro.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig5_indirect"
  "../bench/fig5_indirect.pdb"
  "CMakeFiles/fig5_indirect.dir/fig5_indirect.cc.o"
  "CMakeFiles/fig5_indirect.dir/fig5_indirect.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_indirect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

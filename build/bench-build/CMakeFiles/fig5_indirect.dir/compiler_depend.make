# Empty compiler generated dependencies file for fig5_indirect.
# This may be replaced when dependencies are built.

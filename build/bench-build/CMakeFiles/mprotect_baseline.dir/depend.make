# Empty dependencies file for mprotect_baseline.
# This may be replaced when dependencies are built.

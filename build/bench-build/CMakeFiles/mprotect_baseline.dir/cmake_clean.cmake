file(REMOVE_RECURSE
  "../bench/mprotect_baseline"
  "../bench/mprotect_baseline.pdb"
  "CMakeFiles/mprotect_baseline.dir/mprotect_baseline.cc.o"
  "CMakeFiles/mprotect_baseline.dir/mprotect_baseline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mprotect_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

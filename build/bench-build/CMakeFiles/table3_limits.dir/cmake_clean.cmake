file(REMOVE_RECURSE
  "../bench/table3_limits"
  "../bench/table3_limits.pdb"
  "CMakeFiles/table3_limits.dir/table3_limits.cc.o"
  "CMakeFiles/table3_limits.dir/table3_limits.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

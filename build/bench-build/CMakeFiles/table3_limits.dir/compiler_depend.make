# Empty compiler generated dependencies file for table3_limits.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/microarch_stats"
  "../bench/microarch_stats.pdb"
  "CMakeFiles/microarch_stats.dir/microarch_stats.cc.o"
  "CMakeFiles/microarch_stats.dir/microarch_stats.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microarch_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

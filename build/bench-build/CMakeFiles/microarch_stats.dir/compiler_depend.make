# Empty compiler generated dependencies file for microarch_stats.
# This may be replaced when dependencies are built.

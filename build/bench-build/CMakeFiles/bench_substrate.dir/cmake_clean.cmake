file(REMOVE_RECURSE
  "../bench/bench_substrate"
  "../bench/bench_substrate.pdb"
  "CMakeFiles/bench_substrate.dir/bench_substrate.cc.o"
  "CMakeFiles/bench_substrate.dir/bench_substrate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig3_address.
# This may be replaced when dependencies are built.

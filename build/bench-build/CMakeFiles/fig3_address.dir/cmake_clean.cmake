file(REMOVE_RECURSE
  "../bench/fig3_address"
  "../bench/fig3_address.pdb"
  "CMakeFiles/fig3_address.dir/fig3_address.cc.o"
  "CMakeFiles/fig3_address.dir/fig3_address.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_address.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

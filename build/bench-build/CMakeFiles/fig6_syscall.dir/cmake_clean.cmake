file(REMOVE_RECURSE
  "../bench/fig6_syscall"
  "../bench/fig6_syscall.pdb"
  "CMakeFiles/fig6_syscall.dir/fig6_syscall.cc.o"
  "CMakeFiles/fig6_syscall.dir/fig6_syscall.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_syscall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

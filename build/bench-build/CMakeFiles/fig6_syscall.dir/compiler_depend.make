# Empty compiler generated dependencies file for fig6_syscall.
# This may be replaced when dependencies are built.

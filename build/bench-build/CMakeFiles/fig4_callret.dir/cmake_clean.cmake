file(REMOVE_RECURSE
  "../bench/fig4_callret"
  "../bench/fig4_callret.pdb"
  "CMakeFiles/fig4_callret.dir/fig4_callret.cc.o"
  "CMakeFiles/fig4_callret.dir/fig4_callret.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_callret.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

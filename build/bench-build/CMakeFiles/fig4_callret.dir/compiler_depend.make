# Empty compiler generated dependencies file for fig4_callret.
# This may be replaced when dependencies are built.

# Empty dependencies file for crypt_size_sweep.
# This may be replaced when dependencies are built.

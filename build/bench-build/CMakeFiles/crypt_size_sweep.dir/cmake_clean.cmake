file(REMOVE_RECURSE
  "../bench/crypt_size_sweep"
  "../bench/crypt_size_sweep.pdb"
  "CMakeFiles/crypt_size_sweep.dir/crypt_size_sweep.cc.o"
  "CMakeFiles/crypt_size_sweep.dir/crypt_size_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypt_size_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

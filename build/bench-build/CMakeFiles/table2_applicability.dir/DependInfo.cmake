
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_applicability.cc" "bench-build/CMakeFiles/table2_applicability.dir/table2_applicability.cc.o" "gcc" "bench-build/CMakeFiles/table2_applicability.dir/table2_applicability.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/memsentry_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/attacks/CMakeFiles/memsentry_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/defenses/CMakeFiles/memsentry_defenses.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/memsentry_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/memsentry_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/memsentry_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/memsentry_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/dune/CMakeFiles/memsentry_dune.dir/DependInfo.cmake"
  "/root/repo/build/src/vmx/CMakeFiles/memsentry_vmx.dir/DependInfo.cmake"
  "/root/repo/build/src/sgx/CMakeFiles/memsentry_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/mpk/CMakeFiles/memsentry_mpk.dir/DependInfo.cmake"
  "/root/repo/build/src/mpx/CMakeFiles/memsentry_mpx.dir/DependInfo.cmake"
  "/root/repo/build/src/aes/CMakeFiles/memsentry_aes.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/memsentry_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/memsentry_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

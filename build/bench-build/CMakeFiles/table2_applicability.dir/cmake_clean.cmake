file(REMOVE_RECURSE
  "../bench/table2_applicability"
  "../bench/table2_applicability.pdb"
  "CMakeFiles/table2_applicability.dir/table2_applicability.cc.o"
  "CMakeFiles/table2_applicability.dir/table2_applicability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_applicability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

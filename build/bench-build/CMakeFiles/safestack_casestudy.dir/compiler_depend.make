# Empty compiler generated dependencies file for safestack_casestudy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/safestack_casestudy"
  "../bench/safestack_casestudy.pdb"
  "CMakeFiles/safestack_casestudy.dir/safestack_casestudy.cc.o"
  "CMakeFiles/safestack_casestudy.dir/safestack_casestudy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safestack_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

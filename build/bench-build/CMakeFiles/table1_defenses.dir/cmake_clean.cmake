file(REMOVE_RECURSE
  "../bench/table1_defenses"
  "../bench/table1_defenses.pdb"
  "CMakeFiles/table1_defenses.dir/table1_defenses.cc.o"
  "CMakeFiles/table1_defenses.dir/table1_defenses.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_defenses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/attack_matrix"
  "../bench/attack_matrix.pdb"
  "CMakeFiles/attack_matrix.dir/attack_matrix.cc.o"
  "CMakeFiles/attack_matrix.dir/attack_matrix.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

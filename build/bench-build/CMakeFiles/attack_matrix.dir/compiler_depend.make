# Empty compiler generated dependencies file for attack_matrix.
# This may be replaced when dependencies are built.

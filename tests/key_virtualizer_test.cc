#include <gtest/gtest.h>

#include "src/mpk/key_virtualizer.h"
#include "src/mpk/mpk.h"

namespace memsentry::mpk {
namespace {

class KeyVirtualizerTest : public ::testing::Test {
 protected:
  KeyVirtualizerTest() : pt_(&pmem_), mmu_(&pmem_, &cost_), kv_(&pt_, &mmu_) {
    mmu_.SetPageTable(&pt_);
  }

  // One mapped page per domain at a predictable address.
  VirtAddr PageFor(int domain) {
    const VirtAddr va = 0x10000 + static_cast<uint64_t>(domain) * kPageSize;
    if (!pt_.IsMapped(va)) {
      EXPECT_TRUE(pt_.MapNew(va, machine::PageFlags::Data()).ok());
    }
    return va;
  }

  uint8_t PteKey(VirtAddr va) {
    auto walk = pt_.Walk(va);
    EXPECT_TRUE(walk.ok());
    return machine::PageTable::PtePkey(walk.value().pte);
  }

  machine::PhysicalMemory pmem_{1 << 16};
  machine::CostModel cost_;
  machine::PageTable pt_;
  machine::Mmu mmu_;
  KeyVirtualizer kv_;
};

TEST_F(KeyVirtualizerTest, UnboundDomainsAreParked) {
  const int d = kv_.CreateDomain();
  ASSERT_TRUE(kv_.AttachRange(d, PageFor(d), 1).ok());
  EXPECT_FALSE(kv_.CurrentKey(d).has_value());
  EXPECT_EQ(PteKey(PageFor(d)), kParkingKey);
  // Parked pages are inaccessible under the base PKRU.
  machine::Pkru pkru{KeyVirtualizer::BasePkru()};
  EXPECT_FALSE(mmu_.Access(PageFor(d), machine::AccessType::kRead, pkru).ok());
}

TEST_F(KeyVirtualizerTest, BindTagsPagesWithHardwareKey) {
  const int d = kv_.CreateDomain();
  ASSERT_TRUE(kv_.AttachRange(d, PageFor(d), 1).ok());
  Cycles cost = 0;
  auto key = kv_.Bind(d, &cost);
  ASSERT_TRUE(key.ok());
  EXPECT_GE(key.value(), 1);
  EXPECT_LE(key.value(), kBindableKeys);
  EXPECT_EQ(PteKey(PageFor(d)), key.value());
  EXPECT_GT(cost, 0.0);
  // Rebinding a bound domain is free.
  Cycles rebind_cost = 0;
  auto again = kv_.Bind(d, &rebind_cost);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), key.value());
  EXPECT_DOUBLE_EQ(rebind_cost, 0.0);
}

TEST_F(KeyVirtualizerTest, FourteenDomainsBindWithoutEviction) {
  for (int i = 0; i < kBindableKeys; ++i) {
    const int d = kv_.CreateDomain();
    ASSERT_TRUE(kv_.AttachRange(d, PageFor(d), 1).ok());
    Cycles cost = 0;
    ASSERT_TRUE(kv_.Bind(d, &cost).ok());
  }
  EXPECT_EQ(kv_.evictions(), 0u);
}

TEST_F(KeyVirtualizerTest, FifteenthDomainEvictsLeastRecentlyBound) {
  std::vector<int> domains;
  for (int i = 0; i < kBindableKeys; ++i) {
    const int d = kv_.CreateDomain();
    ASSERT_TRUE(kv_.AttachRange(d, PageFor(d), 1).ok());
    Cycles cost = 0;
    ASSERT_TRUE(kv_.Bind(d, &cost).ok());
    domains.push_back(d);
  }
  // Touch domain 0 so domain 1 becomes the LRU victim.
  Cycles cost = 0;
  ASSERT_TRUE(kv_.Bind(domains[0], &cost).ok());

  const int extra = kv_.CreateDomain();
  ASSERT_TRUE(kv_.AttachRange(extra, PageFor(extra), 1).ok());
  auto key = kv_.Bind(extra, &cost);
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(kv_.evictions(), 1u);
  EXPECT_FALSE(kv_.CurrentKey(domains[1]).has_value());  // evicted
  EXPECT_TRUE(kv_.CurrentKey(domains[0]).has_value());   // recently used: kept
  // The evicted domain's page is parked and inaccessible.
  EXPECT_EQ(PteKey(PageFor(domains[1])), kParkingKey);
  // The new domain inherited the evicted key.
  EXPECT_EQ(PteKey(PageFor(extra)), key.value());
}

TEST_F(KeyVirtualizerTest, EvictionCostScalesWithFootprint) {
  // Domain A has 1 page, domain B has 8: evicting B costs more.
  std::vector<int> domains;
  for (int i = 0; i < kBindableKeys; ++i) {
    const int d = kv_.CreateDomain();
    const uint64_t pages = (i == 0) ? 8 : 1;
    const VirtAddr base = 0x900000 + static_cast<uint64_t>(i) * 16 * kPageSize;
    for (uint64_t p = 0; p < pages; ++p) {
      ASSERT_TRUE(pt_.MapNew(base + p * kPageSize, machine::PageFlags::Data()).ok());
    }
    ASSERT_TRUE(kv_.AttachRange(d, base, pages).ok());
    Cycles cost = 0;
    ASSERT_TRUE(kv_.Bind(d, &cost).ok());
    domains.push_back(d);
  }
  // Evict domain 0 (8 pages): bind a new domain, with domain 0 as LRU.
  const int extra = kv_.CreateDomain();
  ASSERT_TRUE(pt_.MapNew(0xa00000, machine::PageFlags::Data()).ok());
  ASSERT_TRUE(kv_.AttachRange(extra, 0xa00000, 1).ok());
  Cycles big_evict = 0;
  ASSERT_TRUE(kv_.Bind(extra, &big_evict).ok());
  EXPECT_EQ(kv_.evictions(), 1u);

  // Now evict a 1-page domain for comparison.
  const int extra2 = kv_.CreateDomain();
  ASSERT_TRUE(pt_.MapNew(0xb00000, machine::PageFlags::Data()).ok());
  ASSERT_TRUE(kv_.AttachRange(extra2, 0xb00000, 1).ok());
  Cycles small_evict = 0;
  ASSERT_TRUE(kv_.Bind(extra2, &small_evict).ok());
  EXPECT_GT(big_evict, small_evict);
}

TEST_F(KeyVirtualizerTest, ManyDomainsRotateSoundly) {
  // 50 domains over 14 keys: every bind leaves exactly its own pages
  // accessible under a PKRU opening only that key.
  std::vector<int> domains;
  for (int i = 0; i < 50; ++i) {
    const int d = kv_.CreateDomain();
    ASSERT_TRUE(kv_.AttachRange(d, PageFor(d), 1).ok());
    domains.push_back(d);
  }
  for (int round = 0; round < 100; ++round) {
    const int d = domains[static_cast<size_t>((round * 17) % 50)];
    Cycles cost = 0;
    auto key = kv_.Bind(d, &cost);
    ASSERT_TRUE(key.ok());
    EXPECT_EQ(PteKey(PageFor(d)), key.value());
    // All-closed-except-this-key PKRU reaches only this domain's page.
    machine::Pkru pkru{};
    for (int k = 1; k < 16; ++k) {
      if (k != key.value()) {
        pkru.SetAccessDisable(static_cast<uint8_t>(k), true);
      }
    }
    EXPECT_TRUE(mmu_.Access(PageFor(d), machine::AccessType::kRead, pkru).ok());
  }
  EXPECT_GT(kv_.evictions(), 30u);  // heavy rotation
}

TEST_F(KeyVirtualizerTest, InvalidDomainIdsRejected) {
  EXPECT_FALSE(kv_.AttachRange(0, 0x10000, 1).ok());
  Cycles cost = 0;
  EXPECT_FALSE(kv_.Bind(5, &cost).ok());
  EXPECT_FALSE(kv_.CurrentKey(-1).has_value());
}

}  // namespace
}  // namespace memsentry::mpk

// Tests for the machine-readable benchmark pipeline: the JSON
// writer/parser in src/base/json.h and the regression-gate comparator in
// src/eval/regression_gate.h, including an end-to-end check that
// tools/bench_runner exits nonzero when a fidelity metric is perturbed
// beyond tolerance against the committed seed baseline.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "src/base/json.h"
#include "src/eval/regression_gate.h"

namespace memsentry {
namespace {

using eval::CompareAgainstBaseline;
using eval::GateOptions;
using eval::GateReport;
using eval::MetricKind;
using eval::Severity;

// ---------------------------------------------------------------- writer --

TEST(JsonWriter, EscapesSpecialCharacters) {
  EXPECT_EQ(json::Escape("plain"), "plain");
  EXPECT_EQ(json::Escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json::Escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json::Escape("tab\there"), "tab\\there");
  EXPECT_EQ(json::Escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json::Escape(std::string("nul\x01" "byte")), "nul\\u0001byte");
}

TEST(JsonWriter, DumpsNestedObjectsCompact) {
  json::Value doc = json::Value::Object();
  doc.Set("name", "fig3/geomean/MPX-w");
  doc.Set("ok", true);
  doc.Set("nothing", json::Value());
  json::Value inner = json::Value::Object();
  inner.Set("value", 1.028);
  inner.Set("tags", json::Value::Array());
  inner.Find("tags")->Append("a");
  inner.Find("tags")->Append(2);
  doc.Set("metric", std::move(inner));
  EXPECT_EQ(doc.Dump(),
            "{\"name\":\"fig3/geomean/MPX-w\",\"ok\":true,\"nothing\":null,"
            "\"metric\":{\"value\":1.028,\"tags\":[\"a\",2]}}");
}

TEST(JsonWriter, PrettyPrintIndents) {
  json::Value doc = json::Value::Object();
  doc.Set("a", 1);
  const std::string pretty = doc.Dump(2);
  EXPECT_EQ(pretty, "{\n  \"a\": 1\n}");
}

TEST(JsonWriter, PreservesInsertionOrder) {
  json::Value doc = json::Value::Object();
  doc.Set("zeta", 1);
  doc.Set("alpha", 2);
  doc.Set("mid", 3);
  EXPECT_EQ(doc.Dump(), "{\"zeta\":1,\"alpha\":2,\"mid\":3}");
}

TEST(JsonWriter, NumbersRoundTripThroughText) {
  json::Value doc = json::Value::Object();
  doc.Set("x", 1.0 / 3.0);
  doc.Set("big", 1.25e300);
  auto parsed = json::Parse(doc.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->NumberOr("x", 0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(parsed->NumberOr("big", 0), 1.25e300);
}

// ---------------------------------------------------------------- parser --

TEST(JsonParser, ParsesScalarsAndContainers) {
  auto v = json::Parse(R"({"s": "hi", "n": -2.5e2, "t": true, "f": false,
                           "nil": null, "arr": [1, [2, 3], {}]})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->StringOr("s", ""), "hi");
  EXPECT_DOUBLE_EQ(v->NumberOr("n", 0), -250.0);
  EXPECT_TRUE(v->BoolOr("t", false));
  EXPECT_FALSE(v->BoolOr("f", true));
  EXPECT_TRUE(v->Find("nil")->is_null());
  const json::Value* arr = v->Find("arr");
  ASSERT_TRUE(arr != nullptr && arr->is_array());
  EXPECT_EQ(arr->items().size(), 3u);
  EXPECT_EQ(arr->items()[1].items()[1].number_value(), 3.0);
}

TEST(JsonParser, DecodesEscapes) {
  auto v = json::Parse(R"(["a\"b", "c\\d", "tab\t", "\u0041", "\u00e9", "\ud83d\ude00"])");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->items()[0].string_value(), "a\"b");
  EXPECT_EQ(v->items()[1].string_value(), "c\\d");
  EXPECT_EQ(v->items()[2].string_value(), "tab\t");
  EXPECT_EQ(v->items()[3].string_value(), "A");
  EXPECT_EQ(v->items()[4].string_value(), "\xc3\xa9");          // é
  EXPECT_EQ(v->items()[5].string_value(), "\xf0\x9f\x98\x80");  // 😀 via surrogate pair
}

TEST(JsonParser, RejectsMalformedDocuments) {
  EXPECT_FALSE(json::Parse("").ok());
  EXPECT_FALSE(json::Parse("{\"a\": 1,}").ok());
  EXPECT_FALSE(json::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(json::Parse("[1, 2").ok());
  EXPECT_FALSE(json::Parse("\"unterminated").ok());
  EXPECT_FALSE(json::Parse("{\"bad\": \"\\q\"}").ok());
  EXPECT_FALSE(json::Parse("{} trailing").ok());
  EXPECT_FALSE(json::Parse("nul").ok());
}

TEST(JsonParser, RoundTripsAReport) {
  json::Value metrics = json::Value::Object();
  json::Value entry = json::Value::Object();
  entry.Set("value", 1.147);
  entry.Set("kind", "fidelity");
  entry.Set("tol", 0.05);
  entry.Set("paper", 1.147);
  metrics.Set("fig3/geomean/MPX-rw", std::move(entry));
  json::Value doc = json::Value::Object();
  doc.Set("schema", 1);
  doc.Set("metrics", std::move(metrics));
  auto reparsed = json::Parse(doc.Dump(2));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->Dump(), doc.Dump());
}

// ------------------------------------------------------------ comparator --

json::Value MakeMetric(double value, const char* kind, double tol) {
  json::Value m = json::Value::Object();
  m.Set("value", value);
  m.Set("kind", kind);
  m.Set("tol", tol);
  return m;
}

json::Value MakeDoc(std::vector<std::pair<std::string, json::Value>> metrics) {
  json::Value doc = json::Value::Object();
  doc.Set("schema", 1);
  json::Value m = json::Value::Object();
  for (auto& [name, metric] : metrics) {
    m.Set(name, std::move(metric));
  }
  doc.Set("metrics", std::move(m));
  return doc;
}

TEST(RegressionGate, IdenticalDocumentsPass) {
  json::Value doc = MakeDoc({{"fig4/geomean/MPK", MakeMetric(2.31, "fidelity", 0.05)},
                             {"fig4/cycles/MPK", MakeMetric(9e6, "perf", 0.15)}});
  const GateReport report = CompareAgainstBaseline(doc, doc);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.compared, 2);
  EXPECT_EQ(report.failures, 0);
  EXPECT_EQ(report.warnings, 0);
}

TEST(RegressionGate, MissingFidelityMetricFails) {
  json::Value baseline = MakeDoc({{"fig4/geomean/MPK", MakeMetric(2.31, "fidelity", 0.05)}});
  json::Value results = MakeDoc({});
  const GateReport report = CompareAgainstBaseline(results, baseline);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.missing, 1);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].severity, Severity::kFailure);
}

TEST(RegressionGate, MissingPerfMetricOnlyWarns) {
  json::Value baseline = MakeDoc({{"fig4/cycles/MPK", MakeMetric(9e6, "perf", 0.15)}});
  json::Value results = MakeDoc({});
  const GateReport report = CompareAgainstBaseline(results, baseline);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.missing, 1);
  EXPECT_EQ(report.warnings, 1);
}

TEST(RegressionGate, NewMetricIsNotedNotGated) {
  json::Value baseline = MakeDoc({});
  json::Value results = MakeDoc({{"fig7/geomean/new", MakeMetric(1.0, "fidelity", 0.05)}});
  const GateReport report = CompareAgainstBaseline(results, baseline);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.new_metrics, 1);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].severity, Severity::kNote);
}

TEST(RegressionGate, ToleranceBoundary) {
  // 5% tolerance on a baseline of 2.0: 2.1 sits exactly on the boundary
  // (passes), 2.100001 is beyond (fails).
  json::Value baseline = MakeDoc({{"m", MakeMetric(2.0, "fidelity", 0.05)}});
  json::Value at = MakeDoc({{"m", MakeMetric(2.1, "fidelity", 0.05)}});
  EXPECT_TRUE(CompareAgainstBaseline(at, baseline).ok());
  json::Value beyond = MakeDoc({{"m", MakeMetric(2.100001, "fidelity", 0.05)}});
  const GateReport report = CompareAgainstBaseline(beyond, baseline);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.failures, 1);
  // Deviation below the boundary passes symmetrically.
  json::Value below = MakeDoc({{"m", MakeMetric(1.9, "fidelity", 0.05)}});
  EXPECT_TRUE(CompareAgainstBaseline(below, baseline).ok());
}

TEST(RegressionGate, BaselineToleranceIsAuthoritative) {
  // The baseline's per-metric tol (20%) overrides both the results' claimed
  // tol and the kind default.
  json::Value baseline = MakeDoc({{"m", MakeMetric(1.0, "fidelity", 0.20)}});
  json::Value results = MakeDoc({{"m", MakeMetric(1.15, "fidelity", 0.01)}});
  EXPECT_TRUE(CompareAgainstBaseline(results, baseline).ok());
}

TEST(RegressionGate, PerfWarnsUntilGated) {
  json::Value baseline = MakeDoc({{"fig4/cycles/MPK", MakeMetric(1e6, "perf", 0.10)}});
  json::Value results = MakeDoc({{"fig4/cycles/MPK", MakeMetric(2e6, "perf", 0.10)}});
  GateOptions options;
  options.gate_perf = false;  // only one baseline snapshot exists
  const GateReport warned = CompareAgainstBaseline(results, baseline, options);
  EXPECT_TRUE(warned.ok());
  EXPECT_EQ(warned.warnings, 1);
  options.gate_perf = true;  // trajectory established
  const GateReport gated = CompareAgainstBaseline(results, baseline, options);
  EXPECT_FALSE(gated.ok());
  EXPECT_EQ(gated.failures, 1);
}

TEST(RegressionGate, InfoMetricsNeverCompared) {
  json::Value baseline = MakeDoc({{"wall", MakeMetric(1.0, "info", 0.0)}});
  json::Value results = MakeDoc({{"wall", MakeMetric(100.0, "info", 0.0)}});
  const GateReport report = CompareAgainstBaseline(results, baseline);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.compared, 0);
  EXPECT_TRUE(report.issues.empty());
}

TEST(RegressionGate, DocumentsWithoutMetricsFail) {
  json::Value empty = json::Value::Object();
  json::Value ok = MakeDoc({});
  EXPECT_FALSE(CompareAgainstBaseline(empty, ok).ok());
  EXPECT_FALSE(CompareAgainstBaseline(ok, empty).ok());
}

// ------------------------------------------- against the committed seed --

#ifdef MEMSENTRY_SOURCE_DIR
constexpr const char* kSeedBaseline = MEMSENTRY_SOURCE_DIR "/bench/baselines/seed.json";

// Picks the first fidelity metric in the document and perturbs it well
// beyond its tolerance.
std::string PerturbFirstFidelityMetric(json::Value& doc) {
  json::Value* metrics = doc.Find("metrics");
  EXPECT_NE(metrics, nullptr);
  for (auto& [name, metric] : metrics->members()) {
    if (metric.StringOr("kind", "") != "fidelity") {
      continue;
    }
    const double value = metric.NumberOr("value", 1.0);
    const double tol = metric.NumberOr("tol", 0.05);
    metric.Set("value", value * (1.0 + 4.0 * tol) + 1.0);
    return name;
  }
  return "";
}

TEST(RegressionGate, SeedBaselineSelfCompares) {
  auto baseline = json::ParseFile(kSeedBaseline);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const GateReport report = CompareAgainstBaseline(*baseline, *baseline);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.compared, 100);  // the suite is big: whole figures, tables
}

TEST(RegressionGate, PerturbedFidelityMetricFailsAgainstSeed) {
  auto baseline = json::ParseFile(kSeedBaseline);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  json::Value perturbed = *baseline;
  const std::string name = PerturbFirstFidelityMetric(perturbed);
  ASSERT_FALSE(name.empty());
  const GateReport report = CompareAgainstBaseline(perturbed, *baseline);
  EXPECT_FALSE(report.ok());
  bool found = false;
  for (const auto& issue : report.issues) {
    found = found || (issue.metric == name && issue.severity == Severity::kFailure);
  }
  EXPECT_TRUE(found) << "no failure recorded for perturbed metric " << name;
}
#endif  // MEMSENTRY_SOURCE_DIR

// ------------------------------------------------- bench_runner process --

#if defined(MEMSENTRY_BENCH_RUNNER) && defined(MEMSENTRY_SOURCE_DIR)
// End-to-end: bench_runner --compare must exit 0 on the pristine seed
// snapshot and nonzero once a fidelity metric is perturbed beyond tolerance.
TEST(BenchRunner, ExitsNonzeroOnPerturbedFidelityMetric) {
  auto baseline = json::ParseFile(kSeedBaseline);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  const ::testing::TestInfo* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string dir = ::testing::TempDir() + std::string(info->name());
  ASSERT_EQ(std::system(("mkdir -p \"" + dir + "\"").c_str()), 0);

  const std::string pristine = dir + "/pristine.json";
  ASSERT_TRUE(json::WriteFile(pristine, *baseline).ok());
  json::Value bad = *baseline;
  ASSERT_FALSE(PerturbFirstFidelityMetric(bad).empty());
  const std::string perturbed = dir + "/perturbed.json";
  ASSERT_TRUE(json::WriteFile(perturbed, bad).ok());

  const std::string runner = MEMSENTRY_BENCH_RUNNER;
  const std::string base_args =
      "\" --baseline=\"" + std::string(kSeedBaseline) + "\" > /dev/null 2>&1";
  EXPECT_EQ(std::system(("\"" + runner + "\" --compare=\"" + pristine + base_args).c_str()),
            0);
  EXPECT_NE(std::system(("\"" + runner + "\" --compare=\"" + perturbed + base_args).c_str()),
            0);
}
#endif  // MEMSENTRY_BENCH_RUNNER

}  // namespace
}  // namespace memsentry

#include <gtest/gtest.h>

#include <vector>

#include "src/base/rng.h"
#include "src/base/stats_util.h"
#include "src/base/status.h"
#include "src/base/types.h"

namespace memsentry {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgument("bad page");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad page");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFound("nothing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.Next() == b.Next() ? 1 : 0;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, BelowStaysBelow) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(4);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.Range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    hit_lo |= v == 5;
    hit_hi |= v == 8;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, ChanceRoughlyCalibrated) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.Chance(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(StatsTest, GeoMeanOfEqualValues) {
  std::vector<double> v = {2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(GeoMean(v), 2.0);
}

TEST(StatsTest, GeoMeanKnownValue) {
  std::vector<double> v = {1.0, 4.0};
  EXPECT_DOUBLE_EQ(GeoMean(v), 2.0);
}

TEST(StatsTest, OverheadPercent) {
  EXPECT_DOUBLE_EQ(ToOverheadPercent(1.125), 12.5);
}

TEST(TypesTest, PageHelpers) {
  EXPECT_EQ(PageAlignDown(0x1fff), 0x1000u);
  EXPECT_EQ(PageAlignUp(0x1001), 0x2000u);
  EXPECT_EQ(PageAlignUp(0x1000), 0x1000u);
  EXPECT_EQ(PageNumber(0x3456), 3u);
  EXPECT_EQ(PageOffset(0x3456), 0x456u);
}

TEST(TypesTest, SfiMaskMatchesPaperFigure2) {
  // Figure 2c: movabs $0x00003fffffffffff, %rax
  EXPECT_EQ(kSfiMask, 0x00003fffffffffffULL);
  EXPECT_EQ(kPartitionSplit, uint64_t{64} << 40);  // 64 TiB
}

}  // namespace
}  // namespace memsentry

// Multi-tenant server workload: bit-identical results across --jobs values
// and all three fastpath modes, per-ASID TLB/grant-cache behavior across
// context switches, per-tenant isolation, and kernel syscall attribution.
#include "src/workloads/server.h"

#include <gtest/gtest.h>

#include "src/base/fastpath.h"
#include "src/machine/fault.h"
#include "src/mpk/mpk.h"

namespace memsentry::workloads {
namespace {

ServerConfig SmallConfig(ServerTechnique technique) {
  ServerConfig config;
  config.tenants = 25;  // enough to force MPK key multiplexing (> 15)
  config.technique = technique;
  config.requests_per_tenant = 4;
  return config;
}

class FastPathModeGuard {
 public:
  FastPathModeGuard() : saved_(base::GetFastPathMode()) {}
  ~FastPathModeGuard() { base::SetFastPathMode(saved_); }

 private:
  base::FastPathMode saved_;
};

// The determinism contract in one assertion per field: identical config =>
// identical modeled results, for every fastpath mode. The digest covers
// per-tenant busy cycles, completions, per-ASID syscall counts, the full
// latency vector and the TLB stats, so equality here is equality of all of
// those at once.
TEST(ServerWorkloadDeterminismTest, BitIdenticalAcrossFastPathModes) {
  FastPathModeGuard guard;
  for (ServerTechnique technique : AllServerTechniques()) {
    base::SetFastPathMode(base::FastPathMode::kOn);
    const ServerResult on = RunServerWorkload(SmallConfig(technique));
    base::SetFastPathMode(base::FastPathMode::kOff);
    const ServerResult off = RunServerWorkload(SmallConfig(technique));
    base::SetFastPathMode(base::FastPathMode::kCheck);
    const ServerResult check = RunServerWorkload(SmallConfig(technique));
    for (const ServerResult* other : {&off, &check}) {
      EXPECT_EQ(on.digest, other->digest) << ServerTechniqueName(technique);
      EXPECT_EQ(on.requests, other->requests);
      EXPECT_EQ(on.faults, other->faults);
      EXPECT_EQ(on.total_cycles, other->total_cycles);
      EXPECT_EQ(on.p50_latency, other->p50_latency);
      EXPECT_EQ(on.p99_latency, other->p99_latency);
      EXPECT_EQ(on.p999_latency, other->p999_latency);
      EXPECT_EQ(on.tlb_hit_rate, other->tlb_hit_rate);
      EXPECT_EQ(on.context_switches, other->context_switches);
      EXPECT_EQ(on.preemptions, other->preemptions);
      EXPECT_EQ(on.syscalls, other->syscalls);
    }
    EXPECT_EQ(on.faults, 0u) << ServerTechniqueName(technique);
  }
}

// ParallelMap cells must be positionally identical for any jobs value.
TEST(ServerWorkloadDeterminismTest, BitIdenticalAcrossJobs) {
  const std::vector<int> counts = {1, 10, 40};
  const auto techniques = AllServerTechniques();
  ServerConfig base;
  base.requests_per_tenant = 4;
  const auto serial = RunServerSweep(counts, techniques, base, 1);
  const auto parallel = RunServerSweep(counts, techniques, base, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].tenants, parallel[i].tenants);
    EXPECT_EQ(serial[i].technique, parallel[i].technique);
    EXPECT_EQ(serial[i].result.digest, parallel[i].result.digest);
    EXPECT_EQ(serial[i].result.total_cycles, parallel[i].result.total_cycles);
    EXPECT_EQ(serial[i].result.p99_latency, parallel[i].result.p99_latency);
  }
}

// Context switches retarget the ASID without flushing: with several tenants
// resident the TLB must hold entries for multiple VPIDs at once, and the
// per-VPID occupancy scan must account for every valid entry.
TEST(ServerWorkloadTest, AsidTaggedTlbKeepsTenantsResident) {
  ServerConfig config = SmallConfig(ServerTechnique::kMpk);
  ServerEngine engine(config);
  ASSERT_TRUE(engine.Setup().ok());
  const ServerResult result = engine.Run();
  EXPECT_EQ(result.faults, 0u);
  EXPECT_GT(result.resident_vpids, 1);
  auto& tlb = engine.process().mmu().tlb();
  EXPECT_EQ(tlb.CountResidentVpids(), result.resident_vpids);
  int total = 0;
  for (int t = 0; t < config.tenants; ++t) {
    total += tlb.OccupancyForVpid(engine.TenantAsid(t));
  }
  EXPECT_GT(total, 0);
  EXPECT_LE(total, machine::Tlb::kSets * machine::Tlb::kWays);
}

// The kernel attributes syscalls to the tenant that was on the CPU: setup
// syscalls land on ASID 0, request syscalls on the issuing tenant, and the
// per-ASID ledger must add up exactly.
TEST(ServerWorkloadTest, KernelAttributesSyscallsPerAsid) {
  ServerConfig config = SmallConfig(ServerTechnique::kMpk);
  ServerEngine engine(config);
  ASSERT_TRUE(engine.Setup().ok());
  const uint64_t setup_syscalls = engine.kernel().total_syscalls();
  EXPECT_EQ(engine.kernel().asid_syscalls(0), setup_syscalls);
  const ServerResult result = engine.Run();
  // Per request: 1 setup nop + io_syscalls writes + 1 teardown nop.
  const uint64_t per_request = 2 + static_cast<uint64_t>(config.io_syscalls_per_request);
  uint64_t attributed = 0;
  for (int t = 0; t < config.tenants; ++t) {
    const uint64_t count = engine.kernel().asid_syscalls(engine.TenantAsid(t));
    EXPECT_EQ(count, per_request * static_cast<uint64_t>(config.requests_per_tenant));
    attributed += count;
  }
  EXPECT_EQ(engine.kernel().total_syscalls(), setup_syscalls + attributed);
  EXPECT_EQ(result.syscalls, setup_syscalls + attributed);
}

// MPK: the steady state (every key closed) must not reach any tenant's
// secret — including the attacker's own — and keys are genuinely
// multiplexed beyond 15 tenants.
TEST(ServerIsolationTest, MpkAtRestBlocksCrossTenantReads) {
  ServerConfig config = SmallConfig(ServerTechnique::kMpk);
  ServerEngine engine(config);
  ASSERT_TRUE(engine.Setup().ok());
  auto cross = engine.ProbeCrossTenantRead(0, 7);
  ASSERT_FALSE(cross.ok());
  EXPECT_EQ(cross.fault().type, machine::FaultType::kPkeyAccessDisabled);
  // Key multiplexing beyond the 15 usable keys (Table 3's domain limit).
  EXPECT_EQ(engine.TenantKey(0), engine.TenantKey(15));
  EXPECT_NE(engine.TenantKey(0), engine.TenantKey(1));
  // An opened tenant reads its own secret but still not a different-key
  // tenant's.
  Cycles cycles = 0;
  auto own = engine.process().mmu().Read64(engine.TenantSecretBase(3), engine.OpenPkru(3),
                                           &cycles);
  EXPECT_TRUE(own.ok());
  auto other = engine.process().mmu().Read64(engine.TenantSecretBase(4), engine.OpenPkru(3),
                                             &cycles);
  ASSERT_FALSE(other.ok());
  EXPECT_EQ(other.fault().type, machine::FaultType::kPkeyAccessDisabled);
}

TEST(ServerIsolationTest, MprotectAtRestBlocksReads) {
  ServerConfig config = SmallConfig(ServerTechnique::kMprotect);
  ServerEngine engine(config);
  ASSERT_TRUE(engine.Setup().ok());
  auto probe = engine.ProbeCrossTenantRead(1, 2);
  EXPECT_FALSE(probe.ok());
}

// crypt: the same seed under info-hide leaves tenant 0's secret readable in
// the clear; under crypt the at-rest bytes must differ (encrypted), and a
// full run must leave every region re-encrypted.
TEST(ServerIsolationTest, CryptRegionsAreEncryptedAtRest) {
  ServerConfig clear_config = SmallConfig(ServerTechnique::kInfoHide);
  clear_config.tenants = 1;
  ServerEngine clear(clear_config);
  ASSERT_TRUE(clear.Setup().ok());
  ServerConfig crypt_config = SmallConfig(ServerTechnique::kCrypt);
  crypt_config.tenants = 1;
  ServerEngine crypt(crypt_config);
  ASSERT_TRUE(crypt.Setup().ok());
  // Same secret stream (same seed, same draws for tenant 0's fill).
  const auto plain = clear.process().Peek64(clear.TenantSecretBase(0));
  const auto cipher = crypt.process().Peek64(crypt.TenantSecretBase(0));
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(cipher.ok());
  EXPECT_NE(plain.value(), cipher.value());
  const ServerResult result = crypt.Run();
  EXPECT_EQ(result.faults, 0u);
  for (const auto& region : crypt.process().safe_regions()) {
    EXPECT_TRUE(region.encrypted_now);
  }
}

// Every technique serves every request without a single fault, at a scale
// that exercises preemption and multi-ASID TLB pressure.
TEST(ServerWorkloadTest, AllTechniquesServeAllRequestsFaultFree) {
  for (ServerTechnique technique : AllServerTechniques()) {
    const ServerConfig config = SmallConfig(technique);
    const ServerResult result = RunServerWorkload(config);
    EXPECT_EQ(result.requests,
              static_cast<uint64_t>(config.tenants) *
                  static_cast<uint64_t>(config.requests_per_tenant))
        << ServerTechniqueName(technique);
    EXPECT_EQ(result.faults, 0u) << ServerTechniqueName(technique);
    EXPECT_GT(result.requests_per_sec, 0.0);
    EXPECT_GE(result.p99_latency, result.p50_latency);
    EXPECT_GE(result.p999_latency, result.p99_latency);
  }
}

// The slow techniques must actually cost more: the whole point of the
// workload is turning per-transition costs into tail latency.
TEST(ServerWorkloadTest, TechniqueCostsOrderTailLatency) {
  auto p99 = [](ServerTechnique technique) {
    return RunServerWorkload(SmallConfig(technique)).p99_latency;
  };
  const Cycles info_hide = p99(ServerTechnique::kInfoHide);
  const Cycles mpk = p99(ServerTechnique::kMpk);
  const Cycles mprotect = p99(ServerTechnique::kMprotect);
  EXPECT_GT(mprotect, mpk);
  EXPECT_GT(mpk, info_hide);
}

}  // namespace
}  // namespace memsentry::workloads

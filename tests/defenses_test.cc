#include <gtest/gtest.h>

#include "src/core/memsentry.h"
#include "src/defenses/aslr_guard.h"
#include "src/defenses/cfi.h"
#include "src/defenses/event_annotator.h"
#include "src/defenses/registry.h"
#include "src/defenses/safe_alloc.h"
#include "src/defenses/safestack.h"
#include "src/defenses/shadow_stack.h"
#include "src/ir/builder.h"
#include "src/ir/verifier.h"
#include "src/sim/executor.h"
#include "src/workloads/synth.h"

namespace memsentry::defenses {
namespace {

using ir::Builder;
using ir::Module;
using ir::Opcode;
using machine::Gpr;

// ---- shadow stack ----

class ShadowStackTest : public ::testing::Test {
 protected:
  ShadowStackTest() : process_(&machine_) {
    EXPECT_TRUE(process_.SetupStack().ok());
    EXPECT_TRUE(
        process_.MapRange(0x480000000000ULL, 1, machine::PageFlags::Data()).ok());
  }
  // main calls callee; if `smash`, callee overwrites its return address with
  // a *valid* encoding of another instruction (a forged control transfer the
  // base machine accepts).
  Module CallProgram(bool smash) {
    Module m;
    Builder b(&m);
    b.CreateFunction("main");
    b.Call(1);
    b.AddImm(Gpr::kRbx, 1);
    b.Halt();
    b.CreateFunction("callee");
    b.MovImm(Gpr::kRbx, 100);
    if (smash) {
      // Forge an RA targeting main's Halt (skipping the AddImm): a hijack.
      // Encoding mirrors the executor's internal scheme.
      const uint64_t forged = (0xCA11ULL << 48) | (0ULL << 36) | (0ULL << 18) | 2ULL;
      b.MovImm(Gpr::kRcx, forged);
      b.Store(Gpr::kRsp, Gpr::kRcx);
    }
    b.Ret();
    return m;
  }
  sim::Machine machine_;
  sim::Process process_;
};

TEST_F(ShadowStackTest, BenignProgramUnaffected) {
  Module m = CallProgram(/*smash=*/false);
  ShadowStackPass pass(0x480000000000ULL);
  ASSERT_TRUE(pass.Run(m).ok());
  ASSERT_TRUE(ir::Verify(m).ok());
  EXPECT_EQ(pass.prologues(), 2u);
  EXPECT_EQ(pass.epilogues(), 1u);
  sim::Executor executor(&process_, &m);
  auto result = executor.Run();
  EXPECT_TRUE(result.halted);
  EXPECT_FALSE(result.trapped);
  EXPECT_EQ(process_.regs()[Gpr::kRbx], 101u);
}

TEST_F(ShadowStackTest, HijackSucceedsWithoutDefense) {
  Module m = CallProgram(/*smash=*/true);
  sim::Executor executor(&process_, &m);
  auto result = executor.Run();
  // The forged RA is architecturally valid: control flow is hijacked and the
  // AddImm is skipped.
  EXPECT_TRUE(result.halted);
  EXPECT_EQ(process_.regs()[Gpr::kRbx], 100u);
}

TEST_F(ShadowStackTest, HijackTrappedWithDefense) {
  Module m = CallProgram(/*smash=*/true);
  ShadowStackPass pass(0x480000000000ULL);
  ASSERT_TRUE(pass.Run(m).ok());
  sim::Executor executor(&process_, &m);
  auto result = executor.Run();
  EXPECT_TRUE(result.trapped);
  EXPECT_FALSE(result.halted);
}

TEST_F(ShadowStackTest, ShadowAccessesAreAnnotated) {
  Module m = CallProgram(false);
  ShadowStackPass pass(0x480000000000ULL);
  ASSERT_TRUE(pass.Run(m).ok());
  EXPECT_EQ(m.CountIf([](const ir::Instr& i) {
              return i.IsSafeAccess() && i.IsDefense();
            }),
            3u);  // 2 prologue stores + 1 epilogue load
}

// ---- CFI ----

class CfiTest : public ::testing::Test {
 protected:
  CfiTest() : process_(&machine_) {
    EXPECT_TRUE(process_.SetupStack().ok());
    EXPECT_TRUE(process_.MapRange(sim::kTableBase, 1, machine::PageFlags::Data()).ok());
  }
  Module IndirectProgram(uint64_t target) {
    Module m;
    Builder b(&m);
    b.CreateFunction("main");
    b.MovImm(Gpr::kR10, target);
    b.IndirectCall(Gpr::kR10, 0);
    b.Halt();
    b.CreateFunction("good");
    b.MovImm(Gpr::kRbx, 1);
    b.Ret();
    return m;
  }
  sim::Machine machine_;
  sim::Process process_;
};

TEST_F(CfiTest, ValidTargetPasses) {
  Module m = IndirectProgram(1);
  CfiPass pass(sim::kTableBase);
  ASSERT_TRUE(pass.Run(m).ok());
  EXPECT_EQ(pass.checks_inserted(), 1u);
  ASSERT_TRUE(PopulateCfiTable(process_, sim::kTableBase, m).ok());
  sim::Executor executor(&process_, &m);
  auto result = executor.Run();
  EXPECT_TRUE(result.halted) << (result.fault ? result.fault->ToString() : "");
  EXPECT_FALSE(result.trapped);
}

TEST_F(CfiTest, InvalidTargetTraps) {
  Module m = IndirectProgram(0);  // "call main": not in the target set
  CfiPass pass(sim::kTableBase);
  ASSERT_TRUE(pass.Run(m).ok());
  ASSERT_TRUE(PopulateCfiTable(process_, sim::kTableBase, m).ok());
  sim::Executor executor(&process_, &m);
  auto result = executor.Run();
  EXPECT_TRUE(result.trapped);
}

TEST_F(CfiTest, CorruptedTableDissolvesPolicy) {
  // If the attacker can flip the table entry, the "invalid" target passes —
  // the motivating scenario for isolating the table.
  Module m = IndirectProgram(0);
  CfiPass pass(sim::kTableBase);
  ASSERT_TRUE(pass.Run(m).ok());
  ASSERT_TRUE(PopulateCfiTable(process_, sim::kTableBase, m).ok());
  ASSERT_TRUE(process_.Poke64(sim::kTableBase + 0 * 8, 1).ok());  // attacker write
  sim::Executor executor(&process_, &m);
  auto result = executor.Run();
  EXPECT_FALSE(result.trapped);  // policy bypassed
}

// ---- event annotator ----

TEST(EventAnnotatorTest, AnnotatesIndirectBranches) {
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.MovImm(Gpr::kR10, 1);
  b.IndirectCall(Gpr::kR10, 0);
  b.Call(1);  // direct: not annotated
  b.Halt();
  b.CreateFunction("f");
  b.Ret();
  EventAnnotatorPass pass(EventKind::kIndirectBranch, 0x480000000000ULL);
  ASSERT_TRUE(pass.Run(m).ok());
  EXPECT_EQ(pass.events_annotated(), 1u);
  EXPECT_EQ(m.CountIf([](const ir::Instr& i) { return i.IsSafeAccess(); }), 1u);
}

TEST(EventAnnotatorTest, AnnotatesSyscalls) {
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.Syscall(0);
  b.Syscall(1);
  b.Halt();
  EventAnnotatorPass pass(EventKind::kSyscall, 0x480000000000ULL);
  ASSERT_TRUE(pass.Run(m).ok());
  EXPECT_EQ(pass.events_annotated(), 2u);
}

// ---- SafeStack ----

TEST(SafeStackTest, RelocatesStackIntoSensitivePartition) {
  sim::Machine machine;
  sim::Process process(&machine);
  core::SafeRegionAllocator allocator(&process, core::TechniqueKind::kSfi);
  auto base = SafeStackDefense::Install(process, allocator);
  ASSERT_TRUE(base.ok());
  EXPECT_GE(base.value(), kPartitionSplit);
  EXPECT_EQ(process.regs()[Gpr::kRsp], base.value() + 16 * kPageSize);
  // Implicit call/ret pushes work on the relocated stack.
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.Call(1);
  b.Halt();
  b.CreateFunction("f");
  b.Ret();
  sim::Executor executor(&process, &m);
  auto result = executor.Run();
  EXPECT_TRUE(result.halted);
}

// ---- DieHard-style allocator ----

class SafeAllocTest : public ::testing::Test {
 protected:
  SafeAllocTest() : process_(&machine_) {
    EXPECT_TRUE(process_.MapRange(sim::kHeapBase, 64, machine::PageFlags::Data()).ok());
    EXPECT_TRUE(
        process_.MapRange(0x480000000000ULL, 8, machine::PageFlags::Data()).ok());
  }
  sim::Machine machine_;
  sim::Process process_;
};

TEST_F(SafeAllocTest, AllocationsAreDistinctAndInBounds) {
  SafeAllocator alloc(&process_, sim::kHeapBase, 0x480000000000ULL, 256, 64);
  ASSERT_TRUE(alloc.Init().ok());
  std::vector<VirtAddr> ptrs;
  for (int i = 0; i < 100; ++i) {
    auto p = alloc.Alloc();
    ASSERT_TRUE(p.ok());
    for (VirtAddr q : ptrs) {
      EXPECT_NE(p.value(), q);
    }
    EXPECT_GE(p.value(), sim::kHeapBase);
    EXPECT_LT(p.value(), sim::kHeapBase + 256 * 64);
    ptrs.push_back(p.value());
  }
}

TEST_F(SafeAllocTest, RefusesBeyondHalfFull) {
  SafeAllocator alloc(&process_, sim::kHeapBase, 0x480000000000ULL, 16, 64);
  ASSERT_TRUE(alloc.Init().ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(alloc.Alloc().ok());
  }
  EXPECT_FALSE(alloc.Alloc().ok());  // M-factor guard
}

TEST_F(SafeAllocTest, DetectsDoubleAndInvalidFree) {
  SafeAllocator alloc(&process_, sim::kHeapBase, 0x480000000000ULL, 64, 64);
  ASSERT_TRUE(alloc.Init().ok());
  auto p = alloc.Alloc();
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(alloc.Free(p.value()).ok());
  EXPECT_FALSE(alloc.Free(p.value()).ok());           // double free
  EXPECT_FALSE(alloc.Free(p.value() + 1).ok());       // misaligned
  EXPECT_FALSE(alloc.Free(sim::kHeapBase - 64).ok()); // before heap
}

TEST_F(SafeAllocTest, PlacementIsRandomized) {
  SafeAllocator a(&process_, sim::kHeapBase, 0x480000000000ULL, 1024, 64, /*seed=*/1);
  SafeAllocator b(&process_, sim::kHeapBase, 0x480000000000ULL + 2048 * 8, 1024, 64,
                  /*seed=*/2);
  ASSERT_TRUE(a.Init().ok());
  ASSERT_TRUE(b.Init().ok());
  int same = 0;
  for (int i = 0; i < 32; ++i) {
    auto pa = a.Alloc();
    auto pb = b.Alloc();
    ASSERT_TRUE(pa.ok());
    ASSERT_TRUE(pb.ok());
    same += (pa.value() - sim::kHeapBase) == (pb.value() - (sim::kHeapBase)) ? 1 : 0;
  }
  EXPECT_LT(same, 8);  // different seeds, different layouts
}

// ---- ASLR-Guard ----

TEST(AgRandMapTest, SealUnsealRoundTrip) {
  sim::Machine machine;
  sim::Process process(&machine);
  ASSERT_TRUE(process.MapRange(0x480000000000ULL, 1, machine::PageFlags::Data()).ok());
  AgRandMap map(&process, 0x480000000000ULL, 128);
  ASSERT_TRUE(map.Init().ok());
  const uint64_t ptr = 0x00401234;
  auto sealed = map.Encrypt(7, ptr);
  ASSERT_TRUE(sealed.ok());
  EXPECT_NE(sealed.value(), ptr);
  auto unsealed = map.Decrypt(7, sealed.value());
  ASSERT_TRUE(unsealed.ok());
  EXPECT_EQ(unsealed.value(), ptr);
}

TEST(AgRandMapTest, PerEntryKeysDiffer) {
  sim::Machine machine;
  sim::Process process(&machine);
  ASSERT_TRUE(process.MapRange(0x480000000000ULL, 1, machine::PageFlags::Data()).ok());
  AgRandMap map(&process, 0x480000000000ULL, 128);
  ASSERT_TRUE(map.Init().ok());
  auto a = map.Encrypt(1, 0x1000);
  auto b = map.Encrypt(2, 0x1000);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value(), b.value());  // one leak does not unlock the rest
  EXPECT_FALSE(map.Encrypt(128, 0x1000).ok());
}

// ---- registry (Table 1) ----

TEST(RegistryTest, ThirteenSurveyedDefenses) {
  EXPECT_EQ(SurveyedDefenses().size(), 13u);
}

TEST(RegistryTest, KnownRows) {
  const DefenseInfo* cpi = FindDefense("CPI");
  ASSERT_NE(cpi, nullptr);
  EXPECT_TRUE(cpi->probabilistic);
  EXPECT_FALSE(cpi->deterministic);
  EXPECT_EQ(cpi->instrumentation_points, "Memory accesses");
  const DefenseInfo* lr2 = FindDefense("LR2");
  ASSERT_NE(lr2, nullptr);
  EXPECT_TRUE(lr2->deterministic);
  EXPECT_EQ(FindDefense("nope"), nullptr);
}

TEST(RegistryTest, MostSurveyedDefensesAreProbabilistic) {
  // The paper's core observation: nearly everything relies on hiding.
  int probabilistic = 0;
  for (const auto& d : SurveyedDefenses()) {
    probabilistic += d.probabilistic ? 1 : 0;
  }
  EXPECT_GE(probabilistic, 10);
}

}  // namespace
}  // namespace memsentry::defenses

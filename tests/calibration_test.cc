// Reproduction calibration: asserts that the shapes of the paper's Figures
// 3-6 and the headline Section 1/6 claims hold — who wins, by roughly what
// factor, where crossovers fall. Bands are deliberately generous; exact
// values are reported by the bench/ binaries and EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "src/eval/figures.h"
#include "src/workloads/spec_profiles.h"

namespace memsentry::eval {
namespace {

ExperimentOptions FastOptions() {
  ExperimentOptions options;
  options.target_instructions = 150'000;
  return options;
}

const FigureSeries& Find(const std::vector<FigureSeries>& series, const std::string& name) {
  for (const auto& s : series) {
    if (s.config == name) {
      return s;
    }
  }
  ADD_FAILURE() << "missing series " << name;
  static FigureSeries empty;
  return empty;
}

class Figure3Test : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { series_ = new std::vector<FigureSeries>(RunFigure3(FastOptions())); }
  static void TearDownTestSuite() {
    delete series_;
    series_ = nullptr;
  }
  static std::vector<FigureSeries>* series_;
};
std::vector<FigureSeries>* Figure3Test::series_ = nullptr;

TEST_F(Figure3Test, AllRunsSucceeded) {
  for (const auto& s : *series_) {
    for (double v : s.normalized) {
      EXPECT_GT(v, 0.9) << s.config;
      EXPECT_LT(v, 2.0) << s.config;
    }
  }
}

TEST_F(Figure3Test, GeomeansNearPaper) {
  // Paper: MPX-w 2.8%, SFI-w 4%, MPX-r 12%, SFI-r 17.1%, MPX-rw 14.7%,
  // SFI-rw 19.6%.
  EXPECT_NEAR(Find(*series_, "MPX-w").geomean, 1.028, 0.035);
  EXPECT_NEAR(Find(*series_, "SFI-w").geomean, 1.040, 0.035);
  EXPECT_NEAR(Find(*series_, "MPX-r").geomean, 1.120, 0.05);
  EXPECT_NEAR(Find(*series_, "SFI-r").geomean, 1.171, 0.06);
  EXPECT_NEAR(Find(*series_, "MPX-rw").geomean, 1.147, 0.06);
  EXPECT_NEAR(Find(*series_, "SFI-rw").geomean, 1.196, 0.08);
}

TEST_F(Figure3Test, MpxBeatsSfiInAlmostAllCases) {
  // "We can see that in almost all cases, MPX performs better than SFI."
  for (const char* mode : {"-w", "-r", "-rw"}) {
    const auto& mpx = Find(*series_, std::string("MPX") + mode);
    const auto& sfi = Find(*series_, std::string("SFI") + mode);
    EXPECT_LT(mpx.geomean, sfi.geomean) << mode;
    int mpx_wins = 0;
    for (size_t i = 0; i < mpx.normalized.size(); ++i) {
      mpx_wins += mpx.normalized[i] <= sfi.normalized[i] + 1e-9 ? 1 : 0;
    }
    EXPECT_GE(mpx_wins, 17) << mode;  // "almost all" of 19
  }
}

TEST_F(Figure3Test, WritesCheaperThanReads) {
  // Store instrumentation hides behind the store buffer; loads expose the
  // dependency (Section 6.1).
  EXPECT_LT(Find(*series_, "MPX-w").geomean, Find(*series_, "MPX-r").geomean);
  EXPECT_LT(Find(*series_, "SFI-w").geomean, Find(*series_, "SFI-r").geomean);
}

TEST_F(Figure3Test, MemoryBoundBenchmarksHideInstrumentation) {
  // mcf is the most memory-bound profile: its overhead must be among the
  // smallest of the suite (its cycles are dominated by DRAM, not checks).
  const auto& sfi_rw = Find(*series_, "SFI-rw");
  const auto profiles = workloads::SpecCpu2006();
  size_t mcf_index = 0;
  for (size_t i = 0; i < profiles.size(); ++i) {
    if (profiles[i].name == "429.mcf") {
      mcf_index = i;
    }
  }
  int cheaper_than_mcf = 0;
  for (double v : sfi_rw.normalized) {
    cheaper_than_mcf += v < sfi_rw.normalized[mcf_index] ? 1 : 0;
  }
  EXPECT_LE(cheaper_than_mcf, 3);
}

class DomainFiguresTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fig4_ = new std::vector<FigureSeries>(RunFigure4(FastOptions()));
    fig5_ = new std::vector<FigureSeries>(RunFigure5(FastOptions()));
    fig6_ = new std::vector<FigureSeries>(RunFigure6(FastOptions()));
  }
  static void TearDownTestSuite() {
    delete fig4_;
    delete fig5_;
    delete fig6_;
  }
  static std::vector<FigureSeries>* fig4_;
  static std::vector<FigureSeries>* fig5_;
  static std::vector<FigureSeries>* fig6_;
};
std::vector<FigureSeries>* DomainFiguresTest::fig4_ = nullptr;
std::vector<FigureSeries>* DomainFiguresTest::fig5_ = nullptr;
std::vector<FigureSeries>* DomainFiguresTest::fig6_ = nullptr;

TEST_F(DomainFiguresTest, Figure4GeomeansNearPaper) {
  // Paper: MPK 130%, crypt 217%, VMFUNC 357% at every call+ret.
  EXPECT_NEAR(Find(*fig4_, "MPK").geomean, 2.30, 0.45);
  EXPECT_NEAR(Find(*fig4_, "crypt").geomean, 3.17, 0.80);
  EXPECT_NEAR(Find(*fig4_, "VMFUNC").geomean, 4.57, 0.90);
}

TEST_F(DomainFiguresTest, Figure4OrderingMpkCryptVmfunc) {
  EXPECT_LT(Find(*fig4_, "MPK").geomean, Find(*fig4_, "crypt").geomean);
  EXPECT_LT(Find(*fig4_, "crypt").geomean, Find(*fig4_, "VMFUNC").geomean);
}

TEST_F(DomainFiguresTest, Figure4CallDenseCppBenchmarksAreTheOutliers) {
  // Paper Figure 4 peaks at ~20.8x and ~28.3x for VMFUNC: povray and
  // xalancbmk. Ours must put the same two on top, in double digits.
  const auto& vmfunc = Find(*fig4_, "VMFUNC");
  const auto profiles = workloads::SpecCpu2006();
  size_t povray = 0, xalan = 0;
  for (size_t i = 0; i < profiles.size(); ++i) {
    if (profiles[i].name == "453.povray") povray = i;
    if (profiles[i].name == "483.xalancbmk") xalan = i;
  }
  EXPECT_GT(vmfunc.normalized[povray], 10.0);
  EXPECT_GT(vmfunc.normalized[xalan], 10.0);
  for (size_t i = 0; i < vmfunc.normalized.size(); ++i) {
    if (i != povray && i != xalan) {
      EXPECT_LT(vmfunc.normalized[i], vmfunc.normalized[povray]);
      EXPECT_LT(vmfunc.normalized[i], vmfunc.normalized[xalan]);
    }
  }
}

TEST_F(DomainFiguresTest, Figure5LighterThanFigure4) {
  // Indirect branches are rarer than calls+rets: every technique must be
  // cheaper here than on Figure 4 (paper: 34%/60%/82% vs 130%/217%/357%).
  for (const char* name : {"MPK", "VMFUNC", "crypt"}) {
    EXPECT_LT(Find(*fig5_, name).geomean, Find(*fig4_, name).geomean) << name;
  }
  EXPECT_NEAR(Find(*fig5_, "MPK").geomean, 1.34, 0.25);
  EXPECT_NEAR(Find(*fig5_, "VMFUNC").geomean, 1.82, 0.45);
  EXPECT_NEAR(Find(*fig5_, "crypt").geomean, 1.60, 0.45);
}

TEST_F(DomainFiguresTest, Figure5MpkCheapest) {
  EXPECT_LT(Find(*fig5_, "MPK").geomean, Find(*fig5_, "VMFUNC").geomean);
  EXPECT_LT(Find(*fig5_, "MPK").geomean, Find(*fig5_, "crypt").geomean);
}

TEST_F(DomainFiguresTest, Figure6SparseEventsAreNearlyFreeForMpk) {
  // Paper: 1.1% for MPK at syscall granularity.
  EXPECT_NEAR(Find(*fig6_, "MPK").geomean, 1.011, 0.02);
}

TEST_F(DomainFiguresTest, Figure6CryptPaysTheYmmReservationTax) {
  // Paper: crypt 22% >> VMFUNC 5.5% >> MPK 1.1%, driven by FP benchmarks
  // whose xmm/ymm pressure collides with the parked round keys.
  EXPECT_GT(Find(*fig6_, "crypt").geomean, Find(*fig6_, "VMFUNC").geomean);
  EXPECT_GT(Find(*fig6_, "VMFUNC").geomean, Find(*fig6_, "MPK").geomean);
  const auto& crypt = Find(*fig6_, "crypt");
  const auto profiles = workloads::SpecCpu2006();
  for (size_t i = 0; i < profiles.size(); ++i) {
    if (profiles[i].name == "433.milc" || profiles[i].name == "470.lbm") {
      EXPECT_GT(crypt.normalized[i], 1.8) << profiles[i].name;
    }
    if (profiles[i].vec_frac == 0.0) {
      EXPECT_LT(crypt.normalized[i], 1.45) << profiles[i].name;
    }
  }
}

TEST(BaselineTest, MprotectIs20To50x) {
  // Paper Section 1: "using this strategy to protect safe regions results in
  // significant overhead (e.g., 20-50x in our experiments)".
  double worst = 0;
  double sum = 0;
  int n = 0;
  for (const char* name : {"400.perlbench", "458.sjeng", "445.gobmk"}) {
    const double x = RunMprotectBaseline(*workloads::FindProfile(name), FastOptions());
    ASSERT_GT(x, 0);
    worst = std::max(worst, x);
    sum += x;
    ++n;
  }
  EXPECT_GT(sum / n, 20.0);
  EXPECT_LT(sum / n, 50.0);
  EXPECT_LT(worst, 80.0);
}

TEST(CryptSweepTest, CostGrowsLinearlyWithRegionSize) {
  // Paper Section 6.2: encryption of larger sizes increases linearly; ~15x
  // for a 1024-byte region.
  const auto points = RunCryptSizeSweep(*workloads::FindProfile("401.bzip2"),
                                        {16, 64, 256, 1024}, FastOptions());
  ASSERT_EQ(points.size(), 4u);
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].normalized, points[i - 1].normalized);
  }
  const double overhead_16 = points[0].normalized - 1.0;
  const double overhead_1k = points[3].normalized - 1.0;
  // 64x the blocks -> tens of times the overhead (keys amortize a little).
  EXPECT_GT(overhead_1k / overhead_16, 10.0);
  EXPECT_GT(points[3].normalized, 8.0);   // double-digit factor at 1 KiB
  EXPECT_LT(points[3].normalized, 60.0);
}

TEST(SafeStackCaseStudyTest, NoAdditionalOverheadOverFigure3) {
  // Paper Section 6.2: applying MemSentry to SafeStack reproduces the
  // Figure 3 -w numbers (SafeStack itself adds nothing; only the write
  // instrumentation costs). Our SafeStack run IS the MPX-w/SFI-w pipeline
  // with the stack relocated, so equality is structural; spot-check one
  // benchmark produces Figure 3-like numbers.
  const auto& profile = *workloads::FindProfile("403.gcc");
  const double mpx_w = RunAddressBasedExperiment(profile, core::TechniqueKind::kMpx,
                                                 core::ProtectMode::kWriteOnly, FastOptions());
  EXPECT_GT(mpx_w, 1.0);
  EXPECT_LT(mpx_w, 1.12);
}

}  // namespace
}  // namespace memsentry::eval

// Tests for the per-feature substrates: MPX, MPK, SGX, VMX/EPT, Dune.
#include <gtest/gtest.h>

#include "src/dune/dune.h"
#include "src/machine/phys_mem.h"
#include "src/mpk/mpk.h"
#include "src/mpx/mpx.h"
#include "src/sgx/enclave.h"
#include "src/vmx/ept.h"

namespace memsentry {
namespace {

using machine::AccessType;
using machine::FaultType;

// ---- MPX ----

TEST(MpxTest, SingleUpperBoundCheck) {
  const auto bnd = mpx::MakeBounds(0, kPartitionSplit);
  EXPECT_FALSE(mpx::CheckUpper(bnd, 0).has_value());
  EXPECT_FALSE(mpx::CheckUpper(bnd, kPartitionSplit - 1).has_value());
  auto fault = mpx::CheckUpper(bnd, kPartitionSplit);
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->type, FaultType::kBoundRange);
}

TEST(MpxTest, LowerBoundCheck) {
  const auto bnd = mpx::MakeBounds(0x1000, 0x1000);
  EXPECT_TRUE(mpx::CheckLower(bnd, 0xfff).has_value());
  EXPECT_FALSE(mpx::CheckLower(bnd, 0x1000).has_value());
}

TEST(MpxTest, InitStatePermitsEverything) {
  machine::BoundRegister init;
  EXPECT_FALSE(mpx::CheckUpper(init, ~uint64_t{0}).has_value());
  EXPECT_FALSE(mpx::CheckLower(init, 0).has_value());
}

TEST(MpxTest, BndPreserveControlsLegacyBranchReset) {
  machine::RegisterFile regs;
  regs.bnd[0] = mpx::MakeBounds(0, kPartitionSplit);
  regs.bnd_preserve = true;
  EXPECT_FALSE(mpx::OnLegacyBranch(regs));
  EXPECT_EQ(regs.bnd[0].upper, kPartitionSplit - 1);
  regs.bnd_preserve = false;
  EXPECT_TRUE(mpx::OnLegacyBranch(regs));
  EXPECT_EQ(regs.bnd[0].upper, ~uint64_t{0});  // INIT
}

TEST(MpxTest, BoundTableSpill) {
  mpx::BoundTable table;
  EXPECT_FALSE(table.Load(0x1000).has_value());
  table.Store(0x1000, mpx::MakeBounds(0x2000, 0x100));
  auto loaded = table.Load(0x1000);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->lower, 0x2000u);
  EXPECT_EQ(loaded->upper, 0x20ffu);
}

// ---- MPK ----

TEST(MpkTest, PkruBitLayout) {
  machine::Pkru pkru;
  pkru.SetAccessDisable(3, true);
  pkru.SetWriteDisable(5, true);
  EXPECT_EQ(pkru.value, (1u << 6) | (1u << 11));
  EXPECT_TRUE(pkru.AccessDisabled(3));
  EXPECT_FALSE(pkru.AccessDisabled(5));
  EXPECT_TRUE(pkru.WriteDisabled(5));
  pkru.SetAccessDisable(3, false);
  EXPECT_EQ(pkru.value, 1u << 11);
}

TEST(MpkTest, KeyAllocatorSkipsKeyZeroAndExhausts) {
  mpk::KeyAllocator alloc;
  for (int i = 1; i < mpk::kNumKeys; ++i) {
    auto key = alloc.Alloc();
    ASSERT_TRUE(key.ok());
    EXPECT_EQ(key.value(), i);
  }
  EXPECT_FALSE(alloc.Alloc().ok());
  ASSERT_TRUE(alloc.Free(7).ok());
  auto again = alloc.Alloc();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), 7);
}

TEST(MpkTest, FreeRejectsKeyZeroAndUnallocated) {
  mpk::KeyAllocator alloc;
  EXPECT_FALSE(alloc.Free(0).ok());
  EXPECT_FALSE(alloc.Free(9).ok());
}

TEST(MpkTest, WritePkruReturnsOldValue) {
  machine::RegisterFile regs;
  EXPECT_EQ(mpk::WritePkru(regs, 0xc), 0u);
  EXPECT_EQ(mpk::ReadPkru(regs), 0xcu);
  EXPECT_EQ(mpk::WritePkru(regs, 0), 0xcu);
}

TEST(MpkTest, ClosedPkruModes) {
  // Integrity only: reads stay possible.
  machine::Pkru integrity{mpk::ClosedPkru(2, /*deny_reads=*/false)};
  EXPECT_FALSE(integrity.AccessDisabled(2));
  EXPECT_TRUE(integrity.WriteDisabled(2));
  machine::Pkru confidential{mpk::ClosedPkru(2, /*deny_reads=*/true)};
  EXPECT_TRUE(confidential.AccessDisabled(2));
}

// ---- SGX ----

TEST(SgxTest, LifecycleEnforced) {
  sgx::Enclave enclave(0x10000, 4);
  EXPECT_FALSE(enclave.Finalize().ok());  // no pages yet
  ASSERT_TRUE(enclave.AddPage(0x10000).ok());
  ASSERT_TRUE(enclave.AddPage(0x11000).ok());
  EXPECT_FALSE(enclave.AddPage(0x10000).ok());  // duplicate
  EXPECT_FALSE(enclave.AddPage(0x15000).ok());  // outside reservation
  ASSERT_TRUE(enclave.RegisterEntry(0, 0x10000).ok());
  ASSERT_TRUE(enclave.Finalize().ok());
  EXPECT_FALSE(enclave.AddPage(0x12000).ok());  // SGX1: fixed after EINIT
  EXPECT_FALSE(enclave.Finalize().ok());
}

TEST(SgxTest, AccessRules) {
  sgx::Enclave enclave(0x10000, 4);
  ASSERT_TRUE(enclave.AddPage(0x10000).ok());
  ASSERT_TRUE(enclave.RegisterEntry(1, 0x10080).ok());
  ASSERT_TRUE(enclave.Finalize().ok());
  EXPECT_FALSE(enclave.AccessAllowed(0x10008));  // outside -> enclave page blocked
  EXPECT_TRUE(enclave.AccessAllowed(0x99000));   // non-enclave memory fine
  auto target = enclave.Enter(1);
  ASSERT_TRUE(target.ok());
  EXPECT_EQ(target.value(), 0x10080u);
  EXPECT_TRUE(enclave.AccessAllowed(0x10008));  // inside -> allowed
  ASSERT_TRUE(enclave.Exit().ok());
  EXPECT_FALSE(enclave.AccessAllowed(0x10008));
}

TEST(SgxTest, InvalidTransitionsFault) {
  sgx::Enclave enclave(0x10000, 2);
  ASSERT_TRUE(enclave.AddPage(0x10000).ok());
  ASSERT_TRUE(enclave.RegisterEntry(0, 0x10000).ok());
  EXPECT_FALSE(enclave.Enter(0).ok());  // not finalized
  ASSERT_TRUE(enclave.Finalize().ok());
  EXPECT_FALSE(enclave.Exit().ok());     // not inside
  EXPECT_FALSE(enclave.Enter(9).ok());   // unknown entry point
  ASSERT_TRUE(enclave.Enter(0).ok());
  EXPECT_FALSE(enclave.Enter(0).ok());   // no nesting
}

TEST(SgxTest, OcallSuspendsEnclaveAccess) {
  sgx::Enclave enclave(0x10000, 2);
  ASSERT_TRUE(enclave.AddPage(0x10000).ok());
  ASSERT_TRUE(enclave.RegisterEntry(0, 0x10000).ok());
  ASSERT_TRUE(enclave.Finalize().ok());
  ASSERT_TRUE(enclave.Enter(0).ok());
  ASSERT_TRUE(enclave.Ocall().ok());
  EXPECT_FALSE(enclave.AccessAllowed(0x10000));  // untrusted code during OCALL
  ASSERT_TRUE(enclave.OcallReturn().ok());
  EXPECT_TRUE(enclave.AccessAllowed(0x10000));
}

// ---- VMX / EPT ----

TEST(VmxTest, EptTranslatesAndFaults) {
  machine::PhysicalMemory pmem(1 << 14);
  vmx::Ept ept(&pmem);
  ASSERT_TRUE(ept.Map(0x5000, 0x9000).ok());
  auto ok = ept.Translate(0x5123, AccessType::kRead);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 0x9123u);
  auto missing = ept.Translate(0x6000, AccessType::kRead);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.fault().type, FaultType::kEptViolation);
}

TEST(VmxTest, EptWritePermission) {
  machine::PhysicalMemory pmem(1 << 14);
  vmx::Ept ept(&pmem);
  ASSERT_TRUE(ept.Map(0x5000, 0x9000, vmx::EptPerms{.read = true, .write = false}).ok());
  EXPECT_TRUE(ept.Translate(0x5000, AccessType::kRead).ok());
  EXPECT_FALSE(ept.Translate(0x5000, AccessType::kWrite).ok());
}

TEST(VmxTest, VmFuncSwitchesActiveEpt) {
  machine::PhysicalMemory pmem(1 << 14);
  vmx::VmxContext vmx(&pmem);
  ASSERT_TRUE(vmx.CreateEpt().ok());
  ASSERT_TRUE(vmx.CreateEpt().ok());
  ASSERT_TRUE(vmx.ept(0).Map(0x5000, 0x9000).ok());
  // Secret page only in EPT 1.
  ASSERT_TRUE(vmx.ept(1).Map(0x5000, 0x9000).ok());
  ASSERT_TRUE(vmx.ept(1).Map(0x6000, 0xa000).ok());

  EXPECT_FALSE(vmx.TranslateGuestPhys(0x6000, AccessType::kRead).ok());
  ASSERT_TRUE(vmx.VmFunc(0, 1).ok());
  EXPECT_TRUE(vmx.TranslateGuestPhys(0x6000, AccessType::kRead).ok());
  EXPECT_EQ(vmx.AsidTag(), 2);  // per-EPTP TLB tagging
  ASSERT_TRUE(vmx.VmFunc(0, 0).ok());
  EXPECT_FALSE(vmx.TranslateGuestPhys(0x6000, AccessType::kRead).ok());
}

TEST(VmxTest, VmFuncInvalidLeafOrIndexExits) {
  machine::PhysicalMemory pmem(1 << 14);
  vmx::VmxContext vmx(&pmem);
  ASSERT_TRUE(vmx.CreateEpt().ok());
  EXPECT_FALSE(vmx.VmFunc(1, 0).ok());  // only leaf 0 exists
  EXPECT_FALSE(vmx.VmFunc(0, 5).ok());  // index out of range
}

TEST(VmxTest, VmCallDispatchesToHypervisor) {
  machine::PhysicalMemory pmem(1 << 14);
  vmx::VmxContext vmx(&pmem);
  EXPECT_FALSE(vmx.VmCall(1, 0, 0, 0).ok());  // no handler -> exit
  vmx.SetHypercallHandler([](uint64_t nr, uint64_t a0, uint64_t, uint64_t) {
    return nr * 100 + a0;
  });
  auto r = vmx.VmCall(7, 3, 0, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 703u);
}

// ---- Dune ----

TEST(DuneTest, GuestFramesMappedInAllEpts) {
  machine::PhysicalMemory pmem(1 << 16);
  dune::DuneVm vm(&pmem);
  auto gpa = vm.AllocGuestFrame();
  ASSERT_TRUE(gpa.ok());
  auto idx = vm.CreateEpt();
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx.value(), 1);
  // Frame visible through both EPTs.
  EXPECT_TRUE(vm.vmx().ept(0).IsMapped(gpa.value()));
  EXPECT_TRUE(vm.vmx().ept(1).IsMapped(gpa.value()));
}

TEST(DuneTest, MarkPrivateRemovesFromOtherEpts) {
  machine::PhysicalMemory pmem(1 << 16);
  dune::DuneVm vm(&pmem);
  auto gpa = vm.AllocGuestFrame();
  ASSERT_TRUE(gpa.ok());
  auto idx = vm.CreateEpt();
  ASSERT_TRUE(idx.ok());
  ASSERT_TRUE(vm.MarkPrivate(gpa.value(), 1, idx.value()).ok());
  EXPECT_FALSE(vm.vmx().ept(0).IsMapped(gpa.value()));
  EXPECT_TRUE(vm.vmx().ept(1).IsMapped(gpa.value()));
  // Later frames stay shared.
  auto gpa2 = vm.AllocGuestFrame();
  ASSERT_TRUE(gpa2.ok());
  EXPECT_TRUE(vm.vmx().ept(0).IsMapped(gpa2.value()));
  EXPECT_TRUE(vm.vmx().ept(1).IsMapped(gpa2.value()));
}

TEST(DuneTest, MarkPrivateHypercall) {
  machine::PhysicalMemory pmem(1 << 16);
  dune::DuneVm vm(&pmem);
  auto gpa = vm.AllocGuestFrame();
  ASSERT_TRUE(gpa.ok());
  auto idx = vm.CreateEpt();
  ASSERT_TRUE(idx.ok());
  auto rc = vm.vmx().VmCall(dune::kHcMarkPrivate, gpa.value(), 1,
                            static_cast<uint64_t>(idx.value()));
  ASSERT_TRUE(rc.ok());
  EXPECT_EQ(rc.value(), 0u);
  EXPECT_FALSE(vm.vmx().ept(0).IsMapped(gpa.value()));
  EXPECT_EQ(vm.hypercall_count(), 1u);
}

TEST(DuneTest, SyscallHypercallRoutesToHandler) {
  machine::PhysicalMemory pmem(1 << 16);
  dune::DuneVm vm(&pmem);
  vm.SetSyscallHandler([](uint64_t nr, uint64_t a0, uint64_t) { return nr + a0; });
  auto rc = vm.vmx().VmCall(dune::kHcSyscall, 40, 2, 0);
  ASSERT_TRUE(rc.ok());
  EXPECT_EQ(rc.value(), 42u);
}

TEST(DuneTest, HostFrameLookup) {
  machine::PhysicalMemory pmem(1 << 16);
  dune::DuneVm vm(&pmem);
  auto gpa = vm.AllocGuestFrame();
  ASSERT_TRUE(gpa.ok());
  auto host = vm.HostFrame(gpa.value() + 0x24);
  ASSERT_TRUE(host.ok());
  EXPECT_EQ(PageOffset(host.value()), 0x24u);
  EXPECT_FALSE(vm.HostFrame(0xffff000).ok());
}

}  // namespace
}  // namespace memsentry

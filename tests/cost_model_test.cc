// Cost-model invariants: the orderings the paper's conclusions depend on.
// If a future calibration breaks one of these, the figures stop meaning what
// the paper means.
#include <gtest/gtest.h>

#include "src/machine/cost_model.h"

namespace memsentry::machine {
namespace {

TEST(CostModelTest, MemoryHierarchyIsMonotone) {
  const CostModel cost;
  EXPECT_LT(cost.lat_l1, cost.lat_l2);
  EXPECT_LT(cost.lat_l2, cost.lat_l3);
  EXPECT_LT(cost.lat_l3, cost.lat_dram);
  EXPECT_EQ(cost.MemLatency(CacheLevel::kL1), cost.lat_l1);
  EXPECT_EQ(cost.MemLatency(CacheLevel::kDram), cost.lat_dram);
  EXPECT_GT(cost.load_latency_exposure, 0.0);
  EXPECT_LE(cost.load_latency_exposure, 1.0);
}

TEST(CostModelTest, Table4OrderingsHold) {
  const CostModel cost;
  // The paper's core microbenchmark relations (Table 4 / Section 6.1):
  // a vmfunc is much cheaper than a vmcall but comparable to a syscall;
  // SGX crossings dwarf everything; MPK switches sit between address-based
  // checks and vmfunc.
  EXPECT_LT(cost.vmfunc, cost.vmcall);
  EXPECT_GT(cost.vmfunc, cost.syscall);                 // "similar", slightly above
  EXPECT_LT(cost.vmfunc / cost.syscall, 2.0);
  EXPECT_GT(cost.sgx_ecall_roundtrip, 10 * cost.vmcall);
  EXPECT_GT(cost.wrpkru, cost.bndcu_slot * 10);
  EXPECT_LT(cost.wrpkru, cost.vmfunc);
  // mprotect is the worst non-SGX switch.
  EXPECT_GT(cost.mprotect_call, cost.vmcall);
}

TEST(CostModelTest, AddressBasedChecksAreSubCycle) {
  const CostModel cost;
  EXPECT_LT(cost.bndcu_slot + cost.bndcu_latency, 1.0);
  EXPECT_LT(cost.sfi_and_slot + cost.sfi_and_dep_latency, 1.0);
  // MPX's single check must beat SFI's dependent mask in the load path
  // ("MPX should be faster than SFI in basically all cases").
  EXPECT_LT(cost.bndcu_slot, cost.sfi_and_slot + cost.sfi_and_dep_latency);
  // The double-check penalty makes the pair worse than SFI (Section 6.3:
  // "slightly worse than our SFI results").
  EXPECT_GT(cost.bndcu_slot * 2 + cost.bndcl_pair_extra_latency,
            cost.sfi_and_slot + cost.sfi_and_dep_latency);
}

TEST(CostModelTest, AesCostsMatchPaperStructure) {
  const CostModel cost;
  // Keygen is "far more expensive than fetching round-keys from ymm".
  EXPECT_GT(cost.aes_keygen10, 10 * cost.ymm_to_xmm_all_keys);
  // Decryption schedule (imc) costs more than extracting encrypt keys.
  EXPECT_GT(cost.aes_imc9, cost.ymm_to_xmm_all_keys);
  // One block enc+dec = 41 cycles (Table 4).
  EXPECT_NEAR(cost.aes_encdec_block, 41.0, 1e-9);
  EXPECT_NEAR(cost.aes_round * 22.0, cost.aes_encdec_block, 1e-9);
}

TEST(CostModelTest, IssueWidthConsistent) {
  const CostModel cost;
  EXPECT_DOUBLE_EQ(cost.slot, 1.0 / cost.issue_width);
  for (double slot_cost : {cost.alu_slot, cost.lea_slot, cost.mov_imm_slot, cost.load_slot,
                           cost.store_slot, cost.nop_slot}) {
    EXPECT_GE(slot_cost, cost.slot * 0.5);
    EXPECT_LE(slot_cost, 1.0);
  }
}

TEST(CostModelTest, DomainSwitchLadder) {
  // The ladder Section 6.3's advice derives from, cheapest to dearest:
  // MPK < crypt(16B) < 2x vmfunc < 2x mprotect < SGX crossing.
  const CostModel cost;
  const double mpk_pair = 2 * cost.wrpkru + cost.mpk_clobber_spills;
  const double crypt_pair =
      2 * (cost.ymm_to_xmm_all_keys + cost.aes_encdec_block / 2 + 6 * cost.xmm_spill);
  const double vmfunc_pair = 2 * cost.vmfunc;
  const double mprotect_pair = 2 * cost.mprotect_call;
  EXPECT_LT(mpk_pair, crypt_pair);
  EXPECT_LT(crypt_pair, vmfunc_pair);
  EXPECT_LT(vmfunc_pair, mprotect_pair);
  EXPECT_LT(mprotect_pair, cost.sgx_ecall_roundtrip);
}

}  // namespace
}  // namespace memsentry::machine
